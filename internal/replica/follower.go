package replica

import (
	"context"
	"encoding/json"
	"errors"
	"net"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/wire"
)

// FollowerConfig configures a journal follower.
type FollowerConfig struct {
	// Addr is the leader's address, dialled over TCP when Dial is nil.
	Addr string
	// Dial overrides the transport (tests use faultnet pipes).
	Dial func(ctx context.Context) (net.Conn, error)
	// Store receives the replicated entries. Required.
	Store *Store
	// Backoff between redials; default 50ms.
	Backoff time.Duration
	// Obs is the instrument registry; nil builds a private one.
	Obs *obs.Registry
}

// Follower mirrors a leader's journal into a local Store. It subscribes
// by sending a KindJournalAck carrying its current sequence number; the
// leader replays everything after it (or a full-snapshot Reset entry if
// the follower is too far behind) and then streams live appends, each
// acknowledged back so the leader can track replication lag. The stream
// is resumable: after any disconnect the follower redials and
// resubscribes from wherever its store got to.
type Follower struct {
	cfg        FollowerConfig
	reg        *obs.Registry
	applied    *obs.Counter
	resets     *obs.Counter
	redials    *obs.Counter
	connectedG *obs.Gauge
}

// NewFollower validates cfg and builds a follower.
func NewFollower(cfg FollowerConfig) (*Follower, error) {
	if cfg.Store == nil {
		return nil, errors.New("replica: follower needs a store")
	}
	if cfg.Addr == "" && cfg.Dial == nil {
		return nil, errors.New("replica: follower needs an address or dialer")
	}
	if cfg.Backoff <= 0 {
		cfg.Backoff = 50 * time.Millisecond
	}
	reg := cfg.Obs
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &Follower{
		cfg:        cfg,
		reg:        reg,
		applied:    reg.Counter("replica_entries_applied"),
		resets:     reg.Counter("replica_resets"),
		redials:    reg.Counter("replica_redials"),
		connectedG: reg.Gauge("replica_connected"),
	}, nil
}

// Obs returns the follower's instrument registry.
func (f *Follower) Obs() *obs.Registry { return f.reg }

// Run replicates until ctx is cancelled, redialling with a fixed backoff
// after every disconnect, gap or protocol error.
func (f *Follower) Run(ctx context.Context) error {
	for {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		f.runOnce(ctx)
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(f.cfg.Backoff):
			f.redials.Inc()
		}
	}
}

func (f *Follower) runOnce(ctx context.Context) {
	raw, err := f.dial(ctx)
	if err != nil {
		return
	}
	conn := wire.NewConn(raw)
	var once sync.Once
	closeConn := func() { once.Do(func() { conn.Close() }) }
	done := make(chan struct{})
	watcherDone := make(chan struct{})
	go func() {
		defer close(watcherDone)
		select {
		case <-ctx.Done():
			closeConn()
		case <-done:
		}
	}()
	defer func() {
		close(done)
		closeConn()
		<-watcherDone
	}()
	// The subscribe frame advertises codec support: a binary-capable
	// leader streams journal appends on the fast codec (the reader below
	// auto-detects per frame, so no confirmation round-trip is needed).
	// Our own acks stay JSON — they are one small frame per entry.
	sub := wire.Envelope{
		Type: wire.KindJournalAck, Seq: f.cfg.Store.Seq(), Epoch: f.cfg.Store.Epoch(),
		Codecs: []string{wire.CodecBinary},
	}
	if err := conn.Send(sub); err != nil {
		return
	}
	f.connectedG.Set(1)
	defer f.connectedG.Set(0)
	for {
		env, err := conn.Recv()
		if err != nil {
			return
		}
		if env.Type != wire.KindJournalAppend || len(env.Entry) == 0 {
			continue
		}
		var e Entry
		if json.Unmarshal(env.Entry, &e) != nil {
			return
		}
		if err := f.cfg.Store.ApplyRemote(e); err != nil {
			// Gap or invalid entry: resubscribe from our current head.
			return
		}
		if e.Reset != nil {
			f.resets.Inc()
		} else {
			f.applied.Inc()
		}
		if conn.Send(wire.Envelope{Type: wire.KindJournalAck, Seq: f.cfg.Store.Seq()}) != nil {
			return
		}
	}
}

func (f *Follower) dial(ctx context.Context) (net.Conn, error) {
	if f.cfg.Dial != nil {
		return f.cfg.Dial(ctx)
	}
	d := net.Dialer{Timeout: 2 * time.Second}
	return d.DialContext(ctx, "tcp", f.cfg.Addr)
}
