package replica

import (
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// DefaultLeaseEvery is the renewal period used when a Lease does not set
// one.
const DefaultLeaseEvery = 25 * time.Millisecond

// LeaseState is the content of the lease file: who leads, at which
// epoch, and when they last proved liveness.
type LeaseState struct {
	Epoch     uint64    `json:"epoch"`
	Holder    string    `json:"holder"`
	RenewedAt time.Time `json:"renewed_at"`
}

// Lease is a file-based leadership lease. The leader rewrites it every
// Every; standbys poll it and declare the leader dead once RenewedAt is
// staler than their miss budget allows. Writes are atomic (tmp+rename)
// so readers never observe a torn lease.
type Lease struct {
	Path  string
	Every time.Duration
}

// Period returns the renewal period, defaulting when unset.
func (l *Lease) Period() time.Duration {
	if l.Every > 0 {
		return l.Every
	}
	return DefaultLeaseEvery
}

// Read loads the current lease state.
func (l *Lease) Read() (LeaseState, error) {
	b, err := os.ReadFile(l.Path)
	if err != nil {
		return LeaseState{}, err
	}
	var st LeaseState
	if err := json.Unmarshal(b, &st); err != nil {
		return LeaseState{}, fmt.Errorf("replica: lease decode: %w", err)
	}
	return st, nil
}

// Write atomically replaces the lease file.
func (l *Lease) Write(st LeaseState) error {
	b, err := json.Marshal(st)
	if err != nil {
		return fmt.Errorf("replica: lease marshal: %w", err)
	}
	tmp, err := os.CreateTemp(dirOf(l.Path), ".lease-*")
	if err != nil {
		return fmt.Errorf("replica: lease temp: %w", err)
	}
	if _, err := tmp.Write(append(b, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("replica: lease write: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("replica: lease close: %w", err)
	}
	if err := os.Rename(tmp.Name(), l.Path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("replica: lease rename: %w", err)
	}
	return nil
}
