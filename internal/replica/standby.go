package replica

import (
	"errors"
	"time"

	"context"

	"repro/internal/obs"
)

// Promotion is handed to StandbyConfig.OnPromote when the standby takes
// over: the replicated store (now stamped with the new epoch) and how
// long the fleet had been leaderless when death was declared.
type Promotion struct {
	Store      *Store
	Epoch      uint64
	Leaderless time.Duration
}

// StandbyConfig configures a warm standby.
type StandbyConfig struct {
	// Follower replicates the leader's journal while it lives. Its Store
	// becomes the promoted manager's journal.
	Follower FollowerConfig
	// Lease is the leadership lease the leader renews. Required.
	Lease *Lease
	// MissBudget is how many renewal periods the lease may go stale (or
	// unreadable) before the leader is declared dead; default 4.
	MissBudget int
	// Holder names this standby in the lease file after takeover.
	Holder string
	// OnPromote starts the replacement manager (bind the listen address,
	// adopt Promotion.Store at Promotion.Epoch). Run returns its error.
	OnPromote func(Promotion) error
	// Obs is the instrument registry; nil builds a private one.
	Obs *obs.Registry
}

// Standby replicates a leader's journal and watches its lease. Once the
// lease goes stale past the miss budget — or Promote is called — it
// stops the follower, bumps the epoch past everything it has seen,
// claims the lease, and calls OnPromote with its journal copy. Epoch
// fencing makes the handoff safe even if the old leader was merely
// paused: agents that have seen the new epoch refuse the old leader's
// hello, and the old leader self-fences when it reads the claimed lease.
type Standby struct {
	cfg      StandbyConfig
	follower *Follower
	reg      *obs.Registry
	force    chan struct{}
	promoted chan struct{}
	takeover *obs.Gauge
}

// NewStandby validates cfg and builds a standby.
func NewStandby(cfg StandbyConfig) (*Standby, error) {
	if cfg.Lease == nil {
		return nil, errors.New("replica: standby needs a lease")
	}
	if cfg.OnPromote == nil {
		return nil, errors.New("replica: standby needs an OnPromote hook")
	}
	if cfg.MissBudget <= 0 {
		cfg.MissBudget = 4
	}
	if cfg.Obs == nil {
		cfg.Obs = obs.NewRegistry()
	}
	if cfg.Follower.Obs == nil {
		cfg.Follower.Obs = cfg.Obs
	}
	f, err := NewFollower(cfg.Follower)
	if err != nil {
		return nil, err
	}
	return &Standby{
		cfg:      cfg,
		follower: f,
		reg:      cfg.Obs,
		force:    make(chan struct{}, 1),
		promoted: make(chan struct{}),
		takeover: cfg.Obs.Gauge("last_takeover_micros"),
	}, nil
}

// Obs returns the standby's instrument registry.
func (s *Standby) Obs() *obs.Registry { return s.reg }

// Store returns the replicated journal copy.
func (s *Standby) Store() *Store { return s.cfg.Follower.Store }

// Promote forces an immediate takeover regardless of lease state.
func (s *Standby) Promote() {
	select {
	case s.force <- struct{}{}:
	default:
	}
}

// Promoted is closed once OnPromote has returned successfully.
func (s *Standby) Promoted() <-chan struct{} { return s.promoted }

// Run replicates and watches the lease until promotion or cancellation.
// It returns nil on a clean cancel, or OnPromote's error. Death is
// declared only after the lease has been observed alive at least once —
// a standby started before its primary waits instead of seizing an empty
// lease.
func (s *Standby) Run(ctx context.Context) error {
	fctx, fcancel := context.WithCancel(ctx)
	fdone := make(chan struct{})
	go func() {
		defer close(fdone)
		_ = s.follower.Run(fctx)
	}()
	stopFollower := func() {
		fcancel()
		<-fdone
	}

	every := s.cfg.Lease.Period()
	budget := time.Duration(s.cfg.MissBudget) * every
	tick := time.NewTicker(every)
	defer tick.Stop()

	var last LeaseState
	seen := false
	misses := 0
	for {
		select {
		case <-ctx.Done():
			stopFollower()
			return nil
		case <-s.force:
			stopFollower()
			return s.promote(last, 0)
		case <-tick.C:
			st, err := s.cfg.Lease.Read()
			if err != nil {
				if seen {
					misses++
				}
			} else {
				misses = 0
				seen = true
				last = st
			}
			if !seen {
				continue
			}
			stale := time.Since(last.RenewedAt)
			if misses > s.cfg.MissBudget || (misses == 0 && stale > budget) {
				stopFollower()
				return s.promote(last, stale)
			}
		}
	}
}

func (s *Standby) promote(last LeaseState, leaderless time.Duration) error {
	t0 := time.Now()
	store := s.cfg.Follower.Store
	epoch := last.Epoch
	// A forced promotion can outrun the tick loop's first lease read, and
	// the journal may be empty on a green fleet: re-read the lease so the
	// claimed epoch always supersedes a still-breathing incumbent's.
	if st, err := s.cfg.Lease.Read(); err == nil && st.Epoch > epoch {
		epoch = st.Epoch
	}
	if se := store.Epoch(); se > epoch {
		epoch = se
	}
	epoch++
	store.SetEpoch(epoch)
	_ = s.cfg.Lease.Write(LeaseState{Epoch: epoch, Holder: s.cfg.Holder, RenewedAt: time.Now()})
	if err := s.cfg.OnPromote(Promotion{Store: store, Epoch: epoch, Leaderless: leaderless}); err != nil {
		return err
	}
	total := leaderless + time.Since(t0)
	s.takeover.SetInt(total.Microseconds())
	s.reg.Histogram("takeover_micros").Observe(float64(total.Microseconds()))
	close(s.promoted)
	return nil
}
