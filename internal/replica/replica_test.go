package replica

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/power"
	"repro/internal/wire"
)

func TestStoreCommitAndReload(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.json")
	st, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	st.SetLevel(4, 7)
	st.SetLevel(2, 0)
	if e, ok := st.CommitCycle(1, 900, 1000, nil); !ok || e.Seq != 1 || len(e.Levels) != 2 {
		t.Fatalf("first commit: %+v ok=%v", e, ok)
	}
	// Unchanged cycle: watermark advances, no entry.
	if _, ok := st.CommitCycle(2, 900, 1000, nil); ok {
		t.Fatal("no-change cycle emitted an entry")
	}
	st.SetLevel(4, 3)
	if e, ok := st.CommitCycle(3, 900, 1000, nil); !ok || e.Seq != 2 || len(e.Levels) != 1 || e.Levels[0] != (Level{Node: 4, Level: 3}) {
		t.Fatalf("delta commit: %+v ok=%v", e, ok)
	}
	st.Close()

	// Reload without compaction: snapshot (empty) + log replay.
	st2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	got := st2.State()
	want := Snapshot{LastSeq: 2, SavedAtCycle: 3, ThrPLW: 900, ThrPHW: 1000,
		Levels: []Level{{Node: 2, Level: 0}, {Node: 4, Level: 3}}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("reloaded state:\n got %+v\nwant %+v", got, want)
	}
}

func TestStoreLogPrefixSurvivesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.json")
	st, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		st.SetLevel(1, i)
		if _, ok := st.CommitCycle(i, 500, 600, nil); !ok {
			t.Fatalf("commit %d dropped", i)
		}
	}
	st.Close()
	// Tear the log: append garbage, then a syntactically valid entry that
	// replay must NOT reach past the tear.
	f, err := os.OpenFile(path+".log", os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"seq":4,"levels":[{"node":1,"le` + "\n")
	f.WriteString(`{"seq":5,"cycle":9,"levels":[{"node":1,"level":9}]}` + "\n")
	f.Close()

	st2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	got := st2.State()
	if got.LastSeq != 3 || got.SavedAtCycle != 3 || len(got.Levels) != 1 || got.Levels[0].Level != 3 {
		t.Fatalf("torn tail changed recovered state: %+v", got)
	}
}

// TestCompactNeverDropsConcurrentAppends is the snapshot-vs-append
// ordering regression: entries committed while compactions run must land
// either inside the snapshot or in the fresh log — reloading must always
// see every committed entry's effect.
func TestCompactNeverDropsConcurrentAppends(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.json")
	st, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	const cycles = 400
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if _, err := st.Compact(); err != nil {
					t.Errorf("compact: %v", err)
					return
				}
			}
		}
	}()
	for i := 1; i <= cycles; i++ {
		st.SetLevel(7, i)
		if _, ok := st.CommitCycle(i, 100, 200, nil); !ok {
			t.Fatalf("commit %d saw no change", i)
		}
	}
	close(stop)
	wg.Wait()
	st.Close()

	got, err := ReadState(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.LastSeq != cycles || got.SavedAtCycle != cycles {
		t.Fatalf("lost entries across compaction: %+v", got)
	}
	if len(got.Levels) != 1 || got.Levels[0] != (Level{Node: 7, Level: cycles}) {
		t.Fatalf("final level wrong: %+v", got.Levels)
	}
}

func TestApplyRemoteDuplicateGapAndReset(t *testing.T) {
	st, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	e1 := Entry{Seq: 1, Cycle: 1, Levels: []Level{{Node: 1, Level: 5}}}
	if err := st.ApplyRemote(e1); err != nil {
		t.Fatal(err)
	}
	// Duplicate: silently skipped.
	if err := st.ApplyRemote(e1); err != nil {
		t.Fatalf("duplicate rejected: %v", err)
	}
	// Gap: must surface ErrGap.
	if err := st.ApplyRemote(Entry{Seq: 5}); err != ErrGap {
		t.Fatalf("gap error = %v, want ErrGap", err)
	}
	// Reset replaces everything.
	reset := Entry{Seq: 9, Epoch: 2, Reset: &Snapshot{
		Epoch: 2, LastSeq: 9, SavedAtCycle: 40,
		ThrPLW: 700, ThrPHW: 800, Levels: []Level{{Node: 3, Level: 1}},
	}}
	if err := st.ApplyRemote(reset); err != nil {
		t.Fatal(err)
	}
	got := st.State()
	if got.LastSeq != 9 || got.Epoch != 2 || len(got.Levels) != 1 || got.Levels[0].Node != 3 {
		t.Fatalf("reset not applied wholesale: %+v", got)
	}
	if err := st.ApplyRemote(Entry{Seq: 10, Cycle: 41}); err != nil {
		t.Fatalf("resume after reset: %v", err)
	}
}

func TestEntriesSinceAndResetEntry(t *testing.T) {
	st, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	learner := &power.LearnerState{LifetimePeakW: 500, Trained: true, PLW: 400, PHW: 450}
	for i := 1; i <= 5; i++ {
		st.SetLevel(1, i)
		st.CommitCycle(i, 400, 450, learner)
	}
	if es, ok := st.EntriesSince(5); !ok || len(es) != 0 {
		t.Fatalf("caught-up follower: %v %v", es, ok)
	}
	es, ok := st.EntriesSince(2)
	if !ok || len(es) != 3 || es[0].Seq != 3 || es[2].Seq != 5 {
		t.Fatalf("resume entries: %+v ok=%v", es, ok)
	}
	// A follower older than the ring history gets a reset.
	if _, ok := st.EntriesSince(0); ok {
		// Ring still covers everything here (only 5 entries) — force the
		// miss by asking below a truncated ring.
		t.Skip("ring covers full history at this size")
	}
	re := st.ResetEntry()
	if re.Reset == nil || re.Seq != 5 || re.Reset.LastSeq != 5 || re.Reset.Learner == nil {
		t.Fatalf("reset entry: %+v", re)
	}
}

func TestLeaseRoundTripAndAtomicity(t *testing.T) {
	l := &Lease{Path: filepath.Join(t.TempDir(), "lease.json"), Every: 10 * time.Millisecond}
	if _, err := l.Read(); err == nil {
		t.Fatal("read of missing lease succeeded")
	}
	now := time.Now().Truncate(time.Millisecond)
	if err := l.Write(LeaseState{Epoch: 3, Holder: "primary", RenewedAt: now}); err != nil {
		t.Fatal(err)
	}
	st, err := l.Read()
	if err != nil {
		t.Fatal(err)
	}
	if st.Epoch != 3 || st.Holder != "primary" || !st.RenewedAt.Equal(now) {
		t.Fatalf("lease round trip: %+v", st)
	}
}

func TestFollowerReplicatesAndResumes(t *testing.T) {
	// Hand-rolled leader: accept one follower conn at a time over pipes.
	conns := make(chan net.Conn, 16)
	dial := func(ctx context.Context) (net.Conn, error) {
		s, c := net.Pipe()
		select {
		case conns <- s:
			return c, nil
		case <-ctx.Done():
			s.Close()
			c.Close()
			return nil, ctx.Err()
		}
	}
	store, _ := Open("")
	f, err := NewFollower(FollowerConfig{Dial: dial, Store: store, Backoff: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); f.Run(ctx) }()
	defer func() { cancel(); <-done }()

	send := func(c *wire.Conn, e Entry) {
		t.Helper()
		env, err := appendEnv(e)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Send(env); err != nil {
			t.Fatal(err)
		}
	}

	// Session 1: subscribe from 0, stream two entries, check acks.
	lc := wire.NewConn(<-conns)
	sub, err := lc.Recv()
	if err != nil || sub.Type != wire.KindJournalAck || sub.Seq != 0 {
		t.Fatalf("subscribe frame: %+v err=%v", sub, err)
	}
	// net.Pipe is unbuffered: read each ack before the next send, or both
	// sides block mid-write.
	entries := []Entry{
		{Seq: 1, Cycle: 1, Levels: []Level{{Node: 1, Level: 4}}, ThrPLW: 900, ThrPHW: 950},
		{Seq: 2, Cycle: 2, Levels: []Level{{Node: 2, Level: 0}}},
	}
	for _, e := range entries {
		send(lc, e)
		ack, err := lc.Recv()
		if err != nil || ack.Type != wire.KindJournalAck || ack.Seq != e.Seq {
			t.Fatalf("ack %d: %+v err=%v", e.Seq, ack, err)
		}
	}
	// Kill the session; follower must redial and resubscribe from seq 2.
	lc.Close()
	lc2 := wire.NewConn(<-conns)
	sub2, err := lc2.Recv()
	if err != nil || sub2.Seq != 2 {
		t.Fatalf("resubscribe frame: %+v err=%v", sub2, err)
	}
	// A duplicate then a new entry: duplicate is absorbed (but still
	// acked, so the pipe stays drained), new applied.
	send(lc2, Entry{Seq: 2, Cycle: 2, Levels: []Level{{Node: 2, Level: 0}}})
	if ack, err := lc2.Recv(); err != nil || ack.Seq != 2 {
		t.Fatalf("dup ack: %+v err=%v", ack, err)
	}
	send(lc2, Entry{Seq: 3, Cycle: 3, Levels: []Level{{Node: 1, Level: 0}}})
	if ack, err := lc2.Recv(); err != nil || ack.Seq != 3 {
		t.Fatalf("ack 3: %+v err=%v", ack, err)
	}
	got := store.State()
	if got.LastSeq != 3 || got.SavedAtCycle != 3 || got.ThrPLW != 900 {
		t.Fatalf("replicated state: %+v", got)
	}
	if len(got.Levels) != 2 || got.Levels[0] != (Level{1, 0}) || got.Levels[1] != (Level{2, 0}) {
		t.Fatalf("replicated levels: %+v", got.Levels)
	}
	// A gap forces a resubscribe (new session) from the current seq.
	send(lc2, Entry{Seq: 9, Cycle: 9})
	lc3 := wire.NewConn(<-conns)
	sub3, err := lc3.Recv()
	if err != nil || sub3.Seq != 3 {
		t.Fatalf("post-gap resubscribe: %+v err=%v", sub3, err)
	}
	lc2.Close()
	lc3.Close()
}

func TestStandbyPromotesOnStaleLease(t *testing.T) {
	dir := t.TempDir()
	lease := &Lease{Path: filepath.Join(dir, "lease.json"), Every: 10 * time.Millisecond}
	// Leader renews for a while, then "dies".
	if err := lease.Write(LeaseState{Epoch: 1, Holder: "primary", RenewedAt: time.Now()}); err != nil {
		t.Fatal(err)
	}
	store, _ := Open("")
	store.ApplyRemote(Entry{Seq: 1, Cycle: 1, Levels: []Level{{Node: 1, Level: 2}}})

	var promoted Promotion
	promotedCh := make(chan struct{})
	sb, err := NewStandby(StandbyConfig{
		Follower: FollowerConfig{
			Store:   store,
			Backoff: 5 * time.Millisecond,
			Dial: func(ctx context.Context) (net.Conn, error) {
				return nil, fmt.Errorf("leader gone") // follower just churns
			},
		},
		Lease:      lease,
		MissBudget: 3,
		Holder:     "standby",
		OnPromote: func(p Promotion) error {
			promoted = p
			close(promotedCh)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() { defer close(done); sb.Run(ctx) }()

	select {
	case <-promotedCh:
	case <-time.After(5 * time.Second):
		t.Fatal("standby never promoted on a stale lease")
	}
	<-done
	if promoted.Epoch != 2 || promoted.Store != store {
		t.Fatalf("promotion: epoch=%d", promoted.Epoch)
	}
	if store.Epoch() != 2 {
		t.Fatalf("store epoch not bumped: %d", store.Epoch())
	}
	st, err := lease.Read()
	if err != nil || st.Epoch != 2 || st.Holder != "standby" {
		t.Fatalf("lease not claimed: %+v err=%v", st, err)
	}
	select {
	case <-sb.Promoted():
	default:
		t.Fatal("Promoted channel not closed")
	}
}

func TestStandbyWaitsForLeaseToExist(t *testing.T) {
	dir := t.TempDir()
	lease := &Lease{Path: filepath.Join(dir, "lease.json"), Every: 5 * time.Millisecond}
	store, _ := Open("")
	sb, err := NewStandby(StandbyConfig{
		Follower: FollowerConfig{Store: store, Addr: "127.0.0.1:1"},
		Lease:    lease, MissBudget: 2, Holder: "standby",
		OnPromote: func(p Promotion) error {
			t.Error("promoted with no leader ever seen")
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	done := make(chan struct{})
	go func() { defer close(done); sb.Run(ctx) }()
	<-done
}

func appendEnv(e Entry) (wire.Envelope, error) {
	raw, err := json.Marshal(e)
	if err != nil {
		return wire.Envelope{}, err
	}
	return wire.Envelope{Type: wire.KindJournalAppend, Seq: e.Seq, Epoch: e.Epoch, Entry: raw}, nil
}
