package replica

import (
	"encoding/json"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/wire"
)

// Publisher is the leader side of journal streaming, extracted so every
// journalled daemon — managerd and the federation coordinator alike —
// replicates to its standbys through one implementation.
//
// A standby's follower connects like any client and subscribes with a
// KindJournalAck carrying the sequence number its copy has reached; the
// embedding server routes the connection here. The subscriber is caught
// up synchronously under the publisher mutex (ring entries when the
// store's history still covers it, a full-snapshot reset entry
// otherwise) and then receives every entry the leader publishes, each
// acked back so Stats can report replication lag. A follower that
// stalls past its buffer is dropped rather than waited on — it redials
// and resumes from its own sequence number.

// pubSubBuf sizes each subscriber's outbound buffer. It must cover a
// full catch-up burst (the store ring) plus headroom for live entries
// committed while the writer drains it.
const pubSubBuf = 1024

type pubSub struct {
	conn   *wire.Conn
	ch     chan wire.Envelope
	closed chan struct{}
	acked  atomic.Uint64
}

// Publisher fans committed journal entries out to subscribed followers.
type Publisher struct {
	store        *Store
	writeTimeout time.Duration

	mu     sync.Mutex
	subs   map[*pubSub]struct{}
	closed bool

	stopCh chan struct{}
	wg     sync.WaitGroup
}

// NewPublisher builds a publisher over the leader's journal store.
// writeTimeout arms each frame write so a wedged follower cannot hold
// its buffer forever.
func NewPublisher(store *Store, writeTimeout time.Duration) *Publisher {
	return &Publisher{
		store:        store,
		writeTimeout: writeTimeout,
		subs:         make(map[*pubSub]struct{}),
		stopCh:       make(chan struct{}),
	}
}

// Serve owns one follower connection: catch it up from fromSeq,
// register it, and read acks until the connection dies. Epoch fencing
// and codec negotiation are the embedding server's concern — it has
// already inspected the subscribe frame by the time it calls Serve.
// Blocks until the follower disconnects or the publisher closes.
func (p *Publisher) Serve(conn *wire.Conn, fromSeq uint64) {
	sub := &pubSub{conn: conn, ch: make(chan wire.Envelope, pubSubBuf), closed: make(chan struct{})}
	sub.acked.Store(fromSeq)

	// Catch-up and registration are one critical section: entries
	// committed while we enqueue the backlog are published to sub's
	// channel behind it, so the follower sees a gap-free stream.
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		conn.Close()
		return
	}
	entries, ok := p.store.EntriesSince(fromSeq)
	if !ok {
		entries = []Entry{p.store.ResetEntry()}
	}
	for _, e := range entries {
		env, err := appendEnvelope(e)
		if err != nil {
			p.mu.Unlock()
			conn.Close()
			return
		}
		sub.ch <- env
	}
	p.subs[sub] = struct{}{}
	p.mu.Unlock()

	p.wg.Add(1)
	go p.runWriter(sub)

	for {
		env, err := conn.Recv()
		if err != nil {
			break
		}
		if env.Type == wire.KindJournalAck {
			sub.acked.Store(env.Seq)
		}
	}
	p.drop(sub)
}

// runWriter drains one subscriber's channel onto its connection under
// the write deadline.
func (p *Publisher) runWriter(sub *pubSub) {
	defer p.wg.Done()
	for {
		select {
		case <-sub.closed:
			return
		case <-p.stopCh:
			return
		case env := <-sub.ch:
			_ = sub.conn.SetWriteDeadline(time.Now().Add(p.writeTimeout))
			if err := sub.conn.Send(env); err != nil {
				p.drop(sub)
				return
			}
		}
	}
}

// Publish fans one committed journal entry out to every subscriber. A
// subscriber whose buffer is full is dropped rather than waited on — it
// will redial and resume.
func (p *Publisher) Publish(e Entry) {
	env, err := appendEnvelope(e)
	if err != nil {
		return
	}
	p.mu.Lock()
	var full []*pubSub
	for sub := range p.subs {
		select {
		case sub.ch <- env:
		default:
			full = append(full, sub)
		}
	}
	p.mu.Unlock()
	for _, sub := range full {
		p.drop(sub)
	}
}

// drop unregisters a subscriber and closes its connection; idempotent
// across the reader, writer and publisher paths.
func (p *Publisher) drop(sub *pubSub) {
	p.mu.Lock()
	_, present := p.subs[sub]
	delete(p.subs, sub)
	p.mu.Unlock()
	if present {
		close(sub.closed)
	}
	sub.conn.Close()
}

// Stats reports the connected-follower count and the worst replication
// lag in journal entries.
func (p *Publisher) Stats() (conns int, lag uint64) {
	head := p.store.Seq()
	p.mu.Lock()
	conns = len(p.subs)
	for sub := range p.subs {
		if a := sub.acked.Load(); head > a && head-a > lag {
			lag = head - a
		}
	}
	p.mu.Unlock()
	return conns, lag
}

// CloseSubs drops every subscriber but leaves the publisher usable —
// the depose path, where the fenced leader sheds its followers so they
// redial the new one.
func (p *Publisher) CloseSubs() {
	p.mu.Lock()
	subs := make([]*pubSub, 0, len(p.subs))
	for sub := range p.subs {
		subs = append(subs, sub)
	}
	p.mu.Unlock()
	for _, sub := range subs {
		p.drop(sub)
	}
}

// Close drops every subscriber, refuses new ones, and waits for the
// writer goroutines (the Stop path). Idempotent.
func (p *Publisher) Close() {
	p.mu.Lock()
	wasClosed := p.closed
	p.closed = true
	p.mu.Unlock()
	if !wasClosed {
		close(p.stopCh)
	}
	p.CloseSubs()
	p.wg.Wait()
}

// appendEnvelope frames one journal entry for the wire.
func appendEnvelope(e Entry) (wire.Envelope, error) {
	raw, err := json.Marshal(e)
	if err != nil {
		return wire.Envelope{}, err
	}
	return wire.Envelope{Type: wire.KindJournalAppend, Seq: e.Seq, Epoch: e.Epoch, Entry: raw}, nil
}
