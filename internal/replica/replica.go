// Package replica is the manager's high-availability layer: the journal
// Store keeps the crash-recovery state as a snapshot plus an ordered log
// of incremental entries, a file Lease carries leadership between a
// primary and its standbys, a Follower mirrors a live manager's journal
// over the wire (KindJournalAppend/KindJournalAck frames), and a Standby
// combines the two — it replicates until the lease goes stale, then
// promotes its journal copy into a new leader under a higher epoch.
//
// The store is the piece every other part leans on. One mutex serialises
// appends against snapshot compaction, and snapshots are built from the
// store's own level mirror — the state the appends themselves maintain —
// stamped with the last sequence number they cover. An append therefore
// lands either before a racing snapshot (and is inside it) or after (and
// is in the fresh log the compaction leaves behind); it can never be
// dropped between the two. Loading is snapshot + longest valid log
// prefix: a torn tail, a duplicate sequence number or a gap ends the
// replay at the last fully applied entry, never mid-entry.
package replica

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"

	"repro/internal/power"
)

// ringMax bounds the in-memory tail of recent entries kept for follower
// resume: a follower reconnecting within ringMax entries of the head
// catches up incrementally, an older one gets a full snapshot instead.
const ringMax = 512

// ErrGap reports an entry whose sequence number is not the next expected
// one — the follower must resubscribe from its current sequence so the
// leader can replay or reset it.
var ErrGap = errors.New("replica: entry gap, resubscribe from current sequence")

// Level records the last commanded power level for one node.
type Level struct {
	Node  int `json:"node"`
	Level int `json:"level"`
}

// Snapshot is the full journal state at one point: everything a restarted
// or promoted manager cannot re-derive from the fleet. LastSeq stamps the
// newest log entry the snapshot covers, which is what makes compaction
// and resume unambiguous.
type Snapshot struct {
	Epoch        uint64              `json:"epoch,omitempty"`
	LastSeq      uint64              `json:"last_seq,omitempty"`
	SavedAtCycle int                 `json:"saved_at_cycle"`
	ThrPLW       float64             `json:"pl_w,omitempty"`
	ThrPHW       float64             `json:"ph_w,omitempty"`
	Learner      *power.LearnerState `json:"learner,omitempty"`
	Levels       []Level             `json:"levels"`
}

// Entry is one incremental journal append: the levels that changed this
// cycle, plus the thresholds and learner state when they moved. A Reset
// entry instead carries a whole snapshot — the leader sends one to a
// follower too far behind the ring to catch up incrementally.
type Entry struct {
	Seq     uint64              `json:"seq"`
	Epoch   uint64              `json:"epoch,omitempty"`
	Cycle   int                 `json:"cycle,omitempty"`
	Levels  []Level             `json:"levels,omitempty"`
	ThrPLW  float64             `json:"pl_w,omitempty"`
	ThrPHW  float64             `json:"ph_w,omitempty"`
	Learner *power.LearnerState `json:"learner,omitempty"`
	Reset   *Snapshot           `json:"reset,omitempty"`
}

// Store is the journal: a level mirror plus thresholds/learner state,
// persisted (when opened with a path) as an atomic snapshot file and an
// append-only JSONL log beside it. All methods are safe for concurrent
// use; the store's mutex is a leaf lock — it never takes another.
type Store struct {
	mu      sync.Mutex
	path    string // snapshot path; "" = memory-only
	logPath string
	logF    *os.File

	seq     uint64
	epoch   uint64
	cycle   int
	plW     float64
	phW     float64
	learner *power.LearnerState
	levels  map[int]int
	dirty   map[int]bool // levels changed since the last committed entry
	ring    []Entry      // contiguous recent entries ending at seq
}

// Open loads (or creates) a store at path; "" builds a memory-only store
// (a follower's warm copy, or a manager journalling nowhere). A missing,
// truncated or corrupted snapshot cold-starts silently — the journal is
// advisory, never load-bearing for safety — and the log is replayed up to
// its longest valid prefix. The loaded state is then re-persisted
// compactly, clearing torn tails and duplicates, so the append log always
// starts empty after Open.
func Open(path string) (*Store, error) {
	s := &Store{path: path, levels: map[int]int{}, dirty: map[int]bool{}}
	if path == "" {
		return s, nil
	}
	s.logPath = path + ".log"
	if snap, err := readSnapshotFile(path); err == nil {
		s.adoptSnapshotLocked(snap)
	}
	replayLog(s, s.logPath)
	if err := s.compactLocked(); err != nil {
		return nil, err
	}
	return s, nil
}

// ReadState loads the state a store at path would open with — snapshot
// plus valid log prefix — without touching the files. Unlike Open it
// propagates a snapshot defect as an error, so tests and tools can tell a
// rejected journal from an empty one.
func ReadState(path string) (Snapshot, error) {
	snap, err := readSnapshotFile(path)
	if err != nil {
		return Snapshot{}, err
	}
	s := &Store{levels: map[int]int{}, dirty: map[int]bool{}}
	s.adoptSnapshotLocked(snap)
	replayLog(s, path+".log")
	return s.snapshotLocked(), nil
}

// Close flushes nothing (appends are written through) and releases the
// log file handle.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.logF == nil {
		return nil
	}
	err := s.logF.Close()
	s.logF = nil
	return err
}

// Persistent reports whether the store writes to disk.
func (s *Store) Persistent() bool { return s.path != "" }

// Seq returns the newest applied sequence number.
func (s *Store) Seq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

// Epoch returns the leadership epoch stamped on new entries.
func (s *Store) Epoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

// SetEpoch raises the epoch stamped on subsequent entries and snapshots.
// Lowering is ignored: epochs are monotonic across a store's lifetime.
func (s *Store) SetEpoch(e uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e > s.epoch {
		s.epoch = e
	}
}

// SetLevel records the newest commanded level for a node in the mirror.
// It only marks state; the change is persisted and published by the next
// CommitCycle. Callers may hold their own locks around it (managerd calls
// it under a shard mutex) — the store mutex is a leaf.
func (s *Store) SetLevel(nodeID, level int) {
	if nodeID < 0 || level < 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if cur, ok := s.levels[nodeID]; ok && cur == level {
		return
	}
	s.levels[nodeID] = level
	s.dirty[nodeID] = true
}

// CommitCycle closes one control cycle: if any level changed since the
// last commit, or the thresholds or learner state moved, it appends one
// entry covering the delta and returns it for publication to followers.
// With nothing changed it only advances the cycle watermark and returns
// false — quiet green stretches cost no journal writes.
func (s *Store) CommitCycle(cycle int, plW, phW float64, learner *power.LearnerState) (Entry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cycle = cycle
	var e Entry
	changed := false
	if len(s.dirty) > 0 {
		e.Levels = make([]Level, 0, len(s.dirty))
		for n := range s.dirty {
			e.Levels = append(e.Levels, Level{Node: n, Level: s.levels[n]})
		}
		sort.Slice(e.Levels, func(a, b int) bool { return e.Levels[a].Node < e.Levels[b].Node })
		s.dirty = map[int]bool{}
		changed = true
	}
	if plW > 0 && (plW != s.plW || phW != s.phW) {
		e.ThrPLW, e.ThrPHW = plW, phW
		s.plW, s.phW = plW, phW
		changed = true
	}
	if learner != nil && (s.learner == nil || *s.learner != *learner) {
		l := *learner
		e.Learner = &l
		s.learner = &l
		changed = true
	}
	if !changed {
		return Entry{}, false
	}
	s.seq++
	e.Seq, e.Epoch, e.Cycle = s.seq, s.epoch, cycle
	s.appendLineLocked(e)
	s.ringPushLocked(e)
	return e, true
}

// ApplyRemote applies one replicated entry on a follower. Duplicates
// (seq at or below the local head) are skipped silently so a resumed
// stream can overlap; a gap returns ErrGap and the caller resubscribes.
// A Reset entry replaces the whole state with the carried snapshot.
func (s *Store) ApplyRemote(e Entry) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e.Reset != nil {
		if err := validateSnapshot(*e.Reset); err != nil {
			return err
		}
		s.adoptSnapshotLocked(*e.Reset)
		if e.Seq > s.seq {
			s.seq = e.Seq
		}
		if e.Epoch > s.epoch {
			s.epoch = e.Epoch
		}
		s.ring = nil
		if s.path != "" {
			return s.compactLocked()
		}
		return nil
	}
	if e.Seq <= s.seq {
		return nil
	}
	if e.Seq != s.seq+1 {
		return ErrGap
	}
	if err := validateEntry(e); err != nil {
		return err
	}
	s.applyEntryLocked(e)
	s.appendLineLocked(e)
	s.ringPushLocked(e)
	return nil
}

// EntriesSince returns the entries after seq when the in-memory ring
// still covers them (ok=true, possibly empty when the follower is caught
// up); ok=false means the follower is too far behind and needs a Reset.
func (s *Store) EntriesSince(seq uint64) ([]Entry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if seq >= s.seq {
		return nil, true
	}
	need := s.seq - seq
	if uint64(len(s.ring)) < need {
		return nil, false
	}
	tail := s.ring[len(s.ring)-int(need):]
	if tail[0].Seq != seq+1 {
		return nil, false
	}
	out := make([]Entry, len(tail))
	copy(out, tail)
	return out, true
}

// ResetEntry builds the full-state catch-up entry for a follower the ring
// cannot serve, stamped with the current head sequence.
func (s *Store) ResetEntry() Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := s.snapshotLocked()
	return Entry{Seq: s.seq, Epoch: s.epoch, Reset: &snap}
}

// State returns a copy of the full journal state.
func (s *Store) State() Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.snapshotLocked()
}

// Empty reports whether the store holds no restorable state.
func (s *Store) Empty() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq == 0 && s.cycle == 0 && len(s.levels) == 0 && s.learner == nil
}

// Compact rewrites the snapshot from the mirror (stamped with the head
// sequence) and truncates the log. Because it runs under the same mutex
// as CommitCycle and ApplyRemote, an append racing it lands either before
// the snapshot (included in it) or after (written to the fresh log) —
// never dropped. Memory-only stores report wrote=false.
func (s *Store) Compact() (wrote bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.path == "" {
		return false, nil
	}
	return true, s.compactLocked()
}

// ---- internals (all require s.mu held, except the pure file readers) ----

func (s *Store) snapshotLocked() Snapshot {
	levels := make([]Level, 0, len(s.levels))
	for n, l := range s.levels {
		levels = append(levels, Level{Node: n, Level: l})
	}
	sort.Slice(levels, func(a, b int) bool { return levels[a].Node < levels[b].Node })
	var learner *power.LearnerState
	if s.learner != nil {
		c := *s.learner
		learner = &c
	}
	return Snapshot{
		Epoch: s.epoch, LastSeq: s.seq, SavedAtCycle: s.cycle,
		ThrPLW: s.plW, ThrPHW: s.phW, Learner: learner, Levels: levels,
	}
}

func (s *Store) adoptSnapshotLocked(snap Snapshot) {
	s.levels = make(map[int]int, len(snap.Levels))
	for _, l := range snap.Levels {
		s.levels[l.Node] = l.Level
	}
	s.dirty = map[int]bool{}
	s.seq = snap.LastSeq
	if snap.Epoch > s.epoch {
		s.epoch = snap.Epoch
	}
	s.cycle = snap.SavedAtCycle
	s.plW, s.phW = snap.ThrPLW, snap.ThrPHW
	s.learner = nil
	if snap.Learner != nil {
		c := *snap.Learner
		s.learner = &c
	}
}

func (s *Store) applyEntryLocked(e Entry) {
	for _, l := range e.Levels {
		s.levels[l.Node] = l.Level
		delete(s.dirty, l.Node)
	}
	if e.ThrPLW > 0 {
		s.plW, s.phW = e.ThrPLW, e.ThrPHW
	}
	if e.Learner != nil {
		c := *e.Learner
		s.learner = &c
	}
	if e.Cycle > 0 {
		s.cycle = e.Cycle
	}
	s.seq = e.Seq
	if e.Epoch > s.epoch {
		s.epoch = e.Epoch
	}
}

// appendLineLocked writes one entry to the log. Write errors are dropped:
// the journal is advisory, and a torn line only truncates the replayable
// prefix at the next load.
func (s *Store) appendLineLocked(e Entry) {
	if s.logF == nil {
		return
	}
	b, err := json.Marshal(e)
	if err != nil {
		return
	}
	_, _ = s.logF.Write(append(b, '\n'))
}

func (s *Store) ringPushLocked(e Entry) {
	s.ring = append(s.ring, e)
	if len(s.ring) > ringMax {
		s.ring = s.ring[len(s.ring)-ringMax:]
	}
}

// compactLocked writes the mirror as the snapshot (atomic tmp+rename) and
// restarts the log empty.
func (s *Store) compactLocked() error {
	snap := s.snapshotLocked()
	b, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return fmt.Errorf("replica: snapshot marshal: %w", err)
	}
	tmp, err := os.CreateTemp(dirOf(s.path), ".replica-*")
	if err != nil {
		return fmt.Errorf("replica: snapshot temp: %w", err)
	}
	if _, err := tmp.Write(append(b, '\n')); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("replica: snapshot write: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("replica: snapshot close: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("replica: snapshot rename: %w", err)
	}
	// Truncate the log only after the snapshot covering it is durable: a
	// crash in between leaves duplicate entries, which replay skips.
	if s.logF != nil {
		s.logF.Close()
	}
	f, err := os.Create(s.logPath)
	if err != nil {
		s.logF = nil
		return fmt.Errorf("replica: log create: %w", err)
	}
	s.logF = f
	return nil
}

func dirOf(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[:i]
		}
	}
	return "."
}

// readSnapshotFile loads and validates a snapshot file; any defect
// rejects it wholesale so the caller cold-starts rather than applying a
// partial state.
func readSnapshotFile(path string) (Snapshot, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Snapshot{}, err
	}
	var snap Snapshot
	if err := json.Unmarshal(b, &snap); err != nil {
		return Snapshot{}, fmt.Errorf("replica: snapshot decode: %w", err)
	}
	if err := validateSnapshot(snap); err != nil {
		return Snapshot{}, err
	}
	return snap, nil
}

func validateSnapshot(snap Snapshot) error {
	if snap.SavedAtCycle < 0 {
		return fmt.Errorf("replica: snapshot: negative cycle %d", snap.SavedAtCycle)
	}
	seen := make(map[int]bool, len(snap.Levels))
	for _, l := range snap.Levels {
		if l.Node < 0 || l.Level < 0 {
			return fmt.Errorf("replica: snapshot: invalid level entry %+v", l)
		}
		if seen[l.Node] {
			return fmt.Errorf("replica: snapshot: duplicate node %d", l.Node)
		}
		seen[l.Node] = true
	}
	return nil
}

func validateEntry(e Entry) error {
	for _, l := range e.Levels {
		if l.Node < 0 || l.Level < 0 {
			return fmt.Errorf("replica: entry %d: invalid level %+v", e.Seq, l)
		}
	}
	if e.Cycle < 0 {
		return fmt.Errorf("replica: entry %d: negative cycle", e.Seq)
	}
	return nil
}

// replayLog applies the longest valid prefix of the append log onto s:
// duplicates are skipped, and the first torn line, decode failure,
// validation failure or gap ends the replay — an interrupted append can
// shorten the recovered history but never corrupt it mid-entry.
func replayLog(s *Store, logPath string) {
	f, err := os.Open(logPath)
	if err != nil {
		return
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e Entry
		if json.Unmarshal(line, &e) != nil {
			return
		}
		if e.Reset != nil {
			if validateSnapshot(*e.Reset) != nil {
				return
			}
			s.adoptSnapshotLocked(*e.Reset)
			if e.Seq > s.seq {
				s.seq = e.Seq
			}
			continue
		}
		if e.Seq <= s.seq {
			continue
		}
		if e.Seq != s.seq+1 || validateEntry(e) != nil {
			return
		}
		s.applyEntryLocked(e)
	}
}
