package faultnet

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"os"
	"testing"
	"time"
)

// startEcho pumps every line the next accepted conn receives into a
// channel, closing it when the conn drops.
func startEcho(t *testing.T, ln net.Listener) <-chan string {
	t.Helper()
	lines := make(chan string, 1024)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			close(lines)
			return
		}
		sc := bufio.NewScanner(c)
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
	return lines
}

func dial(t *testing.T, n *Network, key uint64) net.Conn {
	t.Helper()
	c, err := n.Dial(context.Background(), key)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// collect drains lines until the channel closes or goes quiet.
func collect(lines <-chan string, quiet time.Duration) []string {
	var got []string
	for {
		select {
		case l, ok := <-lines:
			if !ok {
				return got
			}
			got = append(got, l)
		case <-time.After(quiet):
			return got
		}
	}
}

func TestCleanPassThrough(t *testing.T) {
	n := New(1)
	defer n.Close()
	lines := startEcho(t, n.Listener())
	c := dial(t, n, 7)
	for i := 0; i < 10; i++ {
		if _, err := fmt.Fprintf(c, "msg-%d\n", i); err != nil {
			t.Fatal(err)
		}
	}
	c.Close()
	got := collect(lines, time.Second)
	if len(got) != 10 || got[0] != "msg-0" || got[9] != "msg-9" {
		t.Errorf("got %v", got)
	}
}

// deliverUnderDrop runs one drop-faulted session and reports which
// messages arrived plus the client conn's stats.
func deliverUnderDrop(t *testing.T, seed int64, msgs int) ([]string, Stats) {
	t.Helper()
	n := New(seed)
	defer n.Close()
	n.SetDefaultProfiles(Profile{DropProb: 0.3, FirstWriteClean: true}, Profile{})
	lines := startEcho(t, n.Listener())
	c := dial(t, n, 3)
	for i := 0; i < msgs; i++ {
		if _, err := fmt.Fprintf(c, "msg-%d\n", i); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	client, _ := n.Link(3)
	st := client.Stats()
	c.Close()
	return collect(lines, time.Second), st
}

func TestDropsAreDeterministic(t *testing.T) {
	got1, st1 := deliverUnderDrop(t, 99, 200)
	got2, st2 := deliverUnderDrop(t, 99, 200)
	if st1.Dropped == 0 || st1.Dropped == 200 {
		t.Fatalf("drop fault not exercised: %+v", st1)
	}
	if st1 != st2 {
		t.Errorf("same seed, different stats: %+v vs %+v", st1, st2)
	}
	if len(got1) != len(got2) {
		t.Fatalf("same seed, different deliveries: %d vs %d", len(got1), len(got2))
	}
	for i := range got1 {
		if got1[i] != got2[i] {
			t.Errorf("delivery %d differs: %q vs %q", i, got1[i], got2[i])
		}
	}
	got3, _ := deliverUnderDrop(t, 100, 200)
	if len(got3) == len(got1) {
		t.Log("different seeds delivered equal counts (possible, not an error)")
	}
}

func TestFirstWriteCleanProtectsHello(t *testing.T) {
	n := New(5)
	defer n.Close()
	n.SetDefaultProfiles(Profile{DropProb: 1, FirstWriteClean: true}, Profile{})
	lines := startEcho(t, n.Listener())
	c := dial(t, n, 1)
	fmt.Fprint(c, "hello\n")
	fmt.Fprint(c, "sample\n")
	c.Close()
	got := collect(lines, time.Second)
	if len(got) != 1 || got[0] != "hello" {
		t.Errorf("got %v, want only the protected hello", got)
	}
}

func TestKillMidWrite(t *testing.T) {
	n := New(11)
	defer n.Close()
	n.SetDefaultProfiles(Profile{KillProb: 1}, Profile{})
	lines := startEcho(t, n.Listener())
	c := dial(t, n, 1)
	if _, err := fmt.Fprint(c, "a-long-enough-message\n"); err == nil {
		t.Error("kill-faulted write succeeded")
	}
	if _, err := fmt.Fprint(c, "after-kill\n"); err == nil {
		t.Error("write on killed conn succeeded")
	}
	got := collect(lines, time.Second)
	for _, l := range got {
		if l == "a-long-enough-message" {
			t.Error("full message delivered despite mid-write kill")
		}
	}
}

func TestCorruptFlipsAByte(t *testing.T) {
	n := New(13)
	defer n.Close()
	n.SetDefaultProfiles(Profile{CorruptProb: 1}, Profile{})
	ln := n.Listener()
	recv := make(chan []byte, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		buf := make([]byte, 64)
		nn, _ := c.Read(buf)
		recv <- buf[:nn]
	}()
	c := dial(t, n, 1)
	msg := []byte("abcdefgh\n")
	if _, err := c.Write(msg); err != nil {
		t.Fatal(err)
	}
	select {
	case got := <-recv:
		if bytes.Equal(got, msg) {
			t.Error("corrupt-faulted write delivered intact")
		}
		if len(got) != len(msg) {
			t.Errorf("corruption changed length: %d vs %d", len(got), len(msg))
		}
	case <-time.After(2 * time.Second):
		t.Fatal("nothing delivered")
	}
}

func TestTruncateDeliversPrefix(t *testing.T) {
	n := New(17)
	defer n.Close()
	n.SetDefaultProfiles(Profile{TruncateProb: 1}, Profile{})
	ln := n.Listener()
	recv := make(chan []byte, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		buf := make([]byte, 64)
		nn, _ := c.Read(buf)
		recv <- buf[:nn]
	}()
	c := dial(t, n, 1)
	msg := []byte("0123456789abcdef\n")
	wn, err := c.Write(msg)
	if err != nil || wn != len(msg) {
		t.Fatalf("truncated write must report full success, got n=%d err=%v", wn, err)
	}
	select {
	case got := <-recv:
		if len(got) >= len(msg) {
			t.Errorf("delivered %d bytes, want a proper prefix of %d", len(got), len(msg))
		}
		if !bytes.HasPrefix(msg, got) {
			t.Errorf("delivered %q is not a prefix of %q", got, msg)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("nothing delivered")
	}
}

func TestAsymmetricPartitionAndHeal(t *testing.T) {
	n := New(23)
	defer n.Close()
	lines := startEcho(t, n.Listener())
	c := dial(t, n, 9)

	n.Partition(9, true, false) // agent→manager down only
	fmt.Fprint(c, "during-partition\n")
	if got := collect(lines, 300*time.Millisecond); len(got) != 0 {
		t.Errorf("partitioned writes delivered: %v", got)
	}
	n.Heal(9)
	fmt.Fprint(c, "after-heal\n")
	got := collect(lines, time.Second)
	if len(got) != 1 || got[0] != "after-heal" {
		t.Errorf("after heal got %v", got)
	}
	client, server := n.Link(9)
	if st := client.Stats(); st.Blackhole != 1 {
		t.Errorf("client blackhole count = %d, want 1", st.Blackhole)
	}
	if st := server.Stats(); st.Blackhole != 0 {
		t.Errorf("asymmetric partition blackholed the server side: %+v", st)
	}
}

func TestPartitionSurvivesReconnect(t *testing.T) {
	n := New(29)
	defer n.Close()
	ln := n.Listener()
	go func() {
		for {
			if _, err := ln.Accept(); err != nil {
				return
			}
		}
	}()
	n.Partition(4, true, false)
	c := dial(t, n, 4) // dialled after the partition was installed
	client, _ := n.Link(4)
	done := make(chan struct{})
	go func() { fmt.Fprint(c, "x\n"); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("blackholed write blocked")
	}
	if st := client.Stats(); st.Blackhole != 1 {
		t.Errorf("partition not applied to fresh dial: %+v", st)
	}
}

func TestSlowReaderBackpressureAndWriteDeadline(t *testing.T) {
	n := New(31)
	defer n.Close()
	// The dialer reads at ~64 B/s; the server writes a message larger
	// than one sip under a short write deadline: it must time out.
	n.SetDefaultProfiles(Profile{ReadBytesPerSec: 64}, Profile{})
	ln := n.Listener()
	srvCh := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		srvCh <- c
	}()
	c := dial(t, n, 2)
	go func() { // slow reader keeps draining, just slowly
		buf := make([]byte, 256)
		for {
			if _, err := c.Read(buf); err != nil {
				return
			}
		}
	}()
	srv := <-srvCh
	if err := srv.SetWriteDeadline(time.Now().Add(100 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	msg := bytes.Repeat([]byte("x"), 512)
	start := time.Now()
	_, err := srv.Write(append(msg, '\n'))
	if err == nil {
		t.Fatal("write to slow reader finished under deadline; throttle ineffective")
	}
	var ne net.Error
	if !isTimeout(err, &ne) {
		t.Errorf("err = %v, want timeout", err)
	}
	if d := time.Since(start); d > 2*time.Second {
		t.Errorf("deadline took %v to fire", d)
	}
}

func isTimeout(err error, ne *net.Error) bool {
	if e, ok := err.(net.Error); ok {
		*ne = e
		return e.Timeout()
	}
	return false
}

func TestNetworkKillBreaksBothEnds(t *testing.T) {
	n := New(37)
	defer n.Close()
	lines := startEcho(t, n.Listener())
	c := dial(t, n, 6)
	fmt.Fprint(c, "pre\n")
	if !n.Kill(6) {
		t.Fatal("no live link to kill")
	}
	if _, err := fmt.Fprint(c, "post\n"); err == nil {
		t.Error("write on killed link succeeded")
	}
	got := collect(lines, time.Second)
	if len(got) != 1 || got[0] != "pre" {
		t.Errorf("got %v", got)
	}
	if n.Kill(999) {
		t.Error("killed a link that never existed")
	}
}

func TestDialAfterCloseFails(t *testing.T) {
	n := New(41)
	n.Close()
	if _, err := n.Dial(context.Background(), 1); err == nil {
		t.Error("dial on closed network succeeded")
	}
	n.Close() // idempotent
}

// TestListenerCloseKeepsNetworkAlive is the manager-restart contract:
// closing one listener stops its Accept with net.ErrClosed but leaves the
// network dialable, and a dial parked while no listener was accepting is
// delivered to the next listener — so agents that redialled during a
// manager crash are picked up by the restarted manager.
func TestListenerCloseKeepsNetworkAlive(t *testing.T) {
	n := New(53)
	defer n.Close()

	ln1 := n.Listener()
	errCh := make(chan error, 1)
	go func() { _, err := ln1.Accept(); errCh <- err }()
	ln1.Close()
	select {
	case err := <-errCh:
		if !errors.Is(err, net.ErrClosed) {
			t.Fatalf("closed listener Accept err = %v, want net.ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Accept did not return after listener close")
	}

	// Dial with the manager "down": the connection parks in the accept
	// queue.
	c := dial(t, n, 9)
	go fmt.Fprint(c, "hello-from-downtime\n")

	// The "restarted manager" opens a fresh listener and receives it.
	lines := startEcho(t, n.Listener())
	got := collect(lines, 2*time.Second)
	if len(got) != 1 || got[0] != "hello-from-downtime" {
		t.Errorf("restarted listener got %v", got)
	}
}

func TestDialCancelledContext(t *testing.T) {
	n := New(43)
	defer n.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := n.Dial(ctx, 1); err == nil {
		t.Error("dial with cancelled context succeeded")
	}
}

func TestMain(m *testing.M) { os.Exit(m.Run()) }
