// Package faultnet is a deterministic fault-injecting network layer for
// testing the agent/manager daemon plane under adversarial conditions.
//
// It provides two pieces:
//
//   - Conn: a net.Conn wrapper that injects configurable write latency and
//     jitter, probabilistic message drops, mid-write connection kills, byte
//     corruption and truncation, directional blackholes (for asymmetric
//     partitions) and slow-reader throttling (backpressure).
//   - Network: an in-memory listener/dialer pair built on net.Pipe, so an
//     entire managerd+agentd cluster runs in one process with no sockets,
//     every connection routed through fault-injecting wrappers.
//
// Every random decision is drawn from a *rand.Rand derived deterministically
// from (network seed, connection key, dial attempt), so a failure sequence
// replays exactly for a given seed regardless of wall-clock timing: the k-th
// write on the j-th connection of agent i sees the same fault on every run.
//
// The wire protocol is newline-delimited JSON where one message is one
// bufio flush, i.e. one Write call on the wrapped conn — so per-Write fault
// rolls are per-message fault rolls.
package faultnet

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Profile configures the fault behaviour of one direction of a connection
// (the wrapped side's writes, plus its read throttle). The zero value is a
// clean, transparent conn.
type Profile struct {
	// Latency is added to every delivered write; Jitter adds a further
	// uniformly random [0, Jitter) on top.
	Latency time.Duration
	Jitter  time.Duration

	// DropProb is the probability a write (= one protocol message) is
	// silently discarded: the writer sees success, the peer sees nothing.
	DropProb float64

	// KillProb is the probability a write delivers only a prefix of its
	// payload and then kills the connection (both directions), modelling a
	// connection reset mid-message.
	KillProb float64

	// CorruptProb is the probability one random byte of a write is
	// flipped before delivery.
	CorruptProb float64

	// TruncateProb is the probability a write delivers only a random
	// proper prefix (the connection stays up, desynchronising the
	// newline framing exactly as a half-delivered TCP segment would).
	TruncateProb float64

	// ReadBytesPerSec throttles this side's reads to roughly the given
	// sustained rate (0 = unlimited). Because the underlying pipe is
	// synchronous, a slow reader exerts real backpressure: the peer's
	// writes block until the throttled reader drains them.
	ReadBytesPerSec int

	// FirstWriteClean exempts the connection's first write from drop,
	// kill, corrupt and truncate rolls (latency still applies). The first
	// write carries the protocol hello; protecting it keeps fault-rate
	// accounting focused on the steady-state sample/command stream.
	FirstWriteClean bool
}

// clean reports whether the profile injects no faults at all.
func (p Profile) clean() bool {
	return p.Latency == 0 && p.Jitter == 0 && p.DropProb == 0 && p.KillProb == 0 &&
		p.CorruptProb == 0 && p.TruncateProb == 0 && p.ReadBytesPerSec == 0
}

// Stats counts the faults a Conn actually injected. Harness accounting
// checks compare these against the daemon's own counters.
type Stats struct {
	Writes    int // writes attempted
	Dropped   int // writes silently discarded
	Killed    int // writes that killed the connection
	Corrupted int // writes with a flipped byte
	Truncated int // writes delivered as a proper prefix
	Blackhole int // writes discarded by a partition
}

// add folds another counter set into s.
func (s *Stats) add(o Stats) {
	s.Writes += o.Writes
	s.Dropped += o.Dropped
	s.Killed += o.Killed
	s.Corrupted += o.Corrupted
	s.Truncated += o.Truncated
	s.Blackhole += o.Blackhole
}

// Conn wraps a net.Conn with fault injection. It implements net.Conn;
// deadlines pass through to the underlying conn (net.Pipe supports them).
// One Conn wraps one side of a link: its Write faults model that side's
// outbound path, its read throttle models that side's inbound drain rate.
type Conn struct {
	inner net.Conn

	mu    sync.Mutex // guards rng, prof, stats
	rng   *rand.Rand
	prof  Profile
	stats Stats
	wrote bool

	blackhole atomic.Bool // partition: discard writes silently
	killed    atomic.Bool
}

// Wrap builds a fault-injecting wrapper around inner. The rng must be
// dedicated to this conn; Conn serialises access to it internally.
func Wrap(inner net.Conn, prof Profile, rng *rand.Rand) *Conn {
	return &Conn{inner: inner, prof: prof, rng: rng}
}

// Stats returns a snapshot of the faults injected so far.
func (c *Conn) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// SetProfile swaps the fault profile at runtime (e.g. turning a healthy
// agent into a slow reader mid-soak).
func (c *Conn) SetProfile(p Profile) {
	c.mu.Lock()
	c.prof = p
	c.mu.Unlock()
}

// SetBlackhole silently discards (true) or delivers (false) this side's
// writes: one direction of an asymmetric partition. The connection stays
// established — exactly the failure a switch ACL or overflowing queue
// produces, as opposed to a clean close.
func (c *Conn) SetBlackhole(on bool) { c.blackhole.Store(on) }

// Write applies the fault schedule to one outbound message.
func (c *Conn) Write(p []byte) (int, error) {
	if c.killed.Load() {
		return 0, fmt.Errorf("faultnet: connection killed")
	}
	c.mu.Lock()
	prof := c.prof
	first := !c.wrote
	c.wrote = true
	c.stats.Writes++
	// Draw every roll up front, under the lock, so the per-connection
	// fault sequence depends only on the write index — never on timing.
	var delay time.Duration
	if prof.Latency > 0 || prof.Jitter > 0 {
		delay = prof.Latency
		if prof.Jitter > 0 {
			delay += time.Duration(c.rng.Int63n(int64(prof.Jitter)))
		}
	}
	roll := c.rng.Float64()
	cut := 0
	if len(p) > 1 {
		cut = 1 + c.rng.Intn(len(p)-1)
	}
	flip := 0
	if len(p) > 0 {
		flip = c.rng.Intn(len(p))
	}
	if c.blackhole.Load() {
		c.stats.Blackhole++
		c.mu.Unlock()
		return len(p), nil
	}
	if first && prof.FirstWriteClean {
		roll = 2 // outside every probability band
	}
	// The bands partition [0,1): a write suffers at most one fault kind.
	pDrop := prof.DropProb
	pKill := pDrop + prof.KillProb
	pCorrupt := pKill + prof.CorruptProb
	pTrunc := pCorrupt + prof.TruncateProb
	var fault string
	switch {
	case roll < pDrop:
		fault = "drop"
		c.stats.Dropped++
	case roll < pKill:
		fault = "kill"
		c.stats.Killed++
	case roll < pCorrupt:
		fault = "corrupt"
		c.stats.Corrupted++
	case roll < pTrunc:
		fault = "truncate"
		c.stats.Truncated++
	}
	c.mu.Unlock()

	if delay > 0 {
		time.Sleep(delay)
	}
	switch fault {
	case "drop":
		return len(p), nil
	case "kill":
		if cut > 0 {
			_, _ = c.inner.Write(p[:cut])
		}
		c.killed.Store(true)
		c.inner.Close()
		return cut, fmt.Errorf("faultnet: connection killed mid-write")
	case "corrupt":
		q := make([]byte, len(p))
		copy(q, p)
		if len(q) > 0 {
			q[flip] ^= 0x20
		}
		p = q
	case "truncate":
		if cut > 0 {
			n, err := c.inner.Write(p[:cut])
			if err != nil {
				return n, err
			}
		}
		// Report full delivery: the writer believes the message left,
		// as with bytes parked in a kernel buffer at connection loss.
		return len(p), nil
	}
	return c.inner.Write(p)
}

// Read delivers inbound bytes, throttled to the profile's read rate.
func (c *Conn) Read(p []byte) (int, error) {
	c.mu.Lock()
	rate := c.prof.ReadBytesPerSec
	c.mu.Unlock()
	if rate <= 0 {
		return c.inner.Read(p)
	}
	// Read in small sips and sleep proportionally, so the synchronous
	// pipe makes the peer's writes stall — genuine backpressure.
	max := rate / 10
	if max < 1 {
		max = 1
	}
	if len(p) > max {
		p = p[:max]
	}
	n, err := c.inner.Read(p)
	if n > 0 {
		time.Sleep(time.Duration(n) * time.Second / time.Duration(rate))
	}
	return n, err
}

// Close closes the underlying conn.
func (c *Conn) Close() error { return c.inner.Close() }

// LocalAddr returns the underlying local address.
func (c *Conn) LocalAddr() net.Addr { return c.inner.LocalAddr() }

// RemoteAddr returns the underlying remote address.
func (c *Conn) RemoteAddr() net.Addr { return c.inner.RemoteAddr() }

// SetDeadline passes through to the underlying conn.
func (c *Conn) SetDeadline(t time.Time) error { return c.inner.SetDeadline(t) }

// SetReadDeadline passes through to the underlying conn.
func (c *Conn) SetReadDeadline(t time.Time) error { return c.inner.SetReadDeadline(t) }

// SetWriteDeadline passes through to the underlying conn.
func (c *Conn) SetWriteDeadline(t time.Time) error { return c.inner.SetWriteDeadline(t) }
