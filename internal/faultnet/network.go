package faultnet

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"sync"
)

// Addr is the trivial address type of the in-memory network.
type Addr struct{ Name string }

// Network implements net.Addr.
func (a Addr) Network() string { return "faultnet" }

// String implements net.Addr.
func (a Addr) String() string { return a.Name }

// link is one live dialer↔listener connection pair.
type link struct {
	key     uint64
	attempt uint64
	client  *Conn // dialer side (agent): writes travel agent→manager
	server  *Conn // accepted side (manager): writes travel manager→agent
}

// partition records the desired blackhole state per connection key, so it
// survives reconnects: an agent that redials into a partition is still
// partitioned.
type partition struct {
	toServer   bool // client writes discarded (agent→manager down)
	fromServer bool // server writes discarded (manager→agent down)
}

// Network is an in-memory fault-injecting transport: Dial on one side,
// Accept on the other, no sockets involved. All connections derive their
// fault randomness from the network seed, so a chaos scenario replays
// deterministically.
type Network struct {
	seed int64

	mu         sync.Mutex
	clientProf map[uint64]Profile // per-key override for the dialer side
	defClient  Profile
	defServer  Profile
	links      map[uint64]*link // newest link per key
	attempts   map[uint64]uint64
	parts      map[uint64]partition
	accept     chan net.Conn
	done       chan struct{}
	retired    Stats // folded-in counters of links replaced by redials
	closed     bool
}

// New creates a network whose every fault decision derives from seed.
func New(seed int64) *Network {
	return &Network{
		seed:       seed,
		clientProf: make(map[uint64]Profile),
		links:      make(map[uint64]*link),
		attempts:   make(map[uint64]uint64),
		parts:      make(map[uint64]partition),
		// Accept queue sized for the scale harness: a full 1024-agent herd
		// may dial before the accept loop drains anyone.
		accept: make(chan net.Conn, 1024),
		done:   make(chan struct{}),
	}
}

// SetDefaultProfiles sets the fault profiles applied to the dialer side
// (client: e.g. agent→manager sample stream) and the accepted side
// (server: e.g. manager→agent command stream) of future connections.
func (n *Network) SetDefaultProfiles(client, server Profile) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.defClient, n.defServer = client, server
}

// SetClientProfile overrides the dialer-side profile for one key, applying
// to the current link (if any) and all future redials.
func (n *Network) SetClientProfile(key uint64, p Profile) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.clientProf[key] = p
	if l, ok := n.links[key]; ok {
		l.client.SetProfile(p)
	}
}

// splitmix64 scrambles the (seed, key, attempt) triple into an independent
// per-connection RNG seed (same finaliser as sim's RNG streams).
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Dial opens a connection identified by key (the caller's stable identity,
// e.g. the node ID). The returned conn injects the client profile; the
// matching server-side conn is delivered to the Listener. Fault randomness
// is seeded from (network seed, key, per-key attempt counter), so each
// (agent, reconnect) pair replays the same fault sequence on every run.
func (n *Network) Dial(ctx context.Context, key uint64) (net.Conn, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil, fmt.Errorf("faultnet: network closed")
	}
	attempt := n.attempts[key]
	n.attempts[key] = attempt + 1
	cprof, ok := n.clientProf[key]
	if !ok {
		cprof = n.defClient
	}
	sprof := n.defServer
	part := n.parts[key]
	n.mu.Unlock()

	p1, p2 := net.Pipe()
	base := splitmix64(uint64(n.seed) ^ splitmix64(key) ^ splitmix64(attempt<<32))
	client := Wrap(p1, cprof, rand.New(rand.NewSource(int64(base))))
	server := Wrap(p2, sprof, rand.New(rand.NewSource(int64(splitmix64(base)))))
	client.SetBlackhole(part.toServer)
	server.SetBlackhole(part.fromServer)
	l := &link{key: key, attempt: attempt, client: client, server: server}

	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		p1.Close()
		p2.Close()
		return nil, fmt.Errorf("faultnet: network closed")
	}
	if old, ok := n.links[key]; ok {
		n.retired.add(old.client.Stats())
		n.retired.add(old.server.Stats())
	}
	n.links[key] = l
	n.mu.Unlock()

	select {
	case n.accept <- server:
		return client, nil
	case <-n.done:
		p1.Close()
		p2.Close()
		return nil, fmt.Errorf("faultnet: network closed")
	case <-ctx.Done():
		p1.Close()
		p2.Close()
		return nil, ctx.Err()
	}
}

// Link returns the current client/server conn pair for key (nil, nil if
// the key has no live link), for per-connection fault steering and stats.
func (n *Network) Link(key uint64) (client, server *Conn) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if l, ok := n.links[key]; ok {
		return l.client, l.server
	}
	return nil, nil
}

// Kill force-closes the current connection of key (both directions),
// driving the dialer through its reconnect path. It reports whether a
// live link existed.
func (n *Network) Kill(key uint64) bool {
	n.mu.Lock()
	l, ok := n.links[key]
	n.mu.Unlock()
	if !ok {
		return false
	}
	l.client.Close()
	l.server.Close()
	return true
}

// Partition installs an asymmetric partition for key: toServer silences
// the dialer's writes, fromServer silences the accepted side's writes.
// The state persists across reconnects until healed.
func (n *Network) Partition(key uint64, toServer, fromServer bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.parts[key] = partition{toServer: toServer, fromServer: fromServer}
	if l, ok := n.links[key]; ok {
		l.client.SetBlackhole(toServer)
		l.server.SetBlackhole(fromServer)
	}
}

// Heal removes key's partition in both directions.
func (n *Network) Heal(key uint64) { n.Partition(key, false, false) }

// Stats sums injected-fault counters across every connection the network
// has carried: live links plus links retired by redials.
func (n *Network) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	sum := n.retired
	for _, l := range n.links {
		sum.add(l.client.Stats())
		sum.add(l.server.Stats())
	}
	return sum
}

// Listener exposes the accepted side of the network as a net.Listener.
// Each call returns an independent listener: closing one stops its Accept
// without tearing the network down, so a crashed-and-restarted manager can
// open a fresh listener over the same network while agents keep redialling.
func (n *Network) Listener() net.Listener {
	return &listener{n: n, done: make(chan struct{})}
}

// Close shuts the network down: pending and future Dials fail and the
// listener's Accept returns an error.
func (n *Network) Close() {
	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return
	}
	n.closed = true
	close(n.done)
	links := n.links
	n.mu.Unlock()
	for _, l := range links {
		l.client.Close()
		l.server.Close()
	}
}

type listener struct {
	n    *Network
	done chan struct{}
	once sync.Once
}

// Accept returns the server side of the next dialled connection. It
// returns net.ErrClosed once the listener or the network is closed, so
// accept loops can distinguish shutdown from transient faults.
func (l *listener) Accept() (net.Conn, error) {
	select {
	case c := <-l.n.accept:
		return c, nil
	case <-l.n.done:
		return nil, net.ErrClosed
	case <-l.done:
		return nil, net.ErrClosed
	}
}

// Close closes this listener only; the network, its live links and any
// other listeners stay up. Dials made while no listener is accepting park
// in the accept queue until a new listener drains them.
func (l *listener) Close() error {
	l.once.Do(func() { close(l.done) })
	return nil
}

// Addr implements net.Listener.
func (l *listener) Addr() net.Addr { return Addr{Name: "faultnet"} }
