package budget_test

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/budget"
	"repro/internal/pdist"
	"repro/internal/proptest"
	"repro/internal/units"
)

// propCfg pins the master seed so CI is deterministic; replay any failure
// with PROPTEST_SEED=<printed seed>.
var propCfg = proptest.Config{NumTrials: 300, Seed: 90_01}

var divisions = []budget.Division{budget.Uniform, budget.Proportional, budget.FairShare}

// drawDemands builds a random cabinet roster: wants spanning idle racks
// to power-hungry ones, floors below want or occasionally above it, and
// breaker caps from a pdist topology on some trials (0 = uncapped).
func drawDemands(g *proptest.Generator) (ds []budget.Demand, breaker float64) {
	n := g.IntRange(1, 24)
	if g.Bool(0.6) {
		// Breaker ratings come from a pdist monitor's per-cabinet rating.
		layout := pdist.Layout{Cabinets: n, NodesPer: g.IntRange(1, 64)}
		rating := units.Watts(g.Range(500, 50_000))
		if _, err := pdist.NewMonitor(layout, rating); err == nil {
			breaker = float64(rating)
		}
	}
	ds = make([]budget.Demand, n)
	for i := range ds {
		ds[i] = budget.Demand{
			ID:   i,
			Want: g.Range(0, 60_000),
			Cap:  breaker,
		}
		if g.Bool(0.5) {
			ds[i].Floor = g.Range(0, 2_000)
		}
	}
	return ds, breaker
}

func sum(xs []float64) float64 {
	t := 0.0
	for _, x := range xs {
		t += x
	}
	return t
}

// TestDivideSumsWithinParentBudget: no strategy ever hands out more than
// the parent budget (to float tolerance), and never a negative share.
func TestDivideSumsWithinParentBudget(t *testing.T) {
	proptest.MustCheck(t, "divide-sum", propCfg, func(g *proptest.Generator) error {
		ds, _ := drawDemands(g)
		total := g.Range(1, 200_000)
		for _, div := range divisions {
			shares := budget.Divide(total, div, ds)
			if s := sum(shares); s > total*(1+1e-9)+1e-6 {
				return fmt.Errorf("%v: shares sum %.6f above budget %.6f", div, s, total)
			}
			for i, s := range shares {
				if s < 0 {
					return fmt.Errorf("%v: negative share[%d] = %v", div, i, s)
				}
			}
		}
		return nil
	})
}

// TestDivideRespectsBreakerRatings: with per-cabinet breaker ratings from
// pdist as caps, no strategy grants any cabinet a share above its rating.
func TestDivideRespectsBreakerRatings(t *testing.T) {
	proptest.MustCheck(t, "divide-breaker", propCfg, func(g *proptest.Generator) error {
		ds, breaker := drawDemands(g)
		if breaker == 0 {
			return nil // uncapped trial: nothing to check here
		}
		total := g.Range(1, 400_000)
		for _, div := range divisions {
			shares := budget.Divide(total, div, ds)
			for i, s := range shares {
				if s > breaker*(1+1e-9)+1e-6 {
					return fmt.Errorf("%v: share[%d] = %.6f above breaker %.6f", div, i, s, breaker)
				}
			}
		}
		return nil
	})
}

// TestDivideMonotoneInDemand: raising one child's demand (all else equal)
// never lowers that child's share, for every strategy.
func TestDivideMonotoneInDemand(t *testing.T) {
	proptest.MustCheck(t, "divide-monotone", propCfg, func(g *proptest.Generator) error {
		ds, _ := drawDemands(g)
		total := g.Range(1, 200_000)
		i := g.Intn(len(ds))
		bumped := make([]budget.Demand, len(ds))
		copy(bumped, ds)
		bumped[i].Want += g.Range(0, 30_000)
		for _, div := range divisions {
			before := budget.Divide(total, div, ds)
			after := budget.Divide(total, div, bumped)
			if after[i] < before[i]-1e-6 {
				return fmt.Errorf("%v: share[%d] fell %.6f → %.6f when demand rose %.1f → %.1f",
					div, i, before[i], after[i], ds[i].Want, bumped[i].Want)
			}
		}
		return nil
	})
}

// TestDivideFullySpendsFeasibleBudget: when the budget fits under the
// children's combined caps, every strategy spends (almost) all of it —
// the division may not strand provisioned power.
func TestDivideFullySpendsFeasibleBudget(t *testing.T) {
	proptest.MustCheck(t, "divide-spend", propCfg, func(g *proptest.Generator) error {
		ds, breaker := drawDemands(g)
		capSum := math.Inf(1)
		if breaker > 0 {
			capSum = breaker * float64(len(ds))
		}
		total := g.Range(1, 200_000)
		if total > capSum {
			total = capSum * g.Float64()
		}
		for _, div := range divisions {
			shares := budget.Divide(total, div, ds)
			if s := sum(shares); s < total*(1-1e-6)-1e-6 {
				return fmt.Errorf("%v: only %.6f of %.6f spent", div, s, total)
			}
		}
		return nil
	})
}
