package budget

import (
	"math"
	"testing"
)

func sum(xs []float64) float64 {
	t := 0.0
	for _, x := range xs {
		t += x
	}
	return t
}

func TestUniformSplitsEvenly(t *testing.T) {
	ds := []Demand{{ID: 0}, {ID: 1}, {ID: 2}, {ID: 3}}
	shares := Divide(400, Uniform, ds)
	for i, s := range shares {
		if math.Abs(s-100) > 1e-9 {
			t.Fatalf("share[%d] = %v, want 100", i, s)
		}
	}
}

func TestUniformRespectsCaps(t *testing.T) {
	ds := []Demand{{Cap: 10}, {}, {}}
	shares := Divide(310, Uniform, ds)
	if math.Abs(shares[0]-10) > 1e-9 {
		t.Fatalf("capped child got %v, want 10", shares[0])
	}
	if math.Abs(shares[1]-150) > 1e-9 || math.Abs(shares[2]-150) > 1e-9 {
		t.Fatalf("overflow not re-spread: %v", shares)
	}
}

func TestProportionalMatchesOnePassFormula(t *testing.T) {
	// Uncapped proportional must reproduce the original nodemgr formula:
	// share_i = total * max(want_i, floor) / Σ max(want_j, floor).
	ds := []Demand{
		{Want: 100, Floor: 50},
		{Want: 20, Floor: 50}, // floored up to 50
		{Want: 250, Floor: 50},
	}
	shares := Divide(1000, Proportional, ds)
	total := 100.0 + 50 + 250
	want := []float64{1000 * 100 / total, 1000 * 50 / total, 1000 * 250 / total}
	for i := range shares {
		if math.Abs(shares[i]-want[i]) > 1e-6 {
			t.Fatalf("share[%d] = %v, want %v", i, shares[i], want[i])
		}
	}
}

func TestProportionalCapOverflowRespreads(t *testing.T) {
	ds := []Demand{
		{Want: 900, Cap: 100},
		{Want: 100},
	}
	shares := Divide(1000, Proportional, ds)
	if math.Abs(shares[0]-100) > 1e-9 {
		t.Fatalf("capped child got %v, want 100", shares[0])
	}
	if math.Abs(shares[1]-900) > 1e-6 {
		t.Fatalf("overflow child got %v, want 900", shares[1])
	}
}

func TestProportionalZeroDemandFallsBackToEqual(t *testing.T) {
	ds := []Demand{{}, {}, {}}
	shares := Divide(300, Proportional, ds)
	for i, s := range shares {
		if math.Abs(s-100) > 1e-9 {
			t.Fatalf("share[%d] = %v, want 100", i, s)
		}
	}
}

func TestFairShareMeetsSmallDemandsFirst(t *testing.T) {
	// Budget 300 over demands {50, 100, 1000}: the small demands are met
	// in full, the hungry child takes what is left.
	ds := []Demand{{Want: 1000}, {Want: 50}, {Want: 100}}
	shares := Divide(300, FairShare, ds)
	if math.Abs(shares[1]-50) > 1e-9 || math.Abs(shares[2]-100) > 1e-9 {
		t.Fatalf("small demands not met: %v", shares)
	}
	if math.Abs(shares[0]-150) > 1e-6 {
		t.Fatalf("hungry child got %v, want 150", shares[0])
	}
}

func TestFairShareSurplusSpreadsAsHeadroom(t *testing.T) {
	// Budget 600 over demands {100, 100}: each is met, and the 400 W
	// surplus spreads evenly as headroom.
	ds := []Demand{{Want: 100}, {Want: 100}}
	shares := Divide(600, FairShare, ds)
	for i, s := range shares {
		if math.Abs(s-300) > 1e-6 {
			t.Fatalf("share[%d] = %v, want 300", i, s)
		}
	}
}

func TestFairShareSurplusRespectsCaps(t *testing.T) {
	ds := []Demand{{Want: 100, Cap: 150}, {Want: 100}}
	shares := Divide(600, FairShare, ds)
	if shares[0] > 150+1e-9 {
		t.Fatalf("capped child exceeded breaker: %v", shares[0])
	}
	if s := sum(shares); s > 600+1e-6 {
		t.Fatalf("shares sum %v above budget", s)
	}
	if math.Abs(shares[1]-450) > 1e-6 {
		t.Fatalf("uncapped child got %v, want 450", shares[1])
	}
}

func TestDivideDegenerateInputs(t *testing.T) {
	if got := Divide(0, Proportional, []Demand{{Want: 1}}); got[0] != 0 {
		t.Fatalf("zero budget gave %v", got)
	}
	if got := Divide(-5, FairShare, []Demand{{Want: 1}}); got[0] != 0 {
		t.Fatalf("negative budget gave %v", got)
	}
	if got := Divide(100, Uniform, nil); len(got) != 0 {
		t.Fatalf("empty demands gave %v", got)
	}
	// Budget smaller than the sum of caps still sums correctly.
	shares := Divide(10, Uniform, []Demand{{Cap: 100}, {Cap: 100}})
	if s := sum(shares); math.Abs(s-10) > 1e-9 {
		t.Fatalf("tiny budget mis-summed: %v", shares)
	}
}

func TestDivisionParseRoundTrip(t *testing.T) {
	for _, d := range []Division{Uniform, Proportional, FairShare} {
		got, err := ParseDivision(d.String())
		if err != nil || got != d {
			t.Fatalf("ParseDivision(%q) = %v, %v", d.String(), got, err)
		}
	}
	if _, err := ParseDivision("nope"); err == nil {
		t.Fatal("ParseDivision accepted garbage")
	}
	if Division(42).Valid() {
		t.Fatal("Division(42) claims valid")
	}
}
