package budget

import (
	"math"
	"testing"
)

var allDivisions = []Division{Uniform, Proportional, FairShare}

// TestZeroDemandFleetSplitsEqually pins the idle-fleet edge: every child
// reports zero demand and zero floor (a freshly-booted federation before
// the first report round). No strategy may divide by the zero demand
// sum; all must degrade to the equal split and still spend the whole
// budget as headroom.
func TestZeroDemandFleetSplitsEqually(t *testing.T) {
	ds := []Demand{{ID: 0}, {ID: 1}, {ID: 2}, {ID: 3}}
	for _, div := range allDivisions {
		shares := Divide(600, div, ds)
		for i, s := range shares {
			if math.Abs(s-150) > 1e-9 {
				t.Errorf("%v: share[%d] = %v, want 150", div, i, s)
			}
		}
		if math.Abs(sum(shares)-600) > 1e-6 {
			t.Errorf("%v: zero-demand fleet spent %v of 600", div, sum(shares))
		}
	}
}

// TestAllChildrenLostYieldsNoShares pins the all-cabinets-lost edge: the
// coordinator excludes lost children from the division entirely (their
// reserve is subtracted from the budget before the call), so with every
// child lost the division runs over an empty — or nil — list. That must
// yield zero shares without panicking mid-control-loop.
func TestAllChildrenLostYieldsNoShares(t *testing.T) {
	for _, div := range allDivisions {
		if shares := Divide(1000, div, nil); len(shares) != 0 {
			t.Errorf("%v: nil demands produced shares %v", div, shares)
		}
		if shares := Divide(1000, div, []Demand{}); len(shares) != 0 {
			t.Errorf("%v: empty demands produced shares %v", div, shares)
		}
	}
}

// TestCapBelowFloorCapWins pins the conflicting-knob precedence: a child
// whose breaker rating sits below its weighting floor (a mis-sized or
// derated cabinet) is granted at most Cap — the floor raises its demand
// signal, never its hard bound — and the overflow re-spreads to its
// siblings, so the budget is still fully spent.
func TestCapBelowFloorCapWins(t *testing.T) {
	ds := []Demand{
		{ID: 0, Want: 10, Floor: 500, Cap: 200}, // breaker below the floor
		{ID: 1, Want: 400, Floor: 100},
	}
	for _, div := range allDivisions {
		shares := Divide(1000, div, ds)
		if shares[0] > 200+1e-9 {
			t.Errorf("%v: capped child granted %v past its breaker 200", div, shares[0])
		}
		if math.Abs(sum(shares)-1000) > 1e-6 {
			t.Errorf("%v: overflow not re-spread, spent %v of 1000: %v",
				div, sum(shares), shares)
		}
		if shares[1] < 800-1e-9 {
			t.Errorf("%v: sibling got %v, want the re-spread 800", div, shares[1])
		}
	}
}

// TestNegativeBudgetAndDemands pins the remaining degenerate inputs: a
// non-positive budget yields all-zero shares, and a negative demand is
// clamped to zero weight rather than producing a negative share.
func TestNegativeBudgetAndDemands(t *testing.T) {
	ds := []Demand{{Want: 100}, {Want: 200}}
	for _, div := range allDivisions {
		for _, total := range []float64{0, -500} {
			for i, s := range Divide(total, div, ds) {
				if s != 0 {
					t.Errorf("%v: budget %v share[%d] = %v, want 0", div, total, i, s)
				}
			}
		}
		shares := Divide(300, div, []Demand{{Want: -50}, {Want: 100}})
		for i, s := range shares {
			if s < 0 {
				t.Errorf("%v: negative share[%d] = %v", div, i, s)
			}
		}
		if math.Abs(sum(shares)-300) > 1e-6 {
			t.Errorf("%v: negative-demand fleet spent %v of 300", div, sum(shares))
		}
	}
}
