// Package budget is the tier-agnostic power budget division library: one
// parent budget split across N children, where a child is a node (the
// nodemgr two-level baseline divides a cluster budget over nodes) or a
// whole cabinet (the federation coordinator divides the global budget
// over cabinet managers). Both tiers run this one implementation, so the
// division invariants are proved once:
//
//   - the shares never sum above the parent budget;
//   - no share exceeds its child's hard cap (a cabinet's breaker rating
//     from internal/pdist, when one is set);
//   - shares are monotone in demand — raising one child's demand never
//     lowers that child's share.
//
// Three strategies are provided. Uniform ignores demand entirely (the
// static division whose waste motivates the others). Proportional gives
// each child a share proportional to its demand, floored at its static
// draw — the paper's related-work division (§I.B, after Femal et al.).
// FairShare is FastCap-style max-min fairness (see PAPERS.md): demands
// are satisfied smallest-first under a rising water level, so a few
// power-hungry children cannot starve the rest, and any surplus beyond
// total demand is spread evenly as headroom.
//
// Precedence when the per-child knobs conflict: Cap wins over Floor.
// Floor is only a weighting floor — it raises the child's demand signal,
// never its hard bound — so a child whose breaker rating sits below its
// floor is still granted at most Cap, with the overflow re-spread across
// its siblings. Degenerate inputs degrade instead of panicking
// mid-control-loop: a non-positive budget or an empty child list (every
// cabinet lost, each already excluded by the caller with its reserve
// subtracted) yields all-zero shares, a zero-demand fleet falls back to
// the equal split, and negative demands weigh zero.
package budget

import (
	"fmt"
	"math"
)

// Demand describes one child of the division: a node at the cabinet tier
// or a cabinet at the coordinator tier.
type Demand struct {
	// ID identifies the child (node ID or cabinet index); the division
	// itself never reads it, but callers index results by position and
	// keep the ID for attribution.
	ID int
	// Want is the child's estimated demand in watts — what it would draw
	// uncapped (node: model estimate at full level; cabinet: sum of its
	// nodes' full-level estimates).
	Want float64
	// Floor is the demand floor in watts (idle/static draw): Want is
	// clamped up to it, so an idle child still weighs enough to cover
	// the power it cannot shed. It is a weighting floor, not a
	// guaranteed minimum share.
	Floor float64
	// Cap is a hard upper bound on the share (a cabinet's breaker
	// rating); 0 means unbounded.
	Cap float64
}

// Division selects the split strategy.
type Division int

// Division strategies.
const (
	// Uniform gives every child total/N (water-filled over caps).
	Uniform Division = iota
	// Proportional gives each child a share proportional to its demand
	// (floored at Floor), re-spreading any cap overflow proportionally.
	Proportional
	// FairShare is max-min fair allocation: demands are met
	// smallest-first under a common water level, and surplus beyond
	// total demand is spread evenly as headroom.
	FairShare
)

// String names the strategy (the powcoordd -division flag values).
func (d Division) String() string {
	switch d {
	case Uniform:
		return "uniform"
	case Proportional:
		return "proportional"
	case FairShare:
		return "fair"
	}
	return fmt.Sprintf("division(%d)", int(d))
}

// ParseDivision maps a strategy name to its Division.
func ParseDivision(s string) (Division, error) {
	switch s {
	case "uniform":
		return Uniform, nil
	case "proportional":
		return Proportional, nil
	case "fair", "fairshare":
		return FairShare, nil
	}
	return 0, fmt.Errorf("budget: unknown division %q (want uniform|proportional|fair)", s)
}

// Valid reports whether d names a known strategy.
func (d Division) Valid() bool {
	return d == Uniform || d == Proportional || d == FairShare
}

// effWant is the weighting demand actually used: Want clamped up to
// Floor, down to Cap, and never negative.
func effWant(d Demand) float64 {
	w := d.Want
	if w < d.Floor {
		w = d.Floor
	}
	if w < 0 {
		w = 0
	}
	if d.Cap > 0 && w > d.Cap {
		w = d.Cap
	}
	return w
}

// capOf returns the child's hard bound as a float, +Inf when unbounded.
func capOf(d Demand) float64 {
	if d.Cap <= 0 {
		return math.Inf(1)
	}
	return d.Cap
}

// Divide splits total across the children and returns one share per
// demand, by position. A non-positive total or an empty demand list
// yields all-zero shares; an invalid division falls back to Uniform (the
// conservative static split) rather than panicking mid-control-loop.
func Divide(total float64, div Division, ds []Demand) []float64 {
	shares := make([]float64, len(ds))
	if total <= 0 || len(ds) == 0 {
		return shares
	}
	switch div {
	case Proportional:
		divideProportional(total, ds, shares)
	case FairShare:
		divideFairShare(total, ds, shares)
	default:
		fillEqual(total, caps(ds), shares)
	}
	return shares
}

// caps extracts every child's hard bound (+Inf for unbounded).
func caps(ds []Demand) []float64 {
	c := make([]float64, len(ds))
	for i := range ds {
		c[i] = capOf(ds[i])
	}
	return c
}

// fillEqual water-fills budget equally over children bounded by bound[i]
// (already net of anything granted before this call), accumulating into
// shares. Each round spreads the remainder evenly over unsaturated
// children; it terminates because a round either saturates a child or
// distributes everything.
func fillEqual(budget float64, bound []float64, shares []float64) {
	active := make([]int, 0, len(bound))
	given := make([]float64, len(bound))
	for i, b := range bound {
		if b > 0 {
			active = append(active, i)
		}
	}
	remaining := budget
	for remaining > 1e-9 && len(active) > 0 {
		per := remaining / float64(len(active))
		next := active[:0]
		saturated := false
		for _, i := range active {
			add := per
			if h := bound[i] - given[i]; add >= h {
				add = h
				saturated = true
			} else {
				next = append(next, i)
			}
			given[i] += add
			remaining -= add
		}
		active = next
		if !saturated {
			break
		}
	}
	for i := range shares {
		shares[i] += given[i]
	}
}

// divideProportional spreads total in proportion to effective demand,
// re-spreading cap overflow over the unsaturated children each round.
// A zero-demand round degrades to the equal split of what is left.
func divideProportional(total float64, ds []Demand, shares []float64) {
	active := make([]int, len(ds))
	for i := range ds {
		active[i] = i
	}
	remaining := total
	for remaining > 1e-9 && len(active) > 0 {
		sumW := 0.0
		for _, i := range active {
			sumW += effWant(ds[i])
		}
		if sumW <= 0 {
			// No demand signal left: equal-split the remainder over the
			// remaining headroom.
			bound := make([]float64, len(ds))
			for _, i := range active {
				bound[i] = capOf(ds[i]) - shares[i]
			}
			fillEqual(remaining, bound, shares)
			return
		}
		budgetThisRound := remaining
		next := active[:0]
		saturated := false
		for _, i := range active {
			add := budgetThisRound * effWant(ds[i]) / sumW
			if h := capOf(ds[i]) - shares[i]; add >= h {
				add = h
				saturated = true
			} else {
				next = append(next, i)
			}
			shares[i] += add
			remaining -= add
		}
		active = next
		if !saturated {
			return
		}
	}
}

// divideFairShare is max-min fairness on effective demand: a common
// water level rises until the budget is spent, so small demands are met
// in full before large ones split what is left. Surplus beyond total
// demand is spread evenly as headroom (a cap is an upper bound, not a
// target — granting a cabinet more than it asks for costs nothing and
// saves a re-division when its load spikes).
func divideFairShare(total float64, ds []Demand, shares []float64) {
	// Phase 1: satisfy demands smallest-first under the rising level.
	type child struct {
		i    int
		want float64
	}
	order := make([]child, len(ds))
	for i := range ds {
		order[i] = child{i, effWant(ds[i])}
	}
	// Insertion sort by want: child counts are small (cabinets) or the
	// call is off the hot path (nodemgr baseline experiments).
	for a := 1; a < len(order); a++ {
		for b := a; b > 0 && order[b].want < order[b-1].want; b-- {
			order[b], order[b-1] = order[b-1], order[b]
		}
	}
	remaining := total
	for k, c := range order {
		left := len(order) - k
		fair := remaining / float64(left)
		give := c.want
		if give > fair {
			give = fair
		}
		shares[c.i] = give
		remaining -= give
	}
	if remaining <= 1e-9 {
		return
	}
	// Phase 2: spread the surplus evenly as headroom, respecting caps.
	bound := make([]float64, len(ds))
	for i := range ds {
		bound[i] = capOf(ds[i]) - shares[i]
	}
	fillEqual(remaining, bound, shares)
}
