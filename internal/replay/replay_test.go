package replay

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"time"

	"repro/internal/node"
	"repro/internal/power"
	"repro/internal/scheduler"
	"repro/internal/workload"
)

func TestTraceRoundTrip(t *testing.T) {
	tr := &Trace{
		Header: Header{Suite: "NPB-D", Comment: "test"},
		Records: []Record{
			{Benchmark: "EP", NProcs: 64},
			{Benchmark: "CG", NProcs: 256, Priority: 1},
		},
	}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Header.Suite != "NPB-D" || got.Header.Format != FormatVersion {
		t.Errorf("header = %+v", got.Header)
	}
	if got.Len() != 2 || got.Records[1] != tr.Records[1] {
		t.Errorf("records = %+v", got.Records)
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"",
		"not json\n",
		`{"format":99}` + "\n",
		`{"format":1}` + "\n" + `{"benchmark":"EP","nprocs":0}` + "\n",
		`{"format":1}` + "\n" + "garbage\n",
	}
	for i, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestReadSkipsBlankLines(t *testing.T) {
	in := `{"format":1}` + "\n\n" + `{"benchmark":"EP","nprocs":8}` + "\n"
	tr, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 1 {
		t.Errorf("records = %d", tr.Len())
	}
}

func TestRecorderCaptures(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	suite := workload.NPB(workload.ClassC)
	rec := NewRecorder(scheduler.RandomGenerator(rng, suite), Header{Suite: "NPB-C"})
	gen := rec.Generator()
	var want []workload.Request
	for i := 0; i < 20; i++ {
		want = append(want, gen())
	}
	tr := rec.Trace()
	if tr.Len() != 20 {
		t.Fatalf("captured %d", tr.Len())
	}
	for i, r := range tr.Records {
		if r.Benchmark != want[i].Spec.Name || r.NProcs != want[i].NProcs {
			t.Errorf("record %d = %+v, want %+v", i, r, want[i])
		}
	}
}

func TestPlayerReplaysExactly(t *testing.T) {
	suite := workload.NPB(workload.ClassC)
	tr := &Trace{Records: []Record{
		{Benchmark: "EP", NProcs: 8},
		{Benchmark: "SP", NProcs: 128, Priority: 1},
	}}
	p, err := NewPlayer(tr, suite, nil)
	if err != nil {
		t.Fatal(err)
	}
	gen := p.Generator()
	r1, r2 := gen(), gen()
	if r1.Spec.Name != "EP" || r1.NProcs != 8 {
		t.Errorf("r1 = %+v", r1)
	}
	if r2.Spec.Name != "SP" || r2.NProcs != 128 || r2.Priority != 1 {
		t.Errorf("r2 = %+v", r2)
	}
	if !p.Exhausted() || p.Position() != 2 {
		t.Errorf("pos = %d exhausted = %v", p.Position(), p.Exhausted())
	}
	// No fallback: repeats the tail deterministically.
	r3 := gen()
	if r3.Spec.Name != "SP" {
		t.Errorf("tail repeat = %+v", r3)
	}
}

func TestPlayerFallback(t *testing.T) {
	suite := workload.NPB(workload.ClassC)
	tr := &Trace{Records: []Record{{Benchmark: "EP", NProcs: 8}}}
	calls := 0
	fallback := func() workload.Request {
		calls++
		return workload.Request{Spec: suite[1], NProcs: 16}
	}
	p, err := NewPlayer(tr, suite, fallback)
	if err != nil {
		t.Fatal(err)
	}
	gen := p.Generator()
	gen()
	after := gen()
	if calls != 1 || after.Spec.Name != suite[1].Name {
		t.Errorf("fallback not used: calls=%d req=%+v", calls, after)
	}
}

func TestPlayerValidation(t *testing.T) {
	suite := workload.NPB(workload.ClassC)
	if _, err := NewPlayer(&Trace{}, suite, nil); err == nil {
		t.Error("empty trace accepted")
	}
	bad := &Trace{Records: []Record{{Benchmark: "FT", NProcs: 8}}}
	if _, err := NewPlayer(bad, suite, nil); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

// TestRecordReplayEquivalence runs a scheduler with a recorded random
// generator, then replays the trace into a second scheduler and checks
// the job sequences match exactly.
func TestRecordReplayEquivalence(t *testing.T) {
	mk := func() []*node.Node {
		nodes := make([]*node.Node, 16)
		for i := range nodes {
			n, err := node.New(node.ID(i), node.Config{Model: power.TianheNode(), Controllable: true})
			if err != nil {
				t.Fatal(err)
			}
			nodes[i] = n
		}
		return nodes
	}
	suite := workload.NPB(workload.ClassC)

	rec := NewRecorder(scheduler.RandomGenerator(rand.New(rand.NewSource(11)), suite), Header{})
	s1, err := scheduler.New(mk(), scheduler.Config{ProcsPerNode: 2, Generator: rec.Generator()})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Duration(0)
	for i := 0; i < 1800; i++ {
		now += time.Second
		s1.Tick(now, time.Second)
	}

	// Round-trip through serialisation for good measure.
	var buf bytes.Buffer
	if err := rec.Trace().Write(&buf); err != nil {
		t.Fatal(err)
	}
	tr, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	player, err := NewPlayer(tr, suite, nil)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := scheduler.New(mk(), scheduler.Config{ProcsPerNode: 2, Generator: player.Generator()})
	if err != nil {
		t.Fatal(err)
	}
	now = 0
	for i := 0; i < 1800; i++ {
		now += time.Second
		s2.Tick(now, time.Second)
	}

	f1, f2 := s1.Finished(), s2.Finished()
	if len(f1) != len(f2) {
		t.Fatalf("finished %d vs %d", len(f1), len(f2))
	}
	for i := range f1 {
		if f1[i].Spec().Name != f2[i].Spec().Name || f1[i].NProcs() != f2[i].NProcs() {
			t.Errorf("job %d: %s/%d vs %s/%d", i,
				f1[i].Spec().Name, f1[i].NProcs(), f2[i].Spec().Name, f2[i].NProcs())
		}
		if f1[i].End() != f2[i].End() {
			t.Errorf("job %d end %v vs %v", i, f1[i].End(), f2[i].End())
		}
	}
}
