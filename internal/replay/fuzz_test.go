package replay

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead feeds arbitrary bytes into the trace parser: it must never
// panic, and every accepted trace must survive a Write/Read round trip.
func FuzzRead(f *testing.F) {
	f.Add(`{"format":1}` + "\n" + `{"benchmark":"EP","nprocs":8}` + "\n")
	f.Add(`{"format":1,"suite":"NPB-D"}` + "\n")
	f.Add("")
	f.Add(`{"format":2}` + "\n")
	f.Add(`{"format":1}` + "\n" + `{"benchmark":"EP","nprocs":-1}` + "\n")
	f.Fuzz(func(t *testing.T, in string) {
		tr, err := Read(strings.NewReader(in))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := tr.Write(&buf); err != nil {
			t.Fatalf("accepted trace failed to serialise: %v", err)
		}
		tr2, err := Read(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if tr2.Len() != tr.Len() {
			t.Fatalf("round trip changed length: %d vs %d", tr.Len(), tr2.Len())
		}
	})
}
