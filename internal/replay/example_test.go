package replay_test

import (
	"bytes"
	"fmt"

	"repro/internal/replay"
	"repro/internal/workload"
)

func Example() {
	// Serialise a two-job trace and replay it.
	tr := &replay.Trace{
		Header: replay.Header{Suite: "NPB-D", Comment: "example"},
		Records: []replay.Record{
			{Benchmark: "EP", NProcs: 64},
			{Benchmark: "CG", NProcs: 256, Priority: 1},
		},
	}
	var buf bytes.Buffer
	if err := tr.Write(&buf); err != nil {
		fmt.Println(err)
		return
	}
	loaded, _ := replay.Read(&buf)
	player, _ := replay.NewPlayer(loaded, workload.NPB(workload.ClassD), nil)
	gen := player.Generator()
	for i := 0; i < 2; i++ {
		req := gen()
		fmt.Printf("%s nprocs=%d privileged=%v\n", req.Spec.Name, req.NProcs, req.Privileged())
	}
	// Output:
	// EP nprocs=64 privileged=false
	// CG nprocs=256 privileged=true
}
