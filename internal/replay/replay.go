// Package replay records and replays workload traces: the sequence of job
// requests a run's generator produced. Replaying a recorded trace lets two
// policies be compared on *literally* the same workload — the same
// benchmarks, sizes, priorities, in the same order — rather than merely
// the same random seed, and lets a production trace captured on one
// system drive experiments on another.
//
// Traces are JSON lines, one request per line, with a header line
// carrying the format version and provenance.
package replay

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/scheduler"
	"repro/internal/workload"
)

// FormatVersion identifies the trace file format.
const FormatVersion = 1

// Header is the first line of a trace file.
type Header struct {
	Format  int    `json:"format"`
	Suite   string `json:"suite"`   // e.g. "NPB-D"
	Comment string `json:"comment"` // free-form provenance
}

// Record is one generated job request.
type Record struct {
	Benchmark string `json:"benchmark"`
	NProcs    int    `json:"nprocs"`
	Priority  int    `json:"priority,omitempty"`
}

// Trace is an in-memory workload trace.
type Trace struct {
	Header  Header
	Records []Record
}

// Len returns the number of recorded requests.
func (t *Trace) Len() int { return len(t.Records) }

// Write serialises the trace.
func (t *Trace) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	hdr := t.Header
	hdr.Format = FormatVersion
	if err := enc.Encode(hdr); err != nil {
		return err
	}
	for _, r := range t.Records {
		if err := enc.Encode(r); err != nil {
			return err
		}
	}
	return nil
}

// Read parses a trace.
func Read(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("replay: empty trace")
	}
	var hdr Header
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return nil, fmt.Errorf("replay: bad header: %w", err)
	}
	if hdr.Format != FormatVersion {
		return nil, fmt.Errorf("replay: unsupported trace format %d (want %d)", hdr.Format, FormatVersion)
	}
	t := &Trace{Header: hdr}
	line := 1
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return nil, fmt.Errorf("replay: line %d: %w", line, err)
		}
		if rec.NProcs <= 0 {
			return nil, fmt.Errorf("replay: line %d: nprocs %d", line, rec.NProcs)
		}
		t.Records = append(t.Records, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return t, nil
}

// Recorder wraps a generator, capturing everything it emits.
type Recorder struct {
	inner scheduler.Generator
	trace *Trace
}

// NewRecorder wraps gen; the captured trace is available from Trace.
func NewRecorder(gen scheduler.Generator, header Header) *Recorder {
	return &Recorder{inner: gen, trace: &Trace{Header: header}}
}

// Generator returns the recording generator to install in the scheduler.
func (r *Recorder) Generator() scheduler.Generator {
	return func() workload.Request {
		req := r.inner()
		r.trace.Records = append(r.trace.Records, Record{
			Benchmark: req.Spec.Name,
			NProcs:    req.NProcs,
			Priority:  req.Priority,
		})
		return req
	}
}

// Trace returns the captured trace so far.
func (r *Recorder) Trace() *Trace { return r.trace }

// Player replays a trace as a scheduler generator. When the trace runs
// out it either stops producing (Exhausted reports true and the fallback
// is nil) or hands over to the fallback generator.
type Player struct {
	trace    *Trace
	suite    []workload.Spec
	pos      int
	fallback scheduler.Generator
	errs     int
}

// NewPlayer creates a player resolving benchmark names against suite.
// fallback may be nil.
func NewPlayer(trace *Trace, suite []workload.Spec, fallback scheduler.Generator) (*Player, error) {
	if trace == nil || trace.Len() == 0 {
		return nil, fmt.Errorf("replay: empty trace")
	}
	// Validate all names up front so replays fail fast, not mid-run.
	for i, rec := range trace.Records {
		if _, err := workload.SpecByName(suite, rec.Benchmark); err != nil {
			return nil, fmt.Errorf("replay: record %d: %w", i, err)
		}
	}
	return &Player{trace: trace, suite: suite, fallback: fallback}, nil
}

// Exhausted reports whether the trace has been fully replayed.
func (p *Player) Exhausted() bool { return p.pos >= p.trace.Len() }

// Position returns how many records have been replayed.
func (p *Player) Position() int { return p.pos }

// Generator returns the replaying generator. After exhaustion it repeats
// the last record when no fallback is configured (the scheduler contract
// requires a request; repeating the tail keeps the run deterministic).
func (p *Player) Generator() scheduler.Generator {
	return func() workload.Request {
		if p.Exhausted() {
			if p.fallback != nil {
				return p.fallback()
			}
			return p.toRequest(p.trace.Records[p.trace.Len()-1])
		}
		rec := p.trace.Records[p.pos]
		p.pos++
		return p.toRequest(rec)
	}
}

func (p *Player) toRequest(rec Record) workload.Request {
	spec, err := workload.SpecByName(p.suite, rec.Benchmark)
	if err != nil {
		// Names were validated at construction; reaching this means the
		// suite changed underneath us.
		p.errs++
		spec = p.suite[0]
	}
	return workload.Request{Spec: spec, NProcs: rec.NProcs, Priority: rec.Priority}
}
