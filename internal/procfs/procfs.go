// Package procfs simulates the Linux kernel counter interfaces the paper's
// profiling agent reads on each Tianhe-1A node: /proc/stat CPU jiffies,
// /proc/meminfo occupancy, and the communication chipset's byte counters
// (the Tianhe NIC exposes an automatic traffic log; we model it as a netdev
// style monotonic counter).
//
// The simulated node advances these counters as its workload runs; the agent
// samples them and reconstructs utilisation from interval deltas, exactly as
// a real agent would. Keeping the counter semantics (monotonic, jiffy
// granularity, wraparound-free 64-bit) means the estimation code above this
// package is identical to what would run against a real /proc.
package procfs

import (
	"fmt"
	"time"
)

// UserHZ is the jiffy rate: CPU time accounting advances in 1/UserHZ second
// units, matching Linux's USER_HZ=100 as seen through /proc/stat.
const UserHZ = 100

// CPUStat mirrors the aggregate cpu line of /proc/stat: cumulative jiffies
// spent in each class since boot.
type CPUStat struct {
	User   uint64 // jiffies running user code
	System uint64 // jiffies running kernel code
	Idle   uint64 // jiffies idle
	IOWait uint64 // jiffies idle while waiting on I/O
}

// Total returns the total jiffies accounted.
func (c CPUStat) Total() uint64 { return c.User + c.System + c.Idle + c.IOWait }

// Busy returns the non-idle jiffies.
func (c CPUStat) Busy() uint64 { return c.User + c.System }

// MemInfo mirrors the fields of /proc/meminfo the profiling model needs.
type MemInfo struct {
	TotalBytes uint64 // MemTotal
	UsedBytes  uint64 // MemTotal - MemFree - cached/reclaimable
}

// NetDev mirrors a netdev-style monotonic traffic counter pair for the
// Tianhe communication chipset.
type NetDev struct {
	RxBytes uint64
	TxBytes uint64
}

// Bytes returns the total traffic counter (both directions), which is what
// formula (1)'s Data_NIC consumes.
func (n NetDev) Bytes() uint64 { return n.RxBytes + n.TxBytes }

// Snapshot is a point-in-time reading of all counters on one node.
type Snapshot struct {
	At  time.Duration // virtual timestamp of the reading
	CPU CPUStat
	Mem MemInfo
	Net NetDev
}

// FS is the simulated per-node proc filesystem. The node model advances it;
// the profiling agent reads Snapshot. FS is not safe for concurrent use; in
// the simulator each node is owned by a single goroutine, and the networked
// agent serialises access itself.
type FS struct {
	cpu CPUStat
	mem MemInfo
	net NetDev
	// fractional jiffy remainders, so short ticks do not lose CPU time to
	// integer truncation
	remBusy float64
	remIdle float64
}

// New returns a proc filesystem for a node with the given memory size.
func New(memTotal uint64) *FS {
	return &FS{mem: MemInfo{TotalBytes: memTotal}}
}

// AccountCPU charges an interval dt of CPU time across nCores cores with
// the given busy utilisation in [0,1]. A 70/30 user/system split is applied
// to the busy share — the split does not affect the profiling model, which
// only consumes busy vs total, but it keeps the counters realistic.
func (fs *FS) AccountCPU(dt time.Duration, nCores int, util float64) {
	if util < 0 {
		util = 0
	}
	if util > 1 {
		util = 1
	}
	jiffies := dt.Seconds() * UserHZ * float64(nCores)
	busy := jiffies*util + fs.remBusy
	idle := jiffies*(1-util) + fs.remIdle
	bi, ii := uint64(busy), uint64(idle)
	fs.remBusy = busy - float64(bi)
	fs.remIdle = idle - float64(ii)
	user := bi * 7 / 10
	fs.cpu.User += user
	fs.cpu.System += bi - user
	fs.cpu.Idle += ii
}

// SetMemUsed records the current memory occupancy in bytes, clamped to the
// configured total.
func (fs *FS) SetMemUsed(used uint64) {
	if used > fs.mem.TotalBytes {
		used = fs.mem.TotalBytes
	}
	fs.mem.UsedBytes = used
}

// AccountNet adds transmitted/received byte counts to the NIC counters.
func (fs *FS) AccountNet(rx, tx uint64) {
	fs.net.RxBytes += rx
	fs.net.TxBytes += tx
}

// Snapshot returns the current counter values stamped with the given
// virtual time.
func (fs *FS) Snapshot(at time.Duration) Snapshot {
	return Snapshot{At: at, CPU: fs.cpu, Mem: fs.mem, Net: fs.net}
}

// Delta holds interval readings derived from two snapshots — the quantities
// formula (1) actually consumes.
type Delta struct {
	Interval time.Duration
	CPUUtil  float64 // busy fraction over the interval, in [0,1]
	MemUsed  uint64  // bytes, from the later snapshot
	MemTotal uint64  // bytes
	NICBytes uint64  // bytes moved during the interval
}

// ErrNonMonotonic is returned when the later snapshot's counters run
// backwards relative to the earlier one, which indicates the two snapshots
// were passed in the wrong order or came from different nodes.
type ErrNonMonotonic struct {
	Field string
}

func (e *ErrNonMonotonic) Error() string {
	return fmt.Sprintf("procfs: counter %q decreased between snapshots", e.Field)
}

// Diff computes interval quantities between an earlier snapshot prev and a
// later snapshot cur. A zero-length interval yields zero utilisation rather
// than NaN.
func Diff(prev, cur Snapshot) (Delta, error) {
	if cur.CPU.Total() < prev.CPU.Total() || cur.CPU.Busy() < prev.CPU.Busy() {
		return Delta{}, &ErrNonMonotonic{Field: "cpu"}
	}
	if cur.Net.Bytes() < prev.Net.Bytes() {
		return Delta{}, &ErrNonMonotonic{Field: "net"}
	}
	if cur.At < prev.At {
		return Delta{}, &ErrNonMonotonic{Field: "time"}
	}
	d := Delta{
		Interval: cur.At - prev.At,
		MemUsed:  cur.Mem.UsedBytes,
		MemTotal: cur.Mem.TotalBytes,
		NICBytes: cur.Net.Bytes() - prev.Net.Bytes(),
	}
	total := cur.CPU.Total() - prev.CPU.Total()
	if total > 0 {
		d.CPUUtil = float64(cur.CPU.Busy()-prev.CPU.Busy()) / float64(total)
	}
	return d, nil
}
