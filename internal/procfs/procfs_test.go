package procfs

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestAccountCPUFullLoad(t *testing.T) {
	fs := New(1 << 30)
	fs.AccountCPU(10*time.Second, 12, 1.0)
	s := fs.Snapshot(10 * time.Second)
	// 10 s × 100 Hz × 12 cores = 12000 jiffies, all busy.
	if got := s.CPU.Busy(); got != 12000 {
		t.Errorf("busy jiffies = %d, want 12000", got)
	}
	if s.CPU.Idle != 0 {
		t.Errorf("idle jiffies = %d, want 0", s.CPU.Idle)
	}
}

func TestAccountCPUHalfLoad(t *testing.T) {
	fs := New(1 << 30)
	fs.AccountCPU(10*time.Second, 4, 0.5)
	s := fs.Snapshot(10 * time.Second)
	if got := s.CPU.Busy(); got != 2000 {
		t.Errorf("busy = %d, want 2000", got)
	}
	if got := s.CPU.Idle; got != 2000 {
		t.Errorf("idle = %d, want 2000", got)
	}
}

func TestAccountCPUClampsUtil(t *testing.T) {
	fs := New(1)
	fs.AccountCPU(time.Second, 1, 1.7)
	if got := fs.Snapshot(0).CPU.Idle; got != 0 {
		t.Errorf("util > 1 should clamp: idle = %d", got)
	}
	fs2 := New(1)
	fs2.AccountCPU(time.Second, 1, -0.5)
	if got := fs2.Snapshot(0).CPU.Busy(); got != 0 {
		t.Errorf("util < 0 should clamp: busy = %d", got)
	}
}

func TestFractionalJiffiesConserved(t *testing.T) {
	// Many tiny ticks must account the same CPU time as one big tick:
	// remainders may not be dropped.
	fs := New(1)
	for i := 0; i < 1000; i++ {
		fs.AccountCPU(time.Millisecond, 12, 0.37)
	}
	s := fs.Snapshot(time.Second)
	// 1 s total × 100 Hz × 12 cores = 1200 jiffies; busy ≈ 444.
	if total := s.CPU.Total(); total < 1198 || total > 1200 {
		t.Errorf("total jiffies = %d, want ≈1200", total)
	}
	if busy := s.CPU.Busy(); busy < 442 || busy > 445 {
		t.Errorf("busy jiffies = %d, want ≈444", busy)
	}
}

func TestSetMemUsedClamps(t *testing.T) {
	fs := New(1000)
	fs.SetMemUsed(5000)
	if got := fs.Snapshot(0).Mem.UsedBytes; got != 1000 {
		t.Errorf("mem used = %d, want clamped to 1000", got)
	}
	fs.SetMemUsed(400)
	if got := fs.Snapshot(0).Mem.UsedBytes; got != 400 {
		t.Errorf("mem used = %d, want 400", got)
	}
}

func TestAccountNet(t *testing.T) {
	fs := New(1)
	fs.AccountNet(100, 200)
	fs.AccountNet(1, 2)
	n := fs.Snapshot(0).Net
	if n.RxBytes != 101 || n.TxBytes != 202 {
		t.Errorf("net = %+v", n)
	}
	if n.Bytes() != 303 {
		t.Errorf("Bytes() = %d, want 303", n.Bytes())
	}
}

func TestDiffBasic(t *testing.T) {
	fs := New(1 << 30)
	prev := fs.Snapshot(0)
	fs.AccountCPU(2*time.Second, 12, 0.75)
	fs.SetMemUsed(1 << 29)
	fs.AccountNet(1000, 2000)
	cur := fs.Snapshot(2 * time.Second)

	d, err := Diff(prev, cur)
	if err != nil {
		t.Fatal(err)
	}
	if d.Interval != 2*time.Second {
		t.Errorf("interval = %v", d.Interval)
	}
	if math.Abs(d.CPUUtil-0.75) > 0.01 {
		t.Errorf("cpu util = %v, want 0.75", d.CPUUtil)
	}
	if d.MemUsed != 1<<29 || d.MemTotal != 1<<30 {
		t.Errorf("mem = %d/%d", d.MemUsed, d.MemTotal)
	}
	if d.NICBytes != 3000 {
		t.Errorf("nic bytes = %d", d.NICBytes)
	}
}

func TestDiffZeroInterval(t *testing.T) {
	fs := New(1)
	s := fs.Snapshot(time.Second)
	d, err := Diff(s, s)
	if err != nil {
		t.Fatal(err)
	}
	if d.CPUUtil != 0 || d.Interval != 0 {
		t.Errorf("zero-interval diff = %+v, want zeros (no NaN)", d)
	}
}

func TestDiffNonMonotonic(t *testing.T) {
	fs := New(1)
	fs.AccountCPU(time.Second, 1, 1)
	later := fs.Snapshot(time.Second)
	earlier := New(1).Snapshot(0)
	if _, err := Diff(later, earlier); err == nil {
		t.Error("reversed snapshots accepted")
	} else {
		var nm *ErrNonMonotonic
		if !errors.As(err, &nm) {
			t.Errorf("error type = %T", err)
		}
	}
}

func TestDiffTimeBackwards(t *testing.T) {
	fs := New(1)
	a := fs.Snapshot(2 * time.Second)
	b := fs.Snapshot(1 * time.Second)
	if _, err := Diff(a, b); err == nil {
		t.Error("time going backwards accepted")
	}
}

// Property: for any sequence of ticks, CPUUtil derived from Diff stays in
// [0,1] and counters are monotonic.
func TestDiffUtilBoundsProperty(t *testing.T) {
	f := func(utils []float64, coreSeed uint8) bool {
		fs := New(1 << 20)
		cores := int(coreSeed%32) + 1
		prev := fs.Snapshot(0)
		at := time.Duration(0)
		for _, u := range utils {
			if math.IsNaN(u) || math.IsInf(u, 0) {
				u = 0.5
			}
			at += 100 * time.Millisecond
			fs.AccountCPU(100*time.Millisecond, cores, u)
			cur := fs.Snapshot(at)
			d, err := Diff(prev, cur)
			if err != nil {
				return false
			}
			if d.CPUUtil < 0 || d.CPUUtil > 1.0001 {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
