package sim_test

import (
	"fmt"
	"time"

	"repro/internal/sim"
)

func ExampleEngine_Every() {
	e := sim.NewEngine()
	e.Every(time.Second, func(en *sim.Engine) {
		fmt.Printf("cycle at %v\n", en.Now())
	})
	e.RunUntil(3 * time.Second)
	// Output:
	// cycle at 1s
	// cycle at 2s
	// cycle at 3s
}

func ExampleEngine_After() {
	e := sim.NewEngine()
	e.After(90*time.Minute, func(en *sim.Engine) {
		fmt.Println("training period over at", en.Now())
	})
	e.Run()
	// Output: training period over at 1h30m0s
}

func ExampleStreams() {
	// Independent deterministic random streams from one experiment seed:
	// adding a stream never perturbs the others.
	s := sim.NewStreams(42)
	a := s.Get("workload")
	b := sim.NewStreams(42).Get("workload")
	fmt.Println(a.Intn(1000) == b.Intn(1000))
	// Output: true
}
