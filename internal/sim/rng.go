package sim

import "math/rand"

// SplitMix64 advances a 64-bit state and returns the next value of the
// splitmix64 sequence. It is used to derive well-separated seeds for
// independent random streams from a single experiment seed, so that adding
// a new stream never perturbs existing ones.
func SplitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Streams derives named deterministic random streams from one master seed.
// Each distinct name yields an independent *rand.Rand whose sequence depends
// only on (seed, name), never on the order streams are requested.
type Streams struct {
	seed uint64
}

// NewStreams returns a stream factory for the given master seed.
func NewStreams(seed uint64) *Streams { return &Streams{seed: seed} }

// Get returns the deterministic stream for name.
func (s *Streams) Get(name string) *rand.Rand {
	state := s.seed
	for _, b := range []byte(name) {
		state ^= uint64(b)
		SplitMix64(&state)
	}
	return rand.New(rand.NewSource(int64(SplitMix64(&state))))
}
