package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestEmptyEngine(t *testing.T) {
	e := NewEngine()
	if e.Step() {
		t.Error("Step on empty queue reported an event")
	}
	e.RunUntil(time.Hour)
	if e.Now() != time.Hour {
		t.Errorf("RunUntil left clock at %v, want 1h", e.Now())
	}
}

func TestEventOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.After(3*time.Second, func(*Engine) { order = append(order, 3) })
	e.After(1*time.Second, func(*Engine) { order = append(order, 1) })
	e.After(2*time.Second, func(*Engine) { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v, want [1 2 3]", order)
	}
	if e.Now() != 3*time.Second {
		t.Errorf("clock = %v, want 3s", e.Now())
	}
}

func TestSameInstantFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.After(time.Second, func(*Engine) { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events fired out of order: %v", order)
		}
	}
}

func TestAtPastRejected(t *testing.T) {
	e := NewEngine()
	e.After(time.Second, func(*Engine) {})
	e.Run()
	if _, err := e.At(0, func(*Engine) {}); err == nil {
		t.Error("At in the past succeeded, want error")
	}
}

func TestAfterNegativeClampsToNow(t *testing.T) {
	e := NewEngine()
	fired := false
	e.After(-5*time.Second, func(*Engine) { fired = true })
	e.Run()
	if !fired {
		t.Error("negative After never fired")
	}
	if e.Now() != 0 {
		t.Errorf("clock moved to %v", e.Now())
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	c := e.After(time.Second, func(*Engine) { fired = true })
	c.Stop()
	c.Stop() // double-stop is safe
	e.Run()
	if fired {
		t.Error("cancelled event fired")
	}
}

func TestEvery(t *testing.T) {
	e := NewEngine()
	var times []time.Duration
	e.Every(time.Second, func(en *Engine) { times = append(times, en.Now()) })
	e.RunUntil(5 * time.Second)
	if len(times) != 5 {
		t.Fatalf("got %d ticks, want 5: %v", len(times), times)
	}
	for i, at := range times {
		want := time.Duration(i+1) * time.Second
		if at != want {
			t.Errorf("tick %d at %v, want %v", i, at, want)
		}
	}
}

func TestEveryCancelFromInside(t *testing.T) {
	e := NewEngine()
	n := 0
	var c Cancel
	c = e.Every(time.Second, func(*Engine) {
		n++
		if n == 3 {
			c.Stop()
		}
	})
	e.RunUntil(time.Minute)
	if n != 3 {
		t.Errorf("ticks = %d, want 3", n)
	}
}

func TestEveryZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Every(0) did not panic")
		}
	}()
	NewEngine().Every(0, func(*Engine) {})
}

func TestStop(t *testing.T) {
	e := NewEngine()
	n := 0
	e.Every(time.Second, func(en *Engine) {
		n++
		if n == 2 {
			en.Stop()
		}
	})
	e.RunUntil(time.Hour)
	if n != 2 {
		t.Errorf("events after Stop: n=%d", n)
	}
	if e.Now() != 2*time.Second {
		t.Errorf("Stop should freeze clock at 2s, got %v", e.Now())
	}
}

func TestRunUntilBoundary(t *testing.T) {
	e := NewEngine()
	var fired []time.Duration
	e.After(time.Second, func(en *Engine) { fired = append(fired, en.Now()) })
	e.After(2*time.Second, func(en *Engine) { fired = append(fired, en.Now()) })
	e.After(3*time.Second, func(en *Engine) { fired = append(fired, en.Now()) })
	e.RunUntil(2 * time.Second) // inclusive boundary
	if len(fired) != 2 {
		t.Fatalf("fired %v, want events at 1s and 2s", fired)
	}
	if e.Pending() != 1 {
		t.Errorf("pending = %d, want 1", e.Pending())
	}
	e.RunUntil(10 * time.Second)
	if len(fired) != 3 {
		t.Errorf("third event did not fire on resumed run")
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine()
	var got []time.Duration
	e.After(time.Second, func(en *Engine) {
		en.After(time.Second, func(en2 *Engine) {
			got = append(got, en2.Now())
		})
	})
	e.Run()
	if len(got) != 1 || got[0] != 2*time.Second {
		t.Errorf("nested event fired at %v, want [2s]", got)
	}
}

func TestFiredCounter(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 7; i++ {
		e.After(time.Duration(i)*time.Millisecond, func(*Engine) {})
	}
	e.Run()
	if e.Fired() != 7 {
		t.Errorf("Fired = %d, want 7", e.Fired())
	}
}

// Property: for any set of non-negative delays, events fire in sorted order.
func TestOrderingProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine()
		var fired []time.Duration
		for _, d := range delays {
			e.After(time.Duration(d)*time.Millisecond, func(en *Engine) {
				fired = append(fired, en.Now())
			})
		}
		e.Run()
		if len(fired) != len(delays) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSplitMix64KnownSequence(t *testing.T) {
	// Reference values for seed 0 from the splitmix64 reference
	// implementation (Vigna).
	state := uint64(0)
	want := []uint64{
		0xe220a8397b1dcdaf, 0x6e789e6aa1b965f4, 0x06c45d188009454f,
	}
	for i, w := range want {
		if got := SplitMix64(&state); got != w {
			t.Fatalf("SplitMix64 #%d = %#x, want %#x", i, got, w)
		}
	}
}

func TestStreamsDeterministic(t *testing.T) {
	a := NewStreams(42).Get("workload")
	b := NewStreams(42).Get("workload")
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same (seed,name) produced different sequences")
		}
	}
}

func TestStreamsIndependentOfRequestOrder(t *testing.T) {
	s1 := NewStreams(7)
	_ = s1.Get("other")
	a := s1.Get("meter").Uint64()

	s2 := NewStreams(7)
	b := s2.Get("meter").Uint64()
	if a != b {
		t.Error("stream depends on request order")
	}
}

func TestStreamsDistinctNames(t *testing.T) {
	s := NewStreams(7)
	if s.Get("a").Uint64() == s.Get("b").Uint64() {
		t.Error("streams 'a' and 'b' start identically (suspicious)")
	}
}

func TestStreamsDistinctSeeds(t *testing.T) {
	if NewStreams(1).Get("x").Uint64() == NewStreams(2).Get("x").Uint64() {
		t.Error("different seeds produced identical streams")
	}
}
