// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine maintains a virtual clock and a priority queue of events. Events
// scheduled for the same instant fire in the order they were scheduled
// (FIFO tie-break by sequence number), which makes runs fully reproducible.
// Periodic activities — the power manager's control cycle, workload ticks,
// threshold re-adjustment — are expressed with Every.
//
// Virtual time is carried as time.Duration offsets from the start of the run,
// so a 12-hour experiment is simply RunUntil(12 * time.Hour).
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"time"
)

// Handler is a callback invoked when an event fires. It receives the engine
// so it can schedule follow-up events and read the clock.
type Handler func(e *Engine)

// event is a scheduled callback.
type event struct {
	at     time.Duration
	seq    uint64 // FIFO tie-break for events at the same instant
	fn     Handler
	cancel *bool // when non-nil and true, the event is skipped
}

// eventQueue implements heap.Interface ordered by (at, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

// Engine is a discrete-event simulator. The zero value is not usable; create
// engines with NewEngine.
type Engine struct {
	now     time.Duration
	seq     uint64
	queue   eventQueue
	stopped bool
	fired   uint64
}

// NewEngine returns an engine with the clock at zero and an empty queue.
func NewEngine() *Engine {
	e := &Engine{}
	heap.Init(&e.queue)
	return e
}

// Now reports the current virtual time (offset from the start of the run).
func (e *Engine) Now() time.Duration { return e.now }

// Fired reports how many events have fired so far; useful in tests.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports the number of events currently queued.
func (e *Engine) Pending() int { return len(e.queue) }

// ErrPastEvent is returned by At when an event is scheduled before Now.
var ErrPastEvent = errors.New("sim: event scheduled in the past")

// Cancel is a handle that prevents a scheduled event from firing.
type Cancel struct{ flag *bool }

// Stop cancels the associated event. Calling Stop multiple times is safe.
func (c Cancel) Stop() {
	if c.flag != nil {
		*c.flag = true
	}
}

// At schedules fn to fire at absolute virtual time at. Scheduling in the
// past is an error; scheduling exactly at Now fires after currently queued
// events for that instant.
func (e *Engine) At(at time.Duration, fn Handler) (Cancel, error) {
	if at < e.now {
		return Cancel{}, fmt.Errorf("%w: at=%v now=%v", ErrPastEvent, at, e.now)
	}
	flag := new(bool)
	e.seq++
	heap.Push(&e.queue, &event{at: at, seq: e.seq, fn: fn, cancel: flag})
	return Cancel{flag: flag}, nil
}

// After schedules fn to fire d after the current virtual time. A negative d
// is treated as zero.
func (e *Engine) After(d time.Duration, fn Handler) Cancel {
	if d < 0 {
		d = 0
	}
	c, _ := e.At(e.now+d, fn)
	return c
}

// Every schedules fn to fire every period, starting one period from now.
// The returned Cancel stops the recurrence. A non-positive period panics:
// it would wedge the simulation at a single instant.
func (e *Engine) Every(period time.Duration, fn Handler) Cancel {
	if period <= 0 {
		panic("sim: Every requires a positive period")
	}
	flag := new(bool)
	var tick Handler
	tick = func(en *Engine) {
		fn(en)
		if !*flag {
			en.seq++
			heap.Push(&en.queue, &event{at: en.now + period, seq: en.seq, fn: tick, cancel: flag})
		}
	}
	e.seq++
	heap.Push(&e.queue, &event{at: e.now + period, seq: e.seq, fn: tick, cancel: flag})
	return Cancel{flag: flag}
}

// Stop halts the run loop after the currently firing event returns.
func (e *Engine) Stop() { e.stopped = true }

// Step fires the next queued event, advancing the clock to its timestamp.
// It reports whether an event fired (false when the queue is empty or the
// engine is stopped).
func (e *Engine) Step() bool {
	for len(e.queue) > 0 && !e.stopped {
		ev := heap.Pop(&e.queue).(*event)
		if ev.cancel != nil && *ev.cancel {
			continue
		}
		e.now = ev.at
		e.fired++
		ev.fn(e)
		return true
	}
	return false
}

// RunUntil fires events until the next event would be after deadline, the
// queue empties, or Stop is called. On return the clock is set to deadline
// if the run reached it (i.e. was not stopped early with Stop).
func (e *Engine) RunUntil(deadline time.Duration) {
	for len(e.queue) > 0 && !e.stopped {
		next := e.queue[0]
		if next.cancel != nil && *next.cancel {
			heap.Pop(&e.queue)
			continue
		}
		if next.at > deadline {
			break
		}
		e.Step()
	}
	if !e.stopped && e.now < deadline {
		e.now = deadline
	}
}

// Run fires events until the queue empties or Stop is called.
func (e *Engine) Run() {
	for e.Step() {
	}
}
