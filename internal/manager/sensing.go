package manager

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/node"
	"repro/internal/policy"
	"repro/internal/power"
	"repro/internal/procfs"
	"repro/internal/scheduler"
	"repro/internal/units"
	"repro/internal/workload"
)

// AgentReading is one node's sample as delivered by its profiling agent:
// interval counters, the level the node runs at, and the job occupying it.
// Both the in-process Collector and the networked managerd produce these.
type AgentReading struct {
	ID       node.ID
	Level    int
	MaxLevel int
	Delta    procfs.Delta
	Job      workload.JobID // 0 when the node is free
}

// Idle thresholds: a node whose sampled interval shows less CPU activity
// and NIC traffic than these fractions is treated as idle and therefore
// never targeted (§III.B property 4). The sensing path decides idleness
// from counters, not ground truth — the manager has no other view.
const (
	idleCPUUtil = 0.05
	idleNICFrac = 0.02
)

// Builder turns a cycle's agent readings into a policy.Snapshot, keeping
// the previous cycle's estimates so change-based policies can compute
// ΔP^t(J).
//
// Algorithm 1 "is applicable to both heterogeneous and homogeneous
// systems" (§III.B); heterogeneity enters through per-node profile
// models registered with SetNodeModel, with the default model covering
// everything else.
type Builder struct {
	model   power.Model
	perNode map[node.ID]power.Model
	prevEst map[node.ID]units.Watts
	// spareEst is last cycle's retired prevEst map, cleared and reused as
	// the next cycle's estimate table so steady state allocates no maps.
	spareEst map[node.ID]units.Watts
}

// NewBuilder creates a snapshot builder whose default power profile model
// is used for every node without a specific registration.
func NewBuilder(model power.Model) *Builder {
	return &Builder{model: model, prevEst: make(map[node.ID]units.Watts)}
}

// SetNodeModel registers a node-specific profile model (heterogeneous
// clusters).
func (b *Builder) SetNodeModel(id node.ID, m power.Model) {
	if b.perNode == nil {
		b.perNode = make(map[node.ID]power.Model)
	}
	b.perNode[id] = m
}

// modelFor returns the profile model for a node.
func (b *Builder) modelFor(id node.ID) power.Model {
	if m, ok := b.perNode[id]; ok {
		return m
	}
	return b.model
}

// Build assembles the snapshot for one cycle. p is the system power meter
// reading and pl the lower threshold in force.
func (b *Builder) Build(p, pl units.Watts, readings []AgentReading) *policy.Snapshot {
	snap := &policy.Snapshot{P: p, PL: pl, Nodes: make([]policy.NodeState, 0, len(readings))}
	jobs := make(map[workload.JobID]*policy.JobState)
	nextEst := b.spareEst
	if nextEst == nil {
		nextEst = make(map[node.ID]units.Watts, len(readings))
	} else {
		clear(nextEst)
	}
	b.spareEst = nil

	for _, r := range readings {
		model := b.modelFor(r.ID)
		est := model.Estimate(r.Delta, r.Level)
		estLower := est
		if r.Level > 0 {
			estLower = model.EstimateAtLevel(r.Delta, r.Level-1)
		}
		var nicFrac float64
		if sec := r.Delta.Interval.Seconds(); sec > 0 {
			nicFrac = float64(r.Delta.NICBytes) / (sec * float64(model.NIC.Bandwidth))
		}
		idle := r.Delta.CPUUtil < idleCPUUtil && nicFrac < idleNICFrac
		ns := policy.NodeState{
			ID:       r.ID,
			Level:    r.Level,
			MaxLevel: r.MaxLevel,
			AtLowest: r.Level == 0,
			Idle:     idle,
			Est:      est,
			EstLower: estLower,
			PrevEst:  b.prevEst[r.ID],
			CPUUtil:  r.Delta.CPUUtil,
			Job:      r.Job,
		}
		snap.Nodes = append(snap.Nodes, ns)
		nextEst[r.ID] = est

		if r.Job != 0 && !idle {
			js, ok := jobs[r.Job]
			if !ok {
				js = &policy.JobState{ID: r.Job}
				jobs[r.Job] = js
			}
			js.Nodes = append(js.Nodes, r.ID)
			js.Power += est
			js.PrevPower += b.prevEst[r.ID]
			js.Saving += est - estLower
			// Running mean of member utilisation.
			js.Util += (r.Delta.CPUUtil - js.Util) / float64(len(js.Nodes))
		}
	}
	// Ascending job ID keeps policy tie-breaks deterministic.
	ids := make([]workload.JobID, 0, len(jobs))
	for id := range jobs {
		ids = append(ids, id)
	}
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
	for _, id := range ids {
		snap.Jobs = append(snap.Jobs, *jobs[id])
	}
	b.spareEst = b.prevEst
	b.prevEst = nextEst
	return snap
}

// Collector performs in-process sensing over a simulated cluster: it reads
// each candidate node's procfs counters, diffs them against the previous
// cycle, and produces AgentReadings — the exact work a per-node profiling
// agent plus the manager's gather step perform on the real system.
type Collector struct {
	cl    *cluster.Cluster
	sched *scheduler.Scheduler
	prev  map[node.ID]procfs.Snapshot
}

// NewCollector creates a collector over the cluster; sched may be nil when
// no job attribution is available (nodes then sample with Job 0).
func NewCollector(cl *cluster.Cluster, sched *scheduler.Scheduler) *Collector {
	return &Collector{cl: cl, sched: sched, prev: make(map[node.ID]procfs.Snapshot)}
}

// Collect samples every candidate node at virtual time now.
func (c *Collector) Collect(now time.Duration) []AgentReading {
	cand := c.cl.Candidates()
	out := make([]AgentReading, 0, len(cand))
	for _, n := range cand {
		cur := n.Snapshot(now)
		prev, seen := c.prev[n.ID()]
		c.prev[n.ID()] = cur
		var delta procfs.Delta
		if seen {
			if d, err := procfs.Diff(prev, cur); err == nil {
				delta = d
			}
		}
		r := AgentReading{
			ID:       n.ID(),
			Level:    n.Level(),
			MaxLevel: n.Levels() - 1,
			Delta:    delta,
		}
		if c.sched != nil {
			if job := c.sched.JobOn(n.ID()); job != nil {
				r.Job = job.ID()
			}
		}
		out = append(out, r)
	}
	return out
}

// ClusterActuator adapts a cluster to the Actuator interface.
type ClusterActuator struct{ Cluster *cluster.Cluster }

// SetNodeLevel implements Actuator.
func (a ClusterActuator) SetNodeLevel(id node.ID, level int) error {
	n := a.Cluster.Node(id)
	if n == nil {
		return &UnknownNodeError{ID: id}
	}
	return n.SetLevel(level)
}

// UnknownNodeError reports a command addressed to a node the cluster does
// not contain.
type UnknownNodeError struct{ ID node.ID }

func (e *UnknownNodeError) Error() string {
	return fmt.Sprintf("manager: unknown node %d", e.ID)
}
