package manager

import (
	"errors"
	"testing"

	"repro/internal/node"
	"repro/internal/policy"
	"repro/internal/power"
	"repro/internal/units"
)

// fakeActuator records commands and optionally refuses certain nodes.
type fakeActuator struct {
	levels map[node.ID]int
	refuse map[node.ID]bool
}

func newFake() *fakeActuator {
	return &fakeActuator{levels: map[node.ID]int{}, refuse: map[node.ID]bool{}}
}

func (f *fakeActuator) SetNodeLevel(id node.ID, level int) error {
	if f.refuse[id] {
		return errors.New("refused")
	}
	f.levels[id] = level
	return nil
}

// mkSnap builds a snapshot with n candidate nodes at the given level, all
// running one job.
func mkSnap(n, level int) *policy.Snapshot {
	s := &policy.Snapshot{P: 0, PL: units.KW(31)}
	js := policy.JobState{ID: 1}
	for i := 0; i < n; i++ {
		ns := policy.NodeState{
			ID: node.ID(i), Level: level, MaxLevel: 9,
			AtLowest: level == 0,
			Est:      300, EstLower: 285, PrevEst: 295, Job: 1,
		}
		s.Nodes = append(s.Nodes, ns)
		js.Nodes = append(js.Nodes, ns.ID)
		js.Power += ns.Est
		js.PrevPower += ns.PrevEst
		js.Saving += 15
	}
	s.Jobs = []policy.JobState{js}
	return s
}

func thr() power.Thresholds { return power.Thresholds{PL: units.KW(31), PH: units.KW(34)} }

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Tg: 0, Policy: policy.MPC{}}); err == nil {
		t.Error("Tg=0 accepted")
	}
	if _, err := New(Config{Tg: 10}); err == nil {
		t.Error("nil policy accepted")
	}
}

func TestYellowDegradesTargets(t *testing.T) {
	m, _ := New(Config{Tg: 10, Policy: policy.MPC{}})
	act := newFake()
	snap := mkSnap(4, 9)
	st, actions, err := m.Cycle(units.KW(32), thr(), snap, act)
	if err != nil {
		t.Fatal(err)
	}
	if st != power.Yellow {
		t.Fatalf("state = %v", st)
	}
	if len(actions) != 4 {
		t.Fatalf("actions = %v, want 4 degrades", actions)
	}
	for _, a := range actions {
		if a.Level != 8 {
			t.Errorf("degrade to level %d, want 8 (one-level cut)", a.Level)
		}
	}
	if m.Degraded() != 4 {
		t.Errorf("A_degraded = %d", m.Degraded())
	}
	if s := m.Stats(); s.YellowCycles != 1 || s.DegradeOps != 4 {
		t.Errorf("stats = %+v", s)
	}
}

func TestGreenBelowTgDoesNothing(t *testing.T) {
	m, _ := New(Config{Tg: 3, Policy: policy.MPC{}})
	act := newFake()
	// Degrade first so there is something to restore.
	m.Cycle(units.KW(32), thr(), mkSnap(2, 9), act)
	// Two green cycles: not steady yet.
	for i := 0; i < 2; i++ {
		_, actions, _ := m.Cycle(units.KW(28), thr(), mkSnap(2, 8), act)
		if len(actions) != 0 {
			t.Fatalf("restored before Tg: %v", actions)
		}
	}
	// Third green cycle reaches Tg: restore one level.
	_, actions, _ := m.Cycle(units.KW(28), thr(), mkSnap(2, 8), act)
	if len(actions) != 2 {
		t.Fatalf("actions = %v, want 2 restores", actions)
	}
	for _, a := range actions {
		if a.Level != 9 {
			t.Errorf("restore to %d, want 9", a.Level)
		}
	}
	// Nodes reached top: A_degraded empties.
	if m.Degraded() != 0 {
		t.Errorf("A_degraded = %d after full restore", m.Degraded())
	}
}

func TestYellowResetsGreenTimer(t *testing.T) {
	m, _ := New(Config{Tg: 2, Policy: policy.MPC{}})
	act := newFake()
	m.Cycle(units.KW(32), thr(), mkSnap(1, 9), act) // degrade
	m.Cycle(units.KW(28), thr(), mkSnap(1, 8), act) // green 1
	m.Cycle(units.KW(32), thr(), mkSnap(1, 8), act) // yellow: timer reset
	_, actions, _ := m.Cycle(units.KW(28), thr(), mkSnap(1, 7), act)
	if len(actions) != 0 {
		t.Errorf("restored after only one green cycle post-yellow: %v", actions)
	}
}

func TestRedFloorsAllCandidates(t *testing.T) {
	m, _ := New(Config{Tg: 10, Policy: policy.None{}}) // policy irrelevant in red
	act := newFake()
	snap := mkSnap(5, 6)
	st, actions, _ := m.Cycle(units.KW(35), thr(), snap, act)
	if st != power.Red {
		t.Fatalf("state = %v", st)
	}
	if len(actions) != 5 {
		t.Fatalf("actions = %d, want all 5 floored", len(actions))
	}
	for _, a := range actions {
		if a.Level != 0 {
			t.Errorf("red sent node %d to level %d, want 0", a.Node, a.Level)
		}
	}
	if m.Degraded() != 5 {
		t.Errorf("A_degraded = %d, want all candidates", m.Degraded())
	}
	if s := m.Stats(); s.RedEntries != 1 || s.RedCycles != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestRedEntryCountedOncePerExcursion(t *testing.T) {
	m, _ := New(Config{Tg: 10, Policy: policy.None{}})
	act := newFake()
	m.Cycle(units.KW(35), thr(), mkSnap(1, 9), act) // enter red
	m.Cycle(units.KW(35), thr(), mkSnap(1, 0), act) // stay red
	m.Cycle(units.KW(28), thr(), mkSnap(1, 0), act) // green
	m.Cycle(units.KW(35), thr(), mkSnap(1, 0), act) // re-enter red
	if s := m.Stats(); s.RedEntries != 2 {
		t.Errorf("red entries = %d, want 2", s.RedEntries)
	}
}

func TestRedSkipsAlreadyFloored(t *testing.T) {
	m, _ := New(Config{Tg: 10, Policy: policy.None{}})
	act := newFake()
	_, actions, _ := m.Cycle(units.KW(35), thr(), mkSnap(3, 0), act)
	if len(actions) != 0 {
		t.Errorf("red re-floored already-floored nodes: %v", actions)
	}
	// They still join A_degraded for later restore.
	if m.Degraded() != 3 {
		t.Errorf("A_degraded = %d", m.Degraded())
	}
}

func TestYellowSkipsIdleAndFloorNodes(t *testing.T) {
	m, _ := New(Config{Tg: 10, Policy: policy.All{}})
	act := newFake()
	snap := mkSnap(3, 9)
	snap.Nodes[0].Idle = true
	snap.Nodes[1].AtLowest = true
	snap.Nodes[1].Level = 0
	_, actions, _ := m.Cycle(units.KW(32), thr(), snap, act)
	if len(actions) != 1 || actions[0].Node != 2 {
		t.Errorf("actions = %v, want only node 2", actions)
	}
}

func TestActuationErrorDoesNotAbortCycle(t *testing.T) {
	m, _ := New(Config{Tg: 10, Policy: policy.MPC{}})
	act := newFake()
	act.refuse[1] = true
	_, actions, err := m.Cycle(units.KW(32), thr(), mkSnap(3, 9), act)
	if err != nil {
		t.Fatal(err)
	}
	if len(actions) != 2 {
		t.Errorf("actions = %v, want 2 (refused node skipped)", actions)
	}
	if m.Degraded() != 2 {
		t.Errorf("refused node entered A_degraded")
	}
}

func TestRestoreKeepsMissingNodes(t *testing.T) {
	// A node that temporarily vanishes from the snapshot (lost agent
	// sample) is skipped but stays in A_degraded, and is restored when
	// its readings return — a single dropped sample must not orphan a
	// degraded node at a low level.
	m, _ := New(Config{Tg: 1, Policy: policy.MPC{}})
	act := newFake()
	m.Cycle(units.KW(32), thr(), mkSnap(2, 9), act) // degrade nodes 0,1
	snapMissing := mkSnap(1, 8)                     // only node 0 reports
	_, actions, _ := m.Cycle(units.KW(28), thr(), snapMissing, act)
	if len(actions) != 1 || actions[0].Node != 0 {
		t.Errorf("actions = %v, want restore of node 0 only", actions)
	}
	if m.Degraded() != 1 {
		t.Fatalf("A_degraded = %d, want node 1 retained", m.Degraded())
	}
	// Node 1 reappears still at level 8: it must now be restored.
	_, actions, _ = m.Cycle(units.KW(28), thr(), mkSnap(2, 8), act)
	restored := false
	for _, a := range actions {
		if a.Node == 1 && a.Level == 9 {
			restored = true
		}
	}
	if !restored {
		t.Errorf("returning node not restored: %v", actions)
	}
}

func TestRestoreRetainsAbsentNodeAcrossManyCycles(t *testing.T) {
	// Stronger skip-and-retain: a degraded node that stays absent from
	// the snapshot for many steady-green restore rounds (several
	// multiples of Tg) must neither be forgotten nor commanded, and must
	// be lifted back to its top level once its readings return.
	const tg = 3
	m, _ := New(Config{Tg: tg, Policy: policy.MPC{}})
	act := newFake()
	m.Cycle(units.KW(32), thr(), mkSnap(2, 9), act) // degrade nodes 0,1 to 8

	// Node 1 goes dark. Node 0 reports at level 8 and is restored to top
	// on the first steady-green round; after that only node 1 remains,
	// and every subsequent round must skip it without dropping it.
	snapMissing := mkSnap(1, 8)
	for cycle := 0; cycle < 4*tg; cycle++ {
		_, actions, err := m.Cycle(units.KW(28), thr(), snapMissing, act)
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range actions {
			if a.Node == 1 {
				t.Fatalf("cycle %d: absent node commanded: %+v", cycle, a)
			}
		}
		if m.Degraded() < 1 {
			t.Fatalf("cycle %d: absent node dropped from A_degraded", cycle)
		}
	}
	if got := m.Stats().RestoreOps; got != 1 {
		t.Errorf("RestoreOps = %d, want 1 (node 0 only)", got)
	}

	// Node 1 reappears still at level 8: the next steady-green round
	// restores it to top and A_degraded finally empties.
	full := mkSnap(2, 8)
	full.Nodes = full.Nodes[1:] // drop node 0 (already at top, not degraded)
	_, actions, _ := m.Cycle(units.KW(28), thr(), full, act)
	if len(actions) != 1 || actions[0].Node != 1 || actions[0].Level != 9 {
		t.Fatalf("actions = %v, want node 1 restored to 9", actions)
	}
	if m.Degraded() != 0 {
		t.Errorf("A_degraded = %d after return, want 0", m.Degraded())
	}
	if lvl := act.levels[1]; lvl != 9 {
		t.Errorf("actuated level = %d, want 9", lvl)
	}
}

func TestInvalidThresholdsRejected(t *testing.T) {
	m, _ := New(Config{Tg: 10, Policy: policy.MPC{}})
	bad := power.Thresholds{PL: units.KW(34), PH: units.KW(31)}
	if _, _, err := m.Cycle(units.KW(32), bad, mkSnap(1, 9), newFake()); err == nil {
		t.Error("inverted thresholds accepted")
	}
}

func TestConvergenceToGreenUnderConstantLoad(t *testing.T) {
	// Scenario: power scales with aggregate level; repeated yellow cycles
	// must walk the system down until it classifies green.
	m, _ := New(Config{Tg: 10, Policy: policy.MPC{}})
	act := newFake()
	levels := []int{9, 9, 9, 9}
	powerOf := func() units.Watts {
		sum := 0.0
		for _, l := range levels {
			sum += 200 + 12*float64(l)
		}
		return units.Watts(sum * 26) // scale into the 31-34 kW band
	}
	th := thr()
	for cycle := 0; cycle < 50; cycle++ {
		p := powerOf()
		if th.Classify(p) == power.Green {
			return // converged
		}
		snap := &policy.Snapshot{P: p, PL: th.PL}
		js := policy.JobState{ID: 1}
		for i, l := range levels {
			ns := policy.NodeState{
				ID: node.ID(i), Level: l, MaxLevel: 9, AtLowest: l == 0,
				Est: units.Watts(200 + 12*float64(l)), EstLower: units.Watts(200 + 12*float64(l-1)),
				Job: 1,
			}
			if l == 0 {
				ns.EstLower = ns.Est
			}
			snap.Nodes = append(snap.Nodes, ns)
			js.Nodes = append(js.Nodes, ns.ID)
			js.Power += ns.Est
		}
		snap.Jobs = []policy.JobState{js}
		_, actions, err := m.Cycle(p, th, snap, act)
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range actions {
			levels[a.Node] = a.Level
		}
	}
	t.Fatalf("never converged to green; final power %v", powerOf())
}
