package manager

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/node"
	"repro/internal/power"
	"repro/internal/procfs"
	"repro/internal/scheduler"
	"repro/internal/units"
	"repro/internal/workload"
)

func reading(id int, level int, util float64, job workload.JobID) AgentReading {
	return AgentReading{
		ID: node.ID(id), Level: level, MaxLevel: 9,
		Delta: procfs.Delta{
			Interval: time.Second, CPUUtil: util,
			MemUsed: 1 << 32, MemTotal: 48 << 30,
		},
		Job: job,
	}
}

func TestBuilderGroupsJobs(t *testing.T) {
	b := NewBuilder(power.TianheNode())
	snap := b.Build(units.KW(32), units.KW(31), []AgentReading{
		reading(0, 9, 0.9, 1),
		reading(1, 9, 0.9, 1),
		reading(2, 9, 0.7, 2),
		reading(3, 9, 0.01, 0), // idle, no job
	})
	if len(snap.Nodes) != 4 {
		t.Fatalf("nodes = %d", len(snap.Nodes))
	}
	if len(snap.Jobs) != 2 {
		t.Fatalf("jobs = %d, want 2", len(snap.Jobs))
	}
	if snap.Jobs[0].ID != 1 || len(snap.Jobs[0].Nodes) != 2 {
		t.Errorf("job 1 grouping wrong: %+v", snap.Jobs[0])
	}
	if snap.Jobs[0].Power <= snap.Jobs[1].Power {
		t.Error("two-node job should out-consume one-node job")
	}
	if snap.Jobs[0].Saving <= 0 {
		t.Error("job saving not computed")
	}
}

func TestBuilderIdleDetection(t *testing.T) {
	b := NewBuilder(power.TianheNode())
	snap := b.Build(0, 0, []AgentReading{
		reading(0, 9, 0.01, 3), // idle despite job attribution
		reading(1, 9, 0.5, 3),
	})
	if !snap.Nodes[0].Idle {
		t.Error("quiet node not marked idle")
	}
	if snap.Nodes[1].Idle {
		t.Error("busy node marked idle")
	}
	// Idle nodes do not join Nodes(J).
	if len(snap.Jobs) != 1 || len(snap.Jobs[0].Nodes) != 1 {
		t.Errorf("jobs = %+v", snap.Jobs)
	}
}

func TestBuilderNICIdleDetection(t *testing.T) {
	b := NewBuilder(power.TianheNode())
	r := reading(0, 9, 0.01, 1)
	// Heavy NIC traffic: not idle even with a quiet CPU.
	r.Delta.NICBytes = uint64(0.5 * float64(power.TianheNode().NIC.Bandwidth))
	snap := b.Build(0, 0, []AgentReading{r})
	if snap.Nodes[0].Idle {
		t.Error("NIC-busy node marked idle")
	}
}

func TestBuilderPrevEstAcrossCycles(t *testing.T) {
	b := NewBuilder(power.TianheNode())
	s1 := b.Build(0, 0, []AgentReading{reading(0, 9, 0.4, 1)})
	if s1.Nodes[0].PrevEst != 0 {
		t.Error("first sighting has nonzero PrevEst")
	}
	s2 := b.Build(0, 0, []AgentReading{reading(0, 9, 0.8, 1)})
	if s2.Nodes[0].PrevEst != s1.Nodes[0].Est {
		t.Errorf("PrevEst = %v, want previous Est %v", s2.Nodes[0].PrevEst, s1.Nodes[0].Est)
	}
	if s2.Jobs[0].PrevPower != s1.Nodes[0].Est {
		t.Errorf("job PrevPower = %v", s2.Jobs[0].PrevPower)
	}
	if s2.Jobs[0].RateOfIncrease() <= 0 {
		t.Error("rising job has non-positive rate")
	}
}

func TestBuilderEstLowerAtFloor(t *testing.T) {
	b := NewBuilder(power.TianheNode())
	snap := b.Build(0, 0, []AgentReading{reading(0, 0, 0.9, 1)})
	n := snap.Nodes[0]
	if !n.AtLowest {
		t.Error("level-0 node not AtLowest")
	}
	if n.EstLower != n.Est {
		t.Errorf("floor node EstLower %v != Est %v", n.EstLower, n.Est)
	}
}

func TestBuilderJobOrderDeterministic(t *testing.T) {
	b := NewBuilder(power.TianheNode())
	snap := b.Build(0, 0, []AgentReading{
		reading(0, 9, 0.9, 7),
		reading(1, 9, 0.9, 3),
		reading(2, 9, 0.9, 5),
	})
	if len(snap.Jobs) != 3 || snap.Jobs[0].ID != 3 || snap.Jobs[1].ID != 5 || snap.Jobs[2].ID != 7 {
		t.Errorf("job order = %+v", snap.Jobs)
	}
}

func TestCollectorEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cl, err := cluster.New(cluster.Config{Nodes: 8, Model: power.TianheNode(), Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	sched, err := scheduler.New(cl.Nodes(), scheduler.Config{ProcsPerNode: 2})
	if err != nil {
		t.Fatal(err)
	}
	suite := workload.NPB(workload.ClassC)
	sched.Submit(workload.Request{Spec: suite[0], NProcs: 8}) // EP on 4 nodes

	coll := NewCollector(cl, sched)
	b := NewBuilder(power.TianheNode())

	// Warm-up cycle: first collection has no previous snapshot.
	now := time.Second
	sched.Tick(now, time.Second)
	cl.Tick(time.Second)
	first := coll.Collect(now)
	if len(first) != 8 {
		t.Fatalf("readings = %d", len(first))
	}
	b.Build(cl.TruePower(), 0, first)

	// Second cycle: deltas now carry real utilisation.
	now += time.Second
	cl.Tick(time.Second)
	sched.Tick(now, time.Second)
	snap := b.Build(cl.TruePower(), 0, coll.Collect(now))
	if len(snap.Jobs) != 1 {
		t.Fatalf("jobs = %+v", snap.Jobs)
	}
	if got := len(snap.Jobs[0].Nodes); got != 4 {
		t.Errorf("job nodes = %d, want 4", got)
	}
	// Estimated job power should be in a plausible band for 4 busy
	// EP nodes (≈250-300 W each).
	if p := snap.Jobs[0].Power; p < 800 || p > 1400 {
		t.Errorf("estimated job power = %v", p)
	}
}

func TestCollectorSkipsPrivilegedNodes(t *testing.T) {
	cl, _ := cluster.New(cluster.Config{Nodes: 8, Model: power.TianheNode(), Privileged: 3})
	coll := NewCollector(cl, nil)
	if got := len(coll.Collect(time.Second)); got != 5 {
		t.Errorf("collected %d readings, want 5 candidates only", got)
	}
}

func TestClusterActuator(t *testing.T) {
	cl, _ := cluster.New(cluster.Config{Nodes: 2, Model: power.TianheNode()})
	act := ClusterActuator{Cluster: cl}
	if err := act.SetNodeLevel(1, 3); err != nil {
		t.Fatal(err)
	}
	if cl.Node(1).Level() != 3 {
		t.Error("level not applied")
	}
	if err := act.SetNodeLevel(99, 3); err == nil {
		t.Error("unknown node accepted")
	}
}
