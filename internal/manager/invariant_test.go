package manager

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/node"
	"repro/internal/policy"
	"repro/internal/power"
	"repro/internal/procfs"
	"repro/internal/units"
	"repro/internal/workload"
)

// Property-based tests for Algorithm 1: seeded random traces (fleet size,
// initial levels, utilisation churn, thresholds, policy, Tg all drawn from
// the seed) drive the manager through the real snapshot builder, and every
// cycle is checked against the paper's invariants:
//
//  1. Red: every candidate above the floor is commanded to level 0 within
//     that same cycle (maximal strength, A_degraded := A_candidate) — and
//     more generally, power above P_H never passes without a degrade.
//  2. Yellow: degrades are exactly one level, and never target idle or
//     floor-level nodes (§III.B property 4).
//  3. Green: restores are monotone one-level steps, and only happen after
//     Tg consecutive green cycles.
//
// Every failure message leads with the seed, so a failing trace replays
// exactly with `-run TestAlgorithmOneInvariants` and the seed pinned.

// invariantPolicies is the rotation of selection policies exercised across
// seeds — state-based, change-based, cost-based and the degenerate
// baselines all have to uphold the same invariants.
var invariantPolicies = []policy.Policy{
	policy.MPC{}, policy.LPC{}, policy.HRI{}, policy.MPCC{}, policy.LPCC{},
	policy.HRIC{}, policy.MinCost{}, policy.BFP{}, policy.All{}, policy.None{},
}

// traceRecorder is a perfect actuator: every command applies instantly.
// It validates command bounds as they arrive.
type traceRecorder struct {
	t        *testing.T
	seed     int64
	maxLevel int
	known    map[node.ID]bool
	applied  []Action
}

func (r *traceRecorder) SetNodeLevel(id node.ID, level int) error {
	if level < 0 || level > r.maxLevel {
		r.t.Fatalf("seed %d: out-of-range level %d commanded to node %d", r.seed, level, id)
	}
	if !r.known[id] {
		r.t.Fatalf("seed %d: command to unknown node %d", r.seed, id)
	}
	r.applied = append(r.applied, Action{Node: id, Level: level})
	return nil
}

// rollUtil draws a node utilisation: mostly busy, occasionally idle (below
// the sensing path's idle cutoff), so property 4 gets exercised.
func rollUtil(rng *rand.Rand) float64 {
	if rng.Float64() < 0.1 {
		return rng.Float64() * 0.03
	}
	return 0.1 + 0.9*rng.Float64()
}

func runInvariantTrace(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	pol := invariantPolicies[int(seed)%len(invariantPolicies)]
	tg := 2 + rng.Intn(5)
	mgr, err := New(Config{Tg: tg, Policy: pol})
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}

	model := power.TianheNode()
	maxLevel := model.Levels() - 1
	n := 4 + rng.Intn(37)
	ids := make([]node.ID, n)
	levels := make(map[node.ID]int, n)
	util := make(map[node.ID]float64, n)
	jobs := make(map[node.ID]workload.JobID, n)
	rec := &traceRecorder{t: t, seed: seed, maxLevel: maxLevel, known: make(map[node.ID]bool, n)}
	for i := range ids {
		id := node.ID(i)
		ids[i] = id
		levels[id] = rng.Intn(maxLevel + 1)
		util[id] = rollUtil(rng)
		jobs[id] = workload.JobID(1 + rng.Intn(4))
		rec.known[id] = true
	}

	builder := NewBuilder(model)
	readings := func() ([]AgentReading, units.Watts) {
		rs := make([]AgentReading, 0, n)
		var p units.Watts
		for _, id := range ids {
			d := procfs.Delta{Interval: 50 * time.Millisecond, CPUUtil: util[id]}
			rs = append(rs, AgentReading{ID: id, Level: levels[id], MaxLevel: maxLevel, Delta: d, Job: jobs[id]})
			p += model.Estimate(d, levels[id])
		}
		return rs, p
	}

	// Thresholds bracket the trace's starting power, so level churn sweeps
	// the system through all three states over the trace.
	_, p0 := readings()
	pl := units.Watts(float64(p0) * (0.70 + 0.25*rng.Float64()))
	if pl < 1 {
		pl = 1
	}
	thr := power.Thresholds{PL: pl, PH: units.Watts(float64(pl) * (1.05 + 0.20*rng.Float64()))}
	if err := thr.Validate(); err != nil {
		t.Fatalf("seed %d: generated invalid thresholds: %v", seed, err)
	}

	cycles := 40 + rng.Intn(41)
	greens := 0
	for c := 0; c < cycles; c++ {
		// Workload churn: a slice of the fleet changes behaviour.
		for _, id := range ids {
			if rng.Float64() < 0.15 {
				util[id] = rollUtil(rng)
			}
		}
		rs, p := readings()
		snap := builder.Build(p, thr.PL, rs)
		byID := make(map[node.ID]policy.NodeState, len(snap.Nodes))
		for _, ns := range snap.Nodes {
			byID[ns.ID] = ns
		}

		rec.applied = nil
		st, actions, err := mgr.Cycle(p, thr, snap, rec)
		if err != nil {
			t.Fatalf("seed %d cycle %d: %v", seed, c, err)
		}
		if len(rec.applied) != len(actions) {
			t.Fatalf("seed %d cycle %d: %d actions reported but %d actuated", seed, c, len(actions), len(rec.applied))
		}
		byNode := make(map[node.ID]int, len(actions))
		for _, a := range actions {
			if _, dup := byNode[a.Node]; dup {
				t.Fatalf("seed %d cycle %d: node %d commanded twice in one cycle", seed, c, a.Node)
			}
			byNode[a.Node] = a.Level
		}

		// Power above P_H never passes without a degrade (unless the whole
		// fleet is already at the floor).
		if p > thr.PH {
			anyAbove := false
			for _, ns := range snap.Nodes {
				if ns.Level > 0 {
					anyAbove = true
					break
				}
			}
			if anyAbove && len(actions) == 0 {
				t.Fatalf("seed %d cycle %d: p=%.0fW above PH=%.0fW with no degrade commanded",
					seed, c, float64(p), float64(thr.PH))
			}
		}

		switch st {
		case power.Red:
			greens = 0
			// Maximal strength: every candidate above the floor is ordered
			// there within this very cycle, idle nodes included.
			for _, ns := range snap.Nodes {
				if ns.Level == 0 {
					continue
				}
				lv, ok := byNode[ns.ID]
				if !ok {
					t.Fatalf("seed %d cycle %d: red state skipped node %d at level %d", seed, c, ns.ID, ns.Level)
				}
				if lv != 0 {
					t.Fatalf("seed %d cycle %d: red state commanded node %d to %d, want floor", seed, c, ns.ID, lv)
				}
			}
		case power.Yellow:
			greens = 0
			for _, a := range actions {
				cur := levels[a.Node]
				if a.Level != cur-1 {
					t.Fatalf("seed %d cycle %d: yellow degrade %d→%d on node %d is not one step",
						seed, c, cur, a.Level, a.Node)
				}
				ns := byID[a.Node]
				if ns.Idle || ns.AtLowest {
					t.Fatalf("seed %d cycle %d: yellow targeted idle/floor node %d (idle=%v level=%d)",
						seed, c, a.Node, ns.Idle, ns.Level)
				}
			}
		case power.Green:
			greens++
			if len(actions) > 0 && greens < tg {
				t.Fatalf("seed %d cycle %d: restore after only %d green cycles (Tg=%d)", seed, c, greens, tg)
			}
			for _, a := range actions {
				cur := levels[a.Node]
				if a.Level != cur+1 {
					t.Fatalf("seed %d cycle %d: green restore %d→%d on node %d is not one step up",
						seed, c, cur, a.Level, a.Node)
				}
			}
		}

		for _, a := range actions {
			levels[a.Node] = a.Level
		}
	}
}

func TestAlgorithmOneInvariants(t *testing.T) {
	const seeds = 120
	for seed := int64(0); seed < seeds; seed++ {
		runInvariantTrace(t, seed)
	}
}
