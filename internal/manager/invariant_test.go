package manager_test

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/manager"
	"repro/internal/node"
	"repro/internal/policy"
	"repro/internal/power"
	"repro/internal/procfs"
	"repro/internal/proptest"
	"repro/internal/scenario"
	"repro/internal/units"
	"repro/internal/workload"
)

// Property-based tests for Algorithm 1, on the proptest runner: seeded
// random traces (fleet size, initial levels, utilisation churn,
// thresholds, Tg all drawn from the trial's generator; the selection
// policy rotated deterministically by trial index) drive the manager
// through the real snapshot builder, and the whole trace is checked
// against the paper's invariants by scenario.CheckAlgorithmOne — the
// same checker that validates every library scenario's trace:
//
//  1. Red: every candidate above the floor is commanded to level 0 within
//     that same cycle (maximal strength, A_degraded := A_candidate) — and
//     more generally, power above P_H never passes without a degrade.
//  2. Yellow: degrades are exactly one level, and never target idle or
//     floor-level nodes (§III.B property 4).
//  3. Green: restores are monotone one-level steps, and only happen after
//     Tg consecutive green cycles.
//
// A failing run prints the master seed; `PROPTEST_SEED=<n>` replays the
// exact failing fleet.

// invariantPolicies is the rotation of selection policies exercised across
// trials — state-based, change-based, cost-based and the degenerate
// baselines all have to uphold the same invariants. 120 trials over a
// 10-policy roster puts 12 independent traces behind each policy.
var invariantPolicies = []policy.Policy{
	policy.MPC{}, policy.LPC{}, policy.HRI{}, policy.MPCC{}, policy.LPCC{},
	policy.HRIC{}, policy.MinCost{}, policy.BFP{}, policy.All{}, policy.None{},
}

// traceRecorder is a perfect actuator: every command applies instantly.
// It validates command bounds as they arrive.
type traceRecorder struct {
	maxLevel int
	known    map[node.ID]bool
	applied  []manager.Action
	err      error
}

func (r *traceRecorder) SetNodeLevel(id node.ID, level int) error {
	if level < 0 || level > r.maxLevel {
		r.err = fmt.Errorf("out-of-range level %d commanded to node %d", level, id)
		return r.err
	}
	if !r.known[id] {
		r.err = fmt.Errorf("command to unknown node %d", id)
		return r.err
	}
	r.applied = append(r.applied, manager.Action{Node: id, Level: level})
	return nil
}

// rollUtil draws a node utilisation: mostly busy, occasionally idle (below
// the sensing path's idle cutoff), so property 4 gets exercised.
func rollUtil(g *proptest.Generator) float64 {
	if g.Bool(0.1) {
		return g.Float64() * 0.03
	}
	return 0.1 + 0.9*g.Float64()
}

func runInvariantTrace(g *proptest.Generator) error {
	pol := invariantPolicies[g.Trial()%len(invariantPolicies)]
	tg := g.IntRange(2, 6)
	mgr, err := manager.New(manager.Config{Tg: tg, Policy: pol})
	if err != nil {
		return err
	}

	model := power.TianheNode()
	maxLevel := model.Levels() - 1
	n := g.IntRange(4, 40)
	ids := make([]node.ID, n)
	levels := make(map[node.ID]int, n)
	util := make(map[node.ID]float64, n)
	jobs := make(map[node.ID]workload.JobID, n)
	rec := &traceRecorder{maxLevel: maxLevel, known: make(map[node.ID]bool, n)}
	for i := range ids {
		id := node.ID(i)
		ids[i] = id
		levels[id] = g.Intn(maxLevel + 1)
		util[id] = rollUtil(g)
		jobs[id] = workload.JobID(g.IntRange(1, 4))
		rec.known[id] = true
	}

	builder := manager.NewBuilder(model)
	readings := func() ([]manager.AgentReading, units.Watts) {
		rs := make([]manager.AgentReading, 0, n)
		var p units.Watts
		for _, id := range ids {
			d := procfs.Delta{Interval: 50 * time.Millisecond, CPUUtil: util[id]}
			rs = append(rs, manager.AgentReading{ID: id, Level: levels[id], MaxLevel: maxLevel, Delta: d, Job: jobs[id]})
			p += model.Estimate(d, levels[id])
		}
		return rs, p
	}

	// Thresholds bracket the trace's starting power, so level churn sweeps
	// the system through all three states over the trace.
	_, p0 := readings()
	pl := units.Watts(float64(p0) * (0.70 + 0.25*g.Float64()))
	if pl < 1 {
		pl = 1
	}
	thr := power.Thresholds{PL: pl, PH: units.Watts(float64(pl) * (1.05 + 0.20*g.Float64()))}
	if err := thr.Validate(); err != nil {
		return fmt.Errorf("generated invalid thresholds: %w", err)
	}

	cycles := g.IntRange(40, 80)
	records := make([]scenario.CycleRecord, 0, cycles)
	for c := 0; c < cycles; c++ {
		// Workload churn: a slice of the fleet changes behaviour.
		for _, id := range ids {
			if g.Bool(0.15) {
				util[id] = rollUtil(g)
			}
		}
		rs, p := readings()
		snap := builder.Build(p, thr.PL, rs)

		rec.applied = nil
		st, actions, err := mgr.Cycle(p, thr, snap, rec)
		if err != nil {
			return fmt.Errorf("cycle %d: %w", c, err)
		}
		if rec.err != nil {
			return fmt.Errorf("cycle %d: %w", c, rec.err)
		}
		if len(rec.applied) != len(actions) {
			return fmt.Errorf("cycle %d: %d actions reported but %d actuated", c, len(actions), len(rec.applied))
		}

		cr := scenario.CycleRecord{
			Cycle: c, PowerW: float64(p),
			PLW: float64(thr.PL), PHW: float64(thr.PH),
			State: st.String(), Online: n,
			Nodes: make([]scenario.NodeRecord, 0, len(snap.Nodes)),
		}
		for _, ns := range snap.Nodes {
			cr.Nodes = append(cr.Nodes, scenario.NodeRecord{
				ID: int(ns.ID), Level: ns.Level, MaxLevel: ns.MaxLevel,
				Idle: ns.Idle, AtLowest: ns.AtLowest,
			})
		}
		for _, a := range actions {
			cr.Actions = append(cr.Actions, scenario.ActionRecord{Node: int(a.Node), Level: a.Level})
			levels[a.Node] = a.Level
		}
		records = append(records, cr)
	}
	return scenario.CheckAlgorithmOne(records, tg)
}

func TestAlgorithmOneInvariants(t *testing.T) {
	// 120 trials, the suite's historical trace count: 12 per policy.
	proptest.MustCheck(t, "algorithm-one", proptest.Config{NumTrials: 120, Seed: 2024}, runInvariantTrace)
}
