package manager

import (
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/device"
	"repro/internal/node"
	"repro/internal/policy"
	"repro/internal/power"
	"repro/internal/procfs"
	"repro/internal/units"
)

// smallNode returns a lower-power node model with fewer DVFS levels — a
// different hardware generation in the same cluster.
func smallNode() power.Model {
	m := power.TianheNode()
	m.CPU.Freqs = m.CPU.Freqs[:5] // 5 levels, 1.60–2.19 GHz
	m.CPU.DynMaxPerSocket = 40
	m.Idle = device.IdleCurve{Min: 60, Max: 80}
	m.Mem.DynMax = 30
	return m
}

func TestBuilderHeterogeneousModels(t *testing.T) {
	big := power.TianheNode()
	small := smallNode()
	b := NewBuilder(big)
	b.SetNodeModel(1, small)

	d := procfs.Delta{Interval: time.Second, CPUUtil: 0.9,
		MemUsed: 24 << 30, MemTotal: 48 << 30}
	snap := b.Build(0, 0, []AgentReading{
		{ID: 0, Level: 9, MaxLevel: 9, Delta: d, Job: 1},
		{ID: 1, Level: 4, MaxLevel: 4, Delta: d, Job: 1},
	})
	n0, n1 := snap.Nodes[0], snap.Nodes[1]
	if n0.Est <= n1.Est {
		t.Errorf("big node estimate %v not above small node %v", n0.Est, n1.Est)
	}
	want := small.Estimate(d, 4)
	if n1.Est != want {
		t.Errorf("small node estimated with wrong model: %v vs %v", n1.Est, want)
	}
	// Per-node MaxLevel flows through for restore bookkeeping.
	if n1.MaxLevel != 4 {
		t.Errorf("small node MaxLevel = %d", n1.MaxLevel)
	}
}

// TestHeterogeneousCappingEndToEnd runs Algorithm 1 over a mixed cluster:
// half Tianhe nodes (10 levels), half older low-power nodes (5 levels).
// The loop must converge to green and the restore path must respect each
// node's own level table.
func TestHeterogeneousCappingEndToEnd(t *testing.T) {
	big, small := power.TianheNode(), smallNode()
	cl, err := cluster.New(cluster.Config{
		Nodes: 8,
		Model: big,
		ModelFor: func(i int) power.Model {
			if i%2 == 1 {
				return small
			}
			return big
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	b := NewBuilder(big)
	for _, n := range cl.Nodes() {
		b.SetNodeModel(n.ID(), n.Model())
	}
	coll := NewCollector(cl, nil)
	mgr, err := New(Config{Tg: 3, Policy: policy.All{}})
	if err != nil {
		t.Fatal(err)
	}
	act := ClusterActuator{Cluster: cl}

	// Load everything heavily and set thresholds so the loop starts
	// yellow, converges green, then restores.
	for _, n := range cl.Nodes() {
		n.SetLoad(node.Load{CPUUtil: 0.95, MemFrac: 0.5, NICFrac: 0.2})
	}
	// Yellow band chosen inside the mixed fleet's controllable range.
	thr := power.Thresholds{PL: units.KW(1.55), PH: units.KW(2.4)}

	var sawYellow, sawGreen bool
	now := time.Duration(0)
	for cycle := 0; cycle < 60; cycle++ {
		now += time.Second
		cl.Tick(time.Second)
		p := cl.TruePower()
		snap := b.Build(p, thr.PL, coll.Collect(now))
		st, _, err := mgr.Cycle(p, thr, snap, act)
		if err != nil {
			t.Fatal(err)
		}
		switch st {
		case power.Yellow:
			sawYellow = true
		case power.Green:
			sawGreen = true
		}
		// Invariant: no node ever leaves its own level table.
		for _, n := range cl.Nodes() {
			if n.Level() < 0 || n.Level() >= n.Levels() {
				t.Fatalf("node %d at level %d of %d", n.ID(), n.Level(), n.Levels())
			}
		}
	}
	if !sawYellow || !sawGreen {
		t.Errorf("loop never exercised yellow (%v) and green (%v)", sawYellow, sawGreen)
	}
	// Drop the load: after enough steady-green cycles every node must be
	// restored to its own top level and A_degraded emptied.
	for _, n := range cl.Nodes() {
		n.SetLoad(node.Load{})
	}
	for cycle := 0; cycle < 40; cycle++ {
		now += time.Second
		cl.Tick(time.Second)
		p := cl.TruePower()
		snap := b.Build(p, thr.PL, coll.Collect(now))
		if _, _, err := mgr.Cycle(p, thr, snap, act); err != nil {
			t.Fatal(err)
		}
	}
	for _, n := range cl.Nodes() {
		if !n.AtHighest() {
			t.Errorf("node %d (levels %d) stuck at level %d after recovery", n.ID(), n.Levels(), n.Level())
		}
	}
	if mgr.Degraded() != 0 {
		t.Errorf("A_degraded = %d after full restore", mgr.Degraded())
	}
}
