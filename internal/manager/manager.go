// Package manager implements the global power manager: the power capping
// algorithm of §III.B (Algorithm 1) driving a target set selection policy,
// plus the sensing path that turns per-node agent readings into the policy
// snapshot.
//
// The manager is transport-agnostic: the in-process Collector feeds it in
// the simulator, and the networked managerd feeds it the same AgentReading
// values decoded from TCP. Actuation goes through the Actuator interface
// for the same reason.
//
// Telemetry goes through the obs registry: the manager registers its
// instruments (cycles, state residency, degrade/restore ops, selection
// cost) at construction and Stats is derived from them, so the simulator,
// managerd's StatusReply and the /metrics endpoint all read one source of
// truth. Each Cycle also records its classify/select/actuate stages on
// the configured CycleRecorder.
package manager

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/node"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/power"
	"repro/internal/units"
)

// Actuator applies power state commands to nodes. Implementations: the
// cluster (simulation) or the agent command channel (daemons).
type Actuator interface {
	SetNodeLevel(id node.ID, level int) error
}

// Config parametrises the capping algorithm.
type Config struct {
	// Tg is the number of consecutive green cycles after which the system
	// is considered steady green and degraded nodes regain one level.
	// The paper's experiments use 10.
	Tg int
	// Policy selects A_target in the yellow state.
	Policy policy.Policy
	// Obs receives the manager's instruments. When nil the manager uses a
	// private registry so Stats stays registry-derived either way.
	Obs *obs.Registry
	// Trace, when non-nil, receives classify/select/actuate stage spans
	// for the cycle currently open on it.
	Trace *obs.CycleRecorder
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Tg <= 0 {
		return fmt.Errorf("manager: Tg must be positive, got %d", c.Tg)
	}
	if c.Policy == nil {
		return fmt.Errorf("manager: nil policy")
	}
	return nil
}

// Stats is a snapshot of the control-loop statistics, derived from the
// obs registry instruments on demand.
type Stats struct {
	Cycles       int
	GreenCycles  int
	YellowCycles int
	RedCycles    int
	// RedEntries counts transitions into the red state — the paper
	// reports this stayed zero under capping.
	RedEntries int
	// DegradeOps / RestoreOps count individual node level changes.
	DegradeOps int
	RestoreOps int
	// SelectTime accumulates host time spent in policy selection; the
	// Figure 5 harness reads it together with collection time, and
	// managerd surfaces it as select_micros.
	SelectTime time.Duration
}

// Manager runs Algorithm 1.
type Manager struct {
	cfg      Config
	degraded map[node.ID]bool // A_degraded
	timeg    int              // Time_g, in cycles
	lastSt   power.State
	started  bool

	// Registry instruments, cached at construction; names match the
	// snake_case wire.StatusReply tags they surface under.
	cycles       *obs.Counter
	greenCycles  *obs.Counter
	yellowCycles *obs.Counter
	redCycles    *obs.Counter
	redEntries   *obs.Counter
	degradeOps   *obs.Counter
	restoreOps   *obs.Counter
	selectMicros *obs.Gauge // accumulated µs, fractional to avoid truncation
}

// New creates a manager. A_degraded starts empty and Time_g at zero, per
// Algorithm 1's initialisation.
func New(cfg Config) (*Manager, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Obs == nil {
		cfg.Obs = obs.NewRegistry()
	}
	r := cfg.Obs
	return &Manager{
		cfg:          cfg,
		degraded:     make(map[node.ID]bool),
		cycles:       r.Counter("cycles"),
		greenCycles:  r.Counter("green_cycles"),
		yellowCycles: r.Counter("yellow_cycles"),
		redCycles:    r.Counter("red_cycles"),
		redEntries:   r.Counter("red_entries"),
		degradeOps:   r.Counter("degrade_ops"),
		restoreOps:   r.Counter("restore_ops"),
		selectMicros: r.Gauge("select_micros"),
	}, nil
}

// Stats derives the statistics snapshot from the registry instruments.
func (m *Manager) Stats() Stats {
	return Stats{
		Cycles:       int(m.cycles.Value()),
		GreenCycles:  int(m.greenCycles.Value()),
		YellowCycles: int(m.yellowCycles.Value()),
		RedCycles:    int(m.redCycles.Value()),
		RedEntries:   int(m.redEntries.Value()),
		DegradeOps:   int(m.degradeOps.Value()),
		RestoreOps:   int(m.restoreOps.Value()),
		SelectTime:   time.Duration(m.selectMicros.Value() * float64(time.Microsecond)),
	}
}

// Obs returns the registry holding the manager's instruments.
func (m *Manager) Obs() *obs.Registry { return m.cfg.Obs }

// Degraded returns the current size of A_degraded.
func (m *Manager) Degraded() int { return len(m.degraded) }

// Adopt inserts a node into A_degraded without issuing a command. The
// reconciliation layer uses it for nodes found below their top level with
// no command on record — a journal-recovered restart, or an agent whose
// dead-man switch self-degraded it during a manager outage — so the
// steady-green restore path lifts them back instead of orphaning them at
// a low level forever.
func (m *Manager) Adopt(id node.ID) { m.degraded[id] = true }

// Policy returns the configured selection policy.
func (m *Manager) Policy() policy.Policy { return m.cfg.Policy }

// Action records one node command issued during a cycle.
type Action struct {
	Node  node.ID
	Level int // the target level l_i
}

// Cycle executes one control cycle of Algorithm 1 against the given power
// reading, thresholds and sensing snapshot, issuing commands through act.
// It returns the classified state and the actions taken.
//
// Actuation errors on individual nodes are counted but do not abort the
// cycle: a node that refuses a command (e.g. it just left A_candidate)
// must not stall capping of the others.
func (m *Manager) Cycle(p units.Watts, thr power.Thresholds, snap *policy.Snapshot, act Actuator) (power.State, []Action, error) {
	if err := thr.Validate(); err != nil {
		return power.Green, nil, err
	}
	tc := time.Now()
	st := thr.Classify(p)
	m.cfg.Trace.Stage(obs.StageClassify, time.Since(tc), st.String())
	m.cycles.Inc()
	if st == power.Red && (!m.started || m.lastSt != power.Red) {
		m.redEntries.Inc()
	}
	m.lastSt, m.started = st, true

	// The by-ID index is built lazily: only the yellow selection filter
	// and the green restore sweep look nodes up by ID. The red path — the
	// hot path at fleet scale, and the one whose reaction time the paper
	// bounds — walks the snapshot directly, so it skips the map (and its
	// per-cycle allocation) entirely.
	buildIdx := func() map[node.ID]policy.NodeState {
		idx := make(map[node.ID]policy.NodeState, len(snap.Nodes))
		for _, n := range snap.Nodes {
			idx[n.ID] = n
		}
		return idx
	}

	var actions []Action
	switch st {
	case power.Green:
		m.greenCycles.Inc()
		m.timeg++
		m.cfg.Trace.Stage(obs.StageSelect, 0, "")
		ta := time.Now()
		if m.timeg >= m.cfg.Tg && len(m.degraded) > 0 {
			actions = m.restore(buildIdx(), act)
		}
		m.cfg.Trace.Stage(obs.StageActuate, time.Since(ta), fmt.Sprintf("actions=%d", len(actions)))

	case power.Yellow:
		m.yellowCycles.Inc()
		m.timeg = 0
		t0 := time.Now()
		targets := m.cfg.Policy.Select(snap)
		dSel := time.Since(t0)
		m.selectMicros.Add(float64(dSel) / float64(time.Microsecond))
		m.cfg.Trace.Stage(obs.StageSelect, dSel, fmt.Sprintf("targets=%d", len(targets)))
		ta := time.Now()
		idx := buildIdx()
		for _, id := range targets {
			n, ok := idx[id]
			if !ok || n.Idle || n.AtLowest {
				// Defensive: Algorithm 1 requires valid policies not
				// to select idle or floor-level nodes; filter anyway.
				continue
			}
			if err := act.SetNodeLevel(id, n.Level-1); err != nil {
				continue
			}
			m.degraded[id] = true
			m.degradeOps.Inc()
			actions = append(actions, Action{Node: id, Level: n.Level - 1})
		}
		m.cfg.Trace.Stage(obs.StageActuate, time.Since(ta), fmt.Sprintf("actions=%d", len(actions)))

	case power.Red:
		m.redCycles.Inc()
		m.timeg = 0
		m.cfg.Trace.Stage(obs.StageSelect, 0, "")
		ta := time.Now()
		// Maximal strength: every candidate to its lowest power state,
		// A_degraded := A_candidate.
		for _, n := range snap.Nodes {
			if n.Level > 0 {
				if err := act.SetNodeLevel(n.ID, 0); err != nil {
					continue
				}
				m.degradeOps.Inc()
				actions = append(actions, Action{Node: n.ID, Level: 0})
			}
			m.degraded[n.ID] = true
		}
		m.cfg.Trace.Stage(obs.StageActuate, time.Since(ta), fmt.Sprintf("actions=%d", len(actions)))
	}
	return st, actions, nil
}

// restore raises every degraded node by one level (steady green). Nodes
// reaching their top level leave A_degraded. Nodes absent from this
// cycle's snapshot — a lost agent sample, or a node that left the
// candidate set — are skipped but retained: forgetting them would orphan
// a degraded node at a low level forever after a single dropped reading.
func (m *Manager) restore(idx map[node.ID]policy.NodeState, act Actuator) []Action {
	ids := make([]node.ID, 0, len(m.degraded))
	for id := range m.degraded {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })

	var actions []Action
	for _, id := range ids {
		n, ok := idx[id]
		if !ok {
			continue
		}
		next := n.Level + 1
		if next > n.MaxLevel {
			delete(m.degraded, id)
			continue
		}
		if err := act.SetNodeLevel(id, next); err != nil {
			continue
		}
		m.restoreOps.Inc()
		actions = append(actions, Action{Node: id, Level: next})
		if next == n.MaxLevel {
			delete(m.degraded, id)
		}
	}
	return actions
}
