// Package manager implements the global power manager: the power capping
// algorithm of §III.B (Algorithm 1) driving a target set selection policy,
// plus the sensing path that turns per-node agent readings into the policy
// snapshot.
//
// The manager is transport-agnostic: the in-process Collector feeds it in
// the simulator, and the networked managerd feeds it the same AgentReading
// values decoded from TCP. Actuation goes through the Actuator interface
// for the same reason.
package manager

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/node"
	"repro/internal/policy"
	"repro/internal/power"
	"repro/internal/units"
)

// Actuator applies power state commands to nodes. Implementations: the
// cluster (simulation) or the agent command channel (daemons).
type Actuator interface {
	SetNodeLevel(id node.ID, level int) error
}

// Config parametrises the capping algorithm.
type Config struct {
	// Tg is the number of consecutive green cycles after which the system
	// is considered steady green and degraded nodes regain one level.
	// The paper's experiments use 10.
	Tg int
	// Policy selects A_target in the yellow state.
	Policy policy.Policy
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Tg <= 0 {
		return fmt.Errorf("manager: Tg must be positive, got %d", c.Tg)
	}
	if c.Policy == nil {
		return fmt.Errorf("manager: nil policy")
	}
	return nil
}

// Stats accumulates control-loop statistics over a run.
type Stats struct {
	Cycles       int
	GreenCycles  int
	YellowCycles int
	RedCycles    int
	// RedEntries counts transitions into the red state — the paper
	// reports this stayed zero under capping.
	RedEntries int
	// DegradeOps / RestoreOps count individual node level changes.
	DegradeOps int
	RestoreOps int
	// SelectTime accumulates host time spent in policy selection; the
	// Figure 5 harness reads it together with collection time.
	SelectTime time.Duration
}

// Manager runs Algorithm 1.
type Manager struct {
	cfg      Config
	degraded map[node.ID]bool // A_degraded
	timeg    int              // Time_g, in cycles
	lastSt   power.State
	started  bool
	stats    Stats
}

// New creates a manager. A_degraded starts empty and Time_g at zero, per
// Algorithm 1's initialisation.
func New(cfg Config) (*Manager, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Manager{cfg: cfg, degraded: make(map[node.ID]bool)}, nil
}

// Stats returns a copy of the accumulated statistics.
func (m *Manager) Stats() Stats { return m.stats }

// Degraded returns the current size of A_degraded.
func (m *Manager) Degraded() int { return len(m.degraded) }

// Adopt inserts a node into A_degraded without issuing a command. The
// reconciliation layer uses it for nodes found below their top level with
// no command on record — a journal-recovered restart, or an agent whose
// dead-man switch self-degraded it during a manager outage — so the
// steady-green restore path lifts them back instead of orphaning them at
// a low level forever.
func (m *Manager) Adopt(id node.ID) { m.degraded[id] = true }

// Policy returns the configured selection policy.
func (m *Manager) Policy() policy.Policy { return m.cfg.Policy }

// Action records one node command issued during a cycle.
type Action struct {
	Node  node.ID
	Level int // the target level l_i
}

// Cycle executes one control cycle of Algorithm 1 against the given power
// reading, thresholds and sensing snapshot, issuing commands through act.
// It returns the classified state and the actions taken.
//
// Actuation errors on individual nodes are counted but do not abort the
// cycle: a node that refuses a command (e.g. it just left A_candidate)
// must not stall capping of the others.
func (m *Manager) Cycle(p units.Watts, thr power.Thresholds, snap *policy.Snapshot, act Actuator) (power.State, []Action, error) {
	if err := thr.Validate(); err != nil {
		return power.Green, nil, err
	}
	st := thr.Classify(p)
	m.stats.Cycles++
	if st == power.Red && (!m.started || m.lastSt != power.Red) {
		m.stats.RedEntries++
	}
	m.lastSt, m.started = st, true

	idx := make(map[node.ID]policy.NodeState, len(snap.Nodes))
	for _, n := range snap.Nodes {
		idx[n.ID] = n
	}

	var actions []Action
	switch st {
	case power.Green:
		m.stats.GreenCycles++
		m.timeg++
		if m.timeg >= m.cfg.Tg && len(m.degraded) > 0 {
			actions = m.restore(idx, act)
		}

	case power.Yellow:
		m.stats.YellowCycles++
		m.timeg = 0
		t0 := time.Now()
		targets := m.cfg.Policy.Select(snap)
		m.stats.SelectTime += time.Since(t0)
		for _, id := range targets {
			n, ok := idx[id]
			if !ok || n.Idle || n.AtLowest {
				// Defensive: Algorithm 1 requires valid policies not
				// to select idle or floor-level nodes; filter anyway.
				continue
			}
			if err := act.SetNodeLevel(id, n.Level-1); err != nil {
				continue
			}
			m.degraded[id] = true
			m.stats.DegradeOps++
			actions = append(actions, Action{Node: id, Level: n.Level - 1})
		}

	case power.Red:
		m.stats.RedCycles++
		m.timeg = 0
		// Maximal strength: every candidate to its lowest power state,
		// A_degraded := A_candidate.
		for _, n := range snap.Nodes {
			if n.Level > 0 {
				if err := act.SetNodeLevel(n.ID, 0); err != nil {
					continue
				}
				m.stats.DegradeOps++
				actions = append(actions, Action{Node: n.ID, Level: 0})
			}
			m.degraded[n.ID] = true
		}
	}
	return st, actions, nil
}

// restore raises every degraded node by one level (steady green). Nodes
// reaching their top level leave A_degraded. Nodes absent from this
// cycle's snapshot — a lost agent sample, or a node that left the
// candidate set — are skipped but retained: forgetting them would orphan
// a degraded node at a low level forever after a single dropped reading.
func (m *Manager) restore(idx map[node.ID]policy.NodeState, act Actuator) []Action {
	ids := make([]node.ID, 0, len(m.degraded))
	for id := range m.degraded {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })

	var actions []Action
	for _, id := range ids {
		n, ok := idx[id]
		if !ok {
			continue
		}
		next := n.Level + 1
		if next > n.MaxLevel {
			delete(m.degraded, id)
			continue
		}
		if err := act.SetNodeLevel(id, next); err != nil {
			continue
		}
		m.stats.RestoreOps++
		actions = append(actions, Action{Node: id, Level: next})
		if next == n.MaxLevel {
			delete(m.degraded, id)
		}
	}
	return actions
}
