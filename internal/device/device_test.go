package device

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/units"
)

func TestX5670Shape(t *testing.T) {
	c := X5670()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.Levels() != 10 {
		t.Errorf("levels = %d, want 10 (paper: 10 working frequencies)", c.Levels())
	}
	if c.Cores() != 12 {
		t.Errorf("cores = %d, want 12 (2 sockets × 6)", c.Cores())
	}
	if got := c.Freq(0); math.Abs(got.GHz()-1.60) > 1e-9 {
		t.Errorf("base freq = %v, want 1.60 GHz", got)
	}
	if got := c.MaxFreq(); math.Abs(got.GHz()-2.93) > 1e-9 {
		t.Errorf("max freq = %v, want 2.93 GHz", got)
	}
}

func TestFreqMonotonic(t *testing.T) {
	c := X5670()
	for l := 1; l < c.Levels(); l++ {
		if c.Freq(l) <= c.Freq(l-1) {
			t.Errorf("freq(%d)=%v not > freq(%d)=%v", l, c.Freq(l), l-1, c.Freq(l-1))
		}
	}
}

func TestFreqClamping(t *testing.T) {
	c := X5670()
	if c.Freq(-3) != c.Freq(0) {
		t.Error("negative level not clamped")
	}
	if c.Freq(99) != c.MaxFreq() {
		t.Error("overlarge level not clamped")
	}
}

func TestDynMaxMonotoneAndNormalised(t *testing.T) {
	c := X5670()
	top := c.Levels() - 1
	want := units.Watts(float64(c.DynMaxPerSocket) * float64(c.Sockets))
	if got := c.DynMax(top); math.Abs(float64(got-want)) > 1e-9 {
		t.Errorf("DynMax(top) = %v, want %v", got, want)
	}
	for l := 1; l <= top; l++ {
		if c.DynMax(l) <= c.DynMax(l-1) {
			t.Errorf("DynMax not strictly increasing at level %d", l)
		}
	}
	// f·V² scaling means the bottom level is far below the top —
	// X5670-class parts roughly halve dynamic power at minimum frequency.
	ratio := float64(c.DynMax(0)) / float64(c.DynMax(top))
	if ratio > 0.5 || ratio < 0.15 {
		t.Errorf("DynMax(0)/DynMax(top) = %.2f, want a deep but plausible cut", ratio)
	}
}

func TestSlowdownFactor(t *testing.T) {
	c := X5670()
	if got := c.SlowdownFactor(c.Levels() - 1); got != 1 {
		t.Errorf("slowdown at top = %v, want 1", got)
	}
	want := 1.60 / 2.93
	if got := c.SlowdownFactor(0); math.Abs(got-want) > 1e-9 {
		t.Errorf("slowdown at bottom = %v, want %v", got, want)
	}
}

func TestCPUValidateErrors(t *testing.T) {
	cases := []CPU{
		{},
		{Sockets: 1, CoresPerSocket: 6}, // no freq table
		{Sockets: 1, CoresPerSocket: 1, Freqs: []units.Hertz{2, 1}, VoltMin: 1, VoltMax: 1},                   // descending
		{Sockets: 1, CoresPerSocket: 1, Freqs: []units.Hertz{1, 2}, VoltMin: 1, VoltMax: 0.5},                 // volt range
		{Sockets: 1, CoresPerSocket: 1, Freqs: []units.Hertz{1}, VoltMin: 1, VoltMax: 1, DynMaxPerSocket: -1}, // neg power
	}
	for i, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted invalid CPU %+v", i, c)
		}
	}
}

func TestSingleLevelCPU(t *testing.T) {
	c := CPU{Sockets: 1, CoresPerSocket: 1, Freqs: []units.Hertz{units.GHz(2)},
		VoltMin: 1, VoltMax: 1, DynMaxPerSocket: 50}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := c.DynMax(0); got != 50 {
		t.Errorf("single-level DynMax = %v", got)
	}
	if c.SlowdownFactor(0) != 1 {
		t.Error("single-level slowdown != 1")
	}
}

func TestMemoryModel(t *testing.T) {
	m := DDR3x12()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.TotalBytes != 48<<30 {
		t.Errorf("capacity = %d, want 48 GiB (12 × 4 GB)", m.TotalBytes)
	}
	if err := (Memory{}).Validate(); err == nil {
		t.Error("zero memory accepted")
	}
	if err := (Memory{TotalBytes: 1, DynMax: -1}).Validate(); err == nil {
		t.Error("negative DynMax accepted")
	}
}

func TestNICModel(t *testing.T) {
	n := TianheNIC()
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	if n.Bandwidth != units.GB(8) {
		t.Errorf("bandwidth = %v", n.Bandwidth)
	}
	if err := (NIC{}).Validate(); err == nil {
		t.Error("zero NIC accepted")
	}
	if err := (NIC{Bandwidth: 1, DynMax: -5}).Validate(); err == nil {
		t.Error("negative NIC power accepted")
	}
}

func TestIdleCurve(t *testing.T) {
	ic := TianheIdle()
	if err := ic.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := ic.At(0, 10); got != ic.Min {
		t.Errorf("At(0) = %v, want Min", got)
	}
	if got := ic.At(9, 10); got != ic.Max {
		t.Errorf("At(top) = %v, want Max", got)
	}
	mid := ic.At(5, 10)
	if mid <= ic.Min || mid >= ic.Max {
		t.Errorf("At(5) = %v, want strictly between", mid)
	}
	// Clamping and degenerate level counts.
	if ic.At(-1, 10) != ic.Min || ic.At(99, 10) != ic.Max {
		t.Error("At does not clamp out-of-range levels")
	}
	if ic.At(0, 1) != ic.Max {
		t.Error("single-level curve should give Max")
	}
	if err := (IdleCurve{Min: 10, Max: 5}).Validate(); err == nil {
		t.Error("inverted idle curve accepted")
	}
}

// Property: DynMax is monotone non-decreasing in level for arbitrary valid
// voltage ranges.
func TestDynMaxMonotoneProperty(t *testing.T) {
	f := func(vMinRaw, vSpanRaw uint8) bool {
		c := X5670()
		c.VoltMin = 0.5 + float64(vMinRaw)/512        // [0.5, 1.0)
		c.VoltMax = c.VoltMin + float64(vSpanRaw)/256 // ≥ VoltMin
		for l := 1; l < c.Levels(); l++ {
			if c.DynMax(l) < c.DynMax(l-1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
