// Package device models the power-relevant devices of a compute node: the
// DVFS-capable CPU sockets, the memory subsystem and the communication
// chipset (NIC). These models supply the per-level maxima that the paper's
// power profile model (formula 1) consumes — P_idle(l), P_cpu(l), P_mem(l),
// P_NIC(l) — and the "true" power draw the simulated facility meter
// integrates.
//
// The default parameters approximate the Tianhe-1A node of the paper's
// testbed: two Intel Xeon X5670 sockets with ten DVFS operating points from
// 1.60 GHz to 2.93 GHz.
package device

import (
	"fmt"

	"repro/internal/units"
)

// CPU describes the DVFS-capable processor complex of a node. All sockets
// switch frequency together ("regulating the working frequency of its
// processor cores synchronously", §V.A).
type CPU struct {
	Sockets        int           // number of processor packages
	CoresPerSocket int           // cores per package
	Freqs          []units.Hertz // ascending DVFS frequency table; index = level
	// VoltMin/VoltMax describe the linear voltage/frequency relation used
	// by the f·V² dynamic-power curve.
	VoltMin, VoltMax float64
	// DynMaxPerSocket is the per-socket dynamic power (max minus idle) at
	// the top operating point; lower levels scale it by f·V².
	DynMaxPerSocket units.Watts
}

// X5670 returns the CPU model of the paper's testbed node: 2 sockets,
// 6 cores each, 10 DVFS operating points from 1.60 to 2.93 GHz.
func X5670() CPU {
	freqs := make([]units.Hertz, 0, 10)
	// Evenly spaced operating points between the documented endpoints;
	// the X5670's real table uses 133 MHz multiplier steps, which these
	// approximate to within one step.
	lo, hi := 1.60, 2.93
	for i := 0; i < 10; i++ {
		freqs = append(freqs, units.GHz(lo+(hi-lo)*float64(i)/9))
	}
	return CPU{
		Sockets:         2,
		CoresPerSocket:  6,
		Freqs:           freqs,
		VoltMin:         0.85,
		VoltMax:         1.20,
		DynMaxPerSocket: 75, // watts of dynamic headroom per socket at 2.93 GHz
	}
}

// Levels returns the number of discrete power levels (DVFS operating
// points). Levels are numbered 0 (lowest frequency/power) through
// Levels()-1 (highest), matching the paper's convention that degrading a
// node decreases its level by one.
func (c CPU) Levels() int { return len(c.Freqs) }

// Cores returns the total core count of the node.
func (c CPU) Cores() int { return c.Sockets * c.CoresPerSocket }

// Freq returns the operating frequency at level l.
func (c CPU) Freq(l int) units.Hertz { return c.Freqs[c.clamp(l)] }

// MaxFreq returns the frequency of the top level.
func (c CPU) MaxFreq() units.Hertz { return c.Freqs[len(c.Freqs)-1] }

// voltage returns the modelled core voltage at level l, interpolating
// linearly between VoltMin (lowest frequency) and VoltMax (highest).
func (c CPU) voltage(l int) float64 {
	if len(c.Freqs) == 1 {
		return c.VoltMax
	}
	t := float64(c.clamp(l)) / float64(len(c.Freqs)-1)
	return c.VoltMin + (c.VoltMax-c.VoltMin)*t
}

// DynMax returns the maximal dynamic power of the whole CPU complex (all
// sockets) at level l — the paper's Σ_x P_x(l). Dynamic CMOS power scales
// as f·V²; the curve is normalised so the top level yields
// Sockets·DynMaxPerSocket.
func (c CPU) DynMax(l int) units.Watts {
	top := len(c.Freqs) - 1
	num := float64(c.Freq(l)) * c.voltage(l) * c.voltage(l)
	den := float64(c.Freq(top)) * c.voltage(top) * c.voltage(top)
	return units.Watts(float64(c.DynMaxPerSocket) * float64(c.Sockets) * num / den)
}

// SlowdownFactor returns the frequency ratio f(l)/f(max) ∈ (0,1]; workload
// models combine it with their frequency sensitivity to compute progress.
func (c CPU) SlowdownFactor(l int) float64 {
	return float64(c.Freq(l)) / float64(c.MaxFreq())
}

func (c CPU) clamp(l int) int {
	if l < 0 {
		return 0
	}
	if l >= len(c.Freqs) {
		return len(c.Freqs) - 1
	}
	return l
}

// Validate checks the CPU model for internal consistency.
func (c CPU) Validate() error {
	if c.Sockets <= 0 || c.CoresPerSocket <= 0 {
		return fmt.Errorf("device: cpu needs positive sockets and cores, got %d×%d", c.Sockets, c.CoresPerSocket)
	}
	if len(c.Freqs) == 0 {
		return fmt.Errorf("device: cpu needs at least one DVFS level")
	}
	for i := 1; i < len(c.Freqs); i++ {
		if c.Freqs[i] <= c.Freqs[i-1] {
			return fmt.Errorf("device: DVFS table must be strictly ascending (level %d)", i)
		}
	}
	if c.Freqs[0] <= 0 {
		return fmt.Errorf("device: non-positive base frequency")
	}
	if c.DynMaxPerSocket < 0 {
		return fmt.Errorf("device: negative DynMaxPerSocket")
	}
	if c.VoltMin <= 0 || c.VoltMax < c.VoltMin {
		return fmt.Errorf("device: invalid voltage range [%v,%v]", c.VoltMin, c.VoltMax)
	}
	return nil
}

// Memory describes a node's memory subsystem.
type Memory struct {
	TotalBytes uint64      // installed capacity
	DynMax     units.Watts // maximal dynamic power of all DIMMs (P_mem)
}

// DDR3x12 returns the testbed memory: 12 × 4 GB DDR3 DIMMs (6 per socket).
func DDR3x12() Memory {
	return Memory{TotalBytes: 12 * 4 << 30, DynMax: 60}
}

// Validate checks the memory model.
func (m Memory) Validate() error {
	if m.TotalBytes == 0 {
		return fmt.Errorf("device: memory capacity is zero")
	}
	if m.DynMax < 0 {
		return fmt.Errorf("device: negative memory DynMax")
	}
	return nil
}

// NIC describes the communication chipset.
type NIC struct {
	Bandwidth units.Bytes // bytes/second the link can move (both directions)
	DynMax    units.Watts // maximal dynamic power (P_NIC)
}

// TianheNIC returns the testbed's high-speed communication chipset model:
// 8 GB/s effective per-node bandwidth.
func TianheNIC() NIC {
	return NIC{Bandwidth: units.GB(8), DynMax: 20}
}

// Validate checks the NIC model.
func (n NIC) Validate() error {
	if n.Bandwidth <= 0 {
		return fmt.Errorf("device: NIC bandwidth must be positive")
	}
	if n.DynMax < 0 {
		return fmt.Errorf("device: negative NIC DynMax")
	}
	return nil
}

// IdleCurve gives a node's static power P_idle(l) as a function of level.
// Static power falls with level because lower voltage cuts leakage and the
// uncore slows down.
type IdleCurve struct {
	Min units.Watts // static power at level 0
	Max units.Watts // static power at the top level
}

// TianheIdle returns the testbed node's static power curve.
func TianheIdle() IdleCurve { return IdleCurve{Min: 105, Max: 140} }

// At interpolates the static power at level l of levels total levels.
func (ic IdleCurve) At(l, levels int) units.Watts {
	if levels <= 1 {
		return ic.Max
	}
	if l < 0 {
		l = 0
	}
	if l >= levels {
		l = levels - 1
	}
	t := float64(l) / float64(levels-1)
	return ic.Min + units.Watts(t*float64(ic.Max-ic.Min))
}

// Validate checks the idle curve.
func (ic IdleCurve) Validate() error {
	if ic.Min < 0 || ic.Max < ic.Min {
		return fmt.Errorf("device: invalid idle curve [%v,%v]", ic.Min, ic.Max)
	}
	return nil
}
