// Package obs is the observability spine shared by every layer of the
// capping stack: a typed instrument registry (counters, gauges, streaming
// weighted histograms) plus a staged per-cycle span recorder.
//
// Before this package, telemetry lived in four disjoint hand-plumbed
// systems — manager.Stats, the ad-hoc fields of wire.StatusReply,
// core.Result and agentd-local counters — each copied field by field and
// already drifting. Now every producer registers an instrument once, the
// hot paths touch only atomics, and consumers (StatusReply, /metrics,
// /debug/cycles, powctl -watch) read the registry as the single source of
// truth.
//
// Naming follows the wire protocol's snake_case JSON tags so that the
// StatusReply mapping in managerd can be driven by reflection: the obs
// instrument named "command_acks" is the value serialised under the JSON
// key "command_acks".
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Kind distinguishes the instrument types held by a Registry.
type Kind int

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String names the kind in Prometheus TYPE terms.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "summary"
	}
	return "untyped"
}

// Counter is a monotonically increasing integer instrument. Hot paths call
// Add/Inc; both are a single atomic op.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be non-negative for the counter contract; Add does
// not enforce it so recovery paths can re-seed journalled totals).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current total.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float64 instrument that can move in both directions. The
// value is stored as IEEE bits in a uint64 so reads and writes are
// lock-free. Integers up to 2^53 round-trip exactly, which covers every
// integer telemetry value in this codebase.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// SetInt stores an integer value.
func (g *Gauge) SetInt(v int64) { g.Set(float64(v)) }

// Add increments the gauge by d (CAS loop; safe for concurrent adders).
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Max raises the gauge to v if v exceeds the current value.
func (g *Gauge) Max(v float64) {
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Int returns the value truncated to int64.
func (g *Gauge) Int() int64 { return int64(g.Value()) }

// Registry is a get-or-create store of named instruments. Lookup is
// read-locked; instrument mutation after lookup is lock-free (counters,
// gauges) or per-instrument locked (histograms). Producers should cache
// the instrument pointer at construction time and never look up names on
// the hot path.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Counter returns the counter with the given name, creating it on first
// use. Panics if the name is already registered as a different kind —
// that is a programming error, not a runtime condition.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c != nil {
		return c
	}
	r.checkFree(name, KindCounter)
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the gauge with the given name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g != nil {
		return g
	}
	r.checkFree(name, KindGauge)
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the histogram with the given name, creating it on
// first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h := r.histograms[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.histograms[name]; h != nil {
		return h
	}
	r.checkFree(name, KindHistogram)
	h = &Histogram{}
	r.histograms[name] = h
	return h
}

// checkFree panics if name is held by another kind. Callers hold r.mu.
func (r *Registry) checkFree(name string, want Kind) {
	if _, ok := r.counters[name]; ok && want != KindCounter {
		panic(fmt.Sprintf("obs: %q already registered as counter", name))
	}
	if _, ok := r.gauges[name]; ok && want != KindGauge {
		panic(fmt.Sprintf("obs: %q already registered as gauge", name))
	}
	if _, ok := r.histograms[name]; ok && want != KindHistogram {
		panic(fmt.Sprintf("obs: %q already registered as histogram", name))
	}
}

// Value reads any instrument by name: counter total, gauge value, or
// histogram observation sum. The second return is false when the name is
// not registered.
func (r *Registry) Value(name string) (float64, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if c, ok := r.counters[name]; ok {
		return float64(c.Value()), true
	}
	if g, ok := r.gauges[name]; ok {
		return g.Value(), true
	}
	if h, ok := r.histograms[name]; ok {
		return h.Sum(), true
	}
	return 0, false
}

// Has reports whether name is registered as any kind.
func (r *Registry) Has(name string) bool {
	_, ok := r.Value(name)
	return ok
}

// Names returns every registered instrument name, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.histograms))
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// kindOf returns the kind of a registered name. Callers hold r.mu.
func (r *Registry) kindOf(name string) (Kind, bool) {
	if _, ok := r.counters[name]; ok {
		return KindCounter, true
	}
	if _, ok := r.gauges[name]; ok {
		return KindGauge, true
	}
	if _, ok := r.histograms[name]; ok {
		return KindHistogram, true
	}
	return 0, false
}
