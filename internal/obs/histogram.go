package obs

import (
	"math"
	"sync"
	"time"
)

// Histogram is a streaming weighted histogram: observations land in
// logarithmic buckets (four per power of two, ~19% relative width) so
// quantiles are available at any time without retaining samples. It
// generalises metrics.Histogram's time-weighted quantiles for streaming
// use: passing the hold duration in seconds as the weight reproduces the
// "fraction of time at or below this level" semantics the provisioning
// analysis reads, while weight 1 gives plain per-event quantiles for
// latency instruments.
type Histogram struct {
	mu      sync.Mutex
	count   int64
	weight  float64
	sum     float64
	min     float64
	max     float64
	zero    float64         // weight observed at values <= 0
	buckets map[int]float64 // bucket index -> weight
}

// histGamma is the per-bucket growth factor: 2^(1/4). Quantile estimates
// are exact to within half a bucket (~9.6% relative error), which is
// ample for stage latencies spanning nanoseconds to seconds.
const histBucketsPerOctave = 4

func histIndex(v float64) int {
	return int(math.Floor(math.Log2(v) * histBucketsPerOctave))
}

func histMidpoint(idx int) float64 {
	return math.Exp2((float64(idx) + 0.5) / histBucketsPerOctave)
}

// Observe records v with weight 1.
func (h *Histogram) Observe(v float64) { h.ObserveWeighted(v, 1) }

// ObserveDuration records a duration in microseconds with weight 1.
func (h *Histogram) ObserveDuration(d time.Duration) {
	h.ObserveWeighted(float64(d.Microseconds()), 1)
}

// ObserveWeighted records v carrying weight w (w <= 0 is ignored).
func (h *Histogram) ObserveWeighted(v, w float64) {
	if w <= 0 || math.IsNaN(v) {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.weight += w
	h.sum += v * w
	if v <= 0 {
		h.zero += w
		return
	}
	if h.buckets == nil {
		h.buckets = make(map[int]float64)
	}
	h.buckets[histIndex(v)] += w
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the weighted sum of observations.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Min returns the smallest observed value (0 when empty).
func (h *Histogram) Min() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.min
}

// Max returns the largest observed value (0 when empty).
func (h *Histogram) Max() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Quantile returns the weighted q-quantile (q clamped to [0,1]): the
// value below which a q fraction of the total weight lies. Bucketed
// estimates are clamped to the observed [min, max]. NaN when empty.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.quantileLocked(q)
}

func (h *Histogram) quantileLocked(q float64) float64 {
	if h.weight <= 0 {
		return math.NaN()
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := q * h.weight
	acc := h.zero
	if acc >= target && h.zero > 0 {
		// Target falls inside the non-positive mass.
		if h.min < 0 {
			return h.min
		}
		return 0
	}
	idxs := make([]int, 0, len(h.buckets))
	for i := range h.buckets {
		idxs = append(idxs, i)
	}
	// Insertion sort: bucket counts are small (a few dozen).
	for i := 1; i < len(idxs); i++ {
		for j := i; j > 0 && idxs[j] < idxs[j-1]; j-- {
			idxs[j], idxs[j-1] = idxs[j-1], idxs[j]
		}
	}
	est := h.max
	for _, i := range idxs {
		acc += h.buckets[i]
		if acc >= target {
			est = histMidpoint(i)
			break
		}
	}
	if est < h.min {
		est = h.min
	}
	if est > h.max {
		est = h.max
	}
	return est
}

// HistogramSnapshot is a point-in-time summary of a histogram.
type HistogramSnapshot struct {
	Count         int64
	Weight, Sum   float64
	Min, Max      float64
	P50, P95, P99 float64
}

// Snapshot returns a consistent summary under one lock acquisition.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	return HistogramSnapshot{
		Count:  h.count,
		Weight: h.weight,
		Sum:    h.sum,
		Min:    h.min,
		Max:    h.max,
		P50:    h.quantileLocked(0.50),
		P95:    h.quantileLocked(0.95),
		P99:    h.quantileLocked(0.99),
	}
}
