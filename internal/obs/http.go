package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
)

// WritePrometheus renders every instrument in Prometheus text exposition
// format, sorted by name: counters and gauges as single samples,
// histograms as summaries (quantile series plus _sum and _count).
func (r *Registry) WritePrometheus(w io.Writer) {
	if r == nil {
		return
	}
	for _, name := range r.Names() {
		r.mu.RLock()
		kind, _ := r.kindOf(name)
		r.mu.RUnlock()
		fmt.Fprintf(w, "# TYPE %s %s\n", name, kind)
		switch kind {
		case KindCounter:
			fmt.Fprintf(w, "%s %d\n", name, r.Counter(name).Value())
		case KindGauge:
			fmt.Fprintf(w, "%s %s\n", name, promFloat(r.Gauge(name).Value()))
		case KindHistogram:
			s := r.Histogram(name).Snapshot()
			for _, q := range []struct {
				q string
				v float64
			}{{"0.5", s.P50}, {"0.95", s.P95}, {"0.99", s.P99}} {
				fmt.Fprintf(w, "%s{quantile=%q} %s\n", name, q.q, promFloat(q.v))
			}
			fmt.Fprintf(w, "%s_sum %s\n", name, promFloat(s.Sum))
			fmt.Fprintf(w, "%s_count %d\n", name, s.Count)
		}
	}
}

// promFloat formats a float the way Prometheus expects (NaN spelled out,
// integers without exponent noise).
func promFloat(v float64) string {
	if math.IsNaN(v) {
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// MetricsHandler serves the registry in Prometheus text format. refresh,
// if non-nil, runs before each render so gauges computed from other state
// (connected agents, node health sweeps) are current at scrape time.
func MetricsHandler(r *Registry, refresh func()) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if refresh != nil {
			refresh()
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}

// CyclesReply is the JSON body served by CyclesHandler.
type CyclesReply struct {
	// Cycles is the lifetime number of cycles begun (the ring retains
	// only the tail of these).
	Cycles int64 `json:"cycles"`
	// Spans holds the returned timelines, oldest first.
	Spans []CycleSpan `json:"spans"`
}

// defaultCyclesN bounds an unqualified /debug/cycles response.
const defaultCyclesN = 32

// CyclesHandler serves the last-N cycle timelines as JSON. The optional
// ?n= query parameter selects how many (default 32, capped at the ring
// size); invalid values fall back to the default rather than erroring so
// the debug endpoint never turns a typo into a dead scrape.
func CyclesHandler(rec *CycleRecorder) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		n := defaultCyclesN
		if raw := req.URL.Query().Get("n"); raw != "" {
			if v, err := strconv.Atoi(raw); err == nil && v > 0 {
				n = v
			}
		}
		reply := CyclesReply{Cycles: rec.Cycles(), Spans: rec.Spans(n)}
		if reply.Spans == nil {
			reply.Spans = []CycleSpan{}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(reply)
	})
}

// NewMux builds the standard observability mux: /metrics and
// /debug/cycles. Either argument may be nil; the corresponding endpoint
// then serves empty output rather than 404 so probes stay simple.
func NewMux(r *Registry, rec *CycleRecorder, refresh func()) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", MetricsHandler(r, refresh))
	mux.Handle("/debug/cycles", CyclesHandler(rec))
	return mux
}
