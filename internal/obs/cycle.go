package obs

import (
	"sync"
	"time"
)

// Stage names one phase of the shared control law's cycle. Every backend
// — the in-process simulator, the networked managerd, and core driving
// either — tags the same five stages so their timelines are comparable:
//
//	sense    — collect per-node readings and build the policy snapshot
//	classify — threshold comparison assigning green/yellow/red
//	select   — policy target selection (yellow only)
//	actuate  — issuing node level commands
//	settle   — waiting for command fan-out / acknowledgements
type Stage int

const (
	StageSense Stage = iota
	StageClassify
	StageSelect
	StageActuate
	StageSettle
	numStages
)

// String returns the stage's canonical lowercase name.
func (s Stage) String() string {
	switch s {
	case StageSense:
		return "sense"
	case StageClassify:
		return "classify"
	case StageSelect:
		return "select"
	case StageActuate:
		return "actuate"
	case StageSettle:
		return "settle"
	}
	return "unknown"
}

// Stages lists all stages in execution order.
func Stages() []Stage {
	out := make([]Stage, numStages)
	for i := range out {
		out[i] = Stage(i)
	}
	return out
}

// StageSpan is one timed stage within a cycle.
type StageSpan struct {
	Stage   string `json:"stage"`
	Micros  int64  `json:"micros"`
	Outcome string `json:"outcome,omitempty"`
}

// CycleSpan is the staged timeline of one control cycle. Durations are
// host time in microseconds; Cycle numbers are 1-based in Begin order.
// TotalMicros covers Begin to End on the critical path; asynchronous
// stages (settle) may land after End and are not included in it.
type CycleSpan struct {
	Cycle       int64       `json:"cycle"`
	TotalMicros int64       `json:"total_micros"`
	Stages      []StageSpan `json:"stages"`
}

// span is the mutable in-ring representation.
type span struct {
	CycleSpan
	t0 time.Time
}

// CycleRecorder keeps the staged timelines of the last N cycles in a
// fixed ring. All methods are safe on a nil receiver (recording becomes a
// no-op) and safe for concurrent use: the control loop appends stages
// while HTTP readers snapshot, and the asynchronous fan-out completion
// records its settle stage into a handle the cycle already closed.
//
// When a Registry is attached, every stage duration also feeds a
// "cycle_stage_<stage>_micros" histogram and each End feeds
// "cycle_total_micros", so quantiles survive the ring's horizon.
type CycleRecorder struct {
	mu   sync.Mutex
	reg  *Registry
	capn int
	n    int64
	ring []*span
	cur  *span
}

// DefaultCycleHistory is the ring capacity used when none is given.
const DefaultCycleHistory = 512

// NewCycleRecorder creates a recorder holding the last capacity cycles
// (DefaultCycleHistory when capacity <= 0). reg may be nil.
func NewCycleRecorder(capacity int, reg *Registry) *CycleRecorder {
	if capacity <= 0 {
		capacity = DefaultCycleHistory
	}
	return &CycleRecorder{reg: reg, capn: capacity, ring: make([]*span, 0, capacity)}
}

// CycleHandle addresses one cycle's span so asynchronous completions can
// record stages after the cycle closed. A nil handle is a no-op.
type CycleHandle struct {
	r  *CycleRecorder
	sp *span
}

// Begin opens the span for a new cycle and makes it current.
func (r *CycleRecorder) Begin() *CycleHandle {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.n++
	sp := &span{CycleSpan: CycleSpan{Cycle: r.n}, t0: time.Now()}
	if len(r.ring) < r.capn {
		r.ring = append(r.ring, sp)
	} else {
		r.ring[int((r.n-1)%int64(r.capn))] = sp
	}
	r.cur = sp
	return &CycleHandle{r: r, sp: sp}
}

// Stage records a stage on the current (most recently begun) cycle. Used
// by code that runs between Begin and End but has no handle, such as the
// manager recording classify/select/actuate inside Cycle.
func (r *CycleRecorder) Stage(st Stage, d time.Duration, outcome string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	sp := r.cur
	r.mu.Unlock()
	if sp == nil {
		return
	}
	(&CycleHandle{r: r, sp: sp}).Stage(st, d, outcome)
}

// Stage records one timed stage on the handle's cycle.
func (h *CycleHandle) Stage(st Stage, d time.Duration, outcome string) {
	if h == nil || h.r == nil || h.sp == nil {
		return
	}
	us := d.Microseconds()
	h.r.mu.Lock()
	h.sp.Stages = append(h.sp.Stages, StageSpan{Stage: st.String(), Micros: us, Outcome: outcome})
	reg := h.r.reg
	h.r.mu.Unlock()
	if reg != nil {
		reg.Histogram("cycle_stage_" + st.String() + "_micros").Observe(float64(us))
	}
}

// End stamps the cycle's critical-path total. Safe to call once per
// handle; later Stage calls (settle) still land on the span.
func (h *CycleHandle) End() {
	if h == nil || h.r == nil || h.sp == nil {
		return
	}
	h.r.mu.Lock()
	us := time.Since(h.sp.t0).Microseconds()
	h.sp.TotalMicros = us
	reg := h.r.reg
	h.r.mu.Unlock()
	if reg != nil {
		reg.Histogram("cycle_total_micros").Observe(float64(us))
	}
}

// Cycles returns how many cycles have begun.
func (r *CycleRecorder) Cycles() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Spans returns deep copies of the last n retained cycles in
// chronological order (all retained cycles when n <= 0).
func (r *CycleRecorder) Spans(n int) []CycleSpan {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var ordered []*span
	if len(r.ring) < r.capn {
		ordered = r.ring
	} else {
		start := int(r.n % int64(r.capn))
		ordered = append(append([]*span{}, r.ring[start:]...), r.ring[:start]...)
	}
	if n > 0 && n < len(ordered) {
		ordered = ordered[len(ordered)-n:]
	}
	out := make([]CycleSpan, len(ordered))
	for i, sp := range ordered {
		out[i] = sp.CycleSpan
		out[i].Stages = append([]StageSpan(nil), sp.Stages...)
	}
	return out
}

// Last returns the most recent retained cycle, if any.
func (r *CycleRecorder) Last() (CycleSpan, bool) {
	spans := r.Spans(1)
	if len(spans) == 0 {
		return CycleSpan{}, false
	}
	return spans[0], true
}
