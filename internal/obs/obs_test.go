package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("cycles")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("cycles") != c {
		t.Fatal("Counter not idempotent")
	}

	g := r.Gauge("last_power_w")
	g.Set(412.5)
	if got := g.Value(); got != 412.5 {
		t.Fatalf("gauge = %v, want 412.5", got)
	}
	g.Add(0.5)
	if got := g.Value(); got != 413 {
		t.Fatalf("gauge after Add = %v", got)
	}
	g.Max(100)
	if got := g.Value(); got != 413 {
		t.Fatalf("Max lowered gauge to %v", got)
	}
	g.Max(1000)
	if got := g.Value(); got != 1000 {
		t.Fatalf("Max = %v, want 1000", got)
	}
	g.SetInt(7)
	if got := g.Int(); got != 7 {
		t.Fatalf("Int = %d, want 7", got)
	}

	if v, ok := r.Value("cycles"); !ok || v != 5 {
		t.Fatalf("Value(cycles) = %v,%v", v, ok)
	}
	if _, ok := r.Value("nope"); ok {
		t.Fatal("Value(nope) found")
	}
	names := r.Names()
	if len(names) != 2 || names[0] != "cycles" || names[1] != "last_power_w" {
		t.Fatalf("Names = %v", names)
	}
}

func TestRegistryKindCollision(t *testing.T) {
	r := NewRegistry()
	r.Counter("x")
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on kind collision")
		}
	}()
	r.Gauge("x")
}

func TestGaugeConcurrentAdd(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("busy_micros")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				g.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := g.Value(); got != 8000 {
		t.Fatalf("concurrent Add lost updates: %v, want 8000", got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Fatal("empty histogram quantile not NaN")
	}
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i))
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	// Log-bucketed estimate must sit within one bucket (~19%) of truth.
	for _, tc := range []struct{ q, want float64 }{
		{0.5, 500}, {0.95, 950}, {0.99, 990}, {0, 1}, {1, 1000},
	} {
		got := h.Quantile(tc.q)
		if got < tc.want*0.81 || got > tc.want*1.19 {
			t.Errorf("Quantile(%v) = %v, want within 19%% of %v", tc.q, got, tc.want)
		}
	}
	if h.Min() != 1 || h.Max() != 1000 {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
	s := h.Snapshot()
	if s.Count != 1000 || s.Sum != 500500 {
		t.Fatalf("snapshot = %+v", s)
	}
}

func TestHistogramZeroAndNegative(t *testing.T) {
	var h Histogram
	h.Observe(0)
	h.Observe(-5)
	h.Observe(10)
	if got := h.Quantile(0.25); got != -5 {
		t.Fatalf("quantile in non-positive mass = %v, want -5 (min)", got)
	}
	if got := h.Quantile(1); got != 10 {
		t.Fatalf("q1 = %v, want 10", got)
	}
	h.ObserveWeighted(3, -1) // ignored
	h.ObserveWeighted(math.NaN(), 1)
	if h.Count() != 3 {
		t.Fatalf("count = %d, want 3", h.Count())
	}
}

// TestHistogramTimeWeighted checks the streaming histogram reproduces the
// time-weighted semantics of metrics.Histogram: weight = seconds held.
// System at 100 W for 90 s and 1000 W for 10 s: p50 is 100 W, p99 lands
// in the 1000 W mass.
func TestHistogramTimeWeighted(t *testing.T) {
	var h Histogram
	h.ObserveWeighted(100, 90)
	h.ObserveWeighted(1000, 10)
	if got := h.Quantile(0.5); got < 81 || got > 119 {
		t.Fatalf("p50 = %v, want ~100", got)
	}
	if got := h.Quantile(0.99); got < 810 || got > 1190 {
		t.Fatalf("p99 = %v, want ~1000", got)
	}
}

func TestHistogramObserveDuration(t *testing.T) {
	var h Histogram
	h.ObserveDuration(1500 * time.Microsecond)
	if got := h.Sum(); got != 1500 {
		t.Fatalf("duration sum = %v µs, want 1500", got)
	}
}

func TestCycleRecorderNilSafe(t *testing.T) {
	var r *CycleRecorder
	h := r.Begin()
	h.Stage(StageSense, time.Millisecond, "x")
	h.End()
	r.Stage(StageSelect, 0, "")
	if r.Cycles() != 0 || r.Spans(0) != nil {
		t.Fatal("nil recorder leaked state")
	}
	var nh *CycleHandle
	nh.Stage(StageSense, 0, "")
	nh.End()
}

func TestCycleRecorderRingAndStages(t *testing.T) {
	reg := NewRegistry()
	r := NewCycleRecorder(4, reg)
	for i := 0; i < 6; i++ {
		h := r.Begin()
		h.Stage(StageSense, 100*time.Microsecond, "readings=3")
		r.Stage(StageClassify, 10*time.Microsecond, "green")
		h.End()
		// Asynchronous settle after End must still land on this cycle.
		h.Stage(StageSettle, 50*time.Microsecond, "")
	}
	if got := r.Cycles(); got != 6 {
		t.Fatalf("cycles = %d", got)
	}
	spans := r.Spans(0)
	if len(spans) != 4 {
		t.Fatalf("ring retained %d spans, want 4", len(spans))
	}
	if spans[0].Cycle != 3 || spans[3].Cycle != 6 {
		t.Fatalf("chronology wrong: first=%d last=%d", spans[0].Cycle, spans[3].Cycle)
	}
	for _, sp := range spans {
		if len(sp.Stages) != 3 {
			t.Fatalf("cycle %d has %d stages: %+v", sp.Cycle, len(sp.Stages), sp.Stages)
		}
		for i, want := range []string{"sense", "classify", "settle"} {
			if sp.Stages[i].Stage != want {
				t.Errorf("cycle %d stage %d = %s, want %s", sp.Cycle, i, sp.Stages[i].Stage, want)
			}
		}
		if sp.Stages[0].Outcome != "readings=3" {
			t.Errorf("outcome = %q", sp.Stages[0].Outcome)
		}
	}
	if last, ok := r.Last(); !ok || last.Cycle != 6 {
		t.Fatalf("Last = %+v, %v", last, ok)
	}
	if n := r.Spans(2); len(n) != 2 || n[1].Cycle != 6 {
		t.Fatalf("Spans(2) = %+v", n)
	}
	// Attached registry collected per-stage histograms.
	if c := reg.Histogram("cycle_stage_sense_micros").Count(); c != 6 {
		t.Fatalf("sense histogram count = %d", c)
	}
	if c := reg.Histogram("cycle_total_micros").Count(); c != 6 {
		t.Fatalf("total histogram count = %d", c)
	}
}

func TestCycleRecorderSnapshotIsolation(t *testing.T) {
	r := NewCycleRecorder(8, nil)
	h := r.Begin()
	h.Stage(StageSense, time.Microsecond, "")
	spans := r.Spans(0)
	h.Stage(StageActuate, time.Microsecond, "")
	if len(spans[0].Stages) != 1 {
		t.Fatal("snapshot not isolated from later writes")
	}
}

func TestStageStrings(t *testing.T) {
	want := []string{"sense", "classify", "select", "actuate", "settle"}
	st := Stages()
	if len(st) != len(want) {
		t.Fatalf("Stages() = %v", st)
	}
	for i, s := range st {
		if s.String() != want[i] {
			t.Errorf("stage %d = %s, want %s", i, s, want[i])
		}
	}
	if Stage(99).String() != "unknown" {
		t.Error("out-of-range stage string")
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("command_acks").Add(3)
	r.Gauge("last_power_w").Set(412.5)
	r.Histogram("cycle_total_micros").Observe(100)
	var b strings.Builder
	r.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE command_acks counter",
		"command_acks 3",
		"# TYPE last_power_w gauge",
		"last_power_w 412.5",
		"# TYPE cycle_total_micros summary",
		`cycle_total_micros{quantile="0.5"}`,
		"cycle_total_micros_sum 100",
		"cycle_total_micros_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// Sorted by name: command_acks before cycle_total before last_power.
	if strings.Index(out, "command_acks") > strings.Index(out, "last_power_w") {
		t.Error("output not sorted")
	}
	if promFloat(math.NaN()) != "NaN" {
		t.Error("NaN formatting")
	}
}
