package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"
)

func testMux() (*http.ServeMux, *Registry, *CycleRecorder) {
	r := NewRegistry()
	rec := NewCycleRecorder(16, r)
	return NewMux(r, rec, func() { r.Gauge("agents").SetInt(2) }), r, rec
}

func TestMetricsEndpoint(t *testing.T) {
	mux, r, _ := testMux()
	r.Counter("cycles").Add(7)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	text := string(body)
	if !strings.Contains(text, "cycles 7") {
		t.Errorf("missing counter:\n%s", text)
	}
	// The refresh hook ran before rendering.
	if !strings.Contains(text, "agents 2") {
		t.Errorf("refresh hook did not run:\n%s", text)
	}
}

func TestCyclesEndpoint(t *testing.T) {
	mux, _, rec := testMux()
	for i := 0; i < 5; i++ {
		h := rec.Begin()
		h.Stage(StageSense, 10*time.Microsecond, "readings=1")
		h.End()
	}
	srv := httptest.NewServer(mux)
	defer srv.Close()

	get := func(rawURL string) CyclesReply {
		t.Helper()
		resp, err := http.Get(rawURL)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var reply CyclesReply
		if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
			t.Fatal(err)
		}
		return reply
	}

	reply := get(srv.URL + "/debug/cycles")
	if reply.Cycles != 5 || len(reply.Spans) != 5 {
		t.Fatalf("reply = %+v", reply)
	}
	if reply.Spans[0].Stages[0].Stage != "sense" {
		t.Fatalf("span stages = %+v", reply.Spans[0].Stages)
	}
	if got := get(srv.URL + "/debug/cycles?n=2"); len(got.Spans) != 2 || got.Spans[1].Cycle != 5 {
		t.Fatalf("?n=2 reply = %+v", got)
	}
	// Invalid n falls back to the default rather than erroring.
	if got := get(srv.URL + "/debug/cycles?n=banana"); len(got.Spans) != 5 {
		t.Fatalf("?n=banana reply = %+v", got)
	}
	if got := get(srv.URL + "/debug/cycles?n=-3"); len(got.Spans) != 5 {
		t.Fatalf("?n=-3 reply = %+v", got)
	}
}

func TestCyclesEndpointEmpty(t *testing.T) {
	mux, _, _ := testMux()
	srv := httptest.NewServer(mux)
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/cycles")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), `"spans": []`) {
		t.Fatalf("empty reply should serialise spans as [], got:\n%s", body)
	}
}

// TestHandlersUnderChurn hammers both endpoints while cycles are being
// recorded and instruments bumped, under -race: the read path must never
// block or torn-read the control loop.
func TestHandlersUnderChurn(t *testing.T) {
	mux, r, rec := testMux()
	srv := httptest.NewServer(mux)
	defer srv.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			h := rec.Begin()
			h.Stage(StageSense, time.Microsecond, "readings=1")
			h.Stage(StageClassify, time.Microsecond, "green")
			h.End()
			go h.Stage(StageSettle, time.Microsecond, "cmds=0")
			r.Counter("cycles").Inc()
			r.Gauge("last_power_w").Set(float64(i))
		}
	}()
	for i := 0; i < 50; i++ {
		for _, path := range []string{"/metrics", "/debug/cycles", "/debug/cycles?n=3"} {
			resp, err := http.Get(srv.URL + path)
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("%s -> %d", path, resp.StatusCode)
			}
		}
	}
	close(stop)
	wg.Wait()
}

// FuzzObsHandlers throws arbitrary request targets at the observability
// mux while a background goroutine churns the recorder, checking the
// handlers never panic and always answer.
func FuzzObsHandlers(f *testing.F) {
	f.Add("/metrics")
	f.Add("/debug/cycles")
	f.Add("/debug/cycles?n=10")
	f.Add("/debug/cycles?n=-1")
	f.Add("/debug/cycles?n=99999999999999999999")
	f.Add("/debug/cycles?n=banana&n=2")
	f.Add("/unknown")
	f.Add("/metrics?format=%zz")

	mux, r, rec := testMux()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			h := rec.Begin()
			h.Stage(StageActuate, time.Microsecond, "actions=1")
			h.End()
			r.Counter("cycles").Inc()
		}
	}()
	f.Cleanup(func() { close(stop); wg.Wait() })

	f.Fuzz(func(t *testing.T, target string) {
		if _, err := url.ParseRequestURI(target); err != nil || !strings.HasPrefix(target, "/") {
			t.Skip()
		}
		// httptest.NewRequest builds a raw request line, so whitespace or
		// control bytes would make it panic before the mux is reached —
		// those can never arrive at a handler through a real server.
		if strings.ContainsFunc(target, func(r rune) bool { return r <= ' ' || r == 0x7f }) {
			t.Skip()
		}
		req := httptest.NewRequest(http.MethodGet, target, nil)
		rw := httptest.NewRecorder()
		mux.ServeHTTP(rw, req)
		if rw.Code == 0 {
			t.Fatalf("no status written for %q", target)
		}
	})
}
