package proptest

import (
	"errors"
	"fmt"
	"testing"
)

func TestCheckIsDeterministicForFixedSeed(t *testing.T) {
	draw := func(cfg Config) []int64 {
		var seeds []int64
		Check(t, "collect", cfg, func(g *Generator) error {
			seeds = append(seeds, g.Seed())
			_ = g.Intn(1000) // consume the stream; must not affect seeding
			return nil
		})
		return seeds
	}
	a := draw(Config{NumTrials: 20, Seed: 7})
	b := draw(Config{NumTrials: 20, Seed: 7})
	if len(a) != 20 || len(b) != 20 {
		t.Fatalf("trials = %d, %d, want 20", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trial %d seed %d != %d across identical runs", i, a[i], b[i])
		}
	}
	c := draw(Config{NumTrials: 20, Seed: 8})
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different master seeds produced identical trial seeds")
	}
}

func TestTrialSeedsAreDistinct(t *testing.T) {
	seen := make(map[int64]int)
	Check(t, "distinct", Config{NumTrials: 256, Seed: 3}, func(g *Generator) error {
		if prev, dup := seen[g.Seed()]; dup {
			return fmt.Errorf("trial %d reuses trial %d's seed %d", g.Trial(), prev, g.Seed())
		}
		seen[g.Seed()] = g.Trial()
		return nil
	})
}

func TestTrialIndexAdvances(t *testing.T) {
	next := 0
	Check(t, "trial-index", Config{NumTrials: 10, Seed: 1}, func(g *Generator) error {
		if g.Trial() != next {
			return fmt.Errorf("trial index %d, want %d", g.Trial(), next)
		}
		next++
		return nil
	})
	if next != 10 {
		t.Fatalf("ran %d trials, want 10", next)
	}
}

func TestEnvSeedOverrides(t *testing.T) {
	var def, env int64
	Check(t, "default-seed", Config{NumTrials: 1, Seed: 42}, func(g *Generator) error {
		def = g.Seed()
		return nil
	})
	t.Setenv(EnvSeed, "99")
	Check(t, "env-seed", Config{NumTrials: 1, Seed: 42}, func(g *Generator) error {
		env = g.Seed()
		return nil
	})
	if def == env {
		t.Fatalf("PROPTEST_SEED=99 did not change the trial seed (%d)", def)
	}
	// And the override itself is deterministic.
	var again int64
	Check(t, "env-seed-2", Config{NumTrials: 1, Seed: 7}, func(g *Generator) error {
		again = g.Seed()
		return nil
	})
	if env != again {
		t.Fatalf("PROPTEST_SEED runs disagree: %d vs %d", env, again)
	}
}

func TestCheckReportsFirstFailureAndStops(t *testing.T) {
	sub := &testing.T{}
	ran := 0
	ok := Check(sub, "failing", Config{NumTrials: 50, Seed: 5}, func(g *Generator) error {
		ran++
		if g.Trial() == 3 {
			return errors.New("boom")
		}
		return nil
	})
	if ok {
		t.Fatal("Check reported success for a failing property")
	}
	if !sub.Failed() {
		t.Fatal("Check did not mark the test failed")
	}
	if ran != 4 {
		t.Fatalf("ran %d trials after failure at trial 3, want 4", ran)
	}
}

func TestGeneratorDraws(t *testing.T) {
	g := NewGenerator(11)
	for i := 0; i < 1000; i++ {
		if v := g.IntRange(3, 7); v < 3 || v > 7 {
			t.Fatalf("IntRange out of bounds: %d", v)
		}
		if v := g.Range(1.5, 2.5); v < 1.5 || v >= 2.5 {
			t.Fatalf("Range out of bounds: %v", v)
		}
	}
	if g.Bool(0) {
		t.Error("Bool(0) = true")
	}
	if !g.Bool(1.01) {
		t.Error("Bool(>1) = false")
	}
	// Same seed, same stream.
	a, b := NewGenerator(13), NewGenerator(13)
	for i := 0; i < 100; i++ {
		if a.Intn(1<<30) != b.Intn(1<<30) {
			t.Fatal("same-seed generators diverged")
		}
	}
}

func TestQuickCheckUsesDefaults(t *testing.T) {
	n := 0
	QuickCheck(t, "defaults", func(g *Generator) error {
		n++
		return nil
	})
	if n != DefaultNumTrials {
		t.Fatalf("QuickCheck ran %d trials, want %d", n, DefaultNumTrials)
	}
}
