// Package proptest is a tiny seeded property-testing runner. A property
// is a function over a seeded Generator that returns nil when the drawn
// trial upholds the invariant and a descriptive error when it does not.
// Check runs it NumTrials times, each trial on an independent generator
// whose seed is derived deterministically from the master seed, so:
//
//   - the default run is fully deterministic (fixed master seed);
//   - a failing trial names both the master seed and its own derived
//     seed, and `PROPTEST_SEED=<n> go test -run <Name>` replays the
//     exact failing fleet without touching code;
//   - trials are independent, so shrinking a failure to one trial is a
//     matter of re-running with its seed, not bisecting a shared RNG
//     stream.
//
// The package is dependency-free on purpose: the manager invariant suite,
// the scenario library and any future property suites all lean on it
// without dragging domain packages into each other.
package proptest

import (
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"testing"
	"time"
)

// EnvSeed is the environment variable that overrides the master seed for
// every Check in the test binary — the reproduction handle printed by
// failing runs.
const EnvSeed = "PROPTEST_SEED"

// Config parametrises one property check.
type Config struct {
	// NumTrials is the number of independent trials to draw. Zero means
	// DefaultNumTrials.
	NumTrials int
	// Seed is the master seed. Zero means "pick from the clock" — only
	// suites that want fresh randomness every run leave it unset; the
	// repo's suites pin it so CI is deterministic. PROPTEST_SEED
	// overrides it either way.
	Seed int64
	// Verbose logs every trial's derived seed as it runs.
	Verbose bool
}

// DefaultNumTrials is used when Config.NumTrials is zero.
const DefaultNumTrials = 100

// DefaultConfig returns the default configuration.
func DefaultConfig() Config { return Config{NumTrials: DefaultNumTrials} }

// effectiveSeed resolves the master seed: PROPTEST_SEED beats cfg.Seed
// beats the clock. The bool reports whether the env override was used.
func effectiveSeed(t *testing.T, cfg Config) (int64, bool) {
	if v := os.Getenv(EnvSeed); v != "" {
		seed, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			t.Fatalf("proptest: bad %s=%q: %v", EnvSeed, v, err)
		}
		return seed, true
	}
	if cfg.Seed != 0 {
		return cfg.Seed, false
	}
	return time.Now().UnixNano(), false
}

// Property is a single checkable invariant over one drawn trial.
type Property func(g *Generator) error

// Check draws cfg.NumTrials independent trials of prop and reports the
// first failure through t.Errorf, leading with the master seed so the run
// replays via PROPTEST_SEED. It returns true when every trial passed.
func Check(t *testing.T, name string, cfg Config, prop Property) bool {
	t.Helper()
	trials := cfg.NumTrials
	if trials <= 0 {
		trials = DefaultNumTrials
	}
	master, fromEnv := effectiveSeed(t, cfg)
	for trial := 0; trial < trials; trial++ {
		g := newGenerator(master, trial)
		if cfg.Verbose {
			t.Logf("proptest %s: trial %d/%d seed=%d", name, trial+1, trials, g.Seed())
		}
		if err := prop(g); err != nil {
			src := "default"
			if fromEnv {
				src = "env"
			}
			t.Errorf("proptest %s: trial %d/%d failed (master seed %d from %s, trial seed %d): %v\nreplay with %s=%d",
				name, trial+1, trials, master, src, g.Seed(), err, EnvSeed, master)
			return false
		}
	}
	return true
}

// QuickCheck runs prop under the default configuration.
func QuickCheck(t *testing.T, name string, prop Property) bool {
	t.Helper()
	return Check(t, name, DefaultConfig(), prop)
}

// MustCheck is Check, but a failure aborts the test immediately.
func MustCheck(t *testing.T, name string, cfg Config, prop Property) {
	t.Helper()
	if !Check(t, name, cfg, prop) {
		t.FailNow()
	}
}

// splitmix64 is the seed-derivation mix (Vigna's SplitMix64 finaliser):
// cheap, stateless, and avalanche-complete, so adjacent trial indices
// yield unrelated generator seeds.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Generator supplies seeded randomness for one trial.
type Generator struct {
	rng   *rand.Rand
	seed  int64
	trial int
}

func newGenerator(master int64, trial int) *Generator {
	seed := int64(splitmix64(uint64(master) ^ splitmix64(uint64(trial)+1)))
	return &Generator{rng: rand.New(rand.NewSource(seed)), seed: seed, trial: trial}
}

// NewGenerator builds a standalone generator from an explicit seed — the
// replay path for tools that want to re-run one trial outside Check.
func NewGenerator(seed int64) *Generator {
	return &Generator{rng: rand.New(rand.NewSource(seed)), seed: seed}
}

// Seed returns this trial's derived seed.
func (g *Generator) Seed() int64 { return g.seed }

// Trial returns this trial's index within the Check run. Suites use it to
// rotate deterministically through a fixed roster (e.g. one selection
// policy per trial) independent of the random stream.
func (g *Generator) Trial() int { return g.trial }

// Rand exposes the underlying stream for APIs that take *rand.Rand.
func (g *Generator) Rand() *rand.Rand { return g.rng }

// Intn draws uniformly from [0, n).
func (g *Generator) Intn(n int) int { return g.rng.Intn(n) }

// IntRange draws uniformly from [lo, hi] inclusive.
func (g *Generator) IntRange(lo, hi int) int {
	if hi < lo {
		panic(fmt.Sprintf("proptest: IntRange(%d, %d)", lo, hi))
	}
	return lo + g.rng.Intn(hi-lo+1)
}

// Float64 draws uniformly from [0, 1).
func (g *Generator) Float64() float64 { return g.rng.Float64() }

// Range draws uniformly from [lo, hi).
func (g *Generator) Range(lo, hi float64) float64 { return lo + (hi-lo)*g.rng.Float64() }

// Bool is true with probability p.
func (g *Generator) Bool(p float64) bool { return g.rng.Float64() < p }
