package managerd

import (
	"context"
	"net"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/policy"
	"repro/internal/power"
	"repro/internal/replica"
	"repro/internal/units"
	"repro/internal/wire"
)

// waitFor polls cond until it holds or the deadline expires.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// dialFakeAgent opens a hand-rolled agent connection and sends the hello;
// the test drives the protocol explicitly from there.
func dialFakeAgent(t *testing.T, addr string, id, level, maxLevel int) *wire.Conn {
	t.Helper()
	raw, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	c := wire.NewConn(raw)
	if err := c.Send(wire.Envelope{Type: wire.KindHello, Node: id, MaxLevel: maxLevel, Level: level}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// busySample fabricates a high-CPU sample (well above the idle cutoff) so
// the node is a policy candidate and its power estimate is substantial.
func busySample(id, level int) wire.Envelope {
	return wire.Envelope{Type: wire.KindSample, Node: id, Level: level, CPUUtil: 0.95, IntervalMS: 50, Job: 1}
}

func TestJournalSaveLoadRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.json")
	st, err := replica.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	st.SetEpoch(3)
	st.SetLevel(3, 2)
	st.SetLevel(1, 0)
	learner := &power.LearnerState{LifetimePeakW: 1000, Trained: true, AdjustCycles: 7, PLW: 840, PHW: 930}
	if _, ok := st.CommitCycle(42, 840, 930, learner); !ok {
		t.Fatal("commit with changes reported nothing to commit")
	}
	if _, err := st.Compact(); err != nil {
		t.Fatal(err)
	}
	st.Close()
	out, err := replica.ReadState(path)
	if err != nil {
		t.Fatal(err)
	}
	if out.SavedAtCycle != 42 || out.Learner == nil || !out.Learner.Trained || out.Learner.LifetimePeakW != 1000 {
		t.Errorf("journal round trip lost state: %+v", out)
	}
	if out.Epoch != 3 || out.LastSeq != 1 {
		t.Errorf("epoch/seq not persisted: %+v", out)
	}
	// Snapshots sort levels by node for stable diffs.
	if len(out.Levels) != 2 || out.Levels[0].Node != 1 || out.Levels[1].Node != 3 {
		t.Errorf("levels not sorted: %+v", out.Levels)
	}
}

func TestJournalRejectsCorruption(t *testing.T) {
	dir := t.TempDir()
	cases := map[string]string{
		"garbage":   "not json at all{{{",
		"truncated": `{"saved_at_cycle": 9, "levels": [{"node"`,
		"negcycle":  `{"saved_at_cycle": -1, "levels": []}`,
		"neglevel":  `{"saved_at_cycle": 1, "levels": [{"node": 0, "level": -3}]}`,
		"dupnode":   `{"saved_at_cycle": 1, "levels": [{"node": 2, "level": 1}, {"node": 2, "level": 0}]}`,
	}
	for name, body := range cases {
		path := filepath.Join(dir, name+".json")
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		// The strict read path rejects the snapshot wholesale…
		if _, err := replica.ReadState(path); err == nil {
			t.Errorf("%s journal accepted", name)
		}
		// …and the daemon's open path cold-starts on it instead of
		// applying a partial state.
		st, err := replica.Open(path)
		if err != nil {
			t.Fatalf("%s: open should cold-start, got %v", name, err)
		}
		if !st.Empty() {
			t.Errorf("%s: corrupt journal produced state %+v", name, st.State())
		}
		st.Close()
	}
	if _, err := replica.ReadState(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing journal accepted")
	}
}

func TestCommandRetryAndAck(t *testing.T) {
	// Thresholds put one busy node (~250 W) in yellow so the manager keeps
	// commanding it down.
	srv := startServer(t, power.Thresholds{PL: 200, PH: 400}, policy.MPCC{})
	c := dialFakeAgent(t, srv.Addr(), 1, 9, 9)

	var mu sync.Mutex
	level := 9
	acking := false
	var sendMu sync.Mutex
	send := func(e wire.Envelope) {
		sendMu.Lock()
		defer sendMu.Unlock()
		_ = c.Send(e)
	}

	// Reader: swallow commands silently until the test flips acking, then
	// apply and acknowledge them like a well-behaved agent.
	go func() {
		for {
			env, err := c.Recv()
			if err != nil {
				return
			}
			if env.Type != wire.KindCommand {
				continue
			}
			mu.Lock()
			if !acking {
				mu.Unlock()
				continue
			}
			level = env.Level
			lv := level
			mu.Unlock()
			send(wire.Envelope{Type: wire.KindAck, Node: 1, Seq: env.Seq, Level: lv})
		}
	}()
	// Sampler: keep the node fresh and busy.
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		tick := time.NewTicker(25 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				mu.Lock()
				lv := level
				mu.Unlock()
				send(busySample(1, lv))
			}
		}
	}()

	// Phase 1: no acks ever arrive, so in-flight commands must be retried.
	waitFor(t, 10*time.Second, "command retries", func() bool {
		return srv.Status().CommandRetries >= 1
	})
	if srv.Status().CommandAcks != 0 {
		t.Errorf("acks counted before the agent ever acked: %+v", srv.Status())
	}
	// Phase 2: the agent starts acking; the manager must match sequence
	// numbers and count the acknowledgements.
	mu.Lock()
	acking = true
	mu.Unlock()
	waitFor(t, 10*time.Second, "command acks", func() bool {
		return srv.Status().CommandAcks >= 1
	})
}

func TestHealthStateTransitions(t *testing.T) {
	srv, err := New(Config{
		Addr:         "127.0.0.1:0",
		Model:        power.TianheNode(),
		Policy:       policy.MPC{},
		Tg:           3,
		ControlEvery: 20 * time.Millisecond,
		Thresholds:   power.Thresholds{PL: units.MW(1), PH: units.MW(2)},
		StaleAfter:   80 * time.Millisecond,
		LostAfter:    200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Stop)

	c := dialFakeAgent(t, srv.Addr(), 3, 9, 9)
	_ = c.Send(busySample(3, 9))
	waitFor(t, 5*time.Second, "healthy", func() bool { return srv.Status().HealthyNodes == 1 })
	// Go silent while staying connected: healthy → stale → lost.
	waitFor(t, 5*time.Second, "stale", func() bool { return srv.Status().StaleNodes == 1 })
	waitFor(t, 5*time.Second, "lost while connected", func() bool { return srv.Status().LostNodes == 1 })
	// Disconnecting keeps the record, still lost.
	c.Close()
	waitFor(t, 5*time.Second, "lost after disconnect", func() bool {
		st := srv.Status()
		return st.Agents == 0 && st.LostNodes == 1
	})
}

func TestQuarantineExcludesFlappingNode(t *testing.T) {
	srv, err := New(Config{
		Addr:         "127.0.0.1:0",
		Model:        power.TianheNode(),
		Policy:       policy.MPCC{},
		Tg:           3,
		ControlEvery: 20 * time.Millisecond,
		// One busy node (~250 W) lands deep in red: without quarantine the
		// manager would command it to level 0 every cycle.
		Thresholds: power.Thresholds{PL: 100, PH: 150},
		FlapWindow: 5 * time.Second,
		FlapLimit:  3,
		Quarantine: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Stop)

	// Two quick connect/disconnect bounces, then a third connect that
	// sticks — crossing FlapLimit quarantines the node.
	for i := 0; i < 2; i++ {
		c := dialFakeAgent(t, srv.Addr(), 5, 9, 9)
		c.Close()
	}
	c := dialFakeAgent(t, srv.Addr(), 5, 9, 9)
	waitFor(t, 5*time.Second, "quarantine", func() bool {
		st := srv.Status()
		return st.Quarantines >= 1 && st.QuarantinedNodes == 1
	})

	// The quarantined node keeps reporting busy samples. Its power still
	// counts (the system goes red) but it must be excluded from the
	// candidate set: no degrade commands at all.
	var sendMu sync.Mutex
	stop := make(chan struct{})
	defer close(stop)
	go func() {
		tick := time.NewTicker(25 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				sendMu.Lock()
				_ = c.Send(busySample(5, 9))
				sendMu.Unlock()
			}
		}
	}()
	gotCmd := make(chan struct{}, 1)
	go func() {
		for {
			env, err := c.Recv()
			if err != nil {
				return
			}
			if env.Type == wire.KindCommand {
				select {
				case gotCmd <- struct{}{}:
				default:
				}
			}
		}
	}()

	waitFor(t, 5*time.Second, "red cycles", func() bool { return srv.Status().RedCycles >= 3 })
	select {
	case <-gotCmd:
		t.Fatal("quarantined node received a command")
	default:
	}
	if st := srv.Status(); st.DegradeOps != 0 {
		t.Errorf("degrade ops against a fleet of one quarantined node: %+v", st)
	}
}

func TestRestartFromJournalResumesAndReconciles(t *testing.T) {
	jp := filepath.Join(t.TempDir(), "managerd.journal")
	mkConfig := func(training time.Duration) Config {
		return Config{
			Addr:         "127.0.0.1:0",
			Model:        power.TianheNode(),
			Policy:       policy.MPCC{},
			Tg:           3,
			ControlEvery: 20 * time.Millisecond,
			Thresholds:   power.Thresholds{PL: units.MW(1), PH: units.MW(2)},
			Learn:        &LearnConfig{PMax: units.KW(5), Training: training, AdjustEvery: 5},
			JournalPath:  jp,
			JournalEvery: 2,
		}
	}

	// First life: train on a live fleet, cap it, journal the result.
	srv1, err := New(mkConfig(200 * time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if err := srv1.Start(); err != nil {
		t.Fatal(err)
	}
	ctx1, cancel1 := context.WithCancel(context.Background())
	startAgents(t, ctx1, srv1.Addr(), 2)
	waitFor(t, 15*time.Second, "first life trained and capping", func() bool {
		st := srv1.Status()
		return st.Trained && st.JournalWrites >= 1 && st.DegradeOps >= 1 && st.CommandAcks >= 1
	})
	cancel1()
	srv1.Stop() // writes the final snapshot

	js, err := replica.ReadState(jp)
	if err != nil {
		t.Fatalf("no readable journal after stop: %v", err)
	}
	if js.Learner == nil || !js.Learner.Trained || len(js.Levels) == 0 {
		t.Fatalf("journal missing recovery state: %+v", js)
	}

	// Second life: Training is an hour — if the journal restore failed the
	// daemon would sit untrained (capping disarmed) for the whole test.
	srv2, err := New(mkConfig(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	st := srv2.Status()
	if !st.Trained {
		t.Fatal("restarted manager not trained from journal")
	}
	if st.ThresholdPHW >= 1e6 {
		t.Errorf("restart kept seed thresholds instead of journaled ones: %+v", st)
	}
	if st.LostNodes != len(js.Levels) {
		t.Errorf("journal nodes not tracked as lost: %+v", st)
	}
	if err := srv2.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv2.Stop)

	// Fresh agents reconnect at their top level — drifted from the
	// journaled (degraded) levels. The manager must reconcile them back
	// down without any retraining.
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	startAgents(t, ctx2, srv2.Addr(), 2)
	waitFor(t, 15*time.Second, "reconciliation", func() bool {
		st := srv2.Status()
		return st.Reconciles >= 1 && st.CommandAcks >= 1 && st.Drifted == 0
	})
}

func TestCorruptJournalColdStarts(t *testing.T) {
	jp := filepath.Join(t.TempDir(), "managerd.journal")
	if err := os.WriteFile(jp, []byte(`{"saved_at_cycle": "NaN"`), 0o644); err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{
		Addr:         "127.0.0.1:0",
		Model:        power.TianheNode(),
		Policy:       policy.MPC{},
		Tg:           3,
		ControlEvery: 20 * time.Millisecond,
		Thresholds:   power.Thresholds{PL: units.MW(1), PH: units.MW(2)},
		Learn:        &LearnConfig{PMax: units.KW(5), Training: time.Hour},
		JournalPath:  jp,
	})
	if err != nil {
		t.Fatalf("corrupt journal must cold-start, not fail construction: %v", err)
	}
	st := srv.Status()
	if st.Trained || st.LostNodes != 0 || st.ThresholdPHW != 2e6 {
		t.Errorf("corrupt journal leaked state into a cold start: %+v", st)
	}
}
