package managerd

import (
	"errors"
	"net"
	"sync"
	"time"

	"repro/internal/power"
	"repro/internal/units"
	"repro/internal/wire"
)

// fedClient is the cabinet side of the capping federation: a governed
// managerd dials the coordinator, subscribes with a cab_report frame
// (which also advertises its codecs, like a journal follower's
// subscribe), then streams one report per ReportEvery and applies the
// power band from each cab_budget grant to its own Algorithm 1 loop.
//
// Grants double as coordinator heartbeats. The control loop consults
// thresholds() each cycle: while grants are fresh the granted band is in
// force; after BudgetGrace control periods of silence the cabinet floors
// itself to FailsafeBudget — the same dead-man posture as agentd's
// failsafe, one tier up. Reconnects resubscribe under capped backoff and
// the next grant lifts the floor.
type fedClient struct {
	s *Server

	mu        sync.Mutex
	conn      *wire.Conn // current coordinator connection, nil between dials
	thr       power.Thresholds
	haveGrant bool
	grantSeq  uint64
	lastGrant time.Time
	floored   bool
	lastP     float64 // last cycle's sensed aggregate power
	lastD     float64 // last cycle's uncapped demand estimate
	started   time.Time
}

func newFedClient(s *Server) *fedClient { return &fedClient{s: s} }

// start stamps the beginning of the grace window, so a daemon that never
// reaches its coordinator still floors itself BudgetGrace periods in.
func (f *fedClient) start() {
	f.mu.Lock()
	f.started = time.Now()
	f.mu.Unlock()
}

// thresholds returns the band the control cycle must enforce now: the
// freshest grant while the coordinator is alive, FailsafeBudget once it
// has been silent past the grace window, and the static configured band
// before the first grant of a young connection.
func (f *fedClient) thresholds(now time.Time) power.Thresholds {
	grace := time.Duration(f.s.cfg.BudgetGrace) * f.s.cfg.ControlEvery
	f.mu.Lock()
	defer f.mu.Unlock()
	last := f.lastGrant
	if last.IsZero() {
		last = f.started
	}
	if now.Sub(last) > grace {
		if !f.floored {
			f.floored = true
			f.s.budgetFloorsC.Inc()
			f.s.governedG.Set(0)
		}
		return f.s.cfg.FailsafeBudget
	}
	if f.haveGrant {
		return f.thr
	}
	return f.s.cfg.Thresholds
}

// noteSense records the cycle's sensed power and demand for the next
// report.
func (f *fedClient) noteSense(p, demand float64) {
	f.mu.Lock()
	f.lastP, f.lastD = p, demand
	f.mu.Unlock()
}

// closeConn drops the current coordinator connection (Stop, and the
// redial path after an error).
func (f *fedClient) closeConn() {
	f.mu.Lock()
	c := f.conn
	f.conn = nil
	f.mu.Unlock()
	if c != nil {
		c.Close()
	}
}

// dial opens one coordinator connection.
func (f *fedClient) dial() (net.Conn, error) {
	if f.s.cfg.CoordinatorDial != nil {
		return f.s.cfg.CoordinatorDial()
	}
	return net.DialTimeout("tcp", f.s.cfg.CoordinatorAddr, 5*time.Second)
}

// run is the federation loop: dial, subscribe, report until the
// connection dies, redial under capped backoff. Runs until Stop.
func (f *fedClient) run() {
	defer f.s.wg.Done()
	const (
		backoffMin = 10 * time.Millisecond
		backoffMax = 2 * time.Second
	)
	backoff := backoffMin
	for {
		select {
		case <-f.s.stopCh:
			return
		default:
		}
		raw, err := f.dial()
		if err == nil {
			conn := wire.NewConn(raw)
			f.mu.Lock()
			f.conn = conn
			f.mu.Unlock()
			err = f.session(conn)
			f.closeConn()
			if err == nil {
				backoff = backoffMin
			}
		}
		select {
		case <-f.s.stopCh:
			return
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > backoffMax {
			backoff = backoffMax
		}
	}
}

// session runs one subscribed connection: send the subscribe report,
// spawn a reader for hellos and grants, and keep reporting every
// ReportEvery until either side fails. Returns nil if at least one grant
// arrived (a healthy session resets the redial backoff).
func (f *fedClient) session(conn *wire.Conn) error {
	sub := f.reportEnvelope()
	if f.s.cfg.WireCodec != wire.CodecJSON {
		sub.Codecs = []string{wire.CodecBinary, wire.CodecJSON}
	}
	if err := conn.Send(sub); err != nil {
		return err
	}

	sawGrant := false
	readerDone := make(chan error, 1)
	go func() {
		var env wire.Envelope
		for {
			if err := conn.RecvInto(&env); err != nil {
				var de *wire.DecodeError
				if errors.As(err, &de) && de.Recoverable() {
					f.s.decodeErrs.Inc()
					continue
				}
				readerDone <- err
				return
			}
			switch env.Type {
			case wire.KindHello:
				// The coordinator's subscribe reply; switching our writes
				// to the chosen codec mirrors agentd's negotiation.
				if env.Codec == wire.CodecBinary {
					conn.EnableBinary()
				}
			case wire.KindCabBudget:
				if f.applyGrant(&env) {
					sawGrant = true
				}
			}
		}
	}()

	tick := time.NewTicker(f.s.cfg.ReportEvery)
	defer tick.Stop()
	for {
		select {
		case <-f.s.stopCh:
			return nil
		case err := <-readerDone:
			if sawGrant {
				return nil
			}
			return err
		case <-tick.C:
			if err := conn.Send(f.reportEnvelope()); err != nil {
				// The reader will fail too; drain it so the goroutine exits
				// before we redial.
				conn.Close()
				<-readerDone
				if sawGrant {
					return nil
				}
				return err
			}
		}
	}
}

// reportEnvelope snapshots the cabinet's aggregate state into one
// cab_report frame: sensed power, uncapped demand, the band currently in
// force, fleet tallies, and the sequence number of the newest grant (so
// the coordinator sees which grant the cabinet runs under).
func (f *fedClient) reportEnvelope() wire.Envelope {
	s := f.s
	s.refreshGauges()
	s.stateMu.Lock()
	thr := s.thr
	s.stateMu.Unlock()
	f.mu.Lock()
	seq := f.grantSeq
	p, d := f.lastP, f.lastD
	f.mu.Unlock()
	return wire.Envelope{
		Type: wire.KindCabReport, Node: s.cfg.Cabinet, Seq: seq, Epoch: s.epoch,
		PowerW: p, DemandW: d,
		BudgetW: float64(thr.PL), PHW: float64(thr.PH),
		Agents:  int(s.agentsG.Value()),
		Healthy: int(s.healthyG.Value()),
	}
}

// applyGrant installs a cab_budget band as the governed thresholds.
// Invalid bands (PL ≤ 0 or PH < PL — a coordinator bug or a torn frame)
// are ignored; the dead-man floor covers a coordinator that sends only
// garbage.
func (f *fedClient) applyGrant(env *wire.Envelope) bool {
	thr := power.Thresholds{PL: units.Watts(env.BudgetW), PH: units.Watts(env.PHW)}
	if err := thr.Validate(); err != nil {
		return false
	}
	f.mu.Lock()
	f.thr = thr
	f.grantSeq = env.Seq
	f.lastGrant = time.Now()
	f.haveGrant = true
	f.floored = false
	f.mu.Unlock()
	f.s.budgetGrantsC.Inc()
	f.s.governedG.Set(1)
	return true
}
