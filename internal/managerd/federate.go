package managerd

import (
	"time"

	"repro/internal/power"
	"repro/internal/tier"
)

// fedClient is the cabinet side of the capping federation: a governed
// managerd dials the coordinator, subscribes with a cab_report frame,
// streams one report per ReportEvery and applies the power band from
// each cab_budget grant to its own Algorithm 1 loop.
//
// The session machinery — subscribe, grant adoption, dead-man floor
// after BudgetGrace control periods of silence, capped redial backoff —
// lives in tier.Governor, the reusable child half of the federation
// seam (the same code governs a row coordinator under a facility). This
// file is only the binding of that seam onto this server: its config,
// its instruments, and its per-cycle aggregate snapshot.
type fedClient struct {
	s *Server
	g *tier.Governor
}

func newFedClient(s *Server) *fedClient {
	f := &fedClient{s: s}
	f.g = tier.NewGovernor(tier.GovernorConfig{
		Parent:      s.cfg.CoordinatorAddr,
		Dial:        s.cfg.CoordinatorDial,
		Child:       s.cfg.Cabinet,
		ReportEvery: s.cfg.ReportEvery,
		Grace:       time.Duration(s.cfg.BudgetGrace) * s.cfg.ControlEvery,
		Failsafe:    s.cfg.FailsafeBudget,
		Initial:     s.cfg.Thresholds,
		WireCodec:   s.cfg.WireCodec,
		Snapshot: func() tier.Snapshot {
			s.refreshGauges()
			s.stateMu.Lock()
			thr := s.thr
			s.stateMu.Unlock()
			return tier.Snapshot{
				AppliedPLW: float64(thr.PL),
				AppliedPHW: float64(thr.PH),
				Agents:     int(s.agentsG.Value()),
				Healthy:    int(s.healthyG.Value()),
				Epoch:      s.epoch,
			}
		},
		OnGrant: func() {
			s.budgetGrantsC.Inc()
			s.governedG.Set(1)
		},
		OnFloor: func() {
			s.budgetFloorsC.Inc()
			s.governedG.Set(0)
		},
		OnDecodeError: func() { s.decodeErrs.Inc() },
	})
	return f
}

// start stamps the beginning of the grace window, so a daemon that never
// reaches its coordinator still floors itself BudgetGrace periods in.
func (f *fedClient) start() { f.g.Start() }

// run is the federation loop; runs until Stop.
func (f *fedClient) run() {
	defer f.s.wg.Done()
	f.g.Run(f.s.stopCh)
}

// thresholds returns the band the control cycle must enforce now: the
// freshest grant while the coordinator is alive, FailsafeBudget once it
// has been silent past the grace window, and the static configured band
// before the first grant of a young connection.
func (f *fedClient) thresholds(now time.Time) power.Thresholds {
	return f.g.Thresholds(now)
}

// noteSense records the cycle's sensed power and demand for the next
// report.
func (f *fedClient) noteSense(p, demand float64) { f.g.NoteSense(p, demand) }

// closeConn drops the current coordinator connection (Stop path).
func (f *fedClient) closeConn() { f.g.CloseConn() }
