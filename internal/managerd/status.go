package managerd

import (
	"fmt"
	"reflect"
	"sync"
	"unsafe"

	"repro/internal/obs"
	"repro/internal/wire"
)

// statusField is one precomputed StatusReply field: its obs instrument
// name, byte offset and store kind. The layout is a property of the
// wire.StatusReply type, not of any registry, so it is computed once per
// process and reused by every Status call — the reflection walk happens
// exactly once instead of per probe.
type statusField struct {
	name   string
	offset uintptr
	kind   reflect.Kind
}

var (
	statusFieldsOnce sync.Once
	statusFields     []statusField
	statusFieldsErr  []string // fields with no/unsupported mapping, reported per call
)

func buildStatusFields() {
	rt := reflect.TypeOf(wire.StatusReply{})
	for i := 0; i < rt.NumField(); i++ {
		f := rt.Field(i)
		name := f.Tag.Get("obs")
		if name == "" {
			statusFieldsErr = append(statusFieldsErr, fmt.Sprintf("%s: no obs tag", f.Name))
			continue
		}
		switch f.Type.Kind() {
		case reflect.Int, reflect.Int64, reflect.Float64, reflect.Bool:
			statusFields = append(statusFields, statusField{name: name, offset: f.Offset, kind: f.Type.Kind()})
		default:
			statusFieldsErr = append(statusFieldsErr, fmt.Sprintf("%s: unsupported kind %s", f.Name, f.Type.Kind()))
		}
	}
}

// statusFromRegistry fills a wire.StatusReply from the obs registry via
// the struct's `obs` tags: each field names the instrument it mirrors,
// and the registry is the single source of truth. This replaces the old
// hand-copied field list, whose drift (SelectTime accumulated but never
// surfaced) motivated the obs refactor.
//
// The error lists every field that could not be mapped — no obs tag, an
// unregistered instrument, or an unsupported field kind. Server.Status
// ignores it because every instrument is registered during New, so a
// non-nil error is a programming bug; the registry-mapping test fails on
// it instead.
func statusFromRegistry(reg *obs.Registry) (wire.StatusReply, error) {
	statusFieldsOnce.Do(buildStatusFields)
	var rep wire.StatusReply
	base := unsafe.Pointer(&rep)
	var bad []string
	bad = append(bad, statusFieldsErr...)
	for i := range statusFields {
		f := &statusFields[i]
		v, ok := reg.Value(f.name)
		if !ok {
			bad = append(bad, fmt.Sprintf("%s: instrument %q not registered", f.name, f.name))
			continue
		}
		p := unsafe.Pointer(uintptr(base) + f.offset)
		switch f.kind {
		case reflect.Int:
			*(*int)(p) = int(v)
		case reflect.Int64:
			*(*int64)(p) = int64(v)
		case reflect.Float64:
			*(*float64)(p) = v
		case reflect.Bool:
			*(*bool)(p) = v != 0
		}
	}
	if len(bad) > 0 {
		return rep, fmt.Errorf("managerd: status mapping incomplete: %v", bad)
	}
	return rep, nil
}
