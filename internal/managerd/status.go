package managerd

import (
	"fmt"
	"reflect"

	"repro/internal/obs"
	"repro/internal/wire"
)

// statusFromRegistry fills a wire.StatusReply from the obs registry by
// reflecting over the struct's `obs` tags: each field names the
// instrument it mirrors, and the registry is the single source of truth.
// This replaces the old hand-copied field list, whose drift (SelectTime
// accumulated but never surfaced) motivated the obs refactor.
//
// The error lists every field that could not be mapped — no obs tag, an
// unregistered instrument, or an unsupported field kind. Server.Status
// ignores it because every instrument is registered during New, so a
// non-nil error is a programming bug; the registry-mapping test fails on
// it instead.
func statusFromRegistry(reg *obs.Registry) (wire.StatusReply, error) {
	var rep wire.StatusReply
	rv := reflect.ValueOf(&rep).Elem()
	rt := rv.Type()
	var bad []string
	for i := 0; i < rt.NumField(); i++ {
		f := rt.Field(i)
		name := f.Tag.Get("obs")
		if name == "" {
			bad = append(bad, fmt.Sprintf("%s: no obs tag", f.Name))
			continue
		}
		v, ok := reg.Value(name)
		if !ok {
			bad = append(bad, fmt.Sprintf("%s: instrument %q not registered", f.Name, name))
			continue
		}
		switch f.Type.Kind() {
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
			rv.Field(i).SetInt(int64(v))
		case reflect.Float32, reflect.Float64:
			rv.Field(i).SetFloat(v)
		case reflect.Bool:
			rv.Field(i).SetBool(v != 0)
		default:
			bad = append(bad, fmt.Sprintf("%s: unsupported kind %s", f.Name, f.Type.Kind()))
		}
	}
	if len(bad) > 0 {
		return rep, fmt.Errorf("managerd: status mapping incomplete: %v", bad)
	}
	return rep, nil
}
