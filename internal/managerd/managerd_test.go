package managerd

import (
	"context"
	"testing"
	"time"

	"repro/internal/agentd"
	"repro/internal/node"
	"repro/internal/policy"
	"repro/internal/power"
	"repro/internal/units"
)

func startServer(t *testing.T, thr power.Thresholds, pol policy.Policy) *Server {
	t.Helper()
	srv, err := New(Config{
		Addr:         "127.0.0.1:0",
		Model:        power.TianheNode(),
		Policy:       pol,
		Tg:           3,
		ControlEvery: 50 * time.Millisecond,
		Thresholds:   thr,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Stop)
	return srv
}

func startAgents(t *testing.T, ctx context.Context, addr string, n int) []*agentd.Agent {
	t.Helper()
	agents := make([]*agentd.Agent, n)
	for i := 0; i < n; i++ {
		a, err := agentd.New(agentd.Config{
			NodeID:      node.ID(i),
			ManagerAddr: addr,
			SampleEvery: 50 * time.Millisecond,
			TickEvery:   10 * time.Millisecond,
			Model:       power.TianheNode(),
			Seed:        int64(i + 1),
		})
		if err != nil {
			t.Fatal(err)
		}
		agents[i] = a
		go func() { _ = a.Run(ctx) }()
	}
	return agents
}

func TestConfigValidation(t *testing.T) {
	base := Config{
		Addr: "127.0.0.1:0", Model: power.TianheNode(), Policy: policy.MPC{},
		Tg: 3, ControlEvery: time.Second,
		Thresholds: power.Thresholds{PL: 100, PH: 200},
	}
	bad := base
	bad.ControlEvery = 0
	if _, err := New(bad); err == nil {
		t.Error("zero control period accepted")
	}
	bad = base
	bad.Thresholds = power.Thresholds{PL: 200, PH: 100}
	if _, err := New(bad); err == nil {
		t.Error("inverted thresholds accepted")
	}
	bad = base
	bad.Policy = nil
	if _, err := New(bad); err == nil {
		t.Error("nil policy accepted")
	}
	bad = base
	bad.Model = power.Model{}
	if _, err := New(bad); err == nil {
		t.Error("invalid model accepted")
	}
}

// TestEndToEndSamplesFlow moved to harness_reuse_test.go: it now runs on
// the internal/harness cluster (in-memory fault network) instead of
// loopback TCP, proving the harness is a drop-in substrate for the
// daemon-plane tests. TestEndToEndCapping below intentionally stays on
// real TCP to keep socket-path coverage.

func TestEndToEndCapping(t *testing.T) {
	// Thresholds far below 4 busy nodes (~1 kW): the daemon must drive
	// agents towards their floor levels.
	srv := startServer(t, power.Thresholds{PL: 500, PH: 700}, policy.MPCC{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	agents := startAgents(t, ctx, srv.Addr(), 4)

	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		applied := 0
		minLevel := 10
		for _, a := range agents {
			applied += a.CommandsApplied()
			if l := a.Level(); l < minLevel {
				minLevel = l
			}
		}
		if applied >= 4 && minLevel < 9 {
			st := srv.Status()
			if st.DegradeOps == 0 {
				t.Errorf("agents degraded but manager counted nothing: %+v", st)
			}
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("capping never actuated; status %+v", srv.Status())
}

func TestQueryStatus(t *testing.T) {
	srv := startServer(t, power.Thresholds{PL: units.MW(1), PH: units.MW(2)}, policy.MPC{})
	st, err := QueryStatus(srv.Addr(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if st.ThresholdPLW != 1e6 {
		t.Errorf("status thresholds = %+v", st)
	}
}

func TestQueryStatusConnectionError(t *testing.T) {
	if _, err := QueryStatus("127.0.0.1:1", 200*time.Millisecond); err == nil {
		t.Error("query to dead address succeeded")
	}
}

func TestStaleSamplesDropped(t *testing.T) {
	srv := startServer(t, power.Thresholds{PL: units.MW(1), PH: units.MW(2)}, policy.MPC{})
	ctx, cancel := context.WithCancel(context.Background())
	startAgents(t, ctx, srv.Addr(), 2)

	// Let samples arrive, then kill the agents and wait past StaleAfter.
	time.Sleep(500 * time.Millisecond)
	cancel()
	time.Sleep(600 * time.Millisecond)
	st := srv.Status()
	if st.LastPowerW != 0 && st.DroppedStale == 0 {
		t.Errorf("stale agent samples still counted: %+v", st)
	}
}

func TestBusyTimeAccounted(t *testing.T) {
	srv := startServer(t, power.Thresholds{PL: units.MW(1), PH: units.MW(2)}, policy.MPC{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	startAgents(t, ctx, srv.Addr(), 8)
	time.Sleep(time.Second)
	st := srv.Status()
	if st.Cycles == 0 {
		t.Fatal("no cycles ran")
	}
	if st.BusyMicros <= 0 {
		t.Error("busy time not accounted")
	}
	if st.CPUUtilise <= 0 || st.CPUUtilise > 1 {
		t.Errorf("cpu utilisation = %v", st.CPUUtilise)
	}
}

func TestLearnerMode(t *testing.T) {
	srv, err := New(Config{
		Addr:         "127.0.0.1:0",
		Model:        power.TianheNode(),
		Policy:       policy.MPC{},
		Tg:           3,
		ControlEvery: 40 * time.Millisecond,
		Thresholds:   power.Thresholds{PL: 1, PH: 2}, // replaced by the learner
		Learn: &LearnConfig{
			PMax:     units.KW(5),
			Training: 400 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Stop)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	startAgents(t, ctx, srv.Addr(), 4)

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		st := srv.Status()
		// After training, thresholds must derive from the observed fleet
		// peak (~1 kW for 4 nodes), far below the 5 kW seed.
		if st.Cycles > 15 && st.ThresholdPHW > 100 && st.ThresholdPHW < 4650 {
			if r := st.ThresholdPLW / st.ThresholdPHW; r < 0.89 || r > 0.92 {
				t.Errorf("PL/PH = %v, want 0.84/0.93 ≈ 0.903", r)
			}
			return
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("learner never adopted fleet peak: %+v", srv.Status())
}

func TestLearnerConfigValidation(t *testing.T) {
	_, err := New(Config{
		Addr: "127.0.0.1:0", Model: power.TianheNode(), Policy: policy.MPC{},
		Tg: 3, ControlEvery: time.Second,
		Thresholds: power.Thresholds{PL: 1, PH: 2},
		Learn:      &LearnConfig{PMax: 0, Training: time.Second},
	})
	if err == nil {
		t.Error("zero learner PMax accepted")
	}
}
