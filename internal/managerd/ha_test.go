package managerd

import (
	"encoding/json"
	"net"
	"testing"
	"time"

	"repro/internal/policy"
	"repro/internal/power"
	"repro/internal/replica"
	"repro/internal/units"
	"repro/internal/wire"
)

// High-availability protocol tests: the epoch welcome/fencing handshake
// on agent connections, and the journal replication stream a standby's
// follower subscribes to.

// TestHelloEpochWelcomeAndFencing pins the fencing contract on agent
// hellos: a leader with a nonzero epoch announces it as the very first
// manager→agent frame, and a hello reporting a *newer* epoch — the agent
// has met our successor — deposes us on the spot: the hello is refused,
// leadership drops, and every agent connection is shed so the fleet
// redials to the new leader.
func TestHelloEpochWelcomeAndFencing(t *testing.T) {
	srv, err := New(Config{
		Addr:         "127.0.0.1:0",
		Model:        power.TianheNode(),
		Policy:       policy.MPC{},
		Tg:           3,
		ControlEvery: 20 * time.Millisecond,
		Thresholds:   power.Thresholds{PL: units.MW(1), PH: units.MW(2)},
		Epoch:        5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Stop)

	// A plain agent gets the epoch announcement before anything else.
	a := dialFakeAgent(t, srv.Addr(), 1, 9, 9)
	welcome, err := a.Recv()
	if err != nil || welcome.Type != wire.KindHello || welcome.Epoch != 5 {
		t.Fatalf("welcome frame: %+v err=%v", welcome, err)
	}
	if st := srv.Status(); st.Epoch != 5 || !st.Leader {
		t.Fatalf("leader status: %+v", st)
	}

	// An agent that has seen epoch 99 fences us.
	raw, err := net.DialTimeout("tcp", srv.Addr(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	stale := wire.NewConn(raw)
	t.Cleanup(func() { stale.Close() })
	if err := stale.Send(wire.Envelope{Type: wire.KindHello, Node: 2, MaxLevel: 9, Epoch: 99}); err != nil {
		t.Fatal(err)
	}
	if env, err := stale.Recv(); err == nil {
		t.Fatalf("fenced hello got a reply: %+v", env)
	}
	waitFor(t, 5*time.Second, "deposition", func() bool {
		st := srv.Status()
		return srv.Deposed() && st.FencedHellos == 1 && !st.Leader
	})
	// The first agent's connection is shed too: a deposed leader keeps no
	// one under command.
	waitFor(t, 5*time.Second, "agent shed", func() bool {
		_, err := a.Recv()
		return err != nil
	})
	if st := srv.Status(); st.Epoch != 5 {
		t.Fatalf("deposed server forgot its epoch: %+v", st)
	}
}

// TestReplicationStreamAndResume drives the follower side of the journal
// stream by hand: subscribe from zero, receive the entry each control
// cycle commits, ack it (lag drops to zero), disconnect, and resume from
// the last applied sequence without replaying history.
func TestReplicationStreamAndResume(t *testing.T) {
	srv, err := New(Config{
		Addr:           "127.0.0.1:0",
		Model:          power.TianheNode(),
		Policy:         policy.MPCC{},
		Tg:             3,
		ControlEvery:   time.Hour, // cycles driven via StepCycle
		CommandTimeout: 2 * time.Second,
		Thresholds:     power.Thresholds{PL: 1, PH: 2}, // any live fleet is red
		HeartbeatEvery: -1,
		Epoch:          1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Stop)

	// startAgent connects one hand-rolled agent: swallow the epoch
	// welcome, send a busy sample, then drain commands in the background.
	startAgent := func(id int) {
		c := dialFakeAgent(t, srv.Addr(), id, 9, 9)
		if w, err := c.Recv(); err != nil || w.Type != wire.KindHello || w.Epoch != 1 {
			t.Fatalf("agent %d welcome: %+v err=%v", id, w, err)
		}
		if err := c.Send(busySample(id, 9)); err != nil {
			t.Fatal(err)
		}
		go func() {
			for {
				if _, err := c.Recv(); err != nil {
					return
				}
			}
		}()
	}
	subscribe := func(fromSeq uint64) *wire.Conn {
		raw, err := net.DialTimeout("tcp", srv.Addr(), 2*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		fc := wire.NewConn(raw)
		t.Cleanup(func() { fc.Close() })
		if err := fc.Send(wire.Envelope{Type: wire.KindJournalAck, Seq: fromSeq}); err != nil {
			t.Fatal(err)
		}
		return fc
	}
	recvEntry := func(fc *wire.Conn) replica.Entry {
		t.Helper()
		env, err := fc.Recv()
		if err != nil || env.Type != wire.KindJournalAppend {
			t.Fatalf("append frame: %+v err=%v", env, err)
		}
		var e replica.Entry
		if err := json.Unmarshal(env.Entry, &e); err != nil {
			t.Fatal(err)
		}
		if e.Seq != env.Seq {
			t.Fatalf("envelope seq %d != entry seq %d", env.Seq, e.Seq)
		}
		return e
	}

	startAgent(1)
	fc := subscribe(0)
	waitFor(t, 5*time.Second, "sample ingested", func() bool {
		return srv.Status().SamplesReceived >= 1
	})
	waitFor(t, 5*time.Second, "follower registered", func() bool {
		return srv.Status().ReplicaConns == 1
	})

	// Cycle 1: deep red floors node 1; the committed entry streams out
	// with the levels and the first threshold publication.
	srv.StepCycle()
	e1 := recvEntry(fc)
	if e1.Seq != 1 || e1.Epoch != 1 || e1.ThrPLW != 1 {
		t.Fatalf("entry 1: %+v", e1)
	}
	found := false
	for _, l := range e1.Levels {
		if l.Node == 1 && l.Level == 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("entry 1 missing node 1 floor: %+v", e1.Levels)
	}
	if err := fc.Send(wire.Envelope{Type: wire.KindJournalAck, Seq: e1.Seq}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "lag drained", func() bool {
		st := srv.Status()
		return st.JournalAppends >= 1 && st.ReplicaLagEntries == 0
	})

	// Disconnect; the manager notices and drops the subscriber.
	fc.Close()
	waitFor(t, 5*time.Second, "follower dropped", func() bool {
		return srv.Status().ReplicaConns == 0
	})

	// A second agent joins while no follower is connected; the resumed
	// session must start exactly at the next entry, not replay history.
	startAgent(2)
	waitFor(t, 5*time.Second, "second sample ingested", func() bool {
		return srv.Status().SamplesReceived >= 2
	})
	fc2 := subscribe(srv.journal.Seq())
	waitFor(t, 5*time.Second, "follower re-registered", func() bool {
		return srv.Status().ReplicaConns == 1
	})
	srv.StepCycle()
	e2 := recvEntry(fc2)
	if e2.Seq != e1.Seq+1 {
		t.Fatalf("resumed stream replayed or skipped: %+v after %+v", e2, e1)
	}
	found = false
	for _, l := range e2.Levels {
		if l.Node == 2 && l.Level == 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("entry 2 missing node 2 floor: %+v", e2.Levels)
	}
}
