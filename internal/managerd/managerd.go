// Package managerd implements the global power manager as a network
// daemon: it accepts TCP connections from per-node profiling agents
// (internal/agentd), keeps the freshest sample per node, and runs the
// power capping algorithm (Algorithm 1) every control cycle, pushing level
// commands back down the agent connections.
//
// The daemon accounts its own busy time per cycle; Figure 5's management
// cost curve is this measured collect+estimate+select time as a fraction
// of the control period, at increasing candidate set sizes.
package managerd

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/manager"
	"repro/internal/node"
	"repro/internal/policy"
	"repro/internal/power"
	"repro/internal/units"
	"repro/internal/wire"
)

// Config parametrises the daemon.
type Config struct {
	// Addr is the TCP listen address, e.g. "127.0.0.1:7077". Port 0
	// selects an ephemeral port (see Server.Addr).
	Addr string
	// Listener, when non-nil, is served instead of binding Addr — the
	// in-process harness hands the daemon a fault-injecting in-memory
	// listener this way. The server takes ownership and closes it on Stop.
	Listener net.Listener
	// CommandTimeout bounds each actuator command send: a stalled agent
	// connection (full TCP buffer, slow reader) fails the send after this
	// long — counted in CommandErrors and the connection dropped — instead
	// of blocking the control cycle inside SetNodeLevel. Zero defaults to
	// the control period.
	CommandTimeout time.Duration
	// Model is the fleet's power profile model (formula 1 runs centrally).
	Model power.Model
	// Policy is the target set selection policy.
	Policy policy.Policy
	// Tg is Algorithm 1's steady-green patience, in cycles.
	Tg int
	// ControlEvery is the control cycle period τ.
	ControlEvery time.Duration
	// Thresholds are the administrator-set operating thresholds, used as
	// long as Learn is nil.
	Thresholds power.Thresholds
	// StaleAfter drops samples older than this from the cycle's view;
	// zero defaults to 3 control periods.
	StaleAfter time.Duration
	// Learn, when non-nil, enables §III.A threshold learning: the daemon
	// starts from Thresholds, observes the fleet's peak for Training of
	// wall time, then re-derives the thresholds from the lifetime peak
	// every AdjustEvery cycles.
	Learn *LearnConfig
}

// LearnConfig parametrises daemon-side threshold learning.
type LearnConfig struct {
	// PMax seeds the learner's initial P_peak.
	PMax units.Watts
	// Training is the uncapped observation window (wall time).
	Training time.Duration
	// AdjustEvery is t_p in control cycles; zero defaults to 60.
	AdjustEvery int
}

// agentConn is one connected agent.
type agentConn struct {
	conn     *wire.Conn
	sendMu   sync.Mutex
	maxLevel int

	last   manager.AgentReading
	lastAt time.Time
	seen   bool
}

// Server is a running manager daemon.
type Server struct {
	cfg Config
	ln  net.Listener

	mu      sync.Mutex
	agents  map[node.ID]*agentConn
	builder *manager.Builder

	// mgrMu guards mgr (the control loop cycles it while Status reads
	// its counters). It must never be held while taking mu: the
	// actuator locks mu during Cycle.
	mgrMu sync.Mutex
	mgr   *manager.Manager

	busy    time.Duration
	lastP   units.Watts
	thr     power.Thresholds
	learner *power.Learner
	started time.Time
	stale   int
	cmdErrs int

	stopOnce sync.Once
	stopCh   chan struct{}
	wg       sync.WaitGroup
}

// New validates the configuration and creates an unstarted server.
func New(cfg Config) (*Server, error) {
	if cfg.ControlEvery <= 0 {
		return nil, fmt.Errorf("managerd: need positive control period")
	}
	if err := cfg.Thresholds.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Model.Validate(); err != nil {
		return nil, err
	}
	if cfg.StaleAfter <= 0 {
		cfg.StaleAfter = 3 * cfg.ControlEvery
	}
	if cfg.CommandTimeout <= 0 {
		cfg.CommandTimeout = cfg.ControlEvery
	}
	mgr, err := manager.New(manager.Config{Tg: cfg.Tg, Policy: cfg.Policy})
	if err != nil {
		return nil, err
	}
	srv := &Server{
		cfg:     cfg,
		agents:  make(map[node.ID]*agentConn),
		builder: manager.NewBuilder(cfg.Model),
		mgr:     mgr,
		thr:     cfg.Thresholds,
		stopCh:  make(chan struct{}),
	}
	if cfg.Learn != nil {
		adj := cfg.Learn.AdjustEvery
		if adj <= 0 {
			adj = 60
		}
		learner, err := power.NewLearner(cfg.Learn.PMax, cfg.Learn.Training, adj)
		if err != nil {
			return nil, err
		}
		srv.learner = learner
	}
	return srv, nil
}

// Start binds the listener and launches the accept loop and control loop.
func (s *Server) Start() error {
	if s.cfg.Listener != nil {
		s.ln = s.cfg.Listener
	} else {
		ln, err := net.Listen("tcp", s.cfg.Addr)
		if err != nil {
			return fmt.Errorf("managerd: listen: %w", err)
		}
		s.ln = ln
	}
	s.started = time.Now()
	s.wg.Add(2)
	go s.acceptLoop()
	go s.controlLoop()
	return nil
}

// Addr returns the bound listen address (useful with port 0).
func (s *Server) Addr() string {
	if s.ln == nil {
		return s.cfg.Addr
	}
	return s.ln.Addr().String()
}

// Stop shuts the daemon down and waits for its goroutines.
func (s *Server) Stop() {
	s.stopOnce.Do(func() {
		close(s.stopCh)
		if s.ln != nil {
			s.ln.Close()
		}
		s.mu.Lock()
		for _, a := range s.agents {
			a.conn.Close()
		}
		s.mu.Unlock()
	})
	s.wg.Wait()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		raw, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.stopCh:
				return
			default:
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue
			}
			return
		}
		s.wg.Add(1)
		go s.serveConn(wire.NewConn(raw))
	}
}

// serveConn handles one inbound connection: agents send hello then a
// stream of samples; control clients send a status request and get one
// reply.
func (s *Server) serveConn(conn *wire.Conn) {
	defer s.wg.Done()
	first, err := conn.Recv()
	if err != nil {
		conn.Close()
		return
	}
	switch first.Type {
	case wire.KindStatus:
		st := s.Status()
		_ = conn.Send(wire.Envelope{Type: wire.KindStatus, Stats: &st})
		conn.Close()
		return
	case wire.KindHello:
		// fall through to the agent loop
	default:
		conn.Close()
		return
	}

	id := node.ID(first.Node)
	ac := &agentConn{conn: conn, maxLevel: first.MaxLevel}
	s.mu.Lock()
	if old, ok := s.agents[id]; ok {
		old.conn.Close()
	}
	s.agents[id] = ac
	s.mu.Unlock()

	for {
		env, err := conn.Recv()
		if err != nil {
			break
		}
		switch env.Type {
		case wire.KindSample:
			r := env.Reading()
			r.ID = id // trust the connection identity, not the payload
			r.MaxLevel = ac.maxLevel
			s.mu.Lock()
			ac.last, ac.lastAt, ac.seen = r, time.Now(), true
			s.mu.Unlock()
		case wire.KindAck:
			// informational
		}
	}
	s.mu.Lock()
	if s.agents[id] == ac {
		delete(s.agents, id)
	}
	s.mu.Unlock()
	conn.Close()
}

// actuator routes manager commands to agent connections.
type actuator struct{ s *Server }

// SetNodeLevel implements manager.Actuator. Each send carries a write
// deadline: one agent that has stopped draining its socket (slow reader,
// full TCP buffer) must cost the control cycle at most CommandTimeout,
// not stall it indefinitely. A timed-out connection is closed — its write
// stream is mid-message and unrecoverable — so the agent redials.
func (a actuator) SetNodeLevel(id node.ID, level int) error {
	a.s.mu.Lock()
	ac, ok := a.s.agents[id]
	a.s.mu.Unlock()
	if !ok {
		a.s.mu.Lock()
		a.s.cmdErrs++
		a.s.mu.Unlock()
		return fmt.Errorf("managerd: no agent for node %d", id)
	}
	ac.sendMu.Lock()
	_ = ac.conn.SetWriteDeadline(time.Now().Add(a.s.cfg.CommandTimeout))
	err := ac.conn.Send(wire.Envelope{Type: wire.KindCommand, Node: int(id), Level: level})
	_ = ac.conn.SetWriteDeadline(time.Time{})
	ac.sendMu.Unlock()
	if err != nil {
		a.s.mu.Lock()
		a.s.cmdErrs++
		a.s.mu.Unlock()
		ac.conn.Close()
	}
	return err
}

func (s *Server) controlLoop() {
	defer s.wg.Done()
	tick := time.NewTicker(s.cfg.ControlEvery)
	defer tick.Stop()
	for {
		select {
		case <-s.stopCh:
			return
		case <-tick.C:
			s.cycle()
		}
	}
}

// cycle runs one control cycle: gather fresh readings, estimate system
// power, classify, select and command. The daemon has no facility meter,
// so system power is the sum of per-node estimates — the documented
// substitution for deployments without a meter (the Observability
// assumption allows estimation "to a sufficient accuracy").
func (s *Server) cycle() {
	t0 := time.Now()

	s.mu.Lock()
	readings := make([]manager.AgentReading, 0, len(s.agents))
	for _, ac := range s.agents {
		if !ac.seen {
			continue
		}
		if time.Since(ac.lastAt) > s.cfg.StaleAfter {
			s.stale++
			continue
		}
		readings = append(readings, ac.last)
	}
	s.mu.Unlock()

	var p units.Watts
	for _, r := range readings {
		p += s.cfg.Model.Estimate(r.Delta, r.Level)
	}
	thr := s.cfg.Thresholds
	capping := true
	if s.learner != nil {
		thr = s.learner.Observe(time.Since(s.started), p)
		capping = s.learner.Trained()
	}
	s.mu.Lock()
	s.thr = thr
	s.mu.Unlock()
	snap := s.builder.Build(p, thr.PL, readings)
	if capping {
		s.mgrMu.Lock()
		_, _, _ = s.mgr.Cycle(p, thr, snap, actuator{s})
		s.mgrMu.Unlock()
	}

	s.mu.Lock()
	s.lastP = p
	s.busy += time.Since(t0)
	s.mu.Unlock()
}

// Status reports the daemon's counters, including the measured management
// cost (busy time over elapsed control time).
func (s *Server) Status() wire.StatusReply {
	s.mgrMu.Lock()
	st := s.mgr.Stats()
	s.mgrMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	rep := wire.StatusReply{
		Agents:        len(s.agents),
		Cycles:        st.Cycles,
		GreenCycles:   st.GreenCycles,
		YellowCycles:  st.YellowCycles,
		RedCycles:     st.RedCycles,
		RedEntries:    st.RedEntries,
		DegradeOps:    st.DegradeOps,
		RestoreOps:    st.RestoreOps,
		BusyMicros:    s.busy.Microseconds(),
		LastPowerW:    float64(s.lastP),
		ThresholdPLW:  float64(s.thr.PL),
		ThresholdPHW:  float64(s.thr.PH),
		DroppedStale:  s.stale,
		CommandErrors: s.cmdErrs,
	}
	if st.Cycles > 0 {
		rep.CPUUtilise = float64(s.busy) / float64(time.Duration(st.Cycles)*s.cfg.ControlEvery)
	}
	return rep
}

// QueryStatus connects to a manager daemon and fetches its status.
func QueryStatus(addr string, timeout time.Duration) (wire.StatusReply, error) {
	raw, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return wire.StatusReply{}, err
	}
	conn := wire.NewConn(raw)
	defer conn.Close()
	if err := raw.SetDeadline(time.Now().Add(timeout)); err != nil {
		return wire.StatusReply{}, err
	}
	if err := conn.Send(wire.Envelope{Type: wire.KindStatus}); err != nil {
		return wire.StatusReply{}, err
	}
	env, err := conn.Recv()
	if err != nil {
		return wire.StatusReply{}, err
	}
	if env.Type != wire.KindStatus || env.Stats == nil {
		return wire.StatusReply{}, fmt.Errorf("managerd: unexpected reply %q", env.Type)
	}
	return *env.Stats, nil
}
