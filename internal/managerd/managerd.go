// Package managerd implements the global power manager as a network
// daemon: it accepts TCP connections from per-node profiling agents
// (internal/agentd), keeps the freshest sample per node, and runs the
// power capping algorithm (Algorithm 1) every control cycle, pushing level
// commands back down the agent connections.
//
// The daemon accounts its own busy time per cycle; Figure 5's management
// cost curve is this measured collect+estimate+select time as a fraction
// of the control period, at increasing candidate set sizes.
//
// On top of the control loop sits a fail-safe layer for control-plane
// faults: commands carry sequence numbers and are retried until the agent
// acknowledges them; agent-reported levels are reconciled against the
// last acknowledged command; node health is classified each cycle
// (healthy/stale/lost/quarantined, see health.go) with reconnect-flapping
// nodes quarantined out of the candidate set; periodic heartbeats let
// agents' dead-man switches distinguish a live-but-green manager from a
// dead one; and a crash-recovery journal (journal.go) lets a restarted
// manager resume capping without a fresh training window.
//
// The actuation path is concurrent: node state is sharded (store.go) so
// sample readers, the health scanner and the control loop stop contending
// on one mutex, per-cycle shard sweeps run on a bounded worker pool, and
// commands are enqueued to per-connection sender goroutines (sender.go)
// rather than written synchronously — the cycle's fan-out cost is bounded
// by the slowest single node, not the sum of the slow ones.
package managerd

import (
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/manager"
	"repro/internal/node"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/power"
	"repro/internal/replica"
	"repro/internal/scenario"
	"repro/internal/units"
	"repro/internal/wire"
)

// Config parametrises the daemon.
type Config struct {
	// Addr is the TCP listen address, e.g. "127.0.0.1:7077". Port 0
	// selects an ephemeral port (see Server.Addr).
	Addr string
	// Listener, when non-nil, is served instead of binding Addr — the
	// in-process harness hands the daemon a fault-injecting in-memory
	// listener this way. The server takes ownership and closes it on Stop.
	Listener net.Listener
	// CommandTimeout bounds each outbound command/heartbeat write: a
	// stalled agent connection (full TCP buffer, slow reader) fails the
	// write after this long — counted in CommandErrors and the connection
	// dropped — instead of wedging its sender goroutine indefinitely. Zero
	// defaults to the control period.
	CommandTimeout time.Duration
	// Model is the fleet's power profile model (formula 1 runs centrally).
	Model power.Model
	// Policy is the target set selection policy.
	Policy policy.Policy
	// Tg is Algorithm 1's steady-green patience, in cycles.
	Tg int
	// ControlEvery is the control cycle period τ.
	ControlEvery time.Duration
	// Thresholds are the administrator-set operating thresholds, used as
	// long as Learn is nil.
	Thresholds power.Thresholds
	// StaleAfter marks samples older than this stale (dropped from the
	// cycle's view); zero defaults to 3 control periods.
	StaleAfter time.Duration
	// LostAfter marks a node lost when its newest sample is older than
	// this (a disconnected node is lost immediately). Zero defaults to
	// 3×StaleAfter; values below StaleAfter are clamped up to it.
	LostAfter time.Duration
	// FlapWindow and FlapLimit drive quarantine: FlapLimit or more
	// (re)connects within FlapWindow quarantines the node. Zero FlapWindow
	// defaults to 15s; zero FlapLimit defaults to 6; negative FlapLimit
	// disables quarantine.
	FlapWindow time.Duration
	FlapLimit  int
	// Quarantine is the minimum time a quarantined node stays excluded
	// from the candidate set; zero defaults to 30s.
	Quarantine time.Duration
	// HeartbeatEvery sends a ping to every agent each this many control
	// cycles, so agent dead-man switches see manager liveness even through
	// long green stretches with no commands. Zero defaults to 1; negative
	// disables heartbeats.
	HeartbeatEvery int
	// JournalPath, when non-empty, enables the crash-recovery journal:
	// learner state and last-commanded levels are snapshotted there every
	// JournalEvery cycles (and on clean Stop), and reloaded by New.
	JournalPath string
	// JournalEvery is the journal snapshot period in control cycles; zero
	// defaults to the learner's adjustment period (or 60 without a
	// learner).
	JournalEvery int
	// Shards is the number of node-state shards, rounded up to a power of
	// two. More shards cut contention between agent readers, the health
	// scanner and the control loop at large fleets; zero defaults to 32.
	Shards int
	// FanoutWorkers bounds the worker pool sweeping the shards each
	// control cycle (health scan, sample collection, command upkeep).
	// Zero defaults to GOMAXPROCS.
	FanoutWorkers int
	// Learn, when non-nil, enables §III.A threshold learning: the daemon
	// starts from Thresholds, observes the fleet's peak for Training of
	// wall time, then re-derives the thresholds from the lifetime peak
	// every AdjustEvery cycles.
	Learn *LearnConfig
	// MetricsAddr, when non-empty, serves GET /metrics (Prometheus text
	// exposition of the obs registry) and GET /debug/cycles (the last-N
	// staged cycle timelines as JSON) on this address. Port 0 selects an
	// ephemeral port (see Server.MetricsAddr).
	MetricsAddr string
	// CycleHistory is how many staged cycle timelines the daemon retains
	// for /debug/cycles; zero defaults to obs.DefaultCycleHistory.
	CycleHistory int
	// ExternalControl turns the daemon into a transport gateway: the
	// wall-clock control loop is not started, and an external driver runs
	// the control law by pushing sense epochs and cycling through
	// StartExternalCycle (external.go). The daemon backend uses this to
	// run core's Algorithm 1 — the one control law — over the wire on a
	// virtual clock.
	ExternalControl bool

	// --- High availability (replicate.go, internal/replica) ---

	// Epoch is this server's leadership epoch. Zero disables fencing
	// unless a Lease is set, in which case the epoch is derived from the
	// lease file (its epoch + 1, or 1 when no lease exists yet).
	Epoch uint64
	// Lease, when non-nil, is the leadership lease: renewed every
	// Lease.Every while the server runs, watched by standbys. A higher
	// epoch appearing in it deposes this server (see Server.depose).
	Lease *replica.Lease
	// LeaseHolder names this instance in the lease file.
	LeaseHolder string
	// Journal, when non-nil, is adopted as the crash-recovery journal in
	// place of opening JournalPath — the promoted-standby path hands its
	// replicated copy over this way.
	Journal *replica.Store
	// TakeoverMicros, when positive, records how long the fleet was
	// leaderless before this server took over (a promoted standby passes
	// its measured outage; surfaced as last_takeover_micros and observed
	// into the takeover_micros histogram).
	TakeoverMicros int64
	// ReplicaAddr, when non-empty, binds a second listener served
	// identically to Addr — a dedicated endpoint for journal followers
	// and status probes that keeps replication off the agent accept path.
	ReplicaAddr string

	// WireCodec selects the preferred wire codec negotiated with agents
	// and journal followers at hello: "binary" (also the "" default)
	// switches peers that advertise binary support onto the
	// length-prefixed checksummed codec; "json" pins every connection to
	// the newline-JSON reference codec. The read side always accepts
	// both, so mixed fleets and rolling upgrades need no coordination.
	WireCodec string

	// --- Capping federation (federate.go) ---

	// CoordinatorAddr, when non-empty, puts the daemon in governed mode:
	// it manages one cabinet of a federated fleet, dialing the
	// coordinator at this address, streaming cab_report frames and
	// running under the power band granted in cab_budget frames instead
	// of static Thresholds. Mutually exclusive with Learn (the
	// coordinator owns the global budget; a cabinet must not re-derive
	// its own).
	CoordinatorAddr string
	// CoordinatorDial, when non-nil, replaces the TCP dial to
	// CoordinatorAddr — the harness injects faultnet connections here.
	// Setting it alone (empty CoordinatorAddr) also enables governed
	// mode.
	CoordinatorDial func() (net.Conn, error)
	// Cabinet is this manager's cabinet index, carried on every report so
	// the coordinator knows which breaker column it is (pdist.CabinetOf).
	Cabinet int
	// ReportEvery is the cab_report period; zero defaults to ControlEvery.
	ReportEvery time.Duration
	// BudgetGrace is how many control periods the daemon keeps enforcing
	// its last grant after coordinator silence before flooring itself to
	// FailsafeBudget — the cabinet-tier dead-man switch, mirroring
	// agentd's. Zero defaults to 3.
	BudgetGrace int
	// FailsafeBudget is the band enforced while the coordinator is
	// silent beyond the grace window. Zero-value defaults to Thresholds
	// (hold the static band); a deliberately low band makes an isolated
	// cabinet shed to its floor, which is the paper's safe posture for a
	// cabinet that can no longer see the global budget.
	FailsafeBudget power.Thresholds

	// RecordCycle, when non-nil, receives one scenario.CycleRecord per
	// capping cycle — the sensed power, thresholds in force, classified
	// state, candidate snapshot and the Algorithm-1 actions issued. The
	// records feed scenario.CheckAlgorithmOne in federation tests, so
	// the daemon's control law is checked by the same invariant checker
	// as the simulator's. Called from the control-loop goroutine.
	RecordCycle func(scenario.CycleRecord)
}

// LearnConfig parametrises daemon-side threshold learning.
type LearnConfig struct {
	// PMax seeds the learner's initial P_peak.
	PMax units.Watts
	// Training is the uncapped observation window (wall time).
	Training time.Duration
	// AdjustEvery is t_p in control cycles; zero defaults to 60.
	AdjustEvery int
}

// agentConn is one connected agent: the connection, the freshest reading,
// and the outbox feeding the connection's sender goroutine (sender.go).
type agentConn struct {
	id       node.ID
	conn     *wire.Conn
	maxLevel int
	binary   bool // negotiated onto the binary codec (set before registration)

	// Freshest reading; guarded by the owning shard's mutex. lastEpoch
	// stamps which external sense epoch the reading arrived in (zero for
	// readings outside any epoch, e.g. the hello seed); the external
	// cycle's collect filters on it instead of wall-clock staleness.
	last      manager.AgentReading
	lastAt    time.Time
	seen      bool
	lastEpoch uint64

	// Outbox; guarded by obMu (ordered strictly below shard mutexes).
	// obCmd is held by value with obHas as its presence flag: a command
	// enqueue is a struct copy into memory the connection already owns,
	// so the steady-state fan-out path allocates nothing per command.
	obMu     sync.Mutex
	obCmd    pendingCmd
	obHas    bool
	obPing   bool
	obClosed bool
	wake     chan struct{}
}

// cmdState tracks the lifecycle of the newest command issued to one node.
// A command stays in flight (acked=false) until the agent echoes its
// sequence number; unacked commands are retried each cycle, and an acked
// level that later disagrees with the agent's reported level triggers
// reconciliation under a fresh sequence number. All access under the
// owning shard's mutex.
type cmdState struct {
	level     int
	seq       uint64
	sentCycle int
	acked     bool
	retries   int
}

// Server is a running manager daemon.
type Server struct {
	cfg Config
	ln  net.Listener

	// nodes is the sharded per-node state (connections, in-flight
	// commands, health records); see store.go for the locking contract.
	nodes *store

	// builder is touched only by the control-loop goroutine.
	builder *manager.Builder

	// Cycle scratch, reused so steady-state sensing allocates nothing per
	// cycle. cycleMu serializes cycles outright (the ticker loop and an
	// explicit StepCycle could otherwise interleave) and makes the
	// scratch single-owner; it is taken before, and never while holding,
	// any other lock.
	cycleMu     sync.Mutex
	cycleParts  []cyclePart
	candScratch []manager.AgentReading

	// mgrMu guards mgr (the control loop cycles it while Status reads its
	// counters). It may be held while taking a shard mutex (the actuator
	// does, inside Cycle); never the reverse.
	mgrMu sync.Mutex
	mgr   *manager.Manager

	// stateMu guards the control-plane scalars below.
	stateMu sync.Mutex
	thr     power.Thresholds // current thresholds, persisted by the journal

	learner *power.Learner // touched only by the control-loop goroutine (and New/Stop)
	started time.Time

	// Protocol state (not telemetry): the cycle number stamps commands,
	// seq numbers commands, extEpoch stamps external sense epochs.
	cycleN   atomic.Int64
	seq      atomic.Uint64
	extEpoch atomic.Uint64 // current external sense epoch (external.go)

	// reg is the daemon's instrument registry — the single source of
	// truth behind StatusReply, /metrics and the simulator's Stats — and
	// trace records each cycle's staged timeline for /debug/cycles. The
	// instrument pointers below are cached at New; their names are the
	// obs tags on wire.StatusReply.
	reg   *obs.Registry
	trace *obs.CycleRecorder

	samplesRecv   *obs.Counter // samples accepted over the wire
	stale         *obs.Counter
	cmdErrs       *obs.Counter
	staleConnErrs *obs.Counter
	cmdAcks       *obs.Counter
	cmdRetries    *obs.Counter
	reconciles    *obs.Counter
	quarantines   *obs.Counter
	journalWrites *obs.Counter
	coalesced     *obs.Counter
	decodeErrs    *obs.Counter // corrupt frames tolerated and skipped
	cyclesC       *obs.Counter // control cycles completed (cached for Status)

	busyMicros        *obs.Gauge
	cpuUtilise        *obs.Gauge
	lastPowerW        *obs.Gauge
	plW, phW          *obs.Gauge
	trainedG          *obs.Gauge
	lifetimePeakW     *obs.Gauge
	lastCycleMicros   *obs.Gauge
	maxCycleMicros    *obs.Gauge
	lastFanoutMicros  *obs.Gauge
	maxFanoutMicros   *obs.Gauge
	lastCollectMicros *obs.Gauge
	collectMicros     *obs.Gauge
	agentsG           *obs.Gauge
	driftedG          *obs.Gauge
	healthyG          *obs.Gauge
	staleNodesG       *obs.Gauge
	lostG             *obs.Gauge
	quarNodesG        *obs.Gauge

	metricsLn  net.Listener
	metricsSrv *http.Server

	// High-availability state (replicate.go). journal doubles as the
	// crash-recovery store and the replication source; epoch is fixed at
	// New. pub owns the follower subscriptions (replica.Publisher).
	journal   *replica.Store
	epoch     uint64
	deposed   atomic.Bool
	replicaLn net.Listener
	pub       *replica.Publisher

	journalAppends *obs.Counter
	fencedHellos   *obs.Counter
	epochG         *obs.Gauge
	leaderG        *obs.Gauge
	replicaConnsG  *obs.Gauge
	replicaLagG    *obs.Gauge
	lastTakeoverG  *obs.Gauge

	// Federation state (federate.go); nil unless governed.
	fed           *fedClient
	budgetGrantsC *obs.Counter
	budgetFloorsC *obs.Counter
	governedG     *obs.Gauge
	demandWG      *obs.Gauge
	binConnsG     *obs.Gauge
	jsonConnsG    *obs.Gauge

	stopOnce sync.Once
	stopCh   chan struct{}
	wg       sync.WaitGroup
}

// New validates the configuration and creates an unstarted server. When
// JournalPath names a readable journal, the learner state and
// last-commanded levels are restored from it — the daemon resumes capping
// without a fresh training window and reconciles reconnecting agents
// against the journaled levels.
func New(cfg Config) (*Server, error) {
	if cfg.ControlEvery <= 0 {
		return nil, fmt.Errorf("managerd: need positive control period")
	}
	if err := cfg.Thresholds.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Model.Validate(); err != nil {
		return nil, err
	}
	if cfg.Shards < 0 || cfg.FanoutWorkers < 0 {
		return nil, fmt.Errorf("managerd: negative shard/worker count")
	}
	if cfg.StaleAfter <= 0 {
		cfg.StaleAfter = 3 * cfg.ControlEvery
	}
	if cfg.LostAfter <= 0 {
		cfg.LostAfter = 3 * cfg.StaleAfter
	}
	if cfg.LostAfter < cfg.StaleAfter {
		cfg.LostAfter = cfg.StaleAfter
	}
	if cfg.FlapWindow <= 0 {
		cfg.FlapWindow = 15 * time.Second
	}
	if cfg.FlapLimit == 0 {
		cfg.FlapLimit = 6
	}
	if cfg.Quarantine <= 0 {
		cfg.Quarantine = 30 * time.Second
	}
	if cfg.HeartbeatEvery == 0 {
		cfg.HeartbeatEvery = 1
	}
	if cfg.CommandTimeout <= 0 {
		cfg.CommandTimeout = cfg.ControlEvery
	}
	if cfg.Shards == 0 {
		cfg.Shards = 32
	}
	if cfg.FanoutWorkers == 0 {
		cfg.FanoutWorkers = runtime.GOMAXPROCS(0)
	}
	switch cfg.WireCodec {
	case "", wire.CodecBinary, wire.CodecJSON:
	default:
		return nil, fmt.Errorf("managerd: unknown wire codec %q", cfg.WireCodec)
	}
	governed := cfg.CoordinatorAddr != "" || cfg.CoordinatorDial != nil
	if governed {
		if cfg.Learn != nil {
			return nil, fmt.Errorf("managerd: governed mode is incompatible with threshold learning (the coordinator owns the budget)")
		}
		if cfg.Cabinet < 0 {
			return nil, fmt.Errorf("managerd: negative cabinet index %d", cfg.Cabinet)
		}
		if cfg.ReportEvery <= 0 {
			cfg.ReportEvery = cfg.ControlEvery
		}
		if cfg.BudgetGrace <= 0 {
			cfg.BudgetGrace = 3
		}
		if cfg.FailsafeBudget == (power.Thresholds{}) {
			cfg.FailsafeBudget = cfg.Thresholds
		}
		if err := cfg.FailsafeBudget.Validate(); err != nil {
			return nil, fmt.Errorf("managerd: failsafe budget: %w", err)
		}
	}
	reg := obs.NewRegistry()
	trace := obs.NewCycleRecorder(cfg.CycleHistory, reg)
	mgr, err := manager.New(manager.Config{Tg: cfg.Tg, Policy: cfg.Policy, Obs: reg, Trace: trace})
	if err != nil {
		return nil, err
	}
	srv := &Server{
		cfg:     cfg,
		nodes:   newStore(cfg.Shards),
		builder: manager.NewBuilder(cfg.Model),
		mgr:     mgr,
		thr:     cfg.Thresholds,
		stopCh:  make(chan struct{}),
		reg:     reg,
		trace:   trace,

		samplesRecv:   reg.Counter("samples_received"),
		stale:         reg.Counter("dropped_stale"),
		cmdErrs:       reg.Counter("command_errors"),
		staleConnErrs: reg.Counter("stale_conn_errors"),
		cmdAcks:       reg.Counter("command_acks"),
		cmdRetries:    reg.Counter("command_retries"),
		reconciles:    reg.Counter("reconciles"),
		quarantines:   reg.Counter("quarantines"),
		journalWrites: reg.Counter("journal_writes"),
		coalesced:     reg.Counter("coalesced_cmds"),
		decodeErrs:    reg.Counter("decode_errors"),
		cyclesC:       reg.Counter("cycles"),

		journalAppends: reg.Counter("journal_appends"),
		fencedHellos:   reg.Counter("fenced_hellos"),

		busyMicros:        reg.Gauge("busy_micros"),
		cpuUtilise:        reg.Gauge("cpu_utilisation"),
		lastPowerW:        reg.Gauge("last_power_w"),
		plW:               reg.Gauge("pl_w"),
		phW:               reg.Gauge("ph_w"),
		trainedG:          reg.Gauge("trained"),
		lifetimePeakW:     reg.Gauge("lifetime_peak_w"),
		lastCycleMicros:   reg.Gauge("last_cycle_micros"),
		maxCycleMicros:    reg.Gauge("max_cycle_micros"),
		lastFanoutMicros:  reg.Gauge("last_fanout_micros"),
		maxFanoutMicros:   reg.Gauge("max_fanout_micros"),
		lastCollectMicros: reg.Gauge("last_collect_micros"),
		collectMicros:     reg.Gauge("collect_micros"),
		agentsG:           reg.Gauge("agents"),
		driftedG:          reg.Gauge("drifted"),
		healthyG:          reg.Gauge("healthy_nodes"),
		staleNodesG:       reg.Gauge("stale_nodes"),
		lostG:             reg.Gauge("lost_nodes"),
		quarNodesG:        reg.Gauge("quarantined_nodes"),

		epochG:        reg.Gauge("epoch"),
		leaderG:       reg.Gauge("leader"),
		replicaConnsG: reg.Gauge("replica_conns"),
		replicaLagG:   reg.Gauge("replica_lag_entries"),
		lastTakeoverG: reg.Gauge("last_takeover_micros"),

		budgetGrantsC: reg.Counter("budget_grants"),
		budgetFloorsC: reg.Counter("budget_floors"),
		governedG:     reg.Gauge("governed"),
		demandWG:      reg.Gauge("demand_w"),
		binConnsG:     reg.Gauge("binary_conns"),
		jsonConnsG:    reg.Gauge("json_conns"),
	}
	reg.Gauge("shards").SetInt(int64(len(srv.nodes.shards)))
	reg.Gauge("cabinet").SetInt(int64(cfg.Cabinet))
	if governed {
		srv.fed = newFedClient(srv)
	}
	srv.plW.Set(float64(cfg.Thresholds.PL))
	srv.phW.Set(float64(cfg.Thresholds.PH))
	srv.trainedG.Set(1) // fixed thresholds cap from the first cycle
	adj := 60
	if cfg.Learn != nil {
		if cfg.Learn.AdjustEvery > 0 {
			adj = cfg.Learn.AdjustEvery
		}
		learner, err := power.NewLearner(cfg.Learn.PMax, cfg.Learn.Training, adj)
		if err != nil {
			return nil, err
		}
		srv.learner = learner
		srv.trainedG.Set(b2f(learner.Trained()))
	}
	if srv.cfg.JournalEvery <= 0 {
		srv.cfg.JournalEvery = adj
	}
	// The journal is advisory: any open or validation error (missing file
	// included) just means a cold start on a memory-only store.
	srv.journal = openJournal(srv.cfg)
	srv.pub = replica.NewPublisher(srv.journal, cfg.CommandTimeout)
	if !srv.journal.Empty() {
		srv.restoreFromJournal(srv.journal.State())
	}
	// Leadership epoch: explicit config wins; otherwise a lease implies
	// HA, so claim the epoch after whatever the lease file last recorded.
	// The journal's epoch (e.g. a handed-over replica copy) is a floor.
	epoch := cfg.Epoch
	if epoch == 0 && cfg.Lease != nil {
		if st, err := cfg.Lease.Read(); err == nil {
			epoch = st.Epoch + 1
		} else {
			epoch = 1
		}
	}
	if je := srv.journal.Epoch(); je > epoch {
		epoch = je
	}
	srv.epoch = epoch
	srv.journal.SetEpoch(epoch)
	srv.epochG.SetInt(int64(epoch))
	srv.leaderG.Set(1)
	if cfg.TakeoverMicros > 0 {
		srv.lastTakeoverG.SetInt(cfg.TakeoverMicros)
		reg.Histogram("takeover_micros").Observe(float64(cfg.TakeoverMicros))
	}
	return srv, nil
}

// Start binds the listeners and launches the accept, control, heartbeat
// and (when MetricsAddr is set) observability HTTP loops.
func (s *Server) Start() error {
	if s.cfg.MetricsAddr != "" {
		mln, err := net.Listen("tcp", s.cfg.MetricsAddr)
		if err != nil {
			return fmt.Errorf("managerd: metrics listen: %w", err)
		}
		s.metricsLn = mln
		s.metricsSrv = &http.Server{Handler: obs.NewMux(s.reg, s.trace, s.refreshGauges)}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			_ = s.metricsSrv.Serve(mln)
		}()
	}
	if s.cfg.Listener != nil {
		s.ln = s.cfg.Listener
	} else {
		ln, err := net.Listen("tcp", s.cfg.Addr)
		if err != nil {
			if s.metricsSrv != nil {
				s.metricsSrv.Close()
			}
			return fmt.Errorf("managerd: listen: %w", err)
		}
		s.ln = ln
	}
	if s.cfg.ReplicaAddr != "" {
		rln, err := net.Listen("tcp", s.cfg.ReplicaAddr)
		if err != nil {
			s.ln.Close()
			if s.metricsSrv != nil {
				s.metricsSrv.Close()
			}
			return fmt.Errorf("managerd: replica listen: %w", err)
		}
		s.replicaLn = rln
		s.wg.Add(1)
		go s.acceptLoopOn(rln)
	}
	if s.cfg.Lease != nil {
		// Claim the lease synchronously so a standby started right after
		// us immediately sees a live leader.
		_ = s.cfg.Lease.Write(replica.LeaseState{
			Epoch: s.epoch, Holder: s.cfg.LeaseHolder, RenewedAt: time.Now(),
		})
		s.wg.Add(1)
		go s.renewLoop()
	}
	s.started = time.Now()
	if s.fed != nil {
		s.fed.start()
		s.wg.Add(1)
		go s.fed.run()
	}
	s.wg.Add(1)
	go s.acceptLoop()
	if !s.cfg.ExternalControl {
		s.wg.Add(1)
		go s.controlLoop()
	}
	if s.cfg.HeartbeatEvery > 0 {
		s.wg.Add(1)
		go s.heartbeatLoop()
	}
	return nil
}

// Addr returns the bound listen address (useful with port 0).
func (s *Server) Addr() string {
	if s.ln == nil {
		return s.cfg.Addr
	}
	return s.ln.Addr().String()
}

// MetricsAddr returns the bound observability HTTP address (useful with
// port 0); empty when metrics serving is disabled.
func (s *Server) MetricsAddr() string {
	if s.metricsLn == nil {
		return s.cfg.MetricsAddr
	}
	return s.metricsLn.Addr().String()
}

// Obs returns the daemon's instrument registry.
func (s *Server) Obs() *obs.Registry { return s.reg }

// CycleTrace returns the daemon's staged cycle recorder.
func (s *Server) CycleTrace() *obs.CycleRecorder { return s.trace }

// Stop shuts the daemon down, waits for its goroutines, and writes a
// final journal snapshot so a clean restart resumes exactly where this
// instance left off.
func (s *Server) Stop() {
	s.stopOnce.Do(func() {
		close(s.stopCh)
		if s.fed != nil {
			s.fed.closeConn()
		}
		if s.metricsSrv != nil {
			s.metricsSrv.Close()
		}
		if s.ln != nil {
			s.ln.Close()
		}
		if s.replicaLn != nil {
			s.replicaLn.Close()
		}
		s.pub.Close()
		for _, sh := range s.nodes.shards {
			sh.mu.Lock()
			acs := make([]*agentConn, 0, len(sh.agents))
			for _, ac := range sh.agents {
				acs = append(acs, ac)
			}
			sh.mu.Unlock()
			// Closing the conn unblocks both the reader (serveConn) and a
			// sender mid-write; each path retires the outbox on its way out.
			for _, ac := range acs {
				ac.conn.Close()
				s.retireOutbox(ac)
			}
		}
	})
	s.wg.Wait()
	s.writeJournal()
	s.journal.Close()
}

// acceptLoop accepts agent and status connections until the server stops.
// Transient Accept failures (accept queue hiccups, temporary resource
// exhaustion, injected timeouts) are retried under capped exponential
// backoff rather than busy-spinning or killing the daemon; only a stop or
// the listener actually closing ends the loop.
func (s *Server) acceptLoop() {
	s.acceptLoopOn(s.ln)
}

// acceptLoopOn runs the accept loop over one listener; the replica
// endpoint (ReplicaAddr) gets its own instance serving identically.
func (s *Server) acceptLoopOn(ln net.Listener) {
	defer s.wg.Done()
	const (
		backoffMin = 5 * time.Millisecond
		backoffMax = 500 * time.Millisecond
	)
	backoff := backoffMin
	for {
		raw, err := ln.Accept()
		if err != nil {
			select {
			case <-s.stopCh:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			select {
			case <-s.stopCh:
				return
			case <-time.After(backoff):
			}
			if backoff *= 2; backoff > backoffMax {
				backoff = backoffMax
			}
			continue
		}
		backoff = backoffMin
		s.wg.Add(1)
		go s.serveConn(wire.NewConn(raw))
	}
}

// binaryWanted reports whether the peer behind this hello/subscribe
// frame should be switched onto the binary codec: it advertised support
// and the configuration does not pin JSON.
func (s *Server) binaryWanted(first *wire.Envelope) bool {
	return s.cfg.WireCodec != wire.CodecJSON && first.Advertises(wire.CodecBinary)
}

// serveConn handles one inbound connection: agents send hello then a
// stream of samples and command acks; control clients send a status
// request and get one reply.
func (s *Server) serveConn(conn *wire.Conn) {
	defer s.wg.Done()
	first, err := conn.Recv()
	if err != nil {
		conn.Close()
		return
	}
	switch first.Type {
	case wire.KindStatus:
		st := s.Status()
		reply := wire.Envelope{Type: wire.KindStatus, Stats: &st}
		// A probe advertising codecs (powctl -codec) is told which codec
		// this daemon would negotiate with it — without switching the
		// reply itself off JSON, so any probe can read the answer.
		if len(first.Codecs) > 0 {
			if s.binaryWanted(&first) {
				reply.Codec = wire.CodecBinary
			} else {
				reply.Codec = wire.CodecJSON
			}
		}
		_ = conn.Send(reply)
		conn.Close()
		return
	case wire.KindJournalAck:
		// A journal follower subscribing from its current sequence.
		s.serveReplica(conn, first)
		return
	case wire.KindHello:
		// fall through to the agent loop
	default:
		conn.Close()
		return
	}

	// Epoch fencing. An agent that has seen a newer leader tells us in
	// its hello: we are deposed and must not command it.
	if s.epoch > 0 && first.Epoch > s.epoch {
		s.fencedHellos.Inc()
		s.depose()
		conn.Close()
		return
	}
	// Codec negotiation rides the same hello reply as the epoch
	// announcement: the reply is guaranteed to be the first manager→agent
	// frame (the sender goroutine starts below), so the agent knows the
	// chosen codec before any command arrives. The reply itself is always
	// JSON — EnableBinary flips only frames after it — which keeps the
	// negotiation readable by any peer.
	wantBin := s.binaryWanted(&first)
	if s.epoch > 0 || wantBin {
		reply := wire.Envelope{Type: wire.KindHello, Epoch: s.epoch}
		if wantBin {
			reply.Codec = wire.CodecBinary
		}
		if err := conn.Send(reply); err != nil {
			conn.Close()
			return
		}
		if wantBin {
			conn.EnableBinary()
		}
	}

	id := node.ID(first.Node)
	ac := &agentConn{id: id, conn: conn, maxLevel: first.MaxLevel, binary: wantBin, wake: make(chan struct{}, 1)}
	// Seed the record from the hello's self-reported level: a manager
	// coming back from a crash learns every node's actual level before
	// the first sample arrives, so reconciliation can start immediately.
	lvl := first.Level
	if lvl < 0 {
		lvl = 0
	}
	if lvl > ac.maxLevel {
		lvl = ac.maxLevel
	}
	now := time.Now()
	ac.last = manager.AgentReading{ID: id, Level: lvl, MaxLevel: ac.maxLevel}
	ac.lastAt = now
	ac.seen = true
	sh := s.nodes.of(id)
	sh.mu.Lock()
	old := sh.agents[id]
	sh.agents[id] = ac
	connTally(sh, ac, +1)
	if old != nil {
		// The replaced connection's own teardown will see itself already
		// deregistered, so its tally is settled here.
		connTally(sh, old, -1)
	}
	noteConnect(sh, id, now, &s.cfg, s.quarantines)
	sh.mu.Unlock()
	if old != nil {
		// A redial replaced the connection: retire the old epoch so its
		// sender exits and any failure it still surfaces is not charged to
		// the node (see noteSendError).
		old.conn.Close()
		s.retireOutbox(old)
	}
	s.wg.Add(1)
	go s.runSender(ac)

	var env wire.Envelope
	for {
		if err := conn.RecvInto(&env); err != nil {
			// Corrupt frames (checksum mismatch, undecodable JSON line)
			// are counted and skipped — the framing layer has already
			// resynchronised past them — so line noise degrades telemetry
			// freshness instead of killing the connection. Fatal decode
			// errors (desynchronised stream, oversized frame) and I/O
			// errors still drop the connection; the agent redials.
			var de *wire.DecodeError
			if errors.As(err, &de) && de.Recoverable() {
				s.decodeErrs.Inc()
				continue
			}
			break
		}
		switch env.Type {
		case wire.KindSample:
			r := env.Reading()
			r.ID = id // trust the connection identity, not the payload
			r.MaxLevel = ac.maxLevel
			epoch := s.extEpoch.Load()
			sh.mu.Lock()
			ac.last, ac.lastAt, ac.seen = r, time.Now(), true
			ac.lastEpoch = epoch
			sh.mu.Unlock()
			s.samplesRecv.Inc()
		case wire.KindAck:
			sh.mu.Lock()
			if cs := sh.cmds[id]; cs != nil && env.Seq != 0 && cs.seq == env.Seq {
				if !cs.acked {
					s.cmdAcks.Inc()
				}
				cs.acked = true
				cs.level = env.Level
				ac.last.Level = env.Level
				s.journal.SetLevel(int(id), env.Level)
			}
			sh.mu.Unlock()
		}
	}
	sh.mu.Lock()
	if sh.agents[id] == ac {
		delete(sh.agents, id)
		connTally(sh, ac, -1)
	}
	sh.mu.Unlock()
	s.retireOutbox(ac)
	conn.Close()
}

// connTally adjusts the shard's per-codec connection counts for one
// registered agent connection. Caller holds sh.mu.
func connTally(sh *shard, ac *agentConn, d int) {
	if ac.binary {
		sh.nBin += d
	} else {
		sh.nJSON += d
	}
}

// actuator routes manager commands to agent connections, tagging each
// dispatch with the issuing cycle's fan-out tracker.
type actuator struct {
	s   *Server
	fan *fanout
}

// SetNodeLevel implements manager.Actuator: assign a sequence number,
// record the command in flight, and enqueue it to the node's sender.
// Recording happens before the enqueue, so the journal (which reads cmds
// under the shard locks) always sees the newest commanded level — a
// snapshot taken mid-fan-out can never persist a superseded one. Unacked
// commands are retried by maintainCommands on subsequent cycles.
func (a actuator) SetNodeLevel(id node.ID, level int) error {
	s := a.s
	sh := s.nodes.of(id)
	sh.mu.Lock()
	ac, ok := sh.agents[id]
	if !ok {
		sh.mu.Unlock()
		s.cmdErrs.Inc()
		return fmt.Errorf("managerd: no agent for node %d", id)
	}
	seq := s.seq.Add(1)
	sh.cmds[id] = &cmdState{level: level, seq: seq, sentCycle: int(s.cycleN.Load())}
	// Mirror into the journal under the same shard lock, so the mirror
	// orders level updates exactly as cmds does (the store's own mutex is
	// a leaf below the shard mutexes).
	s.journal.SetLevel(int(id), level)
	sh.mu.Unlock()
	s.dispatch(ac, level, seq, a.fan)
	return nil
}

// dispatch hands one command to a node's sender, claiming a fan-out slot
// for it. An outbox closed mid-teardown just drops the write — the
// command stays recorded in cmds and the retry path re-sends it once the
// node redials.
func (s *Server) dispatch(ac *agentConn, level int, seq uint64, fan *fanout) {
	if fan != nil {
		fan.add()
	}
	ok, superseded := ac.enqueueCommand(pendingCmd{level: level, seq: seq, fan: fan})
	if !ok {
		if fan != nil {
			fan.complete()
		}
		return
	}
	if superseded {
		s.coalesced.Inc()
	}
}

func (s *Server) controlLoop() {
	defer s.wg.Done()
	tick := time.NewTicker(s.cfg.ControlEvery)
	defer tick.Stop()
	for {
		select {
		case <-s.stopCh:
			return
		case <-tick.C:
			s.cycle()
		}
	}
}

// heartbeatLoop raises the ping flag on every connected agent's outbox
// each HeartbeatEvery control cycles. The pings carry no payload; their
// only job is to feed the agents' dead-man switches so a node behind a
// live manager never self-degrades just because the fleet has been green
// (no commands) for a long stretch. The senders fold a pending ping into
// their next write, so a slow reader stalls only its own heartbeat.
func (s *Server) heartbeatLoop() {
	defer s.wg.Done()
	tick := time.NewTicker(time.Duration(s.cfg.HeartbeatEvery) * s.cfg.ControlEvery)
	defer tick.Stop()
	for {
		select {
		case <-s.stopCh:
			return
		case <-tick.C:
			for _, sh := range s.nodes.shards {
				sh.mu.Lock()
				acs := make([]*agentConn, 0, len(sh.agents))
				for _, ac := range sh.agents {
					acs = append(acs, ac)
				}
				sh.mu.Unlock()
				for _, ac := range acs {
					ac.enqueuePing()
				}
			}
		}
	}
}

// forEachShard sweeps every shard through fn on a bounded worker pool
// (FanoutWorkers wide). fn receives distinct shards concurrently, never
// the same shard twice, so per-shard results can be written to a slice
// indexed by shard without locking.
func (s *Server) forEachShard(fn func(i int, sh *shard)) {
	n := len(s.nodes.shards)
	workers := s.cfg.FanoutWorkers
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i, sh := range s.nodes.shards {
			fn(i, sh)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i, s.nodes.shards[i])
			}
		}()
	}
	wg.Wait()
}

// cyclePart is one shard's sensing accumulator, reused across cycles
// (slices keep their capacity; see Server.cycleParts).
type cyclePart struct {
	readings   []manager.AgentReading
	candidates []manager.AgentReading
	p          units.Watts
	demand     units.Watts
	stale      int
}

// cycle runs one control cycle: gather fresh readings, estimate system
// power, classify, select and command. The daemon has no facility meter,
// so system power is the sum of per-node estimates — the documented
// substitution for deployments without a meter (the Observability
// assumption allows estimation "to a sufficient accuracy").
//
// Quarantined nodes contribute to the power estimate but are excluded
// from the policy snapshot: per §II.A they are treated as
// A_uncontrollable — their consumption is real, but commands down a
// flapping link are wasted.
//
// The returned fan-out tracker completes once every command the cycle
// issued has been written or abandoned; the cycle itself does not wait
// for it (the senders run concurrently).
func (s *Server) cycle() *fanout {
	s.cycleMu.Lock()
	defer s.cycleMu.Unlock()
	t0 := time.Now()
	cycleN := int(s.cycleN.Add(1))
	span := s.trace.Begin()
	fan := s.newFanout(t0, span)

	if len(s.cycleParts) != len(s.nodes.shards) {
		s.cycleParts = make([]cyclePart, len(s.nodes.shards))
	}
	parts := s.cycleParts
	governed := s.fed != nil
	s.forEachShard(func(i int, sh *shard) {
		g := &parts[i]
		g.readings = g.readings[:0]
		g.candidates = g.candidates[:0]
		g.p, g.demand, g.stale = 0, 0, 0
		drift := 0
		sh.mu.Lock()
		updateHealth(sh, t0, &s.cfg)
		for id, ac := range sh.agents {
			if !ac.seen {
				continue
			}
			// Drift is tallied here (before the staleness cut — a stale
			// node can still disagree with its commanded level) so the
			// drifted gauge is a cached per-shard integer for Status.
			if cs := sh.cmds[id]; cs != nil && ac.last.Level != cs.level {
				drift++
			}
			if t0.Sub(ac.lastAt) > s.cfg.StaleAfter {
				g.stale++
				continue
			}
			g.readings = append(g.readings, ac.last)
			if !quarantinedIn(sh, id) {
				g.candidates = append(g.candidates, ac.last)
			}
		}
		sh.drifted = drift
		sh.mu.Unlock()
		// Model evaluation outside the shard lock: it is the cycle's CPU
		// bulk and needs nothing but the copied readings. Governed
		// cabinets also estimate each node at its top level — the sum is
		// the cabinet's uncapped demand, which the coordinator weighs
		// when dividing the global budget.
		for _, r := range g.readings {
			g.p += s.cfg.Model.Estimate(r.Delta, r.Level)
			if governed {
				g.demand += s.cfg.Model.EstimateAtLevel(r.Delta, r.MaxLevel)
			}
		}
	})
	var p, demand units.Watts
	nCand, nStale := 0, 0
	for i := range parts {
		p += parts[i].p
		demand += parts[i].demand
		nCand += len(parts[i].candidates)
		nStale += parts[i].stale
	}
	if nStale > 0 {
		s.stale.Add(int64(nStale))
	}
	candidates := s.candScratch[:0]
	for i := range parts {
		candidates = append(candidates, parts[i].candidates...)
	}
	s.candScratch = candidates
	// The sweep above is the cycle's sensing stage: collect fresh
	// readings and evaluate the power model. Its cost is what Figure 5's
	// collection-time curve measures.
	collect := time.Since(t0)
	span.Stage(obs.StageSense, collect, fmt.Sprintf("readings=%d stale=%d", nCand, nStale))
	cus := collect.Microseconds()
	s.lastCollectMicros.SetInt(cus)
	s.collectMicros.Add(float64(cus))

	thr := s.cfg.Thresholds
	capping := true
	if s.learner != nil {
		thr = s.learner.Observe(time.Since(s.started), p)
		capping = s.learner.Trained()
	}
	if governed {
		thr = s.fed.thresholds(t0)
		s.fed.noteSense(float64(p), float64(demand))
		s.demandWG.Set(float64(demand))
	}
	s.stateMu.Lock()
	s.thr = thr
	s.stateMu.Unlock()
	s.plW.Set(float64(thr.PL))
	s.phW.Set(float64(thr.PH))
	if s.learner != nil {
		s.trainedG.Set(b2f(capping))
		s.lifetimePeakW.Set(float64(s.learner.LifetimePeak()))
	} else {
		s.lifetimePeakW.Max(float64(p))
	}

	// Command upkeep runs before Algorithm 1 so retries and reconciles
	// reflect last cycle's state, not commands issued moments ago.
	s.maintainCommands(cycleN, fan)

	snap := s.builder.Build(p, thr.PL, candidates)
	if capping {
		s.mgrMu.Lock()
		st, actions, _ := s.mgr.Cycle(p, thr, snap, actuator{s, fan})
		s.mgrMu.Unlock()
		if s.cfg.RecordCycle != nil {
			s.cfg.RecordCycle(cycleRecord(cycleN, p, thr, st, snap, actions))
		}
	}
	fan.finishEnqueue()

	// Close the cycle in the journal: at most one incremental entry,
	// streamed to any standby follower — which is what bounds a warm
	// standby's staleness to one control cycle. Compaction stays periodic.
	s.commitJournalCycle(cycleN, thr)
	if cycleN%s.cfg.JournalEvery == 0 {
		s.writeJournal()
	}

	span.End()
	busy := time.Since(t0)
	us := busy.Microseconds()
	s.lastCycleMicros.SetInt(us)
	s.maxCycleMicros.Max(float64(us))
	s.busyMicros.Add(float64(busy) / float64(time.Microsecond))
	s.lastPowerW.Set(float64(p))
	return fan
}

// cycleRecord converts one capping cycle into the scenario trace schema,
// so daemon-driven fleets are checked by the same CheckAlgorithmOne
// invariants as simulator traces. The node list is the policy snapshot
// (pre-actuation), exactly as the scenario runner records it.
func cycleRecord(cycleN int, p units.Watts, thr power.Thresholds, st power.State, snap *policy.Snapshot, actions []manager.Action) scenario.CycleRecord {
	rec := scenario.CycleRecord{
		Cycle: cycleN, PowerW: float64(p),
		PLW: float64(thr.PL), PHW: float64(thr.PH),
		State: st.String(), Online: len(snap.Nodes),
		Nodes: make([]scenario.NodeRecord, 0, len(snap.Nodes)),
	}
	for _, ns := range snap.Nodes {
		rec.Nodes = append(rec.Nodes, scenario.NodeRecord{
			ID: int(ns.ID), Level: ns.Level, MaxLevel: ns.MaxLevel,
			Idle: ns.Idle, AtLowest: ns.AtLowest,
		})
	}
	for _, a := range actions {
		rec.Actions = append(rec.Actions, scenario.ActionRecord{Node: int(a.Node), Level: a.Level})
	}
	return rec
}

// StepCycle runs one control cycle synchronously and blocks until its
// command fan-out completes (every command handed to a sender was written
// or abandoned to the retry path), returning the fan-out completion
// latency. It is a test and benchmark hook: drive it with a very long
// ControlEvery so the ticker-driven loop stays out of the way.
func (s *Server) StepCycle() time.Duration {
	fan := s.cycle()
	<-fan.done
	return fan.dur
}

// maintainCommands is the per-cycle command lifecycle sweep (run across
// the shards on the worker pool):
//
//   - commands unacked since a previous cycle are retried under the same
//     sequence number (the command is idempotent, the ack will match);
//   - acked commands whose level disagrees with the node's reported level
//     are reconciled — reissued at the commanded level under a fresh
//     sequence number (with a two-cycle grace so an ack in flight is not
//     mistaken for drift);
//   - every node commanded below its top level is (re)adopted into
//     A_degraded. For nodes this manager instance degraded itself that is
//     a no-op; for nodes inherited from the journal or found self-degraded
//     by their dead-man switch (including the no-drift case where the
//     journaled and reported levels agree at the floor) it is what makes
//     the steady-green restore path lift them instead of orphaning them.
func (s *Server) maintainCommands(cycleN int, fan *fanout) {
	type resend struct {
		ac    *agentConn
		level int
		seq   uint64
	}
	nsh := len(s.nodes.shards)
	resendParts := make([][]resend, nsh)
	adoptParts := make([][]node.ID, nsh)
	s.forEachShard(func(i int, sh *shard) {
		var resends []resend
		var adopts []node.ID
		sh.mu.Lock()
		for id, ac := range sh.agents {
			if !ac.seen || quarantinedIn(sh, id) {
				continue
			}
			cs := sh.cmds[id]
			if cs == nil {
				if ac.last.Level < ac.maxLevel {
					sh.cmds[id] = &cmdState{level: ac.last.Level, acked: true, sentCycle: cycleN}
					s.journal.SetLevel(int(id), ac.last.Level)
					adopts = append(adopts, id)
				}
				continue
			}
			switch {
			case !cs.acked && cycleN > cs.sentCycle:
				cs.retries++
				cs.sentCycle = cycleN
				s.cmdRetries.Inc()
				resends = append(resends, resend{ac, cs.level, cs.seq})
			case cs.acked && ac.last.Level != cs.level && cycleN >= cs.sentCycle+2:
				cs.seq = s.seq.Add(1)
				cs.acked = false
				cs.sentCycle = cycleN
				s.reconciles.Inc()
				resends = append(resends, resend{ac, cs.level, cs.seq})
			}
			if cs.level < ac.maxLevel {
				adopts = append(adopts, id)
			}
		}
		sh.mu.Unlock()
		resendParts[i], adoptParts[i] = resends, adopts
	})

	var adopts []node.ID
	for _, a := range adoptParts {
		adopts = append(adopts, a...)
	}
	if len(adopts) > 0 {
		s.mgrMu.Lock()
		for _, id := range adopts {
			s.mgr.Adopt(id)
		}
		s.mgrMu.Unlock()
	}
	for _, rs := range resendParts {
		for _, r := range rs {
			s.dispatch(r.ac, r.level, r.seq, fan)
		}
	}
}

// refreshGauges publishes the registry gauges that are derived from
// swept state rather than bumped inline: connected agents, drift, node
// health tallies and the management-cost ratio. It runs before every
// Status reply and /metrics render. The per-node walks live in the
// sweeps that already visit every record (updateHealth, the collect
// pass); this reads the cached per-shard tallies, so a status probe
// costs O(shards) regardless of fleet size.
func (s *Server) refreshGauges() {
	agents, drifted := 0, 0
	var healthy, staleN, lost, quar, nBin, nJSON int
	for _, sh := range s.nodes.shards {
		sh.mu.Lock()
		agents += len(sh.agents)
		drifted += sh.drifted
		healthy += sh.nHealthy
		staleN += sh.nStale
		lost += sh.nLost
		quar += sh.nQuar
		nBin += sh.nBin
		nJSON += sh.nJSON
		sh.mu.Unlock()
	}
	s.refreshReplicaGauges()
	s.agentsG.SetInt(int64(agents))
	s.driftedG.SetInt(int64(drifted))
	s.healthyG.SetInt(int64(healthy))
	s.staleNodesG.SetInt(int64(staleN))
	s.lostG.SetInt(int64(lost))
	s.quarNodesG.SetInt(int64(quar))
	s.binConnsG.SetInt(int64(nBin))
	s.jsonConnsG.SetInt(int64(nJSON))
	// Management cost: busy time over elapsed control time (Fig. 5's
	// utilisation curve). The cycles counter is the manager's.
	if cycles := s.cyclesC.Value(); cycles > 0 {
		elapsed := float64(time.Duration(cycles)*s.cfg.ControlEvery) / float64(time.Microsecond)
		s.cpuUtilise.Set(s.busyMicros.Value() / elapsed)
	}
}

// Status reports the daemon's counters, including the measured management
// cost (busy time over elapsed control time) and the fail-safe layer's
// health and command-lifecycle counters. The reply is populated entirely
// from the obs registry through the StatusReply field mapping — see
// statusFromRegistry — so a reply field without a live instrument behind
// it cannot exist.
func (s *Server) Status() wire.StatusReply {
	s.refreshGauges()
	rep, _ := statusFromRegistry(s.reg)
	return rep
}

// b2f maps a bool onto the 0/1 gauge convention.
func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// QueryStatus connects to a manager daemon and fetches its status.
func QueryStatus(addr string, timeout time.Duration) (wire.StatusReply, error) {
	env, err := QueryStatusEnvelope(addr, timeout)
	if err != nil {
		return wire.StatusReply{}, err
	}
	return *env.Stats, nil
}

// QueryStatusEnvelope fetches the full status envelope from a manager or
// coordinator daemon — both answer the same KindStatus probe. The
// envelope's Node distinguishes them (a coordinator stamps
// fedd.CoordinatorNode and attaches one Batch row per child), so a CLI
// can render whichever daemon it happened to dial.
func QueryStatusEnvelope(addr string, timeout time.Duration) (wire.Envelope, error) {
	raw, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return wire.Envelope{}, err
	}
	conn := wire.NewConn(raw)
	defer conn.Close()
	if err := raw.SetDeadline(time.Now().Add(timeout)); err != nil {
		return wire.Envelope{}, err
	}
	if err := conn.Send(wire.Envelope{Type: wire.KindStatus}); err != nil {
		return wire.Envelope{}, err
	}
	env, err := conn.Recv()
	if err != nil {
		return wire.Envelope{}, err
	}
	if env.Type != wire.KindStatus || env.Stats == nil {
		return wire.Envelope{}, fmt.Errorf("managerd: unexpected reply %q", env.Type)
	}
	return env, nil
}

// QueryCodec connects to a manager daemon, advertises the full codec set
// a real agent would, and reports which codec the daemon negotiates plus
// its status (whose BinaryConns/JSONConns split shows what the live fleet
// actually negotiated). The probe itself stays on JSON so the reply is
// readable regardless of the outcome.
func QueryCodec(addr string, timeout time.Duration) (string, wire.StatusReply, error) {
	raw, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return "", wire.StatusReply{}, err
	}
	conn := wire.NewConn(raw)
	defer conn.Close()
	if err := raw.SetDeadline(time.Now().Add(timeout)); err != nil {
		return "", wire.StatusReply{}, err
	}
	if err := conn.Send(wire.Envelope{
		Type:   wire.KindStatus,
		Codecs: []string{wire.CodecBinary, wire.CodecJSON},
	}); err != nil {
		return "", wire.StatusReply{}, err
	}
	env, err := conn.Recv()
	if err != nil {
		return "", wire.StatusReply{}, err
	}
	if env.Type != wire.KindStatus || env.Stats == nil {
		return "", wire.StatusReply{}, fmt.Errorf("managerd: unexpected reply %q", env.Type)
	}
	codec := env.Codec
	if codec == "" {
		// A pre-negotiation daemon ignores the advertisement; that fact is
		// the answer.
		codec = wire.CodecJSON
	}
	return codec, *env.Stats, nil
}
