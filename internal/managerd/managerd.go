// Package managerd implements the global power manager as a network
// daemon: it accepts TCP connections from per-node profiling agents
// (internal/agentd), keeps the freshest sample per node, and runs the
// power capping algorithm (Algorithm 1) every control cycle, pushing level
// commands back down the agent connections.
//
// The daemon accounts its own busy time per cycle; Figure 5's management
// cost curve is this measured collect+estimate+select time as a fraction
// of the control period, at increasing candidate set sizes.
//
// On top of the control loop sits a fail-safe layer for control-plane
// faults: commands carry sequence numbers and are retried until the agent
// acknowledges them; agent-reported levels are reconciled against the
// last acknowledged command; node health is classified each cycle
// (healthy/stale/lost/quarantined, see health.go) with reconnect-flapping
// nodes quarantined out of the candidate set; periodic heartbeats let
// agents' dead-man switches distinguish a live-but-green manager from a
// dead one; and a crash-recovery journal (journal.go) lets a restarted
// manager resume capping without a fresh training window.
package managerd

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/manager"
	"repro/internal/node"
	"repro/internal/policy"
	"repro/internal/power"
	"repro/internal/units"
	"repro/internal/wire"
)

// Config parametrises the daemon.
type Config struct {
	// Addr is the TCP listen address, e.g. "127.0.0.1:7077". Port 0
	// selects an ephemeral port (see Server.Addr).
	Addr string
	// Listener, when non-nil, is served instead of binding Addr — the
	// in-process harness hands the daemon a fault-injecting in-memory
	// listener this way. The server takes ownership and closes it on Stop.
	Listener net.Listener
	// CommandTimeout bounds each actuator command send: a stalled agent
	// connection (full TCP buffer, slow reader) fails the send after this
	// long — counted in CommandErrors and the connection dropped — instead
	// of blocking the control cycle inside SetNodeLevel. Zero defaults to
	// the control period.
	CommandTimeout time.Duration
	// Model is the fleet's power profile model (formula 1 runs centrally).
	Model power.Model
	// Policy is the target set selection policy.
	Policy policy.Policy
	// Tg is Algorithm 1's steady-green patience, in cycles.
	Tg int
	// ControlEvery is the control cycle period τ.
	ControlEvery time.Duration
	// Thresholds are the administrator-set operating thresholds, used as
	// long as Learn is nil.
	Thresholds power.Thresholds
	// StaleAfter marks samples older than this stale (dropped from the
	// cycle's view); zero defaults to 3 control periods.
	StaleAfter time.Duration
	// LostAfter marks a node lost when its newest sample is older than
	// this (a disconnected node is lost immediately). Zero defaults to
	// 3×StaleAfter; values below StaleAfter are clamped up to it.
	LostAfter time.Duration
	// FlapWindow and FlapLimit drive quarantine: FlapLimit or more
	// (re)connects within FlapWindow quarantines the node. Zero FlapWindow
	// defaults to 15s; zero FlapLimit defaults to 6; negative FlapLimit
	// disables quarantine.
	FlapWindow time.Duration
	FlapLimit  int
	// Quarantine is the minimum time a quarantined node stays excluded
	// from the candidate set; zero defaults to 30s.
	Quarantine time.Duration
	// HeartbeatEvery sends a ping to every agent each this many control
	// cycles, so agent dead-man switches see manager liveness even through
	// long green stretches with no commands. Zero defaults to 1; negative
	// disables heartbeats.
	HeartbeatEvery int
	// JournalPath, when non-empty, enables the crash-recovery journal:
	// learner state and last-commanded levels are snapshotted there every
	// JournalEvery cycles (and on clean Stop), and reloaded by New.
	JournalPath string
	// JournalEvery is the journal snapshot period in control cycles; zero
	// defaults to the learner's adjustment period (or 60 without a
	// learner).
	JournalEvery int
	// Learn, when non-nil, enables §III.A threshold learning: the daemon
	// starts from Thresholds, observes the fleet's peak for Training of
	// wall time, then re-derives the thresholds from the lifetime peak
	// every AdjustEvery cycles.
	Learn *LearnConfig
}

// LearnConfig parametrises daemon-side threshold learning.
type LearnConfig struct {
	// PMax seeds the learner's initial P_peak.
	PMax units.Watts
	// Training is the uncapped observation window (wall time).
	Training time.Duration
	// AdjustEvery is t_p in control cycles; zero defaults to 60.
	AdjustEvery int
}

// agentConn is one connected agent.
type agentConn struct {
	conn     *wire.Conn
	sendMu   sync.Mutex
	maxLevel int

	last   manager.AgentReading
	lastAt time.Time
	seen   bool
}

// cmdState tracks the lifecycle of the newest command issued to one node.
// A command stays in flight (acked=false) until the agent echoes its
// sequence number; unacked commands are retried each cycle, and an acked
// level that later disagrees with the agent's reported level triggers
// reconciliation under a fresh sequence number. All access under
// Server.mu.
type cmdState struct {
	level     int
	seq       uint64
	sentCycle int
	acked     bool
	retries   int
}

// Server is a running manager daemon.
type Server struct {
	cfg Config
	ln  net.Listener

	mu      sync.Mutex
	agents  map[node.ID]*agentConn
	cmds    map[node.ID]*cmdState
	health  map[node.ID]*healthRec
	builder *manager.Builder

	// mgrMu guards mgr (the control loop cycles it while Status reads
	// its counters). It must never be held while taking mu: the
	// actuator locks mu during Cycle.
	mgrMu sync.Mutex
	mgr   *manager.Manager

	busy          time.Duration
	lastP         units.Watts
	thr           power.Thresholds
	learner       *power.Learner // touched only by the control-loop goroutine (and New/Stop)
	trained       bool           // cached learner.Trained() for Status, under mu
	peakW         float64        // cached lifetime peak for Status, under mu
	started       time.Time
	cycleN        int
	seq           uint64
	stale         int
	cmdErrs       int
	cmdAcks       int
	cmdRetries    int
	reconciles    int
	quarantines   int
	journalWrites int

	stopOnce sync.Once
	stopCh   chan struct{}
	wg       sync.WaitGroup
}

// New validates the configuration and creates an unstarted server. When
// JournalPath names a readable journal, the learner state and
// last-commanded levels are restored from it — the daemon resumes capping
// without a fresh training window and reconciles reconnecting agents
// against the journaled levels.
func New(cfg Config) (*Server, error) {
	if cfg.ControlEvery <= 0 {
		return nil, fmt.Errorf("managerd: need positive control period")
	}
	if err := cfg.Thresholds.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Model.Validate(); err != nil {
		return nil, err
	}
	if cfg.StaleAfter <= 0 {
		cfg.StaleAfter = 3 * cfg.ControlEvery
	}
	if cfg.LostAfter <= 0 {
		cfg.LostAfter = 3 * cfg.StaleAfter
	}
	if cfg.LostAfter < cfg.StaleAfter {
		cfg.LostAfter = cfg.StaleAfter
	}
	if cfg.FlapWindow <= 0 {
		cfg.FlapWindow = 15 * time.Second
	}
	if cfg.FlapLimit == 0 {
		cfg.FlapLimit = 6
	}
	if cfg.Quarantine <= 0 {
		cfg.Quarantine = 30 * time.Second
	}
	if cfg.HeartbeatEvery == 0 {
		cfg.HeartbeatEvery = 1
	}
	if cfg.CommandTimeout <= 0 {
		cfg.CommandTimeout = cfg.ControlEvery
	}
	mgr, err := manager.New(manager.Config{Tg: cfg.Tg, Policy: cfg.Policy})
	if err != nil {
		return nil, err
	}
	srv := &Server{
		cfg:     cfg,
		agents:  make(map[node.ID]*agentConn),
		cmds:    make(map[node.ID]*cmdState),
		health:  make(map[node.ID]*healthRec),
		builder: manager.NewBuilder(cfg.Model),
		mgr:     mgr,
		thr:     cfg.Thresholds,
		trained: true, // fixed thresholds cap from the first cycle
		stopCh:  make(chan struct{}),
	}
	adj := 60
	if cfg.Learn != nil {
		if cfg.Learn.AdjustEvery > 0 {
			adj = cfg.Learn.AdjustEvery
		}
		learner, err := power.NewLearner(cfg.Learn.PMax, cfg.Learn.Training, adj)
		if err != nil {
			return nil, err
		}
		srv.learner = learner
		srv.trained = learner.Trained()
	}
	if srv.cfg.JournalEvery <= 0 {
		srv.cfg.JournalEvery = adj
	}
	if srv.cfg.JournalPath != "" {
		// The journal is advisory: any load or validation error (missing
		// file included) just means a cold start.
		if js, err := loadJournal(srv.cfg.JournalPath); err == nil {
			srv.restoreFromJournal(js)
		}
	}
	return srv, nil
}

// restoreFromJournal applies a validated journal snapshot to a freshly
// constructed server (no locking needed; nothing is running yet).
func (s *Server) restoreFromJournal(js *journalState) {
	if s.learner != nil && js.Learner != nil {
		if err := s.learner.Restore(*js.Learner); err == nil {
			s.thr = s.learner.Thresholds()
			s.trained = s.learner.Trained()
			s.peakW = js.Learner.LifetimePeakW
		}
	}
	s.cycleN = js.SavedAtCycle
	for _, l := range js.Levels {
		id := node.ID(l.Node)
		// Journaled commands count as acked at sentCycle zero: as soon as
		// the node reconnects and reports a different level, the
		// reconciliation path reissues the journaled one.
		s.cmds[id] = &cmdState{level: l.Level, acked: true}
		s.health[id] = &healthRec{state: healthLost}
	}
}

// Start binds the listener and launches the accept, control and heartbeat
// loops.
func (s *Server) Start() error {
	if s.cfg.Listener != nil {
		s.ln = s.cfg.Listener
	} else {
		ln, err := net.Listen("tcp", s.cfg.Addr)
		if err != nil {
			return fmt.Errorf("managerd: listen: %w", err)
		}
		s.ln = ln
	}
	s.started = time.Now()
	s.wg.Add(2)
	go s.acceptLoop()
	go s.controlLoop()
	if s.cfg.HeartbeatEvery > 0 {
		s.wg.Add(1)
		go s.heartbeatLoop()
	}
	return nil
}

// Addr returns the bound listen address (useful with port 0).
func (s *Server) Addr() string {
	if s.ln == nil {
		return s.cfg.Addr
	}
	return s.ln.Addr().String()
}

// Stop shuts the daemon down, waits for its goroutines, and writes a
// final journal snapshot so a clean restart resumes exactly where this
// instance left off.
func (s *Server) Stop() {
	s.stopOnce.Do(func() {
		close(s.stopCh)
		if s.ln != nil {
			s.ln.Close()
		}
		s.mu.Lock()
		for _, a := range s.agents {
			a.conn.Close()
		}
		s.mu.Unlock()
	})
	s.wg.Wait()
	if s.cfg.JournalPath != "" {
		s.writeJournal()
	}
}

// acceptLoop accepts agent and status connections until the server stops.
// Transient Accept failures (accept queue hiccups, temporary resource
// exhaustion, injected timeouts) are retried under capped exponential
// backoff rather than busy-spinning or killing the daemon; only a stop or
// the listener actually closing ends the loop.
func (s *Server) acceptLoop() {
	defer s.wg.Done()
	const (
		backoffMin = 5 * time.Millisecond
		backoffMax = 500 * time.Millisecond
	)
	backoff := backoffMin
	for {
		raw, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.stopCh:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			select {
			case <-s.stopCh:
				return
			case <-time.After(backoff):
			}
			if backoff *= 2; backoff > backoffMax {
				backoff = backoffMax
			}
			continue
		}
		backoff = backoffMin
		s.wg.Add(1)
		go s.serveConn(wire.NewConn(raw))
	}
}

// serveConn handles one inbound connection: agents send hello then a
// stream of samples and command acks; control clients send a status
// request and get one reply.
func (s *Server) serveConn(conn *wire.Conn) {
	defer s.wg.Done()
	first, err := conn.Recv()
	if err != nil {
		conn.Close()
		return
	}
	switch first.Type {
	case wire.KindStatus:
		st := s.Status()
		_ = conn.Send(wire.Envelope{Type: wire.KindStatus, Stats: &st})
		conn.Close()
		return
	case wire.KindHello:
		// fall through to the agent loop
	default:
		conn.Close()
		return
	}

	id := node.ID(first.Node)
	ac := &agentConn{conn: conn, maxLevel: first.MaxLevel}
	// Seed the record from the hello's self-reported level: a manager
	// coming back from a crash learns every node's actual level before
	// the first sample arrives, so reconciliation can start immediately.
	lvl := first.Level
	if lvl < 0 {
		lvl = 0
	}
	if lvl > ac.maxLevel {
		lvl = ac.maxLevel
	}
	now := time.Now()
	ac.last = manager.AgentReading{ID: id, Level: lvl, MaxLevel: ac.maxLevel}
	ac.lastAt = now
	ac.seen = true
	s.mu.Lock()
	if old, ok := s.agents[id]; ok {
		old.conn.Close()
	}
	s.agents[id] = ac
	s.noteConnect(id, now)
	s.mu.Unlock()

	for {
		env, err := conn.Recv()
		if err != nil {
			break
		}
		switch env.Type {
		case wire.KindSample:
			r := env.Reading()
			r.ID = id // trust the connection identity, not the payload
			r.MaxLevel = ac.maxLevel
			s.mu.Lock()
			ac.last, ac.lastAt, ac.seen = r, time.Now(), true
			s.mu.Unlock()
		case wire.KindAck:
			s.mu.Lock()
			if cs := s.cmds[id]; cs != nil && env.Seq != 0 && cs.seq == env.Seq {
				if !cs.acked {
					s.cmdAcks++
				}
				cs.acked = true
				cs.level = env.Level
				ac.last.Level = env.Level
			}
			s.mu.Unlock()
		}
	}
	s.mu.Lock()
	if s.agents[id] == ac {
		delete(s.agents, id)
	}
	s.mu.Unlock()
	conn.Close()
}

// actuator routes manager commands to agent connections.
type actuator struct{ s *Server }

// SetNodeLevel implements manager.Actuator: assign a sequence number,
// record the command in flight, and send it. Unacked commands are retried
// by maintainCommands on subsequent cycles.
func (a actuator) SetNodeLevel(id node.ID, level int) error {
	s := a.s
	s.mu.Lock()
	if _, ok := s.agents[id]; !ok {
		s.cmdErrs++
		s.mu.Unlock()
		return fmt.Errorf("managerd: no agent for node %d", id)
	}
	s.seq++
	seq := s.seq
	s.cmds[id] = &cmdState{level: level, seq: seq, sentCycle: s.cycleN}
	s.mu.Unlock()
	return s.sendCommand(id, level, seq)
}

// sendCommand writes one level command to a node's connection. Each send
// carries a write deadline: one agent that has stopped draining its
// socket (slow reader, full TCP buffer) must cost at most CommandTimeout,
// not stall the caller indefinitely. A timed-out connection is closed —
// its write stream is mid-message and unrecoverable — so the agent
// redials; the in-flight command stays recorded and is retried once the
// node is back.
func (s *Server) sendCommand(id node.ID, level int, seq uint64) error {
	s.mu.Lock()
	ac, ok := s.agents[id]
	s.mu.Unlock()
	if !ok {
		s.mu.Lock()
		s.cmdErrs++
		s.mu.Unlock()
		return fmt.Errorf("managerd: no agent for node %d", id)
	}
	ac.sendMu.Lock()
	_ = ac.conn.SetWriteDeadline(time.Now().Add(s.cfg.CommandTimeout))
	err := ac.conn.Send(wire.Envelope{Type: wire.KindCommand, Node: int(id), Level: level, Seq: seq})
	_ = ac.conn.SetWriteDeadline(time.Time{})
	ac.sendMu.Unlock()
	if err != nil {
		s.mu.Lock()
		s.cmdErrs++
		s.mu.Unlock()
		ac.conn.Close()
	}
	return err
}

func (s *Server) controlLoop() {
	defer s.wg.Done()
	tick := time.NewTicker(s.cfg.ControlEvery)
	defer tick.Stop()
	for {
		select {
		case <-s.stopCh:
			return
		case <-tick.C:
			s.cycle()
		}
	}
}

// heartbeatLoop pings every connected agent each HeartbeatEvery control
// cycles. The pings carry no payload; their only job is to feed the
// agents' dead-man switches so a node behind a live manager never
// self-degrades just because the fleet has been green (no commands) for a
// long stretch. Runs outside the control loop so a slow reader stalls
// heartbeats, not capping.
func (s *Server) heartbeatLoop() {
	defer s.wg.Done()
	tick := time.NewTicker(time.Duration(s.cfg.HeartbeatEvery) * s.cfg.ControlEvery)
	defer tick.Stop()
	for {
		select {
		case <-s.stopCh:
			return
		case <-tick.C:
			s.mu.Lock()
			conns := make([]*agentConn, 0, len(s.agents))
			for _, ac := range s.agents {
				conns = append(conns, ac)
			}
			s.mu.Unlock()
			for _, ac := range conns {
				ac.sendMu.Lock()
				_ = ac.conn.SetWriteDeadline(time.Now().Add(s.cfg.CommandTimeout))
				err := ac.conn.Send(wire.Envelope{Type: wire.KindPing})
				_ = ac.conn.SetWriteDeadline(time.Time{})
				ac.sendMu.Unlock()
				if err != nil {
					s.mu.Lock()
					s.cmdErrs++
					s.mu.Unlock()
					ac.conn.Close()
				}
			}
		}
	}
}

// cycle runs one control cycle: gather fresh readings, estimate system
// power, classify, select and command. The daemon has no facility meter,
// so system power is the sum of per-node estimates — the documented
// substitution for deployments without a meter (the Observability
// assumption allows estimation "to a sufficient accuracy").
//
// Quarantined nodes contribute to the power estimate but are excluded
// from the policy snapshot: per §II.A they are treated as
// A_uncontrollable — their consumption is real, but commands down a
// flapping link are wasted.
func (s *Server) cycle() {
	t0 := time.Now()

	s.mu.Lock()
	s.cycleN++
	cycleN := s.cycleN
	s.updateHealth(t0)
	readings := make([]manager.AgentReading, 0, len(s.agents))
	candidates := make([]manager.AgentReading, 0, len(s.agents))
	for id, ac := range s.agents {
		if !ac.seen {
			continue
		}
		if t0.Sub(ac.lastAt) > s.cfg.StaleAfter {
			s.stale++
			continue
		}
		readings = append(readings, ac.last)
		if !s.quarantined(id) {
			candidates = append(candidates, ac.last)
		}
	}
	s.mu.Unlock()

	var p units.Watts
	for _, r := range readings {
		p += s.cfg.Model.Estimate(r.Delta, r.Level)
	}
	thr := s.cfg.Thresholds
	capping := true
	if s.learner != nil {
		thr = s.learner.Observe(time.Since(s.started), p)
		capping = s.learner.Trained()
	}
	s.mu.Lock()
	s.thr = thr
	if s.learner != nil {
		s.trained = capping
		s.peakW = float64(s.learner.LifetimePeak())
	} else if float64(p) > s.peakW {
		s.peakW = float64(p)
	}
	s.mu.Unlock()

	// Command upkeep runs before Algorithm 1 so retries and reconciles
	// reflect last cycle's state, not commands issued moments ago.
	s.maintainCommands(cycleN)

	snap := s.builder.Build(p, thr.PL, candidates)
	if capping {
		s.mgrMu.Lock()
		_, _, _ = s.mgr.Cycle(p, thr, snap, actuator{s})
		s.mgrMu.Unlock()
	}

	if s.cfg.JournalPath != "" && cycleN%s.cfg.JournalEvery == 0 {
		s.writeJournal()
	}

	s.mu.Lock()
	s.lastP = p
	s.busy += time.Since(t0)
	s.mu.Unlock()
}

// maintainCommands is the per-cycle command lifecycle sweep:
//
//   - commands unacked since a previous cycle are retried under the same
//     sequence number (the command is idempotent, the ack will match);
//   - acked commands whose level disagrees with the node's reported level
//     are reconciled — reissued at the commanded level under a fresh
//     sequence number (with a two-cycle grace so an ack in flight is not
//     mistaken for drift);
//   - every node commanded below its top level is (re)adopted into
//     A_degraded. For nodes this manager instance degraded itself that is
//     a no-op; for nodes inherited from the journal or found self-degraded
//     by their dead-man switch (including the no-drift case where the
//     journaled and reported levels agree at the floor) it is what makes
//     the steady-green restore path lift them instead of orphaning them.
func (s *Server) maintainCommands(cycleN int) {
	type resend struct {
		id    node.ID
		level int
		seq   uint64
	}
	var resends []resend
	var adopts []node.ID

	s.mu.Lock()
	for id, ac := range s.agents {
		if !ac.seen || s.quarantined(id) {
			continue
		}
		cs := s.cmds[id]
		if cs == nil {
			if ac.last.Level < ac.maxLevel {
				s.cmds[id] = &cmdState{level: ac.last.Level, acked: true, sentCycle: cycleN}
				adopts = append(adopts, id)
			}
			continue
		}
		switch {
		case !cs.acked && cycleN > cs.sentCycle:
			cs.retries++
			cs.sentCycle = cycleN
			s.cmdRetries++
			resends = append(resends, resend{id, cs.level, cs.seq})
		case cs.acked && ac.last.Level != cs.level && cycleN >= cs.sentCycle+2:
			s.seq++
			cs.seq = s.seq
			cs.acked = false
			cs.sentCycle = cycleN
			s.reconciles++
			resends = append(resends, resend{id, cs.level, cs.seq})
		}
		if cs.level < ac.maxLevel {
			adopts = append(adopts, id)
		}
	}
	s.mu.Unlock()

	if len(adopts) > 0 {
		s.mgrMu.Lock()
		for _, id := range adopts {
			s.mgr.Adopt(id)
		}
		s.mgrMu.Unlock()
	}
	for _, r := range resends {
		_ = s.sendCommand(r.id, r.level, r.seq)
	}
}

// writeJournal snapshots the recovery state to JournalPath. Called only
// from the control-loop goroutine (or Stop, after the loops have exited),
// which is what makes the lock-free learner access safe.
func (s *Server) writeJournal() {
	var js journalState
	if s.learner != nil {
		st := s.learner.State()
		js.Learner = &st
	}
	s.mu.Lock()
	js.SavedAtCycle = s.cycleN
	js.ThrPLW = float64(s.thr.PL)
	js.ThrPHW = float64(s.thr.PH)
	js.Levels = make([]journalLevel, 0, len(s.cmds))
	for id, cs := range s.cmds {
		js.Levels = append(js.Levels, journalLevel{Node: int(id), Level: cs.level})
	}
	s.mu.Unlock()
	if err := saveJournal(s.cfg.JournalPath, js); err == nil {
		s.mu.Lock()
		s.journalWrites++
		s.mu.Unlock()
	}
}

// Status reports the daemon's counters, including the measured management
// cost (busy time over elapsed control time) and the fail-safe layer's
// health and command-lifecycle counters.
func (s *Server) Status() wire.StatusReply {
	s.mgrMu.Lock()
	st := s.mgr.Stats()
	s.mgrMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	drifted := 0
	for id, ac := range s.agents {
		if !ac.seen {
			continue
		}
		if cs := s.cmds[id]; cs != nil && ac.last.Level != cs.level {
			drifted++
		}
	}
	healthy, staleN, lost, quar := s.healthCounts()
	rep := wire.StatusReply{
		Agents:           len(s.agents),
		Cycles:           st.Cycles,
		GreenCycles:      st.GreenCycles,
		YellowCycles:     st.YellowCycles,
		RedCycles:        st.RedCycles,
		RedEntries:       st.RedEntries,
		DegradeOps:       st.DegradeOps,
		RestoreOps:       st.RestoreOps,
		BusyMicros:       s.busy.Microseconds(),
		LastPowerW:       float64(s.lastP),
		ThresholdPLW:     float64(s.thr.PL),
		ThresholdPHW:     float64(s.thr.PH),
		DroppedStale:     s.stale,
		CommandErrors:    s.cmdErrs,
		Trained:          s.trained,
		LifetimePeakW:    s.peakW,
		CommandAcks:      s.cmdAcks,
		CommandRetries:   s.cmdRetries,
		Reconciles:       s.reconciles,
		Drifted:          drifted,
		HealthyNodes:     healthy,
		StaleNodes:       staleN,
		LostNodes:        lost,
		QuarantinedNodes: quar,
		Quarantines:      s.quarantines,
		JournalWrites:    s.journalWrites,
	}
	if st.Cycles > 0 {
		rep.CPUUtilise = float64(s.busy) / float64(time.Duration(st.Cycles)*s.cfg.ControlEvery)
	}
	return rep
}

// QueryStatus connects to a manager daemon and fetches its status.
func QueryStatus(addr string, timeout time.Duration) (wire.StatusReply, error) {
	raw, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return wire.StatusReply{}, err
	}
	conn := wire.NewConn(raw)
	defer conn.Close()
	if err := raw.SetDeadline(time.Now().Add(timeout)); err != nil {
		return wire.StatusReply{}, err
	}
	if err := conn.Send(wire.Envelope{Type: wire.KindStatus}); err != nil {
		return wire.StatusReply{}, err
	}
	env, err := conn.Recv()
	if err != nil {
		return wire.StatusReply{}, err
	}
	if env.Type != wire.KindStatus || env.Stats == nil {
		return wire.StatusReply{}, fmt.Errorf("managerd: unexpected reply %q", env.Type)
	}
	return *env.Stats, nil
}
