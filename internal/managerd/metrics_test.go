package managerd

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faultnet"
	"repro/internal/obs"
	"repro/internal/power"
	"repro/internal/wire"
)

// startMetricsFleet builds a faultnet daemon with the observability HTTP
// endpoint enabled and n fake agents connected (hello + one sample each),
// parked on an hour-long control period so the test drives cycles via
// StepCycle. Thresholds put the fleet solidly in yellow so every cycle
// exercises classify, select, actuate and settle.
func startMetricsFleet(t *testing.T, n int) *Server {
	t.Helper()
	nw := faultnet.New(int64(n))
	t.Cleanup(nw.Close)
	cfg := fanoutConfig(nw, 250*time.Millisecond, power.Thresholds{PL: 10, PH: 1e9})
	cfg.MetricsAddr = "127.0.0.1:0"
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Stop)
	for i := 0; i < n; i++ {
		c := dialFaultAgent(t, nw, uint64(i), 10, 10)
		if err := c.Send(busySample(i, 10)); err != nil {
			t.Fatal(err)
		}
		// Drain manager→agent traffic so command writes never block.
		go func(c *wire.Conn) {
			for {
				if _, err := c.Recv(); err != nil {
					return
				}
			}
		}(c)
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.SamplesReceived() < int64(n) {
		if time.Now().After(deadline) {
			t.Fatalf("samples never landed: %d/%d", srv.SamplesReceived(), n)
		}
		time.Sleep(time.Millisecond)
	}
	return srv
}

// scrapeMetrics fetches /metrics and parses the plain samples into a map.
func scrapeMetrics(t *testing.T, addr string) map[string]float64 {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out := make(map[string]float64)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 2 {
			continue
		}
		v, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			continue
		}
		out[fields[0]] = v
	}
	return out
}

// TestStatusReplyRegistryMapping is the drift catcher: every StatusReply
// field must carry an obs tag naming an instrument that is actually
// registered by a live server, and the reflective mapping must resolve
// them all. Adding a reply field without backing it by an instrument
// fails here instead of silently reading zero forever.
func TestStatusReplyRegistryMapping(t *testing.T) {
	srv := startMetricsFleet(t, 3)
	srv.StepCycle()

	rt := reflect.TypeOf(wire.StatusReply{})
	for i := 0; i < rt.NumField(); i++ {
		f := rt.Field(i)
		name := f.Tag.Get("obs")
		if name == "" {
			t.Errorf("StatusReply.%s has no obs tag", f.Name)
			continue
		}
		if !srv.Obs().Has(name) {
			t.Errorf("StatusReply.%s maps to instrument %q, which the server never registers", f.Name, name)
		}
	}

	srv.refreshGauges()
	if _, err := statusFromRegistry(srv.Obs()); err != nil {
		t.Fatalf("statusFromRegistry: %v", err)
	}

	// The mapped reply carries live values end to end.
	st := srv.Status()
	if st.Cycles != 1 || st.Agents != 3 || st.Shards == 0 {
		t.Errorf("mapped reply looks dead: %+v", st)
	}
	if st.LastPowerW <= 0 {
		t.Errorf("last power not mapped: %+v", st.LastPowerW)
	}
	if st.LastCollectMicros < 0 || st.CollectMicros < st.LastCollectMicros {
		t.Errorf("collect times inconsistent: last=%d total=%d", st.LastCollectMicros, st.CollectMicros)
	}
}

// statusFromRegistry must report, not invent, when instruments are absent.
func TestStatusFromRegistryMissingInstrument(t *testing.T) {
	if _, err := statusFromRegistry(obs.NewRegistry()); err == nil {
		t.Fatal("empty registry mapped without error")
	}
}

// TestMetricsEndpointEndToEnd drives cycles through a live daemon and
// asserts the scraped /metrics and /debug/cycles reflect exactly the
// driven workload: cycle counts, state residency, per-stage spans.
func TestMetricsEndpointEndToEnd(t *testing.T) {
	const agents, cycles = 3, 5
	srv := startMetricsFleet(t, agents)
	for i := 0; i < cycles; i++ {
		srv.StepCycle()
	}
	st := srv.Status()
	if st.Cycles != cycles || st.YellowCycles != cycles {
		t.Fatalf("driven %d cycles, status %+v", cycles, st)
	}
	if st.DegradeOps == 0 {
		t.Fatalf("yellow cycles issued no commands: %+v", st)
	}

	m := scrapeMetrics(t, srv.MetricsAddr())
	for name, want := range map[string]float64{
		"cycles":           float64(st.Cycles),
		"yellow_cycles":    float64(st.YellowCycles),
		"green_cycles":     0,
		"red_cycles":       0,
		"degrade_ops":      float64(st.DegradeOps),
		"agents":           float64(agents),
		"samples_received": float64(st.SamplesReceived),
		"last_power_w":     st.LastPowerW,
		"pl_w":             st.ThresholdPLW,
		"trained":          1,
		"shards":           float64(st.Shards),
	} {
		if got, ok := m[name]; !ok || got != want {
			t.Errorf("/metrics %s = %v (present %v), want %v", name, got, ok, want)
		}
	}
	// Stage histograms counted one observation per driven cycle (settle
	// included: StepCycle waits for fan-out completion).
	for _, h := range []string{"cycle_stage_sense_micros_count", "cycle_stage_classify_micros_count",
		"cycle_stage_select_micros_count", "cycle_stage_actuate_micros_count",
		"cycle_stage_settle_micros_count", "cycle_total_micros_count"} {
		if got := m[h]; got != cycles {
			t.Errorf("/metrics %s = %v, want %d", h, got, cycles)
		}
	}

	resp, err := http.Get("http://" + srv.MetricsAddr() + "/debug/cycles")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var reply obs.CyclesReply
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		t.Fatal(err)
	}
	if reply.Cycles != cycles || len(reply.Spans) != cycles {
		t.Fatalf("/debug/cycles reply: cycles=%d spans=%d, want %d", reply.Cycles, len(reply.Spans), cycles)
	}
	for _, sp := range reply.Spans {
		var stages []string
		outcomes := map[string]string{}
		for _, sg := range sp.Stages {
			stages = append(stages, sg.Stage)
			outcomes[sg.Stage] = sg.Outcome
		}
		want := []string{"sense", "classify", "select", "actuate", "settle"}
		if fmt.Sprint(stages) != fmt.Sprint(want) {
			t.Fatalf("cycle %d stages = %v, want %v", sp.Cycle, stages, want)
		}
		if outcomes["classify"] != "yellow" {
			t.Errorf("cycle %d classify outcome = %q, want yellow", sp.Cycle, outcomes["classify"])
		}
		if !strings.HasPrefix(outcomes["sense"], fmt.Sprintf("readings=%d", agents)) {
			t.Errorf("cycle %d sense outcome = %q", sp.Cycle, outcomes["sense"])
		}
		if !strings.HasPrefix(outcomes["settle"], "cmds=") {
			t.Errorf("cycle %d settle outcome = %q", sp.Cycle, outcomes["settle"])
		}
	}
}

// TestMetricsUnderCycleChurn hammers /metrics, /debug/cycles and the wire
// status path while the control loop churns, under the race detector: the
// read side must never block or torn-read the control loop.
func TestMetricsUnderCycleChurn(t *testing.T) {
	srv := startMetricsFleet(t, 4)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				srv.StepCycle()
			}
		}
	}()

	client := &http.Client{Timeout: 5 * time.Second}
	for i := 0; i < 40; i++ {
		for _, path := range []string{"/metrics", "/debug/cycles", "/debug/cycles?n=2"} {
			resp, err := client.Get("http://" + srv.MetricsAddr() + path)
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("%s -> %d", path, resp.StatusCode)
			}
		}
		if st := srv.Status(); st.Cycles < 0 {
			t.Fatalf("bogus status: %+v", st)
		}
	}
	close(stop)
	wg.Wait()
}

// A bad metrics address must fail Start cleanly, not leave the daemon
// half-up.
func TestMetricsAddrInvalid(t *testing.T) {
	nw := faultnet.New(1)
	t.Cleanup(nw.Close)
	cfg := fanoutConfig(nw, time.Second, power.Thresholds{PL: 10, PH: 100})
	cfg.MetricsAddr = "256.256.256.256:bogus"
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err == nil {
		srv.Stop()
		t.Fatal("invalid MetricsAddr accepted")
	}
}
