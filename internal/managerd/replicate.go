package managerd

import (
	"time"

	"repro/internal/replica"
	"repro/internal/wire"
)

// Journal replication serving and leased leadership — the manager side of
// internal/replica's high-availability design.
//
// A standby's follower connects like any client and sends KindJournalAck
// carrying the sequence number its copy has reached; serveConn routes it
// here. Streaming itself — synchronous catch-up, gap-free publication,
// ack-driven lag accounting, drop-on-stall — lives in replica.Publisher,
// shared with the federation coordinator's HA; this file keeps only what
// is managerd-specific: epoch fencing, codec negotiation, and leadership.
//
// Leadership: while cfg.Lease is set the server rewrites the lease file
// every lease period. Discovering a higher epoch in the lease — a
// promoted standby claimed it — makes the server depose itself: it stops
// renewing, drops the leadership gauge, closes its listener and sheds
// every agent connection so the fleet redials to the new leader. The
// same self-fencing triggers when any peer (agent hello or follower
// subscribe) reports a higher epoch than ours.

// serveReplica owns one follower connection. Caller holds the serveConn
// wg slot; first is the subscribe frame.
func (s *Server) serveReplica(conn *wire.Conn, first wire.Envelope) {
	if s.epoch > 0 && first.Epoch > s.epoch {
		s.fencedHellos.Inc()
		s.depose()
		conn.Close()
		return
	}
	// Followers advertise codec support on their subscribe frame; a
	// binary-capable follower gets its journal stream on the fast codec.
	// No reply frame is needed — the read side auto-detects per frame,
	// so enabling the writer is the whole negotiation.
	if s.binaryWanted(&first) {
		conn.EnableBinary()
	}
	s.pub.Serve(conn, first.Seq)
}

// publishEntry fans one committed journal entry out to every subscriber.
func (s *Server) publishEntry(e replica.Entry) {
	s.pub.Publish(e)
}

// refreshReplicaGauges recomputes connected-follower count and worst
// replication lag (in journal entries) for Status and /metrics.
func (s *Server) refreshReplicaGauges() {
	conns, lag := s.pub.Stats()
	s.replicaConnsG.SetInt(int64(conns))
	s.replicaLagG.SetInt(int64(lag))
}

// renewLoop keeps the leadership lease fresh, and self-fences when a
// higher epoch appears in it.
func (s *Server) renewLoop() {
	defer s.wg.Done()
	every := s.cfg.Lease.Period()
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-s.stopCh:
			return
		case <-tick.C:
			if s.deposed.Load() {
				return
			}
			if st, err := s.cfg.Lease.Read(); err == nil && st.Epoch > s.epoch {
				s.depose()
				return
			}
			_ = s.cfg.Lease.Write(replica.LeaseState{
				Epoch: s.epoch, Holder: s.cfg.LeaseHolder, RenewedAt: time.Now(),
			})
		}
	}
}

// depose self-fences a leader that has been superseded: leadership gauge
// drops, lease renewal stops, the listener closes and every agent
// connection is shed so the fleet redials — and, carrying the new
// leader's epoch in their hellos, refuses us if we ever meet again. The
// server object stays alive (Status and metrics still serve) so
// operators can autopsy a deposed primary.
func (s *Server) depose() {
	if !s.deposed.CompareAndSwap(false, true) {
		return
	}
	s.leaderG.Set(0)
	if s.ln != nil {
		s.ln.Close()
	}
	if s.replicaLn != nil {
		s.replicaLn.Close()
	}
	s.pub.CloseSubs()
	for _, sh := range s.nodes.shards {
		sh.mu.Lock()
		acs := make([]*agentConn, 0, len(sh.agents))
		for _, ac := range sh.agents {
			acs = append(acs, ac)
		}
		sh.mu.Unlock()
		for _, ac := range acs {
			ac.conn.Close()
			s.retireOutbox(ac)
		}
	}
}

// Deposed reports whether this server has fenced itself off after
// discovering a newer leadership epoch.
func (s *Server) Deposed() bool { return s.deposed.Load() }

// Epoch returns the server's leadership epoch (0 = HA off).
func (s *Server) Epoch() uint64 { return s.epoch }
