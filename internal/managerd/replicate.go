package managerd

import (
	"encoding/json"
	"sync/atomic"
	"time"

	"repro/internal/replica"
	"repro/internal/wire"
)

// Journal replication serving and leased leadership — the manager side of
// internal/replica's high-availability design.
//
// A standby's follower connects like any client and sends KindJournalAck
// carrying the sequence number its copy has reached; serveConn routes it
// here. The subscriber is caught up synchronously under repMu (ring
// entries when the history is still held, a full-snapshot reset entry
// otherwise) and then receives every entry the control loop commits,
// each acked back so refreshGauges can report replication lag. A
// follower that stalls past its buffer is dropped — it redials and
// resumes from its own sequence number.
//
// Leadership: while cfg.Lease is set the server rewrites the lease file
// every lease period. Discovering a higher epoch in the lease — a
// promoted standby claimed it — makes the server depose itself: it stops
// renewing, drops the leadership gauge, closes its listener and sheds
// every agent connection so the fleet redials to the new leader. The
// same self-fencing triggers when any peer (agent hello or follower
// subscribe) reports a higher epoch than ours.

// replicaSubBuf sizes each subscriber's outbound buffer. It must cover a
// full catch-up burst (the ring) plus headroom for live entries
// committed while the writer drains it.
const replicaSubBuf = 1024

type replicaSub struct {
	conn   *wire.Conn
	ch     chan wire.Envelope
	closed chan struct{}
	acked  atomic.Uint64
}

// serveReplica owns one follower connection. Caller holds the serveConn
// wg slot; first is the subscribe frame.
func (s *Server) serveReplica(conn *wire.Conn, first wire.Envelope) {
	if s.epoch > 0 && first.Epoch > s.epoch {
		s.fencedHellos.Inc()
		s.depose()
		conn.Close()
		return
	}
	// Followers advertise codec support on their subscribe frame; a
	// binary-capable follower gets its journal stream on the fast codec.
	// No reply frame is needed — the read side auto-detects per frame,
	// so enabling the writer is the whole negotiation.
	if s.binaryWanted(&first) {
		conn.EnableBinary()
	}
	sub := &replicaSub{conn: conn, ch: make(chan wire.Envelope, replicaSubBuf), closed: make(chan struct{})}
	sub.acked.Store(first.Seq)

	// Catch-up and registration are one critical section: entries
	// committed while we enqueue the backlog are published to sub's
	// channel behind it, so the follower sees a gap-free stream.
	s.repMu.Lock()
	entries, ok := s.journal.EntriesSince(first.Seq)
	if !ok {
		entries = []replica.Entry{s.journal.ResetEntry()}
	}
	for _, e := range entries {
		env, err := appendEnvelope(e)
		if err != nil {
			s.repMu.Unlock()
			conn.Close()
			return
		}
		sub.ch <- env
	}
	s.subs[sub] = struct{}{}
	s.repMu.Unlock()

	s.wg.Add(1)
	go s.runReplicaWriter(sub)

	for {
		env, err := conn.Recv()
		if err != nil {
			break
		}
		if env.Type == wire.KindJournalAck {
			sub.acked.Store(env.Seq)
		}
	}
	s.dropSub(sub)
}

// runReplicaWriter drains one subscriber's channel onto its connection,
// under the command write deadline so a wedged follower cannot hold the
// buffer forever.
func (s *Server) runReplicaWriter(sub *replicaSub) {
	defer s.wg.Done()
	for {
		select {
		case <-sub.closed:
			return
		case <-s.stopCh:
			return
		case env := <-sub.ch:
			_ = sub.conn.SetWriteDeadline(time.Now().Add(s.cfg.CommandTimeout))
			if err := sub.conn.Send(env); err != nil {
				s.dropSub(sub)
				return
			}
		}
	}
}

// publishEntry fans one committed journal entry out to every subscriber.
// A subscriber whose buffer is full is dropped rather than waited on —
// it will redial and resume.
func (s *Server) publishEntry(e replica.Entry) {
	env, err := appendEnvelope(e)
	if err != nil {
		return
	}
	s.repMu.Lock()
	var full []*replicaSub
	for sub := range s.subs {
		select {
		case sub.ch <- env:
		default:
			full = append(full, sub)
		}
	}
	s.repMu.Unlock()
	for _, sub := range full {
		s.dropSub(sub)
	}
}

// dropSub unregisters a subscriber and closes its connection; idempotent
// across the reader, writer and publisher paths.
func (s *Server) dropSub(sub *replicaSub) {
	s.repMu.Lock()
	_, present := s.subs[sub]
	delete(s.subs, sub)
	s.repMu.Unlock()
	if present {
		close(sub.closed)
	}
	sub.conn.Close()
}

// closeSubs drops every subscriber (Stop path).
func (s *Server) closeSubs() {
	s.repMu.Lock()
	subs := make([]*replicaSub, 0, len(s.subs))
	for sub := range s.subs {
		subs = append(subs, sub)
	}
	s.repMu.Unlock()
	for _, sub := range subs {
		s.dropSub(sub)
	}
}

func appendEnvelope(e replica.Entry) (wire.Envelope, error) {
	raw, err := json.Marshal(e)
	if err != nil {
		return wire.Envelope{}, err
	}
	return wire.Envelope{Type: wire.KindJournalAppend, Seq: e.Seq, Epoch: e.Epoch, Entry: raw}, nil
}

// refreshReplicaGauges recomputes connected-follower count and worst
// replication lag (in journal entries) for Status and /metrics.
func (s *Server) refreshReplicaGauges() {
	head := s.journal.Seq()
	s.repMu.Lock()
	conns := len(s.subs)
	var lag uint64
	for sub := range s.subs {
		if a := sub.acked.Load(); head > a && head-a > lag {
			lag = head - a
		}
	}
	s.repMu.Unlock()
	s.replicaConnsG.SetInt(int64(conns))
	s.replicaLagG.SetInt(int64(lag))
}

// renewLoop keeps the leadership lease fresh, and self-fences when a
// higher epoch appears in it.
func (s *Server) renewLoop() {
	defer s.wg.Done()
	every := s.cfg.Lease.Period()
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-s.stopCh:
			return
		case <-tick.C:
			if s.deposed.Load() {
				return
			}
			if st, err := s.cfg.Lease.Read(); err == nil && st.Epoch > s.epoch {
				s.depose()
				return
			}
			_ = s.cfg.Lease.Write(replica.LeaseState{
				Epoch: s.epoch, Holder: s.cfg.LeaseHolder, RenewedAt: time.Now(),
			})
		}
	}
}

// depose self-fences a leader that has been superseded: leadership gauge
// drops, lease renewal stops, the listener closes and every agent
// connection is shed so the fleet redials — and, carrying the new
// leader's epoch in their hellos, refuses us if we ever meet again. The
// server object stays alive (Status and metrics still serve) so
// operators can autopsy a deposed primary.
func (s *Server) depose() {
	if !s.deposed.CompareAndSwap(false, true) {
		return
	}
	s.leaderG.Set(0)
	if s.ln != nil {
		s.ln.Close()
	}
	if s.replicaLn != nil {
		s.replicaLn.Close()
	}
	s.closeSubs()
	for _, sh := range s.nodes.shards {
		sh.mu.Lock()
		acs := make([]*agentConn, 0, len(sh.agents))
		for _, ac := range sh.agents {
			acs = append(acs, ac)
		}
		sh.mu.Unlock()
		for _, ac := range acs {
			ac.conn.Close()
			s.retireOutbox(ac)
		}
	}
}

// Deposed reports whether this server has fenced itself off after
// discovering a newer leadership epoch.
func (s *Server) Deposed() bool { return s.deposed.Load() }

// Epoch returns the server's leadership epoch (0 = HA off).
func (s *Server) Epoch() uint64 { return s.epoch }
