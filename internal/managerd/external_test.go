package managerd

import (
	"testing"
	"time"

	"repro/internal/policy"
	"repro/internal/power"
	"repro/internal/wire"
)

// startExternalServer boots a daemon in external-control mode: transport
// up, internal control loop off.
func startExternalServer(t *testing.T) *Server {
	t.Helper()
	srv, err := New(Config{
		Addr:            "127.0.0.1:0",
		Model:           power.TianheNode(),
		Policy:          policy.MPC{},
		Tg:              3,
		ControlEvery:    time.Hour, // must not matter: no internal loop
		Thresholds:      power.Thresholds{PL: 200, PH: 400},
		ExternalControl: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Stop)
	return srv
}

func TestExternalEpochFiltersStaleReadings(t *testing.T) {
	srv := startExternalServer(t)
	c := dialFakeAgent(t, srv.Addr(), 1, 9, 9)
	waitFor(t, 5*time.Second, "agent registered", func() bool {
		return srv.Status().Agents == 1
	})

	// The hello seeded a reading, but it belongs to no sense epoch: the
	// first cycle must sense nothing.
	srv.BeginSenseEpoch()
	if rs := srv.StartExternalCycle().Readings(); len(rs) != 0 {
		t.Fatalf("hello-seeded reading sensed: %+v", rs)
	}

	// A sample pushed inside the epoch is sensed.
	srv.BeginSenseEpoch()
	base := srv.SamplesReceived()
	if err := c.Send(busySample(1, 9)); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "sample accepted", func() bool {
		return srv.SamplesReceived() > base
	})
	rs := srv.StartExternalCycle().Readings()
	if len(rs) != 1 || rs[0].ID != 1 || rs[0].Level != 9 {
		t.Fatalf("readings = %+v, want node 1 at level 9", rs)
	}

	// Next epoch, no new push: last epoch's sample must not linger.
	srv.BeginSenseEpoch()
	if rs := srv.StartExternalCycle().Readings(); len(rs) != 0 {
		t.Fatalf("stale-epoch reading sensed: %+v", rs)
	}
}

func TestExternalCycleActuatesAndSettles(t *testing.T) {
	srv := startExternalServer(t)
	c := dialFakeAgent(t, srv.Addr(), 2, 9, 9)
	// Well-behaved agent: ack every command at the commanded level.
	go func() {
		for {
			env, err := c.Recv()
			if err != nil {
				return
			}
			if env.Type == wire.KindCommand {
				_ = c.Send(wire.Envelope{Type: wire.KindAck, Node: 2, Seq: env.Seq, Level: env.Level})
			}
		}
	}()
	waitFor(t, 5*time.Second, "agent registered", func() bool {
		return srv.Status().Agents == 1
	})

	srv.BeginSenseEpoch()
	cyc := srv.StartExternalCycle()
	if err := cyc.SetNodeLevel(2, 4); err != nil {
		t.Fatal(err)
	}
	if err := cyc.Finish(5 * time.Second); err != nil {
		t.Fatal(err)
	}
	if n := srv.UnackedCommands(); n != 0 {
		t.Errorf("UnackedCommands = %d after Finish", n)
	}
	if st := srv.Status(); st.CommandAcks < 1 {
		t.Errorf("no acks counted: %+v", st)
	}
}

func TestExternalCycleRetriesUnacked(t *testing.T) {
	srv := startExternalServer(t)
	c := dialFakeAgent(t, srv.Addr(), 3, 9, 9)
	// Deaf agent: reads commands but never acks.
	acks := make(chan wire.Envelope, 16)
	go func() {
		for {
			env, err := c.Recv()
			if err != nil {
				return
			}
			if env.Type == wire.KindCommand {
				acks <- env
			}
		}
	}()
	waitFor(t, 5*time.Second, "agent registered", func() bool {
		return srv.Status().Agents == 1
	})

	srv.BeginSenseEpoch()
	cyc := srv.StartExternalCycle()
	if err := cyc.SetNodeLevel(3, 5); err != nil {
		t.Fatal(err)
	}
	// The command is never acked, so the cycle cannot settle.
	if err := cyc.Finish(50 * time.Millisecond); err == nil {
		t.Fatal("Finish succeeded with an unacked command")
	}
	if n := srv.UnackedCommands(); n != 1 {
		t.Fatalf("UnackedCommands = %d, want 1", n)
	}

	// The next cycle's transport upkeep must re-send it.
	srv.BeginSenseEpoch()
	cyc2 := srv.StartExternalCycle()
	waitFor(t, 5*time.Second, "command retried", func() bool {
		return srv.Status().CommandRetries >= 1
	})
	// Both the original and the retry arrive at the agent; retries keep
	// the original sequence number.
	got := 0
	var seq uint64
	deadline := time.After(5 * time.Second)
	for got < 2 {
		select {
		case env := <-acks:
			if env.Level != 5 {
				t.Errorf("commanded level %d, want 5", env.Level)
			}
			seq = env.Seq
			got++
		case <-deadline:
			t.Fatalf("agent saw %d commands, want 2 (original + retry)", got)
		}
	}
	// Ack the retry: the pending command finally settles.
	if err := c.Send(wire.Envelope{Type: wire.KindAck, Node: 3, Seq: seq, Level: 5}); err != nil {
		t.Fatal(err)
	}
	_ = cyc2
	waitFor(t, 5*time.Second, "command settled", func() bool {
		return srv.UnackedCommands() == 0
	})
}
