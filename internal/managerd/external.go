package managerd

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/manager"
	"repro/internal/node"
	"repro/internal/obs"
	"repro/internal/units"
)

// External control mode (Config.ExternalControl): the daemon keeps its
// whole transport stack — accept loop, per-connection readers, sharded
// node store, per-node sender goroutines, command seq/ack/retry — but
// runs no control law of its own. An external driver (the daemon backend
// in internal/backend) owns the clock and the algorithm:
//
//	driver: BeginSenseEpoch → agents push one sample each
//	driver: wait until SamplesReceived caught up
//	driver: cyc := StartExternalCycle()
//	core:   readings := cyc.Readings()      // sensing, over the wire
//	core:   mgr.Cycle(..., cyc)             // Algorithm 1, one control law
//	driver: cyc.Finish(timeout)             // fan-out + acks settled
//
// Freshness is epoch-based, not wall-clock: between virtual-time cycles
// almost no wall time passes, so StaleAfter cannot distinguish a node
// that reported this cycle from one that dropped out of the candidate
// set three cycles ago. Each sample is stamped with the sense epoch it
// arrived in, and Readings returns only the current epoch's.

// BeginSenseEpoch opens a new sense epoch and returns its number.
// Samples arriving from now on are stamped with it.
func (s *Server) BeginSenseEpoch() uint64 { return s.extEpoch.Add(1) }

// SamplesReceived reports how many agent samples the daemon has accepted
// over the wire; the external driver polls it to know when an epoch's
// pushes have all landed.
func (s *Server) SamplesReceived() int64 { return s.samplesRecv.Value() }

// ExternalCycle is one externally driven control cycle. It implements
// manager.Actuator: commands issued through it are tagged with the
// cycle's fan-out tracker, so Finish can wait for their delivery.
type ExternalCycle struct {
	s        *Server
	fan      *fanout
	span     *obs.CycleHandle
	t0       time.Time
	readings []manager.AgentReading
}

// StartExternalCycle runs the per-cycle transport upkeep — health
// classification, retry of unacked commands, reconciliation of drifted
// levels — and snapshots the current sense epoch's readings. It must not
// overlap another external cycle or the internal control loop.
func (s *Server) StartExternalCycle() *ExternalCycle {
	t0 := time.Now()
	cycleN := int(s.cycleN.Add(1))
	span := s.trace.Begin()
	cyc := &ExternalCycle{s: s, fan: s.newFanout(t0, span), span: span, t0: t0}
	epoch := s.extEpoch.Load()

	type resend struct {
		ac    *agentConn
		level int
		seq   uint64
	}
	type part struct {
		readings []manager.AgentReading
		resends  []resend
	}
	parts := make([]part, len(s.nodes.shards))
	s.forEachShard(func(i int, sh *shard) {
		g := &parts[i]
		drift := 0
		sh.mu.Lock()
		updateHealth(sh, t0, &s.cfg)
		for id, ac := range sh.agents {
			if ac.seen && ac.lastEpoch == epoch && !quarantinedIn(sh, id) {
				g.readings = append(g.readings, ac.last)
			}
			cs := sh.cmds[id]
			if ac.seen && cs != nil && ac.last.Level != cs.level {
				drift++
			}
			if cs == nil || !ac.seen || quarantinedIn(sh, id) {
				continue
			}
			switch {
			case !cs.acked && cycleN > cs.sentCycle:
				cs.retries++
				cs.sentCycle = cycleN
				s.cmdRetries.Add(1)
				g.resends = append(g.resends, resend{ac, cs.level, cs.seq})
			case cs.acked && ac.last.Level != cs.level && cycleN >= cs.sentCycle+2:
				cs.seq = s.seq.Add(1)
				cs.acked = false
				cs.sentCycle = cycleN
				s.reconciles.Add(1)
				g.resends = append(g.resends, resend{ac, cs.level, cs.seq})
			}
		}
		sh.drifted = drift
		sh.mu.Unlock()
	})

	var p units.Watts
	for i := range parts {
		cyc.readings = append(cyc.readings, parts[i].readings...)
		for _, r := range parts[i].readings {
			p += s.cfg.Model.Estimate(r.Delta, r.Level)
		}
		for _, r := range parts[i].resends {
			s.dispatch(r.ac, r.level, r.seq, cyc.fan)
		}
	}
	// Map iteration scattered the readings; the control law's contract is
	// node-ID order (deterministic policy tie-breaks).
	sort.Slice(cyc.readings, func(a, b int) bool { return cyc.readings[a].ID < cyc.readings[b].ID })
	// The transport's sensing stage: upkeep sweep plus this epoch's
	// reading snapshot. The control-law stages (classify/select/actuate)
	// are recorded by the external driver's own recorder.
	collect := time.Since(t0)
	span.Stage(obs.StageSense, collect, fmt.Sprintf("readings=%d", len(cyc.readings)))
	cus := collect.Microseconds()
	s.lastCollectMicros.SetInt(cus)
	s.collectMicros.Add(float64(cus))
	s.lastPowerW.Set(float64(p))
	if s.learner == nil {
		s.lifetimePeakW.Max(float64(p))
	}
	return cyc
}

// Readings returns the cycle's sensed candidate readings in node-ID
// order: exactly the samples the agents pushed this sense epoch.
func (c *ExternalCycle) Readings() []manager.AgentReading { return c.readings }

// SetNodeLevel implements manager.Actuator over the wire, tagged with
// this cycle's fan-out tracker.
func (c *ExternalCycle) SetNodeLevel(id node.ID, level int) error {
	return actuator{c.s, c.fan}.SetNodeLevel(id, level)
}

// Finish closes the cycle: it waits for the command fan-out to complete
// (every command written or abandoned to the retry path) and then for
// every in-flight command to be acknowledged, so the commanded levels
// are in force on the far side before the driver advances virtual time —
// matching the simulation backend's synchronous actuation semantics.
func (c *ExternalCycle) Finish(timeout time.Duration) error {
	s := c.s
	c.fan.finishEnqueue()
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	select {
	case <-c.fan.done:
	case <-deadline.C:
		return fmt.Errorf("managerd: external cycle fan-out incomplete after %v", timeout)
	}
	end := time.Now().Add(timeout)
	for s.UnackedCommands() > 0 {
		if time.Now().After(end) {
			return fmt.Errorf("managerd: %d commands unacked after %v", s.UnackedCommands(), timeout)
		}
		time.Sleep(100 * time.Microsecond)
	}
	c.span.End()
	busy := time.Since(c.t0)
	us := busy.Microseconds()
	s.lastCycleMicros.SetInt(us)
	s.maxCycleMicros.Max(float64(us))
	s.busyMicros.Add(float64(busy) / float64(time.Microsecond))
	return nil
}

// UnackedCommands counts commands in flight: issued (or retried) but not
// yet acknowledged by their agent.
func (s *Server) UnackedCommands() int {
	n := 0
	for _, sh := range s.nodes.shards {
		sh.mu.Lock()
		for _, cs := range sh.cmds {
			if !cs.acked {
				n++
			}
		}
		sh.mu.Unlock()
	}
	return n
}
