package managerd

import (
	"time"

	"repro/internal/node"
	"repro/internal/obs"
)

// Node health state machine. The manager classifies every node it has
// ever seen (or recovered from the journal) into one of four states each
// control cycle:
//
//	healthy     fresh sample within StaleAfter
//	stale       connected, but the newest sample is older than StaleAfter
//	lost        disconnected, or silent beyond LostAfter
//	quarantined reconnect-flapping: ≥ FlapLimit connects within FlapWindow
//
// Quarantined nodes are excluded from the candidate set — the §II.A
// controllability assumption treats them as A_uncontrollable: their power
// still counts toward the system estimate, but the manager stops sending
// them commands a flapping link would lose anyway. Quarantine carries
// hysteresis: it lasts at least Quarantine, and is extended while the
// connect rate stays above the flap limit, so a link that keeps bouncing
// cannot oscillate in and out of the candidate set.
type healthState int

const (
	healthHealthy healthState = iota
	healthStale
	healthLost
	healthQuarantined
)

func (s healthState) String() string {
	switch s {
	case healthHealthy:
		return "healthy"
	case healthStale:
		return "stale"
	case healthLost:
		return "lost"
	case healthQuarantined:
		return "quarantined"
	default:
		return "unknown"
	}
}

// healthRec is one node's health record. It outlives the node's
// connection: a disconnected node stays in the table as lost, and its
// reconnect history survives redials — that is what makes flap detection
// possible. All access is under the owning shard's mutex; a node's health
// record lives in the same shard as its connection and command state, so
// one lock covers all three.
type healthRec struct {
	state         healthState
	connects      []time.Time // connect times within the flap window
	quarantinedAt time.Time
	sendErrs      int // failed writes charged to this node (current conn only)
}

// pruneConnects drops connect records older than the flap window.
func (h *healthRec) pruneConnects(now time.Time, window time.Duration) {
	cut := now.Add(-window)
	i := 0
	for i < len(h.connects) && h.connects[i].Before(cut) {
		i++
	}
	h.connects = h.connects[i:]
}

// noteConnect records a (re)connect for id and quarantines the node when
// the connect rate crosses the flap limit. Caller holds sh.mu; id must
// belong to sh. quarantines is the server-wide entry counter.
func noteConnect(sh *shard, id node.ID, now time.Time, cfg *Config, quarantines *obs.Counter) {
	rec := sh.health[id]
	if rec == nil {
		rec = &healthRec{state: healthHealthy}
		sh.health[id] = rec
		sh.nHealthy++
	}
	rec.connects = append(rec.connects, now)
	rec.pruneConnects(now, cfg.FlapWindow)
	if cfg.FlapLimit > 0 && len(rec.connects) >= cfg.FlapLimit && rec.state != healthQuarantined {
		// Keep the cached shard tallies exact across the transition: the
		// next updateHealth sweep would fix them anyway, but Status may
		// read them first.
		switch rec.state {
		case healthHealthy:
			sh.nHealthy--
		case healthStale:
			sh.nStale--
		case healthLost:
			sh.nLost--
		}
		sh.nQuar++
		rec.state = healthQuarantined
		rec.quarantinedAt = now
		quarantines.Inc()
	}
}

// updateHealth re-evaluates the state of every node in sh. Caller holds
// sh.mu; the per-shard sweeps run concurrently on the cycle's worker
// pool, which is safe because a node's whole record lives in one shard.
// The sweep doubles as the tally refresh: it already visits every
// record, so recomputing the shard's cached health counts here is free
// and keeps refreshGauges O(shards).
func updateHealth(sh *shard, now time.Time, cfg *Config) {
	var healthy, stale, lost, quar int
	for id, rec := range sh.health {
		if rec.state == healthQuarantined {
			if now.Sub(rec.quarantinedAt) < cfg.Quarantine {
				quar++
				continue
			}
			rec.pruneConnects(now, cfg.FlapWindow)
			if cfg.FlapLimit > 0 && len(rec.connects) >= cfg.FlapLimit {
				// Still flapping: extend the quarantine (hysteresis).
				rec.quarantinedAt = now
				quar++
				continue
			}
			// Quarantine served and the link has settled; fall through to
			// the freshness-based classification.
		}
		ac, connected := sh.agents[id]
		switch {
		case !connected:
			rec.state = healthLost
			lost++
		case now.Sub(ac.lastAt) > cfg.LostAfter:
			rec.state = healthLost
			lost++
		case now.Sub(ac.lastAt) > cfg.StaleAfter:
			rec.state = healthStale
			stale++
		default:
			rec.state = healthHealthy
			healthy++
		}
	}
	sh.nHealthy, sh.nStale, sh.nLost, sh.nQuar = healthy, stale, lost, quar
}

// quarantinedIn reports whether id (a node of sh) is currently
// quarantined. Caller holds sh.mu.
func quarantinedIn(sh *shard, id node.ID) bool {
	rec, ok := sh.health[id]
	return ok && rec.state == healthQuarantined
}

