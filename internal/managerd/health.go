package managerd

import (
	"time"

	"repro/internal/node"
)

// Node health state machine. The manager classifies every node it has
// ever seen (or recovered from the journal) into one of four states each
// control cycle:
//
//	healthy     fresh sample within StaleAfter
//	stale       connected, but the newest sample is older than StaleAfter
//	lost        disconnected, or silent beyond LostAfter
//	quarantined reconnect-flapping: ≥ FlapLimit connects within FlapWindow
//
// Quarantined nodes are excluded from the candidate set — the §II.A
// controllability assumption treats them as A_uncontrollable: their power
// still counts toward the system estimate, but the manager stops sending
// them commands a flapping link would lose anyway. Quarantine carries
// hysteresis: it lasts at least Quarantine, and is extended while the
// connect rate stays above the flap limit, so a link that keeps bouncing
// cannot oscillate in and out of the candidate set.
type healthState int

const (
	healthHealthy healthState = iota
	healthStale
	healthLost
	healthQuarantined
)

func (s healthState) String() string {
	switch s {
	case healthHealthy:
		return "healthy"
	case healthStale:
		return "stale"
	case healthLost:
		return "lost"
	case healthQuarantined:
		return "quarantined"
	default:
		return "unknown"
	}
}

// healthRec is one node's health record. It outlives the node's
// connection: a disconnected node stays in the table as lost, and its
// reconnect history survives redials — that is what makes flap detection
// possible. All access is under Server.mu.
type healthRec struct {
	state         healthState
	connects      []time.Time // connect times within the flap window
	quarantinedAt time.Time
}

// pruneConnects drops connect records older than the flap window.
func (h *healthRec) pruneConnects(now time.Time, window time.Duration) {
	cut := now.Add(-window)
	i := 0
	for i < len(h.connects) && h.connects[i].Before(cut) {
		i++
	}
	h.connects = h.connects[i:]
}

// noteConnect records a (re)connect for id and quarantines the node when
// the connect rate crosses the flap limit. Caller holds s.mu.
func (s *Server) noteConnect(id node.ID, now time.Time) {
	rec := s.health[id]
	if rec == nil {
		rec = &healthRec{state: healthHealthy}
		s.health[id] = rec
	}
	rec.connects = append(rec.connects, now)
	rec.pruneConnects(now, s.cfg.FlapWindow)
	if s.cfg.FlapLimit > 0 && len(rec.connects) >= s.cfg.FlapLimit && rec.state != healthQuarantined {
		rec.state = healthQuarantined
		rec.quarantinedAt = now
		s.quarantines++
	}
}

// updateHealth re-evaluates every known node's state. Caller holds s.mu.
func (s *Server) updateHealth(now time.Time) {
	for id, rec := range s.health {
		if rec.state == healthQuarantined {
			if now.Sub(rec.quarantinedAt) < s.cfg.Quarantine {
				continue
			}
			rec.pruneConnects(now, s.cfg.FlapWindow)
			if s.cfg.FlapLimit > 0 && len(rec.connects) >= s.cfg.FlapLimit {
				// Still flapping: extend the quarantine (hysteresis).
				rec.quarantinedAt = now
				continue
			}
			// Quarantine served and the link has settled; fall through to
			// the freshness-based classification.
		}
		ac, connected := s.agents[id]
		switch {
		case !connected:
			rec.state = healthLost
		case now.Sub(ac.lastAt) > s.cfg.LostAfter:
			rec.state = healthLost
		case now.Sub(ac.lastAt) > s.cfg.StaleAfter:
			rec.state = healthStale
		default:
			rec.state = healthHealthy
		}
	}
}

// quarantined reports whether id is currently quarantined. Caller holds
// s.mu.
func (s *Server) quarantined(id node.ID) bool {
	rec, ok := s.health[id]
	return ok && rec.state == healthQuarantined
}

// healthCounts tallies nodes per state. Caller holds s.mu.
func (s *Server) healthCounts() (healthy, stale, lost, quarantined int) {
	for _, rec := range s.health {
		switch rec.state {
		case healthHealthy:
			healthy++
		case healthStale:
			stale++
		case healthLost:
			lost++
		case healthQuarantined:
			quarantined++
		}
	}
	return
}
