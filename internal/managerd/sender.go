package managerd

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/wire"
)

// Per-node outbound senders. The old actuation path wrote commands
// synchronously from the control loop: one agent that stopped draining
// its socket cost the cycle a full CommandTimeout, and N slow nodes cost
// N timeouts back to back — head-of-line blocking exactly where
// Algorithm 1's red-state reaction time matters most. Now every
// connection owns a sender goroutine fed by a coalescing outbox: the
// control loop enqueues (O(1), never blocks on the network) and the
// senders write concurrently, so the cycle's actuation cost is bounded
// by the slowest single node, not the sum of the slow ones.
//
// The outbox is deliberately one command deep: a newer command for a
// node supersedes an unsent older one (the level to hold is a state, not
// a log — only the newest matters), with supersessions counted in
// CoalescedCmds. A pending heartbeat rides in the same write as a queued
// command via the wire batch frame, so a slow cycle costs one write per
// node regardless of how much the control plane tried to tell it.

// pendingCmd is one level command queued in a node's outbox.
type pendingCmd struct {
	level int
	seq   uint64
	fan   *fanout // fan-out tracker of the issuing cycle; nil outside cycles
}

// enqueueCommand queues pc, superseding any unsent older command. It
// reports whether the outbox accepted it (false: connection mid-teardown)
// and whether an older command was superseded. The superseded command's
// fan-out slot is released here; its delivery is owed to the retry path,
// not this write.
func (ac *agentConn) enqueueCommand(pc pendingCmd) (ok, superseded bool) {
	ac.obMu.Lock()
	if ac.obClosed {
		ac.obMu.Unlock()
		return false, false
	}
	old, had := ac.obCmd, ac.obHas
	ac.obCmd, ac.obHas = pc, true
	ac.obMu.Unlock()
	if had && old.fan != nil {
		old.fan.complete()
	}
	ac.wakeSender()
	return true, had
}

// enqueuePing raises the outbox's heartbeat flag; the sender folds it
// into its next write.
func (ac *agentConn) enqueuePing() {
	ac.obMu.Lock()
	if ac.obClosed {
		ac.obMu.Unlock()
		return
	}
	ac.obPing = true
	ac.obMu.Unlock()
	ac.wakeSender()
}

// wakeSender nudges the sender goroutine; a token already in flight is
// enough, so this never blocks.
func (ac *agentConn) wakeSender() {
	select {
	case ac.wake <- struct{}{}:
	default:
	}
}

// closeOutbox marks the outbox closed and returns the command it was
// still holding, if any (had=false when empty or already closed). The
// caller releases the dropped command's fan-out slot.
func (ac *agentConn) closeOutbox() (pc pendingCmd, had bool) {
	ac.obMu.Lock()
	if ac.obClosed {
		ac.obMu.Unlock()
		return pendingCmd{}, false
	}
	ac.obClosed = true
	pc, had = ac.obCmd, ac.obHas
	ac.obCmd, ac.obHas, ac.obPing = pendingCmd{}, false, false
	ac.obMu.Unlock()
	ac.wakeSender()
	return pc, had
}

// retireOutbox closes ac's outbox and releases any queued command's
// fan-out slot — the teardown half of the sender lifecycle, called when
// the connection dies, is replaced by a redial, or the server stops.
func (s *Server) retireOutbox(ac *agentConn) {
	if pc, had := ac.closeOutbox(); had && pc.fan != nil {
		pc.fan.complete()
	}
}

// runSender is one connection's sender goroutine: it drains the outbox,
// writing whatever accumulated (newest command, pending ping) as a single
// deadline-bounded batch write. A write failure retires the connection —
// after a deadline the stream is mid-message and unrecoverable — and the
// in-flight command stays recorded in cmds for the retry path.
func (s *Server) runSender(ac *agentConn) {
	defer s.wg.Done()
	// envs is the sender's reusable scratch batch: the steady-state write
	// path (drain outbox → encode → write) allocates nothing per command;
	// the connection's codec buffer is likewise reused underneath.
	envs := make([]wire.Envelope, 0, 2)
	// armedUntil is the write deadline currently set on the connection;
	// only this goroutine sets write deadlines, so no lock is needed.
	var armedUntil time.Time
	for {
		ac.obMu.Lock()
		pc, has, ping, closed := ac.obCmd, ac.obHas, ac.obPing, ac.obClosed
		ac.obHas, ac.obPing = false, false
		ac.obMu.Unlock()

		if !has && !ping {
			if closed {
				return
			}
			<-ac.wake
			continue
		}

		envs = envs[:0]
		if has {
			envs = append(envs, wire.Envelope{
				Type: wire.KindCommand, Node: int(ac.id), Level: pc.level, Seq: pc.seq,
			})
		}
		if ping {
			envs = append(envs, wire.Envelope{Type: wire.KindPing})
		}
		// Keep the write deadline armed across batches instead of the
		// arm/disarm pair per write: every SetWriteDeadline stops and
		// re-creates a runtime timer, and at fleet scale those timer-heap
		// operations dominate the sender's profile (two per agent per
		// cycle). Re-arming only once more than half the window has
		// burned keeps any single write bounded by CommandTimeout while
		// the steady-state path touches the timer ~never. The deadline
		// left armed between writes is harmless: SetWriteDeadline resets
		// any expired state before the next write.
		now := time.Now()
		if armedUntil.Sub(now) < s.cfg.CommandTimeout/2 {
			armedUntil = now.Add(s.cfg.CommandTimeout)
			_ = ac.conn.SetWriteDeadline(armedUntil)
		}
		err := ac.conn.SendBatch(envs)
		if err != nil {
			// Account the failure before releasing the fan-out slot, so a
			// caller unblocked by fan-out completion observes the error
			// counters already settled.
			s.noteSendError(ac)
			ac.conn.Close()
		}
		if has && pc.fan != nil {
			pc.fan.complete()
		}
		if err != nil {
			s.retireOutbox(ac)
			return
		}
	}
}

// noteSendError accounts one failed outbound write. The error is charged
// to the node's CommandErrors only if ac is still the node's current
// connection: during a reconnect flap the agent may already have redialled,
// and a timeout surfacing on the superseded connection says nothing about
// the fresh one — charging it would mis-attribute a dead epoch's failure
// to a healthy node (and, via health accounting, to whoever reads it).
// Such late failures are counted separately in StaleConnErrors.
func (s *Server) noteSendError(ac *agentConn) {
	sh := s.nodes.of(ac.id)
	sh.mu.Lock()
	current := sh.agents[ac.id] == ac
	if current {
		if rec := sh.health[ac.id]; rec != nil {
			rec.sendErrs++
		}
	}
	sh.mu.Unlock()
	if current {
		s.cmdErrs.Inc()
	} else {
		s.staleConnErrs.Inc()
	}
}

// fanout tracks one control cycle's command fan-out: every command handed
// to a sender holds a slot, and the cycle itself holds one until its
// enqueue phase ends. When the last slot releases, the fan-out is
// complete — every command of the cycle was written or abandoned to the
// retry path — and the latency is recorded. StepCycle blocks on done.
type fanout struct {
	s       *Server
	t0      time.Time
	span    *obs.CycleHandle // issuing cycle's staged span; settle lands here
	pending atomic.Int64
	issued  atomic.Int64 // commands that claimed a slot
	dur     time.Duration
	done    chan struct{}
}

func (s *Server) newFanout(t0 time.Time, span *obs.CycleHandle) *fanout {
	f := &fanout{s: s, t0: t0, span: span, done: make(chan struct{})}
	f.pending.Store(1) // the cycle's own slot, released by finishEnqueue
	return f
}

// add claims a slot for one dispatched command.
func (f *fanout) add() {
	f.pending.Add(1)
	f.issued.Add(1)
}

// complete releases one slot; the last release stamps the latency and
// records the cycle's settle stage (asynchronously — the cycle's span may
// already be closed, which the recorder allows).
func (f *fanout) complete() {
	if f.pending.Add(-1) != 0 {
		return
	}
	f.dur = time.Since(f.t0)
	us := f.dur.Microseconds()
	f.s.lastFanoutMicros.SetInt(us)
	f.s.maxFanoutMicros.Max(float64(us))
	f.span.Stage(obs.StageSettle, f.dur, fmt.Sprintf("cmds=%d", f.issued.Load()))
	close(f.done)
}

// finishEnqueue releases the cycle's own slot: all commands this cycle
// will ever issue have been dispatched.
func (f *fanout) finishEnqueue() { f.complete() }
