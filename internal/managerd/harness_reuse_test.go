package managerd_test

// The managerd end-to-end samples-flow test, converted from its original
// loopback-TCP form to the in-process cluster harness: same daemon code,
// same assertions, but the transport is internal/faultnet (here fault-free)
// and the boilerplate — listener wiring, agent spawning, goroutine-leak
// checking — lives in internal/harness. This is the reuse proof for the
// harness: a daemon-plane test converts by deleting its scaffolding.

import (
	"testing"
	"time"

	"repro/internal/harness"
)

func TestEndToEndSamplesFlow(t *testing.T) {
	// Generous (default megawatt-band) thresholds: system stays green,
	// no commands needed.
	c := harness.Start(t, harness.Options{Agents: 4})
	c.AwaitAgents(4, 10*time.Second)
	harness.WaitUntil(t, 10*time.Second, func() bool {
		st := c.Status()
		return st.Cycles >= 4 && st.LastPowerW > 0
	}, "daemon never converged: %+v", c.Status())
	if st := c.Status(); st.RedCycles != 0 || st.DegradeOps != 0 {
		t.Errorf("unexpected throttling: %+v", st)
	}
}
