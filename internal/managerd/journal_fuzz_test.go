package managerd

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/policy"
	"repro/internal/power"
	"repro/internal/replica"
)

// FuzzJournalLoad throws arbitrary snapshot and append-log bytes at the
// journal load path and checks the recovery contract: loading either
// cold-starts cleanly or yields a fully valid state (no negative levels,
// no duplicate nodes, sequence bookkeeping consistent) — never a partial
// one — the loaded state is stable across a reload, and daemon
// construction over the journal never fails because of its contents.
func FuzzJournalLoad(f *testing.F) {
	f.Add(
		[]byte(`{"saved_at_cycle":3,"last_seq":2,"pl_w":900,"ph_w":950,"levels":[{"node":1,"level":4}]}`),
		[]byte(`{"seq":3,"cycle":4,"levels":[{"node":2,"level":0}]}`+"\n"),
	)
	f.Add([]byte(``), []byte(``))
	f.Add([]byte(`not json at all{{{`), []byte(`{"seq":1,"cycle":1,"levels":[{"node":0,"level":1}]}`+"\n"))
	f.Add(
		[]byte(`{"saved_at_cycle":1,"levels":[{"node":0,"level":-3}]}`),
		[]byte(`{"seq":9,"levels":[{"node":-1,"level":2}]}`+"\n"+`{"seq":10`),
	)
	f.Add(
		// Duplicate then gap: replay keeps the valid prefix only.
		[]byte(`{"saved_at_cycle":2,"last_seq":2,"levels":[{"node":3,"level":1}]}`),
		[]byte(`{"seq":2,"cycle":2,"levels":[{"node":3,"level":1}]}`+"\n"+
			`{"seq":3,"cycle":3,"levels":[{"node":3,"level":0}]}`+"\n"+
			`{"seq":7,"cycle":9,"levels":[{"node":3,"level":9}]}`+"\n"),
	)
	f.Add(
		// A reset entry mid-log replaces everything before it.
		[]byte(``),
		[]byte(`{"seq":5,"reset":{"saved_at_cycle":8,"last_seq":5,"levels":[{"node":4,"level":2}]}}`+"\n"+
			`{"seq":6,"cycle":9,"levels":[{"node":4,"level":1}]}`+"\n"),
	)

	f.Fuzz(runJournalLoadBody)
}

func runJournalLoadBody(t *testing.T, snap, log []byte) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal.json")
	if err := os.WriteFile(path, snap, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path+".log", log, 0o644); err != nil {
		t.Fatal(err)
	}

	st, err := replica.Open(path)
	if err != nil {
		t.Fatalf("open over writable dir failed: %v", err)
	}
	state := st.State()
	checkSnapshotInvariants(t, state)
	if state.LastSeq != st.Seq() {
		t.Fatalf("snapshot seq %d != store seq %d", state.LastSeq, st.Seq())
	}
	st.Close()

	// Open compacted the load into a fresh snapshot: reopening must
	// reproduce the state bit for bit.
	st2, err := replica.Open(path)
	if err != nil {
		t.Fatalf("reopen failed: %v", err)
	}
	state2 := st2.State()
	st2.Close()
	if !reflect.DeepEqual(state, state2) {
		t.Fatalf("reload unstable:\n first %+v\nsecond %+v", state, state2)
	}

	// The daemon must construct over any journal contents. Gated on the
	// journal actually carrying state: the cold-start path is exercised by
	// unit tests, and skipping it here keeps the mutation throughput on
	// the parsing/replay code where the fuzzer earns its keep.
	if len(state.Levels) == 0 && state.Learner == nil {
		return
	}
	srv, err := New(Config{
		Addr:         "127.0.0.1:0",
		Model:        power.TianheNode(),
		Policy:       policy.MPC{},
		Tg:           3,
		ControlEvery: time.Minute,
		Thresholds:   power.Thresholds{PL: 1e6, PH: 2e6},
		JournalPath:  path,
	})
	if err != nil {
		t.Fatalf("journal contents failed daemon construction: %v", err)
	}
	if rep := srv.Status(); rep.LostNodes != len(state.Levels) {
		t.Fatalf("restored %d journal nodes, tracked %d as lost", len(state.Levels), rep.LostNodes)
	}
	srv.Stop()
}

func checkSnapshotInvariants(t *testing.T, s replica.Snapshot) {
	t.Helper()
	if s.SavedAtCycle < 0 {
		t.Fatalf("negative cycle survived load: %+v", s)
	}
	for i, l := range s.Levels {
		if l.Node < 0 || l.Level < 0 {
			t.Fatalf("invalid level survived load: %+v", l)
		}
		if i > 0 && s.Levels[i-1].Node >= l.Node {
			t.Fatalf("levels unsorted or duplicated: %+v", s.Levels)
		}
	}
}
