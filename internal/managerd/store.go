package managerd

import (
	"sync"

	"repro/internal/node"
)

// Sharded node state. Before this existed, one Server.mu serialised every
// toucher of the per-node maps: each agent's sample-reader goroutine, the
// ack path, the health scanner, the control loop's collect pass and the
// status endpoint. At 128 nodes that mutex is invisible; at 1024+ it is
// the control plane's hottest lock. The store splits the three per-node
// maps (connection, in-flight command, health record) into power-of-two
// shards keyed by a mixed node ID, so the id→shard mapping is stable and
// all state for one node — connection, command, health — lives behind one
// shard mutex and can be updated atomically together.
//
// Lock ordering: a shard mutex may be taken while holding no other lock,
// or under Server.mgrMu (the control loop). An agentConn's outbox mutex
// (sender.go) is strictly below every shard mutex: code holding an outbox
// lock must never touch a shard. Shards are never locked pairwise, so
// shard order does not matter.

// shard is one slice of the node-state tables, with everything about its
// nodes guarded by its own mutex.
type shard struct {
	mu     sync.Mutex
	agents map[node.ID]*agentConn
	cmds   map[node.ID]*cmdState
	health map[node.ID]*healthRec

	// Cached tallies, guarded by mu. The health counts are recomputed by
	// every updateHealth sweep and adjusted incrementally by noteConnect
	// and the journal restore; drifted is recomputed by each control
	// cycle's collect sweep. They exist so refreshGauges — and therefore
	// Status and every /metrics scrape — reads O(shards) cached integers
	// instead of re-walking every node record per call.
	nHealthy int
	nStale   int
	nLost    int
	nQuar    int
	drifted  int

	// Connected-agent codec tallies, adjusted at connection register,
	// replace and teardown in serveConn — the same O(shards) cache idea
	// as the health counts, feeding the binary_conns/json_conns gauges.
	nBin  int
	nJSON int
}

// store is the sharded node-state table.
type store struct {
	shards []*shard
	mask   uint64
}

// newStore builds a store with n shards, rounded up to a power of two.
func newStore(n int) *store {
	size := 1
	for size < n {
		size <<= 1
	}
	st := &store{shards: make([]*shard, size), mask: uint64(size - 1)}
	for i := range st.shards {
		st.shards[i] = &shard{
			agents: make(map[node.ID]*agentConn),
			cmds:   make(map[node.ID]*cmdState),
			health: make(map[node.ID]*healthRec),
		}
	}
	return st
}

// mix scrambles a node ID so dense sequential IDs (the common case: nodes
// numbered 0..N-1) spread uniformly across shards instead of striping.
// Same splitmix64 finaliser as the sim and faultnet RNG streams.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// of returns the shard owning id.
func (st *store) of(id node.ID) *shard {
	return st.shards[mix(uint64(id))&st.mask]
}
