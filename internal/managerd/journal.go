package managerd

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"repro/internal/power"
)

// Crash-recovery journal. Every JournalEvery control cycles (and once on
// clean shutdown) the manager snapshots the state a restart cannot
// re-derive from the fleet — the learner's lifetime peak and trained
// flag, the thresholds in force, and the last level it commanded each
// node to — into a JSON file replaced by atomic rename. A restarted
// manager reloads it, resumes capping immediately without a fresh
// training window, and reconciles agent-reported levels against the
// journaled commands instead of guessing.
//
// The journal is advisory, never load-bearing for safety: a missing,
// truncated or corrupted file falls back to a cold start (the agents'
// dead-man switches keep the cap holding in the meantime), and a
// snapshot that fails validation is rejected wholesale rather than
// partially applied.

// journalLevel records the last commanded level for one node.
type journalLevel struct {
	Node  int `json:"node"`
	Level int `json:"level"`
}

// journalState is the on-disk schema.
type journalState struct {
	SavedAtCycle int                 `json:"saved_at_cycle"`
	ThrPLW       float64             `json:"pl_w"`
	ThrPHW       float64             `json:"ph_w"`
	Learner      *power.LearnerState `json:"learner,omitempty"`
	Levels       []journalLevel      `json:"levels"`
}

// saveJournal writes the snapshot atomically: marshal, write a sibling
// temp file, rename over the target. A crash mid-write leaves the
// previous journal intact.
func saveJournal(path string, js journalState) error {
	sort.Slice(js.Levels, func(a, b int) bool { return js.Levels[a].Node < js.Levels[b].Node })
	b, err := json.MarshalIndent(js, "", "  ")
	if err != nil {
		return fmt.Errorf("managerd: journal marshal: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(b, '\n'), 0o644); err != nil {
		return fmt.Errorf("managerd: journal write: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("managerd: journal rename: %w", err)
	}
	return nil
}

// loadJournal reads and validates a snapshot. Any defect — unreadable
// file, bad JSON, negative cycle or level, absurd node id — rejects the
// whole journal so the caller cold-starts cleanly.
func loadJournal(path string) (*journalState, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var js journalState
	if err := json.Unmarshal(b, &js); err != nil {
		return nil, fmt.Errorf("managerd: journal decode: %w", err)
	}
	if js.SavedAtCycle < 0 {
		return nil, fmt.Errorf("managerd: journal: negative cycle %d", js.SavedAtCycle)
	}
	seen := make(map[int]bool, len(js.Levels))
	for _, l := range js.Levels {
		if l.Level < 0 || l.Node < 0 {
			return nil, fmt.Errorf("managerd: journal: invalid level entry %+v", l)
		}
		if seen[l.Node] {
			return nil, fmt.Errorf("managerd: journal: duplicate node %d", l.Node)
		}
		seen[l.Node] = true
	}
	return &js, nil
}
