package managerd

import (
	"repro/internal/node"
	"repro/internal/power"
	"repro/internal/replica"
)

// Crash-recovery journal, backed by internal/replica's Store: a snapshot
// file plus an append-only log of incremental entries. Every control
// cycle that changed something (commanded levels, thresholds, learner
// state) commits one entry — which is also what streams to any connected
// standby follower (replicate.go) — and every JournalEvery cycles (plus
// once on clean shutdown) the log is compacted into the snapshot. A
// restarted manager reloads snapshot + valid log prefix, resumes capping
// immediately without a fresh training window, and reconciles
// agent-reported levels against the journaled commands instead of
// guessing.
//
// The journal is advisory, never load-bearing for safety: a missing,
// truncated or corrupted file falls back to a cold start (the agents'
// dead-man switches keep the cap holding in the meantime), and defective
// state is rejected wholesale rather than partially applied — see
// replica.Open for the exact torn-tail semantics.

// openJournal resolves the server's journal store: an externally built
// replica (the promoted-standby handoff), the on-disk store at
// JournalPath, or a memory-only store so the replication and level
// mirror paths never need nil checks. Open errors degrade to memory —
// the journal must never stop the daemon from starting.
func openJournal(cfg Config) *replica.Store {
	if cfg.Journal != nil {
		return cfg.Journal
	}
	st, err := replica.Open(cfg.JournalPath)
	if err != nil {
		st, _ = replica.Open("")
	}
	return st
}

// restoreFromJournal applies a journal snapshot to a freshly constructed
// server (no locking needed; nothing is running yet).
func (s *Server) restoreFromJournal(snap replica.Snapshot) {
	if s.learner != nil && snap.Learner != nil {
		if err := s.learner.Restore(*snap.Learner); err == nil {
			s.thr = s.learner.Thresholds()
			s.plW.Set(float64(s.thr.PL))
			s.phW.Set(float64(s.thr.PH))
			s.trainedG.Set(b2f(s.learner.Trained()))
			s.lifetimePeakW.Set(snap.Learner.LifetimePeakW)
		}
	}
	s.cycleN.Store(int64(snap.SavedAtCycle))
	for _, l := range snap.Levels {
		id := node.ID(l.Node)
		sh := s.nodes.of(id)
		// Journaled commands count as acked at sentCycle zero: as soon as
		// the node reconnects and reports a different level, the
		// reconciliation path reissues the journaled one.
		sh.cmds[id] = &cmdState{level: l.Level, acked: true}
		sh.health[id] = &healthRec{state: healthLost}
		sh.nLost++
	}
}

// writeJournal compacts the journal (snapshot rewritten from the level
// mirror, log truncated). Safe to race the sender goroutines and the
// ack path: SetNodeLevel records a command in both cmds and the journal
// mirror before enqueueing the write, and the store serialises appends
// against compaction, so a snapshot can neither persist a superseded
// level nor drop an acked entry committed mid-compaction.
func (s *Server) writeJournal() {
	if wrote, err := s.journal.Compact(); wrote && err == nil {
		s.journalWrites.Inc()
	}
}

// commitJournalCycle closes the cycle in the journal — one incremental
// entry when anything changed — and streams that entry to connected
// followers. Called only from the control-loop goroutine (learner access
// is lock-free by that contract).
func (s *Server) commitJournalCycle(cycleN int, thr power.Thresholds) {
	var ls *power.LearnerState
	if s.learner != nil {
		st := s.learner.State()
		ls = &st
	}
	if e, ok := s.journal.CommitCycle(cycleN, float64(thr.PL), float64(thr.PH), ls); ok {
		s.journalAppends.Inc()
		s.publishEntry(e)
	}
}
