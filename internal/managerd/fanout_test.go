package managerd

import (
	"context"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/faultnet"
	"repro/internal/node"
	"repro/internal/policy"
	"repro/internal/power"
	"repro/internal/replica"
	"repro/internal/wire"
)

// Tests for the concurrent actuation path: per-node sender goroutines,
// outbox coalescing, fan-out latency, and the attribution of send errors
// across connection epochs. They run over faultnet (net.Pipe underneath):
// a peer that stops reading blocks the manager's write immediately, with
// no kernel socket buffer to hide behind, so slow-reader scenarios are
// deterministic.

// fanoutConfig is the shared daemon shape for these tests: the control
// loop is parked on an hour-long period so the test drives cycles
// explicitly via StepCycle, and heartbeats are off so the only writes are
// the commands under test.
func fanoutConfig(ln *faultnet.Network, cmdTimeout time.Duration, thr power.Thresholds) Config {
	return Config{
		Listener:       ln.Listener(),
		Model:          power.TianheNode(),
		Policy:         policy.MPCC{},
		Tg:             3,
		ControlEvery:   time.Hour,
		Thresholds:     thr,
		CommandTimeout: cmdTimeout,
		HeartbeatEvery: -1,
	}
}

// dialFaultAgent opens a faultnet agent connection under key and sends the
// hello; the test drives (or deliberately neglects) the protocol from
// there.
func dialFaultAgent(t *testing.T, nw *faultnet.Network, key uint64, level, maxLevel int) *wire.Conn {
	t.Helper()
	raw, err := nw.Dial(context.Background(), key)
	if err != nil {
		t.Fatal(err)
	}
	c := wire.NewConn(raw)
	if err := c.Send(wire.Envelope{Type: wire.KindHello, Node: int(key), MaxLevel: maxLevel, Level: level}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// currentConn returns the server's registered connection for id (nil if
// none), via the shard table.
func currentConn(s *Server, id node.ID) *agentConn {
	sh := s.nodes.of(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.agents[id]
}

// commandedLevel returns the recorded in-flight command level for id, or
// -1 if none.
func commandedLevel(s *Server, id node.ID) int {
	sh := s.nodes.of(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if cs := sh.cmds[id]; cs != nil {
		return cs.level
	}
	return -1
}

// TestSendErrorAttributionAcrossReconnect is the regression test for the
// head-of-line attribution bug: a write that times out on a connection the
// agent has already replaced (reconnect flap) must not be charged to the
// node's CommandErrors — the failure describes a dead epoch, not the
// node's current link. A failure on the *current* connection must still be
// charged.
func TestSendErrorAttributionAcrossReconnect(t *testing.T) {
	nw := faultnet.New(1)
	t.Cleanup(nw.Close)
	srv, err := New(fanoutConfig(nw, 250*time.Millisecond, power.Thresholds{PL: 1e6, PH: 2e6}))
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Stop)

	// First epoch: connect and never read, so any write to it stalls.
	dialFaultAgent(t, nw, 7, 9, 9)
	waitFor(t, 5*time.Second, "agent registered", func() bool {
		return currentConn(srv, 7) != nil
	})
	old := currentConn(srv, 7)

	// Issue a command: the sender picks it up and blocks mid-write.
	if err := (actuator{s: srv}).SetNodeLevel(7, 2); err != nil {
		t.Fatal(err)
	}
	// Wait for the sender to take the command off the outbox — only then
	// is the write wedged against the unread pipe. Redialling earlier
	// would just drop the still-queued command at outbox retirement, and
	// no send error would ever surface.
	waitFor(t, 5*time.Second, "command write in flight", func() bool {
		old.obMu.Lock()
		defer old.obMu.Unlock()
		return !old.obHas
	})

	// The agent redials while that write is still pending. The new epoch
	// also never reads — but no write is in flight on it yet.
	dialFaultAgent(t, nw, 7, 9, 9)
	waitFor(t, 5*time.Second, "reconnect replaced the epoch", func() bool {
		cur := currentConn(srv, 7)
		return cur != nil && cur != old
	})

	// The old epoch's write now times out. It must land in
	// StaleConnErrors, leaving the node's CommandErrors untouched.
	waitFor(t, 5*time.Second, "stale-epoch send error", func() bool {
		return srv.Status().StaleConnErrors == 1
	})
	if st := srv.Status(); st.CommandErrors != 0 {
		t.Fatalf("stale-epoch write failure charged to the node: %+v", st)
	}

	// Control arm: a timeout on the current epoch is the node's fault.
	if err := (actuator{s: srv}).SetNodeLevel(7, 1); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, "current-epoch send error", func() bool {
		return srv.Status().CommandErrors == 1
	})
	if st := srv.Status(); st.StaleConnErrors != 1 {
		t.Fatalf("current-epoch failure misfiled as stale: %+v", st)
	}
}

// TestJournalNeverPersistsSupersededLevel pins the journal/sender
// interaction under -race: while a sender is wedged mid-write and newer
// commands coalesce in its outbox, concurrent journal snapshots must
// always capture the newest commanded level — never one that coalescing
// superseded — because SetNodeLevel records the command under the shard
// lock before enqueueing the write. A manager restarted from any of those
// snapshots therefore resumes at the newest level.
func TestJournalNeverPersistsSupersededLevel(t *testing.T) {
	jp := filepath.Join(t.TempDir(), "managerd.journal")
	nw := faultnet.New(2)
	t.Cleanup(nw.Close)
	cfg := fanoutConfig(nw, 2*time.Second, power.Thresholds{PL: 1e6, PH: 2e6})
	cfg.JournalPath = jp
	cfg.JournalEvery = 1
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Stop)

	// The agent never reads: the first dispatched command wedges its
	// sender for the full (long) CommandTimeout, and every later command
	// coalesces in the outbox behind it.
	dialFaultAgent(t, nw, 9, 9, 9)
	waitFor(t, 5*time.Second, "agent registered", func() bool {
		return currentConn(srv, 9) != nil
	})

	// Journal writers race the command stream from a second goroutine.
	stop := make(chan struct{})
	journalled := make(chan struct{})
	go func() {
		defer close(journalled)
		for {
			select {
			case <-stop:
				return
			default:
				srv.writeJournal()
			}
		}
	}()

	act := actuator{s: srv}
	for lvl := 5; lvl >= 2; lvl-- {
		if err := act.SetNodeLevel(9, lvl); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	<-journalled

	// Snapshot taken mid-fan-out (the wedged write is still pending):
	// must already hold the newest level.
	srv.writeJournal()
	js, err := replica.ReadState(jp)
	if err != nil {
		t.Fatal(err)
	}
	if len(js.Levels) != 1 || js.Levels[0].Node != 9 || js.Levels[0].Level != 2 {
		t.Fatalf("journal holds a superseded level: %+v", js.Levels)
	}
	if st := srv.Status(); st.CoalescedCmds < 2 {
		t.Errorf("expected >=2 coalesced commands behind the wedged write, got %+v", st.CoalescedCmds)
	}

	// A manager restarted from the journal resumes at the newest level.
	srv.Stop() // also writes the final snapshot
	cfg2 := cfg
	cfg2.Listener = nil
	cfg2.Addr = "127.0.0.1:0"
	srv2, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	if got := commandedLevel(srv2, 9); got != 2 {
		t.Fatalf("restart restored level %d, want 2", got)
	}
}

// TestRedFloorFanoutNotSerialized drives the Algorithm 1 red-state
// invariant through the daemon: with power far above P_H, one cycle must
// record a floor (level 0) command for every candidate — including nodes
// whose connections have stopped draining — and the fan-out must complete
// in about one CommandTimeout, not one per wedged node. With 8 of 24
// agents wedged and a 250 ms timeout, the old serial path needed >=2 s;
// the concurrent path is asserted under 1 s.
func TestRedFloorFanoutNotSerialized(t *testing.T) {
	const (
		agents  = 24
		wedged  = 8 // agents that never read their connection
		timeout = 250 * time.Millisecond
	)
	nw := faultnet.New(3)
	t.Cleanup(nw.Close)
	// Thresholds of a few watts put any live fleet deep in red.
	srv, err := New(fanoutConfig(nw, timeout, power.Thresholds{PL: 1, PH: 2}))
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Stop)

	for i := 0; i < agents; i++ {
		c := dialFaultAgent(t, nw, uint64(i), 9, 9)
		if err := c.Send(busySample(i, 9)); err != nil {
			t.Fatal(err)
		}
		if i >= agents-wedged {
			continue // wedged: never reads, so command writes block
		}
		go func() {
			for {
				if _, err := c.Recv(); err != nil {
					return
				}
			}
		}()
	}
	waitFor(t, 10*time.Second, "all samples ingested", func() bool {
		n := 0
		for _, sh := range srv.nodes.shards {
			sh.mu.Lock()
			for _, ac := range sh.agents {
				if ac.seen && ac.last.Delta.CPUUtil > 0 {
					n++
				}
			}
			sh.mu.Unlock()
		}
		return n == agents
	})

	d := srv.StepCycle()

	if st := srv.Status(); st.RedCycles != 1 {
		t.Fatalf("fleet not in red: %+v", st)
	}
	// Invariant: every candidate has the floor recorded within the cycle,
	// wedged connections included (their delivery is owed to the retry
	// path, but the commanded state must already be the floor).
	for i := 0; i < agents; i++ {
		if got := commandedLevel(srv, node.ID(i)); got != 0 {
			t.Errorf("node %d commanded level %d after red cycle, want 0", i, got)
		}
	}
	// Latency: the wedged writes time out concurrently.
	if d >= 4*timeout {
		t.Errorf("fan-out took %v with %d wedged nodes; serial writes suspected (budget %v)", d, wedged, 4*timeout)
	}
	// Each wedged node's timeout is charged to it exactly once.
	if st := srv.Status(); st.CommandErrors != wedged {
		t.Errorf("CommandErrors = %d, want %d (one per wedged node)", st.CommandErrors, wedged)
	}
}
