package scenario

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/power"
	"repro/internal/proptest"
)

// marshalTrace renders a run's records the way the export path does —
// the byte-identity witness for determinism.
func marshalTrace(t *testing.T, recs []CycleRecord) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for _, r := range recs {
		if err := enc.Encode(r); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

// TestScenarioDeterminism: every scenario generator yields a
// byte-identical trace for the same seed, and a different trace for a
// different seed.
func TestScenarioDeterminism(t *testing.T) {
	for _, sc := range All() {
		sc := sc.Scaled(12, 90)
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			a, err := Run(sc, 42)
			if err != nil {
				t.Fatal(err)
			}
			b, err := Run(sc, 42)
			if err != nil {
				t.Fatal(err)
			}
			ba, bb := marshalTrace(t, a.Records), marshalTrace(t, b.Records)
			if !bytes.Equal(ba, bb) {
				t.Fatalf("same seed produced different traces (%d vs %d bytes)", len(ba), len(bb))
			}
			c, err := Run(sc, 43)
			if err != nil {
				t.Fatal(err)
			}
			if bytes.Equal(ba, marshalTrace(t, c.Records)) {
				t.Fatal("different seeds produced byte-identical traces")
			}
			// The script the open-loop driver replays is the same one the
			// in-process run consumed.
			s1, s2 := sc.Script(42), sc.Script(42)
			j1, _ := json.Marshal(s1)
			j2, _ := json.Marshal(s2)
			if !bytes.Equal(j1, j2) {
				t.Fatal("Script is not deterministic")
			}
		})
	}
}

// TestAlgorithmOnePropertiesOverEveryScenario: the Algorithm 1 invariant
// checkers run as properties over every scenario's trace, across seeds.
func TestAlgorithmOnePropertiesOverEveryScenario(t *testing.T) {
	for _, sc := range All() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			small := sc.Scaled(16, 120)
			proptest.MustCheck(t, sc.Name, proptest.Config{NumTrials: 8, Seed: 1}, func(g *proptest.Generator) error {
				res, err := Run(small, g.Seed())
				if err != nil {
					return err
				}
				return CheckAlgorithmOne(res.Records, small.Tg)
			})
		})
	}
}

// TestScenariosExerciseTheCap: each scenario at library scale actually
// engages the control loop — the trace leaves steady green and the
// scripted events show up in the summary.
func TestScenariosExerciseTheCap(t *testing.T) {
	if testing.Short() {
		t.Skip("library-scale runs skipped in short mode")
	}
	for _, sc := range All() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			res, err := Run(sc, 7)
			if err != nil {
				t.Fatal(err)
			}
			if err := CheckAlgorithmOne(res.Records, sc.Tg); err != nil {
				t.Fatal(err)
			}
			s := res.Summary
			if s.Degrades == 0 {
				t.Errorf("%s: trace never degraded a node (summary %+v)", sc.Name, s)
			}
			if s.YellowCycles == 0 && s.RedCycles == 0 {
				t.Errorf("%s: trace never left green", sc.Name)
			}
			if s.MaxPowerW <= 0 {
				t.Errorf("%s: max power %v", sc.Name, s.MaxPowerW)
			}
			pow := res.Obs.Histogram("scenario_power_w")
			if pow.Count() != int64(sc.Cycles) {
				t.Errorf("%s: power histogram holds %d cycles, want %d", sc.Name, pow.Count(), sc.Cycles)
			}
			if lat := res.Obs.Histogram("scenario_cycle_micros"); lat.Count() != int64(sc.Cycles) {
				t.Errorf("%s: latency histogram holds %d cycles, want %d", sc.Name, lat.Count(), sc.Cycles)
			}
			switch sc.Name {
			case "thermal-emergency":
				if s.PeakTempC <= sc.Thermal.AmbientC {
					t.Errorf("thermal scenario never warmed up: peak %.1f°C", s.PeakTempC)
				}
				if s.FailureMultiplier <= 0 {
					t.Errorf("failure multiplier %v", s.FailureMultiplier)
				}
			case "reconnect-herd", "rolling-upgrade":
				sawOffline := false
				for _, r := range res.Records {
					if r.Online < sc.Agents {
						sawOffline = true
						break
					}
				}
				if !sawOffline {
					t.Errorf("%s: no cycle ever had offline nodes", sc.Name)
				}
			case "flash-crowd":
				if s.RedEntries == 0 && s.BreachCycles == 0 {
					t.Errorf("flash crowd never stressed P_H (summary %+v)", s)
				}
			case "manager-failover":
				if s.FailoverCycle <= 0 {
					t.Errorf("failover scenario recorded no failover cycle (summary %+v)", s)
				}
				if s.RedEntries == 0 {
					t.Errorf("failover spike never entered red (summary %+v)", s)
				}
				// The swap lands while the fleet is still capped: the
				// replacement inherits below-max levels it never commanded.
				inherited := false
				for _, n := range res.Records[s.FailoverCycle].Nodes {
					if n.Level < n.MaxLevel {
						inherited = true
						break
					}
				}
				if !inherited {
					t.Errorf("manager swapped over an uncapped fleet (cycle %d)", s.FailoverCycle)
				}
				// No node may end the run orphaned at the red floor: the
				// replacement adopts the inherited levels, so once greens
				// accrue the restore path lifts the whole fleet back up.
				for _, n := range res.Records[len(res.Records)-1].Nodes {
					if n.Level == 0 {
						t.Errorf("node %d orphaned at the floor after failover (max %d)",
							n.ID, n.MaxLevel)
					}
				}
				if s.Restores == 0 {
					t.Errorf("no restores after failover (summary %+v)", s)
				}
			}
		})
	}
}

// TestCheckAlgorithmOneCatchesViolations: the checker rejects hand-built
// traces that break each invariant.
func TestCheckAlgorithmOneCatchesViolations(t *testing.T) {
	base := func() CycleRecord {
		return CycleRecord{
			Cycle: 0, PowerW: 100, PLW: 80, PHW: 90, State: "yellow", Online: 2,
			Nodes: []NodeRecord{
				{ID: 0, Level: 3, MaxLevel: 6},
				{ID: 1, Level: 0, MaxLevel: 6, AtLowest: true},
			},
		}
	}
	cases := []struct {
		name string
		recs []CycleRecord
	}{
		{"duplicate command", func() []CycleRecord {
			r := base()
			r.Actions = []ActionRecord{{Node: 0, Level: 2}, {Node: 0, Level: 1}}
			return []CycleRecord{r}
		}()},
		{"command to absent node", func() []CycleRecord {
			r := base()
			r.Actions = []ActionRecord{{Node: 9, Level: 2}}
			return []CycleRecord{r}
		}()},
		{"degrade-free PH breach", func() []CycleRecord {
			r := base()
			r.Actions = nil
			return []CycleRecord{r}
		}()},
		{"red skips a node", func() []CycleRecord {
			r := base()
			r.State = "red"
			r.Actions = nil
			return []CycleRecord{r}
		}()},
		{"red not to floor", func() []CycleRecord {
			r := base()
			r.State = "red"
			r.Actions = []ActionRecord{{Node: 0, Level: 1}}
			return []CycleRecord{r}
		}()},
		{"yellow two-step degrade", func() []CycleRecord {
			r := base()
			r.Actions = []ActionRecord{{Node: 0, Level: 1}}
			return []CycleRecord{r}
		}()},
		{"yellow targets floor node", func() []CycleRecord {
			r := base()
			r.Actions = []ActionRecord{{Node: 1, Level: -1}}
			return []CycleRecord{r}
		}()},
		{"restore before Tg", func() []CycleRecord {
			r := base()
			r.PowerW, r.State = 70, "green"
			r.Actions = []ActionRecord{{Node: 0, Level: 4}}
			return []CycleRecord{r}
		}()},
		{"restore not one step", func() []CycleRecord {
			g1 := base()
			g1.PowerW, g1.State, g1.Actions = 70, "green", nil
			g2 := base()
			g2.Cycle, g2.PowerW, g2.State = 1, 70, "green"
			g2.Actions = []ActionRecord{{Node: 0, Level: 6}}
			return []CycleRecord{g1, g2}
		}()},
		{"unknown state", func() []CycleRecord {
			r := base()
			r.State = "purple"
			r.Actions = nil
			r.PowerW = 85
			return []CycleRecord{r}
		}()},
	}
	for _, tc := range cases {
		if err := CheckAlgorithmOne(tc.recs, 2); err == nil {
			t.Errorf("%s: checker accepted an invalid trace", tc.name)
		}
	}
	// And a clean trace passes.
	ok := base()
	ok.Actions = []ActionRecord{{Node: 0, Level: 2}}
	if err := CheckAlgorithmOne([]CycleRecord{ok}, 2); err != nil {
		t.Errorf("checker rejected a valid trace: %v", err)
	}
	if err := CheckAlgorithmOne(nil, 0); err == nil {
		t.Error("checker accepted non-positive Tg")
	}
}

func TestByNameAndValidate(t *testing.T) {
	if _, err := ByName("diurnal"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("ByName accepted an unknown scenario")
	}
	for _, sc := range All() {
		if err := sc.Validate(); err != nil {
			t.Errorf("%s: %v", sc.Name, err)
		}
		thr := sc.Thresholds(power.TianheNode())
		if err := thr.Validate(); err != nil {
			t.Errorf("%s thresholds: %v", sc.Name, err)
		}
	}
	bad := Diurnal()
	bad.Tg = 0
	if err := bad.Validate(); err == nil {
		t.Error("Validate accepted Tg=0")
	}
	badFrac := ManagerFailover()
	badFrac.FailoverFrac = 1.5
	if err := badFrac.Validate(); err == nil {
		t.Error("Validate accepted FailoverFrac ≥ 1")
	}
	if _, err := Run(bad, 1); err == nil {
		t.Error("Run accepted an invalid scenario")
	}
	sc := Diurnal().Scaled(8, 40)
	if sc.Agents != 8 || sc.Cycles != 40 {
		t.Errorf("Scaled = %d×%d", sc.Agents, sc.Cycles)
	}
	if sc = Diurnal().Scaled(0, 0); sc.Agents != 32 || sc.Cycles != 288 {
		t.Errorf("Scaled(0,0) changed dimensions: %d×%d", sc.Agents, sc.Cycles)
	}
}
