package scenario

import "fmt"

// CheckAlgorithmOne validates a scenario trace against the paper's
// Algorithm 1 invariants, cycle by cycle:
//
//  1. Red, maximal strength: every snapshot node above the floor is
//     commanded to level 0 within that same cycle.
//  2. No degrade-free P_H breach: power above P_H never passes without a
//     degrade unless the whole visible fleet is already at the floor.
//  3. Yellow: degrades are exactly one level and never target idle or
//     floor-level nodes (§III.B property 4).
//  4. Green, monotone restore: restores are one-level steps up and only
//     happen after Tg consecutive green cycles.
//
// Plus trace hygiene that any transport must preserve: no node commanded
// twice in one cycle, and no command targeting a node absent from the
// cycle's snapshot.
//
// The checker recomputes the green streak itself from the recorded
// states, so it is independent of the manager's internal Time_g counter —
// the same property holds whether the trace came from an in-process run
// or a live daemon.
func CheckAlgorithmOne(recs []CycleRecord, tg int) error {
	if tg <= 0 {
		return fmt.Errorf("check: Tg must be positive, got %d", tg)
	}
	greens := 0
	for _, r := range recs {
		byID := make(map[int]NodeRecord, len(r.Nodes))
		for _, n := range r.Nodes {
			byID[n.ID] = n
		}
		acted := make(map[int]int, len(r.Actions))
		for _, a := range r.Actions {
			if _, dup := acted[a.Node]; dup {
				return fmt.Errorf("cycle %d: node %d commanded twice in one cycle", r.Cycle, a.Node)
			}
			acted[a.Node] = a.Level
			if _, ok := byID[a.Node]; !ok {
				return fmt.Errorf("cycle %d: command to node %d absent from the snapshot", r.Cycle, a.Node)
			}
		}

		// Invariant 2: P > P_H must not pass without a degrade while any
		// visible node still has a level to give.
		if r.PowerW > r.PHW {
			anyAbove := false
			for _, n := range r.Nodes {
				if n.Level > 0 {
					anyAbove = true
					break
				}
			}
			if anyAbove && len(r.Actions) == 0 {
				return fmt.Errorf("cycle %d: p=%.0fW above PH=%.0fW with no degrade commanded",
					r.Cycle, r.PowerW, r.PHW)
			}
		}

		switch r.State {
		case "red":
			greens = 0
			// Invariant 1: every node above the floor is ordered there now.
			for _, n := range r.Nodes {
				if n.Level == 0 {
					continue
				}
				lv, ok := acted[n.ID]
				if !ok {
					return fmt.Errorf("cycle %d: red state skipped node %d at level %d", r.Cycle, n.ID, n.Level)
				}
				if lv != 0 {
					return fmt.Errorf("cycle %d: red state commanded node %d to %d, want floor", r.Cycle, n.ID, lv)
				}
			}
		case "yellow":
			greens = 0
			// Invariant 3: one-step degrades, never idle or floor targets.
			for _, a := range r.Actions {
				n := byID[a.Node]
				if a.Level != n.Level-1 {
					return fmt.Errorf("cycle %d: yellow degrade %d→%d on node %d is not one step",
						r.Cycle, n.Level, a.Level, a.Node)
				}
				if n.Idle || n.AtLowest {
					return fmt.Errorf("cycle %d: yellow targeted idle/floor node %d (idle=%v level=%d)",
						r.Cycle, a.Node, n.Idle, n.Level)
				}
			}
		case "green":
			greens++
			// Invariant 4: monotone one-step restores, only in steady green.
			if len(r.Actions) > 0 && greens < tg {
				return fmt.Errorf("cycle %d: restore after only %d green cycles (Tg=%d)", r.Cycle, greens, tg)
			}
			for _, a := range r.Actions {
				n := byID[a.Node]
				if a.Level != n.Level+1 {
					return fmt.Errorf("cycle %d: green restore %d→%d on node %d is not one step up",
						r.Cycle, n.Level, a.Level, a.Node)
				}
			}
		default:
			return fmt.Errorf("cycle %d: unknown state %q", r.Cycle, r.State)
		}
	}
	return nil
}
