// Package scenario is a seeded, deterministic scenario library for the
// power-capping control loop: each Scenario scripts a fleet's offered
// load over time — diurnal swings, flash crowds, thermal emergencies,
// sensor drift, rolling upgrades, reconnect herds — and Run drives the
// real Algorithm 1 manager and snapshot builder through it.
//
// Scenarios serve two consumers with one script:
//
//   - the property suite: Run produces a full per-cycle trace
//     (CycleRecord) that CheckAlgorithmOne validates against the paper's
//     invariants, so every scenario doubles as a property test;
//   - cmd/powbench: Script materialises the same deterministic load
//     schedule, which the open-loop driver replays over the wire against
//     a live powmgrd.
//
// Determinism is a hard contract: a Scenario's script and Run trace are
// pure functions of (scenario, seed) — no wall-clock, no shared state
// across runs — so the same seed yields a byte-identical exported trace.
package scenario

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/manager"
	"repro/internal/node"
	"repro/internal/obs"
	"repro/internal/policy"
	"repro/internal/power"
	"repro/internal/procfs"
	"repro/internal/thermal"
	"repro/internal/units"
	"repro/internal/workload"
)

// Interval is the scripted sampling interval: every cycle represents one
// control period of this length, matching the daemons' default cadence.
const Interval = 50 * time.Millisecond

// memTotal is the modelled node's memory size used to turn a fractional
// occupancy into bytes (48 GiB, the bench fleet's figure).
const memTotal = 48 << 30

// Load is one node's offered load for one cycle.
type Load struct {
	// Util is the CPU busy fraction the node reports, in [0,1]. This is
	// the *sensed* value — drift scenarios inflate it above the true load.
	Util float64 `json:"util"`
	// Mem is the memory occupancy fraction, NIC the link utilisation
	// fraction over the interval.
	Mem float64 `json:"mem"`
	NIC float64 `json:"nic"`
	// Job is the job occupying the node (0 = free).
	Job int `json:"job"`
	// Online is false while the node is partitioned/rebooting: it sends
	// no sample and drops out of the manager's snapshot.
	Online bool `json:"online"`
	// Reset marks the cycle a node comes back from an upgrade: its DVFS
	// level snaps back to the hardware default (maximum), whatever the
	// manager had commanded before.
	Reset bool `json:"reset,omitempty"`
}

// StepFunc fills in the whole fleet's loads for one cycle. It is called
// exactly once per cycle in cycle order with the same rng, so any
// randomness it draws is reproducible from the run seed. cycles is the
// script's total length: generators schedule their events (bursts,
// blackouts, maintenance waves) proportionally to it, so a scaled-down
// scenario keeps its character.
type StepFunc func(rng *rand.Rand, cycle, cycles int, loads []Load)

// Scenario is one scripted fleet behaviour.
type Scenario struct {
	Name  string
	About string
	// Agents and Cycles size the script; Tg and Policy parametrise the
	// manager under test.
	Agents int
	Cycles int
	Tg     int
	Policy string
	// LowFrac/HighFrac set the thresholds as fractions of the fleet's
	// reference draw (see Thresholds), placing the interesting state
	// transitions where the scenario wants them.
	LowFrac  float64
	HighFrac float64
	// FailoverFrac, when positive, kills and replaces the manager at
	// cycle int(FailoverFrac·Cycles): the replacement comes up with fresh
	// control state (empty A_degraded, Time_g zero) over the same
	// instrument registry and adopts every node found below its top level
	// — the scenario twin of a warm-standby takeover restoring from the
	// replicated journal. Algorithm 1's invariants must hold straight
	// through the swap.
	FailoverFrac float64
	// Thermal, when set, couples the run to a thermal tracker: each
	// node's sensed power is amplified by its leakage factor (§I.A
	// feedback) and the result summary carries peak temperature and
	// failure multiplier. ThermalDt is the plant-time length of one
	// cycle for the RC integration (control cycles are much shorter
	// than thermal time constants; 0 means 5s).
	Thermal   *thermal.Params
	ThermalDt time.Duration
	// NewStep returns a fresh step function. It is a factory so stateful
	// steps (burst schedules, drift selections) cannot leak state from
	// one run into the next.
	NewStep func() StepFunc
}

// Validate checks the scenario is runnable.
func (sc Scenario) Validate() error {
	if sc.Name == "" {
		return fmt.Errorf("scenario: empty name")
	}
	if sc.Agents <= 0 || sc.Cycles <= 0 {
		return fmt.Errorf("scenario %s: need agents and cycles, got %d×%d", sc.Name, sc.Agents, sc.Cycles)
	}
	if sc.Tg <= 0 {
		return fmt.Errorf("scenario %s: Tg must be positive", sc.Name)
	}
	if sc.LowFrac <= 0 || sc.HighFrac <= sc.LowFrac {
		return fmt.Errorf("scenario %s: bad threshold fractions %v/%v", sc.Name, sc.LowFrac, sc.HighFrac)
	}
	if sc.FailoverFrac < 0 || sc.FailoverFrac >= 1 {
		return fmt.Errorf("scenario %s: FailoverFrac %v outside [0,1)", sc.Name, sc.FailoverFrac)
	}
	if sc.NewStep == nil {
		return fmt.Errorf("scenario %s: nil step factory", sc.Name)
	}
	return nil
}

// Scaled returns a copy with the fleet size and/or length overridden
// (zero keeps the original) — the handle tests and smokes use to shrink
// a scenario without changing its character.
func (sc Scenario) Scaled(agents, cycles int) Scenario {
	out := sc
	if agents > 0 {
		out.Agents = agents
	}
	if cycles > 0 {
		out.Cycles = cycles
	}
	return out
}

// Script materialises the full deterministic load schedule for this seed:
// one row per cycle, one Load per agent. Run and cmd/powbench both replay
// scripts, which is what keeps the in-process property trace and the
// over-the-wire bench driving the same offered load.
func (sc Scenario) Script(seed int64) [][]Load {
	rng := rand.New(rand.NewSource(seed))
	step := sc.NewStep()
	loads := make([]Load, sc.Agents)
	for i := range loads {
		loads[i] = Load{Util: 0.5, Mem: 0.3, NIC: 0.1, Job: 1 + i%4, Online: true}
	}
	script := make([][]Load, sc.Cycles)
	for c := range script {
		step(rng, c, sc.Cycles, loads)
		row := make([]Load, len(loads))
		copy(row, loads)
		script[c] = row
		// Reset is a one-cycle event; clear it so steps only have to set
		// it on the comeback cycle.
		for i := range loads {
			loads[i].Reset = false
		}
	}
	return script
}

// RefPower is the fleet's reference draw — every node at its top level
// under a busy synthetic load — from which the scenario's thresholds are
// derived. Using a fixed reference (rather than the first cycle's draw)
// keeps thresholds stable across seeds and fleet scalings.
func (sc Scenario) RefPower(model power.Model) units.Watts {
	per := model.Instant(0.9, 0.3, 0.1, model.Levels()-1)
	return units.Watts(float64(per) * float64(sc.Agents))
}

// Thresholds derives the scenario's capping thresholds from the reference
// draw.
func (sc Scenario) Thresholds(model power.Model) power.Thresholds {
	ref := float64(sc.RefPower(model))
	return power.Thresholds{
		PL: units.Watts(ref * sc.LowFrac),
		PH: units.Watts(ref * sc.HighFrac),
	}
}

// Delta converts a scripted load into the interval counters an agent
// would report.
func (ld Load) Delta(model power.Model) procfs.Delta {
	sec := Interval.Seconds()
	return procfs.Delta{
		Interval: Interval,
		CPUUtil:  units.Clamp(ld.Util, 0, 1),
		MemUsed:  uint64(units.Clamp(ld.Mem, 0, 1) * memTotal),
		MemTotal: memTotal,
		NICBytes: uint64(units.Clamp(ld.NIC, 0, 1) * sec * float64(model.NIC.Bandwidth)),
	}
}

// NodeRecord is one node's pre-cycle state in the trace.
type NodeRecord struct {
	ID       int  `json:"id"`
	Level    int  `json:"level"`
	MaxLevel int  `json:"max_level"`
	Idle     bool `json:"idle,omitempty"`
	AtLowest bool `json:"at_lowest,omitempty"`
}

// ActionRecord is one manager command in the trace.
type ActionRecord struct {
	Node  int `json:"node"`
	Level int `json:"level"`
}

// CycleRecord is one control cycle of a scenario trace: the sensed power,
// the thresholds in force, the classified state, the snapshot the policy
// saw (pre-actuation), and the actions taken. It carries everything
// CheckAlgorithmOne needs and nothing host-dependent, so traces are
// byte-stable across runs and machines.
type CycleRecord struct {
	Cycle   int            `json:"cycle"`
	PowerW  float64        `json:"p_w"`
	PLW     float64        `json:"pl_w"`
	PHW     float64        `json:"ph_w"`
	State   string         `json:"state"`
	Online  int            `json:"online"`
	Nodes   []NodeRecord   `json:"nodes"`
	Actions []ActionRecord `json:"actions,omitempty"`
}

// Summary is a scenario run's headline outcome.
type Summary struct {
	Scenario     string  `json:"scenario"`
	Agents       int     `json:"agents"`
	Cycles       int     `json:"cycles"`
	Seed         int64   `json:"seed"`
	MaxPowerW    float64 `json:"max_power_w"`
	GreenCycles  int     `json:"green_cycles"`
	YellowCycles int     `json:"yellow_cycles"`
	RedCycles    int     `json:"red_cycles"`
	RedEntries   int     `json:"red_entries"`
	Degrades     int     `json:"degrades"`
	Restores     int     `json:"restores"`
	// BreachCycles counts cycles whose sensed power exceeded P_H — red
	// exposure the cap then had to claw back within the same cycle.
	BreachCycles int `json:"breach_cycles"`
	// MinLevel is the deepest DVFS level any node was driven to.
	MinLevel int `json:"min_level"`
	// FailoverCycle is the cycle the manager was swapped at (zero when
	// the scenario scripts no failover).
	FailoverCycle int `json:"failover_cycle,omitempty"`
	// Thermal outcome (zero unless the scenario couples a tracker).
	PeakTempC         float64 `json:"peak_temp_c,omitempty"`
	FailureMultiplier float64 `json:"failure_multiplier,omitempty"`
	CoolingKJ         float64 `json:"cooling_kj,omitempty"`
}

// Result is a completed scenario run.
type Result struct {
	Scenario   string
	Seed       int64
	Thresholds power.Thresholds
	Records    []CycleRecord
	Summary    Summary
	// Obs carries the run's instruments: scenario_power_w and
	// scenario_cycle_micros histograms plus the manager's counters.
	Obs *obs.Registry
}

// runRecorder is a perfect actuator that validates commands as they land.
type runRecorder struct {
	maxLevel int
	agents   int
	applied  []manager.Action
	err      error
}

func (r *runRecorder) SetNodeLevel(id node.ID, level int) error {
	if level < 0 || level > r.maxLevel {
		r.err = fmt.Errorf("out-of-range level %d commanded to node %d", level, id)
		return r.err
	}
	if int(id) < 0 || int(id) >= r.agents {
		r.err = fmt.Errorf("command to unknown node %d", id)
		return r.err
	}
	r.applied = append(r.applied, manager.Action{Node: id, Level: level})
	return nil
}

// Run drives the scenario's script through the real manager (Algorithm 1
// + the configured policy) against a perfect actuator and returns the
// full trace. The trace is deterministic in (sc, seed); only the obs
// latency histogram depends on the host.
func Run(sc Scenario, seed int64) (*Result, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	model := power.TianheNode()
	maxLevel := model.Levels() - 1
	pol, err := policy.New(sc.Policy, rand.New(rand.NewSource(seed+1)))
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", sc.Name, err)
	}
	reg := obs.NewRegistry()
	mgr, err := manager.New(manager.Config{Tg: sc.Tg, Policy: pol, Obs: reg})
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", sc.Name, err)
	}
	thr := sc.Thresholds(model)
	if err := thr.Validate(); err != nil {
		return nil, fmt.Errorf("scenario %s: %w", sc.Name, err)
	}

	var tracker *thermal.Tracker
	thermalDt := sc.ThermalDt
	if sc.Thermal != nil {
		if thermalDt <= 0 {
			thermalDt = 5 * time.Second
		}
		tracker, err = thermal.NewTracker(sc.Agents, *sc.Thermal)
		if err != nil {
			return nil, fmt.Errorf("scenario %s: %w", sc.Name, err)
		}
	}

	script := sc.Script(seed)
	builder := manager.NewBuilder(model)
	powHist := reg.Histogram("scenario_power_w")
	latHist := reg.Histogram("scenario_cycle_micros")

	levels := make([]int, sc.Agents)
	for i := range levels {
		levels[i] = maxLevel
	}
	nodePow := make([]units.Watts, sc.Agents)

	res := &Result{
		Scenario:   sc.Name,
		Seed:       seed,
		Thresholds: thr,
		Records:    make([]CycleRecord, 0, sc.Cycles),
		Obs:        reg,
		Summary: Summary{
			Scenario: sc.Name, Agents: sc.Agents, Cycles: sc.Cycles,
			Seed: seed, MinLevel: maxLevel,
		},
	}

	failC := -1
	if sc.FailoverFrac > 0 {
		failC = int(sc.FailoverFrac * float64(sc.Cycles))
		res.Summary.FailoverCycle = failC
	}

	for c, loads := range script {
		if c == failC {
			// Manager failover: the replacement starts with Algorithm 1's
			// initial control state over the shared registry (counters keep
			// accumulating across both lives) and adopts the journal's
			// below-max levels so the restore path lifts them later.
			mgr, err = manager.New(manager.Config{Tg: sc.Tg, Policy: pol, Obs: reg})
			if err != nil {
				return nil, fmt.Errorf("scenario %s failover: %w", sc.Name, err)
			}
			for i, lv := range levels {
				if lv < maxLevel {
					mgr.Adopt(node.ID(i))
				}
			}
		}
		start := time.Now()
		readings := make([]manager.AgentReading, 0, sc.Agents)
		var p units.Watts
		online := 0
		for i := range loads {
			ld := loads[i]
			if ld.Reset {
				levels[i] = maxLevel
			}
			if !ld.Online {
				nodePow[i] = 0
				continue
			}
			online++
			d := ld.Delta(model)
			w := model.Estimate(d, levels[i])
			if tracker != nil {
				w = units.Watts(float64(w) * tracker.LeakageFactor(i))
			}
			nodePow[i] = w
			p += w
			readings = append(readings, manager.AgentReading{
				ID: node.ID(i), Level: levels[i], MaxLevel: maxLevel,
				Delta: d, Job: workload.JobID(ld.Job),
			})
		}
		if tracker != nil {
			if err := tracker.Step(thermalDt, nodePow); err != nil {
				return nil, fmt.Errorf("scenario %s cycle %d: %w", sc.Name, c, err)
			}
		}

		snap := builder.Build(p, thr.PL, readings)
		rec := &runRecorder{maxLevel: maxLevel, agents: sc.Agents}
		st, actions, err := mgr.Cycle(p, thr, snap, rec)
		if err != nil {
			return nil, fmt.Errorf("scenario %s cycle %d: %w", sc.Name, c, err)
		}
		if rec.err != nil {
			return nil, fmt.Errorf("scenario %s cycle %d: %w", sc.Name, c, rec.err)
		}
		if len(rec.applied) != len(actions) {
			return nil, fmt.Errorf("scenario %s cycle %d: %d actions reported, %d actuated",
				sc.Name, c, len(actions), len(rec.applied))
		}

		cr := CycleRecord{
			Cycle: c, PowerW: float64(p),
			PLW: float64(thr.PL), PHW: float64(thr.PH),
			State: st.String(), Online: online,
			Nodes: make([]NodeRecord, 0, len(snap.Nodes)),
		}
		for _, ns := range snap.Nodes {
			cr.Nodes = append(cr.Nodes, NodeRecord{
				ID: int(ns.ID), Level: ns.Level, MaxLevel: ns.MaxLevel,
				Idle: ns.Idle, AtLowest: ns.AtLowest,
			})
		}
		for _, a := range actions {
			cr.Actions = append(cr.Actions, ActionRecord{Node: int(a.Node), Level: a.Level})
			levels[a.Node] = a.Level
			if a.Level < res.Summary.MinLevel {
				res.Summary.MinLevel = a.Level
			}
		}
		res.Records = append(res.Records, cr)

		powHist.Observe(float64(p))
		latHist.ObserveDuration(time.Since(start))
		if float64(p) > res.Summary.MaxPowerW {
			res.Summary.MaxPowerW = float64(p)
		}
		if p > thr.PH {
			res.Summary.BreachCycles++
		}
	}

	st := mgr.Stats()
	res.Summary.GreenCycles = st.GreenCycles
	res.Summary.YellowCycles = st.YellowCycles
	res.Summary.RedCycles = st.RedCycles
	res.Summary.RedEntries = st.RedEntries
	res.Summary.Degrades = st.DegradeOps
	res.Summary.Restores = st.RestoreOps
	if tracker != nil {
		ts := tracker.Summarise()
		res.Summary.PeakTempC = ts.PeakC
		res.Summary.FailureMultiplier = ts.FailureMultiplier
		res.Summary.CoolingKJ = float64(ts.CoolingEnergy) / 1000
	}
	return res, nil
}
