package scenario

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"repro/internal/thermal"
	"repro/internal/units"
)

// The library: seven scripted fleet behaviours the cap has to survive.
// Each factory returns a value Scenario; the step closures are created
// fresh per run via NewStep so no burst schedule or drift selection
// leaks between runs. Event timing is proportional to the script length,
// so Scaled copies keep each scenario's character.

// clampUtil keeps a drawn utilisation inside the sensor's range while
// preserving the occasional genuinely-idle draw.
func clampUtil(u float64) float64 { return units.Clamp(u, 0, 1) }

// noisy returns base plus bounded gaussian jitter.
func noisy(rng *rand.Rand, base, sigma float64) float64 {
	return clampUtil(base + sigma*rng.NormFloat64())
}

// frac returns at least 1 and about cycles·num/den — the proportional
// scheduling helper.
func frac(cycles, num, den int) int {
	v := cycles * num / den
	if v < 1 {
		return 1
	}
	return v
}

// Diurnal is a day/night load swing: fleet-wide mean utilisation follows
// a sinusoid through a full period, with per-node jitter and a small
// idle population so restore paths and property 4 both get exercised.
func Diurnal() Scenario {
	return Scenario{
		Name:   "diurnal",
		About:  "sinusoidal day/night swing; cap engages near the daily peak",
		Agents: 32, Cycles: 288, Tg: 3,
		Policy:  "mpc-c",
		LowFrac: 0.78, HighFrac: 0.88,
		NewStep: func() StepFunc {
			return func(rng *rand.Rand, cycle, cycles int, loads []Load) {
				period := float64(cycles)
				mean := 0.55 + 0.38*math.Sin(2*math.Pi*(float64(cycle)/period-0.25))
				for i := range loads {
					if rng.Float64() < 0.04 {
						loads[i].Util = rng.Float64() * 0.03 // idle tail
					} else {
						loads[i].Util = noisy(rng, mean, 0.08)
					}
					loads[i].Mem = noisy(rng, 0.3+0.2*mean, 0.03)
					loads[i].NIC = noisy(rng, 0.1, 0.02)
					loads[i].Online = true
				}
			}
		},
	}
}

// FlashCrowd is the phase-aligned job-power spike of Storlie et al.: a
// quiet fleet where every node's load jumps to near-peak in the same
// cycle, twice, with the burst onsets drawn from the seed.
func FlashCrowd() Scenario {
	return Scenario{
		Name:   "flash-crowd",
		About:  "phase-aligned fleet-wide spikes from a quiet baseline (Storlie)",
		Agents: 32, Cycles: 240, Tg: 3,
		Policy:  "lpc-c",
		LowFrac: 0.62, HighFrac: 0.74,
		NewStep: func() StepFunc {
			var start1, start2, dur int
			return func(rng *rand.Rand, cycle, cycles int, loads []Load) {
				if cycle == 0 {
					dur = frac(cycles, 1, 10)
					start1 = frac(cycles, 1, 6) + rng.Intn(frac(cycles, 1, 8))
					start2 = start1 + dur + frac(cycles, 1, 4) + rng.Intn(frac(cycles, 1, 6))
				}
				inBurst := (cycle >= start1 && cycle < start1+dur) ||
					(cycle >= start2 && cycle < start2+dur)
				for i := range loads {
					if inBurst {
						loads[i].Util = noisy(rng, 0.95, 0.03)
						loads[i].NIC = noisy(rng, 0.35, 0.05)
					} else {
						loads[i].Util = noisy(rng, 0.25, 0.06)
						loads[i].NIC = noisy(rng, 0.08, 0.02)
					}
					loads[i].Mem = noisy(rng, 0.35, 0.03)
					loads[i].Online = true
				}
			}
		},
	}
}

// ThermalEmergency couples the run to the thermal tracker: a cooling
// degradation window raises a hot job's load while leakage (§I.A
// feedback) amplifies every node's draw as temperatures climb, so the
// cap is fighting physics, not just load.
func ThermalEmergency() Scenario {
	p := thermal.Tianhe()
	p.TimeConstant = 30 * time.Second // small machine room: fast RC
	p.FailRefC = 35
	p.LeakagePerC = 0.004
	return Scenario{
		Name:   "thermal-emergency",
		About:  "cooling degradation + leakage feedback; cap must arrest thermal runaway",
		Agents: 32, Cycles: 240, Tg: 4,
		Policy:  "hri-c",
		LowFrac: 0.74, HighFrac: 0.84,
		Thermal: &p, ThermalDt: 5 * time.Second,
		NewStep: func() StepFunc {
			var onset, emergency, ramp int
			return func(rng *rand.Rand, cycle, cycles int, loads []Load) {
				if cycle == 0 {
					onset = frac(cycles, 1, 4) + rng.Intn(frac(cycles, 1, 6))
					emergency = frac(cycles, 3, 10)
					ramp = frac(cycles, 1, 12)
				}
				base := 0.55
				if cycle >= onset && cycle < onset+emergency {
					// Ramp in: the hot job spreads across the fleet.
					r := math.Min(1, float64(cycle-onset)/float64(ramp))
					base = 0.55 + 0.40*r
				}
				for i := range loads {
					loads[i].Util = noisy(rng, base, 0.05)
					loads[i].Mem = noisy(rng, 0.4, 0.03)
					loads[i].NIC = noisy(rng, 0.12, 0.02)
					loads[i].Online = true
				}
			}
		},
	}
}

// SensorDrift is correlated PSU miscalibration (the FastCap-style
// fairness stress): whole PSU groups over-report utilisation with a
// drift that grows over the run, so the manager caps healthy nodes on
// inflated readings and fairness of the selection policy is what keeps
// the pain spread.
func SensorDrift() Scenario {
	const psuSize = 8
	return Scenario{
		Name:   "sensor-drift",
		About:  "correlated per-PSU over-reporting grows over the run (FastCap stress)",
		Agents: 32, Cycles: 240, Tg: 3,
		Policy:  "mpc-c",
		LowFrac: 0.72, HighFrac: 0.82,
		NewStep: func() StepFunc {
			var drifting []bool
			return func(rng *rand.Rand, cycle, cycles int, loads []Load) {
				if cycle == 0 {
					groups := (len(loads) + psuSize - 1) / psuSize
					drifting = make([]bool, groups)
					for g := range drifting {
						drifting[g] = rng.Float64() < 0.4
					}
				}
				// Full drift (+35%) is reached ~95% of the way through.
				drift := 1 + math.Min(0.35, 0.37*float64(cycle)/float64(cycles))
				for i := range loads {
					u := noisy(rng, 0.5, 0.06)
					if drifting[i/psuSize] {
						u = clampUtil(u * drift)
					}
					loads[i].Util = u
					loads[i].Mem = noisy(rng, 0.35, 0.03)
					loads[i].NIC = noisy(rng, 0.1, 0.02)
					loads[i].Online = true
				}
			}
		},
	}
}

// RollingUpgrade drains the fleet in batches: each batch goes offline
// for a maintenance window and comes back Reset — at the hardware
// default (top) level regardless of what the manager had commanded — so
// adoption and restore bookkeeping are continuously churned.
func RollingUpgrade() Scenario {
	return Scenario{
		Name:   "rolling-upgrade",
		About:  "batched drain/reboot waves; rebooted nodes return at full power",
		Agents: 32, Cycles: 240, Tg: 3,
		Policy:  "lpc",
		LowFrac: 0.70, HighFrac: 0.84,
		NewStep: func() StepFunc {
			return func(rng *rand.Rand, cycle, cycles int, loads []Load) {
				batch := len(loads)/8 + 1
				start := frac(cycles, 1, 8)
				down := frac(cycles, 1, 30)
				spacing := down + frac(cycles, 1, 40)
				for i := range loads {
					b := i / batch
					off := cycle >= start+b*spacing && cycle < start+b*spacing+down
					wasOff := cycle-1 >= start+b*spacing && cycle-1 < start+b*spacing+down
					loads[i].Util = noisy(rng, 0.62, 0.06)
					loads[i].Mem = noisy(rng, 0.35, 0.03)
					loads[i].NIC = noisy(rng, 0.1, 0.02)
					loads[i].Online = !off
					loads[i].Reset = !off && wasOff
				}
			}
		},
	}
}

// ReconnectHerd blacks out the whole fleet twice — every agent silent,
// then every agent back in the same cycle — the manager-side twin of
// the harness's reconnect-herd test: sensing collapses to zero and then
// the entire fleet's power reappears at once.
func ReconnectHerd() Scenario {
	return Scenario{
		Name:   "reconnect-herd",
		About:  "full-fleet blackouts with simultaneous return; power reappears in one cycle",
		Agents: 32, Cycles: 240, Tg: 3,
		Policy:  "mpc",
		LowFrac: 0.72, HighFrac: 0.80,
		NewStep: func() StepFunc {
			var d1, d2 int
			return func(rng *rand.Rand, cycle, cycles int, loads []Load) {
				if cycle == 0 {
					d1 = 2 + rng.Intn(frac(cycles, 1, 40)+1)
					d2 = 2 + rng.Intn(frac(cycles, 1, 40)+1)
				}
				b1, b2 := frac(cycles, 3, 10), frac(cycles, 3, 5)
				blackout := (cycle >= b1 && cycle < b1+d1) || (cycle >= b2 && cycle < b2+d2)
				for i := range loads {
					loads[i].Util = noisy(rng, 0.68, 0.06)
					loads[i].Mem = noisy(rng, 0.4, 0.03)
					loads[i].NIC = noisy(rng, 0.12, 0.02)
					loads[i].Online = !blackout
				}
			}
		},
	}
}

// ManagerFailover kills and replaces the manager in the middle of a
// sustained fleet-wide spike: the replacement adopts the capped levels
// and must keep Algorithm 1's invariants holding straight through the
// swap — no degrade-free breach, no double command, restores only after
// a full fresh Tg streak. The scenario twin of the harness's
// warm-standby takeover test.
func ManagerFailover() Scenario {
	return Scenario{
		Name:   "manager-failover",
		About:  "manager swapped mid-spike; replacement adopts capped fleet, invariants hold through takeover",
		Agents: 32, Cycles: 240, Tg: 3,
		Policy:  "mpc-c",
		LowFrac: 0.66, HighFrac: 0.76,
		// 7/18 of the run lands the swap inside the spike window at every
		// Scaled size: start=cycles/3, duration=cycles/6, 1/3 < 7/18 < 1/2.
		FailoverFrac: 7.0 / 18.0,
		NewStep: func() StepFunc {
			return func(rng *rand.Rand, cycle, cycles int, loads []Load) {
				start := frac(cycles, 1, 3)
				dur := frac(cycles, 1, 6)
				inSpike := cycle >= start && cycle < start+dur
				for i := range loads {
					if inSpike {
						loads[i].Util = noisy(rng, 0.93, 0.03)
						loads[i].NIC = noisy(rng, 0.3, 0.05)
					} else {
						loads[i].Util = noisy(rng, 0.30, 0.06)
						loads[i].NIC = noisy(rng, 0.1, 0.02)
					}
					loads[i].Mem = noisy(rng, 0.35, 0.03)
					loads[i].Online = true
				}
			}
		},
	}
}

// All returns the full library in its canonical order.
func All() []Scenario {
	return []Scenario{
		Diurnal(), FlashCrowd(), ThermalEmergency(),
		SensorDrift(), RollingUpgrade(), ReconnectHerd(),
		ManagerFailover(),
	}
}

// ByName looks a scenario up in the library.
func ByName(name string) (Scenario, error) {
	for _, sc := range All() {
		if sc.Name == name {
			return sc, nil
		}
	}
	names := make([]string, 0, 8)
	for _, sc := range All() {
		names = append(names, sc.Name)
	}
	return Scenario{}, fmt.Errorf("scenario: unknown scenario %q (have %v)", name, names)
}
