// Package scheduler implements the job subsystem of the evaluation
// environment (§V.C): a FCFS job queue, first-fit placement of jobs onto
// free nodes (one process per core, as on the testbed), and the paper's
// workload generation protocol — "an evaluation job is added to the job
// queue whenever the queue is empty" and "loaded to the system as soon as
// the required hardware resource is available".
//
// Each tick the scheduler advances running jobs at the pace of their
// slowest member node (bottleneck coupling) and installs the jobs' current
// operating points on their nodes.
package scheduler

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"repro/internal/node"
	"repro/internal/workload"
)

// Generator produces the next job request when the queue runs empty.
type Generator func() workload.Request

// RandomGenerator returns the paper's generator: uniform benchmark from
// suite, uniform NPROCS from {8..256}.
func RandomGenerator(rng *rand.Rand, suite []workload.Spec) Generator {
	return func() workload.Request { return workload.RandomRequest(rng, suite) }
}

// PriorityGenerator is RandomGenerator with a fraction of jobs marked
// high-priority (their nodes become privileged for the job's lifetime,
// §II.A).
func PriorityGenerator(rng *rand.Rand, suite []workload.Spec, privFrac float64) Generator {
	return func() workload.Request { return workload.PriorityRequest(rng, suite, privFrac) }
}

// Config parametrises the scheduler.
type Config struct {
	// Generator refills the queue; nil disables generation (jobs are then
	// only submitted explicitly via Submit).
	Generator Generator
	// JobConfig is applied to every started job.
	JobConfig workload.JobConfig
	// IdleLoad is the background operating point of nodes with no job
	// (OS housekeeping). Zero value means truly dark idle.
	IdleLoad node.Load
	// ProcsPerNode is the process placement density. The testbed runs
	// NPB class D at 2 processes per node (NPROCS=256 fills all 128
	// nodes); zero defaults to one process per core.
	ProcsPerNode int
	// Placement chooses which free nodes a job occupies; nil = FirstFit.
	Placement Placement
	// Backfill allows jobs behind a blocked queue head to start when
	// they fit in the currently free nodes (simple backfill without
	// reservations). The paper's testbed runs plain FCFS; backfill is
	// the production-batch-system counterpart.
	Backfill bool
}

// Placement selects need nodes from the free list (which is in node-ID
// order). Implementations must return exactly need distinct IDs drawn
// from free.
type Placement func(free []node.ID, need int) []node.ID

// FirstFit takes the lowest-numbered free nodes — the default, which
// tends to pack jobs into contiguous ranges (and therefore into the same
// cabinets).
func FirstFit(free []node.ID, need int) []node.ID { return free[:need] }

// CabinetSpread returns a placement that deals free nodes round-robin
// across cabinets of nodesPerCabinet consecutive IDs, spreading each
// job's thermal and electrical footprint over the distribution hierarchy.
func CabinetSpread(nodesPerCabinet int) Placement {
	if nodesPerCabinet <= 0 {
		return FirstFit
	}
	return func(free []node.ID, need int) []node.ID {
		buckets := make(map[int][]node.ID)
		maxCab := 0
		for _, id := range free {
			c := int(id) / nodesPerCabinet
			buckets[c] = append(buckets[c], id)
			if c > maxCab {
				maxCab = c
			}
		}
		out := make([]node.ID, 0, need)
		for len(out) < need {
			progressed := false
			for c := 0; c <= maxCab && len(out) < need; c++ {
				if b := buckets[c]; len(b) > 0 {
					out = append(out, b[0])
					buckets[c] = b[1:]
					progressed = true
				}
			}
			if !progressed {
				break
			}
		}
		return out
	}
}

// Scheduler owns job lifecycle and node load assignment.
type Scheduler struct {
	cfg   Config
	nodes []*node.Node
	byID  map[node.ID]*node.Node

	queue    []workload.Request
	running  map[workload.JobID]*workload.Job
	jobOn    map[node.ID]workload.JobID
	finished []*workload.Job
	nextID   workload.JobID

	started int
}

// New creates a scheduler over the given nodes.
func New(nodes []*node.Node, cfg Config) (*Scheduler, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("scheduler: no nodes")
	}
	s := &Scheduler{
		cfg:     cfg,
		nodes:   nodes,
		byID:    make(map[node.ID]*node.Node, len(nodes)),
		running: make(map[workload.JobID]*workload.Job),
		jobOn:   make(map[node.ID]workload.JobID),
	}
	for _, n := range nodes {
		if _, dup := s.byID[n.ID()]; dup {
			return nil, fmt.Errorf("scheduler: duplicate node id %d", n.ID())
		}
		s.byID[n.ID()] = n
	}
	return s, nil
}

// Submit places a request at the back of the queue.
func (s *Scheduler) Submit(req workload.Request) { s.queue = append(s.queue, req) }

// QueueLen reports the number of requests waiting.
func (s *Scheduler) QueueLen() int { return len(s.queue) }

// Running returns the currently running jobs, ordered by ID for
// deterministic iteration.
func (s *Scheduler) Running() []*workload.Job {
	out := make([]*workload.Job, 0, len(s.running))
	for _, j := range s.running {
		out = append(out, j)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].ID() < out[b].ID() })
	return out
}

// Finished returns all completed jobs in completion order.
func (s *Scheduler) Finished() []*workload.Job { return s.finished }

// Started reports how many jobs have been started in total.
func (s *Scheduler) Started() int { return s.started }

// JobOn returns the job occupying the given node, or nil if the node is
// free.
func (s *Scheduler) JobOn(id node.ID) *workload.Job {
	jid, ok := s.jobOn[id]
	if !ok {
		return nil
	}
	return s.running[jid]
}

// NodesNeeded returns how many nodes a request occupies: one process per
// core, whole nodes only.
func NodesNeeded(req workload.Request, coresPerNode int) int {
	if coresPerNode <= 0 {
		return req.NProcs
	}
	return (req.NProcs + coresPerNode - 1) / coresPerNode
}

// freeNodes returns the IDs of nodes without a job, in node order.
func (s *Scheduler) freeNodes() []node.ID {
	out := make([]node.ID, 0, len(s.nodes))
	for _, n := range s.nodes {
		if _, busy := s.jobOn[n.ID()]; !busy {
			out = append(out, n.ID())
		}
	}
	return out
}

// startOutcome reports what tryStart did with the queue head.
type startOutcome int

const (
	startBlocked startOutcome = iota // head waits for resources
	startDropped                     // head was undispatchable and removed
	startLaunched
)

// tryStart launches the queue entry at idx if enough nodes are free.
// idx 0 is plain FCFS; backfill probes later indices when the head is
// blocked.
func (s *Scheduler) tryStart(now time.Duration, idx int) startOutcome {
	if idx >= len(s.queue) {
		return startBlocked
	}
	req := s.queue[idx]
	ppn := s.cfg.ProcsPerNode
	if ppn <= 0 {
		ppn = s.nodes[0].Model().CPU.Cores()
	}
	need := NodesNeeded(req, ppn)
	if need > len(s.nodes) {
		// Undispatchable request: drop it rather than wedge the queue.
		s.queue = append(s.queue[:idx], s.queue[idx+1:]...)
		return startDropped
	}
	free := s.freeNodes()
	if len(free) < need {
		return startBlocked
	}
	place := s.cfg.Placement
	if place == nil {
		place = FirstFit
	}
	placed := place(free, need)
	if len(placed) != need {
		// A broken placement strategy must not corrupt the job; fall
		// back to first-fit.
		placed = free[:need]
	}
	s.nextID++
	job, err := workload.NewJob(s.nextID, req, placed, now, s.cfg.JobConfig)
	if err != nil {
		// A request that cannot construct a job is malformed; drop it.
		s.nextID--
		s.queue = append(s.queue[:idx], s.queue[idx+1:]...)
		return startDropped
	}
	s.queue = append(s.queue[:idx], s.queue[idx+1:]...)
	s.running[job.ID()] = job
	for _, id := range placed {
		s.jobOn[id] = job.ID()
	}
	if job.Privileged() {
		// §II.A: nodes running urgent/high-priority tasks are privileged
		// for the job's lifetime — restore them to full performance and
		// pin them out of A_candidate.
		for _, id := range placed {
			n := s.byID[id]
			if n.Controllable() {
				_ = n.SetLevel(n.Levels() - 1)
			}
			n.SetPinned(true)
		}
	}
	s.started++
	return startLaunched
}

// Tick advances the whole job subsystem by dt ending at virtual time now:
// finishes and starts jobs, refills the queue per the paper's protocol,
// and installs per-node loads.
func (s *Scheduler) Tick(now, dt time.Duration) {
	prev := now - dt

	// 1. Advance running jobs at their bottleneck pace; release nodes of
	// finishing jobs.
	for _, job := range s.Running() {
		minSlow := 1.0
		for _, id := range job.Nodes() {
			if sf := s.byID[id].SlowdownFactor(); sf < minSlow {
				minSlow = sf
			}
		}
		if job.Advance(prev, dt, minSlow) {
			s.finished = append(s.finished, job)
			delete(s.running, job.ID())
			for _, id := range job.Nodes() {
				delete(s.jobOn, id)
				if job.Privileged() {
					s.byID[id].SetPinned(false)
				}
			}
		}
	}

	// 2. Refill the queue whenever it is empty (§V.C), then start jobs
	// while resources allow. Each successful start can empty the queue
	// again, triggering another refill — matching "loaded as soon as the
	// required hardware resource is available". Dropped (undispatchable)
	// requests also make progress; a bounded drop budget prevents a
	// misconfigured generator that only emits oversized requests from
	// spinning forever.
	drops := 0
	for drops <= len(s.nodes)+len(s.queue)+8 {
		if len(s.queue) == 0 {
			if s.cfg.Generator == nil {
				break
			}
			s.queue = append(s.queue, s.cfg.Generator())
		}
		out := s.tryStart(now, 0)
		if out == startDropped {
			drops++
			continue
		}
		if out == startLaunched {
			continue
		}
		// Head blocked: optionally backfill a later job that fits now.
		if !s.cfg.Backfill || !s.backfillOne(now, &drops) {
			break
		}
	}
	s.installLoads(now)
}

// backfillOne probes the queue behind the head and starts the first job
// that fits the currently free nodes. It reports whether progress was
// made (a start or a drop).
func (s *Scheduler) backfillOne(now time.Duration, drops *int) bool {
	for i := 1; i < len(s.queue); i++ {
		switch s.tryStart(now, i) {
		case startLaunched:
			return true
		case startDropped:
			*drops++
			return true
		}
	}
	return false
}

// installLoads sets every node's operating point for the next interval.
func (s *Scheduler) installLoads(now time.Duration) {

	// 3. Install operating points for the next interval.
	for _, job := range s.Running() {
		for i, id := range job.Nodes() {
			s.byID[id].SetLoad(job.LoadAt(now, i))
		}
	}
	for _, n := range s.nodes {
		if s.JobOn(n.ID()) == nil {
			n.SetLoad(s.cfg.IdleLoad)
		}
	}
}
