package scheduler

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/node"
	"repro/internal/power"
	"repro/internal/workload"
)

func mkNodes(t *testing.T, n int) []*node.Node {
	t.Helper()
	out := make([]*node.Node, n)
	for i := range out {
		nd, err := node.New(node.ID(i), node.Config{Model: power.TianheNode(), Controllable: true})
		if err != nil {
			t.Fatal(err)
		}
		out[i] = nd
	}
	return out
}

func spec(t *testing.T, name string) workload.Spec {
	t.Helper()
	s, err := workload.SpecByName(workload.NPB(workload.ClassC), name)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, Config{}); err == nil {
		t.Error("empty node list accepted")
	}
	nodes := mkNodes(t, 2)
	dup := []*node.Node{nodes[0], nodes[0]}
	if _, err := New(dup, Config{}); err == nil {
		t.Error("duplicate node IDs accepted")
	}
}

func TestNodesNeeded(t *testing.T) {
	cases := []struct {
		nprocs, ppn, want int
	}{
		{8, 2, 4}, {256, 2, 128}, {16, 12, 2}, {13, 12, 2}, {12, 12, 1},
		{5, 0, 5}, // non-positive ppn falls back to one proc per node
	}
	for _, c := range cases {
		got := NodesNeeded(workload.Request{NProcs: c.nprocs}, c.ppn)
		if got != c.want {
			t.Errorf("NodesNeeded(%d procs, ppn %d) = %d, want %d", c.nprocs, c.ppn, got, c.want)
		}
	}
}

func TestSubmitAndPlacement(t *testing.T) {
	nodes := mkNodes(t, 8)
	s, err := New(nodes, Config{ProcsPerNode: 2})
	if err != nil {
		t.Fatal(err)
	}
	s.Submit(workload.Request{Spec: spec(t, "EP"), NProcs: 8}) // 4 nodes
	s.Tick(time.Second, time.Second)
	if s.Started() != 1 {
		t.Fatalf("started = %d", s.Started())
	}
	running := s.Running()
	if len(running) != 1 || len(running[0].Nodes()) != 4 {
		t.Fatalf("running = %v", running)
	}
	// The four placed nodes are attributed; others are free.
	busy := 0
	for _, n := range nodes {
		if s.JobOn(n.ID()) != nil {
			busy++
		}
	}
	if busy != 4 {
		t.Errorf("busy nodes = %d, want 4", busy)
	}
}

func TestHeadOfLineBlocking(t *testing.T) {
	nodes := mkNodes(t, 4)
	s, _ := New(nodes, Config{ProcsPerNode: 2})
	s.Submit(workload.Request{Spec: spec(t, "EP"), NProcs: 8}) // 4 nodes: fills cluster
	s.Submit(workload.Request{Spec: spec(t, "EP"), NProcs: 8}) // must wait
	s.Submit(workload.Request{Spec: spec(t, "EP"), NProcs: 2}) // 1 node, but behind
	s.Tick(time.Second, time.Second)
	if s.Started() != 1 {
		t.Errorf("started = %d, want 1 (FCFS head-of-line)", s.Started())
	}
	if s.QueueLen() != 2 {
		t.Errorf("queue = %d, want 2", s.QueueLen())
	}
}

func TestOversizedRequestDropped(t *testing.T) {
	nodes := mkNodes(t, 2)
	s, _ := New(nodes, Config{ProcsPerNode: 2})
	s.Submit(workload.Request{Spec: spec(t, "EP"), NProcs: 256}) // needs 128 nodes
	s.Submit(workload.Request{Spec: spec(t, "EP"), NProcs: 2})
	s.Tick(time.Second, time.Second)
	if s.Started() != 1 {
		t.Errorf("started = %d: oversized request should be dropped, next started", s.Started())
	}
}

func TestJobLifecycleFreesNodes(t *testing.T) {
	nodes := mkNodes(t, 2)
	s, _ := New(nodes, Config{ProcsPerNode: 2})
	s.Submit(workload.Request{Spec: spec(t, "EP"), NProcs: 4})
	now := time.Second
	s.Tick(now, time.Second)
	job := s.Running()[0]
	for !job.Done() {
		now += time.Second
		s.Tick(now, time.Second)
		if now > time.Hour {
			t.Fatal("job never finished")
		}
	}
	if len(s.Running()) != 0 {
		t.Error("finished job still running")
	}
	if len(s.Finished()) != 1 {
		t.Error("finished job not recorded")
	}
	for _, n := range nodes {
		if s.JobOn(n.ID()) != nil {
			t.Error("node not freed after completion")
		}
	}
}

func TestGeneratorKeepsClusterBusy(t *testing.T) {
	nodes := mkNodes(t, 16)
	rng := rand.New(rand.NewSource(7))
	s, _ := New(nodes, Config{
		ProcsPerNode: 2,
		Generator:    RandomGenerator(rng, workload.NPB(workload.ClassC)),
	})
	now := time.Duration(0)
	for i := 0; i < 600; i++ {
		now += time.Second
		s.Tick(now, time.Second)
	}
	if s.Started() < 2 {
		t.Errorf("only %d jobs started in 10 min", s.Started())
	}
	// The paper's protocol keeps the queue at most one deep.
	if s.QueueLen() > 1 {
		t.Errorf("queue grew to %d", s.QueueLen())
	}
	busy := 0
	for _, n := range nodes {
		if s.JobOn(n.ID()) != nil {
			busy++
		}
	}
	if busy == 0 {
		t.Error("generator left the cluster idle")
	}
}

func TestBottleneckCoupling(t *testing.T) {
	// Degrading one member node slows the whole job exactly as much as
	// degrading all of them (§IV.A).
	run := func(degradeAll bool) time.Duration {
		nodes := mkNodes(t, 4)
		s, _ := New(nodes, Config{ProcsPerNode: 2})
		s.Submit(workload.Request{Spec: spec(t, "EP"), NProcs: 8})
		now := time.Second
		s.Tick(now, time.Second)
		if degradeAll {
			for _, n := range nodes {
				if err := n.SetLevel(3); err != nil {
					t.Fatal(err)
				}
			}
		} else {
			if err := nodes[0].SetLevel(3); err != nil {
				t.Fatal(err)
			}
		}
		job := s.Running()[0]
		for !job.Done() {
			now += time.Second
			s.Tick(now, time.Second)
		}
		return job.ActualDuration()
	}
	one, all := run(false), run(true)
	if one != all {
		t.Errorf("one-node degrade %v != all-node degrade %v", one, all)
	}
}

func TestLoadsInstalledOnNodes(t *testing.T) {
	nodes := mkNodes(t, 4)
	idle := node.Load{CPUUtil: 0.02}
	s, _ := New(nodes, Config{ProcsPerNode: 2, IdleLoad: idle})
	s.Submit(workload.Request{Spec: spec(t, "EP"), NProcs: 4}) // 2 nodes
	s.Tick(time.Second, time.Second)
	busyLoads, idleLoads := 0, 0
	for _, n := range nodes {
		if s.JobOn(n.ID()) != nil {
			if n.Load().CPUUtil > 0.1 {
				busyLoads++
			}
		} else if n.Load() == idle {
			idleLoads++
		}
	}
	if busyLoads != 2 {
		t.Errorf("busy nodes with job load = %d, want 2", busyLoads)
	}
	if idleLoads != 2 {
		t.Errorf("idle nodes with idle load = %d, want 2", idleLoads)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (int, int) {
		nodes := mkNodes(t, 16)
		rng := rand.New(rand.NewSource(99))
		s, _ := New(nodes, Config{
			ProcsPerNode: 2,
			Generator:    RandomGenerator(rng, workload.NPB(workload.ClassC)),
			JobConfig:    workload.JobConfig{Rng: rand.New(rand.NewSource(5)), Jitter: 0.05},
		})
		now := time.Duration(0)
		for i := 0; i < 1200; i++ {
			now += time.Second
			s.Tick(now, time.Second)
		}
		return s.Started(), len(s.Finished())
	}
	s1, f1 := run()
	s2, f2 := run()
	if s1 != s2 || f1 != f2 {
		t.Errorf("non-deterministic: (%d,%d) vs (%d,%d)", s1, f1, s2, f2)
	}
}

func TestPrivilegedJobPinsNodes(t *testing.T) {
	nodes := mkNodes(t, 4)
	s, _ := New(nodes, Config{ProcsPerNode: 2})
	// Pre-degrade node 0, then start a privileged job over nodes 0-1.
	if err := nodes[0].SetLevel(3); err != nil {
		t.Fatal(err)
	}
	s.Submit(workload.Request{Spec: spec(t, "EP"), NProcs: 4, Priority: 1})
	now := time.Second
	s.Tick(now, time.Second)
	job := s.Running()[0]
	if !job.Privileged() {
		t.Fatal("job not privileged")
	}
	for _, id := range job.Nodes() {
		n := nodes[int(id)]
		if !n.Pinned() {
			t.Errorf("member node %d not pinned", id)
		}
		if n.Controllable() {
			t.Errorf("pinned node %d still in A_candidate", id)
		}
		if !n.AtHighest() {
			t.Errorf("privileged member %d not restored to full performance (level %d)", id, n.Level())
		}
		if err := n.SetLevel(0); err == nil {
			t.Errorf("pinned node %d accepted a degrade command", id)
		}
	}
	// Non-member nodes are unaffected.
	for _, n := range nodes {
		member := false
		for _, id := range job.Nodes() {
			if id == n.ID() {
				member = true
			}
		}
		if !member && n.Pinned() {
			t.Errorf("non-member node %d pinned", n.ID())
		}
	}
	// Run to completion: nodes must be unpinned and controllable again.
	for !job.Done() {
		now += time.Second
		s.Tick(now, time.Second)
	}
	for _, id := range job.Nodes() {
		if nodes[int(id)].Pinned() {
			t.Errorf("node %d still pinned after job end", id)
		}
		if !nodes[int(id)].Controllable() {
			t.Errorf("node %d not back in A_candidate", id)
		}
	}
}

func TestPriorityGeneratorFraction(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	gen := PriorityGenerator(rng, workload.NPB(workload.ClassC), 0.5)
	priv := 0
	const n = 2000
	for i := 0; i < n; i++ {
		if gen().Privileged() {
			priv++
		}
	}
	frac := float64(priv) / n
	if frac < 0.45 || frac > 0.55 {
		t.Errorf("privileged fraction = %.3f, want ≈0.5", frac)
	}
	// Zero fraction yields none.
	gen0 := PriorityGenerator(rng, workload.NPB(workload.ClassC), 0)
	for i := 0; i < 100; i++ {
		if gen0().Privileged() {
			t.Fatal("zero fraction produced a privileged job")
		}
	}
}

func TestFirstFitPlacement(t *testing.T) {
	free := []node.ID{0, 1, 5, 9}
	got := FirstFit(free, 2)
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("FirstFit = %v", got)
	}
}

func TestCabinetSpreadPlacement(t *testing.T) {
	// 2 cabinets of 4 nodes; all free. Spread must alternate cabinets.
	free := []node.ID{0, 1, 2, 3, 4, 5, 6, 7}
	place := CabinetSpread(4)
	got := place(free, 4)
	if len(got) != 4 {
		t.Fatalf("placed %v", got)
	}
	cab0, cab1 := 0, 0
	for _, id := range got {
		if int(id) < 4 {
			cab0++
		} else {
			cab1++
		}
	}
	if cab0 != 2 || cab1 != 2 {
		t.Errorf("spread = %d/%d, want 2/2 across cabinets: %v", cab0, cab1, got)
	}
	// Degenerate: zero cabinet size falls back to FirstFit.
	if got := CabinetSpread(0)(free, 2); got[0] != 0 || got[1] != 1 {
		t.Errorf("fallback = %v", got)
	}
	// Asking for everything returns everything.
	if got := place(free, 8); len(got) != 8 {
		t.Errorf("full placement = %v", got)
	}
}

func TestSchedulerUsesPlacement(t *testing.T) {
	nodes := mkNodes(t, 8)
	s, _ := New(nodes, Config{
		ProcsPerNode: 2,
		Placement:    CabinetSpread(4),
	})
	s.Submit(workload.Request{Spec: spec(t, "EP"), NProcs: 8}) // 4 nodes
	s.Tick(time.Second, time.Second)
	job := s.Running()[0]
	cab0, cab1 := 0, 0
	for _, id := range job.Nodes() {
		if int(id) < 4 {
			cab0++
		} else {
			cab1++
		}
	}
	if cab0 != 2 || cab1 != 2 {
		t.Errorf("job placed %d/%d, want spread", cab0, cab1)
	}
}

func TestBrokenPlacementFallsBack(t *testing.T) {
	nodes := mkNodes(t, 4)
	s, _ := New(nodes, Config{
		ProcsPerNode: 2,
		Placement:    func(free []node.ID, need int) []node.ID { return nil },
	})
	s.Submit(workload.Request{Spec: spec(t, "EP"), NProcs: 4})
	s.Tick(time.Second, time.Second)
	if s.Started() != 1 {
		t.Error("broken placement wedged the scheduler")
	}
	if got := len(s.Running()[0].Nodes()); got != 2 {
		t.Errorf("fallback placed %d nodes", got)
	}
}

func TestBackfill(t *testing.T) {
	nodes := mkNodes(t, 4)
	s, _ := New(nodes, Config{ProcsPerNode: 2, Backfill: true})
	s.Submit(workload.Request{Spec: spec(t, "EP"), NProcs: 4}) // 2 nodes: starts
	s.Submit(workload.Request{Spec: spec(t, "EP"), NProcs: 8}) // 4 nodes: blocked
	s.Submit(workload.Request{Spec: spec(t, "EP"), NProcs: 4}) // 2 nodes: backfills
	s.Tick(time.Second, time.Second)
	if s.Started() != 2 {
		t.Errorf("started = %d, want 2 (first + backfilled third)", s.Started())
	}
	if s.QueueLen() != 1 {
		t.Errorf("queue = %d, want the blocked 4-node job", s.QueueLen())
	}
	// Without backfill the same submission order starts only one job.
	nodes2 := mkNodes(t, 4)
	s2, _ := New(nodes2, Config{ProcsPerNode: 2})
	s2.Submit(workload.Request{Spec: spec(t, "EP"), NProcs: 4})
	s2.Submit(workload.Request{Spec: spec(t, "EP"), NProcs: 8})
	s2.Submit(workload.Request{Spec: spec(t, "EP"), NProcs: 4})
	s2.Tick(time.Second, time.Second)
	if s2.Started() != 1 {
		t.Errorf("FCFS started = %d, want 1", s2.Started())
	}
}

func TestBackfillDropsOversizedBehindHead(t *testing.T) {
	nodes := mkNodes(t, 2)
	s, _ := New(nodes, Config{ProcsPerNode: 2, Backfill: true})
	s.Submit(workload.Request{Spec: spec(t, "EP"), NProcs: 4})   // fills cluster
	s.Submit(workload.Request{Spec: spec(t, "EP"), NProcs: 4})   // blocked head-of-rest
	s.Submit(workload.Request{Spec: spec(t, "EP"), NProcs: 256}) // oversized: dropped during backfill scan
	s.Tick(time.Second, time.Second)
	if s.QueueLen() != 1 {
		t.Errorf("queue = %d, want only the feasible blocked job", s.QueueLen())
	}
}
