package backend

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/agentd"
	"repro/internal/harness"
	"repro/internal/manager"
	"repro/internal/managerd"
	"repro/internal/node"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/wire"
)

// Daemon is the distributed-transport backend: the same simulated plant
// as Sim, but sensed and actuated through the real daemon stack — one
// passive agentd per node pushing samples over internal/faultnet to a
// managerd.Server in external-control mode. The discrete-event engine
// still owns time; at every control instant the backend bridges virtual
// time to the wall-clock daemons:
//
//  1. collect each candidate's reading from the plant (virtual time),
//  2. open a sense epoch and push the readings through the agents' wire
//     connections; wait until the manager has accepted them all,
//  3. start an external cycle — its epoch-filtered readings are what
//     Sense returns to the control law, and its actuator carries
//     SetNodeLevel commands over the wire,
//  4. after the control callback returns, wait for the command fan-out
//     and every ack, so the commanded levels are in force on the plant
//     before the next tick event fires — the sim backend's synchronous
//     actuation semantics, recovered over an asynchronous transport.
//
// Readings survive the wire round-trip losslessly when ControlPeriod is
// a whole number of milliseconds (the sample envelope carries intervals
// in ms; float64 and uint64 fields round-trip exactly through JSON), so
// a run on this backend is metrically equivalent to the sim backend —
// E11 in EXPERIMENTS.md quantifies the residual differences.
type Daemon struct {
	*plant
	engine     *sim.Engine
	coll       *manager.Collector
	hc         *harness.Cluster
	cycle      *managerd.ExternalCycle
	rec        *obs.CycleRecorder
	err        error
	ackTimeout time.Duration
	started    bool
}

// NewDaemon constructs the plant, boots the daemon cluster (manager in
// external-control mode plus one passive agent per node), and waits for
// every agent to register.
func NewDaemon(cfg Config) (*Daemon, error) {
	p, err := newPlant(cfg)
	if err != nil {
		return nil, err
	}
	hc, err := harness.New(harness.Options{
		Agents:   cfg.Nodes,
		Seed:     int64(cfg.Seed),
		Model:    cfg.Model,
		External: true,
		// Health staleness is wall-clock; a virtual-time run pushes
		// samples every few wall-milliseconds, so these only need to be
		// far above any plausible scheduling hiccup.
		StaleAfter: time.Hour,
		LostAfter:  2 * time.Hour,
		AgentSetup: func(i int, acfg *agentd.Config) {
			n := p.cluster.Node(node.ID(i))
			acfg.Passive = true
			acfg.MaxLevel = n.Levels() - 1
			acfg.InitialLevel = n.Level()
			acfg.Apply = func(level int) (int, error) {
				p.mu.Lock()
				defer p.mu.Unlock()
				err := n.SetLevel(level)
				return n.Level(), err
			}
		},
	})
	if err != nil {
		return nil, err
	}
	d := &Daemon{
		plant:      p,
		engine:     sim.NewEngine(),
		coll:       manager.NewCollector(p.cluster, p.sched),
		hc:         hc,
		ackTimeout: 10 * time.Second,
	}
	deadline := time.Now().Add(10 * time.Second)
	for hc.Server.Status().Agents < cfg.Nodes {
		if time.Now().After(deadline) {
			hc.Stop()
			return nil, fmt.Errorf("backend: only %d/%d agents registered after 10s",
				hc.Server.Status().Agents, cfg.Nodes)
		}
		time.Sleep(time.Millisecond)
	}
	return d, nil
}

// Observe attaches the staged-cycle recorder. Call before Start.
func (d *Daemon) Observe(rec *obs.CycleRecorder) { d.rec = rec }

// Start registers the plant tick and the bridged control event; as in
// the sim backend, the tick fires first at shared instants.
func (d *Daemon) Start(control func(now time.Duration)) error {
	if d.started {
		return fmt.Errorf("backend: Start called twice")
	}
	d.started = true
	d.engine.Every(d.cfg.TickPeriod, func(e *sim.Engine) { d.tick(e.Now()) })
	d.engine.Every(d.cfg.ControlPeriod, func(e *sim.Engine) { d.controlEvent(e.Now(), control) })
	return nil
}

// controlEvent is the virtual-time bridge around one control cycle.
func (d *Daemon) controlEvent(now time.Duration, control func(now time.Duration)) {
	if d.err != nil {
		return
	}
	d.mu.Lock()
	readings := d.coll.Collect(now)
	d.mu.Unlock()

	base := d.hc.Server.SamplesReceived()
	d.hc.Server.BeginSenseEpoch()
	for _, r := range readings {
		if err := d.hc.Agents[int(r.ID)].PushReading(r); err != nil {
			d.err = fmt.Errorf("backend: push reading for node %d: %w", r.ID, err)
			return
		}
	}
	want := base + int64(len(readings))
	deadline := time.Now().Add(d.ackTimeout)
	for d.hc.Server.SamplesReceived() < want {
		if time.Now().After(deadline) {
			d.err = fmt.Errorf("backend: %d/%d samples received after %v",
				d.hc.Server.SamplesReceived()-base, len(readings), d.ackTimeout)
			return
		}
		time.Sleep(50 * time.Microsecond)
	}

	cyc := d.hc.Server.StartExternalCycle()
	d.cycle = cyc
	span := d.rec.Begin()
	control(now)
	d.cycle = nil
	t0 := time.Now()
	err := cyc.Finish(d.ackTimeout)
	// Settle is the wire transport's real cost: command fan-out plus every
	// ack, which the sim backend gets for free (its settle is zero).
	span.Stage(obs.StageSettle, time.Since(t0), "")
	span.End()
	if err != nil {
		d.err = err
	}
}

// RunUntil advances virtual time to t, surfacing the first transport
// error the bridge hit.
func (d *Daemon) RunUntil(t time.Duration) error {
	d.engine.RunUntil(t)
	return d.err
}

// Now reports the current virtual time.
func (d *Daemon) Now() time.Duration { return d.engine.Now() }

// ReadMeter samples the facility meter (metering stays plant-side: the
// paper's facility meter is infrastructure, not an agent).
func (d *Daemon) ReadMeter() units.Watts { return d.readMeter() }

// Sense returns the readings the manager daemon accepted this sense
// epoch, in node-ID order. Only valid inside the control callback.
func (d *Daemon) Sense(now time.Duration) []manager.AgentReading {
	if d.cycle == nil {
		return nil
	}
	return d.cycle.Readings()
}

// SetNodeLevel sends a level command over the wire through the current
// cycle's tracked actuator.
func (d *Daemon) SetNodeLevel(id node.ID, level int) error {
	if d.cycle == nil {
		return fmt.Errorf("backend: SetNodeLevel outside a control cycle")
	}
	return d.cycle.SetNodeLevel(id, level)
}

// Stream returns the named deterministic random stream.
func (d *Daemon) Stream(name string) *rand.Rand { return d.streams.Get(name) }

// BeginMeasurement resets the measured-window accumulators.
func (d *Daemon) BeginMeasurement() { d.beginMeasurement() }

// Traits reports the plant's static aggregate properties.
func (d *Daemon) Traits() Traits { return d.traits() }

// Info reads the run's accumulated outcomes.
func (d *Daemon) Info() Info { return d.info() }

// Close shuts the agents, manager and fault network down. Idempotent.
func (d *Daemon) Close() error {
	d.hc.Stop()
	return nil
}

// Status exposes the manager daemon's transport counters (samples
// received, acks, retries, fan-out latencies) for reporting.
func (d *Daemon) Status() wire.StatusReply { return d.hc.Server.Status() }
