package backend

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/node"
	"repro/internal/power"
	"repro/internal/units"
	"repro/internal/workload"
)

func testConfig(seed uint64) Config {
	return Config{
		Seed:           seed,
		Nodes:          16,
		CandidateCount: -1,
		Model:          power.TianheNode(),
		ModelError:     0.02,
		PowerJitter:    0.005,
		Class:          workload.ClassC,
		ProcsPerNode:   2,
		JobRampUp:      45 * time.Second,
		JobJitter:      0.03,
		IdleLoad:       node.Load{CPUUtil: 0.02},
		PMax:           units.KW(4),
		MeterNoise:     0.003,
		ControlPeriod:  time.Second,
		TickPeriod:     time.Second,
	}
}

func TestUnknownBackendRejected(t *testing.T) {
	if _, err := New("bogus", testConfig(1)); err == nil {
		t.Fatal("unknown backend name accepted")
	}
}

func TestNewSelectsByName(t *testing.T) {
	for _, name := range []string{"", "sim"} {
		b, err := New(name, testConfig(1))
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if _, ok := b.(*Sim); !ok {
			t.Fatalf("New(%q) = %T, want *Sim", name, b)
		}
		b.Close()
	}
	b, err := New("daemon", testConfig(1))
	if err != nil {
		t.Fatalf("New(daemon): %v", err)
	}
	if _, ok := b.(*Daemon); !ok {
		t.Fatalf("New(daemon) = %T, want *Daemon", b)
	}
	b.Close()
}

func TestStartTwiceRejected(t *testing.T) {
	b, err := NewSim(testConfig(1))
	if err != nil {
		t.Fatal(err)
	}
	noop := func(time.Duration) {}
	if err := b.Start(noop); err != nil {
		t.Fatal(err)
	}
	if err := b.Start(noop); err == nil {
		t.Fatal("second Start accepted")
	}
}

func TestTraitsMatchAcrossBackends(t *testing.T) {
	s, err := NewSim(testConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDaemon(testConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	st, dt := fmt.Sprintf("%+v", s.Traits()), fmt.Sprintf("%+v", d.Traits())
	if st != dt {
		t.Errorf("traits differ:\nsim    %s\ndaemon %s", st, dt)
	}
}

// TestSimDaemonCycleEquivalence drives a short seeded run on both
// backends with an identical toy control law and asserts cycle-by-cycle
// identity: the same sensed readings arrive and the same commanded
// levels are in force on the plant at every control instant.
func TestSimDaemonCycleEquivalence(t *testing.T) {
	const cycles = 30
	type cycleLog struct {
		meter    units.Watts
		readings string
	}
	run := func(b Backend) []cycleLog {
		t.Helper()
		var logs []cycleLog
		control := func(now time.Duration) {
			p := b.ReadMeter()
			rs := b.Sense(now)
			sum := ""
			for _, r := range rs {
				sum += fmt.Sprintf("%+v|", r)
			}
			logs = append(logs, cycleLog{meter: p, readings: sum})
			// Throttle even nodes on even cycles, restore on odd — forces
			// wire commands every cycle on the daemon backend.
			lvl := 0
			if len(logs)%2 == 1 {
				lvl = 6
			}
			for _, r := range rs {
				if int(r.ID)%2 == 0 {
					if err := b.SetNodeLevel(r.ID, lvl); err != nil {
						t.Errorf("SetNodeLevel(%d): %v", r.ID, err)
					}
				}
			}
		}
		if err := b.Start(control); err != nil {
			t.Fatal(err)
		}
		if err := b.RunUntil(cycles * time.Second); err != nil {
			t.Fatal(err)
		}
		return logs
	}

	s, err := NewSim(testConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	simLogs := run(s)

	d, err := NewDaemon(testConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	dLogs := run(d)

	if len(simLogs) != len(dLogs) {
		t.Fatalf("cycle counts differ: sim %d, daemon %d", len(simLogs), len(dLogs))
	}
	for i := range simLogs {
		if simLogs[i].meter != dLogs[i].meter {
			t.Fatalf("cycle %d: meter sim %v, daemon %v", i, simLogs[i].meter, dLogs[i].meter)
		}
		if simLogs[i].readings != dLogs[i].readings {
			t.Fatalf("cycle %d: readings differ\nsim    %s\ndaemon %s",
				i, simLogs[i].readings, dLogs[i].readings)
		}
	}
	if st := d.Status(); st.SamplesReceived == 0 || st.CommandAcks == 0 {
		t.Errorf("daemon transport unused: %+v", st)
	}
}
