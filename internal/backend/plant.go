package backend

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/pdist"
	"repro/internal/power"
	"repro/internal/replay"
	"repro/internal/scheduler"
	"repro/internal/sim"
	"repro/internal/thermal"
	"repro/internal/units"
	"repro/internal/workload"
)

// plant is the simulated physical system both backends share: the node
// population, the scheduler feeding it jobs, the facility meter, and the
// optional cabinet/thermal models. The Sim backend touches it from the
// single engine goroutine; the Daemon backend's agents also reach it from
// wire-handler goroutines (command application), so every access goes
// through mu.
//
// Construction draws the same named random streams in the same roles as
// the pre-seam core.System ("nodes", "workload", "jobs", "meter");
// streams depend only on (seed, name), so the control side drawing
// "policy"/"faults" from the same seed cannot perturb the plant and the
// split stays bit-identical to the monolithic wiring.
type plant struct {
	cfg     Config
	streams *sim.Streams

	mu       sync.Mutex
	cluster  *cluster.Cluster
	sched    *scheduler.Scheduler
	meter    *power.Meter
	recorder *replay.Recorder // non-nil when RecordTrace
	cabinets *pdist.Monitor   // nil unless Cabinets > 0
	cabBuf   []units.Watts
	therm    *thermal.Tracker // nil when thermal modelling is off
	thermBuf []units.Watts
}

// newPlant builds the plant. The construction order and stream names
// mirror the pre-seam core.New exactly.
func newPlant(cfg Config) (*plant, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("backend: need at least one node")
	}
	if cfg.ControlPeriod <= 0 || cfg.TickPeriod <= 0 {
		return nil, fmt.Errorf("backend: ControlPeriod and TickPeriod must be positive")
	}
	streams := sim.NewStreams(cfg.Seed)

	cl, err := cluster.New(cluster.Config{
		Nodes:       cfg.Nodes,
		Model:       cfg.Model,
		ModelFor:    cfg.ModelFor,
		Privileged:  cfg.Privileged,
		ModelError:  cfg.ModelError,
		JitterSigma: cfg.PowerJitter,
		Rng:         streams.Get("nodes"),
	})
	if err != nil {
		return nil, err
	}
	if cfg.CandidateCount >= 0 {
		if err := cl.SetCandidateCount(cfg.CandidateCount); err != nil {
			return nil, err
		}
	}

	suite := workload.NPB(cfg.Class)
	if len(cfg.Benchmarks) > 0 {
		var filtered []workload.Spec
		for _, name := range cfg.Benchmarks {
			s, err := workload.SpecByName(suite, name)
			if err != nil {
				return nil, err
			}
			filtered = append(filtered, s)
		}
		suite = filtered
	}
	gen := scheduler.RandomGenerator(streams.Get("workload"), suite)
	if cfg.PrivilegedJobFraction > 0 {
		gen = scheduler.PriorityGenerator(streams.Get("workload"), suite, cfg.PrivilegedJobFraction)
	}
	if cfg.WorkloadTrace != nil {
		player, err := replay.NewPlayer(cfg.WorkloadTrace, suite, gen)
		if err != nil {
			return nil, err
		}
		gen = player.Generator()
	}
	var recorder *replay.Recorder
	if cfg.RecordTrace {
		recorder = replay.NewRecorder(gen, replay.Header{
			Suite:   "NPB-" + string(cfg.Class),
			Comment: fmt.Sprintf("recorded by core.System seed=%d", cfg.Seed),
		})
		gen = recorder.Generator()
	}
	var placement scheduler.Placement
	if cfg.Placement == "spread" {
		placement = scheduler.CabinetSpread(cfg.Nodes / cfg.Cabinets)
	}
	sched, err := scheduler.New(cl.Nodes(), scheduler.Config{
		Generator: gen,
		JobConfig: workload.JobConfig{
			RampUp: cfg.JobRampUp,
			Jitter: cfg.JobJitter,
			Rng:    streams.Get("jobs"),
		},
		IdleLoad:     cfg.IdleLoad,
		ProcsPerNode: cfg.ProcsPerNode,
		Placement:    placement,
	})
	if err != nil {
		return nil, err
	}

	p := &plant{
		cfg:      cfg,
		streams:  streams,
		cluster:  cl,
		sched:    sched,
		meter:    power.NewMeter(cl, cfg.MeterOverhead, cfg.MeterNoise, streams.Get("meter")),
		recorder: recorder,
	}
	if cfg.Cabinets > 0 {
		breaker := cfg.CabinetBreaker
		if breaker == 0 {
			breaker = units.Watts(1.15 * float64(cfg.PMax) / float64(cfg.Cabinets))
		}
		mon, err := pdist.NewMonitor(pdist.Layout{
			Cabinets: cfg.Cabinets,
			NodesPer: cfg.Nodes / cfg.Cabinets,
		}, breaker)
		if err != nil {
			return nil, err
		}
		p.cabinets = mon
		p.cabBuf = make([]units.Watts, cfg.Nodes)
	}
	if cfg.ThermalEnabled {
		params := cfg.Thermal
		if params == (thermal.Params{}) {
			params = thermal.Tianhe()
		}
		tr, err := thermal.NewTracker(cfg.Nodes, params)
		if err != nil {
			return nil, err
		}
		p.therm = tr
		p.thermBuf = make([]units.Watts, cfg.Nodes)
	}
	return p, nil
}

// tick advances physics and workload by one TickPeriod at virtual time
// now (now is the instant the tick fires, i.e. the end of the interval).
func (p *plant) tick(now time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	dt := p.cfg.TickPeriod
	p.cluster.Tick(dt)    // account the previous interval's load
	p.sched.Tick(now, dt) // finish/start jobs, install new loads
	if p.cabinets != nil {
		for i, n := range p.cluster.Nodes() {
			p.cabBuf[i] = n.TruePower()
		}
		if err := p.cabinets.Observe(dt, p.cabBuf); err != nil {
			panic(err) // sizes match by construction
		}
	}
	if p.therm != nil {
		for i, n := range p.cluster.Nodes() {
			p.thermBuf[i] = n.TruePower()
		}
		if err := p.therm.Step(dt, p.thermBuf); err != nil {
			panic(err) // sizes match by construction
		}
		// Close the §I.A positive feedback loop: hotter nodes draw more.
		for i, n := range p.cluster.Nodes() {
			n.SetThermalFactor(p.therm.LeakageFactor(i))
		}
	}
}

// readMeter samples the facility meter under the plant lock.
func (p *plant) readMeter() units.Watts {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.meter.Read()
}

// beginMeasurement resets the measured-window accumulators at the
// training/evaluation boundary: the (identical, uncapped) training period
// would dilute the thermal and cabinet summaries.
func (p *plant) beginMeasurement() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.therm != nil {
		p.therm.ResetAccumulators()
	}
	if p.cabinets != nil {
		p.cabinets.Reset()
	}
}

// traits computes the plant's static aggregate properties.
func (p *plant) traits() Traits {
	p.mu.Lock()
	defer p.mu.Unlock()
	t := Traits{
		Nodes:           p.cluster.Size(),
		Candidates:      len(p.cluster.Candidates()),
		TheoreticalPeak: p.cluster.TheoreticalPeak(),
		FloorPower:      p.cluster.FloorPower(),
	}
	for _, n := range p.cluster.Nodes() {
		m := n.Model()
		if n.Controllable() {
			t.FlooredWorstCase += m.Instant(1, 1, 1, 0)
		} else {
			t.FlooredWorstCase += m.MaxPower()
		}
	}
	if nodes := p.cluster.Nodes(); len(nodes) > 0 {
		t.NodeModel = nodes[0].Model()
	}
	return t
}

// info reads the run's accumulated outcomes.
func (p *plant) info() Info {
	p.mu.Lock()
	defer p.mu.Unlock()
	in := Info{
		FinishedJobs:    p.sched.Finished(),
		TheoreticalPeak: p.cluster.TheoreticalPeak(),
	}
	if p.therm != nil {
		sum := p.therm.Summarise()
		in.Thermal = &sum
	}
	if p.cabinets != nil {
		sum := p.cabinets.Summarise()
		in.Cabinets = &sum
	}
	if p.recorder != nil {
		in.Trace = p.recorder.Trace()
	}
	return in
}
