// Package backend defines the transport-agnostic cluster backend seam:
// everything the control law in internal/core needs from the managed
// system — sensing (agent readings for the candidate set), actuation
// (power level commands), facility metering, and virtual-time
// advancement — behind one interface with two implementations.
//
// The Sim backend is the in-process simulation path (cluster + collector
// + discrete-event engine), behaviour-preserving with respect to the
// pre-seam core.System: same construction order, same named random
// streams, bit-identical results for the same seed.
//
// The Daemon backend runs the identical simulated plant behind a real
// managerd.Server and N real agentd Agents wired over internal/faultnet:
// sensing readings travel agent→manager as wire samples, and actuation
// travels manager→agent as wire commands that the agents apply back onto
// the plant. A virtual-time bridge drives plant ticks and pushes one
// sample per candidate per control cycle, then waits for command
// acknowledgements before virtual time advances — so a seeded workload
// replays identically over the wire and the paper's metrics can score the
// daemon plane (experiment E11).
//
// One control law, two transports: Algorithm 1 runs once, in
// internal/core against this interface, never per-backend.
package backend

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/manager"
	"repro/internal/node"
	"repro/internal/obs"
	"repro/internal/pdist"
	"repro/internal/power"
	"repro/internal/replay"
	"repro/internal/thermal"
	"repro/internal/units"
	"repro/internal/workload"
)

// Config describes the managed plant both backends build: the node
// population, the workload, the facility meter, and the physical-model
// extensions. It is the plant half of core.Config; the control half
// (policy, thresholds, Tg, training) stays in core.
type Config struct {
	// Seed drives every named random stream of the plant. Streams are
	// derived by name (sim.Streams), so the control side drawing its own
	// streams from the same seed never perturbs the plant's.
	Seed uint64

	// Nodes is |A_total|; Privileged nodes are permanently
	// uncontrollable; CandidateCount (when ≥ 0) restricts A_candidate to
	// that many evenly spaced nodes.
	Nodes          int
	Privileged     int
	CandidateCount int

	// Model is the per-node device/power model; ModelFor optionally
	// overrides it per node index (heterogeneous clusters).
	Model    power.Model
	ModelFor func(i int) power.Model

	// ModelError and PowerJitter shape the per-node truth-vs-model gap.
	ModelError  float64
	PowerJitter float64

	// Class, Benchmarks and ProcsPerNode select the NPB workload.
	Class        workload.Class
	Benchmarks   []string
	ProcsPerNode int

	// PrivilegedJobFraction marks this fraction of generated jobs as
	// high-priority (their nodes pin out of A_candidate while running).
	PrivilegedJobFraction float64

	// WorkloadTrace replays a recorded trace; RecordTrace captures the
	// generated one (returned in Info.Trace).
	WorkloadTrace *replay.Trace
	RecordTrace   bool

	// JobRampUp/JobJitter shape job power behaviour; IdleLoad is the
	// background load of free nodes.
	JobRampUp time.Duration
	JobJitter float64
	IdleLoad  node.Load

	// Placement, Cabinets and CabinetBreaker configure the
	// power-distribution model; PMax is used only to derive a default
	// breaker rating when CabinetBreaker is zero.
	Placement      string
	Cabinets       int
	CabinetBreaker units.Watts
	PMax           units.Watts

	// MeterOverhead/MeterNoise configure the facility meter.
	MeterOverhead float64
	MeterNoise    float64

	// ThermalEnabled/Thermal configure the §I.A thermal model.
	ThermalEnabled bool
	Thermal        thermal.Params

	// ControlPeriod is the manager cycle τ; TickPeriod the workload
	// advancement step. The backend owns the schedule: ticks fire before
	// the control callback at shared instants.
	ControlPeriod time.Duration
	TickPeriod    time.Duration
}

// Traits are the static aggregate properties of the constructed plant
// that the §II.D assumption checks are stated over. They are computed at
// construction; reading them never touches live state.
type Traits struct {
	// Nodes is |A_total|; Candidates is |A_candidate| at construction.
	Nodes      int
	Candidates int
	// TheoreticalPeak is P_thy = Σ P_i (Necessity).
	TheoreticalPeak units.Watts
	// FloorPower is the all-idle, all-floored draw (Operability).
	FloorPower units.Watts
	// FlooredWorstCase is the draw with every candidate floored at full
	// load and everything else at worst case (Controllability).
	FlooredWorstCase units.Watts
	// NodeModel is node 0's device model (the assumption checks size one
	// representative job with it).
	NodeModel power.Model
}

// Info is what a finished run reads back from the plant: the outcomes
// that accumulated behind the seam.
type Info struct {
	FinishedJobs    []*workload.Job
	TheoreticalPeak units.Watts
	Thermal         *thermal.Summary // nil unless thermal modelling is on
	Cabinets        *pdist.Summary   // nil unless Cabinets configured
	Trace           *replay.Trace    // nil unless RecordTrace
}

// Backend is the transport seam. It is also the manager.Actuator the
// control law issues its level commands through — on the Sim backend a
// command is a direct node state change, on the Daemon backend a wire
// command to the node's agent.
//
// The contract the control law relies on:
//
//   - Start registers the plant tick and the control callback on the
//     backend's virtual clock; at shared instants ticks fire first.
//   - Sense may only be called from inside the control callback, and
//     returns the candidate readings for that instant in node-ID order.
//   - SetNodeLevel may only be called from inside the control callback;
//     the commanded levels are in force on the plant before the next
//     tick fires (the Daemon backend waits for command acks).
//   - RunUntil advances virtual time, firing ticks and control
//     callbacks, and returns the first transport error (always nil on
//     the Sim backend).
type Backend interface {
	manager.Actuator

	// Observe attaches the staged-cycle recorder: the backend brackets
	// every control cycle with Begin/End and records its transport
	// stages (settle) into it, so both transports emit the same staged
	// timeline for the same control law. Call before Start; nil (or not
	// calling at all) disables recording.
	Observe(rec *obs.CycleRecorder)
	// Start registers the control callback; call exactly once.
	Start(control func(now time.Duration)) error
	// RunUntil advances virtual time to t.
	RunUntil(t time.Duration) error
	// Now reports the current virtual time.
	Now() time.Duration

	// ReadMeter samples the facility power meter.
	ReadMeter() units.Watts
	// Sense returns the candidate agent readings for this control
	// instant, in node-ID order.
	Sense(now time.Duration) []manager.AgentReading
	// Stream returns the named deterministic random stream derived from
	// the plant seed (the control side's policy and fault streams).
	Stream(name string) *rand.Rand

	// BeginMeasurement resets the measured-window accumulators (thermal,
	// cabinet) at the training/evaluation boundary.
	BeginMeasurement()
	// Traits reports the plant's static aggregate properties.
	Traits() Traits
	// Info reads the run's accumulated outcomes.
	Info() Info

	// Close releases transport resources (daemon goroutines, network);
	// a no-op on the Sim backend. Safe to call more than once.
	Close() error
}

// New constructs the named backend: "" or "sim" for the in-process
// simulation path, "daemon" for the managerd/agentd wire path.
func New(name string, cfg Config) (Backend, error) {
	switch name {
	case "", "sim":
		return NewSim(cfg)
	case "daemon":
		return NewDaemon(cfg)
	default:
		return nil, fmt.Errorf("backend: unknown backend %q (want sim or daemon)", name)
	}
}
