package backend

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/cluster"
	"repro/internal/manager"
	"repro/internal/node"
	"repro/internal/obs"
	"repro/internal/scheduler"
	"repro/internal/sim"
	"repro/internal/units"
)

// Sim is the in-process simulation backend: the plant driven directly by
// a discrete-event engine, sensed by the in-process Collector and
// actuated by direct node state changes. It reproduces the pre-seam
// core.System wiring exactly — same event registration order, same
// stream names — so results are bit-identical for the same seed.
type Sim struct {
	*plant
	engine  *sim.Engine
	coll    *manager.Collector
	rec     *obs.CycleRecorder
	started bool
}

// NewSim constructs the simulation backend.
func NewSim(cfg Config) (*Sim, error) {
	p, err := newPlant(cfg)
	if err != nil {
		return nil, err
	}
	return &Sim{
		plant:  p,
		engine: sim.NewEngine(),
		coll:   manager.NewCollector(p.cluster, p.sched),
	}, nil
}

// Observe attaches the staged-cycle recorder. Call before Start.
func (s *Sim) Observe(rec *obs.CycleRecorder) { s.rec = rec }

// Start registers the plant tick and the control callback. Order
// matters: the tick event must fire before the control event at shared
// instants, so the manager sees counters that include the latest
// interval.
func (s *Sim) Start(control func(now time.Duration)) error {
	if s.started {
		return fmt.Errorf("backend: Start called twice")
	}
	s.started = true
	s.engine.Every(s.cfg.TickPeriod, func(e *sim.Engine) { s.tick(e.Now()) })
	s.engine.Every(s.cfg.ControlPeriod, func(e *sim.Engine) {
		span := s.rec.Begin()
		control(e.Now())
		// Direct node actuation is synchronous: commands are in force the
		// moment SetNodeLevel returns, so settling costs nothing.
		span.Stage(obs.StageSettle, 0, "")
		span.End()
	})
	return nil
}

// RunUntil advances virtual time to t.
func (s *Sim) RunUntil(t time.Duration) error {
	s.engine.RunUntil(t)
	return nil
}

// Now reports the current virtual time.
func (s *Sim) Now() time.Duration { return s.engine.Now() }

// ReadMeter samples the facility meter.
func (s *Sim) ReadMeter() units.Watts { return s.readMeter() }

// Sense samples every candidate node at virtual time now (node-ID
// order, the Collector's iteration order).
func (s *Sim) Sense(now time.Duration) []manager.AgentReading {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.coll.Collect(now)
}

// SetNodeLevel implements manager.Actuator by direct node actuation.
func (s *Sim) SetNodeLevel(id node.ID, level int) error {
	n := s.cluster.Node(id)
	if n == nil {
		return &manager.UnknownNodeError{ID: id}
	}
	return n.SetLevel(level)
}

// Stream returns the named deterministic random stream.
func (s *Sim) Stream(name string) *rand.Rand { return s.streams.Get(name) }

// BeginMeasurement resets the measured-window accumulators.
func (s *Sim) BeginMeasurement() { s.beginMeasurement() }

// Traits reports the plant's static aggregate properties.
func (s *Sim) Traits() Traits { return s.traits() }

// Info reads the run's accumulated outcomes.
func (s *Sim) Info() Info { return s.info() }

// Close is a no-op: the Sim backend owns no goroutines or sockets.
func (s *Sim) Close() error { return nil }

// Cluster exposes the underlying cluster for tests, examples and
// benchmarks that inspect node state directly.
func (s *Sim) Cluster() *cluster.Cluster { return s.cluster }

// Scheduler exposes the job subsystem.
func (s *Sim) Scheduler() *scheduler.Scheduler { return s.sched }

// Engine exposes the simulation engine (custom instrumentation, e.g.
// sampling extra series on a schedule before calling Run).
func (s *Sim) Engine() *sim.Engine { return s.engine }
