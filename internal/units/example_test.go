package units_test

import (
	"fmt"

	"repro/internal/units"
)

func ExampleParseWatts() {
	w, _ := units.ParseWatts("37.5 kW")
	fmt.Println(w)
	// Output: 37.50 kW
}

func ExampleWatts_String() {
	fmt.Println(units.MW(12.659)) // the K computer's peak draw
	fmt.Println(units.Watts(350))
	// Output:
	// 12.66 MW
	// 350.00 W
}

func ExampleJoules_KWh() {
	e := units.KWh(2.5)
	fmt.Printf("%.0f J = %.1f kWh\n", float64(e), e.KWh())
	// Output: 9000000 J = 2.5 kWh
}
