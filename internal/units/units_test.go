package units

import (
	"math"
	"testing"
	"testing/quick"
)

func TestConstructors(t *testing.T) {
	if KW(40) != Watts(40000) {
		t.Errorf("KW(40) = %v, want 40000 W", float64(KW(40)))
	}
	if MW(4.55) != Watts(4.55e6) {
		t.Errorf("MW(4.55) = %v", float64(MW(4.55)))
	}
	if GHz(2.93) != Hertz(2.93e9) {
		t.Errorf("GHz(2.93) = %v", float64(GHz(2.93)))
	}
	if MHz(1600) != GHz(1.6) {
		t.Errorf("MHz(1600) = %v, want GHz(1.6)", float64(MHz(1600)))
	}
	if GB(4) != Bytes(4<<30) {
		t.Errorf("GB(4) = %v", float64(GB(4)))
	}
	if MB(1024) != GB(1) {
		t.Errorf("MB(1024) != GB(1)")
	}
	if KWh(1) != Joules(3.6e6) {
		t.Errorf("KWh(1) = %v", float64(KWh(1)))
	}
}

func TestAccessors(t *testing.T) {
	if got := KW(37.5).KW(); got != 37.5 {
		t.Errorf("KW accessor = %v", got)
	}
	if got := GHz(1.6).GHz(); math.Abs(got-1.6) > 1e-12 {
		t.Errorf("GHz accessor = %v", got)
	}
	if got := KWh(12.659).KWh(); math.Abs(got-12.659) > 1e-9 {
		t.Errorf("KWh accessor = %v", got)
	}
}

func TestStringRendering(t *testing.T) {
	cases := []struct {
		got, want string
	}{
		{Watts(0).String(), "0 W"},
		{Watts(350).String(), "350.00 W"},
		{KW(40).String(), "40.00 kW"},
		{MW(12.659).String(), "12.66 MW"},
		{Watts(-350).String(), "-350.00 W"},
		{Watts(0.25).String(), "0.2500 W"},
		{GHz(2.93).String(), "2.93 GHz"},
		{Joules(1.5e12).String(), "1.50 TJ"},
		{GB(24).String(), "24.00 GiB"},
		{Bytes(512).String(), "512 B"},
		{MB(3.5).String(), "3.50 MiB"},
		{Bytes(-2048).String(), "-2.00 KiB"},
		{Bytes(2 << 40).String(), "2.00 TiB"},
	}
	for _, c := range cases {
		if c.got != c.want {
			t.Errorf("String() = %q, want %q", c.got, c.want)
		}
	}
}

func TestParseWatts(t *testing.T) {
	cases := []struct {
		in   string
		want Watts
	}{
		{"40kW", KW(40)},
		{"37.5 kW", KW(37.5)},
		{"350W", Watts(350)},
		{"1.2MW", MW(1.2)},
		{"500mW", Watts(0.5)},
		{" 2 kW ", KW(2)},
	}
	for _, c := range cases {
		got, err := ParseWatts(c.in)
		if err != nil {
			t.Errorf("ParseWatts(%q) error: %v", c.in, err)
			continue
		}
		if math.Abs(float64(got-c.want)) > 1e-9 {
			t.Errorf("ParseWatts(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestParseWattsErrors(t *testing.T) {
	for _, in := range []string{"", "40", "40 kJ", "abc W", "k W"} {
		if _, err := ParseWatts(in); err == nil {
			t.Errorf("ParseWatts(%q) succeeded, want error", in)
		}
	}
}

func TestParseHertz(t *testing.T) {
	got, err := ParseHertz("2.93GHz")
	if err != nil || got != GHz(2.93) {
		t.Errorf("ParseHertz(2.93GHz) = %v, %v", got, err)
	}
	got, err = ParseHertz("1600 MHz")
	if err != nil || math.Abs(float64(got-GHz(1.6))) > 1e-3 {
		t.Errorf("ParseHertz(1600 MHz) = %v, %v", got, err)
	}
	if _, err := ParseHertz("12 W"); err == nil {
		t.Error("ParseHertz(12 W) succeeded, want error")
	}
}

func TestParseRoundTripProperty(t *testing.T) {
	f := func(raw uint32) bool {
		w := Watts(float64(raw) / 16)
		parsed, err := ParseWatts(w.String())
		if err != nil {
			return false
		}
		return ApproxEqual(float64(parsed), float64(w), 0.005)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 {
		t.Error("Clamp above")
	}
	if Clamp(-5, 0, 1) != 0 {
		t.Error("Clamp below")
	}
	if Clamp(0.5, 0, 1) != 0.5 {
		t.Error("Clamp inside")
	}
}

func TestClampProperty(t *testing.T) {
	f := func(v, a, b float64) bool {
		if math.IsNaN(v) || math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		lo, hi := math.Min(a, b), math.Max(a, b)
		got := Clamp(v, lo, hi)
		return got >= lo && got <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestApproxEqual(t *testing.T) {
	if !ApproxEqual(100, 100.4, 0.005) {
		t.Error("100 vs 100.4 at 0.5% should be equal")
	}
	if ApproxEqual(100, 101, 0.005) {
		t.Error("100 vs 101 at 0.5% should differ")
	}
	if !ApproxEqual(0, 0, 0.01) {
		t.Error("zero vs zero")
	}
	if ApproxEqual(0, 1e-6, 0.01) {
		t.Error("zero vs 1e-6 should differ (absolute floor)")
	}
}
