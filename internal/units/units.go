// Package units provides small, strongly typed value types for the physical
// quantities the power-capping system manipulates: power (watts), energy
// (joules), frequency (hertz) and data sizes (bytes). Using distinct types
// keeps watt/joule/hertz confusion out of the control path and gives every
// quantity a consistent human-readable rendering.
package units

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Watts is an instantaneous electrical power.
type Watts float64

// Joules is an amount of energy.
type Joules float64

// Hertz is a frequency. CPU frequencies are carried in Hertz rather than
// GHz floats so arithmetic against durations stays unit-correct.
type Hertz float64

// Bytes is a data size or cumulative byte counter.
type Bytes float64

// Common scale factors.
const (
	Kilo = 1e3
	Mega = 1e6
	Giga = 1e9
	Tera = 1e12
)

// KW constructs Watts from kilowatts.
func KW(kw float64) Watts { return Watts(kw * Kilo) }

// MW constructs Watts from megawatts.
func MW(mw float64) Watts { return Watts(mw * Mega) }

// GHz constructs Hertz from gigahertz.
func GHz(g float64) Hertz { return Hertz(g * Giga) }

// MHz constructs Hertz from megahertz.
func MHz(m float64) Hertz { return Hertz(m * Mega) }

// GB constructs Bytes from gibibytes (binary: 2^30).
func GB(g float64) Bytes { return Bytes(g * (1 << 30)) }

// MB constructs Bytes from mebibytes (binary: 2^20).
func MB(m float64) Bytes { return Bytes(m * (1 << 20)) }

// KWh converts energy expressed in kilowatt-hours to Joules.
func KWh(kwh float64) Joules { return Joules(kwh * 3.6e6) }

// KW reports the power in kilowatts.
func (w Watts) KW() float64 { return float64(w) / Kilo }

// GHz reports the frequency in gigahertz.
func (h Hertz) GHz() float64 { return float64(h) / Giga }

// KWh reports the energy in kilowatt-hours.
func (j Joules) KWh() float64 { return float64(j) / 3.6e6 }

// String renders power with an SI prefix, e.g. "37.42 kW".
func (w Watts) String() string { return siString(float64(w), "W") }

// String renders energy with an SI prefix, e.g. "1.21 GJ".
func (j Joules) String() string { return siString(float64(j), "J") }

// String renders frequency with an SI prefix, e.g. "2.93 GHz".
func (h Hertz) String() string { return siString(float64(h), "Hz") }

// String renders a byte quantity with a binary prefix, e.g. "24.0 GiB".
func (b Bytes) String() string {
	v := float64(b)
	neg := ""
	if v < 0 {
		neg, v = "-", -v
	}
	switch {
	case v >= 1<<40:
		return fmt.Sprintf("%s%.2f TiB", neg, v/(1<<40))
	case v >= 1<<30:
		return fmt.Sprintf("%s%.2f GiB", neg, v/(1<<30))
	case v >= 1<<20:
		return fmt.Sprintf("%s%.2f MiB", neg, v/(1<<20))
	case v >= 1<<10:
		return fmt.Sprintf("%s%.2f KiB", neg, v/(1<<10))
	default:
		return fmt.Sprintf("%s%.0f B", neg, v)
	}
}

func siString(v float64, unit string) string {
	neg := ""
	if v < 0 {
		neg, v = "-", -v
	}
	switch {
	case v == 0:
		return "0 " + unit
	case v >= Tera:
		return fmt.Sprintf("%s%.2f T%s", neg, v/Tera, unit)
	case v >= Giga:
		return fmt.Sprintf("%s%.2f G%s", neg, v/Giga, unit)
	case v >= Mega:
		return fmt.Sprintf("%s%.2f M%s", neg, v/Mega, unit)
	case v >= Kilo:
		return fmt.Sprintf("%s%.2f k%s", neg, v/Kilo, unit)
	case v >= 1:
		return fmt.Sprintf("%s%.2f %s", neg, v, unit)
	default:
		return fmt.Sprintf("%s%.4f %s", neg, v, unit)
	}
}

// ParseWatts parses strings like "40kW", "37.5 kW", "350W", "1.2MW".
func ParseWatts(s string) (Watts, error) {
	v, err := parseSI(s, "W")
	return Watts(v), err
}

// ParseHertz parses strings like "2.93GHz", "1600 MHz".
func ParseHertz(s string) (Hertz, error) {
	v, err := parseSI(s, "Hz")
	return Hertz(v), err
}

func parseSI(s, unit string) (float64, error) {
	t := strings.TrimSpace(s)
	if !strings.HasSuffix(strings.ToLower(t), strings.ToLower(unit)) {
		return 0, fmt.Errorf("units: %q does not end in %q", s, unit)
	}
	t = t[:len(t)-len(unit)]
	t = strings.TrimSpace(t)
	mult := 1.0
	if t != "" {
		switch t[len(t)-1] {
		case 'k', 'K':
			mult, t = Kilo, t[:len(t)-1]
		case 'M':
			mult, t = Mega, t[:len(t)-1]
		case 'G', 'g':
			mult, t = Giga, t[:len(t)-1]
		case 'T':
			mult, t = Tera, t[:len(t)-1]
		case 'm':
			mult, t = 1e-3, t[:len(t)-1]
		}
	}
	t = strings.TrimSpace(t)
	v, err := strconv.ParseFloat(t, 64)
	if err != nil {
		return 0, fmt.Errorf("units: cannot parse %q: %v", s, err)
	}
	return v * mult, nil
}

// Clamp bounds v to [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// ApproxEqual reports whether a and b agree within a relative tolerance rel
// (with an absolute floor for values near zero).
func ApproxEqual(a, b, rel float64) bool {
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1e-12 {
		return diff < 1e-12
	}
	return diff/scale <= rel
}
