package units

import (
	"math"
	"testing"
)

// FuzzParseWatts checks the parser never panics and that accepted inputs
// round-trip through String within formatting tolerance.
func FuzzParseWatts(f *testing.F) {
	for _, seed := range []string{"40kW", "37.5 kW", "350W", "1.2MW", "500mW", "", "kW", "-3 kW", "1e300 W", "NaN W"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, in string) {
		w, err := ParseWatts(in)
		if err != nil {
			return
		}
		v := float64(w)
		if math.IsNaN(v) || math.IsInf(v, 0) {
			// Accepting NaN/Inf is tolerable (caller validates), but the
			// formatter must still not panic on it.
		}
		_ = w.String()
	})
}

// FuzzParseHertz mirrors FuzzParseWatts for frequencies.
func FuzzParseHertz(f *testing.F) {
	for _, seed := range []string{"2.93GHz", "1600 MHz", "0Hz", "xHz", "GHz"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, in string) {
		h, err := ParseHertz(in)
		if err != nil {
			return
		}
		_ = h.String()
	})
}
