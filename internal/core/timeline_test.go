package core

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/units"
	"repro/internal/workload"
)

// timelineCfg is a short capped run small enough to drive over the wire:
// no training period (thresholds derive from PMax immediately), so every
// cycle runs the full Algorithm 1 stage sequence.
func timelineCfg(backendName string, seed uint64) Config {
	cfg := DefaultConfig()
	cfg.Backend = backendName
	cfg.Seed = seed
	cfg.Nodes = 16
	cfg.Class = workload.ClassC
	cfg.PolicyName = "mpc"
	cfg.PMax = units.KW(4)
	cfg.Training = 0
	return cfg
}

// stageKeys flattens one run's cycle spans into comparable per-cycle
// strings: stage names and outcome labels only. Durations are host time
// and legitimately differ between transports; what must match is the
// staged shape of the control law — which stages ran, in what order,
// classifying what, selecting and actuating how many nodes.
func stageKeys(spans []obs.CycleSpan) []string {
	out := make([]string, len(spans))
	for i, sp := range spans {
		var b strings.Builder
		fmt.Fprintf(&b, "cycle=%d", sp.Cycle)
		for _, sg := range sp.Stages {
			fmt.Fprintf(&b, " %s(%s)", sg.Stage, sg.Outcome)
		}
		out[i] = b.String()
	}
	return out
}

// TestBackendsEmitIdenticalStagedTimeline is the tentpole's equivalence
// check: the same seeded workload driven through the in-process sim
// backend and the managerd/agentd wire backend must produce the same
// staged cycle timeline — same stages, same order, same classify/select/
// actuate outcomes — because there is one control law and the transports
// merely carry it.
func TestBackendsEmitIdenticalStagedTimeline(t *testing.T) {
	const eval = 90 * time.Second
	run := func(name string) []obs.CycleSpan {
		t.Helper()
		sys, err := New(timelineCfg(name, 17))
		if err != nil {
			t.Fatal(err)
		}
		defer sys.Close()
		res, err := sys.Run(eval)
		if err != nil {
			t.Fatal(err)
		}
		return res.CycleSpans
	}

	simSpans := run("sim")
	daemonSpans := run("daemon")

	if len(simSpans) == 0 {
		t.Fatal("sim run recorded no cycle spans")
	}
	simKeys, daemonKeys := stageKeys(simSpans), stageKeys(daemonSpans)
	if len(simKeys) != len(daemonKeys) {
		t.Fatalf("cycle counts differ: sim %d, daemon %d", len(simKeys), len(daemonKeys))
	}
	for i := range simKeys {
		if simKeys[i] != daemonKeys[i] {
			t.Fatalf("timelines diverge at cycle %d:\nsim    %s\ndaemon %s",
				i+1, simKeys[i], daemonKeys[i])
		}
	}

	// Sanity on the shape itself: capped cycles carry the full five-stage
	// sequence ending in settle.
	want := []string{"sense", "classify", "select", "actuate", "settle"}
	last := simSpans[len(simSpans)-1]
	var got []string
	for _, sg := range last.Stages {
		got = append(got, sg.Stage)
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("last cycle stages = %v, want %v", got, want)
	}
}

// TestCycleSpansFeedRegistryHistograms pins the registry side of the
// recorder: a run's stage durations must be queryable as quantiles after
// the ring has rotated past them.
func TestCycleSpansFeedRegistryHistograms(t *testing.T) {
	cfg := timelineCfg("sim", 5)
	cfg.CycleHistory = 8 // force ring rotation well before the run ends
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(60 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.CycleSpans) != 8 {
		t.Fatalf("retained %d spans, want ring capacity 8", len(res.CycleSpans))
	}
	for _, name := range []string{"cycle_stage_sense_micros", "cycle_stage_classify_micros", "cycle_total_micros"} {
		h := sys.Obs().Histogram(name)
		snap := h.Snapshot()
		if snap.Count != 60 {
			t.Errorf("%s count = %d, want 60 (one per cycle, ring horizon ignored)", name, snap.Count)
		}
	}
	if n := sys.CycleTrace().Cycles(); n != 60 {
		t.Errorf("recorder counted %d cycles, want 60", n)
	}
}
