// Package core wires the complete power provision and capping system of
// the paper: the simulated Tianhe-1A cluster, the NPB evaluation workload
// (§V.B–C), the facility power meter, the threshold learner (§III.A), the
// per-node sensing path, and the global power manager running Algorithm 1
// with a configurable target set selection policy (§IV).
//
// It is the public API of this repository: construct a System from a
// Config and Run it for a virtual duration; the Result carries the paper's
// metrics (Performance, CPLJ, P_max, ΔP×T) plus control-loop statistics.
//
//	cfg := core.DefaultConfig()
//	cfg.PolicyName = "mpc"
//	sys, err := core.New(cfg)
//	res, err := sys.Run(12 * time.Hour)
//	fmt.Println(res.Summary.Performance, res.Summary.PMax)
package core

import (
	"fmt"
	"time"

	"repro/internal/backend"
	"repro/internal/feedback"
	"repro/internal/manager"
	"repro/internal/metrics"
	"repro/internal/node"
	"repro/internal/nodemgr"
	"repro/internal/obs"
	"repro/internal/pdist"
	"repro/internal/policy"
	"repro/internal/power"
	"repro/internal/replay"
	"repro/internal/thermal"
	"repro/internal/trace"
	"repro/internal/units"
	"repro/internal/workload"
)

// Config describes one complete experiment setup. DefaultConfig returns
// the paper's environment; tests and ablations override fields.
type Config struct {
	// Seed drives every random stream in the run (workload draws, phase
	// offsets, meter noise, node model error). Same seed, same run.
	Seed uint64

	// Backend selects the cluster transport: "" or "sim" runs the
	// in-process simulation path; "daemon" runs the same simulated plant
	// behind a real managerd/agentd daemon plane, sensing and actuating
	// over the wire (see internal/backend). The control law is identical
	// on both — one control law, two transports.
	Backend string

	// Nodes is |A_total|; Privileged nodes are permanently uncontrollable.
	Nodes      int
	Privileged int
	// CandidateCount limits |A_candidate| to this many evenly spaced
	// nodes; negative means "all non-privileged nodes" (Figure 6 sweeps
	// this).
	CandidateCount int
	// Model is the per-node device/power model.
	Model power.Model
	// ModelFor, when non-nil, overrides Model per node index, building a
	// heterogeneous cluster (Algorithm 1 explicitly supports them,
	// §III.B property 1). The sensing path registers each node's model
	// so formula (1) is evaluated with the right coefficients.
	ModelFor func(i int) power.Model

	// Class selects the NPB problem class (D = paper, C = 16× shorter
	// for tests); Benchmarks optionally restricts the suite by name.
	Class      workload.Class
	Benchmarks []string
	// ProcsPerNode is the MPI placement density (testbed: 2 for class D,
	// so NPROCS=256 fills all 128 nodes). Zero = one process per core.
	ProcsPerNode int

	// PolicyName selects the target set selection policy (§IV); see
	// policy.Names. "none" disables capping (the baseline run).
	PolicyName string

	// Controller selects the control law: "capping" (Algorithm 1, the
	// paper's contribution; default when empty), "feedback" (the
	// Wang & Chen cluster-level PI baseline from §I.B, which adjusts
	// every candidate node each cycle) or "twolevel" (the Femal-style
	// per-node budget division of §I.B, enforced locally on each node).
	// With a non-capping controller, PolicyName is ignored.
	Controller string
	// TwoLevelDivision selects the budget split for the "twolevel"
	// controller: "uniform" (default) or "proportional".
	TwoLevelDivision string

	// PMax is the power provision capability (§II.D, Necessity): the
	// threshold ΔP×T is evaluated against and the learner's initial
	// P_peak.
	PMax units.Watts

	// ControlPeriod is the manager cycle τ; TickPeriod is the workload
	// advancement step.
	ControlPeriod time.Duration
	TickPeriod    time.Duration

	// Tg is the steady-green patience in cycles; AdjustEvery is t_p, the
	// threshold re-adjustment period in cycles; Training is the initial
	// uncapped threshold-learning period.
	Tg          int
	AdjustEvery int
	Training    time.Duration
	// MarginL/MarginH are the threshold derivation margins (defaults
	// 16%/7% per Fan et al.).
	MarginL, MarginH float64

	// MeterOverhead/MeterNoise configure the facility meter; ModelError
	// and PowerJitter the per-node truth-vs-model gap.
	MeterOverhead float64
	MeterNoise    float64
	ModelError    float64
	PowerJitter   float64

	// JobRampUp/JobJitter shape job power behaviour; IdleLoad is the
	// background load of free nodes.
	JobRampUp time.Duration
	JobJitter float64
	IdleLoad  node.Load

	// AgentDropRate injects sensing faults: the probability that a
	// node's reading is lost in a given cycle.
	AgentDropRate float64

	// PrivilegedJobFraction marks this fraction of generated jobs as
	// high-priority: their nodes are pinned out of A_candidate for the
	// job's lifetime (§II.A dynamic candidate membership).
	PrivilegedJobFraction float64

	// Cabinets enables the power-distribution model: nodes are laid out
	// in this many equal cabinets, each with a PDU breaker rating of
	// CabinetBreaker (0 derives a rating with 15% headroom over an even
	// split of PMax). Result.Cabinets reports per-cabinet outcomes.
	Cabinets       int
	CabinetBreaker units.Watts
	// Placement selects job placement: "firstfit" (default) packs jobs
	// into contiguous node ranges; "spread" deals each job's nodes
	// round-robin across cabinets.
	Placement string

	// WorkloadTrace, when non-nil, replays the given recorded trace
	// instead of random generation (the seed-driven generator becomes
	// the fallback once the trace is exhausted).
	WorkloadTrace *replay.Trace
	// RecordTrace captures the run's generated requests; the trace is
	// returned in Result.Trace.
	RecordTrace bool

	// ThermalEnabled turns on the §I.A thermal model: per-node RC
	// temperatures, the temperature→power leakage feedback, and the
	// failure/cooling accounting reported in Result.Thermal.
	ThermalEnabled bool
	// Thermal overrides the thermal parameters; the zero value selects
	// the Tianhe defaults.
	Thermal thermal.Params

	// CycleHistory is how many staged cycle timelines the run retains
	// (Result.CycleSpans); zero selects obs.DefaultCycleHistory.
	CycleHistory int
}

// DefaultConfig returns the paper's experiment environment: 128 Tianhe-1A
// nodes, NPB class D, 40 kW provision capability, 1 s control cycle,
// Tg = 10 cycles, thresholds learned per §III.A.
func DefaultConfig() Config {
	return Config{
		Seed:           1,
		Nodes:          128,
		Privileged:     0,
		CandidateCount: -1,
		Model:          power.TianheNode(),
		Class:          workload.ClassD,
		ProcsPerNode:   2,
		PolicyName:     "mpc",
		PMax:           units.KW(31),
		ControlPeriod:  time.Second,
		TickPeriod:     time.Second,
		Tg:             10,
		AdjustEvery:    300,
		Training:       0, // Run handles training when set
		MarginL:        power.DefaultMarginL,
		MarginH:        power.DefaultMarginH,
		MeterOverhead:  0.0,
		MeterNoise:     0.003,
		ModelError:     0.02,
		PowerJitter:    0.005,
		JobRampUp:      45 * time.Second,
		JobJitter:      0.03,
		IdleLoad:       node.Load{CPUUtil: 0.02},
	}
}

// Validate checks the configuration for consistency.
func (c Config) Validate() error {
	if c.Nodes <= 0 {
		return fmt.Errorf("core: Nodes must be positive")
	}
	if c.PMax <= 0 {
		return fmt.Errorf("core: PMax must be positive")
	}
	if c.ControlPeriod <= 0 || c.TickPeriod <= 0 {
		return fmt.Errorf("core: ControlPeriod and TickPeriod must be positive")
	}
	if c.Tg <= 0 {
		return fmt.Errorf("core: Tg must be positive")
	}
	if c.AdjustEvery <= 0 {
		return fmt.Errorf("core: AdjustEvery must be positive")
	}
	if c.AgentDropRate < 0 || c.AgentDropRate >= 1 {
		return fmt.Errorf("core: AgentDropRate %v outside [0,1)", c.AgentDropRate)
	}
	if c.PrivilegedJobFraction < 0 || c.PrivilegedJobFraction > 1 {
		return fmt.Errorf("core: PrivilegedJobFraction %v outside [0,1]", c.PrivilegedJobFraction)
	}
	switch c.Backend {
	case "", "sim", "daemon":
	default:
		return fmt.Errorf("core: unknown backend %q (want sim or daemon)", c.Backend)
	}
	switch c.Controller {
	case "", "capping", "feedback", "twolevel":
	default:
		return fmt.Errorf("core: unknown controller %q (want capping, feedback or twolevel)", c.Controller)
	}
	switch c.TwoLevelDivision {
	case "", "uniform", "proportional":
	default:
		return fmt.Errorf("core: unknown two-level division %q", c.TwoLevelDivision)
	}
	switch c.Placement {
	case "", "firstfit", "spread":
	default:
		return fmt.Errorf("core: unknown placement %q (want firstfit or spread)", c.Placement)
	}
	if c.Cabinets < 0 || (c.Cabinets > 0 && c.Nodes%c.Cabinets != 0) {
		return fmt.Errorf("core: %d nodes do not divide into %d cabinets", c.Nodes, c.Cabinets)
	}
	if c.Placement == "spread" && c.Cabinets == 0 {
		return fmt.Errorf("core: spread placement requires Cabinets > 0")
	}
	if err := c.Model.Validate(); err != nil {
		return err
	}
	return nil
}

// System is a fully wired experiment instance: the control plane
// (learner, sensing builder, Algorithm 1 manager) over a cluster
// backend that owns the plant, the clock and the transport.
type System struct {
	cfg     Config
	backend backend.Backend
	learner *power.Learner
	builder *manager.Builder
	mgr     *manager.Manager

	reg   *obs.Registry
	trace *obs.CycleRecorder

	series    *metrics.Series
	events    trace.EventLog
	lastState power.State
	haveState bool
	recording bool
	ran       bool
	senseTime time.Duration
	faultRng  func() float64 // nil when no faults
	dropped   int

	fb       *feedback.Controller // non-nil when Controller == "feedback"
	twolevel *nodemgr.Controller  // non-nil when Controller == "twolevel"
}

// backendConfig extracts the plant half of the configuration.
func (c Config) backendConfig() backend.Config {
	return backend.Config{
		Seed:                  c.Seed,
		Nodes:                 c.Nodes,
		Privileged:            c.Privileged,
		CandidateCount:        c.CandidateCount,
		Model:                 c.Model,
		ModelFor:              c.ModelFor,
		ModelError:            c.ModelError,
		PowerJitter:           c.PowerJitter,
		Class:                 c.Class,
		Benchmarks:            c.Benchmarks,
		ProcsPerNode:          c.ProcsPerNode,
		PrivilegedJobFraction: c.PrivilegedJobFraction,
		WorkloadTrace:         c.WorkloadTrace,
		RecordTrace:           c.RecordTrace,
		JobRampUp:             c.JobRampUp,
		JobJitter:             c.JobJitter,
		IdleLoad:              c.IdleLoad,
		Placement:             c.Placement,
		Cabinets:              c.Cabinets,
		CabinetBreaker:        c.CabinetBreaker,
		PMax:                  c.PMax,
		MeterOverhead:         c.MeterOverhead,
		MeterNoise:            c.MeterNoise,
		ThermalEnabled:        c.ThermalEnabled,
		Thermal:               c.Thermal,
		ControlPeriod:         c.ControlPeriod,
		TickPeriod:            c.TickPeriod,
	}
}

// New constructs a System over the configured backend.
func New(cfg Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	b, err := backend.New(cfg.Backend, cfg.backendConfig())
	if err != nil {
		return nil, err
	}
	fail := func(err error) (*System, error) {
		_ = b.Close()
		return nil, err
	}

	pol, err := policy.New(cfg.PolicyName, b.Stream("policy"))
	if err != nil {
		return fail(err)
	}
	// One registry and one staged-cycle recorder span the whole run: the
	// manager's classify/select/actuate stages, core's sense stage and
	// the backend's settle stage all land on the same timeline.
	reg := obs.NewRegistry()
	rec := obs.NewCycleRecorder(cfg.CycleHistory, reg)
	b.Observe(rec)
	mgr, err := manager.New(manager.Config{Tg: cfg.Tg, Policy: pol, Obs: reg, Trace: rec})
	if err != nil {
		return fail(err)
	}
	learner, err := power.NewLearner(cfg.PMax, cfg.Training, cfg.AdjustEvery)
	if err != nil {
		return fail(err)
	}
	if err := learner.SetMargins(cfg.MarginL, cfg.MarginH); err != nil {
		return fail(err)
	}

	s := &System{
		cfg:     cfg,
		backend: b,
		learner: learner,
		builder: newBuilder(cfg),
		mgr:     mgr,
		reg:     reg,
		trace:   rec,
		series:  &metrics.Series{},
	}
	if cfg.AgentDropRate > 0 {
		rng := b.Stream("faults")
		s.faultRng = rng.Float64
	}
	if cfg.Controller == "feedback" {
		fb, err := feedback.New(feedback.Default(cfg.PMax))
		if err != nil {
			return fail(err)
		}
		s.fb = fb
	}
	if cfg.Controller == "twolevel" {
		div := nodemgr.Uniform
		if cfg.TwoLevelDivision == "proportional" {
			div = nodemgr.Proportional
		}
		tl, err := nodemgr.New(nodemgr.Config{Budget: cfg.PMax, Division: div, Model: cfg.Model})
		if err != nil {
			return fail(err)
		}
		s.twolevel = tl
	}

	if err := b.Start(s.control); err != nil {
		return fail(err)
	}
	return s, nil
}

// newBuilder creates the sensing snapshot builder, registering per-node
// profile models on heterogeneous clusters.
func newBuilder(cfg Config) *manager.Builder {
	b := manager.NewBuilder(cfg.Model)
	if cfg.ModelFor != nil {
		for i := 0; i < cfg.Nodes; i++ {
			b.SetNodeModel(node.ID(i), cfg.ModelFor(i))
		}
	}
	return b
}

// control runs one manager cycle.
func (s *System) control(now time.Duration) {
	p := s.backend.ReadMeter()
	thr := s.learner.Observe(now, p)
	if s.recording {
		_ = s.series.Add(now, p)
	}

	st := thr.Classify(p)
	if s.recording && (!s.haveState || st != s.lastState) {
		s.events.Add(trace.Event{
			TimeSec: now.Seconds(),
			Kind:    "state",
			State:   st.String(),
			PowerW:  float64(p),
		})
	}
	s.lastState, s.haveState = st, true

	t0 := time.Now()
	readings := s.backend.Sense(now)
	if s.faultRng != nil {
		kept := readings[:0]
		for _, r := range readings {
			if s.faultRng() < s.cfg.AgentDropRate {
				s.dropped++
				continue
			}
			kept = append(kept, r)
		}
		readings = kept
	}
	snap := s.builder.Build(p, thr.PL, readings)
	dSense := time.Since(t0)
	s.senseTime += dSense
	s.trace.Stage(obs.StageSense, dSense, fmt.Sprintf("readings=%d", len(readings)))

	// During the training period the system runs uncapped (§V.C): sense
	// to keep history warm, but do not actuate.
	if !s.learner.Trained() {
		return
	}
	if s.fb != nil {
		// The feedback baseline regulates to the same P_L Algorithm 1
		// would hold, for a fair comparison.
		s.fb.SetSetpoint(thr.PL)
		s.fb.Cycle(p, snap, s.backend)
		return
	}
	if s.twolevel != nil {
		// The two-level baseline divides the same P_L into per-node
		// budgets enforced locally.
		s.twolevel.SetBudget(thr.PL)
		s.twolevel.Cycle(readings, s.backend)
		return
	}
	// The "none" policy is the fully uncapped baseline — Algorithm 1's
	// red state would floor the candidates regardless of policy, so the
	// baseline skips the manager entirely.
	if s.cfg.PolicyName == "none" {
		return
	}
	if _, _, err := s.mgr.Cycle(p, thr, snap, s.backend); err != nil {
		// Threshold validation cannot fail here by construction; a
		// failure would indicate a learner bug worth surfacing loudly.
		panic(err)
	}
}

// Result carries everything a run produced.
type Result struct {
	// Series is the power signal over the evaluation window (training
	// excluded).
	Series *metrics.Series
	// Jobs are the jobs that finished inside the evaluation window.
	Jobs []*workload.Job
	// Summary holds the paper's metrics computed against PMax.
	Summary metrics.Summary
	// ManagerStats are the control-loop counters.
	ManagerStats manager.Stats
	// Thresholds are the final learned thresholds; TrainingPeak is the
	// peak observed across the whole run.
	Thresholds   power.Thresholds
	TrainingPeak units.Watts
	// SenseTime is host CPU-wall time spent collecting and building
	// snapshots (Figure 5's management cost, in-process variant).
	SenseTime time.Duration
	// DroppedReadings counts fault-injected sample losses.
	DroppedReadings int
	// TheoreticalPeak is P_thy for this cluster.
	TheoreticalPeak units.Watts
	// Thermal is the accumulated thermal outcome; nil unless
	// ThermalEnabled.
	Thermal *thermal.Summary
	// FeedbackStats are the baseline controller's counters; nil unless
	// Controller == "feedback".
	FeedbackStats *feedback.Stats
	// TwoLevelStats are the two-level baseline's counters; nil unless
	// Controller == "twolevel".
	TwoLevelStats *nodemgr.Stats
	// Trace is the recorded workload trace; nil unless RecordTrace.
	Trace *replay.Trace
	// Cabinets is the power-distribution outcome; nil unless Cabinets
	// was configured.
	Cabinets *pdist.Summary
	// Events logs the control loop's state transitions over the
	// evaluation window.
	Events *trace.EventLog
	// CycleSpans are the retained staged cycle timelines (sense →
	// classify → select → actuate → settle), newest last. Both backends
	// emit the same stage sequence for the same seed; durations are host
	// time and differ by transport.
	CycleSpans []obs.CycleSpan
}

// Run executes the configured training period followed by an evaluation
// window of the given duration, and returns the evaluation results. Run
// may be called once per System.
func (s *System) Run(eval time.Duration) (*Result, error) {
	if eval <= 0 {
		return nil, fmt.Errorf("core: evaluation duration must be positive")
	}
	if s.ran {
		return nil, fmt.Errorf("core: Run may only be called once")
	}
	s.ran = true
	if s.cfg.Training > 0 {
		if err := s.backend.RunUntil(s.cfg.Training); err != nil {
			return nil, err
		}
	}
	trainEnd := s.backend.Now()
	s.recording = true
	// The thermal and cabinet summaries cover the measured window only;
	// the (identical, uncapped) training period would dilute them.
	s.backend.BeginMeasurement()
	if err := s.backend.RunUntil(trainEnd + eval); err != nil {
		return nil, err
	}

	info := s.backend.Info()
	var jobs []*workload.Job
	for _, j := range info.FinishedJobs {
		if j.End() >= trainEnd {
			jobs = append(jobs, j)
		}
	}
	return &Result{
		Series:          s.series,
		Jobs:            jobs,
		Summary:         metrics.Summarise(s.series, s.cfg.PMax, jobs),
		ManagerStats:    s.mgr.Stats(),
		Thresholds:      s.learner.Thresholds(),
		TrainingPeak:    s.learner.LifetimePeak(),
		SenseTime:       s.senseTime,
		DroppedReadings: s.dropped,
		TheoreticalPeak: info.TheoreticalPeak,
		Thermal:         info.Thermal,
		FeedbackStats:   feedbackStats(s.fb),
		TwoLevelStats:   twoLevelStats(s.twolevel),
		Trace:           info.Trace,
		Cabinets:        info.Cabinets,
		Events:          &s.events,
		CycleSpans:      s.trace.Spans(0),
	}, nil
}

func feedbackStats(fb *feedback.Controller) *feedback.Stats {
	if fb == nil {
		return nil
	}
	st := fb.Stats()
	return &st
}

func twoLevelStats(tl *nodemgr.Controller) *nodemgr.Stats {
	if tl == nil {
		return nil
	}
	st := tl.Stats()
	return &st
}

// Backend exposes the cluster backend. Tests, examples and benchmarks
// that need sim-only internals (the cluster, the engine) type-assert it
// to *backend.Sim.
func (s *System) Backend() backend.Backend { return s.backend }

// Traits reports the plant's static aggregate properties (P_thy, floor
// power, candidate count) without reaching through the backend seam.
func (s *System) Traits() backend.Traits { return s.backend.Traits() }

// Manager exposes the power manager.
func (s *System) Manager() *manager.Manager { return s.mgr }

// Obs exposes the run's instrument registry (counters, gauges and
// cycle-stage histograms shared with the manager).
func (s *System) Obs() *obs.Registry { return s.reg }

// CycleTrace exposes the staged cycle recorder.
func (s *System) CycleTrace() *obs.CycleRecorder { return s.trace }

// Learner exposes the threshold learner.
func (s *System) Learner() *power.Learner { return s.learner }

// Close releases backend resources — a no-op on the sim backend, daemon
// shutdown (agents, manager, fault network) on the daemon backend. Safe
// to call more than once.
func (s *System) Close() error { return s.backend.Close() }
