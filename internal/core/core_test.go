package core

import (
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/backend"
	"repro/internal/cluster"
	"repro/internal/units"
	"repro/internal/workload"
)

func quickCfg(pol string, seed uint64) Config {
	cfg := DefaultConfig()
	cfg.Seed = seed
	cfg.Class = workload.ClassC
	cfg.PolicyName = pol
	cfg.Training = 30 * time.Minute
	return cfg
}

// simCluster reaches through the backend seam to the simulated cluster;
// only valid on the (default) sim backend.
func simCluster(t *testing.T, sys *System) *cluster.Cluster {
	t.Helper()
	sb, ok := sys.Backend().(*backend.Sim)
	if !ok {
		t.Fatalf("backend is %T, want *backend.Sim", sys.Backend())
	}
	return sb.Cluster()
}

func TestConfigValidation(t *testing.T) {
	cases := []func(*Config){
		func(c *Config) { c.Nodes = 0 },
		func(c *Config) { c.PMax = 0 },
		func(c *Config) { c.ControlPeriod = 0 },
		func(c *Config) { c.TickPeriod = -1 },
		func(c *Config) { c.Tg = 0 },
		func(c *Config) { c.AdjustEvery = 0 },
		func(c *Config) { c.AgentDropRate = 1.0 },
		func(c *Config) { c.Model.CPU.Freqs = nil },
	}
	for i, mutate := range cases {
		cfg := DefaultConfig()
		mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	if _, err := New(Config{}); err == nil {
		t.Error("zero config accepted")
	}
}

func TestUnknownPolicyRejected(t *testing.T) {
	cfg := quickCfg("bogus", 1)
	if _, err := New(cfg); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestUnknownBenchmarkRejected(t *testing.T) {
	cfg := quickCfg("mpc", 1)
	cfg.Benchmarks = []string{"FT"}
	if _, err := New(cfg); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestRunValidation(t *testing.T) {
	sys, err := New(quickCfg("mpc", 1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(0); err == nil {
		t.Error("zero duration accepted")
	}
	if _, err := sys.Run(time.Minute); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(time.Minute); err == nil {
		t.Error("second Run accepted")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() *Result {
		sys, err := New(quickCfg("mpc", 7))
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Run(time.Hour)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Summary.PMax != b.Summary.PMax || a.Summary.Energy != b.Summary.Energy {
		t.Errorf("same seed produced different runs: %+v vs %+v", a.Summary, b.Summary)
	}
	if a.Summary.JobsDone != b.Summary.JobsDone {
		t.Error("job counts differ across identical runs")
	}
	if len(a.Jobs) != len(b.Jobs) {
		t.Error("job lists differ")
	}
}

func TestSeedsDiffer(t *testing.T) {
	res := map[units.Watts]bool{}
	for seed := uint64(1); seed <= 3; seed++ {
		sys, err := New(quickCfg("none", seed))
		if err != nil {
			t.Fatal(err)
		}
		r, err := sys.Run(time.Hour)
		if err != nil {
			t.Fatal(err)
		}
		res[r.Summary.PMax] = true
	}
	if len(res) < 2 {
		t.Error("different seeds produced identical peaks (suspicious)")
	}
}

func TestUncappedBaselineLossless(t *testing.T) {
	sys, err := New(quickCfg("none", 1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Summary.Performance-1) > 1e-6 {
		t.Errorf("uncapped performance = %v, want 1.0", res.Summary.Performance)
	}
	if res.Summary.CPLJFrac < 0.999 {
		t.Errorf("uncapped CPLJ = %v, want 1.0", res.Summary.CPLJFrac)
	}
	if res.ManagerStats.DegradeOps != 0 {
		t.Error("uncapped baseline issued degrade commands")
	}
}

func TestCappingReducesPeak(t *testing.T) {
	runP := func(pol string) *Result {
		sys, err := New(quickCfg(pol, 1))
		if err != nil {
			t.Fatal(err)
		}
		r, err := sys.Run(2 * time.Hour)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	base := runP("none")
	capped := runP("mpc")
	if capped.Summary.PMax >= base.Summary.PMax {
		t.Errorf("capped peak %v not below uncapped %v", capped.Summary.PMax, base.Summary.PMax)
	}
	if capped.Summary.Performance < 0.9 {
		t.Errorf("capping destroyed performance: %v", capped.Summary.Performance)
	}
	if capped.ManagerStats.DegradeOps == 0 {
		t.Error("capped run never throttled (nothing was tested)")
	}
}

func TestTrainingWindowExcludedFromResults(t *testing.T) {
	cfg := quickCfg("none", 1)
	cfg.Training = time.Hour
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(30 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	// Series must start at/after the training boundary.
	if res.Series.Len() == 0 {
		t.Fatal("no samples recorded")
	}
	t0, _ := res.Series.At(0)
	if t0 < time.Hour {
		t.Errorf("series starts at %v, inside the training window", t0)
	}
	for _, j := range res.Jobs {
		if j.End() < time.Hour {
			t.Errorf("job finished at %v included in evaluation window", j.End())
		}
	}
	// The training peak must have been observed.
	if res.TrainingPeak <= 0 {
		t.Error("no training peak recorded")
	}
}

func TestThresholdLearningPaperRule(t *testing.T) {
	cfg := quickCfg("mpc", 2)
	cfg.Training = time.Hour
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	peak := float64(res.TrainingPeak)
	pl, ph := float64(res.Thresholds.PL), float64(res.Thresholds.PH)
	// Thresholds derive from the lifetime peak with the 84%/93% rule;
	// allow slack for a peak observed after the last adjustment.
	if r := ph / peak; r < 0.90 || r > 0.94 {
		t.Errorf("PH/peak = %.3f, want ≈0.93", r)
	}
	if r := pl / peak; r < 0.81 || r > 0.85 {
		t.Errorf("PL/peak = %.3f, want ≈0.84", r)
	}
}

func TestCandidateCountRestrictsThrottling(t *testing.T) {
	cfg := quickCfg("mpc", 1)
	cfg.CandidateCount = 8
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(simCluster(t, sys).Candidates()); got != 8 {
		t.Fatalf("candidates = %d", got)
	}
	if _, err := sys.Run(time.Hour); err != nil {
		t.Fatal(err)
	}
	// Only candidate nodes may end below the top level.
	for _, n := range simCluster(t, sys).Nodes() {
		if !n.Controllable() && !n.AtHighest() {
			t.Errorf("non-candidate node %d at level %d", n.ID(), n.Level())
		}
	}
}

func TestPrivilegedNodesNeverThrottled(t *testing.T) {
	cfg := quickCfg("all", 1) // most aggressive policy
	cfg.Privileged = 32
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(time.Hour); err != nil {
		t.Fatal(err)
	}
	for _, n := range simCluster(t, sys).Nodes() {
		if !n.Controllable() && !n.AtHighest() {
			t.Errorf("privileged node %d was throttled to level %d", n.ID(), n.Level())
		}
	}
}

func TestAgentDropFaults(t *testing.T) {
	cfg := quickCfg("mpc", 1)
	cfg.AgentDropRate = 0.2
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if res.DroppedReadings == 0 {
		t.Error("no readings dropped at 20% fault rate")
	}
	// Capping still functions.
	if res.ManagerStats.DegradeOps == 0 {
		t.Error("capping inert under faults")
	}
}

func TestTheoreticalPeakAndNecessity(t *testing.T) {
	sys, err := New(quickCfg("none", 1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(30 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	// Necessity assumption: provision < theoretical peak.
	if units.Watts(31000) >= res.TheoreticalPeak {
		t.Errorf("P_thy = %v too low", res.TheoreticalPeak)
	}
	// Observed peak below theoretical peak.
	if res.Summary.PMax >= res.TheoreticalPeak {
		t.Error("observed peak at/above theoretical peak")
	}
}

func TestSenseTimeAccounted(t *testing.T) {
	sys, err := New(quickCfg("mpc", 1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(30 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if res.SenseTime <= 0 {
		t.Error("sensing time not accounted")
	}
}

func TestFeedbackControllerPath(t *testing.T) {
	cfg := quickCfg("mpc", 1) // PolicyName ignored with feedback
	cfg.Controller = "feedback"
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if res.FeedbackStats == nil {
		t.Fatal("no feedback stats")
	}
	if res.FeedbackStats.Cycles == 0 || res.FeedbackStats.Moves == 0 {
		t.Errorf("feedback inert: %+v", res.FeedbackStats)
	}
	if res.ManagerStats.DegradeOps != 0 {
		t.Error("Algorithm 1 actuated during a feedback run")
	}
	if res.Summary.Performance < 0.9 {
		t.Errorf("feedback perf = %v", res.Summary.Performance)
	}
	// Unknown controller rejected.
	bad := quickCfg("mpc", 1)
	bad.Controller = "pid-magic"
	if _, err := New(bad); err == nil {
		t.Error("unknown controller accepted")
	}
}

func TestThermalPath(t *testing.T) {
	cfg := quickCfg("mpc", 1)
	cfg.ThermalEnabled = true
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if res.Thermal == nil {
		t.Fatal("thermal summary missing")
	}
	if res.Thermal.PeakC < 25 || res.Thermal.PeakC > 60 {
		t.Errorf("peak temp %.1f implausible", res.Thermal.PeakC)
	}
	if res.Thermal.CoolingEnergy <= 0 {
		t.Error("no cooling energy accounted")
	}
	// Without the flag, no summary.
	sys2, _ := New(quickCfg("mpc", 1))
	res2, _ := sys2.Run(30 * time.Minute)
	if res2.Thermal != nil {
		t.Error("thermal summary present without flag")
	}
}

func TestRecordReplayThroughCore(t *testing.T) {
	rec := quickCfg("none", 5)
	rec.RecordTrace = true
	sys, err := New(rec)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := sys.Run(time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Trace == nil || r1.Trace.Len() == 0 {
		t.Fatal("no trace recorded")
	}

	// Replay under a different seed: workload must be identical, so the
	// uncapped power series peak matches exactly (seed only drives noise
	// streams, which stay seed-5-independent... so compare job mix).
	rep := quickCfg("none", 5)
	rep.WorkloadTrace = r1.Trace
	sys2, err := New(rep)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := sys2.Run(time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Jobs) != len(r2.Jobs) {
		t.Fatalf("job counts differ: %d vs %d", len(r1.Jobs), len(r2.Jobs))
	}
	for i := range r1.Jobs {
		if r1.Jobs[i].Spec().Name != r2.Jobs[i].Spec().Name ||
			r1.Jobs[i].NProcs() != r2.Jobs[i].NProcs() {
			t.Errorf("job %d differs: %s/%d vs %s/%d", i,
				r1.Jobs[i].Spec().Name, r1.Jobs[i].NProcs(),
				r2.Jobs[i].Spec().Name, r2.Jobs[i].NProcs())
		}
	}
}

func TestPrivilegedFractionValidation(t *testing.T) {
	cfg := quickCfg("mpc", 1)
	cfg.PrivilegedJobFraction = 1.5
	if _, err := New(cfg); err == nil {
		t.Error("fraction > 1 accepted")
	}
	cfg.PrivilegedJobFraction = -0.1
	if _, err := New(cfg); err == nil {
		t.Error("negative fraction accepted")
	}
}

func TestPrivilegedJobsNeverSlowed(t *testing.T) {
	cfg := quickCfg("all", 3) // aggressive throttling
	cfg.PrivilegedJobFraction = 0.3
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(2 * time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, j := range res.Jobs {
		if j.Privileged() {
			checked++
			if !j.Lossless(0.001) {
				t.Errorf("privileged job %d (%s) lost performance: ref %v actual %v",
					j.ID(), j.Spec().Name, j.ReferenceDuration(), j.ActualDuration())
			}
		}
	}
	if checked == 0 {
		t.Error("no privileged jobs finished (test vacuous)")
	}
}

func TestCheckAssumptions(t *testing.T) {
	sys, err := New(quickCfg("mpc", 1))
	if err != nil {
		t.Fatal(err)
	}
	as := sys.CheckAssumptions()
	if len(as) != 4 {
		t.Fatalf("assumptions = %d, want 4 (§II.D)", len(as))
	}
	for _, a := range as {
		if !a.Holds {
			t.Errorf("default config violates %s: %s", a.Name, a.Detail)
		}
		if a.Detail == "" {
			t.Errorf("%s missing detail", a.Name)
		}
	}
	out := FormatAssumptions(as)
	for _, want := range []string{"controllability", "observability", "necessity", "operability"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted output missing %s", want)
		}
	}
}

func TestAssumptionViolationsDetected(t *testing.T) {
	// Provision above P_thy violates Necessity.
	cfg := quickCfg("mpc", 1)
	cfg.PMax = units.MW(1)
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a := findAssumption(t, sys.CheckAssumptions(), "necessity"); a.Holds {
		t.Error("1 MW provision should violate necessity")
	}
	// A tiny provision violates Controllability and Operability.
	cfg2 := quickCfg("mpc", 1)
	cfg2.PMax = units.KW(10)
	sys2, err := New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	as := sys2.CheckAssumptions()
	if a := findAssumption(t, as, "controllability"); a.Holds {
		t.Error("10 kW provision should violate controllability")
	}
	if a := findAssumption(t, as, "operability"); a.Holds {
		t.Error("10 kW provision should violate operability")
	}
	// An all-privileged cluster violates controllability regardless.
	cfg3 := quickCfg("mpc", 1)
	cfg3.Privileged = cfg3.Nodes
	sys3, err := New(cfg3)
	if err != nil {
		t.Fatal(err)
	}
	if a := findAssumption(t, sys3.CheckAssumptions(), "controllability"); a.Holds {
		t.Error("all-privileged cluster should violate controllability")
	}
}

func findAssumption(t *testing.T, as []Assumption, name string) Assumption {
	t.Helper()
	for _, a := range as {
		if a.Name == name {
			return a
		}
	}
	t.Fatalf("assumption %s missing", name)
	return Assumption{}
}

// TestSoak runs a two-virtual-day capped run and checks structural
// invariants throughout: levels inside each node's table, A_degraded
// consistent with node levels at quiescence, monotone series, no red
// entries, and a sane final restore.
func TestSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	cfg := quickCfg("mpc", 11)
	cfg.Training = 2 * time.Hour
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(46 * time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range simCluster(t, sys).Nodes() {
		if n.Level() < 0 || n.Level() >= n.Levels() {
			t.Errorf("node %d at level %d of %d", n.ID(), n.Level(), n.Levels())
		}
	}
	// The series is time-ordered by construction; spot-check monotone
	// timestamps and the sample count (one per control cycle).
	wantSamples := int(46 * time.Hour / cfg.ControlPeriod)
	if got := res.Series.Len(); got < wantSamples-2 || got > wantSamples+2 {
		t.Errorf("series samples = %d, want ≈%d", got, wantSamples)
	}
	var prev time.Duration = -1
	for i := 0; i < res.Series.Len(); i += 1000 {
		ts, p := res.Series.At(i)
		if ts <= prev {
			t.Fatalf("series time went backwards at %d", i)
		}
		if p < 0 || p > res.TheoreticalPeak {
			t.Errorf("sample %d power %v out of physical range", i, p)
		}
		prev = ts
	}
	st := res.ManagerStats
	if st.Cycles < wantSamples-2 {
		t.Errorf("manager cycles = %d", st.Cycles)
	}
	// Degrades and restores must balance to the currently degraded set.
	if st.DegradeOps < st.RestoreOps {
		t.Errorf("restores %d exceed degrades %d", st.RestoreOps, st.DegradeOps)
	}
	if res.Summary.Performance < 0.95 {
		t.Errorf("soak perf = %v", res.Summary.Performance)
	}
	if res.Summary.JobsDone < 500 {
		t.Errorf("only %d jobs finished in 46 virtual hours", res.Summary.JobsDone)
	}
}

func TestUnknownBackendNameRejected(t *testing.T) {
	cfg := quickCfg("mpc", 1)
	cfg.Backend = "carrier-pigeon"
	if _, err := New(cfg); err == nil {
		t.Error("unknown backend accepted")
	}
}

// TestDaemonBackendSmoke runs the full control law over the daemon
// transport and asserts it behaves: thresholds learned, capping active,
// samples and acks actually crossing the wire.
func TestDaemonBackendSmoke(t *testing.T) {
	cfg := quickCfg("mpc", 5)
	cfg.Backend = "daemon"
	cfg.Nodes = 16
	cfg.PMax = units.KW(4)
	cfg.Training = 10 * time.Minute
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sys.Close()
	res, err := sys.Run(20 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	if res.Thresholds.PL <= 0 || res.Thresholds.PH <= res.Thresholds.PL {
		t.Errorf("bad thresholds: %+v", res.Thresholds)
	}
	if res.Summary.JobsDone == 0 {
		t.Error("no jobs finished")
	}
	d, ok := sys.Backend().(*backend.Daemon)
	if !ok {
		t.Fatalf("backend is %T, want *backend.Daemon", sys.Backend())
	}
	st := d.Status()
	wantSamples := int64(cfg.Nodes) * int64((10*time.Minute+20*time.Minute)/cfg.ControlPeriod)
	if st.SamplesReceived != wantSamples {
		t.Errorf("samples received = %d, want %d", st.SamplesReceived, wantSamples)
	}
	if res.ManagerStats.DegradeOps == 0 {
		t.Error("capping inert over the daemon transport")
	} else if st.CommandAcks == 0 {
		t.Error("degrade ops issued but no command acks on the wire")
	}
}
