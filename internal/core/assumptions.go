package core

import (
	"fmt"
	"strings"

	"repro/internal/units"
)

// Assumption is one of the §II.D applicability conditions of the
// architecture.
type Assumption struct {
	Name string
	// Holds reports whether the condition is satisfied by this system.
	Holds bool
	// Detail explains the numbers behind the verdict.
	Detail string
}

// CheckAssumptions evaluates the four underlying assumptions of §II.D
// against the constructed system:
//
//   - Controllability: flooring every candidate (at worst-case load)
//     brings the system under the provision capability;
//   - Observability: the system power can be measured and per-node power
//     estimated (structurally true here: meter + formula (1); reported
//     with the configured estimation error);
//   - Necessity: the provision capability is below the theoretical
//     maximal consumption P_thy;
//   - Operability: the provision is high enough for normal operation —
//     checked structurally as provision above the all-idle floor plus
//     one fully-loaded job's worth of headroom.
//
// Call it after New and before Run; it inspects configuration and the
// backend's static traits only.
func (s *System) CheckAssumptions() []Assumption {
	var out []Assumption
	tr := s.backend.Traits()

	// Controllability.
	out = append(out, Assumption{
		Name:  "controllability",
		Holds: tr.FlooredWorstCase <= s.cfg.PMax,
		Detail: fmt.Sprintf("floored worst case %v vs provision %v (|A_candidate|=%d)",
			tr.FlooredWorstCase, s.cfg.PMax, tr.Candidates),
	})

	// Observability.
	out = append(out, Assumption{
		Name:  "observability",
		Holds: true,
		Detail: fmt.Sprintf("system meter (noise σ %.2f%%) + formula (1) per node (model error ≤ %.1f%%)",
			100*s.cfg.MeterNoise, 100*s.cfg.ModelError),
	})

	// Necessity.
	out = append(out, Assumption{
		Name:   "necessity",
		Holds:  s.cfg.PMax < tr.TheoreticalPeak,
		Detail: fmt.Sprintf("provision %v vs P_thy %v", s.cfg.PMax, tr.TheoreticalPeak),
	})

	// Operability: the floor plus one saturated 128-proc job must fit —
	// otherwise the system throttles permanently rather than
	// "occasionally" (§II.D).
	var oneJob units.Watts
	if tr.Nodes > 0 {
		m := tr.NodeModel
		nodesPerJob := tr.Nodes / 2 // a mid-size job on half the machine
		if nodesPerJob < 1 {
			nodesPerJob = 1
		}
		top := m.Levels() - 1
		oneJob = units.Watts(float64(nodesPerJob) *
			float64(m.Instant(0.9, 0.5, 0.2, top)-m.MinPower()))
	}
	need := tr.FloorPower + oneJob
	out = append(out, Assumption{
		Name:   "operability",
		Holds:  s.cfg.PMax > need,
		Detail: fmt.Sprintf("provision %v vs idle floor %v + half-machine job %v", s.cfg.PMax, tr.FloorPower, oneJob),
	})
	return out
}

// FormatAssumptions renders the checklist compactly.
func FormatAssumptions(as []Assumption) string {
	var sb strings.Builder
	for _, a := range as {
		mark := "ok "
		if !a.Holds {
			mark = "VIOLATED"
		}
		fmt.Fprintf(&sb, "  %-16s %-8s %s\n", a.Name, mark, a.Detail)
	}
	return strings.TrimRight(sb.String(), "\n")
}
