package core_test

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/workload"
)

// Example runs the paper's experiment end to end at a reduced scale: a
// 128-node simulated Tianhe-1A cluster under NPB class C, thresholds
// learned on a 30-minute uncapped training window, then one hour of MPC
// capping. Determinism makes even the learned thresholds reproducible.
func Example() {
	cfg := core.DefaultConfig()
	cfg.Class = workload.ClassC
	cfg.PolicyName = "mpc"
	cfg.Training = 30 * time.Minute
	sys, err := core.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sys.Run(time.Hour)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("thresholds: PL/peak = %.2f, PH/peak = %.2f\n",
		float64(res.Thresholds.PL)/float64(res.TrainingPeak),
		float64(res.Thresholds.PH)/float64(res.TrainingPeak))
	fmt.Printf("red entries: %d\n", res.ManagerStats.RedEntries)
	// Output:
	// thresholds: PL/peak = 0.84, PH/peak = 0.93
	// red entries: 0
}
