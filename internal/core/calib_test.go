package core

import (
	"testing"
	"time"

	"repro/internal/workload"
)

// TestCalibrationReport logs the headline power figures of a short uncapped
// run so parameter drift is visible in -v output. It asserts only broad
// physical plausibility; the tight shape checks live in the experiment
// tests.
func TestCalibrationReport(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration run")
	}
	cfg := DefaultConfig()
	cfg.Class = workload.ClassC
	cfg.PolicyName = "none"
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(30 * time.Minute)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("P_thy   = %v", res.TheoreticalPeak)
	t.Logf("P_max   = %v", res.Summary.PMax)
	t.Logf("P_mean  = %v", res.Summary.PMean)
	t.Logf("ΔP×T(40kW) = %.4f", res.Summary.Overspend)
	t.Logf("jobs done = %d, perf = %.4f, cplj = %.3f", res.Summary.JobsDone, res.Summary.Performance, res.Summary.CPLJFrac)
	t.Logf("thresholds: PL=%v PH=%v", res.Thresholds.PL, res.Thresholds.PH)

	if res.Summary.PMax <= res.Summary.PMean {
		t.Error("peak not above mean")
	}
	if res.Summary.PMax >= res.TheoreticalPeak {
		t.Error("observed peak at/above theoretical peak")
	}
}
