package harness

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/faultnet"
	"repro/internal/power"
)

// chaosThresholds sits inside the band a 64-agent fleet can hold:
// natural uncapped draw ≈ 16.7 kW, floored draw ≈ 10 kW.
var chaosThresholds = power.Thresholds{PL: 12000, PH: 15000}

// runChaos drives the acceptance scenario: 64 agents under 5% sample
// drop, periodic 2-agent partitions, and one slow reader. The safety
// invariant — estimated fleet power settles at/below P_H — must hold,
// and the fault accounting must reflect the injected faults.
func runChaos(t *testing.T, seed int64, rounds int) {
	const agents = 64
	const slowKey = uint64(agents - 1)
	c := Start(t, Options{
		Agents:         agents,
		Seed:           seed,
		Thresholds:     chaosThresholds,
		CommandTimeout: 100 * time.Millisecond,
		AgentProfile:   faultnet.Profile{DropProb: 0.05, FirstWriteClean: true},
	})
	c.AwaitAgents(agents, 20*time.Second)
	// One agent stops draining its command socket for the whole soak.
	c.Net.SetClientProfile(slowKey, faultnet.Profile{
		DropProb: 0.05, FirstWriteClean: true, ReadBytesPerSec: 8,
	})

	// Periodic partitions: each round cuts a deterministic pair of
	// agents off in both directions, holds, then heals.
	for r := 0; r < rounds; r++ {
		a := uint64(2*r) % (agents - 1) // never partition the slow reader
		b := (a + 1) % (agents - 1)
		c.Net.Partition(a, true, true)
		c.Net.Partition(b, true, true)
		time.Sleep(8 * c.Opt.ControlEvery)
		c.Net.Heal(a)
		c.Net.Heal(b)
		time.Sleep(4 * c.Opt.ControlEvery)
	}

	// Safety: the estimated fleet power must settle at/below P_H and
	// hold there for five consecutive control periods despite the
	// ongoing drops and the stalled reader.
	c.AwaitSettledBelow(float64(chaosThresholds.PH), 5, 30*time.Second)

	// The cap must have been enforced by actual throttling, not luck.
	if c.MinLevel() == 9 {
		t.Error("power settled but no node was ever degraded")
	}

	// Liveness: every partitioned agent reconnects or resumes; the
	// manager's fleet view heals to all 64.
	WaitUntil(t, 20*time.Second, func() bool { return c.Status().Agents == agents },
		"fleet never healed to %d agents (have %d)", agents, c.Status().Agents)

	// Accounting: partitions produced stale drops; the slow reader
	// produced command timeouts; injected drop counts are visible on the
	// network side.
	st := c.Status()
	if st.DroppedStale == 0 {
		t.Errorf("partitions ran but DroppedStale = 0: %+v", st)
	}
	if st.CommandErrors == 0 {
		t.Errorf("slow reader ran but CommandErrors = 0: %+v", st)
	}
	ns := c.Net.Stats()
	if ns.Dropped == 0 {
		t.Errorf("5%% drop profile injected nothing: %+v", ns)
	}
	t.Logf("seed %d: status %+v", seed, st)
	t.Logf("seed %d: faults %+v", seed, ns)
}

// TestChaosSoak is the acceptance scenario at two different seeds. It
// must pass deterministically under -race for both.
func TestChaosSoak(t *testing.T) {
	for _, seed := range []int64{1, 2} {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) { runChaos(t, seed, 4) })
	}
}

// TestChaosSoakLong is the extended soak: more partition rounds plus
// corruption, truncation and random mid-write kills layered on top, so
// reconnect churn runs against the full fault matrix. Skipped in -short
// runs; the tier-1 suite runs it.
func TestChaosSoakLong(t *testing.T) {
	if testing.Short() {
		t.Skip("long soak")
	}
	const agents = 64
	c := Start(t, Options{
		Agents:         agents,
		Seed:           3,
		Thresholds:     chaosThresholds,
		CommandTimeout: 100 * time.Millisecond,
		AgentProfile: faultnet.Profile{
			DropProb:        0.08,
			CorruptProb:     0.003,
			TruncateProb:    0.002,
			KillProb:        0.002,
			Jitter:          2 * time.Millisecond,
			FirstWriteClean: true,
		},
	})
	c.AwaitAgents(agents, 20*time.Second)
	c.Net.SetClientProfile(uint64(agents-1), faultnet.Profile{
		DropProb: 0.08, FirstWriteClean: true, ReadBytesPerSec: 8,
	})
	for r := 0; r < 10; r++ {
		a := uint64(3*r) % (agents - 1)
		b := (a + 7) % (agents - 1)
		c.Net.Partition(a, true, true)
		c.Net.Partition(b, false, true) // asymmetric: commands lost, samples flow
		time.Sleep(8 * c.Opt.ControlEvery)
		c.Net.Heal(a)
		c.Net.Heal(b)
		time.Sleep(4 * c.Opt.ControlEvery)
	}
	c.AwaitSettledBelow(float64(chaosThresholds.PH), 5, 30*time.Second)
	WaitUntil(t, 30*time.Second, func() bool { return c.Status().Agents == agents },
		"fleet never healed to %d agents (have %d)", agents, c.Status().Agents)
	st := c.Status()
	ns := c.Net.Stats()
	if ns.Dropped == 0 || ns.Blackhole == 0 || ns.Killed == 0 {
		t.Errorf("fault matrix not exercised: %+v", ns)
	}
	t.Logf("long soak: status %+v", st)
	t.Logf("long soak: faults %+v", ns)
}
