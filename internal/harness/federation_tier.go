package harness

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/budget"
	"repro/internal/faultnet"
	"repro/internal/fedd"
	"repro/internal/power"
	"repro/internal/scenario"
	"repro/internal/units"
)

// Three-tier topology: a facility coordinator over its own fault
// network, a row coordinator per row (Grantor to its cabinets, Governor
// under the facility — fedd in row mode), and a full harness Cluster
// per cabinet. Every edge speaks the same cab_report/cab_budget frames;
// partitioning row r from the facility is FacNet.Partition(r, ...) — the
// row floors itself to its failsafe band after its grace window while
// its cabinets keep receiving (smaller) grants, which is the recursive
// dead-man case the tier seam exists for.

// TierOptions parametrises a three-tier federation.
type TierOptions struct {
	// Rows is the row-coordinator count (default 2); CabinetsPerRow the
	// cabinet clusters under each (default 4); AgentsPerCabinet each
	// cabinet's agent count (default 4).
	Rows             int
	CabinetsPerRow   int
	AgentsPerCabinet int
	// Budget is the facility's global budget; PH its global upper
	// threshold (defaults: a generous megawatt band that never caps).
	Budget units.Watts
	PH     units.Watts
	// Division selects the budget division at both coordinator tiers
	// (default Proportional).
	Division budget.Division
	// FacEvery and RowEvery are the facility and row cycle periods
	// (default 50ms each); StaleAfter the lost-child threshold at both
	// tiers (default 3 cycles of the respective period).
	FacEvery   time.Duration
	RowEvery   time.Duration
	StaleAfter time.Duration
	// RowBreaker caps any single row's grant and RowFloorW is the
	// facility's per-row weighting floor and lost-row reserve; Breaker
	// and FloorW are the same knobs one tier down (row → cabinet).
	RowBreaker units.Watts
	RowFloorW  units.Watts
	Breaker    units.Watts
	FloorW     units.Watts
	// RowBudgetGrace and RowFailsafe arm each row coordinator's
	// dead-man switch under the facility; BudgetGrace and FailsafeBudget
	// arm each cabinet manager's under its row. Zero values take the
	// respective defaults.
	RowBudgetGrace int
	RowFailsafe    power.Thresholds
	BudgetGrace    int
	FailsafeBudget power.Thresholds
	// Seed drives every fault network (offset per row and cabinet).
	Seed int64
	// CabOpts, when non-nil, mutates each cabinet's Options just before
	// its cluster boots.
	CabOpts func(row, cab int, o *Options)
}

func (o *TierOptions) fill() {
	if o.Rows <= 0 {
		o.Rows = 2
	}
	if o.CabinetsPerRow <= 0 {
		o.CabinetsPerRow = 4
	}
	if o.AgentsPerCabinet <= 0 {
		o.AgentsPerCabinet = 4
	}
	if o.Budget <= 0 {
		o.Budget = 1e6
	}
	if o.PH <= 0 {
		o.PH = o.Budget * 11 / 10
	}
	if o.FacEvery <= 0 {
		o.FacEvery = 50 * time.Millisecond
	}
	if o.RowEvery <= 0 {
		o.RowEvery = 50 * time.Millisecond
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// ThreeTier is a running facility → rows → cabinets federation.
type ThreeTier struct {
	Opt      TierOptions
	Facility *fedd.Server
	FacNet   *faultnet.Network
	Rows     []*fedd.Server
	RowNets  []*faultnet.Network
	Cabinets [][]*Cluster

	t  testing.TB
	mu sync.Mutex
	// recs[r][c] is cabinet (r,c)'s Algorithm-1 cycle trace.
	recs [][][]scenario.CycleRecord
}

// StartThreeTier boots the full tree, stabilising tier by tier:
// facility first, then each row coordinator (waiting for its first
// facility grant), then each row's cabinets (waiting for agents and the
// first row grant). Cleanup runs leaf-first.
func StartThreeTier(t testing.TB, opt TierOptions) *ThreeTier {
	t.Helper()
	opt.fill()

	facNet := faultnet.New(opt.Seed + 8888)
	fac, err := fedd.New(fedd.Config{
		Listener:     facNet.Listener(),
		Budget:       opt.Budget,
		PH:           opt.PH,
		Division:     opt.Division,
		ControlEvery: opt.FacEvery,
		StaleAfter:   opt.StaleAfter,
		Breaker:      opt.RowBreaker,
		FloorW:       opt.RowFloorW,
	})
	if err != nil {
		facNet.Close()
		t.Fatalf("harness: facility fedd.New: %v", err)
	}
	if err := fac.Start(); err != nil {
		facNet.Close()
		t.Fatalf("harness: facility fedd.Start: %v", err)
	}
	tt := &ThreeTier{
		Opt: opt, Facility: fac, FacNet: facNet,
		t:    t,
		recs: make([][][]scenario.CycleRecord, opt.Rows),
	}
	t.Cleanup(func() {
		fac.Stop()
		facNet.Close()
	})

	rowBudget := opt.Budget / units.Watts(opt.Rows)
	for r := 0; r < opt.Rows; r++ {
		r := r
		tt.recs[r] = make([][]scenario.CycleRecord, opt.CabinetsPerRow)
		rowNet := faultnet.New(opt.Seed + 8800 + int64(r))
		row, err := fedd.New(fedd.Config{
			Listener: rowNet.Listener(),
			// The static band is only the row's pre-grant and implicit
			// failsafe default; the facility's grants replace it within a
			// cycle of subscription.
			Budget:       rowBudget,
			PH:           rowBudget * (opt.PH / opt.Budget),
			Division:     opt.Division,
			ControlEvery: opt.RowEvery,
			StaleAfter:   opt.StaleAfter,
			Breaker:      opt.Breaker,
			FloorW:       opt.FloorW,
			ParentDial: func() (net.Conn, error) {
				return facNet.Dial(context.Background(), uint64(r))
			},
			Row:            r,
			BudgetGrace:    opt.RowBudgetGrace,
			FailsafeBudget: opt.RowFailsafe,
		})
		if err != nil {
			t.Fatalf("harness: row %d fedd.New: %v", r, err)
		}
		if err := row.Start(); err != nil {
			t.Fatalf("harness: row %d fedd.Start: %v", r, err)
		}
		tt.Rows = append(tt.Rows, row)
		tt.RowNets = append(tt.RowNets, rowNet)
		t.Cleanup(func() {
			row.Stop()
			rowNet.Close()
		})
		WaitUntil(t, 30*time.Second, func() bool {
			return row.Governed()
		}, "row %d never received a facility grant", r)

		var cabs []*Cluster
		for cab := 0; cab < opt.CabinetsPerRow; cab++ {
			cab := cab
			o := Options{
				Agents:         opt.AgentsPerCabinet,
				Seed:           opt.Seed + int64(r)*10000 + int64(cab)*1000,
				Cabinet:        cab,
				BudgetGrace:    opt.BudgetGrace,
				FailsafeBudget: opt.FailsafeBudget,
				CoordinatorDial: func() (net.Conn, error) {
					return rowNet.Dial(context.Background(), uint64(cab))
				},
				RecordCycle: func(rec scenario.CycleRecord) {
					tt.mu.Lock()
					tt.recs[r][cab] = append(tt.recs[r][cab], rec)
					tt.mu.Unlock()
				},
			}
			if opt.CabOpts != nil {
				opt.CabOpts(r, cab, &o)
			}
			c := Start(t, o)
			cabs = append(cabs, c)
			// Same sequential stabilisation as the two-tier harness: each
			// cluster's goroutine-leak baseline is snapshotted at Start.
			c.AwaitAgents(o.Agents, 30*time.Second)
			WaitUntil(t, 30*time.Second, func() bool {
				return c.Status().Governed
			}, "row %d cabinet %d never went governed", r, cab)
		}
		tt.Cabinets = append(tt.Cabinets, cabs)
	}
	return tt
}

// Records returns a copy of cabinet (row, cab)'s Algorithm-1 cycle
// trace so far.
func (tt *ThreeTier) Records(row, cab int) []scenario.CycleRecord {
	tt.mu.Lock()
	defer tt.mu.Unlock()
	out := make([]scenario.CycleRecord, len(tt.recs[row][cab]))
	copy(out, tt.recs[row][cab])
	return out
}

// AwaitGoverned waits until every tier is granted through: each cabinet
// manager governed by its row, each row governed by the facility, and
// the facility seeing every row live.
func (tt *ThreeTier) AwaitGoverned(timeout time.Duration) {
	tt.t.Helper()
	WaitUntil(tt.t, timeout, func() bool {
		for _, row := range tt.Rows {
			if !row.Governed() {
				return false
			}
		}
		for _, cabs := range tt.Cabinets {
			for _, c := range cabs {
				if !c.Status().Governed {
					return false
				}
			}
		}
		live := 0
		for _, cs := range tt.Facility.CabinetStates() {
			if cs.Live {
				live++
			}
		}
		return live == tt.Opt.Rows
	}, "three-tier federation never fully governed (%d rows)", tt.Opt.Rows)
}

// PartitionRow blackholes row r's facility link in both directions —
// the row-coordinator-loss case: the facility re-divides around the
// row, and the row floors itself after its grace window while its
// cabinets keep being granted slices of the failsafe band.
func (tt *ThreeTier) PartitionRow(r int) {
	tt.FacNet.Partition(uint64(r), true, true)
}

// HealRow lifts the partition; the row's next report or redial
// resubscribes it and the facility's next cycle re-grants.
func (tt *ThreeTier) HealRow(r int) {
	tt.FacNet.Heal(uint64(r))
}
