//go:build race

package harness

// RaceEnabled reports whether the race detector is compiled in. The
// 1024-agent scale measurements skip themselves under -race: the
// detector's per-access overhead turns timing measurements into noise
// (the 512-agent smoke is the -race scale test).
const RaceEnabled = true
