package harness

import (
	"path/filepath"
	"testing"
	"time"

	"repro/internal/fedd"
	"repro/internal/power"
	"repro/internal/replica"
	"repro/internal/scenario"
)

// TestFederationCoordinatorTakeoverNoFloors is the coordinator HA drill:
// two governed cabinets capping mid-spike under a leased coordinator
// with a warm standby replicating its grant journal; the leader is
// killed outright. The standby must promote a replacement — seeded from
// the replicated journal, at a fenced higher epoch — fast enough that no
// cabinet's BudgetGrace window expires: zero failsafe floors across the
// whole federation, asserted from each cabinet's instrument registry.
func TestFederationCoordinatorTakeoverNoFloors(t *testing.T) {
	const (
		cabinets = 2
		agents   = 4
		budget   = 1800 // fair grant ≈0.9 kW: between floored 0.63 and natural 1.05
		ph       = 2000
		// 40 control periods × 50ms = a 2s cabinet grace window; the
		// takeover (≈4 × 15ms lease misses + promote + redial) must land
		// far inside it.
		grace = 40
	)
	lease := &replica.Lease{
		Path:  filepath.Join(t.TempDir(), "coord-lease.json"),
		Every: 15 * time.Millisecond,
	}
	f := StartFederation(t, FedOptions{
		Cabinets:         cabinets,
		AgentsPerCabinet: agents,
		Budget:           budget,
		PH:               ph,
		// Liveness is report freshness: the promoted coordinator seeds the
		// dead leader's grant state, so cabinets redialing within this
		// window never lose their reserved share.
		StaleAfter:     2 * time.Second,
		BudgetGrace:    grace,
		FailsafeBudget: power.Thresholds{PL: 100, PH: 120},
		CoordOpts: func(cfg *fedd.Config) {
			cfg.Lease = lease
			cfg.LeaseHolder = "coord-1"
			cfg.Epoch = 1
			cfg.CommandTimeout = 100 * time.Millisecond
		},
	})
	f.AwaitGoverned(20 * time.Second)
	if got := f.Coord.Epoch(); got != 1 {
		t.Fatalf("primary coordinator epoch = %d, want 1", got)
	}

	// Mid-spike with the standby fully caught up on the grant journal.
	sb := f.StartCoordStandby(4)
	_ = sb
	WaitUntil(t, 20*time.Second, func() bool {
		for _, c := range f.Cabinets {
			if c.Status().DegradeOps < 1 {
				return false
			}
		}
		env := f.Coord.StatusEnvelope()
		return env.Stats.ReplicaConns >= 1 && env.Stats.JournalAppends >= 1 &&
			env.Stats.ReplicaLagEntries <= 1
	}, "coordinator standby never caught up while the fleet capped")

	preGrants := make([]int, cabinets)
	for i, c := range f.Cabinets {
		preGrants[i] = c.Status().BudgetGrants
	}

	// Kill the leader. The lease goes stale, the standby promotes over
	// its replicated journal copy, and every cabinet redials the fresh
	// listener under its capped backoff.
	f.StopCoordinator()
	takeover := f.AwaitCoordTakeover(sb, time.Duration(grace)*50*time.Millisecond)
	if got := takeover.Epoch(); got < 2 {
		t.Fatalf("promoted coordinator epoch = %d, want >= 2", got)
	}

	// Seeded continuity: the promoted coordinator knows both cabinets and
	// their granted bands before either has redialed.
	states := takeover.CabinetStates()
	if len(states) != cabinets {
		t.Fatalf("promoted coordinator seeded %d cabinets, want %d: %+v",
			len(states), cabinets, states)
	}
	for _, cs := range states {
		if !cs.Live || cs.GrantW <= 0 {
			t.Errorf("promoted coordinator lost cabinet %d's reserved share: %+v",
				cs.Cabinet, cs)
		}
	}

	// Fresh grants flow from the new leader before any grace window runs
	// out: every cabinet's grant counter advances past its pre-kill mark.
	WaitUntil(t, time.Duration(grace)*50*time.Millisecond, func() bool {
		for i, c := range f.Cabinets {
			if c.Status().BudgetGrants <= preGrants[i] {
				return false
			}
		}
		return true
	}, "cabinets never received grants from the promoted coordinator")

	// The acceptance bar: zero failsafe floors anywhere, read from each
	// cabinet manager's own instrument registry — the takeover was
	// invisible to the governed tier.
	for i, c := range f.Cabinets {
		if v, ok := c.Server.Obs().Value("budget_floors"); !ok || v != 0 {
			t.Errorf("cabinet %d floored during the takeover (budget_floors=%v)", i, v)
		}
		st := c.Status()
		if !st.Governed {
			t.Errorf("cabinet %d not governed after the takeover: %+v", i, st)
		}
	}

	// And the fleet still enforces a coherent division of the budget.
	WaitUntil(t, 15*time.Second, func() bool {
		sum := 0.0
		for _, cs := range f.Coord.CabinetStates() {
			if !cs.Live || cs.GrantW <= 0 {
				return false
			}
			sum += cs.GrantW
		}
		return sum <= budget*1.0001
	}, "promoted coordinator never settled a full division: %+v",
		f.Coord.CabinetStates())
}

// TestFederationCoordinatorColdRestart is the no-standby counterpart:
// the coordinator is killed outright mid-spike and later restarted over
// the same journal path. With nobody granting, every cabinet must run
// out its BudgetGrace window and floor itself to the failsafe band —
// the dead-man works at fleet scale — then rejoin governed once the
// restarted coordinator accepts its redial, with Algorithm 1 holding
// inside each cabinet across the whole outage.
func TestFederationCoordinatorColdRestart(t *testing.T) {
	const (
		cabinets = 2
		agents   = 4
		budget   = 1800
		ph       = 2000
	)
	failsafe := power.Thresholds{PL: 100, PH: 120}
	journal := filepath.Join(t.TempDir(), "coord-journal.jsonl")
	f := StartFederation(t, FedOptions{
		Cabinets:         cabinets,
		AgentsPerCabinet: agents,
		Budget:           budget,
		PH:               ph,
		BudgetGrace:      3,
		FailsafeBudget:   failsafe,
		CoordOpts: func(cfg *fedd.Config) {
			cfg.JournalPath = journal
		},
	})
	f.AwaitGoverned(20 * time.Second)
	WaitUntil(t, 20*time.Second, func() bool {
		for _, c := range f.Cabinets {
			if c.Status().DegradeOps < 1 {
				return false
			}
		}
		return true
	}, "cabinets never started capping under their grants")

	// Kill the coordinator. Grants stop fleet-wide; every cabinet's grace
	// window (3 × 50ms) expires and the dead-man floors it.
	f.StopCoordinator()
	WaitUntil(t, 15*time.Second, func() bool {
		for _, c := range f.Cabinets {
			st := c.Status()
			if st.Governed || st.BudgetFloors < 1 ||
				st.ThresholdPLW != float64(failsafe.PL) {
				return false
			}
		}
		return true
	}, "cabinets never floored to the failsafe band after the kill")

	// Restart over the same journal. The recovered coordinator seeds the
	// pre-crash grant state, cabinets redial under their capped backoff,
	// and each leaves its failsafe band for a fresh grant.
	restarted := f.RestartCoordinator()
	if got := len(restarted.CabinetStates()); got != cabinets {
		t.Errorf("restarted coordinator recovered %d cabinets from its journal, want %d",
			got, cabinets)
	}
	WaitUntil(t, 20*time.Second, func() bool {
		for _, c := range f.Cabinets {
			st := c.Status()
			if !st.Governed || st.ThresholdPLW <= float64(failsafe.PH) {
				return false
			}
		}
		return true
	}, "cabinets never rejoined the restarted coordinator")

	// Restore follows: with the granted band back, nodes leave the floor.
	WaitUntil(t, 30*time.Second, func() bool {
		for _, c := range f.Cabinets {
			if c.MinLevel() < 1 {
				return false
			}
		}
		return true
	}, "cabinets never restored off the failsafe floor")

	for cab := 0; cab < cabinets; cab++ {
		recs := f.Records(cab)
		if len(recs) == 0 {
			t.Fatalf("cabinet %d recorded no cycles", cab)
		}
		if err := scenario.CheckAlgorithmOne(recs, f.Cabinets[cab].Opt.Tg); err != nil {
			t.Errorf("cabinet %d violated Algorithm 1: %v", cab, err)
		}
	}
}
