package harness

import (
	"testing"
	"time"

	"repro/internal/power"
	"repro/internal/scenario"
)

// TestThreeTierRowPartitionMidSpike is the N-tier chaos gate: a facility
// coordinator over two row coordinators with four governed cabinets
// each, all capping under a tight global budget, then row 1's facility
// link is blackholed both ways mid-spike. The facility must mark the row
// lost and re-divide its share among the survivors; the partitioned row
// must floor itself to its failsafe band within its grace window and
// keep granting slices of that band downward, so its cabinets never
// floor; healing must restore the facility grant. Algorithm 1's
// invariants must hold inside every cabinet throughout.
func TestThreeTierRowPartitionMidSpike(t *testing.T) {
	const (
		rows      = 2
		cabsPer   = 4
		agents    = 4
		budget    = 7000 // fair row grant 3500 → 875 W/cabinet: between floored 630 and natural 1050
		ph        = 7700
		rowBrk    = 4200 // survivor row rises to this after the partition
		rowFloorW = 600
	)
	// The row failsafe divides to ≈650 W per cabinet — still above the
	// floored draw, so cabinets under the orphaned row keep a live,
	// enforceable grant the whole way through.
	rowFailsafe := power.Thresholds{PL: 2600, PH: 2700}
	tt := StartThreeTier(t, TierOptions{
		Rows:             rows,
		CabinetsPerRow:   cabsPer,
		AgentsPerCabinet: agents,
		Budget:           budget,
		PH:               ph,
		RowBreaker:       rowBrk,
		RowFloorW:        rowFloorW,
		RowBudgetGrace:   3,
		RowFailsafe:      rowFailsafe,
		BudgetGrace:      3,
	})
	tt.AwaitGoverned(30 * time.Second)

	// Mid-spike: every cabinet's grant is below its natural draw, so all
	// eight must be actively degrading before the fault lands.
	WaitUntil(t, 20*time.Second, func() bool {
		for _, cabs := range tt.Cabinets {
			for _, c := range cabs {
				if c.Status().DegradeOps < 1 {
					return false
				}
			}
		}
		return true
	}, "cabinets never started capping under their grants")

	rowGrant := func(r int) float64 {
		for _, cs := range tt.Facility.CabinetStates() {
			if cs.Cabinet == r {
				return cs.GrantW
			}
		}
		return 0
	}
	preGrant := rowGrant(0)

	// Blackhole row 1 ↔ facility, both directions.
	tt.PartitionRow(1)

	// Row side of the dead-man: facility grants stop, the grace window
	// runs out, and row 1 floors itself onto its failsafe band — visible
	// as a budget_floors strike in its registry and a Governed() drop.
	WaitUntil(t, 15*time.Second, func() bool {
		if tt.Rows[1].Governed() {
			return false
		}
		v, ok := tt.Rows[1].Obs().Value("budget_floors")
		return ok && v >= 1
	}, "partitioned row never floored to its failsafe band")

	// The orphaned row keeps granting: its cabinets' bands shrink to
	// slices of the failsafe budget but stay live grants — no cabinet
	// under row 1 ever fires its own dead-man switch.
	WaitUntil(t, 15*time.Second, func() bool {
		for _, c := range tt.Cabinets[1] {
			st := c.Status()
			if !st.Governed || st.ThresholdPLW > 700 {
				return false
			}
		}
		return true
	}, "row 1 cabinets never settled on failsafe-band slices: %+v",
		tt.Rows[1].CabinetStates())
	for cab, c := range tt.Cabinets[1] {
		if st := c.Status(); st.BudgetFloors != 0 {
			t.Errorf("row 1 cabinet %d fired its own dead-man (%d floors) despite row grants",
				cab, st.BudgetFloors)
		}
	}

	// Facility side: row 1 goes lost and its share (minus the reserved
	// floor) flows to row 0, whose grant rises from ≈3500 toward the row
	// breaker.
	WaitUntil(t, 15*time.Second, func() bool {
		var lost bool
		for _, cs := range tt.Facility.CabinetStates() {
			if cs.Cabinet == 1 {
				lost = !cs.Live
			}
		}
		return lost && rowGrant(0) >= 4000
	}, "facility never re-divided the lost row's share: %+v",
		tt.Facility.CabinetStates())
	t.Logf("row 0 grant before/after partition: %.0f W → %.0f W", preGrant, rowGrant(0))

	// The raise propagates down: row 0's cabinets see their grants rise
	// toward their natural draw.
	WaitUntil(t, 15*time.Second, func() bool {
		for _, c := range tt.Cabinets[0] {
			if c.Status().ThresholdPLW < 950 {
				return false
			}
		}
		return true
	}, "row 0 cabinets never received the re-divided budget: %+v",
		tt.Rows[0].CabinetStates())

	// Heal. The row's next report or redial resubscribes it; the facility
	// re-grants and the row leaves its failsafe band, which propagates to
	// its cabinets.
	tt.HealRow(1)
	WaitUntil(t, 20*time.Second, func() bool {
		return tt.Rows[1].Governed()
	}, "healed row never rejoined governed")
	WaitUntil(t, 20*time.Second, func() bool {
		for _, cs := range tt.Facility.CabinetStates() {
			if cs.Cabinet == 1 {
				return cs.Live
			}
		}
		return false
	}, "facility never saw the healed row live again")
	WaitUntil(t, 20*time.Second, func() bool {
		for _, c := range tt.Cabinets[1] {
			if c.Status().ThresholdPLW <= 700 {
				return false
			}
		}
		return true
	}, "row 1 cabinets never left their failsafe-band slices: %+v",
		tt.Rows[1].CabinetStates())

	// Algorithm 1 must have held inside every cabinet across the entire
	// run — spike, row floor, re-division, heal and restore included.
	for r := 0; r < rows; r++ {
		for cab := 0; cab < cabsPer; cab++ {
			recs := tt.Records(r, cab)
			if len(recs) == 0 {
				t.Fatalf("row %d cabinet %d recorded no cycles", r, cab)
			}
			if err := scenario.CheckAlgorithmOne(recs, tt.Cabinets[r][cab].Opt.Tg); err != nil {
				t.Errorf("row %d cabinet %d violated Algorithm 1: %v", r, cab, err)
			}
		}
	}
}
