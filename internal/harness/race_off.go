//go:build !race

package harness

// RaceEnabled reports whether the race detector is compiled in.
const RaceEnabled = false
