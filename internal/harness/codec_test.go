package harness

import (
	"testing"
	"time"

	"repro/internal/agentd"
	"repro/internal/faultnet"
	"repro/internal/power"
	"repro/internal/wire"
)

// TestMixedCodecFleetUnderCorruption is the mixed-fleet regression soak:
// half the agents negotiate the binary codec, half stay pinned to JSON,
// and every agent's sample stream runs under 20% byte corruption. The
// capping invariant must hold, the fleet must stay (or come back)
// connected, and the corruption must surface as decode_errors — detected
// and skipped frames — never as a silent misparse feeding the control
// loop garbage. Runs under -race in CI.
func TestMixedCodecFleetUnderCorruption(t *testing.T) {
	const agents = 32
	// Scaled from chaosThresholds: a 32-agent fleet draws ~8.4 kW
	// uncapped and ~5 kW floored, so this band forces real throttling.
	thr := power.Thresholds{PL: 6000, PH: 7500}
	c := Start(t, Options{
		Agents:         agents,
		Seed:           11,
		Thresholds:     thr,
		CommandTimeout: 100 * time.Millisecond,
		AgentProfile:   faultnet.Profile{CorruptProb: 0.2, FirstWriteClean: true},
		// Odd agents pin JSON; even agents keep the default and
		// negotiate binary. Both codecs share every connection's read
		// path, so the manager serves the mix with no configuration.
		AgentSetup: func(i int, cfg *agentd.Config) {
			if i%2 == 1 {
				cfg.Codec = wire.CodecJSON
			}
		},
	})
	c.AwaitAgents(agents, 20*time.Second)

	// Safety invariant: estimated fleet power settles at/below P_H and
	// holds for five consecutive control periods, despite a fifth of all
	// sample writes arriving damaged.
	c.AwaitSettledBelow(float64(thr.PH), 5, 30*time.Second)
	if c.MinLevel() == 9 {
		t.Error("power settled but no node was ever degraded")
	}

	// Liveness: corruption costs retransmits and the odd redial (header
	// damage is fatal by design), never the fleet.
	WaitUntil(t, 20*time.Second, func() bool { return c.Status().Agents == agents },
		"fleet never healed to %d agents (have %d)", agents, c.Status().Agents)

	// Detection: the injected corruption must be visible — flipped bytes
	// on the network side, and tolerated decode errors on the manager
	// side. A corrupt frame that neither errored nor dropped the
	// connection would mean the codec misparsed it silently; the wire
	// package's checksum and differential-fuzz tests exist to make that
	// impossible, and this asserts the accounting end to end.
	ns := c.Net.Stats()
	if ns.Corrupted == 0 {
		t.Fatalf("20%% corruption profile injected nothing: %+v", ns)
	}
	WaitUntil(t, 10*time.Second, func() bool { return c.Status().DecodeErrors > 0 },
		"corrupted %d writes but manager counted no decode_errors", ns.Corrupted)

	st := c.Status()
	if st.SamplesReceived == 0 {
		t.Errorf("no samples survived the corruption soak: %+v", st)
	}
	t.Logf("mixed-codec soak: corrupted=%d decode_errors=%d status %+v", ns.Corrupted, st.DecodeErrors, st)
}
