package harness

import (
	"path/filepath"
	"testing"
	"time"

	"repro/internal/power"
	"repro/internal/scenario"
)

// Federation calibration. One cabinet of the synthetic load draws about
// 262 W per agent uncapped and 158 W per agent floored (see
// chaosThresholds), so:
//
//   - 6-agent cabinets: natural ≈ 1.57 kW, floored ≈ 0.95 kW;
//   - 4-agent cabinets: natural ≈ 1.05 kW, floored ≈ 0.63 kW.
//
// Budgets below pick bands where a cabinet's fair grant sits between its
// floored and natural draw, so governed capping is actually exercised.

// TestFederationDividesBudget is the basic two-tier sanity check: every
// cabinet subscribes, goes governed, and runs under a coordinator grant
// whose P_L it enforces; the sum of grants never exceeds the global
// budget.
func TestFederationDividesBudget(t *testing.T) {
	const budget = 1e6
	f := StartFederation(t, FedOptions{
		Cabinets:         2,
		AgentsPerCabinet: 4,
		Budget:           budget,
	})
	f.AwaitGoverned(20 * time.Second)

	// Cabinet-side: the enforced band is the granted one, not the static
	// Options band (which fill() would have left at the 1e6/2e6 default
	// in PL only by coincidence here — so check the grant echo directly).
	WaitUntil(t, 15*time.Second, func() bool {
		states := f.Coord.CabinetStates()
		if len(states) != 2 {
			return false
		}
		sum := 0.0
		for _, cs := range states {
			if !cs.Live || cs.GrantW <= 0 {
				return false
			}
			sum += cs.GrantW
		}
		if sum > budget*1.0001 {
			t.Fatalf("grants exceed global budget: %.0f > %.0f", sum, budget)
		}
		for _, cs := range states {
			st := f.Cabinets[cs.Cabinet].Status()
			if !st.Governed || st.BudgetGrants < 1 {
				return false
			}
			// The cabinet's applied P_L must match some recent grant;
			// with steady demand the grant is stable, so exact-ish.
			if diff := st.ThresholdPLW - cs.GrantW; diff > 1 || diff < -1 {
				return false
			}
		}
		return true
	}, "cabinets never settled under matching coordinator grants: %+v",
		f.Coord.CabinetStates())
}

// TestFederationCabinetPartitionMidSpike is the federation chaos gate:
// three governed cabinets capping under a tight global budget, then one
// cabinet's coordinator link is blackholed both ways mid-spike. The
// partitioned cabinet must floor itself to its failsafe band within the
// budget-grace window (dead-man, no error ever surfaces), the
// coordinator must mark it lost and re-divide its share among the
// survivors (minus the reserved floor), and after healing the cabinet
// must rejoin governed. Algorithm 1's invariants must hold inside every
// cabinet throughout — the checker runs on each cabinet's full cycle
// trace at the end.
func TestFederationCabinetPartitionMidSpike(t *testing.T) {
	const (
		cabinets = 3
		agents   = 6
		budget   = 3900 // fair grant ≈1.3 kW: between floored 0.95 and natural 1.57
		ph       = 4300
		breaker  = 1800
		floorW   = 200
	)
	failsafe := power.Thresholds{PL: 100, PH: 120}
	f := StartFederation(t, FedOptions{
		Cabinets:         cabinets,
		AgentsPerCabinet: agents,
		Budget:           budget,
		PH:               ph,
		Breaker:          breaker,
		FloorW:           floorW,
		BudgetGrace:      3,
		FailsafeBudget:   failsafe,
	})
	f.AwaitGoverned(20 * time.Second)

	// Mid-spike: every cabinet's grant is below its natural draw, so all
	// three must be actively degrading before the fault lands.
	WaitUntil(t, 20*time.Second, func() bool {
		for _, c := range f.Cabinets {
			if c.Status().DegradeOps < 1 {
				return false
			}
		}
		return true
	}, "cabinets never started capping under their grants")

	preGrant := func(cab int) float64 {
		for _, cs := range f.Coord.CabinetStates() {
			if cs.Cabinet == cab {
				return cs.GrantW
			}
		}
		return 0
	}(0)

	// Blackhole cabinet 1 ↔ coordinator, both directions: reports and
	// grants go silent with no error on either side.
	f.PartitionCabinet(1)

	// Cabinet side of the dead-man: grants stop, the grace window runs
	// out, and the cabinet floors itself onto the failsafe band. The
	// failsafe P_H sits below even the floored draw, so the band is
	// permanently red and every node must be driven to level 0.
	WaitUntil(t, 15*time.Second, func() bool {
		st := f.Cabinets[1].Status()
		return !st.Governed && st.BudgetFloors >= 1 &&
			st.ThresholdPLW == float64(failsafe.PL)
	}, "partitioned cabinet never floored to its failsafe band: %+v",
		f.Cabinets[1].Status())
	WaitUntil(t, 15*time.Second, func() bool {
		for _, lv := range f.Cabinets[1].Levels() {
			if lv != 0 {
				return false
			}
		}
		return true
	}, "partitioned cabinet never drove all nodes to the floor: %v",
		f.Cabinets[1].Levels())

	// Coordinator side: cabinet 1 goes lost and its share (minus the
	// reserved floor) is re-divided among the survivors, whose grants
	// rise from ≈(3900/3) toward min(breaker, (3900-200)/2).
	WaitUntil(t, 15*time.Second, func() bool {
		var lost bool
		var g0 float64
		for _, cs := range f.Coord.CabinetStates() {
			switch cs.Cabinet {
			case 0:
				g0 = cs.GrantW
			case 1:
				lost = !cs.Live
			}
		}
		return lost && g0 >= 1500
	}, "coordinator never re-divided the lost cabinet's share: %+v",
		f.Coord.CabinetStates())
	t.Logf("cabinet 0 grant before/after partition: %.0f W → %.0f W",
		preGrant, func() float64 {
			for _, cs := range f.Coord.CabinetStates() {
				if cs.Cabinet == 0 {
					return cs.GrantW
				}
			}
			return 0
		}())

	// Survivors must stay governed throughout — no collateral flooring.
	for _, cab := range []int{0, 2} {
		if st := f.Cabinets[cab].Status(); !st.Governed {
			t.Errorf("survivor cabinet %d lost governance during the partition: %+v", cab, st)
		}
	}

	// Heal. Reports resume on the same connection, the coordinator sees
	// the cabinet live again, re-grants it, and the cabinet leaves its
	// failsafe band for the granted one.
	f.HealCabinet(1)
	WaitUntil(t, 20*time.Second, func() bool {
		st := f.Cabinets[1].Status()
		return st.Governed && st.ThresholdPLW > float64(failsafe.PH)
	}, "healed cabinet never rejoined governed: %+v", f.Cabinets[1].Status())
	WaitUntil(t, 20*time.Second, func() bool {
		for _, cs := range f.Coord.CabinetStates() {
			if cs.Cabinet == 1 {
				return cs.Live
			}
		}
		return false
	}, "coordinator never saw the healed cabinet live again")

	// Steady-green restore must resume off the failsafe floor once the
	// granted band is back (floored draw sits well below the grant).
	WaitUntil(t, 30*time.Second, func() bool {
		return f.Cabinets[1].MinLevel() >= 1
	}, "healed cabinet never restored off the floor: %v", f.Cabinets[1].Levels())

	// The whole federation settles inside the global band.
	streak := 0
	WaitUntil(t, 30*time.Second, func() bool {
		total := 0.0
		for _, c := range f.Cabinets {
			st := c.Status()
			if st.LastPowerW <= 0 {
				streak = 0
				return false
			}
			total += st.LastPowerW
		}
		if total > ph {
			streak = 0
			return false
		}
		streak++
		return streak >= 3
	}, "federation never settled below the global P_H")

	// Algorithm 1 must have held inside every cabinet across the entire
	// run — spike, failsafe red, re-grant and restore included.
	for cab := 0; cab < cabinets; cab++ {
		recs := f.Records(cab)
		if len(recs) == 0 {
			t.Fatalf("cabinet %d recorded no cycles", cab)
		}
		if err := scenario.CheckAlgorithmOne(recs, f.Cabinets[cab].Opt.Tg); err != nil {
			t.Errorf("cabinet %d violated Algorithm 1: %v", cab, err)
		}
	}
}

// TestFederationStandbyTakeoverInvisible is the warm-standby drill at
// federation scale: one cabinet runs leased leadership with a warm
// standby replicating its journal; its primary is killed mid-spike. The
// standby must take over fast enough that the coordinator — whose
// liveness is report freshness, not connection state — NEVER marks the
// cabinet lost, and the promoted manager must redial the coordinator
// (the harness carries the federation options through serverConfig) and
// resume governed capping at a fenced higher epoch.
func TestFederationStandbyTakeoverInvisible(t *testing.T) {
	const (
		cabinets = 2
		agents   = 4
		budget   = 1800 // fair grant ≈0.9 kW: between floored 0.63 and natural 1.05
		ph       = 2000
	)
	lease := filepath.Join(t.TempDir(), "lease.json")
	f := StartFederation(t, FedOptions{
		Cabinets:         cabinets,
		AgentsPerCabinet: agents,
		Budget:           budget,
		PH:               ph,
		// The takeover must complete well inside this window for the
		// coordinator to stay blind to it.
		StaleAfter: 2 * time.Second,
		CabOpts: func(cab int, o *Options) {
			if cab != 1 {
				return
			}
			o.LeasePath = lease
			o.LeaseEvery = 15 * time.Millisecond
			o.Epoch = 1
			o.CommandTimeout = 100 * time.Millisecond
			o.FailsafeAfter = 8 // agents' own dead-man: must never fire
			o.FailsafeLevel = 0
		},
	})
	f.AwaitGoverned(20 * time.Second)

	// Mid-spike on the HA cabinet, with the standby fully caught up.
	c1 := f.Cabinets[1]
	sb := c1.StartStandby(4)
	WaitUntil(t, 20*time.Second, func() bool {
		st := c1.Status()
		return st.ReplicaConns >= 1 && st.DegradeOps >= 1 &&
			st.JournalAppends >= 1 && st.ReplicaLagEntries <= 1
	}, "standby never caught up while capping: %+v", c1.Status())

	// Kill the primary. From here until the promoted manager is governed
	// again, the coordinator must keep reporting cabinet 1 live — the
	// takeover is invisible at the federation tier.
	c1.StopManager()
	cab1Live := func() bool {
		for _, cs := range f.Coord.CabinetStates() {
			if cs.Cabinet == 1 {
				return cs.Live
			}
		}
		return false
	}
	grace := time.Duration(c1.Opt.FailsafeAfter) * c1.Opt.SampleEvery
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		// Continuous watch: the coordinator must never classify cabinet 1
		// lost while the standby takes over. t.Errorf is goroutine-safe;
		// one strike fails the test.
		defer close(done)
		for {
			select {
			case <-stop:
				return
			case <-time.After(5 * time.Millisecond):
				if !cab1Live() {
					t.Errorf("coordinator saw cabinet 1 go lost during takeover: %+v",
						f.Coord.CabinetStates())
					return
				}
			}
		}
	}()
	c1.AwaitTakeover(sb, grace)
	c1.AwaitAgents(agents, 20*time.Second)
	WaitUntil(t, 15*time.Second, func() bool {
		return c1.Status().Governed
	}, "promoted manager never rejoined the federation: %+v", c1.Status())
	close(stop)
	<-done

	// The promoted manager reports at a fenced higher epoch, which the
	// coordinator's cabinet view picks up from its reports.
	WaitUntil(t, 15*time.Second, func() bool {
		for _, cs := range f.Coord.CabinetStates() {
			if cs.Cabinet == 1 {
				return cs.Live && cs.Epoch >= 2
			}
		}
		return false
	}, "coordinator never saw the fenced epoch: %+v", f.Coord.CabinetStates())

	// Continuity, not free-fall: no agent dead-man switch fired across
	// the failover, and the cabinet still enforces a granted band.
	for i, a := range c1.Agents {
		if a.Tripped() || a.FailsafeTrips() > 0 {
			t.Errorf("agent %d tripped its dead-man switch across the failover (trips %d)",
				i, a.FailsafeTrips())
		}
	}
	if st := c1.Status(); st.Epoch < 2 || !st.Leader {
		t.Fatalf("promoted manager not leading at a fenced epoch: %+v", st)
	}
}
