package harness

import (
	"runtime"
	"testing"
	"time"
)

// WaitUntil polls cond every few milliseconds until it holds, failing the
// test with the formatted message if the clock-bounded deadline passes.
// Chaos tests use it instead of bare sleeps so every wait is bounded and
// every failure says what it was waiting for.
func WaitUntil(t testing.TB, timeout time.Duration, cond func() bool, format string, args ...any) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("harness: timed out after %v: "+format, append([]any{timeout}, args...)...)
}

// LeakCheck detects goroutines leaked between two points — typically
// cluster start and post-stop. Reconnect churn is the classic source: an
// agent Run that abandons its reader goroutine leaks one per redial.
type LeakCheck struct{ before int }

// StartLeakCheck snapshots the current goroutine count.
func StartLeakCheck() *LeakCheck {
	// Settle first so goroutines already dying from earlier tests do not
	// inflate the baseline.
	runtime.Gosched()
	return &LeakCheck{before: runtime.NumGoroutine()}
}

// Check fails t if the goroutine count has not returned to the baseline
// within the grace period. Exiting goroutines need a moment to be reaped,
// so it polls rather than sampling once.
func (l *LeakCheck) Check(t testing.TB, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		now := runtime.NumGoroutine()
		if now <= l.before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("harness: goroutine leak: %d before, %d after\n%s", l.before, now, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}
