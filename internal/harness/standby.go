package harness

import (
	"context"
	"fmt"
	"net"
	"time"

	"repro/internal/managerd"
	"repro/internal/replica"
)

// Warm-standby support: StartStandby runs a replica.Standby inside the
// cluster — its follower replicates the primary's journal over the same
// fault network the agents use, and its lease watcher promotes a
// replacement manager when the primary dies. The promoted manager binds a
// fresh faultnet listener, so every agent redial parked by the primary's
// death is accepted by the new leader.

// standbyKeyBase offsets the standby followers' faultnet dial keys far
// above any agent index so fault profiles and link bookkeeping never
// collide with the fleet's.
const standbyKeyBase uint64 = 1 << 30

// StandbyHandle tracks one warm standby started with StartStandby.
type StandbyHandle struct {
	// Standby exposes the replica.Standby (its Obs registry carries the
	// follower and takeover instruments; Store is the journal copy).
	Standby *replica.Standby

	cluster *Cluster
	cancel  context.CancelFunc
	done    chan struct{}
	srvCh   chan *managerd.Server
	errCh   chan error
	srv     *managerd.Server // promoted manager, once collected
}

// StartStandby boots a warm standby: a journal follower over the fault
// network plus a lease watcher that, on leader death (or PromoteStandby),
// starts a replacement manager over the replicated store at a fenced-off
// higher epoch. Requires Options.LeasePath. missBudget ≤ 0 takes the
// replica default. The cluster owns the standby; Stop tears it down.
func (c *Cluster) StartStandby(missBudget int) *StandbyHandle {
	t := c.tb()
	t.Helper()
	if c.Opt.LeasePath == "" {
		t.Fatal("harness: StartStandby needs Options.LeasePath")
	}
	store, err := replica.Open("")
	if err != nil {
		t.Fatalf("harness: standby store: %v", err)
	}
	idx := len(c.standbys)
	key := standbyKeyBase + uint64(idx)
	ctx, cancel := context.WithCancel(context.Background())
	h := &StandbyHandle{
		cluster: c,
		cancel:  cancel,
		done:    make(chan struct{}),
		srvCh:   make(chan *managerd.Server, 1),
		errCh:   make(chan error, 1),
	}
	holder := fmt.Sprintf("standby-%d", idx+1)
	sb, err := replica.NewStandby(replica.StandbyConfig{
		Follower: replica.FollowerConfig{
			Store:   store,
			Backoff: 10 * time.Millisecond,
			Dial: func(dctx context.Context) (net.Conn, error) {
				return c.Net.Dial(dctx, key)
			},
		},
		Lease:      &replica.Lease{Path: c.Opt.LeasePath, Every: c.Opt.LeaseEvery},
		MissBudget: missBudget,
		Holder:     holder,
		OnPromote: func(p replica.Promotion) error {
			cfg := c.Opt.serverConfig(c.Net.Listener())
			cfg.JournalPath = "" // the replicated store IS the journal
			cfg.JournalEvery = 0
			cfg.Journal = p.Store
			cfg.Epoch = p.Epoch
			cfg.LeaseHolder = holder
			cfg.TakeoverMicros = p.Leaderless.Microseconds()
			srv, err := managerd.New(cfg)
			if err != nil {
				return fmt.Errorf("harness: promoted managerd.New: %w", err)
			}
			if err := srv.Start(); err != nil {
				return fmt.Errorf("harness: promoted managerd.Start: %w", err)
			}
			h.srvCh <- srv
			return nil
		},
	})
	if err != nil {
		cancel()
		t.Fatalf("harness: NewStandby: %v", err)
	}
	h.Standby = sb
	go func() {
		defer close(h.done)
		if err := sb.Run(ctx); err != nil {
			h.errCh <- err
		}
	}()
	c.standbys = append(c.standbys, h)
	return h
}

// PromoteStandby forces h to take over now, regardless of lease state —
// the controlled-failover half of the chaos matrix (the old primary, if
// alive, self-fences on the claimed lease or on the first agent hello
// reporting the new epoch).
func (c *Cluster) PromoteStandby(h *StandbyHandle) {
	h.Standby.Promote()
}

// AwaitTakeover blocks until h has promoted a replacement manager (or
// fails the test after timeout), rebinds Cluster.Server to it so Status,
// AwaitAgents and friends speak to the new leader, and returns it. The
// old Server is left to the test (StopManager usually killed it already).
func (c *Cluster) AwaitTakeover(h *StandbyHandle, timeout time.Duration) *managerd.Server {
	t := c.tb()
	t.Helper()
	select {
	case srv := <-h.srvCh:
		h.srv = srv
		c.Server = srv
		return srv
	case err := <-h.errCh:
		t.Fatalf("harness: standby promotion failed: %v", err)
	case <-time.After(timeout):
		t.Fatalf("harness: no takeover within %v (standby lease %s)", timeout, c.Opt.LeasePath)
	}
	return nil
}

// stop tears the standby down: cancel its watcher, wait it out, and stop
// a promoted manager unless AwaitTakeover already handed it to the
// cluster (Cluster.Stop stops c.Server itself).
func (h *StandbyHandle) stop() {
	h.cancel()
	<-h.done
	select {
	case srv := <-h.srvCh:
		h.srv = srv
	default:
	}
	if h.srv != nil && h.srv != h.cluster.Server {
		h.srv.Stop()
	}
}
