// Package harness boots an in-process agent/manager cluster — a real
// managerd.Server plus N real agentd Agents — wired together over
// internal/faultnet's deterministic fault-injecting in-memory transport
// instead of loopback TCP.
//
// It exists so chaos and soak tests of the daemon plane (Figure 1's
// distributed control loop) can inject connection kills, message drops,
// asymmetric partitions and slow readers with replayable randomness, and
// then assert the architecture's invariants:
//
//   - safety: estimated fleet power settles at/below P_H under sustained
//     pressure despite faults (AwaitSettledBelow);
//   - consistency: an agent's applied level survives reconnects — a redial
//     never silently resets a throttle command (agentd keeps node state);
//   - liveness: steady-green restore resumes once a partition heals;
//   - accounting: DroppedStale/CommandErrors track the injected faults.
//
// Every cluster also carries a goroutine-leak check: Start snapshots the
// goroutine count and the test fails if Stop does not return to it.
package harness

import (
	"context"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/agentd"
	"repro/internal/faultnet"
	"repro/internal/managerd"
	"repro/internal/node"
	"repro/internal/policy"
	"repro/internal/power"
	"repro/internal/replica"
	"repro/internal/scenario"
	"repro/internal/wire"
)

// Options parametrises a harness cluster. Zero fields take the defaults
// noted on each; the zero Options value is a small, fast, fault-free
// cluster suitable for converting plain TCP daemon tests.
type Options struct {
	// Agents is the number of agent daemons (default 4).
	Agents int
	// Seed drives the fault network and, offset per agent, the synthetic
	// load patterns (default 1).
	Seed int64

	// ControlEvery is the manager's control period τ (default 50ms).
	ControlEvery time.Duration
	// SampleEvery is the agents' sampling/push interval (default 50ms).
	SampleEvery time.Duration
	// TickEvery is the simulated nodes' load granularity (default 10ms).
	TickEvery time.Duration
	// Tg is the steady-green restore patience in cycles (default 3).
	Tg int
	// Thresholds are the operating thresholds (default a generous
	// megawatt band: the cluster stays green and never throttles).
	Thresholds power.Thresholds
	// Policy selects yellow-state targets (default policy.MPCC{}).
	Policy policy.Policy
	// StaleAfter and CommandTimeout pass through to managerd.Config.
	StaleAfter     time.Duration
	CommandTimeout time.Duration

	// AgentProfile is the fault profile of every agent's outbound path
	// (sample stream) and read throttle; ManagerProfile is the manager's
	// outbound path (command stream). Override one agent with
	// Cluster.Net.SetClientProfile.
	AgentProfile   faultnet.Profile
	ManagerProfile faultnet.Profile

	// InitialBackoff/MaxBackoff tune the agents' reconnect loop
	// (defaults 10ms/80ms, so kills heal within a few control cycles).
	InitialBackoff time.Duration
	MaxBackoff     time.Duration

	// FailsafeAfter/FailsafeLevel arm every agent's dead-man switch (see
	// agentd.Config); zero FailsafeAfter leaves it off.
	FailsafeAfter int
	FailsafeLevel int

	// JournalPath/JournalEvery enable the manager's crash-recovery journal
	// (see managerd.Config); empty JournalPath leaves it off.
	JournalPath  string
	JournalEvery int

	// LeasePath arms leased leadership: the manager claims and renews the
	// lease file every LeaseEvery (default replica.DefaultLeaseEvery) and
	// warm standbys started with Cluster.StartStandby watch it. Epoch is
	// the primary's initial leadership epoch (zero with a lease set derives
	// it from the lease file; see managerd.Config.Epoch).
	LeasePath  string
	LeaseEvery time.Duration
	Epoch      uint64

	// LostAfter, FlapWindow, FlapLimit, Quarantine and HeartbeatEvery pass
	// through to the manager's health state machine and heartbeat loop.
	LostAfter      time.Duration
	FlapWindow     time.Duration
	FlapLimit      int
	Quarantine     time.Duration
	HeartbeatEvery int

	// Shards and FanoutWorkers pass through to the manager's sharded node
	// store and per-cycle worker pool (see managerd.Config); zero keeps
	// the daemon defaults. Scale tests raise both.
	Shards        int
	FanoutWorkers int

	// Learn enables manager-side threshold learning.
	Learn *managerd.LearnConfig

	// MetricsAddr, when non-empty, serves the manager's observability
	// endpoints (GET /metrics, GET /debug/cycles) on this address.
	MetricsAddr string

	// Model is the power model the manager estimates fleet power with
	// (default power.TianheNode()).
	Model power.Model

	// External runs the manager in external-control mode: the transport
	// stack comes up but no internal control loop — the caller drives
	// cycles through managerd.Server.StartExternalCycle. Used by the
	// daemon cluster backend, where core's manager owns the control law.
	External bool

	// WireCodec and AgentCodec pass through to managerd.Config.WireCodec
	// and agentd.Config.Codec: "json" pins the newline-JSON reference
	// codec, "" or "binary" negotiates the binary codec. Override a
	// single agent with AgentSetup to build mixed-codec fleets.
	WireCodec  string
	AgentCodec string

	// AgentSetup, when non-nil, mutates each agent's config just before
	// agentd.New — the daemon backend uses it to make agents passive
	// relays for the simulated plant's nodes.
	AgentSetup func(i int, cfg *agentd.Config)

	// --- Capping federation (federation.go) ---
	// These pass through to managerd's governed mode. Because
	// serverConfig carries them, a manager restarted with StartManager
	// and a standby promoted with PromoteStandby both redial the
	// coordinator automatically — cabinet-manager failover is invisible
	// at the coordinator tier.
	Cabinet         int
	CoordinatorDial func() (net.Conn, error)
	ReportEvery     time.Duration
	BudgetGrace     int
	FailsafeBudget  power.Thresholds
	RecordCycle     func(scenario.CycleRecord)
}

// serverConfig assembles the managerd.Config this cluster's options
// describe, over the given listener. StartManager reuses it so a restarted
// manager comes up with the same parameters (modulo any Opt mutation the
// test made in between, e.g. lengthening the training window to prove a
// journal restore skipped it).
func (o Options) serverConfig(ln net.Listener) managerd.Config {
	cfg := managerd.Config{
		Listener:        ln,
		Model:           o.Model,
		Policy:          o.Policy,
		Tg:              o.Tg,
		ControlEvery:    o.ControlEvery,
		Thresholds:      o.Thresholds,
		StaleAfter:      o.StaleAfter,
		CommandTimeout:  o.CommandTimeout,
		LostAfter:       o.LostAfter,
		FlapWindow:      o.FlapWindow,
		FlapLimit:       o.FlapLimit,
		Quarantine:      o.Quarantine,
		HeartbeatEvery:  o.HeartbeatEvery,
		JournalPath:     o.JournalPath,
		JournalEvery:    o.JournalEvery,
		Shards:          o.Shards,
		FanoutWorkers:   o.FanoutWorkers,
		Learn:           o.Learn,
		MetricsAddr:     o.MetricsAddr,
		ExternalControl: o.External,
		Epoch:           o.Epoch,
		WireCodec:       o.WireCodec,
		Cabinet:         o.Cabinet,
		CoordinatorDial: o.CoordinatorDial,
		ReportEvery:     o.ReportEvery,
		BudgetGrace:     o.BudgetGrace,
		FailsafeBudget:  o.FailsafeBudget,
		RecordCycle:     o.RecordCycle,
	}
	if o.LeasePath != "" {
		cfg.Lease = &replica.Lease{Path: o.LeasePath, Every: o.LeaseEvery}
		cfg.LeaseHolder = "primary"
	}
	return cfg
}

func (o *Options) fill() {
	if o.Agents <= 0 {
		o.Agents = 4
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.ControlEvery <= 0 {
		o.ControlEvery = 50 * time.Millisecond
	}
	if o.SampleEvery <= 0 {
		o.SampleEvery = 50 * time.Millisecond
	}
	if o.TickEvery <= 0 {
		o.TickEvery = 10 * time.Millisecond
	}
	if o.Tg <= 0 {
		o.Tg = 3
	}
	if o.Thresholds == (power.Thresholds{}) {
		o.Thresholds = power.Thresholds{PL: 1e6, PH: 2e6}
	}
	if o.Policy == nil {
		o.Policy = policy.MPCC{}
	}
	if o.InitialBackoff <= 0 {
		o.InitialBackoff = 10 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 80 * time.Millisecond
	}
	if len(o.Model.CPU.Freqs) == 0 { // zero Model: no DVFS table
		o.Model = power.TianheNode()
	}
}

// Cluster is a running in-process cluster.
type Cluster struct {
	Opt    Options
	Net    *faultnet.Network
	Server *managerd.Server
	Agents []*agentd.Agent

	standbys []*StandbyHandle

	t        testing.TB
	cancel   context.CancelFunc
	wg       sync.WaitGroup
	stopOnce sync.Once
	leak     *LeakCheck
}

// New boots a manager and Opt.Agents agents over a fresh fault network.
// Agent i dials with faultnet key i; fault profiles follow Options. The
// caller owns the cluster and must Stop it; test helpers that need a
// testing.TB (AwaitAgents etc.) panic on a New-built cluster — use Start
// in tests. On error everything already started is torn down.
func New(opt Options) (*Cluster, error) {
	opt.fill()

	n := faultnet.New(opt.Seed)
	n.SetDefaultProfiles(opt.AgentProfile, opt.ManagerProfile)

	srv, err := managerd.New(opt.serverConfig(n.Listener()))
	if err != nil {
		n.Close()
		return nil, fmt.Errorf("harness: managerd.New: %w", err)
	}
	if err := srv.Start(); err != nil {
		n.Close()
		return nil, fmt.Errorf("harness: managerd.Start: %w", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	c := &Cluster{Opt: opt, Net: n, Server: srv, cancel: cancel}
	for i := 0; i < opt.Agents; i++ {
		key := uint64(i)
		acfg := agentd.Config{
			NodeID:        node.ID(i),
			SampleEvery:   opt.SampleEvery,
			TickEvery:     opt.TickEvery,
			Model:         opt.Model,
			Seed:          opt.Seed + int64(i) + 1,
			FailsafeAfter: opt.FailsafeAfter,
			FailsafeLevel: opt.FailsafeLevel,
			Codec:         opt.AgentCodec,
			Dial: func(ctx context.Context) (net.Conn, error) {
				return n.Dial(ctx, key)
			},
		}
		if opt.AgentSetup != nil {
			opt.AgentSetup(i, &acfg)
		}
		a, err := agentd.New(acfg)
		if err != nil {
			c.Stop()
			return nil, fmt.Errorf("harness: agentd.New(%d): %w", i, err)
		}
		c.Agents = append(c.Agents, a)
		c.wg.Add(1)
		go func() {
			defer c.wg.Done()
			a.RunWithReconnect(ctx, opt.InitialBackoff, opt.MaxBackoff)
		}()
	}
	return c, nil
}

// Start boots a cluster via New and registers cleanup (stop +
// goroutine-leak check) on t.
func Start(t testing.TB, opt Options) *Cluster {
	t.Helper()
	leak := StartLeakCheck()
	c, err := New(opt)
	if err != nil {
		t.Fatal(err)
	}
	c.t = t
	c.leak = leak
	t.Cleanup(func() {
		c.Stop()
		c.leak.Check(t, 5*time.Second)
	})
	return c
}

// tb returns the cluster's testing handle, panicking with a clear message
// when the cluster was built with New rather than Start.
func (c *Cluster) tb() testing.TB {
	if c.t == nil {
		panic("harness: test helper called on a New-built cluster (use Start)")
	}
	return c.t
}

// Stop cancels the agents, waits for them, shuts any standbys down (a
// standby stopped before the manager cannot misread the shutdown as a
// leader death), and then stops the manager and the fault network.
// Idempotent.
func (c *Cluster) Stop() {
	c.stopOnce.Do(func() {
		c.cancel()
		c.wg.Wait()
		for _, h := range c.standbys {
			h.stop()
		}
		c.Server.Stop()
		c.Net.Close()
	})
}

// StopManager kills only the manager daemon — the control-plane half of a
// manager-crash chaos scenario. The agents keep running against the dead
// control plane: their redials park in the fault network's accept queue
// and, if armed, their dead-man switches trip. Pair with StartManager.
func (c *Cluster) StopManager() { c.Server.Stop() }

// StartManager boots a fresh manager instance on a new listener over the
// same fault network, completing a crash-restart. Parked agent redials are
// accepted immediately. Options mutated between StopManager and
// StartManager (e.g. the learner's training window) take effect here.
func (c *Cluster) StartManager() {
	t := c.tb()
	t.Helper()
	srv, err := managerd.New(c.Opt.serverConfig(c.Net.Listener()))
	if err != nil {
		t.Fatalf("harness: managerd.New (restart): %v", err)
	}
	if err := srv.Start(); err != nil {
		t.Fatalf("harness: managerd.Start (restart): %v", err)
	}
	c.Server = srv
}

// Status returns the manager's counters.
func (c *Cluster) Status() wire.StatusReply { return c.Server.Status() }

// Levels returns every agent's current applied power level.
func (c *Cluster) Levels() []int {
	levels := make([]int, len(c.Agents))
	for i, a := range c.Agents {
		levels[i] = a.Level()
	}
	return levels
}

// MinLevel returns the lowest applied level across the fleet.
func (c *Cluster) MinLevel() int {
	min := int(^uint(0) >> 1)
	for _, a := range c.Agents {
		if l := a.Level(); l < min {
			min = l
		}
	}
	return min
}

// AwaitAgents waits until the manager sees exactly n connected agents.
func (c *Cluster) AwaitAgents(n int, timeout time.Duration) {
	t := c.tb()
	t.Helper()
	WaitUntil(t, timeout, func() bool { return c.Status().Agents == n },
		"manager never saw %d agents (have %d)", n, c.Status().Agents)
}

// AwaitSettledBelow is the safety invariant: the manager's estimated fleet
// power must reach and hold at/below limit for consecutive successive
// polls (one control period apart) before the timeout.
func (c *Cluster) AwaitSettledBelow(limit float64, consecutive int, timeout time.Duration) {
	t := c.tb()
	t.Helper()
	deadline := time.Now().Add(timeout)
	streak := 0
	for time.Now().Before(deadline) {
		st := c.Status()
		if st.LastPowerW > 0 && st.LastPowerW <= limit {
			streak++
			if streak >= consecutive {
				return
			}
		} else {
			streak = 0
		}
		time.Sleep(c.Opt.ControlEvery)
	}
	t.Fatalf("harness: power never settled ≤ %.0f W for %d consecutive cycles (last %.0f W, levels %v)",
		limit, consecutive, c.Status().LastPowerW, c.Levels())
}

// ForceReconnect kills agent key's current connection and waits for the
// agent to redial and re-register with the manager. It returns false if
// there was no live link to kill.
func (c *Cluster) ForceReconnect(key uint64, timeout time.Duration) bool {
	t := c.tb()
	t.Helper()
	old, _ := c.Net.Link(key)
	if old == nil || !c.Net.Kill(key) {
		return false
	}
	WaitUntil(t, timeout, func() bool {
		cur, _ := c.Net.Link(key)
		return cur != nil && cur != old && c.Status().Agents == c.Opt.Agents
	}, "agent %d never reconnected after kill", key)
	return true
}
