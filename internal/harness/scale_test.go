package harness

import (
	"sort"
	"testing"
	"time"

	"repro/internal/faultnet"
	"repro/internal/power"
)

// Scale tests: hundreds to a thousand in-process agents against one
// manager, with a slice of the fleet turned into slow readers. They pin
// the property the concurrent actuation path exists for — command fan-out
// bounded by the slowest single node, not the sum of the slow ones — at
// fleet sizes where the old serial path would need minutes.
//
// The thresholds are a few watts, so the fleet is in sustained red from
// the first cycle: every agent gets a floor command (full fan-out), the
// slow readers drag their writes out, and retries keep hitting them until
// the floor is acked.

// markSlowReaders throttles the read path of the first fraction of the
// fleet to bytesPerSec — the manager's command writes to those agents
// pace at the reader, exactly like a host with a wedged control process
// and a full socket buffer. Returns the number of slowed agents.
func markSlowReaders(c *Cluster, fraction float64, bytesPerSec int) int {
	n := int(float64(c.Opt.Agents) * fraction)
	for i := 0; i < n; i++ {
		c.Net.SetClientProfile(uint64(i), faultnet.Profile{ReadBytesPerSec: bytesPerSec})
	}
	return n
}

// scaleOptions is the shared cluster shape for the scale tests: sustained
// red, timings slackened so a single-core CI box can push the message
// volume, and the manager's fan-out layer explicitly sharded.
func scaleOptions(agents int) Options {
	return Options{
		Agents:         agents,
		Seed:           42,
		ControlEvery:   250 * time.Millisecond,
		SampleEvery:    400 * time.Millisecond,
		TickEvery:      200 * time.Millisecond,
		StaleAfter:     5 * time.Second,
		CommandTimeout: 500 * time.Millisecond,
		Thresholds:     power.Thresholds{PL: 1, PH: 2},
		Shards:         64,
		FanoutWorkers:  4,
	}
}

// awaitFloored waits until every agent has applied the red-state floor.
func awaitFloored(t testing.TB, c *Cluster, timeout time.Duration) {
	t.Helper()
	WaitUntil(t, timeout, func() bool {
		for _, a := range c.Agents {
			if a.Level() != 0 {
				return false
			}
		}
		return true
	}, "fleet never floored under sustained red (levels %v...)", c.Levels()[:8])
}

// TestScaleSmoke512 is the CI race-mode scale smoke: 512 agents, 20% slow
// readers, sustained red. It asserts liveness (everyone connects, everyone
// floors) and that the fan-out instrumentation is alive; the timing
// measurements live in TestScaleFanoutE10.
func TestScaleSmoke512(t *testing.T) {
	const agents = 512
	c := Start(t, scaleOptions(agents))
	slowed := markSlowReaders(c, 0.20, 4096)
	c.AwaitAgents(agents, 60*time.Second)
	awaitFloored(t, c, 120*time.Second)

	st := c.Status()
	if st.RedCycles == 0 {
		t.Errorf("fleet under watt-level thresholds never classified red: %+v", st)
	}
	if st.CommandAcks < agents {
		t.Errorf("only %d acks for a %d-agent floor fan-out", st.CommandAcks, agents)
	}
	if st.Shards == 0 || st.MaxFanoutMicros == 0 || st.MaxCycleMicros == 0 {
		t.Errorf("fan-out instrumentation dead: shards=%d maxFanout=%dus maxCycle=%dus",
			st.Shards, st.MaxFanoutMicros, st.MaxCycleMicros)
	}
	t.Logf("512-agent smoke (%d slow readers): maxCycle=%dus maxFanout=%dus coalesced=%d cmdErrs=%d staleConnErrs=%d",
		slowed, st.MaxCycleMicros, st.MaxFanoutMicros, st.CoalescedCmds, st.CommandErrors, st.StaleConnErrors)
}

// fanoutMeasurement is one scale scenario's outcome (see EXPERIMENTS.md
// E10 for measured values).
type fanoutMeasurement struct {
	agents, slowed     int
	medCycle, maxCycle time.Duration // control-cycle critical path
	maxFanout          time.Duration // worst command fan-out completion
}

// measureScale boots a cluster, drives it through the red-entry fan-out
// burst to the floor, then samples the steady-state cycle cost.
func measureScale(t *testing.T, agents int, slowFrac float64, bytesPerSec int) fanoutMeasurement {
	t.Helper()
	c := Start(t, scaleOptions(agents))
	defer c.Stop()
	slowed := markSlowReaders(c, slowFrac, bytesPerSec)
	c.AwaitAgents(agents, 60*time.Second)
	awaitFloored(t, c, 120*time.Second)

	// Steady state: sample the per-cycle critical path for ~16 cycles.
	var cycles []time.Duration
	for i := 0; i < 16; i++ {
		time.Sleep(c.Opt.ControlEvery)
		cycles = append(cycles, time.Duration(c.Status().LastCycleMicros)*time.Microsecond)
	}
	sort.Slice(cycles, func(a, b int) bool { return cycles[a] < cycles[b] })
	st := c.Status()
	m := fanoutMeasurement{
		agents:    agents,
		slowed:    slowed,
		medCycle:  cycles[len(cycles)/2],
		maxCycle:  time.Duration(st.MaxCycleMicros) * time.Microsecond,
		maxFanout: time.Duration(st.MaxFanoutMicros) * time.Microsecond,
	}
	t.Logf("%d agents (%d slow @%dB/s): medCycle=%v maxCycle=%v maxFanout=%v coalesced=%d acks=%d",
		agents, slowed, bytesPerSec, m.medCycle, m.maxCycle, m.maxFanout, st.CoalescedCmds, st.CommandAcks)
	return m
}

// TestScaleFanoutE10 is the experiment behind EXPERIMENTS.md E10: the
// 1024-agent fleet with 20% slow readers must complete its full red-state
// fan-out inside two control periods — the fault-free 128-agent deployment
// reacts within one ControlEvery, so this is the "< 2× the fault-free
// 128-agent cycle latency" acceptance — where the serial write path would
// have needed ≈ slowed × write-pacing (tens of seconds).
func TestScaleFanoutE10(t *testing.T) {
	if testing.Short() {
		t.Skip("scale measurement; run without -short")
	}
	if RaceEnabled {
		t.Skip("timing measurement; race detector overhead drowns it (see TestScaleSmoke512)")
	}

	base := measureScale(t, 128, 0, 0)
	big := measureScale(t, 1024, 0.20, 2048)

	// The acceptance bound: fan-out at 1024 agents with 20% slow readers
	// completes within twice the fault-free 128-agent cycle latency (one
	// control period, the latency at which that deployment reacts).
	budget := 2 * scaleOptions(128).ControlEvery
	if big.maxFanout >= budget {
		t.Errorf("1024-agent fan-out with slow readers took %v, budget %v (2× the fault-free 128-agent cycle latency)",
			big.maxFanout, budget)
	}
	// And it must not degenerate toward the serial bound: each slow write
	// paces at ≥ ~30ms, so the old one-write-at-a-time path would need
	// ≥ slowed × 30ms for the burst.
	serial := time.Duration(big.slowed) * 30 * time.Millisecond
	if big.maxFanout >= serial/4 {
		t.Errorf("1024-agent fan-out %v is within 4× of the serial bound %v; senders not concurrent?",
			big.maxFanout, serial)
	}
	// The sharded cycle path scales: the 8× fleet must not cost 8× the
	// critical path of the 128-agent baseline with generous slack for a
	// loaded single-core runner.
	if base.medCycle > 0 && big.medCycle > 16*base.medCycle {
		t.Errorf("median cycle grew from %v (128 agents) to %v (1024 agents); worse than linear",
			base.medCycle, big.medCycle)
	}
}
