package harness

import (
	"testing"
	"time"
)

// TestReconnectHerd is the reconnect-herd regression scenario: the entire
// fleet goes silent at once and comes back at once — first as a two-way
// partition healed simultaneously (a network blip shorter than the
// dead-man grace window), then as a simultaneous kill of every
// connection (a full redial herd hitting the accept loop in one burst).
// Through both herds, no agent's failsafe may fire outside its grace
// window, the manager must re-absorb all agents, and command fan-out
// must complete (no drifted levels left behind).
func TestReconnectHerd(t *testing.T) {
	const agents = 16
	c := Start(t, Options{
		Agents:         agents,
		Seed:           23,
		Thresholds:     failsafeThresholds, // uncapped ≈4.2 kW: the fleet is actively capped
		CommandTimeout: 100 * time.Millisecond,
		FailsafeAfter:  10, // generous grace so the scripted blip stays well inside it
		FailsafeLevel:  0,
	})
	c.AwaitAgents(agents, 20*time.Second)
	c.AwaitSettledBelow(float64(failsafeThresholds.PH), 3, 30*time.Second)
	grace := time.Duration(c.Opt.FailsafeAfter) * c.Opt.SampleEvery

	assertNoTrips := func(phase string) {
		t.Helper()
		for i, a := range c.Agents {
			if a.FailsafeTrips() > 0 {
				t.Fatalf("%s: agent %d self-degraded outside the grace window (level %d)",
					phase, i, a.Level())
			}
		}
	}

	// Phase A: partition every agent in both directions — total silence
	// both ways, but shorter than the grace window — then heal all of
	// them in the same instant.
	acksBefore := c.Status().CommandAcks
	for i := 0; i < agents; i++ {
		c.Net.Partition(uint64(i), true, true)
	}
	time.Sleep(grace / 3)
	for i := 0; i < agents; i++ {
		c.Net.Heal(uint64(i))
	}
	assertNoTrips("partition heal")

	// The whole fleet's samples reappear in one burst; the manager must
	// return to a full, healthy, settled view without any failsafe help.
	WaitUntil(t, 20*time.Second, func() bool {
		st := c.Status()
		return st.Agents == agents && st.HealthyNodes == agents && st.LastPowerW > 0
	}, "manager never re-absorbed the healed fleet: %+v", c.Status())
	c.AwaitSettledBelow(float64(failsafeThresholds.PH), 3, 30*time.Second)
	assertNoTrips("post-heal settle")

	// Phase B: kill every connection simultaneously — a true reconnect
	// herd: 16 redials race into the accept loop at once. Reconnect is
	// fast (backoff starts at 10 ms), so the fleet never approaches the
	// grace window.
	for i := 0; i < agents; i++ {
		c.Net.Kill(uint64(i))
	}
	WaitUntil(t, 20*time.Second, func() bool {
		st := c.Status()
		return st.Agents == agents && st.HealthyNodes == agents
	}, "manager never recovered from the redial herd: %+v", c.Status())
	assertNoTrips("redial herd")

	// Fan-out completes across the herd: the actively-capped fleet keeps
	// receiving and acking commands on the new connections, and the
	// manager's view reconciles — no agent left at a drifted level.
	WaitUntil(t, 30*time.Second, func() bool {
		st := c.Status()
		return st.CommandAcks > acksBefore && st.Drifted == 0
	}, "fan-out never completed after the herd: %+v", c.Status())
	c.AwaitSettledBelow(float64(failsafeThresholds.PH), 3, 30*time.Second)
	assertNoTrips("final")
	t.Logf("herd survived: grace=%v status=%+v", grace, c.Status())
}
