package harness

import (
	"testing"
	"time"

	"repro/internal/faultnet"
	"repro/internal/power"
)

// cappingThresholds sits inside the band a 4-agent fleet can actually
// hold: natural uncapped draw ≈ 1.05 kW, floored draw ≈ 0.63 kW.
var cappingThresholds = power.Thresholds{PL: 850, PH: 1100}

func TestClusterBootsAndSettles(t *testing.T) {
	c := Start(t, Options{Agents: 4})
	c.AwaitAgents(4, 10*time.Second)
	WaitUntil(t, 10*time.Second, func() bool {
		st := c.Status()
		return st.Cycles >= 4 && st.LastPowerW > 0
	}, "cycles never ran against live samples")
	if st := c.Status(); st.DegradeOps != 0 {
		t.Errorf("generous thresholds still degraded nodes: %+v", st)
	}
}

func TestCappingUnderSampleDrops(t *testing.T) {
	// 20% sample loss: the capping loop must still drive the fleet to
	// the safe band (EXPERIMENTS.md E2's graceful-degradation claim,
	// exercised against real connection faults rather than a simulated
	// drop in the collector).
	c := Start(t, Options{
		Agents:       4,
		Thresholds:   cappingThresholds,
		AgentProfile: faultnet.Profile{DropProb: 0.20, FirstWriteClean: true},
	})
	c.AwaitAgents(4, 10*time.Second)
	c.AwaitSettledBelow(float64(cappingThresholds.PH), 5, 20*time.Second)
	if c.MinLevel() == 9 {
		t.Error("power settled but no node was ever degraded")
	}
}

func TestReconnectChurnLeaksNoGoroutines(t *testing.T) {
	// ≥20 forced reconnects; the cleanup-time leak check asserts the
	// goroutine count returns to the pre-Start baseline.
	c := Start(t, Options{Agents: 4})
	c.AwaitAgents(4, 10*time.Second)
	const churns = 24
	forced := 0
	for i := 0; i < churns; i++ {
		if c.ForceReconnect(uint64(i%4), 10*time.Second) {
			forced++
		}
	}
	if forced < 20 {
		t.Fatalf("only %d of %d reconnects had a live link to kill", forced, churns)
	}
	// The cluster must still be fully functional afterwards.
	st0 := c.Status()
	WaitUntil(t, 10*time.Second, func() bool { return c.Status().Cycles > st0.Cycles+2 },
		"control loop stopped after reconnect churn")
}

func TestLevelSurvivesReconnect(t *testing.T) {
	// Consistency invariant: a reconnect must not silently reset an
	// applied throttle. Blackhole the command path first so no fresh
	// command can explain a level change.
	c := Start(t, Options{Agents: 4, Thresholds: cappingThresholds})
	c.AwaitAgents(4, 10*time.Second)
	WaitUntil(t, 15*time.Second, func() bool { return c.Agents[0].Level() < 9 },
		"agent 0 was never degraded")

	c.Net.Partition(0, false, true) // manager→agent silenced, samples still flow
	time.Sleep(3 * c.Opt.ControlEvery)
	before := c.Agents[0].Level()
	if !c.ForceReconnect(0, 10*time.Second) {
		t.Fatal("no live link for agent 0")
	}
	time.Sleep(5 * c.Opt.ControlEvery)
	if after := c.Agents[0].Level(); after != before {
		t.Errorf("level silently changed across reconnect: %d → %d", before, after)
	}
	c.Net.Heal(0)
}

func TestRestoreResumesAfterPartitionHeals(t *testing.T) {
	// Liveness invariant: cut every agent off (both directions), watch
	// restore stall, heal, watch restore resume.
	c := Start(t, Options{Agents: 4, Thresholds: cappingThresholds})
	c.AwaitAgents(4, 10*time.Second)
	WaitUntil(t, 15*time.Second, func() bool { return c.Status().DegradeOps > 0 },
		"capping never degraded anyone")

	for k := uint64(0); k < 4; k++ {
		c.Net.Partition(k, true, true)
	}
	// Wait until the manager's view has gone stale (all samples stop).
	WaitUntil(t, 10*time.Second, func() bool { return c.Status().LastPowerW == 0 },
		"manager still sees samples through a full partition")
	stalled := c.Status()
	time.Sleep(10 * c.Opt.ControlEvery)
	if st := c.Status(); st.RestoreOps != stalled.RestoreOps || st.DegradeOps != stalled.DegradeOps {
		t.Errorf("ops advanced during full partition: %+v → %+v", stalled, st)
	}
	if st := c.Status(); st.DroppedStale == stalled.DroppedStale && stalled.DroppedStale == 0 {
		t.Errorf("full partition produced no stale-drop accounting: %+v", st)
	}

	for k := uint64(0); k < 4; k++ {
		c.Net.Heal(k)
	}
	WaitUntil(t, 20*time.Second, func() bool {
		st := c.Status()
		return st.RestoreOps > stalled.RestoreOps
	}, "restore never resumed after heal (ops %+v)", stalled)
}

func TestSlowReaderDoesNotStallControlCycle(t *testing.T) {
	// Satellite fix proof: one agent that stops draining its socket
	// costs each command at most CommandTimeout; the control cycle keeps
	// its period and the timeouts are accounted in CommandErrors.
	c := Start(t, Options{
		Agents:         4,
		Thresholds:     cappingThresholds,
		CommandTimeout: 100 * time.Millisecond,
	})
	c.AwaitAgents(4, 10*time.Second)
	WaitUntil(t, 15*time.Second, func() bool { return c.Status().DegradeOps > 0 },
		"capping never started")

	// ~8 B/s: a ~50-byte command needs seconds to drain — far beyond
	// CommandTimeout — and the synchronous pipe blocks the writer.
	c.Net.SetClientProfile(3, faultnet.Profile{ReadBytesPerSec: 8})
	st0 := c.Status()
	start := time.Now()
	WaitUntil(t, 20*time.Second, func() bool { return c.Status().CommandErrors > st0.CommandErrors },
		"stalled agent never produced a command timeout")
	elapsed := time.Since(start)
	st1 := c.Status()
	cycles := st1.Cycles - st0.Cycles
	// Without the per-send deadline a single stalled send blocks the
	// loop for the full message drain (seconds); with it the loop loses
	// at most CommandTimeout per cycle. Require at least a third of the
	// nominal cycle rate.
	minCycles := int(elapsed/(c.Opt.ControlEvery)) / 3
	if cycles < minCycles {
		t.Errorf("control loop stalled by slow reader: %d cycles in %v (want ≥ %d)",
			cycles, elapsed, minCycles)
	}
	c.Net.SetClientProfile(3, faultnet.Profile{})
}

func TestPartitionAccountingMatchesInjectedFaults(t *testing.T) {
	// Accounting invariant: stale-sample drops track the injected
	// partition within tolerance (stale detection lags by StaleAfter).
	c := Start(t, Options{Agents: 4})
	c.AwaitAgents(4, 10*time.Second)
	// Stale accounting only covers agents the manager has seen a sample
	// from; let every agent deliver a few before cutting them off.
	WaitUntil(t, 10*time.Second, func() bool { return c.Status().LastPowerW > 0 },
		"no samples before partition")
	time.Sleep(5 * c.Opt.SampleEvery)
	st0 := c.Status()

	c.Net.Partition(1, true, true)
	c.Net.Partition(2, true, true)
	time.Sleep(20 * c.Opt.ControlEvery)
	st1 := c.Status()
	c.Net.Heal(1)
	c.Net.Heal(2)

	cycles := st1.Cycles - st0.Cycles
	dropped := st1.DroppedStale - st0.DroppedStale
	if cycles == 0 {
		t.Fatal("no cycles during partition window")
	}
	// Two partitioned agents, one stale-drop each per cycle once past
	// StaleAfter (3 periods by default).
	min, max := cycles-8, 2*cycles
	if dropped < min || dropped > max {
		t.Errorf("DroppedStale = %d over %d cycles with 2 agents partitioned, want in [%d, %d]",
			dropped, cycles, min, max)
	}
}
