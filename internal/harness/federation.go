package harness

import (
	"context"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/budget"
	"repro/internal/faultnet"
	"repro/internal/fedd"
	"repro/internal/power"
	"repro/internal/replica"
	"repro/internal/scenario"
	"repro/internal/units"
)

// Federated topology: a fedd coordinator over its own fault network,
// plus one full harness Cluster (managerd + agents over their own fault
// network) per cabinet, each cabinet manager dialing the coordinator as
// a governed cabinet. Partitioning cabinet c from the coordinator is
// CoordNet.Partition(c, ...) — reports and grants go silent in either
// direction while the cabinet's own agent plane keeps running, which is
// exactly the failure the two-tier dead-man layers exist for.

// FedOptions parametrises a federation.
type FedOptions struct {
	// Cabinets is the number of cabinet clusters (default 3).
	Cabinets int
	// AgentsPerCabinet is each cabinet's agent count (default 4).
	AgentsPerCabinet int
	// Budget is the coordinator's global budget; PH its global upper
	// threshold (defaults: a generous megawatt band that never caps).
	Budget units.Watts
	PH     units.Watts
	// Division selects the coordinator's budget division (default
	// Proportional).
	Division budget.Division
	// CoordEvery is the coordinator cycle period (default 50ms);
	// StaleAfter its lost-cabinet threshold (default 3 cycles).
	CoordEvery time.Duration
	StaleAfter time.Duration
	// Breaker caps any single cabinet's grant; FloorW is the per-cabinet
	// weighting floor and lost-cabinet reserve. Zero disables each.
	Breaker units.Watts
	FloorW  units.Watts
	// BudgetGrace and FailsafeBudget arm each cabinet manager's
	// coordinator dead-man switch (managerd.Config); zero values take
	// the managerd defaults.
	BudgetGrace    int
	FailsafeBudget power.Thresholds
	// Seed drives every fault network (offset per cabinet).
	Seed int64
	// CabOpts, when non-nil, mutates each cabinet's Options just before
	// its cluster boots (fault profiles, lease paths, thresholds...).
	CabOpts func(cab int, o *Options)
	// CoordOpts, when non-nil, mutates the coordinator's config just
	// before it boots (lease path, journal, codec pinning...). The
	// Listener field is owned by the harness.
	CoordOpts func(cfg *fedd.Config)
}

func (o *FedOptions) fill() {
	if o.Cabinets <= 0 {
		o.Cabinets = 3
	}
	if o.AgentsPerCabinet <= 0 {
		o.AgentsPerCabinet = 4
	}
	if o.Budget <= 0 {
		o.Budget = 1e6
	}
	if o.PH <= 0 {
		o.PH = o.Budget * 11 / 10
	}
	if o.CoordEvery <= 0 {
		o.CoordEvery = 50 * time.Millisecond
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// Federation is a running two-tier cluster.
type Federation struct {
	Opt      FedOptions
	Coord    *fedd.Server
	CoordNet *faultnet.Network
	Cabinets []*Cluster

	t        testing.TB
	coordCfg fedd.Config // as booted, minus the listener
	standbys []*CoordStandbyHandle
	mu       sync.Mutex
	// recs[c] is cabinet c's Algorithm-1 cycle trace, collected through
	// managerd's RecordCycle seam for scenario.CheckAlgorithmOne.
	recs [][]scenario.CycleRecord
}

// StartFederation boots a coordinator and Opt.Cabinets governed cabinet
// clusters, registering all cleanup on t (cabinets stop before the
// coordinator).
func StartFederation(t testing.TB, opt FedOptions) *Federation {
	t.Helper()
	opt.fill()

	coordNet := faultnet.New(opt.Seed + 7777)
	coordCfg := fedd.Config{
		Budget:       opt.Budget,
		PH:           opt.PH,
		Division:     opt.Division,
		ControlEvery: opt.CoordEvery,
		StaleAfter:   opt.StaleAfter,
		Breaker:      opt.Breaker,
		FloorW:       opt.FloorW,
	}
	if opt.CoordOpts != nil {
		opt.CoordOpts(&coordCfg)
	}
	bootCfg := coordCfg
	bootCfg.Listener = coordNet.Listener()
	coord, err := fedd.New(bootCfg)
	if err != nil {
		coordNet.Close()
		t.Fatalf("harness: fedd.New: %v", err)
	}
	if err := coord.Start(); err != nil {
		coordNet.Close()
		t.Fatalf("harness: fedd.Start: %v", err)
	}
	f := &Federation{
		Opt: opt, Coord: coord, CoordNet: coordNet,
		t:        t,
		coordCfg: coordCfg,
		recs:     make([][]scenario.CycleRecord, opt.Cabinets),
	}
	t.Cleanup(func() {
		for _, h := range f.standbys {
			h.stop()
		}
		f.Coord.Stop()
		coordNet.Close()
	})

	for cab := 0; cab < opt.Cabinets; cab++ {
		cab := cab
		o := Options{
			Agents:         opt.AgentsPerCabinet,
			Seed:           opt.Seed + int64(cab)*1000,
			Cabinet:        cab,
			BudgetGrace:    opt.BudgetGrace,
			FailsafeBudget: opt.FailsafeBudget,
			CoordinatorDial: func() (net.Conn, error) {
				return coordNet.Dial(context.Background(), uint64(cab))
			},
			RecordCycle: func(rec scenario.CycleRecord) {
				f.mu.Lock()
				f.recs[cab] = append(f.recs[cab], rec)
				f.mu.Unlock()
			},
		}
		if opt.CabOpts != nil {
			opt.CabOpts(cab, &o)
		}
		c := Start(t, o)
		f.Cabinets = append(f.Cabinets, c)
		// Bring the cabinet to steady state — agents registered, first
		// grant applied — before booting the next one. Each cluster's
		// goroutine-leak baseline is snapshotted at its Start, so the
		// previous cabinets' asynchronously-spawned connection goroutines
		// must all exist by then or teardown misreads them as leaks.
		c.AwaitAgents(o.Agents, 30*time.Second)
		WaitUntil(t, 30*time.Second, func() bool {
			return c.Status().Governed
		}, "cabinet %d never went governed", cab)
	}
	return f
}

// Records returns a copy of cabinet cab's Algorithm-1 cycle trace so far.
func (f *Federation) Records(cab int) []scenario.CycleRecord {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]scenario.CycleRecord, len(f.recs[cab]))
	copy(out, f.recs[cab])
	return out
}

// AwaitGoverned waits until every cabinet manager reports running under
// a live coordinator grant and the coordinator sees every cabinet live.
func (f *Federation) AwaitGoverned(timeout time.Duration) {
	f.t.Helper()
	WaitUntil(f.t, timeout, func() bool {
		for _, c := range f.Cabinets {
			if !c.Status().Governed {
				return false
			}
		}
		live := 0
		for _, cs := range f.Coord.CabinetStates() {
			if cs.Live {
				live++
			}
		}
		return live == f.Opt.Cabinets
	}, "federation never fully governed (%d cabinets)", f.Opt.Cabinets)
}

// PartitionCabinet blackholes cabinet cab's coordinator link in both
// directions: reports stop arriving and grants stop flowing, with
// neither side seeing an error — pure silence, the dead-man case.
func (f *Federation) PartitionCabinet(cab int) {
	f.CoordNet.Partition(uint64(cab), true, true)
}

// HealCabinet lifts the partition. The cabinet's federation client is
// usually still blocked on the dead link; the next report write or
// redial re-subscribes it.
func (f *Federation) HealCabinet(cab int) {
	f.CoordNet.Heal(uint64(cab))
}

// StopCoordinator kills the coordinator process outright (its listener
// closes; cabinet sessions die). Cabinets keep their own agent planes
// running and, past BudgetGrace, floor themselves to the failsafe band.
func (f *Federation) StopCoordinator() {
	f.Coord.Stop()
}

// RestartCoordinator boots a fresh coordinator over the same
// configuration and fault network — the cold-restart case. Cabinet
// federation clients redial under their capped backoff and resubscribe;
// the next coordinator cycle re-grants. Rebinds f.Coord.
func (f *Federation) RestartCoordinator() *fedd.Server {
	f.t.Helper()
	cfg := f.coordCfg
	cfg.Listener = f.CoordNet.Listener()
	coord, err := fedd.New(cfg)
	if err != nil {
		f.t.Fatalf("harness: restarted fedd.New: %v", err)
	}
	if err := coord.Start(); err != nil {
		f.t.Fatalf("harness: restarted fedd.Start: %v", err)
	}
	f.Coord = coord
	return coord
}

// CoordStandbyHandle tracks one warm coordinator standby.
type CoordStandbyHandle struct {
	// Standby exposes the replica.Standby (its Obs registry carries the
	// follower and takeover instruments; Store is the journal copy).
	Standby *replica.Standby

	fed    *Federation
	cancel context.CancelFunc
	done   chan struct{}
	srvCh  chan *fedd.Server
	errCh  chan error
	srv    *fedd.Server // promoted coordinator, once collected
}

// StartCoordStandby boots a warm coordinator standby: a journal
// follower over the coordinator fault network plus a lease watcher
// that, on leader death, starts a replacement coordinator over the
// replicated grant journal at a fenced-off higher epoch. Requires the
// coordinator to have been started with a Lease (via CoordOpts).
// missBudget ≤ 0 takes the replica default. The federation owns the
// standby; cleanup tears it down.
func (f *Federation) StartCoordStandby(missBudget int) *CoordStandbyHandle {
	t := f.t
	t.Helper()
	if f.coordCfg.Lease == nil {
		t.Fatal("harness: StartCoordStandby needs a coordinator Lease (set via CoordOpts)")
	}
	store, err := replica.Open("")
	if err != nil {
		t.Fatalf("harness: coord standby store: %v", err)
	}
	idx := len(f.standbys)
	key := standbyKeyBase + uint64(idx)
	ctx, cancel := context.WithCancel(context.Background())
	h := &CoordStandbyHandle{
		fed:    f,
		cancel: cancel,
		done:   make(chan struct{}),
		srvCh:  make(chan *fedd.Server, 1),
		errCh:  make(chan error, 1),
	}
	holder := fmt.Sprintf("coord-standby-%d", idx+1)
	sb, err := replica.NewStandby(replica.StandbyConfig{
		Follower: replica.FollowerConfig{
			Store:   store,
			Backoff: 10 * time.Millisecond,
			Dial: func(dctx context.Context) (net.Conn, error) {
				return f.CoordNet.Dial(dctx, key)
			},
		},
		Lease:      f.coordCfg.Lease,
		MissBudget: missBudget,
		Holder:     holder,
		OnPromote: func(p replica.Promotion) error {
			cfg := f.coordCfg
			cfg.Listener = f.CoordNet.Listener()
			cfg.JournalPath = "" // the replicated store IS the journal
			cfg.Journal = p.Store
			cfg.Epoch = p.Epoch
			cfg.LeaseHolder = holder
			cfg.TakeoverMicros = p.Leaderless.Microseconds()
			srv, err := fedd.New(cfg)
			if err != nil {
				return fmt.Errorf("harness: promoted fedd.New: %w", err)
			}
			if err := srv.Start(); err != nil {
				return fmt.Errorf("harness: promoted fedd.Start: %w", err)
			}
			h.srvCh <- srv
			return nil
		},
	})
	if err != nil {
		cancel()
		t.Fatalf("harness: coord NewStandby: %v", err)
	}
	h.Standby = sb
	go func() {
		defer close(h.done)
		if err := sb.Run(ctx); err != nil {
			h.errCh <- err
		}
	}()
	f.standbys = append(f.standbys, h)
	return h
}

// AwaitCoordTakeover blocks until h has promoted a replacement
// coordinator (or fails the test after timeout), rebinds f.Coord to it,
// and returns it. The old coordinator is left to the test
// (StopCoordinator usually killed it already).
func (f *Federation) AwaitCoordTakeover(h *CoordStandbyHandle, timeout time.Duration) *fedd.Server {
	t := f.t
	t.Helper()
	select {
	case srv := <-h.srvCh:
		h.srv = srv
		f.Coord = srv
		return srv
	case err := <-h.errCh:
		t.Fatalf("harness: coord standby promotion failed: %v", err)
	case <-time.After(timeout):
		t.Fatalf("harness: no coordinator takeover within %v", timeout)
	}
	return nil
}

// stop tears the standby down: cancel its watcher, wait it out, and
// stop a promoted coordinator unless AwaitCoordTakeover already handed
// it to the federation (the federation cleanup stops f.Coord itself).
func (h *CoordStandbyHandle) stop() {
	h.cancel()
	<-h.done
	select {
	case srv := <-h.srvCh:
		h.srv = srv
	default:
	}
	if h.srv != nil && h.srv != h.fed.Coord {
		h.srv.Stop()
	}
}
