package harness

import (
	"context"
	"net"
	"sync"
	"testing"
	"time"

	"repro/internal/budget"
	"repro/internal/faultnet"
	"repro/internal/fedd"
	"repro/internal/power"
	"repro/internal/scenario"
	"repro/internal/units"
)

// Federated topology: a fedd coordinator over its own fault network,
// plus one full harness Cluster (managerd + agents over their own fault
// network) per cabinet, each cabinet manager dialing the coordinator as
// a governed cabinet. Partitioning cabinet c from the coordinator is
// CoordNet.Partition(c, ...) — reports and grants go silent in either
// direction while the cabinet's own agent plane keeps running, which is
// exactly the failure the two-tier dead-man layers exist for.

// FedOptions parametrises a federation.
type FedOptions struct {
	// Cabinets is the number of cabinet clusters (default 3).
	Cabinets int
	// AgentsPerCabinet is each cabinet's agent count (default 4).
	AgentsPerCabinet int
	// Budget is the coordinator's global budget; PH its global upper
	// threshold (defaults: a generous megawatt band that never caps).
	Budget units.Watts
	PH     units.Watts
	// Division selects the coordinator's budget division (default
	// Proportional).
	Division budget.Division
	// CoordEvery is the coordinator cycle period (default 50ms);
	// StaleAfter its lost-cabinet threshold (default 3 cycles).
	CoordEvery time.Duration
	StaleAfter time.Duration
	// Breaker caps any single cabinet's grant; FloorW is the per-cabinet
	// weighting floor and lost-cabinet reserve. Zero disables each.
	Breaker units.Watts
	FloorW  units.Watts
	// BudgetGrace and FailsafeBudget arm each cabinet manager's
	// coordinator dead-man switch (managerd.Config); zero values take
	// the managerd defaults.
	BudgetGrace    int
	FailsafeBudget power.Thresholds
	// Seed drives every fault network (offset per cabinet).
	Seed int64
	// CabOpts, when non-nil, mutates each cabinet's Options just before
	// its cluster boots (fault profiles, lease paths, thresholds...).
	CabOpts func(cab int, o *Options)
}

func (o *FedOptions) fill() {
	if o.Cabinets <= 0 {
		o.Cabinets = 3
	}
	if o.AgentsPerCabinet <= 0 {
		o.AgentsPerCabinet = 4
	}
	if o.Budget <= 0 {
		o.Budget = 1e6
	}
	if o.PH <= 0 {
		o.PH = o.Budget * 11 / 10
	}
	if o.CoordEvery <= 0 {
		o.CoordEvery = 50 * time.Millisecond
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// Federation is a running two-tier cluster.
type Federation struct {
	Opt      FedOptions
	Coord    *fedd.Server
	CoordNet *faultnet.Network
	Cabinets []*Cluster

	t  testing.TB
	mu sync.Mutex
	// recs[c] is cabinet c's Algorithm-1 cycle trace, collected through
	// managerd's RecordCycle seam for scenario.CheckAlgorithmOne.
	recs [][]scenario.CycleRecord
}

// StartFederation boots a coordinator and Opt.Cabinets governed cabinet
// clusters, registering all cleanup on t (cabinets stop before the
// coordinator).
func StartFederation(t testing.TB, opt FedOptions) *Federation {
	t.Helper()
	opt.fill()

	coordNet := faultnet.New(opt.Seed + 7777)
	coord, err := fedd.New(fedd.Config{
		Listener:     coordNet.Listener(),
		Budget:       opt.Budget,
		PH:           opt.PH,
		Division:     opt.Division,
		ControlEvery: opt.CoordEvery,
		StaleAfter:   opt.StaleAfter,
		Breaker:      opt.Breaker,
		FloorW:       opt.FloorW,
	})
	if err != nil {
		coordNet.Close()
		t.Fatalf("harness: fedd.New: %v", err)
	}
	if err := coord.Start(); err != nil {
		coordNet.Close()
		t.Fatalf("harness: fedd.Start: %v", err)
	}
	f := &Federation{
		Opt: opt, Coord: coord, CoordNet: coordNet,
		t:    t,
		recs: make([][]scenario.CycleRecord, opt.Cabinets),
	}
	t.Cleanup(func() {
		coord.Stop()
		coordNet.Close()
	})

	for cab := 0; cab < opt.Cabinets; cab++ {
		cab := cab
		o := Options{
			Agents:         opt.AgentsPerCabinet,
			Seed:           opt.Seed + int64(cab)*1000,
			Cabinet:        cab,
			BudgetGrace:    opt.BudgetGrace,
			FailsafeBudget: opt.FailsafeBudget,
			CoordinatorDial: func() (net.Conn, error) {
				return coordNet.Dial(context.Background(), uint64(cab))
			},
			RecordCycle: func(rec scenario.CycleRecord) {
				f.mu.Lock()
				f.recs[cab] = append(f.recs[cab], rec)
				f.mu.Unlock()
			},
		}
		if opt.CabOpts != nil {
			opt.CabOpts(cab, &o)
		}
		c := Start(t, o)
		f.Cabinets = append(f.Cabinets, c)
		// Bring the cabinet to steady state — agents registered, first
		// grant applied — before booting the next one. Each cluster's
		// goroutine-leak baseline is snapshotted at its Start, so the
		// previous cabinets' asynchronously-spawned connection goroutines
		// must all exist by then or teardown misreads them as leaks.
		c.AwaitAgents(o.Agents, 30*time.Second)
		WaitUntil(t, 30*time.Second, func() bool {
			return c.Status().Governed
		}, "cabinet %d never went governed", cab)
	}
	return f
}

// Records returns a copy of cabinet cab's Algorithm-1 cycle trace so far.
func (f *Federation) Records(cab int) []scenario.CycleRecord {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]scenario.CycleRecord, len(f.recs[cab]))
	copy(out, f.recs[cab])
	return out
}

// AwaitGoverned waits until every cabinet manager reports running under
// a live coordinator grant and the coordinator sees every cabinet live.
func (f *Federation) AwaitGoverned(timeout time.Duration) {
	f.t.Helper()
	WaitUntil(f.t, timeout, func() bool {
		for _, c := range f.Cabinets {
			if !c.Status().Governed {
				return false
			}
		}
		live := 0
		for _, cs := range f.Coord.CabinetStates() {
			if cs.Live {
				live++
			}
		}
		return live == f.Opt.Cabinets
	}, "federation never fully governed (%d cabinets)", f.Opt.Cabinets)
}

// PartitionCabinet blackholes cabinet cab's coordinator link in both
// directions: reports stop arriving and grants stop flowing, with
// neither side seeing an error — pure silence, the dead-man case.
func (f *Federation) PartitionCabinet(cab int) {
	f.CoordNet.Partition(uint64(cab), true, true)
}

// HealCabinet lifts the partition. The cabinet's federation client is
// usually still blocked on the dead link; the next report write or
// redial re-subscribes it.
func (f *Federation) HealCabinet(cab int) {
	f.CoordNet.Heal(uint64(cab))
}
