package harness

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// TestManagerKillFailSafeWarmStandby is the high-availability acceptance
// scenario (experiment E13): same fleet and thresholds as
// TestManagerKillFailSafe, but with a warm standby replicating the
// primary's journal and watching its lease. Killing the primary mid-cap
// must promote the standby within one failsafe grace window, so the cap
// holds continuously and NO agent ever trips its dead-man switch — the
// fleet never free-falls to the failsafe floor. Runs in -short (CI wires
// it under -race and exports the E13 takeover-latency artifact).
func TestManagerKillFailSafeWarmStandby(t *testing.T) {
	const (
		agents     = 16
		missBudget = 4
	)
	lease := filepath.Join(t.TempDir(), "lease.json")
	c := Start(t, Options{
		Agents:         agents,
		Seed:           11,
		Thresholds:     failsafeThresholds,
		CommandTimeout: 100 * time.Millisecond,
		FailsafeAfter:  8, // grace 400ms: far above takeover, far below test noise
		FailsafeLevel:  0,
		LeasePath:      lease,
		LeaseEvery:     15 * time.Millisecond,
		Epoch:          1,
	})
	grace := time.Duration(c.Opt.FailsafeAfter) * c.Opt.SampleEvery
	c.AwaitAgents(agents, 20*time.Second)

	// Warm standby up; wait until it replicates live: the follower is
	// registered, the red fleet has forced capping entries into the
	// journal, and replication lag is within one control cycle (the
	// paper's bound for a takeover that cannot lose commands).
	sb := c.StartStandby(missBudget)
	WaitUntil(t, 20*time.Second, func() bool {
		st := c.Status()
		return st.ReplicaConns >= 1 && st.DegradeOps >= 1 &&
			st.JournalAppends >= 1 && st.ReplicaLagEntries <= 1
	}, "standby never caught up while capping: %+v", c.Status())
	if sb.Standby.Store().Seq() == 0 {
		t.Fatalf("standby store empty despite drained lag")
	}

	// Kill the primary mid-spike. The standby must declare death via the
	// lease, bump the epoch, and bring a replacement manager up — all
	// inside one grace window, so the parked agent redials land on the
	// new leader before any dead-man switch fires.
	killed := time.Now()
	c.StopManager()
	c.AwaitTakeover(sb, grace)
	takeover := time.Since(killed)
	t.Logf("takeover in %v (grace %v)", takeover.Round(time.Millisecond), grace)

	// The whole fleet re-registers with the promoted leader and the cap
	// settles below P_H — continuity, not free-fall.
	c.AwaitAgents(agents, 20*time.Second)
	c.AwaitSettledBelow(float64(failsafeThresholds.PH), 5, 30*time.Second)
	for i, a := range c.Agents {
		if a.Tripped() || a.FailsafeTrips() > 0 {
			t.Errorf("agent %d tripped its dead-man switch across the failover (trips %d)",
				i, a.FailsafeTrips())
		}
	}
	st := c.Status()
	if st.Epoch < 2 || !st.Leader {
		t.Fatalf("promoted manager not leading at a fenced epoch: %+v", st)
	}
	if st.LastTakeoverMicros <= 0 {
		t.Errorf("takeover latency not recorded: %+v", st)
	}
	t.Logf("post-takeover: status %+v", st)

	// E13 artifact: takeover latency vs the grace window.
	if out := os.Getenv("E13_OUT"); out != "" {
		b, _ := json.MarshalIndent(map[string]any{
			"experiment":        "E13-manager-failover",
			"agents":            agents,
			"grace_ms":          grace.Milliseconds(),
			"takeover_ms":       takeover.Milliseconds(),
			"leaderless_us":     st.LastTakeoverMicros,
			"lease_every_ms":    c.Opt.LeaseEvery.Milliseconds(),
			"lease_miss_budget": missBudget,
			"epoch":             st.Epoch,
			"failsafe_trips":    0,
		}, "", "  ")
		if err := os.WriteFile(out, append(b, '\n'), 0o644); err != nil {
			t.Errorf("E13_OUT: %v", err)
		}
	}
}

// TestForcedPromotionDeposesPrimary drives the controlled-failover half:
// promoting the standby while the primary is perfectly healthy. The
// standby claims the lease at a higher epoch; the primary must read it,
// self-fence (depose, shed its agents), and the fleet must migrate to
// the new leader with its levels intact.
func TestForcedPromotionDeposesPrimary(t *testing.T) {
	const agents = 8
	lease := filepath.Join(t.TempDir(), "lease.json")
	c := Start(t, Options{
		Agents:         agents,
		Seed:           13,
		Thresholds:     failsafeThresholds,
		CommandTimeout: 100 * time.Millisecond,
		LeasePath:      lease,
		LeaseEvery:     15 * time.Millisecond,
		Epoch:          1,
	})
	c.AwaitAgents(agents, 20*time.Second)
	sb := c.StartStandby(4)
	WaitUntil(t, 20*time.Second, func() bool {
		return c.Status().ReplicaConns >= 1
	}, "standby never connected: %+v", c.Status())

	old := c.Server
	c.PromoteStandby(sb)
	c.AwaitTakeover(sb, 10*time.Second)

	// The deposed primary notices the claimed lease and steps down.
	WaitUntil(t, 10*time.Second, func() bool {
		return old.Deposed() && !old.Status().Leader
	}, "primary never self-fenced on the claimed lease")
	c.AwaitAgents(agents, 20*time.Second)
	if st := c.Status(); st.Epoch != 2 || !st.Leader {
		t.Fatalf("promoted leader status: %+v", st)
	}
	old.Stop()
}
