package harness

import (
	"path/filepath"
	"testing"
	"time"

	"repro/internal/faultnet"
	"repro/internal/managerd"
	"repro/internal/power"
	"repro/internal/units"
)

// failsafeThresholds scales chaosThresholds to a 16-agent fleet: natural
// uncapped draw ≈ 4.2 kW, floored draw ≈ 2.5 kW.
var failsafeThresholds = power.Thresholds{PL: 3000, PH: 3750}

// TestManagerKillFailSafe is the control-plane-death acceptance scenario:
// with every agent's dead-man switch armed, killing the manager must
// drive the whole fleet to the failsafe floor within the grace window —
// the cap holds with zero managers alive — and a manager restart must
// adopt the self-degraded fleet and restore it. Runs in -short (CI wires
// it under -race).
func TestManagerKillFailSafe(t *testing.T) {
	const agents = 16
	c := Start(t, Options{
		Agents:         agents,
		Seed:           11,
		Thresholds:     failsafeThresholds,
		CommandTimeout: 100 * time.Millisecond,
		FailsafeAfter:  4,
		FailsafeLevel:  0,
	})
	c.AwaitAgents(agents, 20*time.Second)
	grace := time.Duration(c.Opt.FailsafeAfter) * c.Opt.SampleEvery

	// Phase A: the manager is alive and mostly green (commands are rare),
	// so for stretches far longer than the grace window the only manager
	// traffic agents see is heartbeats. No dead-man switch may fire.
	c.AwaitSettledBelow(float64(failsafeThresholds.PH), 5, 30*time.Second)
	time.Sleep(4 * grace)
	for i, a := range c.Agents {
		if a.FailsafeTrips() > 0 {
			t.Fatalf("agent %d tripped under a live manager", i)
		}
	}

	// Phase B: kill the manager. Every agent must self-degrade to the
	// failsafe floor within the grace window (plus redial/scheduler
	// slack); the floored fleet (~2.5 kW) sits below P_H by construction.
	killed := time.Now()
	c.StopManager()
	WaitUntil(t, grace+2*time.Second, func() bool {
		for _, a := range c.Agents {
			if a.Level() != c.Opt.FailsafeLevel || !a.Tripped() {
				return false
			}
		}
		return true
	}, "fleet never reached the failsafe floor (levels %v)", c.Levels())
	t.Logf("manager kill → all %d agents at floor %d in %v (grace %v)",
		agents, c.Opt.FailsafeLevel, time.Since(killed).Round(time.Millisecond), grace)

	// Phase C: restart. The new manager must see the whole fleet, hold the
	// cap (first estimates come from the floored fleet), adopt the
	// self-degraded nodes and restore them via steady green.
	c.StartManager()
	WaitUntil(t, 20*time.Second, func() bool {
		st := c.Status()
		return st.Agents == agents && st.LastPowerW > 0
	}, "restarted manager never saw the fleet (have %d)", c.Status().Agents)
	if st := c.Status(); st.LastPowerW > float64(failsafeThresholds.PH) {
		t.Errorf("floored fleet above P_H after restart: %+v", st)
	}
	WaitUntil(t, 20*time.Second, func() bool {
		for _, a := range c.Agents {
			if a.Tripped() {
				return false
			}
		}
		return c.MinLevel() > c.Opt.FailsafeLevel
	}, "fleet never restored from the failsafe floor (levels %v)", c.Levels())
	c.AwaitSettledBelow(float64(failsafeThresholds.PH), 5, 30*time.Second)
	t.Logf("post-restart: status %+v", c.Status())
}

// TestManagerRestartFromJournal proves crash recovery: a trained, capping
// manager is killed and restarted with an hour-long training window — only
// the journal can arm capping — and must resume immediately, reconciling
// the levels the fleet drifted to during the outage (the dead-man switches
// floored it), all under a 5% drop profile with partition rounds.
func TestManagerRestartFromJournal(t *testing.T) {
	const agents = 16
	jp := filepath.Join(t.TempDir(), "managerd.journal")
	c := Start(t, Options{
		Agents:         agents,
		Seed:           7,
		Thresholds:     power.Thresholds{PL: 1e6, PH: 2e6}, // superseded by the learner
		CommandTimeout: 100 * time.Millisecond,
		FailsafeAfter:  4,
		FailsafeLevel:  0,
		JournalPath:    jp,
		JournalEvery:   2,
		Learn:          &managerd.LearnConfig{PMax: units.KW(10), Training: 500 * time.Millisecond, AdjustEvery: 10},
		AgentProfile:   faultnet.Profile{DropProb: 0.05, FirstWriteClean: true},
	})
	c.AwaitAgents(agents, 20*time.Second)

	// Partition rounds while the first life trains and caps.
	for r := 0; r < 2; r++ {
		a := uint64(2 * r)
		b := a + 1
		c.Net.Partition(a, true, true)
		c.Net.Partition(b, true, true)
		time.Sleep(8 * c.Opt.ControlEvery)
		c.Net.Heal(a)
		c.Net.Heal(b)
		time.Sleep(4 * c.Opt.ControlEvery)
	}
	// First life must finish training, cap the fleet, and then recover it
	// off the floor (MinLevel > 0) before the kill: that leaves journaled
	// levels above the failsafe floor, so the outage creates real drift.
	WaitUntil(t, 30*time.Second, func() bool {
		st := c.Status()
		return st.Trained && st.JournalWrites >= 1 && st.DegradeOps >= 1 &&
			st.CommandAcks >= 1 && c.MinLevel() > 0
	}, "first life never trained+capped+journaled: %+v", c.Status())
	firstThr := c.Status().ThresholdPHW

	// Outage: the dead-man switches floor the fleet, so the levels on
	// record in the journal no longer match reality.
	c.StopManager()
	WaitUntil(t, 10*time.Second, func() bool {
		for _, a := range c.Agents {
			if !a.Tripped() {
				return false
			}
		}
		return true
	}, "dead-man switches never floored the fleet (levels %v)", c.Levels())

	// Restart with a training window no test could sit out: capping is
	// armed iff the journal restored the trained learner.
	c.Opt.Learn = &managerd.LearnConfig{PMax: units.KW(10), Training: time.Hour, AdjustEvery: 10}
	c.StartManager()
	st := c.Status()
	if !st.Trained {
		t.Fatalf("restarted manager not trained from journal: %+v", st)
	}
	if st.ThresholdPHW >= 1e6 || st.ThresholdPHW != firstThr {
		t.Errorf("restart lost the learned thresholds: have %.0f, want %.0f", st.ThresholdPHW, firstThr)
	}

	// One more partition round against the second life, then the fleet
	// must converge: every reconnecting agent reconciled (reported level
	// back in agreement with the last command), no retraining.
	c.Net.Partition(4, true, true)
	time.Sleep(8 * c.Opt.ControlEvery)
	c.Net.Heal(4)
	WaitUntil(t, 30*time.Second, func() bool {
		st := c.Status()
		return st.Agents == agents && st.Reconciles >= 1 && st.Drifted == 0
	}, "second life never reconciled the drifted fleet: %+v", c.Status())
	if st := c.Status(); !st.Trained {
		t.Errorf("manager lost trained state while reconciling: %+v", st)
	}
	t.Logf("post-restart: status %+v", c.Status())
}
