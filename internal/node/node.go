// Package node models a compute node of the cluster: its devices, its
// discrete power level (actuated by switching the DVFS operating point of
// all cores synchronously, as on the paper's testbed), its simulated kernel
// counters, and its true electrical draw.
//
// The node keeps two views of its state deliberately separate:
//
//   - the *true* operating point (load fractions set by the workload layer
//     each tick) from which true power is derived, and
//   - the procfs counters a profiling agent samples, from which the power
//     manager *estimates* power via formula (1).
//
// A small per-node distortion between the two reproduces the reality that
// the profile model is only "accurate enough for power management"
// (Observability, §II.D) rather than exact.
package node

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/power"
	"repro/internal/procfs"
	"repro/internal/units"
)

// ID identifies a node within the cluster.
type ID int

// Load is a node's instantaneous resource operating point, produced by the
// workload layer every tick.
type Load struct {
	CPUUtil float64 // busy fraction of all cores, [0,1]
	MemFrac float64 // fraction of installed memory in use, [0,1]
	NICFrac float64 // fraction of NIC bandwidth in use, [0,1]
}

// clamp bounds every fraction to [0,1].
func (l Load) clamp() Load {
	return Load{
		CPUUtil: units.Clamp(l.CPUUtil, 0, 1),
		MemFrac: units.Clamp(l.MemFrac, 0, 1),
		NICFrac: units.Clamp(l.NICFrac, 0, 1),
	}
}

// IsIdle reports whether the load is negligible on every device.
func (l Load) IsIdle() bool {
	return l.CPUUtil < 0.01 && l.NICFrac < 0.01
}

// Node is one compute node.
type Node struct {
	id           ID
	model        power.Model
	controllable bool
	// pinned marks temporary privilege: the node currently runs a
	// high-priority job and must not be degraded (§II.A). Pinning is
	// orthogonal to the static controllable flag — the candidate set
	// "may vary during the execution of the system since the tasks
	// running on a node may change".
	pinned bool

	level int
	load  Load
	fs    *procfs.FS

	// distortion is the fixed relative error of the node's true draw
	// against the profile model; jitterSigma adds per-read flicker.
	distortion  float64
	jitterSigma float64
	rng         *rand.Rand

	// thermalFactor is the temperature-driven power multiplier (≥ 1)
	// applied by the thermal feedback loop; 1 when thermal modelling is
	// off.
	thermalFactor float64
}

// Config parametrises node construction.
type Config struct {
	Model power.Model
	// Controllable marks the node as a member of A_candidate material;
	// privileged nodes (A_uncontrollable) are built with false.
	Controllable bool
	// ModelError is the maximal fixed relative distortion between true
	// power and the profile model (a value in [0,1), drawn uniformly in
	// ±ModelError per node). Zero yields a perfectly modelled node.
	ModelError float64
	// JitterSigma is the relative σ of per-read power flicker.
	JitterSigma float64
	// Rng drives the distortion draw and flicker; nil disables both.
	Rng *rand.Rand
}

// New constructs a node at the top power level with no load.
func New(id ID, cfg Config) (*Node, error) {
	if err := cfg.Model.Validate(); err != nil {
		return nil, fmt.Errorf("node %d: %w", id, err)
	}
	if cfg.ModelError < 0 || cfg.ModelError >= 1 {
		return nil, fmt.Errorf("node %d: ModelError %v out of [0,1)", id, cfg.ModelError)
	}
	n := &Node{
		id:           id,
		model:        cfg.Model,
		controllable: cfg.Controllable,
		level:        cfg.Model.Levels() - 1,
		fs:           procfs.New(cfg.Model.Mem.TotalBytes),
		jitterSigma:  cfg.JitterSigma,
		rng:          cfg.Rng,
	}
	n.thermalFactor = 1
	if cfg.Rng != nil && cfg.ModelError > 0 {
		n.distortion = (cfg.Rng.Float64()*2 - 1) * cfg.ModelError
	}
	return n, nil
}

// SetThermalFactor installs the temperature→power feedback multiplier
// (§I.A: hotter silicon leaks more at the same performance state).
// Factors below 1 are clamped to 1.
func (n *Node) SetThermalFactor(f float64) {
	if f < 1 {
		f = 1
	}
	n.thermalFactor = f
}

// ID returns the node's identifier.
func (n *Node) ID() ID { return n.id }

// Model returns the node's power profile model.
func (n *Node) Model() power.Model { return n.model }

// Controllable reports whether the node may appear in A_candidate. Nodes
// with no power management facility, statically privileged nodes, and
// nodes currently pinned by a high-priority job return false (§II.A).
func (n *Node) Controllable() bool { return n.controllable && !n.pinned }

// SetControllable updates the static privileged/candidate classification;
// §III.A notes the candidate set "can be adjusted during the execution of
// the system".
func (n *Node) SetControllable(c bool) { n.controllable = c }

// Pinned reports whether a high-priority job currently holds the node out
// of A_candidate.
func (n *Node) Pinned() bool { return n.pinned }

// SetPinned toggles temporary privilege. The scheduler pins member nodes
// of high-priority jobs for the jobs' lifetime.
func (n *Node) SetPinned(p bool) { n.pinned = p }

// Levels returns the number of discrete power levels.
func (n *Node) Levels() int { return n.model.Levels() }

// Level returns the current power level (0 = lowest).
func (n *Node) Level() int { return n.level }

// AtLowest reports whether the node cannot be degraded further.
func (n *Node) AtLowest() bool { return n.level == 0 }

// AtHighest reports whether the node is at full performance.
func (n *Node) AtHighest() bool { return n.level == n.model.Levels()-1 }

// ErrUncontrollable is returned when a level change is attempted on a
// privileged node.
var ErrUncontrollable = fmt.Errorf("node: level change on uncontrollable node")

// SetLevel actuates a power state change (a DVFS switch of all cores).
// Levels outside the table are clamped. Privileged nodes refuse.
func (n *Node) SetLevel(l int) error {
	if !n.controllable || n.pinned {
		return fmt.Errorf("%w (node %d)", ErrUncontrollable, n.id)
	}
	if l < 0 {
		l = 0
	}
	if max := n.model.Levels() - 1; l > max {
		l = max
	}
	n.level = l
	return nil
}

// SlowdownFactor returns f(level)/f(max) for workload progress scaling.
func (n *Node) SlowdownFactor() float64 { return n.model.CPU.SlowdownFactor(n.level) }

// SetLoad installs the instantaneous operating point for the next tick.
func (n *Node) SetLoad(l Load) { n.load = l.clamp() }

// Load returns the current operating point.
func (n *Node) Load() Load { return n.load }

// Idle reports whether the node currently carries negligible load.
func (n *Node) Idle() bool { return n.load.IsIdle() }

// Tick advances the simulated kernel counters by dt under the current load:
// CPU jiffies across all cores, memory occupancy, NIC byte counters at the
// used fraction of link bandwidth.
func (n *Node) Tick(dt time.Duration) {
	n.fs.AccountCPU(dt, n.model.CPU.Cores(), n.load.CPUUtil)
	n.fs.SetMemUsed(uint64(n.load.MemFrac * float64(n.model.Mem.TotalBytes)))
	bytes := n.load.NICFrac * float64(n.model.NIC.Bandwidth) * dt.Seconds()
	half := uint64(bytes / 2)
	n.fs.AccountNet(half, uint64(bytes)-half)
}

// Snapshot reads the node's kernel counters, as the profiling agent does.
func (n *Node) Snapshot(at time.Duration) procfs.Snapshot { return n.fs.Snapshot(at) }

// TruePower returns the node's present electrical draw: the profile model
// evaluated at the true operating point, warped by the node's fixed model
// distortion and per-read flicker.
func (n *Node) TruePower() units.Watts {
	p := float64(n.model.Instant(n.load.CPUUtil, n.load.MemFrac, n.load.NICFrac, n.level))
	p *= (1 + n.distortion) * n.thermalFactor
	if n.rng != nil && n.jitterSigma > 0 {
		p *= 1 + n.rng.NormFloat64()*n.jitterSigma
	}
	if p < 0 {
		p = 0
	}
	return units.Watts(p)
}

// MaxPower returns the node's theoretical maximal draw P_i (for P_thy).
func (n *Node) MaxPower() units.Watts {
	return units.Watts(float64(n.model.MaxPower()) * (1 + n.distortion))
}
