package node

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/power"
	"repro/internal/procfs"
	"repro/internal/units"
)

func newTestNode(t *testing.T, id ID, cfg Config) *Node {
	t.Helper()
	if cfg.Model.CPU.Sockets == 0 {
		cfg.Model = power.TianheNode()
	}
	n, err := New(id, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestNewDefaults(t *testing.T) {
	n := newTestNode(t, 7, Config{Controllable: true})
	if n.ID() != 7 {
		t.Errorf("id = %v", n.ID())
	}
	if !n.AtHighest() {
		t.Error("new node not at highest level")
	}
	if n.Level() != 9 {
		t.Errorf("level = %d, want 9", n.Level())
	}
	if !n.Idle() {
		t.Error("new node not idle")
	}
	if n.Levels() != 10 {
		t.Errorf("levels = %d", n.Levels())
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(0, Config{}); err == nil {
		t.Error("zero model accepted")
	}
	if _, err := New(0, Config{Model: power.TianheNode(), ModelError: 1.5}); err == nil {
		t.Error("ModelError ≥ 1 accepted")
	}
}

func TestSetLevelClamps(t *testing.T) {
	n := newTestNode(t, 0, Config{Controllable: true})
	if err := n.SetLevel(-5); err != nil {
		t.Fatal(err)
	}
	if !n.AtLowest() {
		t.Error("negative level not clamped to 0")
	}
	if err := n.SetLevel(100); err != nil {
		t.Fatal(err)
	}
	if !n.AtHighest() {
		t.Error("overlarge level not clamped to top")
	}
}

func TestUncontrollableRefusesLevelChange(t *testing.T) {
	n := newTestNode(t, 3, Config{Controllable: false})
	err := n.SetLevel(0)
	if !errors.Is(err, ErrUncontrollable) {
		t.Errorf("err = %v, want ErrUncontrollable", err)
	}
	if n.Level() != 9 {
		t.Error("level changed despite refusal")
	}
	n.SetControllable(true)
	if err := n.SetLevel(0); err != nil {
		t.Errorf("after SetControllable(true): %v", err)
	}
}

func TestTruePowerIdleVsBusy(t *testing.T) {
	n := newTestNode(t, 0, Config{Controllable: true})
	idle := n.TruePower()
	n.SetLoad(Load{CPUUtil: 1, MemFrac: 0.5, NICFrac: 0.3})
	busy := n.TruePower()
	if busy <= idle {
		t.Errorf("busy %v not above idle %v", busy, idle)
	}
}

func TestTruePowerFallsWithLevel(t *testing.T) {
	n := newTestNode(t, 0, Config{Controllable: true})
	n.SetLoad(Load{CPUUtil: 0.9, MemFrac: 0.5, NICFrac: 0.2})
	prev := n.TruePower()
	for l := n.Levels() - 2; l >= 0; l-- {
		if err := n.SetLevel(l); err != nil {
			t.Fatal(err)
		}
		cur := n.TruePower()
		if cur >= prev {
			t.Errorf("power did not fall moving to level %d: %v → %v", l, prev, cur)
		}
		prev = cur
	}
}

func TestTruePowerDeterministicWithoutRng(t *testing.T) {
	n := newTestNode(t, 0, Config{Controllable: true})
	n.SetLoad(Load{CPUUtil: 0.5})
	if n.TruePower() != n.TruePower() {
		t.Error("power flickers with no rng configured")
	}
}

func TestModelErrorBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 50; i++ {
		n := newTestNode(t, ID(i), Config{Controllable: true, ModelError: 0.03, Rng: rng})
		n.SetLoad(Load{CPUUtil: 1, MemFrac: 1, NICFrac: 1})
		est := float64(n.Model().Instant(1, 1, 1, n.Level()))
		truth := float64(n.TruePower())
		if rel := math.Abs(truth-est) / est; rel > 0.031 {
			t.Errorf("node %d distortion %.4f exceeds configured 3%%", i, rel)
		}
	}
}

func TestSlowdownFactor(t *testing.T) {
	n := newTestNode(t, 0, Config{Controllable: true})
	if n.SlowdownFactor() != 1 {
		t.Error("slowdown at top level != 1")
	}
	n.SetLevel(0)
	want := 1.60 / 2.93
	if got := n.SlowdownFactor(); math.Abs(got-want) > 1e-9 {
		t.Errorf("slowdown at bottom = %v", got)
	}
}

func TestTickDrivesProcCounters(t *testing.T) {
	n := newTestNode(t, 0, Config{Controllable: true})
	prev := n.Snapshot(0)
	n.SetLoad(Load{CPUUtil: 0.5, MemFrac: 0.25, NICFrac: 0.1})
	for i := 0; i < 10; i++ {
		n.Tick(100 * time.Millisecond)
	}
	cur := n.Snapshot(time.Second)
	d, err := procfs.Diff(prev, cur)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.CPUUtil-0.5) > 0.02 {
		t.Errorf("agent-visible util = %v, want ≈0.5", d.CPUUtil)
	}
	memFrac := float64(d.MemUsed) / float64(d.MemTotal)
	if math.Abs(memFrac-0.25) > 0.01 {
		t.Errorf("mem frac = %v", memFrac)
	}
	nicFrac := float64(d.NICBytes) / float64(n.Model().NIC.Bandwidth)
	if math.Abs(nicFrac-0.1) > 0.01 {
		t.Errorf("nic frac over 1 s = %v, want ≈0.1", nicFrac)
	}
}

func TestAgentEstimateTracksTruePower(t *testing.T) {
	// End-to-end sensing: load → tick → snapshot deltas → formula (1)
	// must reproduce true power exactly when ModelError is zero.
	n := newTestNode(t, 0, Config{Controllable: true})
	n.SetLoad(Load{CPUUtil: 0.8, MemFrac: 0.6, NICFrac: 0.2})
	prev := n.Snapshot(0)
	n.Tick(time.Second)
	cur := n.Snapshot(time.Second)
	d, err := procfs.Diff(prev, cur)
	if err != nil {
		t.Fatal(err)
	}
	est := n.Model().Estimate(d, n.Level())
	truth := n.TruePower()
	if !units.ApproxEqual(float64(est), float64(truth), 0.01) {
		t.Errorf("estimate %v vs true %v", est, truth)
	}
}

func TestLoadClamp(t *testing.T) {
	n := newTestNode(t, 0, Config{Controllable: true})
	n.SetLoad(Load{CPUUtil: 3, MemFrac: -2, NICFrac: 1.5})
	got := n.Load()
	if got.CPUUtil != 1 || got.MemFrac != 0 || got.NICFrac != 1 {
		t.Errorf("load not clamped: %+v", got)
	}
}

func TestLoadIsIdle(t *testing.T) {
	if !(Load{}).IsIdle() {
		t.Error("zero load not idle")
	}
	if (Load{CPUUtil: 0.5}).IsIdle() {
		t.Error("busy load reported idle")
	}
	if !(Load{MemFrac: 0.9}).IsIdle() {
		t.Error("memory-only residency should still count as idle (no active work)")
	}
}

func TestMaxPower(t *testing.T) {
	n := newTestNode(t, 0, Config{Controllable: true})
	if n.MaxPower() != n.Model().MaxPower() {
		t.Error("undistorted MaxPower mismatch")
	}
}

// Property: TruePower is always within the model's [0, MaxPower·(1+err)]
// envelope for any load and level.
func TestTruePowerEnvelopeProperty(t *testing.T) {
	model := power.TianheNode()
	rng := rand.New(rand.NewSource(9))
	n, err := New(0, Config{Model: model, Controllable: true, ModelError: 0.05, Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	f := func(cu, mf, nf float64, lvl uint8) bool {
		n.SetLoad(Load{CPUUtil: math.Abs(math.Mod(cu, 1)), MemFrac: math.Abs(math.Mod(mf, 1)), NICFrac: math.Abs(math.Mod(nf, 1))})
		n.SetLevel(int(lvl) % n.Levels())
		p := float64(n.TruePower())
		return p >= 0 && p <= float64(model.MaxPower())*1.06
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPinnedNode(t *testing.T) {
	n := newTestNode(t, 0, Config{Controllable: true})
	if n.Pinned() {
		t.Error("fresh node pinned")
	}
	n.SetPinned(true)
	if n.Controllable() {
		t.Error("pinned node reports controllable")
	}
	if err := n.SetLevel(0); !errors.Is(err, ErrUncontrollable) {
		t.Errorf("pinned node accepted level change: %v", err)
	}
	n.SetPinned(false)
	if !n.Controllable() {
		t.Error("unpinned node not controllable")
	}
	if err := n.SetLevel(0); err != nil {
		t.Errorf("unpinned node refused level change: %v", err)
	}
	// Pinning never makes a statically privileged node controllable.
	p := newTestNode(t, 1, Config{Controllable: false})
	p.SetPinned(false)
	if p.Controllable() {
		t.Error("static privilege overridden by unpin")
	}
}
