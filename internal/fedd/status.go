package fedd

import (
	"time"

	"repro/internal/wire"
)

// Status serving. A powctl (or any probe) sends KindStatus and gets one
// reply, exactly as against a managerd — but a coordinator marks its
// reply with Node == CoordinatorNode and attaches one Batch row per
// known child, so the same CLI can render either daemon without knowing
// in advance which it dialled.

// CoordinatorNode is the Node value stamped on a coordinator's status
// reply, distinguishing it from a manager's (whose Node is never
// negative). Child subscriptions reject negative indices, so the marker
// can never collide with a real child.
const CoordinatorNode = -1

// StatusEnvelope assembles the coordinator's status reply: the
// aggregate StatusReply plus one cab_report-shaped Batch row per child
// (its Level field carries 0/1 liveness, its Codec the session's
// negotiated codec).
func (s *Server) StatusEnvelope() wire.Envelope {
	children := s.grantor.States()
	band := s.band(time.Now())

	st := wire.StatusReply{
		ThresholdPLW: float64(band.PL),
		ThresholdPHW: float64(band.PH),

		Epoch:              int(s.epoch),
		Leader:             !s.deposed.Load(),
		Cabinet:            s.cfg.Row,
		Governed:           s.Governed(),
		LastTakeoverMicros: s.lastTakeoverG.Int(),
	}
	conns, lag := s.pub.Stats()
	st.ReplicaConns = conns
	st.ReplicaLagEntries = int(lag)
	st.JournalAppends = int(s.journalAppendsC.Value())
	st.FencedHellos = int(s.fencedHellosC.Value())
	st.BudgetGrants = int(s.budgetGrantsC.Value())
	st.BudgetFloors = int(s.budgetFloorsC.Value())
	st.DecodeErrors = int(s.decodeErrsC.Value())

	if v, ok := s.reg.Value("cycles"); ok {
		st.Cycles = int(v)
	}
	if v, ok := s.reg.Value("fleet_power_w"); ok {
		st.LastPowerW = v
	}
	if v, ok := s.reg.Value("fleet_demand_w"); ok {
		st.DemandW = v
	}
	if v, ok := s.reg.Value("last_cycle_micros"); ok {
		st.LastCycleMicros = int64(v)
	}

	env := wire.Envelope{Type: wire.KindStatus, Node: CoordinatorNode, Stats: &st}
	env.Batch = make([]wire.Envelope, 0, len(children))
	var binConns, jsonConns int
	for _, c := range children {
		st.Agents += c.Agents
		st.HealthyNodes += c.Healthy
		if !c.Live {
			st.LostNodes++
		}
		live := 0
		if c.Live {
			live = 1
		}
		switch c.Codec {
		case wire.CodecBinary:
			binConns++
		case wire.CodecJSON:
			jsonConns++
		}
		env.Batch = append(env.Batch, wire.Envelope{
			Type: wire.KindCabReport, Node: c.Child,
			Level:   live,
			Codec:   c.Codec,
			PowerW:  c.PowerW,
			DemandW: c.DemandW,
			BudgetW: c.GrantW,
			PHW:     c.GrantPHW,
			Seq:     c.GrantSeq,
			Epoch:   c.Epoch,
			Agents:  c.Agents,
			Healthy: c.Healthy,
		})
	}
	st.BinaryConns = binConns
	st.JSONConns = jsonConns
	return env
}
