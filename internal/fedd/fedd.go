// Package fedd implements a coordinator tier of the capping federation:
// one daemon owning a power budget over a fleet of children — governed
// cabinet managers (internal/managerd), or further fedd coordinators in
// a deeper tree.
//
// Each child dials in and subscribes with a cab_report frame, then
// streams one report per control cycle: its sensed aggregate power, its
// uncapped full-level demand estimate, the band it currently enforces
// and its fleet tallies. Every coordinator cycle the daemon classifies
// children live or lost by report freshness, re-divides its budget
// across the live ones with the shared division library
// (internal/budget), and sends each live child a cab_budget grant
// naming its new band. Grants double as heartbeats: a child that stops
// receiving them floors itself locally, and a lost child's budget —
// minus a reserved floor for whatever it still draws while flooring —
// is re-divided among the survivors on the very next cycle. All of that
// machinery is internal/tier's Grantor; this package is the daemon
// around it.
//
// The seam is recursive. In row mode (ParentAddr/ParentDial set) the
// coordinator also embeds a tier.Governor: it reports its fleet
// aggregate upward to a facility coordinator and divides whatever band
// it is granted — or its failsafe band, once the parent has been silent
// past the grace window — so a facility → row → cabinet → node tree is
// the same two frame kinds on every edge, which is the paper's pdist
// topology made control-plane structure.
//
// Coordinator HA mirrors managerd's: grants are journalled through
// internal/replica (each child's granted watts as a journal level), a
// warm standby replicates the journal over KindJournalAppend frames and
// takes over under a bumped epoch when the leadership lease goes stale.
// A promoted coordinator seeds its grantor from the journal, so every
// child that was healthy when the old leader died keeps its share
// reserved until it redials — takeover stays invisible below
// StaleAfter, and no cabinet floors.
package fedd

import (
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/budget"
	"repro/internal/obs"
	"repro/internal/power"
	"repro/internal/replica"
	"repro/internal/tier"
	"repro/internal/units"
	"repro/internal/wire"
)

// Config parametrises the coordinator.
type Config struct {
	// Addr is the TCP listen address for child subscriptions. Port 0
	// selects an ephemeral port (see Server.Addr).
	Addr string
	// Listener, when non-nil, is served instead of binding Addr (the
	// harness hands over a fault-injecting in-memory listener). The
	// server takes ownership and closes it on Stop.
	Listener net.Listener
	// Budget is the global lower threshold: the sum of all grants' P_L
	// never exceeds it. In row mode it is the band divided before the
	// first parent grant arrives.
	Budget units.Watts
	// PH is the global upper threshold. Each grant's P_H scales from its
	// P_L by the current band's PH/PL ratio, so child headroom mirrors
	// its parent's.
	PH units.Watts
	// Division selects the budget division strategy (internal/budget):
	// Uniform, Proportional (to reported demand) or FairShare.
	Division budget.Division
	// ControlEvery is the coordinator cycle period; every cycle
	// re-divides the budget and sends one grant per live child.
	ControlEvery time.Duration
	// StaleAfter marks a child lost when its newest report is older
	// than this. Liveness is pure report freshness — a child whose
	// connection drops but whose last report is still fresh keeps its
	// budget share through the window, so a warm-standby takeover that
	// redials within it is invisible at this tier. Zero defaults to
	// 3 coordinator cycles.
	StaleAfter time.Duration
	// Breaker is the per-child circuit-breaker rating (pdist): a hard
	// cap on any single child's grant, whatever its demand. Zero means
	// unbounded.
	Breaker units.Watts
	// FloorW is the per-child weighting floor handed to the division (a
	// child with zero demand still gets this much weight), and the
	// amount reserved from the budget for each lost child — covering
	// what it draws while floored on its local failsafe. Zero disables
	// both.
	FloorW units.Watts
	// WireCodec mirrors managerd's: "binary" (and "") negotiates the
	// binary codec with children that advertise it; "json" pins JSON.
	WireCodec string
	// MetricsAddr, when non-empty, serves GET /metrics and GET
	// /debug/cycles for the coordinator registry on this address.
	MetricsAddr string
	// CycleHistory is how many staged cycle timelines to retain for
	// /debug/cycles; zero defaults to obs.DefaultCycleHistory.
	CycleHistory int

	// --- row mode (mid-tier coordinator under a parent) ---

	// ParentAddr is the facility coordinator's address; setting it (or
	// ParentDial) turns this coordinator into a row: Grantor to its
	// children, Governor under its parent.
	ParentAddr string
	// ParentDial, when non-nil, opens the parent connection instead of
	// dialling ParentAddr (tests inject fault-injecting dialers).
	ParentDial func() (net.Conn, error)
	// Row is this coordinator's child index under its parent.
	Row int
	// ReportEvery is the upward reporting period; zero defaults to
	// ControlEvery.
	ReportEvery time.Duration
	// BudgetGrace is how many control periods of parent silence are
	// tolerated before the row floors itself to FailsafeBudget; zero
	// defaults to 3.
	BudgetGrace int
	// FailsafeBudget is the band divided while the parent is silent past
	// the grace window. Zero-value defaults to {Budget, PH} — a row that
	// loses its facility falls back to its static budget.
	FailsafeBudget power.Thresholds

	// --- high availability (lease + replicated grant journal) ---

	// JournalPath, when non-empty, persists the grant journal (snapshot
	// + append log) so a restart or a promoted standby resumes knowing
	// the fleet it inherited. Ignored when Journal is set.
	JournalPath string
	// Journal, when non-nil, is an already-open store handed over by a
	// promoted standby (its replicated copy becomes the new leader's
	// journal).
	Journal *replica.Store
	// Lease, when non-nil, carries coordinator leadership: the server
	// renews it every lease period and self-deposes when a higher epoch
	// appears in it.
	Lease *replica.Lease
	// LeaseHolder names this server in the lease file.
	LeaseHolder string
	// Epoch fixes the leadership epoch. Zero with a Lease set claims the
	// epoch after whatever the lease file last recorded; the journal's
	// epoch is a floor either way. Zero without a Lease leaves HA off.
	Epoch uint64
	// CommandTimeout arms follower stream writes; zero defaults to
	// ControlEvery.
	CommandTimeout time.Duration
	// TakeoverMicros, set by a promoting standby, records how much
	// leaderless time the takeover absorbed (observability only).
	TakeoverMicros int64
}

// CabinetStatus is a point-in-time external view of one child, for
// tests and operator tooling. "Cabinet" is the protocol's word for
// "child" — at a facility coordinator the children are whole rows.
type CabinetStatus struct {
	Cabinet    int
	Live       bool
	Codec      string
	PowerW     float64
	DemandW    float64
	AppliedW   float64
	GrantW     float64
	GrantPHW   float64
	GrantSeq   uint64
	AppliedSeq uint64
	Agents     int
	Healthy    int
	Epoch      uint64
}

// Server is a running coordinator.
type Server struct {
	cfg Config
	ln  net.Listener

	grantor *tier.Grantor
	gov     *tier.Governor // nil unless row mode

	reg   *obs.Registry
	trace *obs.CycleRecorder

	journal *replica.Store
	pub     *replica.Publisher
	epoch   uint64
	deposed atomic.Bool
	cycleN  atomic.Int64

	journalAppendsC *obs.Counter
	fencedHellosC   *obs.Counter
	budgetGrantsC   *obs.Counter
	budgetFloorsC   *obs.Counter
	decodeErrsC     *obs.Counter
	epochG          *obs.Gauge
	leaderG         *obs.Gauge
	replicaConnsG   *obs.Gauge
	replicaLagG     *obs.Gauge
	lastTakeoverG   *obs.Gauge
	governedG       *obs.Gauge

	metricsLn  net.Listener
	metricsSrv *http.Server

	stopOnce sync.Once
	stopCh   chan struct{}
	wg       sync.WaitGroup
}

// New validates the configuration and creates an unstarted coordinator.
func New(cfg Config) (*Server, error) {
	if cfg.ControlEvery <= 0 {
		return nil, fmt.Errorf("fedd: need positive control period")
	}
	thr := power.Thresholds{PL: cfg.Budget, PH: cfg.PH}
	if err := thr.Validate(); err != nil {
		return nil, fmt.Errorf("fedd: global band: %w", err)
	}
	if !cfg.Division.Valid() {
		return nil, fmt.Errorf("fedd: unknown division %d", cfg.Division)
	}
	if cfg.Breaker < 0 || cfg.FloorW < 0 {
		return nil, fmt.Errorf("fedd: negative breaker or floor")
	}
	if cfg.StaleAfter <= 0 {
		cfg.StaleAfter = 3 * cfg.ControlEvery
	}
	switch cfg.WireCodec {
	case "", wire.CodecBinary, wire.CodecJSON:
	default:
		return nil, fmt.Errorf("fedd: unknown wire codec %q", cfg.WireCodec)
	}
	rowMode := cfg.ParentAddr != "" || cfg.ParentDial != nil
	if rowMode {
		if cfg.Row < 0 {
			return nil, fmt.Errorf("fedd: negative row index %d", cfg.Row)
		}
		if cfg.ReportEvery <= 0 {
			cfg.ReportEvery = cfg.ControlEvery
		}
		if cfg.BudgetGrace <= 0 {
			cfg.BudgetGrace = 3
		}
		if cfg.FailsafeBudget == (power.Thresholds{}) {
			cfg.FailsafeBudget = thr
		}
		if err := cfg.FailsafeBudget.Validate(); err != nil {
			return nil, fmt.Errorf("fedd: failsafe budget: %w", err)
		}
	}
	if cfg.CommandTimeout <= 0 {
		cfg.CommandTimeout = cfg.ControlEvery
	}

	reg := obs.NewRegistry()
	s := &Server{
		cfg:    cfg,
		reg:    reg,
		trace:  obs.NewCycleRecorder(cfg.CycleHistory, reg),
		stopCh: make(chan struct{}),

		journalAppendsC: reg.Counter("journal_appends"),
		fencedHellosC:   reg.Counter("fenced_hellos"),
		budgetGrantsC:   reg.Counter("budget_grants"),
		budgetFloorsC:   reg.Counter("budget_floors"),
		decodeErrsC:     reg.Counter("decode_errors"),
		epochG:          reg.Gauge("epoch"),
		leaderG:         reg.Gauge("leader"),
		replicaConnsG:   reg.Gauge("replica_conns"),
		replicaLagG:     reg.Gauge("replica_lag_entries"),
		lastTakeoverG:   reg.Gauge("last_takeover_micros"),
		governedG:       reg.Gauge("governed"),
	}
	reg.Gauge("row").SetInt(int64(cfg.Row))

	// The grant journal. Advisory like managerd's: a promoted standby
	// hands over its replicated copy, a path-configured one persists, and
	// everything else journals to a memory-only store (which still feeds
	// live followers).
	switch {
	case cfg.Journal != nil:
		s.journal = cfg.Journal
	default:
		j, err := replica.Open(cfg.JournalPath)
		if err != nil {
			return nil, fmt.Errorf("fedd: journal: %w", err)
		}
		s.journal = j
	}
	s.pub = replica.NewPublisher(s.journal, cfg.CommandTimeout)

	s.grantor = tier.NewGrantor(tier.GrantorConfig{
		Division:   cfg.Division,
		StaleAfter: cfg.StaleAfter,
		Breaker:    cfg.Breaker,
		Floor:      cfg.FloorW,
		WireCodec:  cfg.WireCodec,
		Band:       s.band,
		Reg:        reg,
		Trace:      s.trace,
		OnGrant: func(child int, grantW, phW float64, seq uint64) {
			s.journal.SetLevel(child, int(grantW+0.5))
		},
	})
	s.reg.Gauge("budget_w").Set(float64(cfg.Budget))

	if rowMode {
		s.gov = tier.NewGovernor(tier.GovernorConfig{
			Parent:      cfg.ParentAddr,
			Dial:        cfg.ParentDial,
			Child:       cfg.Row,
			ReportEvery: cfg.ReportEvery,
			Grace:       time.Duration(cfg.BudgetGrace) * cfg.ControlEvery,
			Failsafe:    cfg.FailsafeBudget,
			Initial:     thr,
			WireCodec:   cfg.WireCodec,
			Snapshot:    s.rowSnapshot,
			OnGrant: func() {
				s.budgetGrantsC.Inc()
				s.governedG.Set(1)
			},
			OnFloor: func() {
				s.budgetFloorsC.Inc()
				s.governedG.Set(0)
			},
			OnDecodeError: func() { s.decodeErrsC.Inc() },
		})
	}

	// Leadership epoch: explicit config wins; otherwise a lease implies
	// HA, so claim the epoch after whatever the lease file last recorded.
	// The journal's epoch (e.g. a handed-over replica copy) is a floor.
	epoch := cfg.Epoch
	if epoch == 0 && cfg.Lease != nil {
		if st, err := cfg.Lease.Read(); err == nil {
			epoch = st.Epoch + 1
		} else {
			epoch = 1
		}
	}
	if je := s.journal.Epoch(); je > epoch {
		epoch = je
	}
	s.epoch = epoch
	s.journal.SetEpoch(epoch)
	s.epochG.SetInt(int64(epoch))
	s.leaderG.Set(1)
	if cfg.TakeoverMicros > 0 {
		s.lastTakeoverG.SetInt(cfg.TakeoverMicros)
		reg.Histogram("takeover_micros").Observe(float64(cfg.TakeoverMicros))
	}

	// Seed the grantor from recovered journal state: each journalled
	// child keeps its last granted band reserved (live with no
	// connection) until it redials, so takeover and restart never starve
	// a child that was healthy when the previous leader stopped.
	if snap := s.journal.State(); len(snap.Levels) > 0 {
		phRatio := float64(cfg.PH) / float64(cfg.Budget)
		if snap.ThrPLW > 0 && snap.ThrPHW >= snap.ThrPLW {
			phRatio = snap.ThrPHW / snap.ThrPLW
		}
		seeds := make([]tier.SeedChild, 0, len(snap.Levels))
		for _, l := range snap.Levels {
			g := float64(l.Level)
			seeds = append(seeds, tier.SeedChild{Child: l.Node, GrantW: g, GrantPHW: g * phRatio})
		}
		s.grantor.Seed(seeds)
		s.cycleN.Store(int64(snap.SavedAtCycle))
	}
	return s, nil
}

// band is the budget the grantor divides this cycle: in row mode the
// parent's freshest grant (or the failsafe once the parent has been
// silent past the grace window), at the root the static configuration.
func (s *Server) band(now time.Time) power.Thresholds {
	if s.gov != nil {
		return s.gov.Thresholds(now)
	}
	return power.Thresholds{PL: s.cfg.Budget, PH: s.cfg.PH}
}

// rowSnapshot rolls the fleet up for one upward report.
func (s *Server) rowSnapshot() tier.Snapshot {
	agg := s.grantor.Aggregate()
	applied := s.band(time.Now())
	return tier.Snapshot{
		AppliedPLW: float64(applied.PL),
		AppliedPHW: float64(applied.PH),
		Agents:     agg.Agents,
		Healthy:    agg.Healthy,
		Epoch:      s.epoch,
	}
}

// Start binds the listener and launches the accept and coordination
// loops (plus lease renewal and the upward governor session, when
// configured).
func (s *Server) Start() error {
	if s.cfg.MetricsAddr != "" {
		mln, err := net.Listen("tcp", s.cfg.MetricsAddr)
		if err != nil {
			return fmt.Errorf("fedd: metrics listen: %w", err)
		}
		s.metricsLn = mln
		s.metricsSrv = &http.Server{Handler: obs.NewMux(s.reg, s.trace, func() {})}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			_ = s.metricsSrv.Serve(mln)
		}()
	}
	if s.cfg.Listener != nil {
		s.ln = s.cfg.Listener
	} else {
		ln, err := net.Listen("tcp", s.cfg.Addr)
		if err != nil {
			if s.metricsSrv != nil {
				s.metricsSrv.Close()
			}
			return fmt.Errorf("fedd: listen: %w", err)
		}
		s.ln = ln
	}
	if s.cfg.Lease != nil {
		// Claim the lease synchronously so a standby started right after
		// us immediately sees a live leader.
		_ = s.cfg.Lease.Write(replica.LeaseState{
			Epoch: s.epoch, Holder: s.cfg.LeaseHolder, RenewedAt: time.Now(),
		})
		s.wg.Add(1)
		go s.renewLoop()
	}
	if s.gov != nil {
		s.gov.Start()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.gov.Run(s.stopCh)
		}()
	}
	s.wg.Add(1)
	go s.acceptLoop()
	s.wg.Add(1)
	go s.coordinateLoop()
	return nil
}

// Addr returns the bound listen address (useful with port 0).
func (s *Server) Addr() string {
	if s.ln == nil {
		return s.cfg.Addr
	}
	return s.ln.Addr().String()
}

// MetricsAddr returns the bound observability HTTP address; empty when
// metrics serving is disabled.
func (s *Server) MetricsAddr() string {
	if s.metricsLn == nil {
		return s.cfg.MetricsAddr
	}
	return s.metricsLn.Addr().String()
}

// Obs returns the coordinator's instrument registry.
func (s *Server) Obs() *obs.Registry { return s.reg }

// Epoch returns the coordinator's leadership epoch (0 = HA off).
func (s *Server) Epoch() uint64 { return s.epoch }

// Deposed reports whether this coordinator has fenced itself off after
// discovering a newer leadership epoch.
func (s *Server) Deposed() bool { return s.deposed.Load() }

// Governed reports whether a row coordinator is currently dividing a
// live parent grant (false at the root, before the first grant, and
// while floored).
func (s *Server) Governed() bool { return s.gov != nil && s.gov.Governed() }

// Stop shuts the coordinator down and waits for its goroutines.
func (s *Server) Stop() {
	s.stopOnce.Do(func() {
		close(s.stopCh)
		if s.gov != nil {
			s.gov.CloseConn()
		}
		if s.metricsSrv != nil {
			s.metricsSrv.Close()
		}
		if s.ln != nil {
			s.ln.Close()
		}
		s.pub.Close()
		s.grantor.CloseAll()
	})
	s.wg.Wait()
	if s.journal.Persistent() {
		_, _ = s.journal.Compact()
	}
	s.journal.Close()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	const (
		backoffMin = 5 * time.Millisecond
		backoffMax = 500 * time.Millisecond
	)
	backoff := backoffMin
	for {
		raw, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.stopCh:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			select {
			case <-s.stopCh:
				return
			case <-time.After(backoff):
			}
			if backoff *= 2; backoff > backoffMax {
				backoff = backoffMax
			}
			continue
		}
		backoff = backoffMin
		s.wg.Add(1)
		go s.serveConn(wire.NewConn(raw))
	}
}

// binaryWanted reports whether the peer behind this subscribe/probe
// frame should be switched onto the binary codec.
func (s *Server) binaryWanted(first *wire.Envelope) bool {
	return s.cfg.WireCodec != wire.CodecJSON && first.Advertises(wire.CodecBinary)
}

// serveConn routes one inbound connection by its first frame: child
// subscriptions (cab_report) go to the grantor, journal followers
// (journal_ack) to the publisher, and status probes get one reply.
func (s *Server) serveConn(conn *wire.Conn) {
	defer s.wg.Done()
	first, err := conn.Recv()
	if err != nil {
		conn.Close()
		return
	}
	switch first.Type {
	case wire.KindStatus:
		reply := s.StatusEnvelope()
		// A probe advertising codecs (powctl -codec) is told which codec
		// this daemon would negotiate with it — without switching the
		// reply itself off JSON, so any probe can read the answer.
		if len(first.Codecs) > 0 {
			if s.binaryWanted(&first) {
				reply.Codec = wire.CodecBinary
			} else {
				reply.Codec = wire.CodecJSON
			}
		}
		_ = conn.Send(reply)
		conn.Close()
	case wire.KindJournalAck:
		s.serveReplica(conn, first)
	case wire.KindCabReport:
		if first.Node < 0 {
			conn.Close()
			return
		}
		s.grantor.Serve(conn, first)
	default:
		conn.Close()
	}
}

// serveReplica owns one journal-follower connection: fence by epoch,
// negotiate the codec, then hand the stream to the publisher.
func (s *Server) serveReplica(conn *wire.Conn, first wire.Envelope) {
	if s.epoch > 0 && first.Epoch > s.epoch {
		s.fencedHellosC.Inc()
		s.depose()
		conn.Close()
		return
	}
	if s.binaryWanted(&first) {
		conn.EnableBinary()
	}
	s.pub.Serve(conn, first.Seq)
}

// renewLoop keeps the leadership lease fresh, and self-fences when a
// higher epoch appears in it.
func (s *Server) renewLoop() {
	defer s.wg.Done()
	tick := time.NewTicker(s.cfg.Lease.Period())
	defer tick.Stop()
	for {
		select {
		case <-s.stopCh:
			return
		case <-tick.C:
			if s.deposed.Load() {
				return
			}
			if st, err := s.cfg.Lease.Read(); err == nil && st.Epoch > s.epoch {
				s.depose()
				return
			}
			_ = s.cfg.Lease.Write(replica.LeaseState{
				Epoch: s.epoch, Holder: s.cfg.LeaseHolder, RenewedAt: time.Now(),
			})
		}
	}
}

// depose self-fences a coordinator that has been superseded: leadership
// gauge drops, lease renewal stops, the listener closes, followers and
// children are shed so they redial the new leader.
func (s *Server) depose() {
	if !s.deposed.CompareAndSwap(false, true) {
		return
	}
	s.leaderG.Set(0)
	if s.ln != nil {
		s.ln.Close()
	}
	s.pub.CloseSubs()
	s.grantor.CloseAll()
	if s.gov != nil {
		s.gov.CloseConn()
	}
}

func (s *Server) coordinateLoop() {
	defer s.wg.Done()
	tick := time.NewTicker(s.cfg.ControlEvery)
	defer tick.Stop()
	for {
		select {
		case <-s.stopCh:
			return
		case <-tick.C:
			s.cycle()
		}
	}
}

// cycle is one coordination round: the grantor divides the current band
// and grants it, a row coordinator rolls its fleet up for the next
// upward report, and the grant journal commits (and replicates) the
// cycle's deltas.
func (s *Server) cycle() {
	if s.deposed.Load() {
		return
	}
	s.grantor.Cycle()
	if s.gov != nil {
		agg := s.grantor.Aggregate()
		s.gov.NoteSense(agg.PowerW, agg.DemandW)
	}
	n := s.cycleN.Add(1)
	band := s.band(time.Now())
	if e, ok := s.journal.CommitCycle(int(n), float64(band.PL), float64(band.PH), nil); ok {
		s.journalAppendsC.Inc()
		s.pub.Publish(e)
	}
	conns, lag := s.pub.Stats()
	s.replicaConnsG.SetInt(int64(conns))
	s.replicaLagG.SetInt(int64(lag))
}

// StepCycle runs one coordination round synchronously — a test and
// benchmark hook, driven with a very long ControlEvery so the ticker
// stays out of the way.
func (s *Server) StepCycle() { s.cycle() }

// CabinetStates returns a point-in-time view of every known child,
// sorted by child index.
func (s *Server) CabinetStates() []CabinetStatus {
	children := s.grantor.States()
	out := make([]CabinetStatus, len(children))
	for i, c := range children {
		out[i] = CabinetStatus{
			Cabinet:    c.Child,
			Live:       c.Live,
			Codec:      c.Codec,
			PowerW:     c.PowerW,
			DemandW:    c.DemandW,
			AppliedW:   c.AppliedW,
			GrantW:     c.GrantW,
			GrantPHW:   c.GrantPHW,
			GrantSeq:   c.GrantSeq,
			AppliedSeq: c.AppliedSeq,
			Agents:     c.Agents,
			Healthy:    c.Healthy,
			Epoch:      c.Epoch,
		}
	}
	return out
}
