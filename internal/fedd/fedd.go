// Package fedd implements the coordinator tier of the capping
// federation: one daemon owning the machine's global power budget over a
// fleet of cabinet managers (internal/managerd in governed mode).
//
// Each cabinet manager dials in and subscribes with a cab_report frame,
// then streams one report per control cycle: its sensed aggregate power,
// its uncapped full-level demand estimate, the band it currently
// enforces and its fleet tallies. Every coordinator cycle the daemon
// classifies cabinets live or lost by report freshness, re-divides the
// global budget across the live ones with the shared division library
// (internal/budget — the same code that splits a cabinet budget across
// nodes in nodemgr), and sends each live cabinet a cab_budget grant
// naming its new band. Grants double as heartbeats: a cabinet that stops
// receiving them floors itself locally (managerd's federate.go), and a
// lost cabinet's budget — minus a reserved floor for whatever it still
// draws while flooring — is re-divided among the survivors on the very
// next cycle.
//
// The two-tier split is the paper's pdist topology made control-plane
// structure: breakers bound cabinets physically, so the coordinator
// bounds them logically with per-cabinet caps, and no single control
// loop has to fan out to every node in the machine.
package fedd

import (
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/budget"
	"repro/internal/obs"
	"repro/internal/power"
	"repro/internal/units"
	"repro/internal/wire"
)

// Config parametrises the coordinator.
type Config struct {
	// Addr is the TCP listen address for cabinet subscriptions. Port 0
	// selects an ephemeral port (see Server.Addr).
	Addr string
	// Listener, when non-nil, is served instead of binding Addr (the
	// harness hands over a fault-injecting in-memory listener). The
	// server takes ownership and closes it on Stop.
	Listener net.Listener
	// Budget is the global lower threshold: the sum of all grants' P_L
	// never exceeds it.
	Budget units.Watts
	// PH is the global upper threshold. Each grant's P_H scales from its
	// P_L by the global PH/Budget ratio, so cabinet headroom mirrors the
	// machine's.
	PH units.Watts
	// Division selects the budget division strategy (internal/budget):
	// Uniform, Proportional (to reported demand) or FairShare.
	Division budget.Division
	// ControlEvery is the coordinator cycle period; every cycle
	// re-divides the budget and sends one grant per live cabinet.
	ControlEvery time.Duration
	// StaleAfter marks a cabinet lost when its newest report is older
	// than this. Liveness is pure report freshness — a cabinet whose
	// connection drops but whose last report is still fresh keeps its
	// budget share through the window, so a warm-standby takeover that
	// redials within it is invisible at this tier. Zero defaults to
	// 3 coordinator cycles.
	StaleAfter time.Duration
	// Breaker is the per-cabinet circuit-breaker rating (pdist): a hard
	// cap on any single cabinet's grant, whatever its demand. Zero means
	// unbounded.
	Breaker units.Watts
	// FloorW is the per-cabinet weighting floor handed to the division
	// (a cabinet with zero demand still gets this much weight), and the
	// amount reserved from the global budget for each lost cabinet —
	// covering what it draws while floored on its local failsafe. Zero
	// disables both.
	FloorW units.Watts
	// WireCodec mirrors managerd's: "binary" (and "") negotiates the
	// binary codec with cabinets that advertise it; "json" pins JSON.
	WireCodec string
	// MetricsAddr, when non-empty, serves GET /metrics and GET
	// /debug/cycles for the coordinator registry on this address.
	MetricsAddr string
	// CycleHistory is how many staged cycle timelines to retain for
	// /debug/cycles; zero defaults to obs.DefaultCycleHistory.
	CycleHistory int
}

// cabState is everything the coordinator knows about one cabinet.
// All fields are guarded by Server.mu. The connection is written only by
// the coordinator cycle goroutine once registered (the subscribe path
// sends its frames before registering), so grant writes never race.
type cabState struct {
	conn     *wire.Conn
	lastSeen time.Time

	powerW, demandW  float64
	appliedW, phW    float64 // band the cabinet says it is enforcing
	agents, healthy  int
	epoch            uint64 // cabinet manager's leadership epoch (HA)
	appliedSeq       uint64 // grant seq echoed in the last report
	grantW, grantPHW float64
	grantSeq         uint64

	liveG, grantG, powerG, demandG *obs.Gauge
}

// CabinetStatus is a point-in-time external view of one cabinet, for
// tests and operator tooling.
type CabinetStatus struct {
	Cabinet    int
	Live       bool
	PowerW     float64
	DemandW    float64
	AppliedW   float64
	GrantW     float64
	GrantPHW   float64
	GrantSeq   uint64
	AppliedSeq uint64
	Agents     int
	Healthy    int
	Epoch      uint64
}

// Server is a running coordinator.
type Server struct {
	cfg Config
	ln  net.Listener

	mu   sync.Mutex
	cabs map[int]*cabState

	seq atomic.Uint64

	reg   *obs.Registry
	trace *obs.CycleRecorder

	reportsC    *obs.Counter
	grantsC     *obs.Counter
	decodeErrsC *obs.Counter
	cyclesC     *obs.Counter
	cabinetsG   *obs.Gauge
	liveG       *obs.Gauge
	lostG       *obs.Gauge
	fleetPowerG *obs.Gauge
	fleetDemG   *obs.Gauge
	fleetAgG    *obs.Gauge
	fleetHlG    *obs.Gauge
	budgetG     *obs.Gauge
	grantedG    *obs.Gauge
	cycleUsG    *obs.Gauge

	metricsLn  net.Listener
	metricsSrv *http.Server

	stopOnce sync.Once
	stopCh   chan struct{}
	wg       sync.WaitGroup
}

// New validates the configuration and creates an unstarted coordinator.
func New(cfg Config) (*Server, error) {
	if cfg.ControlEvery <= 0 {
		return nil, fmt.Errorf("fedd: need positive control period")
	}
	thr := power.Thresholds{PL: cfg.Budget, PH: cfg.PH}
	if err := thr.Validate(); err != nil {
		return nil, fmt.Errorf("fedd: global band: %w", err)
	}
	if !cfg.Division.Valid() {
		return nil, fmt.Errorf("fedd: unknown division %d", cfg.Division)
	}
	if cfg.Breaker < 0 || cfg.FloorW < 0 {
		return nil, fmt.Errorf("fedd: negative breaker or floor")
	}
	if cfg.StaleAfter <= 0 {
		cfg.StaleAfter = 3 * cfg.ControlEvery
	}
	switch cfg.WireCodec {
	case "", wire.CodecBinary, wire.CodecJSON:
	default:
		return nil, fmt.Errorf("fedd: unknown wire codec %q", cfg.WireCodec)
	}
	reg := obs.NewRegistry()
	s := &Server{
		cfg:    cfg,
		cabs:   make(map[int]*cabState),
		reg:    reg,
		trace:  obs.NewCycleRecorder(cfg.CycleHistory, reg),
		stopCh: make(chan struct{}),

		reportsC:    reg.Counter("reports_received"),
		grantsC:     reg.Counter("grants_sent"),
		decodeErrsC: reg.Counter("decode_errors"),
		cyclesC:     reg.Counter("cycles"),
		cabinetsG:   reg.Gauge("cabinets"),
		liveG:       reg.Gauge("cabinets_live"),
		lostG:       reg.Gauge("cabinets_lost"),
		fleetPowerG: reg.Gauge("fleet_power_w"),
		fleetDemG:   reg.Gauge("fleet_demand_w"),
		fleetAgG:    reg.Gauge("fleet_agents"),
		fleetHlG:    reg.Gauge("fleet_healthy"),
		budgetG:     reg.Gauge("budget_w"),
		grantedG:    reg.Gauge("granted_w"),
		cycleUsG:    reg.Gauge("last_cycle_micros"),
	}
	s.budgetG.Set(float64(cfg.Budget))
	return s, nil
}

// Start binds the listener and launches the accept and coordination
// loops.
func (s *Server) Start() error {
	if s.cfg.MetricsAddr != "" {
		mln, err := net.Listen("tcp", s.cfg.MetricsAddr)
		if err != nil {
			return fmt.Errorf("fedd: metrics listen: %w", err)
		}
		s.metricsLn = mln
		s.metricsSrv = &http.Server{Handler: obs.NewMux(s.reg, s.trace, func() {})}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			_ = s.metricsSrv.Serve(mln)
		}()
	}
	if s.cfg.Listener != nil {
		s.ln = s.cfg.Listener
	} else {
		ln, err := net.Listen("tcp", s.cfg.Addr)
		if err != nil {
			if s.metricsSrv != nil {
				s.metricsSrv.Close()
			}
			return fmt.Errorf("fedd: listen: %w", err)
		}
		s.ln = ln
	}
	s.wg.Add(1)
	go s.acceptLoop()
	s.wg.Add(1)
	go s.coordinateLoop()
	return nil
}

// Addr returns the bound listen address (useful with port 0).
func (s *Server) Addr() string {
	if s.ln == nil {
		return s.cfg.Addr
	}
	return s.ln.Addr().String()
}

// MetricsAddr returns the bound observability HTTP address; empty when
// metrics serving is disabled.
func (s *Server) MetricsAddr() string {
	if s.metricsLn == nil {
		return s.cfg.MetricsAddr
	}
	return s.metricsLn.Addr().String()
}

// Obs returns the coordinator's instrument registry.
func (s *Server) Obs() *obs.Registry { return s.reg }

// Stop shuts the coordinator down and waits for its goroutines.
func (s *Server) Stop() {
	s.stopOnce.Do(func() {
		close(s.stopCh)
		if s.metricsSrv != nil {
			s.metricsSrv.Close()
		}
		if s.ln != nil {
			s.ln.Close()
		}
		s.mu.Lock()
		for _, cs := range s.cabs {
			if cs.conn != nil {
				cs.conn.Close()
			}
		}
		s.mu.Unlock()
	})
	s.wg.Wait()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	const (
		backoffMin = 5 * time.Millisecond
		backoffMax = 500 * time.Millisecond
	)
	backoff := backoffMin
	for {
		raw, err := s.ln.Accept()
		if err != nil {
			select {
			case <-s.stopCh:
				return
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return
			}
			select {
			case <-s.stopCh:
				return
			case <-time.After(backoff):
			}
			if backoff *= 2; backoff > backoffMax {
				backoff = backoffMax
			}
			continue
		}
		backoff = backoffMin
		s.wg.Add(1)
		go s.serveConn(wire.NewConn(raw))
	}
}

// serveConn handles one cabinet subscription: the first frame must be a
// cab_report (doubling as the hello, with the codec advertisement); the
// reply names the chosen codec, after which the connection is registered
// and the coordinate loop owns its write side. The rest of the stream is
// reports.
func (s *Server) serveConn(conn *wire.Conn) {
	defer s.wg.Done()
	first, err := conn.Recv()
	if err != nil || first.Type != wire.KindCabReport || first.Node < 0 {
		conn.Close()
		return
	}
	wantBin := s.cfg.WireCodec != wire.CodecJSON && first.Advertises(wire.CodecBinary)
	reply := wire.Envelope{Type: wire.KindHello}
	if wantBin {
		reply.Codec = wire.CodecBinary
	}
	if err := conn.Send(reply); err != nil {
		conn.Close()
		return
	}
	if wantBin {
		conn.EnableBinary()
	}

	cab := first.Node
	s.mu.Lock()
	cs := s.cabs[cab]
	if cs == nil {
		cs = &cabState{
			liveG:   s.reg.Gauge(fmt.Sprintf("cab%d_live", cab)),
			grantG:  s.reg.Gauge(fmt.Sprintf("cab%d_grant_w", cab)),
			powerG:  s.reg.Gauge(fmt.Sprintf("cab%d_power_w", cab)),
			demandG: s.reg.Gauge(fmt.Sprintf("cab%d_demand_w", cab)),
		}
		s.cabs[cab] = cs
	}
	old := cs.conn
	cs.conn = conn
	s.noteReport(cs, &first)
	s.mu.Unlock()
	if old != nil {
		// A redial (or a promoted warm standby taking the cabinet over)
		// replaced the connection; the old one is retired silently and
		// the cabinet never counts as lost.
		old.Close()
	}

	var env wire.Envelope
	for {
		if err := conn.RecvInto(&env); err != nil {
			var de *wire.DecodeError
			if errors.As(err, &de) && de.Recoverable() {
				s.decodeErrsC.Inc()
				continue
			}
			break
		}
		if env.Type != wire.KindCabReport {
			continue
		}
		s.mu.Lock()
		if cs.conn == conn {
			s.noteReport(cs, &env)
		}
		s.mu.Unlock()
	}
	s.mu.Lock()
	if cs.conn == conn {
		cs.conn = nil
	}
	s.mu.Unlock()
	conn.Close()
}

// noteReport folds one cab_report into the cabinet state. Caller holds
// s.mu.
func (s *Server) noteReport(cs *cabState, env *wire.Envelope) {
	cs.lastSeen = time.Now()
	cs.powerW, cs.demandW = env.PowerW, env.DemandW
	cs.appliedW, cs.phW = env.BudgetW, env.PHW
	cs.agents, cs.healthy = env.Agents, env.Healthy
	cs.epoch = env.Epoch
	cs.appliedSeq = env.Seq
	s.reportsC.Inc()
}

func (s *Server) coordinateLoop() {
	defer s.wg.Done()
	tick := time.NewTicker(s.cfg.ControlEvery)
	defer tick.Stop()
	for {
		select {
		case <-s.stopCh:
			return
		case <-tick.C:
			s.cycle()
		}
	}
}

// cycle is one coordination round: classify cabinets live/lost by report
// freshness, divide the global budget across the live ones, and send
// each its grant. The division reserves FloorW for every lost cabinet
// (its local failsafe still draws power) and caps every share at the
// cabinet breaker rating.
func (s *Server) cycle() {
	t0 := time.Now()
	s.cyclesC.Inc()
	span := s.trace.Begin()

	type target struct {
		cab  int
		cs   *cabState
		conn *wire.Conn
	}
	var (
		targets         []target
		demands         []budget.Demand
		lost            int
		fleetP, fleetD  float64
		agents, healthy int
	)
	s.mu.Lock()
	for cab, cs := range s.cabs {
		// Liveness is report freshness alone: a cabinet mid-takeover
		// (connection briefly down, reports still fresh) keeps its share
		// reserved rather than thrashing the survivors' grants.
		live := t0.Sub(cs.lastSeen) <= s.cfg.StaleAfter
		cs.liveG.Set(b2f(live))
		cs.powerG.Set(cs.powerW)
		cs.demandG.Set(cs.demandW)
		fleetP += cs.powerW
		agents += cs.agents
		healthy += cs.healthy
		if !live {
			lost++
			cs.grantG.Set(0)
			continue
		}
		fleetD += cs.demandW
		want := cs.demandW
		if want <= 0 {
			// A cabinet that has not sensed yet weighs in at its current
			// draw, so a fresh subscriber is not starved before its first
			// full cycle.
			want = cs.powerW
		}
		targets = append(targets, target{cab: cab, cs: cs, conn: cs.conn})
		demands = append(demands, budget.Demand{
			ID:    cab,
			Want:  want,
			Floor: float64(s.cfg.FloorW),
			Cap:   float64(s.cfg.Breaker),
		})
	}
	s.mu.Unlock()
	span.Stage(obs.StageSense, time.Since(t0),
		fmt.Sprintf("cabinets=%d lost=%d", len(targets), lost))

	// Divide what is left after reserving a floor for each lost cabinet.
	tDiv := time.Now()
	total := float64(s.cfg.Budget) - float64(lost)*float64(s.cfg.FloorW)
	shares := budget.Divide(total, s.cfg.Division, demands)
	span.Stage(obs.StageSelect, time.Since(tDiv), s.cfg.Division.String())

	// Grants. P_H scales from P_L by the global headroom ratio, so each
	// cabinet's yellow band is proportionally as wide as the machine's.
	tAct := time.Now()
	phRatio := float64(s.cfg.PH) / float64(s.cfg.Budget)
	granted := 0.0
	sent := 0
	for i, tg := range targets {
		grant := shares[i]
		if grant <= 0 || tg.conn == nil {
			// A nil conn is a live cabinet between connections (takeover
			// in flight): its share stays reserved, the grant frame waits
			// for the redial.
			continue
		}
		seq := s.seq.Add(1)
		env := wire.Envelope{
			Type: wire.KindCabBudget, Node: tg.cab, Seq: seq,
			BudgetW: grant, PHW: grant * phRatio,
		}
		if err := tg.conn.Send(env); err != nil {
			// The reader side will notice and deregister; next cycle
			// treats the cabinet as lost unless it redials first.
			continue
		}
		granted += grant
		sent++
		s.mu.Lock()
		tg.cs.grantW, tg.cs.grantPHW, tg.cs.grantSeq = grant, grant*phRatio, seq
		tg.cs.grantG.Set(grant)
		s.mu.Unlock()
	}
	s.grantsC.Add(int64(sent))
	span.Stage(obs.StageActuate, time.Since(tAct), fmt.Sprintf("grants=%d", sent))
	span.End()

	s.cabinetsG.SetInt(int64(lost + len(targets)))
	s.liveG.SetInt(int64(len(targets)))
	s.lostG.SetInt(int64(lost))
	s.fleetPowerG.Set(fleetP)
	s.fleetDemG.Set(fleetD)
	s.fleetAgG.SetInt(int64(agents))
	s.fleetHlG.SetInt(int64(healthy))
	s.grantedG.Set(granted)
	s.cycleUsG.SetInt(time.Since(t0).Microseconds())
}

// StepCycle runs one coordination round synchronously — a test and
// benchmark hook, driven with a very long ControlEvery so the ticker
// stays out of the way.
func (s *Server) StepCycle() { s.cycle() }

// CabinetStates returns a point-in-time view of every known cabinet,
// sorted by cabinet index.
func (s *Server) CabinetStates() []CabinetStatus {
	now := time.Now()
	s.mu.Lock()
	out := make([]CabinetStatus, 0, len(s.cabs))
	for cab, cs := range s.cabs {
		out = append(out, CabinetStatus{
			Cabinet:    cab,
			Live:       now.Sub(cs.lastSeen) <= s.cfg.StaleAfter,
			PowerW:     cs.powerW,
			DemandW:    cs.demandW,
			AppliedW:   cs.appliedW,
			GrantW:     cs.grantW,
			GrantPHW:   cs.grantPHW,
			GrantSeq:   cs.grantSeq,
			AppliedSeq: cs.appliedSeq,
			Agents:     cs.agents,
			Healthy:    cs.healthy,
			Epoch:      cs.epoch,
		})
	}
	s.mu.Unlock()
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Cabinet < out[j-1].Cabinet; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// b2f maps a bool onto the 0/1 gauge convention.
func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
