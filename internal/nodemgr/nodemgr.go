// Package nodemgr implements the two-level power management structure the
// paper's related work describes (§I.B, after Femal et al.): a
// cluster-level manager divides the total power budget into per-node
// budgets, and a node-level manager enforces its local budget by choosing
// the highest power state whose predicted draw fits.
//
// This is the second comparison baseline next to the feedback controller:
// it needs no global sensing loop at all once budgets are set (each node
// self-enforces from its own counters), but a static division wastes
// budget on idle nodes while busy nodes starve — the utilisation-aware
// division recovers some of that at the cost of re-division churn.
package nodemgr

import (
	"fmt"

	"repro/internal/budget"
	"repro/internal/manager"
	"repro/internal/power"
	"repro/internal/units"
)

// LevelFor returns the highest level l such that the node's predicted
// power at l (formula 1 with the node's current interval counters) fits
// within budget. If even the lowest level exceeds the budget, level 0 is
// returned — the node cannot shed static power.
func LevelFor(model power.Model, r manager.AgentReading, budget units.Watts) int {
	for l := r.MaxLevel; l > 0; l-- {
		if model.Estimate(r.Delta, l) <= budget {
			return l
		}
	}
	return 0
}

// Division chooses how the global budget splits across nodes. It is the
// shared internal/budget strategy type: the same division engine serves
// this node tier and the federation's cabinet tier (internal/fedd).
type Division = budget.Division

// Division strategies.
const (
	// Uniform gives every node total/N.
	Uniform = budget.Uniform
	// Proportional gives each node a share proportional to its current
	// estimated demand (at full level), with a floor of the node's idle
	// power so no node is starved below static draw.
	Proportional = budget.Proportional
	// FairShare is FastCap-style max-min fairness: small demands are met
	// in full before hungry nodes split the remainder.
	FairShare = budget.FairShare
)

// Config parametrises the two-level controller.
type Config struct {
	// Budget is the global power budget to divide (typically P_L).
	Budget units.Watts
	// Division selects the split strategy.
	Division Division
	// Model is the fleet's power profile model.
	Model power.Model
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Budget <= 0 {
		return fmt.Errorf("nodemgr: budget must be positive")
	}
	if !c.Division.Valid() {
		return fmt.Errorf("nodemgr: unknown division %d", c.Division)
	}
	return c.Model.Validate()
}

// Stats accumulates controller behaviour.
type Stats struct {
	Cycles int
	Moves  int
	// StarvedNodes counts node-cycles where even level 0 exceeded the
	// local budget (the division was infeasible for that node).
	StarvedNodes int
}

// Controller is a running two-level manager.
type Controller struct {
	cfg   Config
	stats Stats
}

// New creates a controller.
func New(cfg Config) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Controller{cfg: cfg}, nil
}

// Stats returns a copy of the accumulated statistics.
func (c *Controller) Stats() Stats { return c.stats }

// SetBudget retargets the controller (e.g. to track a learned P_L).
func (c *Controller) SetBudget(w units.Watts) {
	if w > 0 {
		c.cfg.Budget = w
	}
}

// Cycle divides the budget over the given readings and enforces each
// node's share locally, issuing level commands through act.
func (c *Controller) Cycle(readings []manager.AgentReading, act manager.Actuator) {
	c.stats.Cycles++
	n := len(readings)
	if n == 0 {
		return
	}
	// Demand at full level, floored at idle draw; the division itself is
	// the shared tier-agnostic engine (internal/budget), the same one the
	// federation coordinator runs over cabinets.
	floor := float64(c.cfg.Model.MinPower())
	demands := make([]budget.Demand, n)
	for i, r := range readings {
		demands[i] = budget.Demand{
			ID:    int(r.ID),
			Want:  float64(c.cfg.Model.Estimate(r.Delta, r.MaxLevel)),
			Floor: floor,
		}
	}
	shares := budget.Divide(float64(c.cfg.Budget), c.cfg.Division, demands)
	budgets := make([]units.Watts, n)
	for i := range budgets {
		budgets[i] = units.Watts(shares[i])
	}
	for i, r := range readings {
		target := LevelFor(c.cfg.Model, r, budgets[i])
		if target == 0 && c.cfg.Model.Estimate(r.Delta, 0) > budgets[i] {
			c.stats.StarvedNodes++
		}
		if target != r.Level {
			if err := act.SetNodeLevel(r.ID, target); err == nil {
				c.stats.Moves++
			}
		}
	}
}
