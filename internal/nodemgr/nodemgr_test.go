package nodemgr

import (
	"errors"
	"testing"
	"time"

	"repro/internal/manager"
	"repro/internal/node"
	"repro/internal/power"
	"repro/internal/procfs"
	"repro/internal/units"
)

func reading(id, level int, util float64) manager.AgentReading {
	return manager.AgentReading{
		ID: node.ID(id), Level: level, MaxLevel: 9,
		Delta: procfs.Delta{
			Interval: time.Second, CPUUtil: util,
			MemUsed: 24 << 30, MemTotal: 48 << 30,
		},
	}
}

func TestLevelFor(t *testing.T) {
	m := power.TianheNode()
	r := reading(0, 9, 0.9)
	// A generous budget keeps the top level.
	if got := LevelFor(m, r, 1000); got != 9 {
		t.Errorf("generous budget → level %d, want 9", got)
	}
	// An impossible budget floors.
	if got := LevelFor(m, r, 10); got != 0 {
		t.Errorf("impossible budget → level %d, want 0", got)
	}
	// The returned level's prediction actually fits (when feasible).
	for _, budget := range []units.Watts{200, 250, 300, 350} {
		l := LevelFor(m, r, budget)
		if l > 0 && m.Estimate(r.Delta, l) > budget {
			t.Errorf("LevelFor(%v) = %d predicts %v over budget", budget, l, m.Estimate(r.Delta, l))
		}
		// And it is maximal: one level up must not fit.
		if l < 9 && m.Estimate(r.Delta, l+1) <= budget {
			t.Errorf("LevelFor(%v) = %d not maximal", budget, l)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Division: Uniform, Model: power.TianheNode()}); err == nil {
		t.Error("zero budget accepted")
	}
	if _, err := New(Config{Budget: 1, Division: Division(9), Model: power.TianheNode()}); err == nil {
		t.Error("unknown division accepted")
	}
	if _, err := New(Config{Budget: 1, Division: Uniform}); err == nil {
		t.Error("zero model accepted")
	}
}

type recordActuator struct {
	levels map[node.ID]int
	fail   bool
}

func (a *recordActuator) SetNodeLevel(id node.ID, level int) error {
	if a.fail {
		return errors.New("refused")
	}
	if a.levels == nil {
		a.levels = map[node.ID]int{}
	}
	a.levels[id] = level
	return nil
}

func TestUniformDivisionEnforces(t *testing.T) {
	m := power.TianheNode()
	c, err := New(Config{Budget: units.KW(1), Division: Uniform, Model: m})
	if err != nil {
		t.Fatal(err)
	}
	// 4 busy nodes share 1 kW → 250 W each; a busy Tianhe node needs a
	// low-ish level to fit 250 W.
	readings := []manager.AgentReading{
		reading(0, 9, 0.9), reading(1, 9, 0.9), reading(2, 9, 0.9), reading(3, 9, 0.9),
	}
	act := &recordActuator{}
	c.Cycle(readings, act)
	if len(act.levels) != 4 {
		t.Fatalf("commands = %v", act.levels)
	}
	for id, l := range act.levels {
		if est := m.Estimate(readings[int(id)].Delta, l); est > 250 {
			t.Errorf("node %d at level %d draws %v over its 250 W share", id, l, est)
		}
	}
	if st := c.Stats(); st.Cycles != 1 || st.Moves != 4 {
		t.Errorf("stats = %+v", st)
	}
}

func TestProportionalFavoursBusyNodes(t *testing.T) {
	m := power.TianheNode()
	c, _ := New(Config{Budget: units.KW(1), Division: Proportional, Model: m})
	readings := []manager.AgentReading{
		reading(0, 9, 0.95), // busy
		reading(1, 9, 0.02), // idle
		reading(2, 9, 0.95),
		reading(3, 9, 0.02),
	}
	act := &recordActuator{}
	c.Cycle(readings, act)
	busyLevel, idleLevel := act.levels[0], act.levels[1]
	if _, moved := act.levels[0]; !moved {
		busyLevel = 9
	}
	if _, moved := act.levels[1]; !moved {
		idleLevel = 9
	}
	if busyLevel < idleLevel {
		t.Errorf("proportional division gave busy node level %d below idle node %d", busyLevel, idleLevel)
	}
}

func TestStarvationCounted(t *testing.T) {
	m := power.TianheNode()
	c, _ := New(Config{Budget: 50, Division: Uniform, Model: m}) // 12.5 W/node: infeasible
	act := &recordActuator{}
	c.Cycle([]manager.AgentReading{reading(0, 9, 0.9), reading(1, 9, 0.9),
		reading(2, 9, 0.9), reading(3, 9, 0.9)}, act)
	if st := c.Stats(); st.StarvedNodes != 4 {
		t.Errorf("starved = %d, want 4", st.StarvedNodes)
	}
}

func TestNoCommandWhenAlreadyAtTarget(t *testing.T) {
	m := power.TianheNode()
	c, _ := New(Config{Budget: units.MW(1), Division: Uniform, Model: m})
	act := &recordActuator{}
	c.Cycle([]manager.AgentReading{reading(0, 9, 0.9)}, act)
	if len(act.levels) != 0 {
		t.Errorf("issued redundant commands: %v", act.levels)
	}
}

func TestActuationErrorNotCountedAsMove(t *testing.T) {
	m := power.TianheNode()
	c, _ := New(Config{Budget: units.KW(1), Division: Uniform, Model: m})
	act := &recordActuator{fail: true}
	c.Cycle([]manager.AgentReading{reading(0, 9, 0.9), reading(1, 9, 0.9),
		reading(2, 9, 0.9), reading(3, 9, 0.9)}, act)
	if st := c.Stats(); st.Moves != 0 {
		t.Errorf("failed actuations counted: %+v", st)
	}
}

func TestEmptyReadings(t *testing.T) {
	c, _ := New(Config{Budget: 1000, Division: Uniform, Model: power.TianheNode()})
	c.Cycle(nil, &recordActuator{})
	if c.Stats().Cycles != 1 {
		t.Error("cycle not counted")
	}
}

func TestSetBudget(t *testing.T) {
	c, _ := New(Config{Budget: 1000, Division: Uniform, Model: power.TianheNode()})
	c.SetBudget(2000)
	c.SetBudget(0) // ignored
	act := &recordActuator{}
	c.Cycle([]manager.AgentReading{reading(0, 9, 0.9)}, act)
	// 2 kW for one node: no throttling needed.
	if len(act.levels) != 0 {
		t.Errorf("commands = %v", act.levels)
	}
}
