package trace

import (
	"fmt"
	"strings"

	"repro/internal/metrics"
	"repro/internal/units"
)

// sparkRunes are the eight block heights of a terminal sparkline.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders a power series as a width-character terminal
// sparkline, downsampling by taking the maximum of each bucket (peaks are
// what power engineers look for). An optional threshold is marked: bucket
// peaks at or above it are rendered in the overline row.
func Sparkline(s *metrics.Series, width int) string {
	if s.Len() < 2 || width <= 0 {
		return ""
	}
	// Bucket by time, not by sample index, so irregular sampling does
	// not skew the picture.
	start, _ := s.At(0)
	end, _ := s.At(s.Len() - 1)
	span := end - start
	if span <= 0 {
		return ""
	}
	maxs := make([]float64, width)
	seen := make([]bool, width)
	lo, hi := 0.0, 0.0
	first := true
	for i := 0; i < s.Len(); i++ {
		ts, p := s.At(i)
		b := int(float64(width) * float64(ts-start) / float64(span))
		if b >= width {
			b = width - 1
		}
		v := float64(p)
		if !seen[b] || v > maxs[b] {
			maxs[b], seen[b] = v, true
		}
		if first || v < lo {
			lo = v
		}
		if first || v > hi {
			hi = v
		}
		first = false
	}
	if hi == lo {
		hi = lo + 1
	}
	var sb strings.Builder
	prev := 0.0
	for b := 0; b < width; b++ {
		v := maxs[b]
		if !seen[b] {
			v = prev // carry forward through empty buckets
		}
		prev = v
		idx := int((v - lo) / (hi - lo) * float64(len(sparkRunes)-1))
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sparkRunes) {
			idx = len(sparkRunes) - 1
		}
		sb.WriteRune(sparkRunes[idx])
	}
	return sb.String()
}

// SparklineWithScale renders the sparkline with min/max labels, e.g.
//
//	28.1 kW ▁▂▃▅██▅▃▂▁ 39.4 kW
func SparklineWithScale(s *metrics.Series, width int) string {
	spark := Sparkline(s, width)
	if spark == "" {
		return ""
	}
	lo, hi := units.Watts(0), units.Watts(0)
	for i := 0; i < s.Len(); i++ {
		_, p := s.At(i)
		if i == 0 || p < lo {
			lo = p
		}
		if i == 0 || p > hi {
			hi = p
		}
	}
	return fmt.Sprintf("%v %s %v", lo, spark, hi)
}
