package trace

import (
	"encoding/csv"
	"encoding/json"
	"io"
	"strconv"

	"repro/internal/obs"
)

// WriteCycleSpansJSONL writes one JSON object per staged cycle timeline,
// oldest first, in the same shape the manager serves on /debug/cycles.
// Offline tooling can therefore consume a live scrape and an exported
// run artefact interchangeably.
func WriteCycleSpansJSONL(w io.Writer, spans []obs.CycleSpan) error {
	enc := json.NewEncoder(w)
	for _, sp := range spans {
		if err := enc.Encode(sp); err != nil {
			return err
		}
	}
	return nil
}

// WriteCycleSpansCSV flattens staged cycle timelines into one row per
// stage: "cycle,stage,micros,outcome,total_micros". The per-cycle total
// repeats on every stage row so each row is self-contained for plotting.
func WriteCycleSpansCSV(w io.Writer, spans []obs.CycleSpan) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"cycle", "stage", "micros", "outcome", "total_micros"}); err != nil {
		return err
	}
	for _, sp := range spans {
		for _, st := range sp.Stages {
			rec := []string{
				strconv.FormatInt(sp.Cycle, 10),
				st.Stage,
				strconv.FormatInt(st.Micros, 10),
				st.Outcome,
				strconv.FormatInt(sp.TotalMicros, 10),
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
