package trace

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/obs"
	"repro/internal/scenario"
	"repro/internal/workload"
)

// -update regenerates the golden files under testdata/ from the current
// writer output:
//
//	go test ./internal/trace -run Golden -update
var update = flag.Bool("update", false, "rewrite golden files")

// golden compares got against testdata/<name>, rewriting the file under
// -update.
func golden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden file:\n--- got ---\n%s--- want ---\n%s", name, got, want)
	}
}

// fixtureSpans builds a deterministic two-cycle staged timeline, shaped
// like a real sense→classify→select→actuate→settle recording.
func fixtureSpans() []obs.CycleSpan {
	return []obs.CycleSpan{
		{
			Cycle:       1,
			TotalMicros: 1510,
			Stages: []obs.StageSpan{
				{Stage: "sense", Micros: 120, Outcome: "readings=16"},
				{Stage: "classify", Micros: 4, Outcome: "yellow"},
				{Stage: "select", Micros: 890, Outcome: "targets=5"},
				{Stage: "actuate", Micros: 310, Outcome: "degrade=5"},
				{Stage: "settle", Micros: 186},
			},
		},
		{
			Cycle:       2,
			TotalMicros: 240,
			Stages: []obs.StageSpan{
				{Stage: "sense", Micros: 110, Outcome: "readings=16"},
				{Stage: "classify", Micros: 3, Outcome: "green"},
				{Stage: "select", Micros: 0},
				{Stage: "actuate", Micros: 55, Outcome: "restore=2"},
				{Stage: "settle", Micros: 72},
			},
		},
	}
}

func TestGoldenCycleSpansJSONL(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCycleSpansJSONL(&buf, fixtureSpans()); err != nil {
		t.Fatal(err)
	}
	golden(t, "cycle_spans.jsonl", buf.Bytes())

	// Round-trip: every line decodes back to the source span.
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	for i, line := range lines {
		var sp obs.CycleSpan
		if err := json.Unmarshal([]byte(line), &sp); err != nil {
			t.Fatal(err)
		}
		want := fixtureSpans()[i]
		if sp.Cycle != want.Cycle || sp.TotalMicros != want.TotalMicros || len(sp.Stages) != len(want.Stages) {
			t.Errorf("span %d = %+v, want %+v", i, sp, want)
		}
		for j, st := range sp.Stages {
			if st != want.Stages[j] {
				t.Errorf("span %d stage %d = %+v, want %+v", i, j, st, want.Stages[j])
			}
		}
	}
}

func TestGoldenCycleSpansCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCycleSpansCSV(&buf, fixtureSpans()); err != nil {
		t.Fatal(err)
	}
	golden(t, "cycle_spans.csv", buf.Bytes())

	recs, err := csv.NewReader(bytes.NewReader(buf.Bytes())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 11 { // header + 2 cycles × 5 stages
		t.Fatalf("rows = %d", len(recs))
	}
	if recs[0][0] != "cycle" || recs[0][4] != "total_micros" {
		t.Errorf("header = %v", recs[0])
	}
	// Spot-check one interior row: cycle 1's select stage.
	if row := recs[3]; row[0] != "1" || row[1] != "select" || row[2] != "890" || row[3] != "targets=5" || row[4] != "1510" {
		t.Errorf("select row = %v", row)
	}
}

func TestGoldenSeriesCSV(t *testing.T) {
	s := &metrics.Series{}
	s.Add(0, 29750.5)
	s.Add(time.Second, 31002)
	s.Add(2*time.Second, 33417.25)
	var buf bytes.Buffer
	if err := WriteSeriesCSV(&buf, s); err != nil {
		t.Fatal(err)
	}
	golden(t, "series.csv", buf.Bytes())
}

func TestGoldenJobsJSONLAndCSV(t *testing.T) {
	jobs := []*workload.Job{doneJob(t)}

	var jl bytes.Buffer
	if err := WriteJobsJSONL(&jl, jobs, 0.001); err != nil {
		t.Fatal(err)
	}
	golden(t, "jobs.jsonl", jl.Bytes())

	var cs bytes.Buffer
	if err := WriteJobsCSV(&cs, jobs, 0.001); err != nil {
		t.Fatal(err)
	}
	golden(t, "jobs.csv", cs.Bytes())

	// The two exports describe the same record.
	var rec JobRecord
	if err := json.Unmarshal(jl.Bytes(), &rec); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(bytes.NewReader(cs.Bytes())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[1][1] != rec.Benchmark {
		t.Errorf("CSV %v vs JSONL %+v", recs, rec)
	}
}

func TestGoldenEventsJSONL(t *testing.T) {
	var l EventLog
	l.Add(Event{TimeSec: 1, Kind: "cycle", State: "green", PowerW: 29750.5, Nodes: 0})
	l.Add(Event{TimeSec: 2, Kind: "degrade", State: "yellow", PowerW: 33417.25, Nodes: 5, Note: "Td levels"})
	l.Add(Event{TimeSec: 3, Kind: "red", State: "red", PowerW: 35120, Nodes: 16, Note: "floor"})
	var buf bytes.Buffer
	if err := l.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	golden(t, "events.jsonl", buf.Bytes())
}

// scenarioFixture is a small deterministic scenario run: the flash-crowd
// generator scaled down, fixed seed. Determinism of (scenario, seed) →
// trace is what makes this golden-testable at all.
func scenarioFixture(t *testing.T) []scenario.CycleRecord {
	t.Helper()
	res, err := scenario.Run(scenario.FlashCrowd().Scaled(6, 40), 1)
	if err != nil {
		t.Fatal(err)
	}
	return res.Records
}

func TestGoldenScenarioCyclesJSONL(t *testing.T) {
	recs := scenarioFixture(t)
	var buf bytes.Buffer
	if err := WriteScenarioCyclesJSONL(&buf, recs); err != nil {
		t.Fatal(err)
	}
	golden(t, "scenario_flash_crowd.jsonl", buf.Bytes())

	// Round-trip: every line decodes back to the source record.
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(recs) {
		t.Fatalf("lines = %d, want %d", len(lines), len(recs))
	}
	for i, line := range lines {
		var r scenario.CycleRecord
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			t.Fatal(err)
		}
		if r.Cycle != recs[i].Cycle || r.State != recs[i].State ||
			len(r.Nodes) != len(recs[i].Nodes) || len(r.Actions) != len(recs[i].Actions) {
			t.Errorf("record %d = %+v, want %+v", i, r, recs[i])
		}
	}
}

func TestGoldenScenarioCyclesCSV(t *testing.T) {
	recs := scenarioFixture(t)
	var buf bytes.Buffer
	if err := WriteScenarioCyclesCSV(&buf, recs); err != nil {
		t.Fatal(err)
	}
	golden(t, "scenario_flash_crowd.csv", buf.Bytes())

	rows, err := csv.NewReader(bytes.NewReader(buf.Bytes())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(recs)+1 {
		t.Fatalf("rows = %d, want %d", len(rows), len(recs)+1)
	}
	if rows[0][0] != "cycle" || rows[0][4] != "state" {
		t.Errorf("header = %v", rows[0])
	}
}

func TestScenarioWriteErrorsPropagate(t *testing.T) {
	recs := scenarioFixture(t)
	if err := WriteScenarioCyclesJSONL(&failAfter{n: 5}, recs); err == nil {
		t.Error("scenario JSONL write error swallowed")
	}
	if err := WriteScenarioCyclesCSV(&failAfter{n: 5}, recs); err == nil {
		t.Error("scenario CSV write error swallowed")
	}
}

func TestCycleSpanWriteErrorsPropagate(t *testing.T) {
	spans := fixtureSpans()
	if err := WriteCycleSpansJSONL(&failAfter{n: 5}, spans); err == nil {
		t.Error("cycle spans JSONL write error swallowed")
	}
	if err := WriteCycleSpansCSV(&failAfter{n: 5}, spans); err == nil {
		t.Error("cycle spans CSV write error swallowed")
	}
}
