// Package trace exports run artefacts — power time-series, job completion
// records, control-cycle events — as CSV or JSON lines for offline
// plotting and inspection.
package trace

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"time"

	"repro/internal/metrics"
	"repro/internal/workload"
)

// WriteSeriesCSV writes a power series as "seconds,watts" rows with a
// header.
func WriteSeriesCSV(w io.Writer, s *metrics.Series) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"time_s", "power_w"}); err != nil {
		return err
	}
	for i := 0; i < s.Len(); i++ {
		t, p := s.At(i)
		rec := []string{
			strconv.FormatFloat(t.Seconds(), 'f', 3, 64),
			strconv.FormatFloat(float64(p), 'f', 1, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// JobRecord is the exported form of one finished job.
type JobRecord struct {
	ID        int     `json:"id"`
	Benchmark string  `json:"benchmark"`
	NProcs    int     `json:"nprocs"`
	Nodes     int     `json:"nodes"`
	StartSec  float64 `json:"start_s"`
	EndSec    float64 `json:"end_s"`
	RefSec    float64 `json:"ref_s"`
	ActualSec float64 `json:"actual_s"`
	Lossless  bool    `json:"lossless"`
}

// NewJobRecord converts a finished job.
func NewJobRecord(j *workload.Job, tol float64) JobRecord {
	return JobRecord{
		ID:        int(j.ID()),
		Benchmark: j.Spec().Name,
		NProcs:    j.NProcs(),
		Nodes:     len(j.Nodes()),
		StartSec:  j.Start().Seconds(),
		EndSec:    j.End().Seconds(),
		RefSec:    j.ReferenceDuration().Seconds(),
		ActualSec: j.ActualDuration().Seconds(),
		Lossless:  j.Lossless(tol),
	}
}

// WriteJobsJSONL writes one JSON object per finished job.
func WriteJobsJSONL(w io.Writer, jobs []*workload.Job, tol float64) error {
	enc := json.NewEncoder(w)
	for _, j := range jobs {
		if !j.Done() {
			continue
		}
		if err := enc.Encode(NewJobRecord(j, tol)); err != nil {
			return err
		}
	}
	return nil
}

// WriteJobsCSV writes finished jobs as CSV.
func WriteJobsCSV(w io.Writer, jobs []*workload.Job, tol float64) error {
	cw := csv.NewWriter(w)
	header := []string{"id", "benchmark", "nprocs", "nodes", "start_s", "end_s", "ref_s", "actual_s", "lossless"}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, j := range jobs {
		if !j.Done() {
			continue
		}
		r := NewJobRecord(j, tol)
		rec := []string{
			strconv.Itoa(r.ID), r.Benchmark, strconv.Itoa(r.NProcs),
			strconv.Itoa(r.Nodes),
			strconv.FormatFloat(r.StartSec, 'f', 1, 64),
			strconv.FormatFloat(r.EndSec, 'f', 1, 64),
			strconv.FormatFloat(r.RefSec, 'f', 1, 64),
			strconv.FormatFloat(r.ActualSec, 'f', 1, 64),
			strconv.FormatBool(r.Lossless),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Event is a control-loop event for the event log.
type Event struct {
	TimeSec float64 `json:"t_s"`
	Kind    string  `json:"kind"`           // "cycle", "degrade", "restore", "red"
	State   string  `json:"state"`          // green/yellow/red
	PowerW  float64 `json:"p_w"`            // meter reading
	Nodes   int     `json:"nodes"`          // nodes acted on
	Note    string  `json:"note,omitempty"` // free-form detail
}

// EventLog collects events and serialises them as JSON lines.
type EventLog struct {
	events []Event
}

// Add appends an event.
func (l *EventLog) Add(e Event) { l.events = append(l.events, e) }

// Len returns the number of recorded events.
func (l *EventLog) Len() int { return len(l.events) }

// Events returns the recorded events.
func (l *EventLog) Events() []Event { return l.events }

// WriteJSONL serialises the log.
func (l *EventLog) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, e := range l.events {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return nil
}

// FormatDuration renders a virtual duration compactly for tables
// (e.g. "12h00m", "90s").
func FormatDuration(d time.Duration) string {
	if d >= time.Hour {
		h := d / time.Hour
		m := (d % time.Hour) / time.Minute
		return fmt.Sprintf("%dh%02dm", h, m)
	}
	if d >= time.Minute {
		m := d / time.Minute
		s := (d % time.Minute) / time.Second
		return fmt.Sprintf("%dm%02ds", m, s)
	}
	return fmt.Sprintf("%.0fs", d.Seconds())
}
