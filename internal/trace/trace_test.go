package trace

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/node"
	"repro/internal/units"
	"repro/internal/workload"
)

func TestWriteSeriesCSV(t *testing.T) {
	s := &metrics.Series{}
	s.Add(0, 100)
	s.Add(time.Second, 200.5)
	var buf bytes.Buffer
	if err := WriteSeriesCSV(&buf, s); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 3 {
		t.Fatalf("rows = %d", len(recs))
	}
	if recs[0][0] != "time_s" || recs[0][1] != "power_w" {
		t.Errorf("header = %v", recs[0])
	}
	if recs[2][0] != "1.000" || recs[2][1] != "200.5" {
		t.Errorf("row = %v", recs[2])
	}
}

func doneJob(t *testing.T) *workload.Job {
	t.Helper()
	spec, _ := workload.SpecByName(workload.NPB(workload.ClassC), "CG")
	j, err := workload.NewJob(3, workload.Request{Spec: spec, NProcs: 16},
		[]node.ID{0, 1}, time.Minute, workload.JobConfig{})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Minute
	for !j.Done() {
		j.Advance(now, time.Second, 1)
		now += time.Second
	}
	return j
}

func TestJobRecord(t *testing.T) {
	j := doneJob(t)
	r := NewJobRecord(j, 0.001)
	if r.ID != 3 || r.Benchmark != "CG" || r.NProcs != 16 || r.Nodes != 2 {
		t.Errorf("record = %+v", r)
	}
	if !r.Lossless {
		t.Error("unthrottled job not lossless in record")
	}
	if r.StartSec != 60 {
		t.Errorf("start = %v", r.StartSec)
	}
	if diff := r.ActualSec - r.RefSec; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("actual %v != ref %v for unthrottled job", r.ActualSec, r.RefSec)
	}
}

func TestWriteJobsJSONL(t *testing.T) {
	var buf bytes.Buffer
	jobs := []*workload.Job{doneJob(t)}
	if err := WriteJobsJSONL(&buf, jobs, 0.001); err != nil {
		t.Fatal(err)
	}
	var rec JobRecord
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Benchmark != "CG" {
		t.Errorf("decoded = %+v", rec)
	}
}

func TestWriteJobsCSVSkipsUnfinished(t *testing.T) {
	spec, _ := workload.SpecByName(workload.NPB(workload.ClassC), "CG")
	unfinished, _ := workload.NewJob(9, workload.Request{Spec: spec, NProcs: 8},
		[]node.ID{0}, 0, workload.JobConfig{})
	var buf bytes.Buffer
	if err := WriteJobsCSV(&buf, []*workload.Job{unfinished, doneJob(t)}, 0.001); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 { // header + one finished job
		t.Errorf("rows = %d, want 2", len(recs))
	}
}

func TestEventLog(t *testing.T) {
	var l EventLog
	l.Add(Event{TimeSec: 1, Kind: "cycle", State: "green", PowerW: 30000})
	l.Add(Event{TimeSec: 2, Kind: "degrade", State: "yellow", PowerW: 32000, Nodes: 4})
	if l.Len() != 2 {
		t.Fatalf("len = %d", l.Len())
	}
	var buf bytes.Buffer
	if err := l.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("lines = %d", len(lines))
	}
	var e Event
	if err := json.Unmarshal([]byte(lines[1]), &e); err != nil {
		t.Fatal(err)
	}
	if e.Kind != "degrade" || e.Nodes != 4 {
		t.Errorf("event = %+v", e)
	}
	if len(l.Events()) != 2 {
		t.Error("Events accessor")
	}
}

func TestFormatDuration(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{12 * time.Hour, "12h00m"},
		{90 * time.Minute, "1h30m"},
		{5 * time.Minute, "5m00s"},
		{330 * time.Second, "5m30s"},
		{45 * time.Second, "45s"},
	}
	for _, c := range cases {
		if got := FormatDuration(c.d); got != c.want {
			t.Errorf("FormatDuration(%v) = %q, want %q", c.d, got, c.want)
		}
	}
}

func TestSparkline(t *testing.T) {
	s := &metrics.Series{}
	for i := 0; i <= 100; i++ {
		// A ramp from 100 to 200 W.
		s.Add(time.Duration(i)*time.Second, units.Watts(100+float64(i)))
	}
	spark := Sparkline(s, 10)
	if len([]rune(spark)) != 10 {
		t.Fatalf("width = %d: %q", len([]rune(spark)), spark)
	}
	runes := []rune(spark)
	if runes[0] >= runes[9] {
		t.Errorf("ramp not rising: %q", spark)
	}
	// Degenerate inputs.
	if Sparkline(&metrics.Series{}, 10) != "" {
		t.Error("empty series produced output")
	}
	if Sparkline(s, 0) != "" {
		t.Error("zero width produced output")
	}
	flat := &metrics.Series{}
	flat.Add(0, 100)
	flat.Add(time.Second, 100)
	if got := Sparkline(flat, 5); len([]rune(got)) != 5 {
		t.Errorf("flat series: %q", got)
	}
}

func TestSparklineWithScale(t *testing.T) {
	s := &metrics.Series{}
	s.Add(0, 28000)
	s.Add(time.Minute, 39000)
	out := SparklineWithScale(s, 8)
	if !strings.Contains(out, "28.00 kW") || !strings.Contains(out, "39.00 kW") {
		t.Errorf("scale labels missing: %q", out)
	}
	if SparklineWithScale(&metrics.Series{}, 8) != "" {
		t.Error("empty series produced scaled output")
	}
}

// failAfter errors after n bytes, exercising writer error paths.
type failAfter struct{ n int }

func (f *failAfter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errWriter
	}
	if len(p) > f.n {
		n := f.n
		f.n = 0
		return n, errWriter
	}
	f.n -= len(p)
	return len(p), nil
}

var errWriter = errors.New("writer failed")

func TestWriteErrorsPropagate(t *testing.T) {
	s := &metrics.Series{}
	s.Add(0, 100)
	s.Add(time.Second, 200)
	if err := WriteSeriesCSV(&failAfter{n: 5}, s); err == nil {
		t.Error("series CSV write error swallowed")
	}
	jobs := []*workload.Job{doneJob(t)}
	if err := WriteJobsJSONL(&failAfter{n: 5}, jobs, 0.001); err == nil {
		t.Error("jobs JSONL write error swallowed")
	}
	if err := WriteJobsCSV(&failAfter{n: 5}, jobs, 0.001); err == nil {
		t.Error("jobs CSV write error swallowed")
	}
	var l EventLog
	l.Add(Event{Kind: "cycle"})
	if err := l.WriteJSONL(&failAfter{n: 2}); err == nil {
		t.Error("event log write error swallowed")
	}
}
