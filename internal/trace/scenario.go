package trace

import (
	"encoding/csv"
	"encoding/json"
	"io"
	"strconv"

	"repro/internal/scenario"
)

// WriteScenarioCyclesJSONL writes a scenario trace as one JSON object per
// control cycle — the full record, nodes and actions included, exactly as
// the property checker consumes it. Because scenario traces are
// deterministic in (scenario, seed), this export is byte-stable and
// golden-testable.
func WriteScenarioCyclesJSONL(w io.Writer, recs []scenario.CycleRecord) error {
	enc := json.NewEncoder(w)
	for _, r := range recs {
		if err := enc.Encode(r); err != nil {
			return err
		}
	}
	return nil
}

// WriteScenarioCyclesCSV writes the per-cycle headline of a scenario
// trace (no per-node detail) for spreadsheet plotting.
func WriteScenarioCyclesCSV(w io.Writer, recs []scenario.CycleRecord) error {
	cw := csv.NewWriter(w)
	header := []string{"cycle", "p_w", "pl_w", "ph_w", "state", "online", "nodes", "actions"}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, r := range recs {
		rec := []string{
			strconv.Itoa(r.Cycle),
			strconv.FormatFloat(r.PowerW, 'f', 1, 64),
			strconv.FormatFloat(r.PLW, 'f', 1, 64),
			strconv.FormatFloat(r.PHW, 'f', 1, 64),
			r.State,
			strconv.Itoa(r.Online),
			strconv.Itoa(len(r.Nodes)),
			strconv.Itoa(len(r.Actions)),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
