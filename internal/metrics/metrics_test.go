package metrics

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/node"
	"repro/internal/units"
	"repro/internal/workload"
)

func series(t *testing.T, pts ...float64) *Series {
	t.Helper()
	s := &Series{}
	for i, p := range pts {
		if err := s.Add(time.Duration(i)*time.Second, units.Watts(p)); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestAddOrdering(t *testing.T) {
	s := &Series{}
	if err := s.Add(time.Second, 100); err != nil {
		t.Fatal(err)
	}
	if err := s.Add(time.Second, 101); err != nil {
		t.Errorf("equal timestamps should be allowed: %v", err)
	}
	if err := s.Add(0, 99); err == nil {
		t.Error("out-of-order sample accepted")
	}
}

func TestMaxMeanEnergy(t *testing.T) {
	s := series(t, 100, 200, 300, 200)
	if s.Max() != 300 {
		t.Errorf("max = %v", s.Max())
	}
	// Trapezoid: (150+250+250) = 650 J over 3 s.
	if got := float64(s.Energy()); math.Abs(got-650) > 1e-9 {
		t.Errorf("energy = %v, want 650", got)
	}
	if got := float64(s.Mean()); math.Abs(got-650.0/3) > 1e-9 {
		t.Errorf("mean = %v", got)
	}
	if s.Span() != 3*time.Second {
		t.Errorf("span = %v", s.Span())
	}
}

func TestDegenerateSeries(t *testing.T) {
	empty := &Series{}
	if empty.Max() != 0 || empty.Energy() != 0 || empty.Mean() != 0 {
		t.Error("empty series should be all zeros")
	}
	single := series(t, 500)
	if single.Mean() != 500 {
		t.Errorf("single-sample mean = %v", single.Mean())
	}
	if single.Energy() != 0 {
		t.Error("single sample has no energy")
	}
}

func TestOverspendEnergyFlatSegments(t *testing.T) {
	s := series(t, 150, 150, 150)
	if got := float64(s.OverspendEnergy(100)); math.Abs(got-100) > 1e-9 {
		t.Errorf("overspend = %v, want 100 (50 W × 2 s)", got)
	}
	if got := s.OverspendEnergy(200); got != 0 {
		t.Errorf("overspend above series = %v", got)
	}
}

func TestOverspendEnergyCrossing(t *testing.T) {
	// Segment from 50 to 150 over 1 s, threshold 100: above for the
	// second half, triangle area = 0.5 s × 50 W / 2 = 12.5 J.
	s := series(t, 50, 150)
	if got := float64(s.OverspendEnergy(100)); math.Abs(got-12.5) > 1e-9 {
		t.Errorf("rising crossing = %v, want 12.5", got)
	}
	// Falling through.
	s2 := series(t, 150, 50)
	if got := float64(s2.OverspendEnergy(100)); math.Abs(got-12.5) > 1e-9 {
		t.Errorf("falling crossing = %v, want 12.5", got)
	}
}

func TestTimeAbove(t *testing.T) {
	s := series(t, 50, 150, 150, 50)
	// Rises through 100 at t=0.5, falls through at t=2.5 → 2 s above.
	if got := s.TimeAbove(100); got != 2*time.Second {
		t.Errorf("time above = %v, want 2 s", got)
	}
	if got := s.TimeAbove(200); got != 0 {
		t.Errorf("time above 200 = %v", got)
	}
	if got := s.TimeAbove(0); got != 3*time.Second {
		t.Errorf("time above 0 = %v, want whole span", got)
	}
}

func TestOverspendRatioDefinition(t *testing.T) {
	// ΔP×T = overspend energy / total energy.
	s := series(t, 150, 150, 150)
	want := 100.0 / 300.0
	if got := s.OverspendRatio(100); math.Abs(got-want) > 1e-12 {
		t.Errorf("ΔP×T = %v, want %v", got, want)
	}
	if got := s.OverspendRatio(1000); got != 0 {
		t.Errorf("no-overspend ratio = %v", got)
	}
	if got := (&Series{}).OverspendRatio(10); got != 0 {
		t.Errorf("empty-series ratio = %v", got)
	}
}

// Property: 0 ≤ overspend ≤ total for any non-negative series; ratio in
// [0,1]; TimeAbove ≤ span.
func TestOverspendBoundsProperty(t *testing.T) {
	f := func(vals []uint16, thRaw uint16) bool {
		s := &Series{}
		for i, v := range vals {
			s.Add(time.Duration(i)*time.Second, units.Watts(v))
		}
		th := units.Watts(thRaw)
		over := float64(s.OverspendEnergy(th))
		total := float64(s.Energy())
		if over < 0 || over > total+1e-9 {
			return false
		}
		r := s.OverspendRatio(th)
		if r < 0 || r > 1 {
			return false
		}
		return s.TimeAbove(th) <= s.Span()+time.Millisecond
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// mkDoneJob fabricates a finished job by advancing it at the given
// slowdown.
func mkDoneJob(t *testing.T, slow float64) *workload.Job {
	t.Helper()
	spec, err := workload.SpecByName(workload.NPB(workload.ClassC), "EP")
	if err != nil {
		t.Fatal(err)
	}
	j, err := workload.NewJob(1, workload.Request{Spec: spec, NProcs: 8},
		[]node.ID{0}, 0, workload.JobConfig{})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Duration(0)
	for !j.Done() {
		j.Advance(now, time.Second, slow)
		now += time.Second
	}
	return j
}

func TestPerformanceMetric(t *testing.T) {
	fast := mkDoneJob(t, 1.0)
	slow := mkDoneJob(t, 0.5)
	perf := Performance([]*workload.Job{fast, slow})
	if perf >= 1 || perf <= 0 {
		t.Errorf("perf = %v", perf)
	}
	// Mean of ratios: fast contributes 1.0 exactly.
	if p := Performance([]*workload.Job{fast}); math.Abs(p-1) > 1e-9 {
		t.Errorf("unthrottled perf = %v, want 1", p)
	}
	if !math.IsNaN(Performance(nil)) {
		t.Error("empty job set should yield NaN")
	}
}

func TestCPLJ(t *testing.T) {
	fast := mkDoneJob(t, 1.0)
	slow := mkDoneJob(t, 0.5)
	jobs := []*workload.Job{fast, slow}
	if got := CPLJ(jobs, DefaultLosslessTol); got != 1 {
		t.Errorf("CPLJ = %d, want 1", got)
	}
	if got := CPLJFraction(jobs, DefaultLosslessTol); math.Abs(got-0.5) > 1e-9 {
		t.Errorf("CPLJ fraction = %v", got)
	}
	if !math.IsNaN(CPLJFraction(nil, 0.01)) {
		t.Error("empty CPLJ fraction should be NaN")
	}
}

func TestSummarise(t *testing.T) {
	s := series(t, 100, 200, 100)
	jobs := []*workload.Job{mkDoneJob(t, 1.0)}
	sum := Summarise(s, 150, jobs)
	if sum.PMax != 200 {
		t.Errorf("PMax = %v", sum.PMax)
	}
	if sum.JobsDone != 1 || sum.CPLJ != 1 {
		t.Errorf("jobs = %+v", sum)
	}
	if sum.Overspend <= 0 {
		t.Error("overspend should be positive (peak 200 > 150)")
	}
	if math.Abs(sum.Performance-1) > 1e-9 {
		t.Errorf("performance = %v", sum.Performance)
	}
}
