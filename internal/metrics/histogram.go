package metrics

import (
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/units"
)

// Histogram summarises the distribution of a power series: time-weighted
// quantiles and fixed-width bins. Facility planners read p99/p999 of the
// power signal when sizing feeds and breakers, which is exactly the
// provisioning question the paper opens with.
type Histogram struct {
	weights []weightedSample
	sorted  bool
}

type weightedSample struct {
	w float64 // seconds this level was held (trapezoid midpoint weight)
	p float64 // watts
}

// NewHistogram builds a time-weighted histogram from a series. Each
// segment between consecutive samples contributes its midpoint power with
// the segment duration as weight; an empty or single-sample series yields
// an empty histogram.
func NewHistogram(s *Series) *Histogram {
	h := &Histogram{}
	for i := 1; i < s.Len(); i++ {
		t0, p0 := s.At(i - 1)
		t1, p1 := s.At(i)
		w := (t1 - t0).Seconds()
		if w <= 0 {
			continue
		}
		h.weights = append(h.weights, weightedSample{w: w, p: float64(p0+p1) / 2})
	}
	return h
}

// Empty reports whether the histogram carries no mass.
func (h *Histogram) Empty() bool { return len(h.weights) == 0 }

func (h *Histogram) sort() {
	if !h.sorted {
		sort.Slice(h.weights, func(a, b int) bool { return h.weights[a].p < h.weights[b].p })
		h.sorted = true
	}
}

// Quantile returns the time-weighted q-quantile (q ∈ [0,1]) of the power
// signal: the level below which the system spent a q fraction of its
// time. NaN on an empty histogram.
func (h *Histogram) Quantile(q float64) units.Watts {
	if h.Empty() {
		return units.Watts(math.NaN())
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	h.sort()
	total := 0.0
	for _, w := range h.weights {
		total += w.w
	}
	target := q * total
	acc := 0.0
	for _, w := range h.weights {
		acc += w.w
		if acc >= target {
			return units.Watts(w.p)
		}
	}
	return units.Watts(h.weights[len(h.weights)-1].p)
}

// Quantiles is a convenience for several quantiles at once.
func (h *Histogram) Quantiles(qs ...float64) []units.Watts {
	out := make([]units.Watts, len(qs))
	for i, q := range qs {
		out[i] = h.Quantile(q)
	}
	return out
}

// Bin is one row of a rendered histogram.
type Bin struct {
	Lo, Hi units.Watts
	Time   time.Duration
	Frac   float64
}

// Bins splits the observed power range into n equal-width bins and
// returns the time spent in each. Returns nil on an empty histogram or
// n ≤ 0.
func (h *Histogram) Bins(n int) []Bin {
	if h.Empty() || n <= 0 {
		return nil
	}
	h.sort()
	lo := h.weights[0].p
	hi := h.weights[len(h.weights)-1].p
	if hi == lo {
		hi = lo + 1
	}
	width := (hi - lo) / float64(n)
	bins := make([]Bin, n)
	total := 0.0
	for i := range bins {
		bins[i].Lo = units.Watts(lo + float64(i)*width)
		bins[i].Hi = units.Watts(lo + float64(i+1)*width)
	}
	for _, w := range h.weights {
		idx := int((w.p - lo) / width)
		if idx >= n {
			idx = n - 1
		}
		bins[idx].Time += time.Duration(w.w * float64(time.Second))
		total += w.w
	}
	if total > 0 {
		for i := range bins {
			bins[i].Frac = bins[i].Time.Seconds() / total
		}
	}
	return bins
}

// String renders the headline quantiles.
func (h *Histogram) String() string {
	if h.Empty() {
		return "histogram: empty"
	}
	qs := h.Quantiles(0.50, 0.95, 0.99)
	return fmt.Sprintf("p50=%v p95=%v p99=%v", qs[0], qs[1], qs[2])
}
