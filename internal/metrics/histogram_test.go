package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/units"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(&Series{})
	if !h.Empty() {
		t.Error("empty series produced mass")
	}
	if !math.IsNaN(float64(h.Quantile(0.5))) {
		t.Error("empty quantile not NaN")
	}
	if h.Bins(4) != nil {
		t.Error("empty bins not nil")
	}
	if !strings.Contains(h.String(), "empty") {
		t.Error("empty String")
	}
	single := &Series{}
	single.Add(0, 100)
	if !NewHistogram(single).Empty() {
		t.Error("single sample carries no interval mass")
	}
}

func TestHistogramQuantilesUniform(t *testing.T) {
	// Constant 100 W: every quantile is 100.
	s := series(t, 100, 100, 100, 100)
	h := NewHistogram(s)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := h.Quantile(q); got != 100 {
			t.Errorf("Quantile(%v) = %v", q, got)
		}
	}
}

func TestHistogramQuantilesTimeWeighted(t *testing.T) {
	// 9 s at 100 W, then 1 s at 200 W: p50 must be 100, p99 near 200.
	s := &Series{}
	for i := 0; i <= 9; i++ {
		s.Add(time.Duration(i)*time.Second, 100)
	}
	s.Add(10*time.Second, 200)
	h := NewHistogram(s)
	if got := h.Quantile(0.5); got != 100 {
		t.Errorf("p50 = %v, want 100", got)
	}
	if got := h.Quantile(0.99); got < 140 {
		t.Errorf("p99 = %v, want the high segment", got)
	}
	// Out-of-range q clamps.
	if h.Quantile(-1) != h.Quantile(0) || h.Quantile(2) != h.Quantile(1) {
		t.Error("quantile clamping broken")
	}
}

func TestHistogramBins(t *testing.T) {
	// Segment midpoints: 100, 100, 100, 200 → three seconds in the low
	// half of the range, one in the high half.
	s := series(t, 100, 100, 100, 100, 300)
	h := NewHistogram(s)
	bins := h.Bins(2)
	if len(bins) != 2 {
		t.Fatalf("bins = %d", len(bins))
	}
	fracSum := bins[0].Frac + bins[1].Frac
	if math.Abs(fracSum-1) > 1e-9 {
		t.Errorf("fractions sum to %v", fracSum)
	}
	if bins[0].Time != 3*time.Second || bins[1].Time != time.Second {
		t.Errorf("bins = %v / %v, want 3s / 1s", bins[0].Time, bins[1].Time)
	}
	if h.Bins(0) != nil {
		t.Error("n=0 bins")
	}
}

func TestHistogramDegenerateRange(t *testing.T) {
	s := series(t, 50, 50)
	bins := NewHistogram(s).Bins(3)
	if bins == nil {
		t.Fatal("constant series produced no bins")
	}
	total := time.Duration(0)
	for _, b := range bins {
		total += b.Time
	}
	if total != time.Second {
		t.Errorf("binned time = %v, want 1 s", total)
	}
}

// Property: quantiles are monotone in q and bounded by the series range.
func TestHistogramQuantileMonotoneProperty(t *testing.T) {
	f := func(vals []uint16, qa, qb uint8) bool {
		if len(vals) < 2 {
			return true
		}
		s := &Series{}
		lo, hi := math.MaxFloat64, 0.0
		for i, v := range vals {
			s.Add(time.Duration(i)*time.Second, units.Watts(v))
			if fv := float64(v); fv < lo {
				lo = fv
			}
			if fv := float64(v); fv > hi {
				hi = fv
			}
		}
		h := NewHistogram(s)
		a, b := float64(qa)/255, float64(qb)/255
		if a > b {
			a, b = b, a
		}
		va, vb := float64(h.Quantile(a)), float64(h.Quantile(b))
		return va <= vb && va >= lo-1e-9 && vb <= hi+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
