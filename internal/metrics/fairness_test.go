package metrics

import (
	"math"
	"testing"
	"time"

	"repro/internal/node"
	"repro/internal/workload"
)

// mkJobSlow builds a finished job run at the given constant slowdown.
func mkJobSlow(t *testing.T, name string, slow float64) *workload.Job {
	t.Helper()
	spec, err := workload.SpecByName(workload.NPB(workload.ClassC), name)
	if err != nil {
		t.Fatal(err)
	}
	j, err := workload.NewJob(1, workload.Request{Spec: spec, NProcs: 8},
		[]node.ID{0}, 0, workload.JobConfig{})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Duration(0)
	for !j.Done() {
		j.Advance(now, time.Second, slow)
		now += time.Second
	}
	return j
}

func TestSlowdownLoss(t *testing.T) {
	fast := mkJobSlow(t, "EP", 1.0)
	if got := SlowdownLoss(fast); got != 0 {
		t.Errorf("lossless job loss = %v", got)
	}
	slow := mkJobSlow(t, "EP", 0.5)
	if got := SlowdownLoss(slow); got <= 0.5 {
		t.Errorf("half-speed EP loss = %v, want ≈1 (doubled runtime)", got)
	}
	spec, _ := workload.SpecByName(workload.NPB(workload.ClassC), "EP")
	unfinished, _ := workload.NewJob(2, workload.Request{Spec: spec, NProcs: 8},
		[]node.ID{0}, 0, workload.JobConfig{})
	if !math.IsNaN(SlowdownLoss(unfinished)) {
		t.Error("unfinished job loss not NaN")
	}
}

func TestJainFairnessExtremes(t *testing.T) {
	fast := mkJobSlow(t, "EP", 1.0)
	slow := mkJobSlow(t, "EP", 0.5)
	// One of four jobs bears all the loss: J = 1/4.
	jobs := []*workload.Job{slow, fast, fast, fast}
	if got := JainFairness(jobs); math.Abs(got-0.25) > 1e-9 {
		t.Errorf("concentrated loss J = %v, want 0.25", got)
	}
	// All jobs equally slowed: J = 1.
	even := []*workload.Job{
		mkJobSlow(t, "EP", 0.8), mkJobSlow(t, "EP", 0.8), mkJobSlow(t, "EP", 0.8),
	}
	if got := JainFairness(even); math.Abs(got-1) > 1e-9 {
		t.Errorf("even loss J = %v, want 1", got)
	}
	// No losses at all: vacuous fairness 1.
	if got := JainFairness([]*workload.Job{fast, fast}); got != 1 {
		t.Errorf("lossless J = %v", got)
	}
	if !math.IsNaN(JainFairness(nil)) {
		t.Error("empty set not NaN")
	}
}

func TestMaxSlowdownLoss(t *testing.T) {
	jobs := []*workload.Job{
		mkJobSlow(t, "EP", 1.0),
		mkJobSlow(t, "EP", 0.8),
		mkJobSlow(t, "EP", 0.6),
	}
	got := MaxSlowdownLoss(jobs)
	want := SlowdownLoss(jobs[2])
	if got != want {
		t.Errorf("max loss = %v, want %v", got, want)
	}
	if MaxSlowdownLoss(nil) != 0 {
		t.Error("empty max loss")
	}
}

func TestByBenchmark(t *testing.T) {
	jobs := []*workload.Job{
		mkJobSlow(t, "EP", 1.0),
		mkJobSlow(t, "EP", 0.5),
		mkJobSlow(t, "CG", 1.0),
	}
	rows := ByBenchmark(jobs, DefaultLosslessTol)
	if len(rows) != 2 {
		t.Fatalf("rows = %+v", rows)
	}
	// Sorted by name: CG first.
	if rows[0].Benchmark != "CG" || rows[1].Benchmark != "EP" {
		t.Errorf("order = %v, %v", rows[0].Benchmark, rows[1].Benchmark)
	}
	cg, ep := rows[0], rows[1]
	if cg.Jobs != 1 || cg.CPLJFrac != 1 || cg.Performance < 0.999 {
		t.Errorf("CG = %+v", cg)
	}
	if ep.Jobs != 2 || ep.CPLJFrac != 0.5 {
		t.Errorf("EP = %+v", ep)
	}
	if ep.MaxLoss <= 0.5 {
		t.Errorf("EP max loss = %v", ep.MaxLoss)
	}
	if got := ByBenchmark(nil, 0.001); len(got) != 0 {
		t.Errorf("empty breakdown = %v", got)
	}
}
