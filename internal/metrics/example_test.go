package metrics_test

import (
	"fmt"
	"time"

	"repro/internal/metrics"
	"repro/internal/units"
)

func ExampleSeries_OverspendRatio() {
	// A power signal that spends one of its three seconds 50 W above a
	// 100 W provision threshold.
	var s metrics.Series
	s.Add(0, 100)
	s.Add(1*time.Second, 150)
	s.Add(2*time.Second, 150)
	s.Add(3*time.Second, 100)

	// ΔP×T = energy above the threshold / total energy (§V.C metric 4):
	// 100 J of overspend against 400 J of total energy.
	fmt.Printf("ΔP×T = %.3f\n", s.OverspendRatio(100))
	// Output: ΔP×T = 0.250
}

func ExampleHistogram_Quantile() {
	var s metrics.Series
	for i := 0; i <= 9; i++ {
		s.Add(time.Duration(i)*time.Second, 30000)
	}
	s.Add(10*time.Second, units.KW(38)) // one brief spike
	h := metrics.NewHistogram(&s)
	fmt.Printf("p50 = %v\n", h.Quantile(0.50))
	// Output: p50 = 30.00 kW
}
