package metrics

import (
	"math"
	"sort"

	"repro/internal/workload"
)

// SlowdownLoss returns the job's relative performance loss
// T_cap/T_ref − 1 (0 for a lossless job). Unfinished jobs return NaN.
func SlowdownLoss(j *workload.Job) float64 {
	if !j.Done() || j.ReferenceDuration() <= 0 {
		return math.NaN()
	}
	loss := float64(j.ActualDuration())/float64(j.ReferenceDuration()) - 1
	if loss < 0 {
		return 0
	}
	return loss
}

// JainFairness computes Jain's fairness index over the per-job slowdown
// losses:
//
//	J = (Σ x_i)² / (n · Σ x_i²)
//
// J = 1 when every job bears the same loss; J → 1/n when one job bears
// all of it. §IV argues state-based policies are "not fair when the
// targeted job does not cause the problem" and motivates HRI as the
// fairer alternative — this index makes the claim measurable. A run with
// no losses at all returns 1 (vacuous fairness); an empty job set NaN.
func JainFairness(jobs []*workload.Job) float64 {
	n, sum, sumsq := 0, 0.0, 0.0
	for _, j := range jobs {
		loss := SlowdownLoss(j)
		if math.IsNaN(loss) {
			continue
		}
		n++
		sum += loss
		sumsq += loss * loss
	}
	if n == 0 {
		return math.NaN()
	}
	if sumsq == 0 {
		return 1
	}
	return sum * sum / (float64(n) * sumsq)
}

// MaxSlowdownLoss returns the worst per-job loss (the straggler's pain).
func MaxSlowdownLoss(jobs []*workload.Job) float64 {
	max := 0.0
	for _, j := range jobs {
		if loss := SlowdownLoss(j); !math.IsNaN(loss) && loss > max {
			max = loss
		}
	}
	return max
}

// BenchmarkBreakdown summarises per-benchmark outcomes: which workloads
// pay for power capping under a given policy.
type BenchmarkBreakdown struct {
	Benchmark   string
	Jobs        int
	Performance float64 // mean T_ref/T_cap
	CPLJFrac    float64
	MaxLoss     float64
}

// ByBenchmark groups finished jobs by benchmark name, sorted by name.
func ByBenchmark(jobs []*workload.Job, tol float64) []BenchmarkBreakdown {
	type acc struct {
		n, lossless int
		perf, maxL  float64
	}
	m := map[string]*acc{}
	for _, j := range jobs {
		if !j.Done() || j.ActualDuration() <= 0 {
			continue
		}
		a, ok := m[j.Spec().Name]
		if !ok {
			a = &acc{}
			m[j.Spec().Name] = a
		}
		a.n++
		a.perf += float64(j.ReferenceDuration()) / float64(j.ActualDuration())
		if j.Lossless(tol) {
			a.lossless++
		}
		if loss := SlowdownLoss(j); loss > a.maxL {
			a.maxL = loss
		}
	}
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]BenchmarkBreakdown, 0, len(names))
	for _, name := range names {
		a := m[name]
		out = append(out, BenchmarkBreakdown{
			Benchmark:   name,
			Jobs:        a.n,
			Performance: a.perf / float64(a.n),
			CPLJFrac:    float64(a.lossless) / float64(a.n),
			MaxLoss:     a.maxL,
		})
	}
	return out
}
