package thermal_test

import (
	"fmt"
	"time"

	"repro/internal/thermal"
	"repro/internal/units"
)

func ExampleTracker() {
	// One Tianhe node held at 350 W settles at 22 + 0.08·350 = 50 °C.
	tr, _ := thermal.NewTracker(1, thermal.Tianhe())
	for i := 0; i < 3600; i++ {
		tr.Step(time.Second, []units.Watts{350})
	}
	fmt.Printf("steady state ≈ %.0f °C\n", tr.TempC(0))
	// Output: steady state ≈ 50 °C
}
