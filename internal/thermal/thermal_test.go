package thermal

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/units"
)

func TestParamsValidate(t *testing.T) {
	if err := Tianhe().Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(*Params){
		func(p *Params) { p.ResistanceCPerW = 0 },
		func(p *Params) { p.TimeConstant = 0 },
		func(p *Params) { p.FailDoubleC = 0 },
		func(p *Params) { p.LeakagePerC = -1 },
		func(p *Params) { p.CoolingFactor = -1 },
	}
	for i, mutate := range cases {
		p := Tianhe()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestNewTrackerValidation(t *testing.T) {
	if _, err := NewTracker(0, Tianhe()); err == nil {
		t.Error("zero nodes accepted")
	}
	bad := Tianhe()
	bad.TimeConstant = 0
	if _, err := NewTracker(1, bad); err == nil {
		t.Error("invalid params accepted")
	}
}

func TestStepSizeMismatch(t *testing.T) {
	tr, _ := NewTracker(2, Tianhe())
	if err := tr.Step(time.Second, []units.Watts{100}); err == nil {
		t.Error("mismatched power slice accepted")
	}
}

func TestSteadyStateTemperature(t *testing.T) {
	p := Tianhe()
	tr, _ := NewTracker(1, p)
	// Hold 350 W until the RC settles: T_ss = 22 + 0.08·350 = 50 °C.
	for i := 0; i < 2000; i++ {
		if err := tr.Step(time.Second, []units.Watts{350}); err != nil {
			t.Fatal(err)
		}
	}
	if got := tr.TempC(0); math.Abs(got-50) > 0.5 {
		t.Errorf("steady state = %.2f °C, want ≈50", got)
	}
}

func TestWarmupIsGradual(t *testing.T) {
	tr, _ := NewTracker(1, Tianhe())
	tr.Step(time.Second, []units.Watts{350})
	if got := tr.TempC(0); got > 23 {
		t.Errorf("temperature jumped to %.2f after 1 s (τ is 2 min)", got)
	}
	// One time constant in: ≈63% of the way to steady state.
	tr2, _ := NewTracker(1, Tianhe())
	for i := 0; i < 120; i++ {
		tr2.Step(time.Second, []units.Watts{350})
	}
	rise := (tr2.TempC(0) - 22) / 28
	if rise < 0.55 || rise < 0 || rise > 0.72 {
		t.Errorf("rise after one τ = %.2f, want ≈0.63", rise)
	}
}

func TestCoolingFollowsPowerDrop(t *testing.T) {
	tr, _ := NewTracker(1, Tianhe())
	for i := 0; i < 1000; i++ {
		tr.Step(time.Second, []units.Watts{350})
	}
	hot := tr.TempC(0)
	for i := 0; i < 1000; i++ {
		tr.Step(time.Second, []units.Watts{140})
	}
	cool := tr.TempC(0)
	if cool >= hot {
		t.Errorf("temperature did not fall after throttling: %.1f → %.1f", hot, cool)
	}
	want := 22 + 0.08*140
	if math.Abs(cool-want) > 0.5 {
		t.Errorf("cool steady state = %.2f, want %.2f", cool, want)
	}
}

func TestPeakTracking(t *testing.T) {
	tr, _ := NewTracker(3, Tianhe())
	powers := []units.Watts{100, 400, 200}
	for i := 0; i < 3000; i++ {
		tr.Step(time.Second, powers)
	}
	s := tr.Summarise()
	if s.PeakNode != 1 {
		t.Errorf("peak node = %d, want the 400 W node", s.PeakNode)
	}
	if s.PeakC < 50 {
		t.Errorf("peak = %.1f °C, want ≈54", s.PeakC)
	}
}

func TestFailureMultiplierDoubling(t *testing.T) {
	// A fleet pinned exactly at FailRef+10 °C must report ≈2×.
	p := Tianhe()
	target := p.FailRefC + p.FailDoubleC // 50 °C
	pw := units.Watts((target - p.AmbientC) / p.ResistanceCPerW)
	tr, _ := NewTracker(2, p)
	// Settle first, then reset accumulators so only the steady phase
	// counts.
	for i := 0; i < 5000; i++ {
		tr.Step(time.Second, []units.Watts{pw, pw})
	}
	tr.ResetAccumulators()
	for i := 0; i < 1000; i++ {
		tr.Step(time.Second, []units.Watts{pw, pw})
	}
	s := tr.Summarise()
	if math.Abs(s.FailureMultiplier-2) > 0.05 {
		t.Errorf("failure multiplier = %.3f, want ≈2.0 at +10 °C", s.FailureMultiplier)
	}
}

func TestCoolingEnergyLLNLFactor(t *testing.T) {
	tr, _ := NewTracker(1, Tianhe())
	for i := 0; i < 100; i++ {
		tr.Step(time.Second, []units.Watts{300})
	}
	// 0.7 W cooling per IT watt: 100 s × 300 W × 0.7 = 21 kJ.
	if got := float64(tr.Summarise().CoolingEnergy); math.Abs(got-21000) > 1 {
		t.Errorf("cooling energy = %v, want 21 kJ", got)
	}
}

func TestLeakageFactor(t *testing.T) {
	tr, _ := NewTracker(1, Tianhe())
	if tr.LeakageFactor(0) != 1 {
		t.Error("cold node should have factor 1")
	}
	for i := 0; i < 5000; i++ {
		tr.Step(time.Second, []units.Watts{400}) // T_ss = 54 °C
	}
	f := tr.LeakageFactor(0)
	// 14 °C over the 40 °C reference × 0.2%/°C ≈ 1.028.
	if f < 1.02 || f > 1.04 {
		t.Errorf("leakage factor = %.4f, want ≈1.028", f)
	}
}

func TestResetAccumulators(t *testing.T) {
	tr, _ := NewTracker(1, Tianhe())
	for i := 0; i < 100; i++ {
		tr.Step(time.Second, []units.Watts{350})
	}
	before := tr.TempC(0)
	tr.ResetAccumulators()
	s := tr.Summarise()
	if s.CoolingEnergy != 0 || s.FailureMultiplier != 0 {
		t.Errorf("accumulators not reset: %+v", s)
	}
	if tr.TempC(0) != before {
		t.Error("reset must keep temperatures")
	}
	if s.PeakC != before {
		t.Errorf("peak after reset = %.2f, want current temp %.2f", s.PeakC, before)
	}
}

// Property: temperatures stay within [ambient, ambient + R·maxP] for any
// power sequence in range.
func TestTemperatureEnvelopeProperty(t *testing.T) {
	p := Tianhe()
	f := func(powers []uint16) bool {
		tr, err := NewTracker(1, p)
		if err != nil {
			return false
		}
		maxP := 0.0
		for _, raw := range powers {
			pw := float64(raw % 500)
			if pw > maxP {
				maxP = pw
			}
			tr.Step(10*time.Second, []units.Watts{units.Watts(pw)})
			tc := tr.TempC(0)
			if tc < p.AmbientC-1e-9 || tc > p.AmbientC+p.ResistanceCPerW*maxP+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: hotter runs never report lower failure multipliers.
func TestFailureMonotoneProperty(t *testing.T) {
	p := Tianhe()
	f := func(aRaw, bRaw uint8) bool {
		lo, hi := float64(aRaw), float64(bRaw)
		if lo > hi {
			lo, hi = hi, lo
		}
		run := func(pw float64) float64 {
			tr, _ := NewTracker(1, p)
			for i := 0; i < 300; i++ {
				tr.Step(10*time.Second, []units.Watts{units.Watts(pw)})
			}
			return tr.Summarise().FailureMultiplier
		}
		return run(hi)+1e-12 >= run(lo)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
