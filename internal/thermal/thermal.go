// Package thermal models the thermal consequences of power consumption
// that motivate the paper (§I.A):
//
//   - node temperature follows power through a first-order RC model;
//   - "the failure rate of a computing node doubles with every 10 °C
//     increase in the temperature" (Feng, cited in §I.A);
//   - "0.7 W energy is spent on cooling in order to dissipate every 1.0 W
//     of power consumed" (the LLNL figure in §I.A);
//   - the positive feedback loop between temperature and power: "a
//     computer chipset with higher temperatures consumes more power while
//     running identical computations at the same performance state".
//
// The paper's ΔP×T metric is defined as exactly this accumulated thermal
// impact; the Tracker lets experiments report it in physical terms —
// peak temperature, expected-failure multiplier, cooling energy — for
// capped vs uncapped runs.
package thermal

import (
	"fmt"
	"math"
	"time"

	"repro/internal/units"
)

// Params describes one node's thermal model.
type Params struct {
	// AmbientC is the machine-room inlet temperature.
	AmbientC float64
	// ResistanceCPerW converts dissipated power to steady-state
	// temperature rise: T_ss = Ambient + R·P.
	ResistanceCPerW float64
	// TimeConstant is the RC constant of the node's thermal mass.
	TimeConstant time.Duration
	// FailRefC is the reference temperature of the failure model; the
	// failure rate doubles every FailDoubleC above it.
	FailRefC    float64
	FailDoubleC float64
	// LeakagePerC is the fractional power increase per °C above FailRefC
	// (the temperature→power positive feedback); 0 disables it.
	LeakagePerC float64
	// CoolingFactor is the cooling power spent per watt of IT power
	// (0.7 on the paper's LLNL reference system).
	CoolingFactor float64
}

// Tianhe returns thermal parameters for the testbed node: a ~350 W node
// reaching ≈50 °C steady state in a 22 °C room, with a two-minute thermal
// time constant.
func Tianhe() Params {
	return Params{
		AmbientC:        22,
		ResistanceCPerW: 0.08,
		TimeConstant:    2 * time.Minute,
		FailRefC:        40,
		FailDoubleC:     10,
		LeakagePerC:     0.002,
		CoolingFactor:   0.7,
	}
}

// Validate checks the parameters.
func (p Params) Validate() error {
	if p.ResistanceCPerW <= 0 {
		return fmt.Errorf("thermal: thermal resistance must be positive")
	}
	if p.TimeConstant <= 0 {
		return fmt.Errorf("thermal: time constant must be positive")
	}
	if p.FailDoubleC <= 0 {
		return fmt.Errorf("thermal: failure doubling interval must be positive")
	}
	if p.LeakagePerC < 0 || p.CoolingFactor < 0 {
		return fmt.Errorf("thermal: negative leakage or cooling factor")
	}
	return nil
}

// Tracker integrates node temperatures over a run.
type Tracker struct {
	p     Params
	temps []float64 // per node, °C

	peakC      float64
	peakNode   int
	failWeight float64 // ∫ 2^((T−ref)/double) dt, in node·seconds
	refWeight  float64 // ∫ 1 dt per node — normalisation
	coolJoules float64
}

// NewTracker creates a tracker for n nodes, all starting at ambient.
func NewTracker(n int, p Params) (*Tracker, error) {
	if n <= 0 {
		return nil, fmt.Errorf("thermal: need at least one node")
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	t := &Tracker{p: p, temps: make([]float64, n), peakC: p.AmbientC}
	for i := range t.temps {
		t.temps[i] = p.AmbientC
	}
	return t, nil
}

// Step advances every node's temperature by dt given its dissipated
// power, and accumulates the failure and cooling integrals. The powers
// slice must have one entry per node.
func (t *Tracker) Step(dt time.Duration, powers []units.Watts) error {
	if len(powers) != len(t.temps) {
		return fmt.Errorf("thermal: %d powers for %d nodes", len(powers), len(t.temps))
	}
	sec := dt.Seconds()
	alpha := sec / t.p.TimeConstant.Seconds()
	if alpha > 1 {
		alpha = 1
	}
	for i, pw := range powers {
		tss := t.p.AmbientC + t.p.ResistanceCPerW*float64(pw)
		t.temps[i] += alpha * (tss - t.temps[i])
		if t.temps[i] > t.peakC {
			t.peakC, t.peakNode = t.temps[i], i
		}
		t.failWeight += sec * math.Exp2((t.temps[i]-t.p.FailRefC)/t.p.FailDoubleC)
		t.refWeight += sec
		t.coolJoules += sec * t.p.CoolingFactor * float64(pw)
	}
	return nil
}

// TempC returns node i's current temperature.
func (t *Tracker) TempC(i int) float64 { return t.temps[i] }

// ResetAccumulators zeroes the peak and the failure/cooling integrals
// while keeping the current temperatures — used at the end of a training
// period so the summary covers only the measured window.
func (t *Tracker) ResetAccumulators() {
	t.peakC, t.peakNode = t.MeanC(), 0
	for i, v := range t.temps {
		if v > t.peakC {
			t.peakC, t.peakNode = v, i
		}
	}
	t.failWeight, t.refWeight, t.coolJoules = 0, 0, 0
}

// MeanC returns the current mean node temperature.
func (t *Tracker) MeanC() float64 {
	sum := 0.0
	for _, v := range t.temps {
		sum += v
	}
	return sum / float64(len(t.temps))
}

// LeakageFactor returns the temperature-driven power multiplier for node
// i: 1 + LeakagePerC·max(0, T−FailRef). Node models multiply their draw
// by it to close the §I.A positive feedback loop.
func (t *Tracker) LeakageFactor(i int) float64 {
	over := t.temps[i] - t.p.FailRefC
	if over <= 0 || t.p.LeakagePerC == 0 {
		return 1
	}
	return 1 + t.p.LeakagePerC*over
}

// Summary is the run's accumulated thermal outcome.
type Summary struct {
	// PeakC is the hottest temperature any node reached; PeakNode which.
	PeakC    float64
	PeakNode int
	// MeanFinalC is the mean temperature at the end of the run.
	MeanFinalC float64
	// FailureMultiplier is the time-averaged failure-rate multiplier
	// relative to a fleet pinned at FailRefC: 1.0 means reference
	// reliability, 2.0 means failures arrive twice as fast.
	FailureMultiplier float64
	// CoolingEnergy is the energy the cooling plant spent removing the
	// fleet's heat (CoolingFactor × IT energy).
	CoolingEnergy units.Joules
}

// Summarise returns the accumulated outcome.
func (t *Tracker) Summarise() Summary {
	s := Summary{
		PeakC:         t.peakC,
		PeakNode:      t.peakNode,
		MeanFinalC:    t.MeanC(),
		CoolingEnergy: units.Joules(t.coolJoules),
	}
	if t.refWeight > 0 {
		s.FailureMultiplier = t.failWeight / t.refWeight
	}
	return s
}
