package pdist

import (
	"math"
	"testing"
	"time"

	"repro/internal/node"
	"repro/internal/units"
)

func TestLayout(t *testing.T) {
	l := Tianhe128Layout()
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	if l.Nodes() != 128 {
		t.Errorf("nodes = %d", l.Nodes())
	}
	cases := []struct {
		id  node.ID
		cab int
	}{{0, 0}, {31, 0}, {32, 1}, {127, 3}, {500, 3}, {-1, 0}}
	for _, c := range cases {
		if got := l.CabinetOf(c.id); got != c.cab {
			t.Errorf("CabinetOf(%d) = %d, want %d", c.id, got, c.cab)
		}
	}
	if err := (Layout{}).Validate(); err == nil {
		t.Error("zero layout accepted")
	}
}

func TestNewMonitorValidation(t *testing.T) {
	if _, err := NewMonitor(Layout{}, 0); err == nil {
		t.Error("invalid layout accepted")
	}
	if _, err := NewMonitor(Tianhe128Layout(), -5); err == nil {
		t.Error("negative breaker accepted")
	}
}

func TestObserveSizeMismatch(t *testing.T) {
	m, _ := NewMonitor(Layout{Cabinets: 2, NodesPer: 2}, 0)
	if err := m.Observe(time.Second, []units.Watts{1}); err == nil {
		t.Error("short power slice accepted")
	}
}

func mkPowers(perNode ...float64) []units.Watts {
	out := make([]units.Watts, len(perNode))
	for i, p := range perNode {
		out[i] = units.Watts(p)
	}
	return out
}

func TestPerCabinetAccounting(t *testing.T) {
	// 2 cabinets × 2 nodes; cabinet 0 hot, cabinet 1 cool.
	m, err := NewMonitor(Layout{Cabinets: 2, NodesPer: 2}, 500)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := m.Observe(time.Second, mkPowers(300, 300, 100, 100)); err != nil {
			t.Fatal(err)
		}
	}
	s := m.Summarise()
	if s.HottestCabinet != 0 {
		t.Errorf("hottest = %d", s.HottestCabinet)
	}
	if s.Cabinets[0].Peak != 600 || s.Cabinets[1].Peak != 200 {
		t.Errorf("peaks = %v / %v", s.Cabinets[0].Peak, s.Cabinets[1].Peak)
	}
	// Cabinet 0 over its 500 W rating by 100 W for 10 s = 1 kJ.
	if got := float64(s.Cabinets[0].Overspend); math.Abs(got-1000) > 1e-9 {
		t.Errorf("overspend = %v, want 1 kJ", got)
	}
	if s.Cabinets[1].Overspend != 0 {
		t.Error("cool cabinet overspent")
	}
	if s.TripRiskFraction != 1 {
		t.Errorf("trip risk = %v, want 1 (every sample)", s.TripRiskFraction)
	}
	// Imbalance = 600 / mean(600,200) = 1.5.
	if math.Abs(s.PeakImbalance-1.5) > 1e-9 {
		t.Errorf("imbalance = %v", s.PeakImbalance)
	}
	// Energy: cabinet 0 = 600 W × 10 s.
	if got := float64(s.Cabinets[0].Energy); math.Abs(got-6000) > 1e-9 {
		t.Errorf("energy = %v", got)
	}
}

func TestZeroBreakerRecordsPeaksOnly(t *testing.T) {
	m, _ := NewMonitor(Layout{Cabinets: 1, NodesPer: 2}, 0)
	m.Observe(time.Second, mkPowers(1000, 1000))
	s := m.Summarise()
	if s.Cabinets[0].Overspend != 0 || s.TripRiskFraction != 0 {
		t.Errorf("breakerless monitor flagged overspend: %+v", s)
	}
	if s.Cabinets[0].Peak != 2000 {
		t.Errorf("peak = %v", s.Cabinets[0].Peak)
	}
}

func TestReset(t *testing.T) {
	m, _ := NewMonitor(Layout{Cabinets: 1, NodesPer: 1}, 100)
	m.Observe(time.Second, mkPowers(500))
	m.Reset()
	s := m.Summarise()
	if s.Cabinets[0].Peak != 0 || s.Cabinets[0].Overspend != 0 || s.TripRiskFraction != 0 {
		t.Errorf("reset incomplete: %+v", s)
	}
	// Balanced empty history: imbalance reports 0 (no mean peak).
	if s.PeakImbalance != 0 {
		t.Errorf("imbalance after reset = %v", s.PeakImbalance)
	}
}

func TestBalancedImbalanceIsOne(t *testing.T) {
	m, _ := NewMonitor(Layout{Cabinets: 4, NodesPer: 1}, 0)
	m.Observe(time.Second, mkPowers(250, 250, 250, 250))
	if s := m.Summarise(); math.Abs(s.PeakImbalance-1) > 1e-9 {
		t.Errorf("balanced imbalance = %v", s.PeakImbalance)
	}
}
