// Package pdist models the power distribution hierarchy beneath the
// facility feed: cabinets (racks) with individual PDU/breaker ratings.
//
// The paper manages one global budget — the power provision capability —
// but provision is physically delivered through per-cabinet feeds, and a
// system that respects the global cap can still trip one cabinet's
// breaker when power-hungry jobs concentrate in a single rack. The
// Monitor tracks per-cabinet power alongside the global signal so
// experiments can quantify that risk and evaluate placement strategies
// against it.
//
// The Tianhe-1A variant's 128 nodes are laid out as 4 cabinets × 32
// nodes (the full machine packs 64 compute nodes per cabinet pair; the
// experimental partition is assumed to keep that density).
package pdist

import (
	"fmt"
	"time"

	"repro/internal/node"
	"repro/internal/units"
)

// Layout maps nodes to cabinets: contiguous blocks of NodesPer node IDs.
type Layout struct {
	Cabinets int
	NodesPer int
}

// Tianhe128Layout returns the assumed testbed layout: 4 cabinets × 32.
func Tianhe128Layout() Layout { return Layout{Cabinets: 4, NodesPer: 32} }

// Validate checks the layout.
func (l Layout) Validate() error {
	if l.Cabinets <= 0 || l.NodesPer <= 0 {
		return fmt.Errorf("pdist: need positive cabinets and nodes per cabinet")
	}
	return nil
}

// Nodes returns the total node count covered.
func (l Layout) Nodes() int { return l.Cabinets * l.NodesPer }

// CabinetOf maps a node to its cabinet index; nodes beyond the layout
// fold into the last cabinet so a misconfigured cluster degrades rather
// than panics.
func (l Layout) CabinetOf(id node.ID) int {
	c := int(id) / l.NodesPer
	if c < 0 {
		return 0
	}
	if c >= l.Cabinets {
		return l.Cabinets - 1
	}
	return c
}

// Monitor integrates per-cabinet power over a run.
type Monitor struct {
	layout  Layout
	breaker units.Watts // per-cabinet rating; 0 disables overspend checks

	peak      []float64 // per cabinet, watts
	overJ     []float64 // per cabinet, joules above the breaker rating
	energy    []float64 // per cabinet, joules
	tripRisks int       // samples with any cabinet above rating
	samples   int
}

// NewMonitor creates a monitor. breaker is the per-cabinet PDU rating
// (0 = record peaks only).
func NewMonitor(layout Layout, breaker units.Watts) (*Monitor, error) {
	if err := layout.Validate(); err != nil {
		return nil, err
	}
	if breaker < 0 {
		return nil, fmt.Errorf("pdist: negative breaker rating")
	}
	return &Monitor{
		layout:  layout,
		breaker: breaker,
		peak:    make([]float64, layout.Cabinets),
		overJ:   make([]float64, layout.Cabinets),
		energy:  make([]float64, layout.Cabinets),
	}, nil
}

// Observe accounts one interval: powers[i] is node i's draw held for dt.
func (m *Monitor) Observe(dt time.Duration, powers []units.Watts) error {
	if len(powers) != m.layout.Nodes() {
		return fmt.Errorf("pdist: %d powers for %d nodes", len(powers), m.layout.Nodes())
	}
	sec := dt.Seconds()
	cab := make([]float64, m.layout.Cabinets)
	for i, p := range powers {
		cab[m.layout.CabinetOf(node.ID(i))] += float64(p)
	}
	tripped := false
	for c, p := range cab {
		if p > m.peak[c] {
			m.peak[c] = p
		}
		m.energy[c] += p * sec
		if m.breaker > 0 && p > float64(m.breaker) {
			m.overJ[c] += (p - float64(m.breaker)) * sec
			tripped = true
		}
	}
	if tripped {
		m.tripRisks++
	}
	m.samples++
	return nil
}

// CabinetSummary is one cabinet's accumulated outcome.
type CabinetSummary struct {
	Cabinet   int
	Peak      units.Watts
	Energy    units.Joules
	Overspend units.Joules // energy above the breaker rating
}

// Summary is the run's distribution-level outcome.
type Summary struct {
	Breaker units.Watts
	// Cabinets, per cabinet.
	Cabinets []CabinetSummary
	// HottestCabinet is the cabinet with the highest peak.
	HottestCabinet int
	// PeakImbalance is hottest cabinet peak / mean cabinet peak — 1.0
	// means perfectly balanced racks.
	PeakImbalance float64
	// TripRiskFraction is the fraction of observation intervals in which
	// at least one cabinet exceeded its breaker rating.
	TripRiskFraction float64
}

// Reset zeroes the accumulators (used at the end of a training period so
// the summary covers the measured window only).
func (m *Monitor) Reset() {
	for c := range m.peak {
		m.peak[c], m.overJ[c], m.energy[c] = 0, 0, 0
	}
	m.tripRisks, m.samples = 0, 0
}

// Summarise returns the accumulated outcome.
func (m *Monitor) Summarise() Summary {
	s := Summary{Breaker: m.breaker}
	meanPeak, maxPeak := 0.0, 0.0
	for c := range m.peak {
		s.Cabinets = append(s.Cabinets, CabinetSummary{
			Cabinet:   c,
			Peak:      units.Watts(m.peak[c]),
			Energy:    units.Joules(m.energy[c]),
			Overspend: units.Joules(m.overJ[c]),
		})
		meanPeak += m.peak[c]
		if m.peak[c] > maxPeak {
			maxPeak = m.peak[c]
			s.HottestCabinet = c
		}
	}
	meanPeak /= float64(len(m.peak))
	if meanPeak > 0 {
		s.PeakImbalance = maxPeak / meanPeak
	}
	if m.samples > 0 {
		s.TripRiskFraction = float64(m.tripRisks) / float64(m.samples)
	}
	return s
}
