package cluster

import (
	"math/rand"
	"testing"
	"time"

	"repro/internal/node"
	"repro/internal/power"
	"repro/internal/units"
)

func mkCluster(t *testing.T, n, priv int) *Cluster {
	t.Helper()
	c, err := New(Config{Nodes: n, Model: power.TianheNode(), Privileged: priv})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Nodes: 0, Model: power.TianheNode()}); err == nil {
		t.Error("zero nodes accepted")
	}
	if _, err := New(Config{Nodes: 4, Model: power.TianheNode(), Privileged: 5}); err == nil {
		t.Error("privileged > nodes accepted")
	}
	if _, err := New(Config{Nodes: 4, Model: power.TianheNode(), Privileged: -1}); err == nil {
		t.Error("negative privileged accepted")
	}
	if _, err := New(Config{Nodes: 4}); err == nil {
		t.Error("zero model accepted")
	}
}

func TestTianhe128(t *testing.T) {
	c, err := Tianhe128(rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if c.Size() != 128 {
		t.Errorf("size = %d", c.Size())
	}
	if len(c.Candidates()) != 128 {
		t.Errorf("candidates = %d, want all 128", len(c.Candidates()))
	}
	// P_thy for the testbed should land near 47 kW.
	if p := c.TheoreticalPeak(); p < units.KW(43) || p > units.KW(52) {
		t.Errorf("P_thy = %v, outside plausible band", p)
	}
	if c.FloorPower() >= c.TheoreticalPeak() {
		t.Error("floor power not below theoretical peak")
	}
}

func TestPrivilegedSpread(t *testing.T) {
	c := mkCluster(t, 8, 2)
	if got := len(c.Candidates()); got != 6 {
		t.Fatalf("candidates = %d, want 6", got)
	}
	// Privileged nodes are spread, not clustered at the front.
	if !c.Node(0).Controllable() == false && !c.Node(1).Controllable() == false {
		t.Log("spread check: first two both privileged would indicate clustering")
	}
	priv := []node.ID{}
	for _, n := range c.Nodes() {
		if !n.Controllable() {
			priv = append(priv, n.ID())
		}
	}
	if len(priv) != 2 {
		t.Fatalf("privileged = %v", priv)
	}
	if priv[1]-priv[0] < 2 {
		t.Errorf("privileged nodes adjacent: %v", priv)
	}
}

func TestNodeLookup(t *testing.T) {
	c := mkCluster(t, 4, 0)
	if c.Node(2) == nil || c.Node(2).ID() != 2 {
		t.Error("lookup failed")
	}
	if c.Node(99) != nil {
		t.Error("phantom node")
	}
}

func TestSetCandidateCount(t *testing.T) {
	c := mkCluster(t, 128, 0)
	for _, k := range []int{0, 16, 48, 128} {
		if err := c.SetCandidateCount(k); err != nil {
			t.Fatal(err)
		}
		if got := len(c.Candidates()); got != k {
			t.Errorf("candidates = %d, want %d", got, k)
		}
	}
	if err := c.SetCandidateCount(129); err == nil {
		t.Error("oversized candidate count accepted")
	}
	if err := c.SetCandidateCount(-1); err == nil {
		t.Error("negative candidate count accepted")
	}
}

func TestSetCandidateCountRestoresLeavers(t *testing.T) {
	c := mkCluster(t, 8, 0)
	// Degrade everyone, then shrink the candidate set: leavers must be
	// restored to full performance since the manager can no longer
	// actuate them.
	for _, n := range c.Nodes() {
		if err := n.SetLevel(0); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.SetCandidateCount(2); err != nil {
		t.Fatal(err)
	}
	for _, n := range c.Nodes() {
		if !n.Controllable() && !n.AtHighest() {
			t.Errorf("node %d left candidate set at level %d", n.ID(), n.Level())
		}
		if n.Controllable() && !n.AtLowest() {
			t.Errorf("node %d should have kept its degraded level", n.ID())
		}
	}
}

func TestCandidateIDsEvenlySpread(t *testing.T) {
	c := mkCluster(t, 128, 0)
	if err := c.SetCandidateCount(4); err != nil {
		t.Fatal(err)
	}
	ids := c.CandidateIDs()
	if len(ids) != 4 {
		t.Fatalf("ids = %v", ids)
	}
	// Gaps should be roughly 32 apart.
	for i := 1; i < len(ids); i++ {
		gap := int(ids[i] - ids[i-1])
		if gap < 16 || gap > 48 {
			t.Errorf("uneven spread: %v", ids)
		}
	}
}

func TestTruePowerSumsNodes(t *testing.T) {
	c := mkCluster(t, 4, 0)
	var want units.Watts
	for _, n := range c.Nodes() {
		want += n.TruePower()
	}
	if got := c.TruePower(); got != want {
		t.Errorf("TruePower = %v, want %v", got, want)
	}
	// Loading a node raises system power.
	before := c.TruePower()
	c.Node(0).SetLoad(node.Load{CPUUtil: 1})
	if c.TruePower() <= before {
		t.Error("loading a node did not raise system power")
	}
}

func TestTickAdvancesCounters(t *testing.T) {
	c := mkCluster(t, 2, 0)
	c.Node(0).SetLoad(node.Load{CPUUtil: 0.5})
	before := c.Node(0).Snapshot(0)
	c.Tick(time.Second)
	after := c.Node(0).Snapshot(time.Second)
	if after.CPU.Total() <= before.CPU.Total() {
		t.Error("tick did not advance node counters")
	}
}

func TestCheckControllability(t *testing.T) {
	c := mkCluster(t, 8, 0)
	// All candidates floored at full load ≈ 8 × 208 W ≈ 1.7 kW.
	if err := c.CheckControllability(units.KW(2)); err != nil {
		t.Errorf("2 kW provision should satisfy controllability: %v", err)
	}
	if err := c.CheckControllability(units.KW(1)); err == nil {
		t.Error("1 kW provision should violate controllability")
	}
	// Privileged nodes count at their full peak.
	cp := mkCluster(t, 8, 8)
	if err := cp.CheckControllability(units.KW(2)); err == nil {
		t.Error("all-privileged cluster cannot be controlled to 2 kW")
	}
}

func TestSpreadHelper(t *testing.T) {
	for _, tc := range []struct{ n, k, want int }{
		{10, 0, 0}, {10, 10, 10}, {10, 3, 3}, {128, 48, 48}, {5, 1, 1},
	} {
		got := 0
		for _, b := range spread(tc.n, tc.k) {
			if b {
				got++
			}
		}
		if got != tc.want {
			t.Errorf("spread(%d,%d) marked %d, want %d", tc.n, tc.k, got, tc.want)
		}
	}
}
