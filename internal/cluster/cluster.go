// Package cluster assembles the large-scale system under management: the
// node population, the paper's node-set classification (§II.A) — A_total,
// A_uncontrollable, A_candidate — and the aggregate quantities the
// architecture's assumptions (§II.D) are stated over, such as the
// theoretical maximal power P_thy.
package cluster

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/node"
	"repro/internal/power"
	"repro/internal/units"
)

// Config describes a homogeneous cluster build.
type Config struct {
	// Nodes is the total node count (|A_total|).
	Nodes int
	// Model is the per-node device/power model.
	Model power.Model
	// ModelFor, when non-nil, overrides Model per node index —
	// heterogeneous clusters (Algorithm 1 explicitly supports them,
	// §III.B property 1).
	ModelFor func(i int) power.Model
	// Privileged is how many nodes are permanently uncontrollable
	// (no power-management facility or performance-critical, §II.A).
	Privileged int
	// ModelError and JitterSigma are passed through to node construction.
	ModelError  float64
	JitterSigma float64
	// Rng drives per-node distortion and flicker draws; nil disables.
	Rng *rand.Rand
}

// Cluster is the managed system.
type Cluster struct {
	nodes []*node.Node
	byID  map[node.ID]*node.Node
}

// New builds a cluster. Privileged nodes are placed at evenly spaced IDs so
// candidate/privileged status does not correlate with placement order.
func New(cfg Config) (*Cluster, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("cluster: need at least one node, got %d", cfg.Nodes)
	}
	if cfg.Privileged < 0 || cfg.Privileged > cfg.Nodes {
		return nil, fmt.Errorf("cluster: privileged count %d outside [0,%d]", cfg.Privileged, cfg.Nodes)
	}
	priv := spread(cfg.Nodes, cfg.Privileged)
	c := &Cluster{byID: make(map[node.ID]*node.Node, cfg.Nodes)}
	for i := 0; i < cfg.Nodes; i++ {
		model := cfg.Model
		if cfg.ModelFor != nil {
			model = cfg.ModelFor(i)
		}
		n, err := node.New(node.ID(i), node.Config{
			Model:        model,
			Controllable: !priv[i],
			ModelError:   cfg.ModelError,
			JitterSigma:  cfg.JitterSigma,
			Rng:          cfg.Rng,
		})
		if err != nil {
			return nil, err
		}
		c.nodes = append(c.nodes, n)
		c.byID[n.ID()] = n
	}
	return c, nil
}

// spread marks k of n positions true, evenly spaced.
func spread(n, k int) []bool {
	out := make([]bool, n)
	if k <= 0 {
		return out
	}
	for i := 0; i < k; i++ {
		out[i*n/k] = true
	}
	return out
}

// Tianhe128 returns the paper's experimental environment: 128 Tianhe-1A
// nodes, all power-manageable, with a 2% model error and 0.5% power
// flicker.
func Tianhe128(rng *rand.Rand) (*Cluster, error) {
	return New(Config{
		Nodes:       128,
		Model:       power.TianheNode(),
		Privileged:  0,
		ModelError:  0.02,
		JitterSigma: 0.005,
		Rng:         rng,
	})
}

// Size returns |A_total|.
func (c *Cluster) Size() int { return len(c.nodes) }

// Nodes returns all nodes in ID order (A_total).
func (c *Cluster) Nodes() []*node.Node { return c.nodes }

// Node returns the node with the given ID, or nil.
func (c *Cluster) Node(id node.ID) *node.Node { return c.byID[id] }

// Candidates returns A_candidate = A_total − A_uncontrollable: the nodes
// currently subject to power management.
func (c *Cluster) Candidates() []*node.Node {
	out := make([]*node.Node, 0, len(c.nodes))
	for _, n := range c.nodes {
		if n.Controllable() {
			out = append(out, n)
		}
	}
	return out
}

// CandidateIDs returns the IDs in A_candidate.
func (c *Cluster) CandidateIDs() []node.ID {
	cand := c.Candidates()
	out := make([]node.ID, len(cand))
	for i, n := range cand {
		out[i] = n.ID()
	}
	return out
}

// SetCandidateCount reconfigures A_candidate to contain exactly k evenly
// spaced nodes (the remainder become uncontrollable). Figure 6 sweeps this.
// Nodes leaving the candidate set are restored to full performance first —
// the manager can no longer actuate them.
func (c *Cluster) SetCandidateCount(k int) error {
	if k < 0 || k > len(c.nodes) {
		return fmt.Errorf("cluster: candidate count %d outside [0,%d]", k, len(c.nodes))
	}
	keep := spread(len(c.nodes), k)
	for i, n := range c.nodes {
		if !keep[i] && n.Controllable() {
			// Restore before relinquishing control.
			if err := n.SetLevel(n.Levels() - 1); err != nil {
				return err
			}
		}
		n.SetControllable(keep[i])
	}
	return nil
}

// TruePower implements power.Source: the instantaneous IT load of the
// whole system.
func (c *Cluster) TruePower() units.Watts {
	var sum units.Watts
	for _, n := range c.nodes {
		sum += n.TruePower()
	}
	return sum
}

// TheoreticalPeak returns P_thy = Σ P_i (§II.D, Necessity).
func (c *Cluster) TheoreticalPeak() units.Watts {
	var sum units.Watts
	for _, n := range c.nodes {
		sum += n.MaxPower()
	}
	return sum
}

// FloorPower returns the aggregate draw with every node at its lowest
// level and idle — the bound the Controllability assumption compares
// against the provision capability.
func (c *Cluster) FloorPower() units.Watts {
	var sum units.Watts
	for _, n := range c.nodes {
		sum += n.Model().MinPower()
	}
	return sum
}

// Tick advances every node's kernel counters by dt.
func (c *Cluster) Tick(dt time.Duration) {
	for _, n := range c.nodes {
		n.Tick(dt)
	}
}

// CheckControllability verifies the Controllability assumption (§II.D):
// with all candidate nodes at their lowest level (and everything else at
// worst case), the system fits under the provision capability pMax. It
// returns an error naming the shortfall when the assumption fails.
func (c *Cluster) CheckControllability(pMax units.Watts) error {
	var worst units.Watts
	for _, n := range c.nodes {
		m := n.Model()
		if n.Controllable() {
			// Candidate floored: lowest level, full load.
			worst += m.Instant(1, 1, 1, 0)
		} else {
			worst += m.MaxPower()
		}
	}
	if worst > pMax {
		return fmt.Errorf("cluster: controllability violated: floored worst case %v exceeds provision %v", worst, pMax)
	}
	return nil
}
