package policy

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/node"
	"repro/internal/units"
	"repro/internal/workload"
)

// snap builds a snapshot with three jobs:
//
//	job 1 ("big"):   nodes 0-3, 300 W each, prev 290 W  (most power)
//	job 2 ("small"): nodes 4-5, 200 W each, prev 100 W  (fastest rise)
//	job 3 ("tiny"):  node 6,    150 W,      prev 150 W  (least power)
//
// plus idle node 7 and floor-level node 8 (both must never be selected).
func snap() *Snapshot {
	s := &Snapshot{P: units.KW(35), PL: units.KW(34)}
	add := func(id int, level int, idle bool, est, prev float64, job workload.JobID) {
		atLowest := level == 0
		lower := est - 15
		if atLowest {
			lower = est
		}
		s.Nodes = append(s.Nodes, NodeState{
			ID: node.ID(id), Level: level, MaxLevel: 9, AtLowest: atLowest,
			Idle: idle, Est: units.Watts(est), EstLower: units.Watts(lower),
			PrevEst: units.Watts(prev), Job: job,
		})
	}
	for i := 0; i < 4; i++ {
		add(i, 9, false, 300, 290, 1)
	}
	for i := 4; i < 6; i++ {
		add(i, 7, false, 200, 100, 2)
	}
	add(6, 5, false, 150, 150, 3)
	add(7, 9, true, 140, 140, 0)  // idle node
	add(8, 0, false, 160, 160, 3) // floor-level node of job 3
	jobs := map[workload.JobID][]int{1: {0, 1, 2, 3}, 2: {4, 5}, 3: {6, 8}}
	for _, jid := range []workload.JobID{1, 2, 3} {
		js := JobState{ID: jid}
		for _, nid := range jobs[jid] {
			n := s.Nodes[nid]
			js.Nodes = append(js.Nodes, n.ID)
			js.Power += n.Est
			js.PrevPower += n.PrevEst
			js.Saving += n.Est - n.EstLower
		}
		s.Jobs = append(s.Jobs, js)
	}
	return s
}

func ids(ns []node.ID) []int {
	out := make([]int, len(ns))
	for i, id := range ns {
		out[i] = int(id)
	}
	sort.Ints(out)
	return out
}

func TestMPCSelectsMostPowerConsumingJob(t *testing.T) {
	got := ids(MPC{}.Select(snap()))
	if !reflect.DeepEqual(got, []int{0, 1, 2, 3}) {
		t.Errorf("MPC selected %v, want job 1's nodes", got)
	}
}

func TestLPCSelectsLeastPowerConsumingJob(t *testing.T) {
	got := ids(LPC{}.Select(snap()))
	// Job 3 is least power; its floor-level node 8 must be excluded.
	if !reflect.DeepEqual(got, []int{6}) {
		t.Errorf("LPC selected %v, want [6]", got)
	}
}

func TestHRISelectsFastestRisingJob(t *testing.T) {
	got := ids(HRI{}.Select(snap()))
	if !reflect.DeepEqual(got, []int{4, 5}) {
		t.Errorf("HRI selected %v, want job 2's nodes", got)
	}
}

func TestRateOfIncrease(t *testing.T) {
	j := JobState{Power: 220, PrevPower: 200}
	if r := j.RateOfIncrease(); math.Abs(r-0.1) > 1e-12 {
		t.Errorf("rate = %v, want 0.1", r)
	}
	if r := (JobState{Power: 100}).RateOfIncrease(); r != 0 {
		t.Errorf("first-seen job rate = %v, want 0 (unknown)", r)
	}
	j = JobState{Power: 180, PrevPower: 200}
	if r := j.RateOfIncrease(); r >= 0 {
		t.Errorf("falling job rate = %v, want negative", r)
	}
}

func TestMPCCStopsWhenSavingCovers(t *testing.T) {
	s := snap()
	// Need P − PL = 1 kW; job 1 saves 4×15 = 60 W, job 2 30 W, job 3
	// 15 W: all jobs accumulate (total 105 < 1000).
	got := ids(MPCC{}.Select(s))
	if !reflect.DeepEqual(got, []int{0, 1, 2, 3, 4, 5, 6}) {
		t.Errorf("MPC-C = %v, want all degradable nodes", got)
	}
	// With a tiny deficit, only the most power consuming job is taken.
	s.P, s.PL = units.KW(34.05), units.KW(34)
	got = ids(MPCC{}.Select(s))
	if !reflect.DeepEqual(got, []int{0, 1, 2, 3}) {
		t.Errorf("MPC-C with 50 W deficit = %v, want job 1 only", got)
	}
}

func TestLPCCStartsFromLeastPower(t *testing.T) {
	s := snap()
	s.P, s.PL = units.KW(34.01), units.KW(34)
	got := ids(LPCC{}.Select(s))
	if !reflect.DeepEqual(got, []int{6}) {
		t.Errorf("LPC-C with 10 W deficit = %v, want tiny job only", got)
	}
}

func TestHRICOrdering(t *testing.T) {
	s := snap()
	s.P, s.PL = units.KW(34.02), units.KW(34)
	// 20 W deficit; fastest riser (job 2) saves 30 W ≥ 20: stop there.
	got := ids(HRIC{}.Select(s))
	if !reflect.DeepEqual(got, []int{4, 5}) {
		t.Errorf("HRI-C = %v, want job 2's nodes", got)
	}
}

func TestBFPPicksBestFit(t *testing.T) {
	s := snap()
	// Deficit 25 W: job 2 saves 30 (fits, excess 5), job 1 saves 60
	// (fits, excess 35), job 3 saves 15 (doesn't fit) → job 2.
	s.P, s.PL = units.KW(34.025), units.KW(34)
	got := ids(BFP{}.Select(s))
	if !reflect.DeepEqual(got, []int{4, 5}) {
		t.Errorf("BFP = %v, want job 2 (best fit)", got)
	}
	// Deficit larger than any single job's saving → largest saving.
	s.P, s.PL = units.KW(35), units.KW(34)
	got = ids(BFP{}.Select(s))
	if !reflect.DeepEqual(got, []int{0, 1, 2, 3}) {
		t.Errorf("BFP fallback = %v, want job 1 (largest saving)", got)
	}
}

func TestNoneSelectsNothing(t *testing.T) {
	if got := (None{}).Select(snap()); got != nil {
		t.Errorf("None selected %v", got)
	}
}

func TestAllSelectsEveryDegradableCandidate(t *testing.T) {
	got := ids(All{}.Select(snap()))
	// Everything except idle node 7 and floor node 8.
	if !reflect.DeepEqual(got, []int{0, 1, 2, 3, 4, 5, 6}) {
		t.Errorf("All = %v", got)
	}
}

func TestRandomSelectsOneJob(t *testing.T) {
	r := Random{Rng: rand.New(rand.NewSource(1))}
	jobSets := map[string]bool{}
	for i := 0; i < 100; i++ {
		got := ids(r.Select(snap()))
		if len(got) == 0 {
			t.Fatal("Random selected nothing")
		}
		key := ""
		for _, id := range got {
			key += string(rune('a' + id))
		}
		jobSets[key] = true
	}
	if len(jobSets) < 2 {
		t.Error("Random always picked the same job over 100 draws")
	}
	// nil rng degrades to deterministic first job.
	if got := ids(Random{}.Select(snap())); len(got) == 0 {
		t.Error("nil-rng Random selected nothing")
	}
}

func TestEmptySnapshot(t *testing.T) {
	empty := &Snapshot{P: 100, PL: 90}
	for _, name := range Names() {
		p, err := New(name, rand.New(rand.NewSource(1)))
		if err != nil {
			t.Fatal(err)
		}
		if got := p.Select(empty); len(got) != 0 {
			t.Errorf("%s selected %v from empty snapshot", name, got)
		}
	}
}

func TestNewUnknownPolicy(t *testing.T) {
	if _, err := New("does-not-exist", nil); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestNewCoversAllNames(t *testing.T) {
	for _, name := range Names() {
		p, err := New(name, rand.New(rand.NewSource(1)))
		if err != nil {
			t.Errorf("New(%q): %v", name, err)
			continue
		}
		if p.Name() != name {
			t.Errorf("policy %q reports name %q", name, p.Name())
		}
	}
}

// Property: no policy ever selects an idle or floor-level node — §III.B's
// validity requirement — for randomly generated snapshots.
func TestNoPolicySelectsUndegradableProperty(t *testing.T) {
	policies := make([]Policy, 0, len(Names()))
	for _, name := range Names() {
		p, _ := New(name, rand.New(rand.NewSource(2)))
		policies = append(policies, p)
	}
	f := func(seed int64, nNodes uint8, deficit uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nNodes%40) + 1
		s := &Snapshot{P: units.Watts(30000 + float64(deficit)), PL: 30000}
		jobs := map[workload.JobID]*JobState{}
		for i := 0; i < n; i++ {
			level := rng.Intn(10)
			est := 120 + rng.Float64()*200
			lower := est - rng.Float64()*20
			if level == 0 {
				lower = est
			}
			jid := workload.JobID(rng.Intn(5)) // 0 = no job
			ns := NodeState{
				ID: node.ID(i), Level: level, MaxLevel: 9,
				AtLowest: level == 0, Idle: rng.Float64() < 0.2,
				Est: units.Watts(est), EstLower: units.Watts(lower),
				PrevEst: units.Watts(est * (0.8 + rng.Float64()*0.4)),
				Job:     jid,
			}
			s.Nodes = append(s.Nodes, ns)
			if jid != 0 && !ns.Idle {
				js, ok := jobs[jid]
				if !ok {
					js = &JobState{ID: jid}
					jobs[jid] = js
				}
				js.Nodes = append(js.Nodes, ns.ID)
				js.Power += ns.Est
				js.PrevPower += ns.PrevEst
				js.Saving += ns.Est - ns.EstLower
			}
		}
		for _, js := range jobs {
			s.Jobs = append(s.Jobs, *js)
		}
		idx := nodeIndex(s)
		for _, p := range policies {
			for _, id := range p.Select(s) {
				st, ok := idx[id]
				if !ok || st.Idle || st.AtLowest {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// Property: collection policies' selections are supersets-or-equal when
// the deficit grows (more power to shed never selects fewer nodes), on a
// fixed snapshot.
func TestCollectionMonotoneInDeficit(t *testing.T) {
	s1, s2 := snap(), snap()
	s1.P, s1.PL = units.KW(34.02), units.KW(34)
	s2.P, s2.PL = units.KW(34.08), units.KW(34)
	small := ids(MPCC{}.Select(s1))
	large := ids(MPCC{}.Select(s2))
	if len(large) < len(small) {
		t.Errorf("larger deficit selected fewer nodes: %v vs %v", large, small)
	}
	set := map[int]bool{}
	for _, id := range large {
		set[id] = true
	}
	for _, id := range small {
		if !set[id] {
			t.Errorf("small-deficit selection %v not a subset of %v", small, large)
		}
	}
}

func TestMinCostPrefersInsensitiveJobs(t *testing.T) {
	// Two jobs with equal power and saving; job 1 compute-bound (util
	// 0.95), job 2 comm-bound (util 0.4): mincost must target job 2.
	s := &Snapshot{P: units.KW(35), PL: units.KW(34)}
	add := func(id int, util float64, job workload.JobID) {
		ns := NodeState{
			ID: node.ID(id), Level: 9, MaxLevel: 9,
			Est: 300, EstLower: 285, PrevEst: 300,
			CPUUtil: util, Job: job,
		}
		s.Nodes = append(s.Nodes, ns)
	}
	add(0, 0.95, 1)
	add(1, 0.95, 1)
	add(2, 0.40, 2)
	add(3, 0.40, 2)
	s.Jobs = []JobState{
		{ID: 1, Nodes: []node.ID{0, 1}, Power: 600, Saving: 30, Util: 0.95},
		{ID: 2, Nodes: []node.ID{2, 3}, Power: 600, Saving: 30, Util: 0.40},
	}
	got := ids(MinCost{}.Select(s))
	if !reflect.DeepEqual(got, []int{2, 3}) {
		t.Errorf("mincost selected %v, want the comm-bound job's nodes [2 3]", got)
	}
	// With equal utilisation, the bigger saving wins.
	s.Jobs[0].Util = 0.40
	s.Jobs[0].Saving = 60
	got = ids(MinCost{}.Select(s))
	if !reflect.DeepEqual(got, []int{0, 1}) {
		t.Errorf("mincost with equal util selected %v, want bigger saving [0 1]", got)
	}
}
