// Package policy implements the target set selection policies of §IV.
//
// A policy inspects a Snapshot — the global manager's per-cycle view of the
// candidate nodes and the jobs running on them — and returns the subset of
// candidate nodes (A_target) whose power budget the capping algorithm will
// cut by one level.
//
// State-based policies (MPC, MPC-C, LPC, LPC-C, BFP) select by the current
// power consumption of jobs; change-based policies (HRI, HRI-C) select by
// the rate of increase in job power. None/All/Random baselines support the
// evaluation.
package policy

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/node"
	"repro/internal/units"
	"repro/internal/workload"
)

// NodeState is the manager's view of one candidate node at this cycle.
type NodeState struct {
	ID    node.ID
	Level int
	// MaxLevel is the node's highest level index (Levels-1); the manager
	// needs it to know when a restored node leaves A_degraded.
	MaxLevel int
	AtLowest bool
	Idle     bool
	// Est is P(x): formula (1) evaluated at the node's current level.
	Est units.Watts
	// EstLower is P'(x): formula (1) evaluated one level lower (equal to
	// Est when the node is already at its lowest level).
	EstLower units.Watts
	// PrevEst is the previous cycle's P(x); zero on the first sighting.
	PrevEst units.Watts
	// CPUUtil is the node's sampled busy fraction this interval — the
	// manager's observable proxy for how frequency-sensitive the node's
	// work is.
	CPUUtil float64
	// Job is the job occupying the node; 0 when free.
	Job workload.JobID
}

// JobState aggregates the candidate nodes of one job.
type JobState struct {
	ID workload.JobID
	// Nodes is the paper's Nodes(J): non-idle candidate nodes running J.
	Nodes []node.ID
	// Power is P(J) = Σ P(x) over Nodes.
	Power units.Watts
	// PrevPower is P^{t−1}(J) over the same node set; zero if unknown.
	PrevPower units.Watts
	// Saving is Σ (P(x) − P'(x)): the predicted cut from degrading every
	// degradable node of the job by one level.
	Saving units.Watts
	// Util is the mean sampled CPU utilisation across Nodes — high means
	// compute-bound work that a DVFS cut will hurt proportionally.
	Util float64
}

// RateOfIncrease returns ΔP^t(J) = (P^t−P^{t−1})/P^{t−1}. A job first seen
// this cycle has no previous sample, so its rate is unknown and reported
// as 0 — the change-based policies only act on jobs with an observed
// history, exactly as the paper's formula (defined over two consecutive
// samples) requires.
func (j JobState) RateOfIncrease() float64 {
	if j.PrevPower <= 0 {
		return 0
	}
	return float64(j.Power-j.PrevPower) / float64(j.PrevPower)
}

// Snapshot is the full per-cycle sensing result handed to a policy.
type Snapshot struct {
	// P is the system power reading this cycle.
	P units.Watts
	// PL is the lower threshold in force; P−PL is the cut the collection
	// policies aim for.
	PL units.Watts
	// Nodes holds every candidate node's state.
	Nodes []NodeState
	// Jobs holds every job with at least one non-idle candidate node,
	// in ascending job ID order.
	Jobs []JobState
}

// Policy selects A_target from a snapshot. Implementations must only
// return nodes that are degradable: non-idle candidates above their lowest
// level (§III.B property 4).
type Policy interface {
	Name() string
	Select(s *Snapshot) []node.ID
}

// degradable reports whether a node may be selected.
func degradable(n NodeState) bool { return !n.Idle && !n.AtLowest }

// nodeIndex builds an ID → state lookup.
func nodeIndex(s *Snapshot) map[node.ID]NodeState {
	idx := make(map[node.ID]NodeState, len(s.Nodes))
	for _, n := range s.Nodes {
		idx[n.ID] = n
	}
	return idx
}

// degradableNodesOf filters a job's node list to the degradable ones.
func degradableNodesOf(j JobState, idx map[node.ID]NodeState) []node.ID {
	out := make([]node.ID, 0, len(j.Nodes))
	for _, id := range j.Nodes {
		if n, ok := idx[id]; ok && degradable(n) {
			out = append(out, id)
		}
	}
	return out
}

// jobsByPowerDesc returns jobs sorted by P(J) descending (ties by ID for
// determinism).
func jobsByPowerDesc(s *Snapshot) []JobState {
	jobs := append([]JobState(nil), s.Jobs...)
	sort.Slice(jobs, func(a, b int) bool {
		if jobs[a].Power != jobs[b].Power {
			return jobs[a].Power > jobs[b].Power
		}
		return jobs[a].ID < jobs[b].ID
	})
	return jobs
}

// selectSingleJob returns the degradable nodes of the job maximising key
// (with strict preference; ties by lower job ID). Jobs with no degradable
// nodes are skipped so the policy always returns an actionable set when
// one exists.
func selectSingleJob(s *Snapshot, key func(JobState) float64) []node.ID {
	idx := nodeIndex(s)
	best := -math.MaxFloat64
	var bestNodes []node.ID
	var bestID workload.JobID
	for _, j := range s.Jobs {
		nodes := degradableNodesOf(j, idx)
		if len(nodes) == 0 {
			continue
		}
		k := key(j)
		if k > best || (k == best && (bestNodes == nil || j.ID < bestID)) {
			best, bestNodes, bestID = k, nodes, j.ID
		}
	}
	return bestNodes
}

// MPC is the "most power consuming job" policy: target the nodes of the
// job with the largest P(J).
type MPC struct{}

// Name implements Policy.
func (MPC) Name() string { return "mpc" }

// Select implements Policy.
func (MPC) Select(s *Snapshot) []node.ID {
	return selectSingleJob(s, func(j JobState) float64 { return float64(j.Power) })
}

// LPC is the "least power consuming job" policy — slowest effect on power,
// least likely to cause green/yellow swings (§IV.A).
type LPC struct{}

// Name implements Policy.
func (LPC) Name() string { return "lpc" }

// Select implements Policy.
func (LPC) Select(s *Snapshot) []node.ID {
	return selectSingleJob(s, func(j JobState) float64 { return -float64(j.Power) })
}

// HRI is the "highest rate of increase" change-based policy: target the
// job with the largest ΔP^t(J).
type HRI struct{}

// Name implements Policy.
func (HRI) Name() string { return "hri" }

// Select implements Policy.
func (HRI) Select(s *Snapshot) []node.ID {
	return selectSingleJob(s, func(j JobState) float64 { return j.RateOfIncrease() })
}

// collect accumulates jobs in the given order until the predicted saving
// covers P − PL, per Algorithm 2's loop. It returns the union of the
// accumulated jobs' degradable nodes.
func collect(s *Snapshot, jobs []JobState) []node.ID {
	idx := nodeIndex(s)
	needed := float64(s.P - s.PL)
	saved := 0.0
	inSet := make(map[node.ID]bool)
	var out []node.ID
	for _, j := range jobs {
		added := false
		for _, id := range degradableNodesOf(j, idx) {
			if inSet[id] {
				continue
			}
			inSet[id] = true
			out = append(out, id)
			saved += float64(idx[id].Est - idx[id].EstLower)
			added = true
		}
		if added && saved >= needed {
			break
		}
	}
	return out
}

// MPCC is Algorithm 2, the "most power consuming job collection" policy:
// accumulate jobs in descending P(J) order until the saving Σ(P(x)−P'(x))
// reaches P − P_L.
type MPCC struct{}

// Name implements Policy.
func (MPCC) Name() string { return "mpc-c" }

// Select implements Policy.
func (MPCC) Select(s *Snapshot) []node.ID {
	return collect(s, jobsByPowerDesc(s))
}

// LPCC is the least-power counterpart of MPCC: accumulate jobs in
// ascending P(J) order.
type LPCC struct{}

// Name implements Policy.
func (LPCC) Name() string { return "lpc-c" }

// Select implements Policy.
func (LPCC) Select(s *Snapshot) []node.ID {
	jobs := jobsByPowerDesc(s)
	for i, j := 0, len(jobs)-1; i < j; i, j = i+1, j-1 {
		jobs[i], jobs[j] = jobs[j], jobs[i]
	}
	return collect(s, jobs)
}

// HRIC accumulates jobs by descending rate of increase until the saving
// covers P − P_L — the collection counterpart of HRI (§IV.B).
type HRIC struct{}

// Name implements Policy.
func (HRIC) Name() string { return "hri-c" }

// Select implements Policy.
func (HRIC) Select(s *Snapshot) []node.ID {
	jobs := append([]JobState(nil), s.Jobs...)
	sort.Slice(jobs, func(a, b int) bool {
		ra, rb := jobs[a].RateOfIncrease(), jobs[b].RateOfIncrease()
		if ra != rb {
			return ra > rb
		}
		return jobs[a].ID < jobs[b].ID
	})
	return collect(s, jobs)
}

// MinCost is a sensitivity-aware extension beyond the paper's §IV family,
// motivated by the fairness study: DVFS capping hurts compute-bound jobs
// (high CPU utilisation) far more than communication/memory-bound ones.
// MinCost targets the job with the best watts-saved per unit of likely
// slowdown, using the sampled CPU utilisation as the observable
// sensitivity proxy:
//
//	score(J) = Saving(J) / (0.1 + Util(J))
//
// It cuts comparable power to MPC while steering the performance cost
// towards the jobs that barely feel it.
type MinCost struct{}

// Name implements Policy.
func (MinCost) Name() string { return "mincost" }

// Select implements Policy.
func (MinCost) Select(s *Snapshot) []node.ID {
	return selectSingleJob(s, func(j JobState) float64 {
		return float64(j.Saving) / (0.1 + j.Util)
	})
}

// BFP is the "best fit job" policy: select the job whose one-level saving
// is just above P − P_L — a compromise between MPC and LPC (§IV.A). When
// no single job saves enough, it falls back to the job with the largest
// saving.
type BFP struct{}

// Name implements Policy.
func (BFP) Name() string { return "bfp" }

// Select implements Policy.
func (BFP) Select(s *Snapshot) []node.ID {
	idx := nodeIndex(s)
	needed := float64(s.P - s.PL)
	bestFit := math.MaxFloat64
	var fitNodes []node.ID
	largest := -1.0
	var largestNodes []node.ID
	for _, j := range s.Jobs {
		nodes := degradableNodesOf(j, idx)
		if len(nodes) == 0 {
			continue
		}
		saving := 0.0
		for _, id := range nodes {
			saving += float64(idx[id].Est - idx[id].EstLower)
		}
		if saving >= needed && saving < bestFit {
			bestFit, fitNodes = saving, nodes
		}
		if saving > largest {
			largest, largestNodes = saving, nodes
		}
	}
	if fitNodes != nil {
		return fitNodes
	}
	return largestNodes
}

// None never selects anything: the uncapped baseline.
type None struct{}

// Name implements Policy.
func (None) Name() string { return "none" }

// Select implements Policy.
func (None) Select(*Snapshot) []node.ID { return nil }

// All selects every degradable candidate — the indiscriminate throttling
// the related-work systems apply, used as an upper bound on power cut and
// performance damage.
type All struct{}

// Name implements Policy.
func (All) Name() string { return "all" }

// Select implements Policy.
func (All) Select(s *Snapshot) []node.ID {
	var out []node.ID
	for _, n := range s.Nodes {
		if degradable(n) {
			out = append(out, n.ID)
		}
	}
	return out
}

// Random selects the nodes of one uniformly random job with degradable
// nodes — a fairness baseline.
type Random struct{ Rng *rand.Rand }

// Name implements Policy.
func (Random) Name() string { return "random" }

// Select implements Policy.
func (r Random) Select(s *Snapshot) []node.ID {
	idx := nodeIndex(s)
	var eligible [][]node.ID
	for _, j := range s.Jobs {
		if nodes := degradableNodesOf(j, idx); len(nodes) > 0 {
			eligible = append(eligible, nodes)
		}
	}
	if len(eligible) == 0 {
		return nil
	}
	if r.Rng == nil {
		return eligible[0]
	}
	return eligible[r.Rng.Intn(len(eligible))]
}

// New constructs a policy by name. Random receives the given rng.
func New(name string, rng *rand.Rand) (Policy, error) {
	switch name {
	case "mpc":
		return MPC{}, nil
	case "mpc-c":
		return MPCC{}, nil
	case "lpc":
		return LPC{}, nil
	case "lpc-c":
		return LPCC{}, nil
	case "bfp":
		return BFP{}, nil
	case "hri":
		return HRI{}, nil
	case "hri-c":
		return HRIC{}, nil
	case "mincost":
		return MinCost{}, nil
	case "none":
		return None{}, nil
	case "all":
		return All{}, nil
	case "random":
		return Random{Rng: rng}, nil
	default:
		return nil, fmt.Errorf("policy: unknown policy %q (have %v)", name, Names())
	}
}

// Names lists every registered policy name.
func Names() []string {
	return []string{"mpc", "mpc-c", "lpc", "lpc-c", "bfp", "hri", "hri-c", "mincost", "none", "all", "random"}
}
