package policy_test

import (
	"fmt"

	"repro/internal/node"
	"repro/internal/policy"
	"repro/internal/units"
	"repro/internal/workload"
)

// snapshotOfTwoJobs builds the manager's view of a 4-node system running
// a big hot job (1) and a small cool job (2).
func snapshotOfTwoJobs() *policy.Snapshot {
	s := &policy.Snapshot{P: units.KW(1.25), PL: units.KW(1.2)}
	add := func(id int, est float64, job workload.JobID) {
		ns := policy.NodeState{
			ID: node.ID(id), Level: 9, MaxLevel: 9,
			Est: units.Watts(est), EstLower: units.Watts(est - 15),
			PrevEst: units.Watts(est), Job: job,
		}
		s.Nodes = append(s.Nodes, ns)
	}
	add(0, 320, 1)
	add(1, 320, 1)
	add(2, 320, 1)
	add(3, 250, 2)
	s.Jobs = []policy.JobState{
		{ID: 1, Nodes: []node.ID{0, 1, 2}, Power: 960, PrevPower: 960, Saving: 45},
		{ID: 2, Nodes: []node.ID{3}, Power: 250, PrevPower: 250, Saving: 15},
	}
	return s
}

func ExampleMPC_Select() {
	// MPC targets the nodes of the most power consuming job (§IV.A).
	targets := policy.MPC{}.Select(snapshotOfTwoJobs())
	fmt.Println(targets)
	// Output: [0 1 2]
}

func ExampleLPC_Select() {
	// LPC targets the least power consuming job — the gentlest cut.
	targets := policy.LPC{}.Select(snapshotOfTwoJobs())
	fmt.Println(targets)
	// Output: [3]
}

func ExampleNew() {
	p, err := policy.New("hri", nil)
	fmt.Println(p.Name(), err)
	// Output: hri <nil>
}
