package power

import (
	"fmt"
	"time"

	"repro/internal/units"
)

// Learner implements §III.A's threshold setting and adjustment algorithm.
//
// The system first runs a training period with P_peak initialised to P_Max
// (the power provision capability). During training the maximal observed
// power is recorded and adopted as P_peak at the end of training; after
// that, "the observation of the peak power consumption continues through
// the whole execution period" and the thresholds are re-derived from the
// lifetime peak every t_p control cycles with the 93%/84% rule. Using the
// lifetime peak (rather than a per-window peak) keeps the thresholds from
// ratcheting downwards once capping itself suppresses the observable peak.
//
// A zero training duration selects manual mode: the thresholds stay fixed
// at their P_Max-derived values, matching the paper's alternative of the
// administrator setting them "based on his empirical knowledge".
type Learner struct {
	marginL, marginH float64
	trainingUntil    time.Duration
	adjustEvery      int // t_p, in control cycles
	manual           bool
	trained          bool

	cycles   int
	lifetime units.Watts // peak observed over the whole run
	thr      Thresholds
}

// NewLearner creates a learner. pMax seeds P_peak (per §III.A the initial
// value of P_peak is P_Max); training lasts until the given virtual time
// (zero = manual mode, thresholds fixed); after training the thresholds
// are re-derived every adjustEvery cycles.
func NewLearner(pMax units.Watts, training time.Duration, adjustEvery int) (*Learner, error) {
	if pMax <= 0 {
		return nil, fmt.Errorf("power: learner needs positive P_Max, got %v", pMax)
	}
	if adjustEvery <= 0 {
		return nil, fmt.Errorf("power: learner needs positive adjustment period, got %d", adjustEvery)
	}
	l := &Learner{
		marginL:       DefaultMarginL,
		marginH:       DefaultMarginH,
		trainingUntil: training,
		adjustEvery:   adjustEvery,
		manual:        training == 0,
		trained:       training == 0,
		thr:           FromPeak(pMax, DefaultMarginL, DefaultMarginH),
	}
	return l, nil
}

// SetMargins overrides the default 16%/7% margins (for ablation studies).
// In manual mode the fixed thresholds are re-derived immediately from the
// initial P_peak; in learning mode the next adjustment uses the new
// margins.
func (l *Learner) SetMargins(marginL, marginH float64) error {
	if marginL < marginH {
		return fmt.Errorf("power: marginL (%v) must be ≥ marginH (%v) so P_L ≤ P_H", marginL, marginH)
	}
	if marginH < 0 || marginL >= 1 {
		return fmt.Errorf("power: margins out of range: L=%v H=%v", marginL, marginH)
	}
	// Recover the current P_peak from the existing thresholds before the
	// margins change.
	peak := units.Watts(float64(l.thr.PH) / (1 - l.marginH))
	l.marginL, l.marginH = marginL, marginH
	l.thr = FromPeak(peak, l.marginL, l.marginH)
	return nil
}

// Observe records one control cycle's power reading at virtual time now and
// returns the thresholds to use for this cycle. Threshold re-derivation
// happens at the end of the training period and every t_p cycles after it;
// in manual mode the thresholds never move.
func (l *Learner) Observe(now time.Duration, p units.Watts) Thresholds {
	if p > l.lifetime {
		l.lifetime = p
	}
	if l.manual {
		return l.thr
	}
	if !l.trained {
		if now >= l.trainingUntil {
			l.trained = true
			l.adopt()
		}
		return l.thr
	}
	l.cycles++
	if l.cycles >= l.adjustEvery {
		l.cycles = 0
		l.adopt()
	}
	return l.thr
}

// adopt re-derives thresholds from the lifetime peak. If no power has been
// observed yet, the thresholds are kept.
func (l *Learner) adopt() {
	if l.lifetime > 0 {
		l.thr = FromPeak(l.lifetime, l.marginL, l.marginH)
	}
}

// LearnerState is the serialisable snapshot of a Learner — everything a
// restarted manager needs to resume capping without a fresh training
// window: the lifetime peak, the trained flag, the position inside the
// t_p adjustment cycle, and the thresholds currently in force. JSON tags
// match the manager daemon's crash-recovery journal format.
type LearnerState struct {
	LifetimePeakW float64 `json:"lifetime_peak_w"`
	Trained       bool    `json:"trained"`
	AdjustCycles  int     `json:"adjust_cycles"` // cycles into the current t_p window
	PLW           float64 `json:"pl_w"`
	PHW           float64 `json:"ph_w"`
}

// State snapshots the learner for persistence.
func (l *Learner) State() LearnerState {
	return LearnerState{
		LifetimePeakW: float64(l.lifetime),
		Trained:       l.trained,
		AdjustCycles:  l.cycles,
		PLW:           float64(l.thr.PL),
		PHW:           float64(l.thr.PH),
	}
}

// Restore reloads a snapshot taken by State, replacing the learner's
// lifetime peak, trained flag, adjustment position and thresholds. A
// restored trained flag suppresses the training window entirely: the
// manager resumes capping on its first cycle. Invalid snapshots (negative
// peak, inverted thresholds) are rejected so a corrupted journal falls
// back to a cold start instead of poisoning the controller.
func (l *Learner) Restore(st LearnerState) error {
	if st.LifetimePeakW < 0 {
		return fmt.Errorf("power: learner restore: negative lifetime peak %v", st.LifetimePeakW)
	}
	thr := Thresholds{PL: units.Watts(st.PLW), PH: units.Watts(st.PHW)}
	if err := thr.Validate(); err != nil {
		return fmt.Errorf("power: learner restore: %w", err)
	}
	if thr.PH <= 0 {
		return fmt.Errorf("power: learner restore: non-positive P_H %v", thr.PH)
	}
	if st.AdjustCycles < 0 || st.AdjustCycles >= l.adjustEvery {
		return fmt.Errorf("power: learner restore: adjust position %d outside [0,%d)", st.AdjustCycles, l.adjustEvery)
	}
	l.lifetime = units.Watts(st.LifetimePeakW)
	l.trained = st.Trained || l.manual
	l.cycles = st.AdjustCycles
	l.thr = thr
	return nil
}

// Trained reports whether the training period has completed.
func (l *Learner) Trained() bool { return l.trained }

// Thresholds returns the thresholds currently in force.
func (l *Learner) Thresholds() Thresholds { return l.thr }

// LifetimePeak returns the largest power ever observed (the paper's P_max
// evaluation metric when observed on an uncapped run).
func (l *Learner) LifetimePeak() units.Watts { return l.lifetime }
