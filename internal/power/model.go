// Package power implements the sensing half of the paper's architecture:
// the node power profile model (formula 1), the facility power meter, the
// two-threshold green/yellow/red classification (§II.B), and the threshold
// learning rule P_H = 93%·P_peak, P_L = 84%·P_peak (§III.A).
package power

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/procfs"
	"repro/internal/units"
)

// Model is the per-node power profile model of §II.C. Given a node's device
// parameters it evaluates formula (1):
//
//	P(l) = P_idle(l) + Uti_CPU · Σ_x P_x(l)
//	     + Mem_used/Mem_total · P_mem(l)
//	     + Data_NIC/(τ·BW_NIC) · P_NIC(l)
type Model struct {
	CPU  device.CPU
	Mem  device.Memory
	NIC  device.NIC
	Idle device.IdleCurve
}

// TianheNode returns the profile model for the paper's testbed node.
func TianheNode() Model {
	return Model{
		CPU:  device.X5670(),
		Mem:  device.DDR3x12(),
		NIC:  device.TianheNIC(),
		Idle: device.TianheIdle(),
	}
}

// Validate checks all device sub-models.
func (m Model) Validate() error {
	if err := m.CPU.Validate(); err != nil {
		return err
	}
	if err := m.Mem.Validate(); err != nil {
		return err
	}
	if err := m.NIC.Validate(); err != nil {
		return err
	}
	return m.Idle.Validate()
}

// Levels returns the number of discrete power levels of the modelled node.
func (m Model) Levels() int { return m.CPU.Levels() }

// Instant evaluates formula (1) from instantaneous operating fractions:
// cpuUtil is Uti_CPU ∈ [0,1], memFrac is Mem_used/Mem_total ∈ [0,1] and
// nicFrac is Data_NIC/(τ·BW_NIC) ∈ [0,1].
func (m Model) Instant(cpuUtil, memFrac, nicFrac float64, level int) units.Watts {
	cpuUtil = units.Clamp(cpuUtil, 0, 1)
	memFrac = units.Clamp(memFrac, 0, 1)
	nicFrac = units.Clamp(nicFrac, 0, 1)
	p := m.Idle.At(level, m.CPU.Levels())
	p += units.Watts(cpuUtil * float64(m.CPU.DynMax(level)))
	p += units.Watts(memFrac * float64(m.Mem.DynMax))
	p += units.Watts(nicFrac * float64(m.NIC.DynMax))
	return p
}

// Estimate evaluates formula (1) from a procfs interval delta, exactly as
// the profiling agent does on a live node: CPU utilisation from jiffy
// deltas, memory occupancy from meminfo, NIC fraction from byte counters
// over the sampling interval τ against the link bandwidth.
func (m Model) Estimate(d procfs.Delta, level int) units.Watts {
	var memFrac float64
	if d.MemTotal > 0 {
		memFrac = float64(d.MemUsed) / float64(d.MemTotal)
	}
	var nicFrac float64
	if sec := d.Interval.Seconds(); sec > 0 {
		nicFrac = float64(d.NICBytes) / (sec * float64(m.NIC.Bandwidth))
	}
	return m.Instant(d.CPUUtil, memFrac, nicFrac, level)
}

// EstimateAtLevel is Estimate evaluated as if the node were moved to the
// given level with its workload fractions unchanged. MPC-C (Algorithm 2)
// uses it to compute P'(x), the predicted power after a one-level degrade.
func (m Model) EstimateAtLevel(d procfs.Delta, level int) units.Watts {
	return m.Estimate(d, level)
}

// Breakdown is formula (1) split into its four terms — the per-device
// attribution operators read when deciding *why* a node draws what it
// draws.
type Breakdown struct {
	Idle units.Watts // P_idle(l)
	CPU  units.Watts // Uti_CPU · Σ P_x(l)
	Mem  units.Watts // MemFrac · P_mem(l)
	NIC  units.Watts // NICFrac · P_NIC(l)
}

// Total sums the components.
func (b Breakdown) Total() units.Watts { return b.Idle + b.CPU + b.Mem + b.NIC }

// String renders the attribution compactly.
func (b Breakdown) String() string {
	return fmt.Sprintf("idle %v + cpu %v + mem %v + nic %v = %v",
		b.Idle, b.CPU, b.Mem, b.NIC, b.Total())
}

// EstimateBreakdown evaluates formula (1) term by term from an interval
// delta.
func (m Model) EstimateBreakdown(d procfs.Delta, level int) Breakdown {
	var memFrac float64
	if d.MemTotal > 0 {
		memFrac = float64(d.MemUsed) / float64(d.MemTotal)
	}
	var nicFrac float64
	if sec := d.Interval.Seconds(); sec > 0 {
		nicFrac = float64(d.NICBytes) / (sec * float64(m.NIC.Bandwidth))
	}
	return Breakdown{
		Idle: m.Idle.At(level, m.CPU.Levels()),
		CPU:  units.Watts(units.Clamp(d.CPUUtil, 0, 1) * float64(m.CPU.DynMax(level))),
		Mem:  units.Watts(units.Clamp(memFrac, 0, 1) * float64(m.Mem.DynMax)),
		NIC:  units.Watts(units.Clamp(nicFrac, 0, 1) * float64(m.NIC.DynMax)),
	}
}

// MaxPower returns P_i, the node's theoretical maximal consumption: top
// level with every device saturated. Σ over nodes gives the paper's P_thy.
func (m Model) MaxPower() units.Watts {
	top := m.CPU.Levels() - 1
	return m.Instant(1, 1, 1, top)
}

// MinPower returns the node's floor: lowest level, idle.
func (m Model) MinPower() units.Watts {
	return m.Instant(0, 0, 0, 0)
}

// State is the system power consumption state of §II.B.
type State int

// The three states, ordered by severity.
const (
	Green  State = iota // safe: P < P_L
	Yellow              // warning: P_L ≤ P < P_H
	Red                 // critical: P ≥ P_H
)

// String renders the state name.
func (s State) String() string {
	switch s {
	case Green:
		return "green"
	case Yellow:
		return "yellow"
	case Red:
		return "red"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// Thresholds holds the two configured limits P_L ≤ P_H.
type Thresholds struct {
	PL units.Watts
	PH units.Watts
}

// Validate checks the ordering invariant.
func (t Thresholds) Validate() error {
	if t.PL < 0 || t.PH < t.PL {
		return fmt.Errorf("power: invalid thresholds PL=%v PH=%v (need 0 ≤ PL ≤ PH)", t.PL, t.PH)
	}
	return nil
}

// Classify maps a system power reading to its state.
func (t Thresholds) Classify(p units.Watts) State {
	switch {
	case p < t.PL:
		return Green
	case p < t.PH:
		return Yellow
	default:
		return Red
	}
}

// Default threshold margins from Fan et al. (§III.A): the observed gap
// between achieved and theoretical aggregate power is 7%–16%, so P_H sits
// 7% and P_L 16% below the learned peak.
const (
	DefaultMarginH = 0.07
	DefaultMarginL = 0.16
)

// FromPeak derives thresholds from a peak power observation using the
// paper's rule: P_H = (1-marginH)·P_peak, P_L = (1-marginL)·P_peak.
func FromPeak(peak units.Watts, marginL, marginH float64) Thresholds {
	return Thresholds{
		PL: units.Watts((1 - marginL) * float64(peak)),
		PH: units.Watts((1 - marginH) * float64(peak)),
	}
}
