package power

import (
	"fmt"
	"math"

	"repro/internal/procfs"
	"repro/internal/units"
)

// Calibrator fits the coefficients of formula (1) from metered samples —
// the procedure the paper's authors would run once per node type on real
// hardware: exercise the node across load points at each DVFS level with
// a reference power meter attached, then least-squares fit
//
//	P(l) ≈ a_l + b_l·Uti_CPU + c_l·MemFrac + d_l·NICFrac
//
// per level l, recovering P_idle(l), Σ P_x(l), P_mem(l) and P_NIC(l).
// The Observability assumption (§II.D) — estimation "to a sufficient
// accuracy" — rests on exactly this fit being good.
type Calibrator struct {
	levels int
	bw     units.Bytes
	// Normal-equation accumulators per level: XᵀX (4×4, symmetric) and
	// Xᵀy (4).
	xtx [][10]float64 // packed upper triangle of the symmetric 4×4
	xty [][4]float64
	n   []int
}

// NewCalibrator creates a calibrator for a node type with the given
// number of DVFS levels and NIC bandwidth (needed to turn byte counters
// into NICFrac).
func NewCalibrator(levels int, nicBandwidth units.Bytes) (*Calibrator, error) {
	if levels <= 0 {
		return nil, fmt.Errorf("power: calibrator needs positive level count")
	}
	if nicBandwidth <= 0 {
		return nil, fmt.Errorf("power: calibrator needs positive NIC bandwidth")
	}
	return &Calibrator{
		levels: levels,
		bw:     nicBandwidth,
		xtx:    make([][10]float64, levels),
		xty:    make([][4]float64, levels),
		n:      make([]int, levels),
	}, nil
}

// features extracts the regression vector (1, util, memfrac, nicfrac).
func (c *Calibrator) features(d procfs.Delta) [4]float64 {
	var memFrac, nicFrac float64
	if d.MemTotal > 0 {
		memFrac = float64(d.MemUsed) / float64(d.MemTotal)
	}
	if sec := d.Interval.Seconds(); sec > 0 {
		nicFrac = float64(d.NICBytes) / (sec * float64(c.bw))
	}
	return [4]float64{1, units.Clamp(d.CPUUtil, 0, 1), units.Clamp(memFrac, 0, 1), units.Clamp(nicFrac, 0, 1)}
}

// Add accumulates one metered sample: the node's interval counters at a
// level, with the reference meter's reading.
func (c *Calibrator) Add(level int, d procfs.Delta, measured units.Watts) error {
	if level < 0 || level >= c.levels {
		return fmt.Errorf("power: sample level %d outside [0,%d)", level, c.levels)
	}
	x := c.features(d)
	k := 0
	for i := 0; i < 4; i++ {
		for j := i; j < 4; j++ {
			c.xtx[level][k] += x[i] * x[j]
			k++
		}
		c.xty[level][i] += x[i] * float64(measured)
	}
	c.n[level]++
	return nil
}

// Samples reports how many samples level l has accumulated.
func (c *Calibrator) Samples(l int) int { return c.n[l] }

// Calibrated is a fitted per-level power model.
type Calibrated struct {
	bw   units.Bytes
	coef [][4]float64 // per level: a, b, c, d
}

// Fit solves the per-level least squares. Every level needs at least 4
// samples with enough load diversity for the normal matrix to be
// invertible; levels that were never exercised are rejected.
func (c *Calibrator) Fit() (*Calibrated, error) {
	out := &Calibrated{bw: c.bw, coef: make([][4]float64, c.levels)}
	for l := 0; l < c.levels; l++ {
		if c.n[l] < 4 {
			return nil, fmt.Errorf("power: level %d has %d samples, need ≥ 4", l, c.n[l])
		}
		// Unpack the symmetric matrix.
		var m [4][4]float64
		k := 0
		for i := 0; i < 4; i++ {
			for j := i; j < 4; j++ {
				m[i][j] = c.xtx[l][k]
				m[j][i] = c.xtx[l][k]
				k++
			}
		}
		sol, err := solve4(m, c.xty[l])
		if err != nil {
			return nil, fmt.Errorf("power: level %d: %w (exercise more load points)", l, err)
		}
		out.coef[l] = sol
	}
	return out, nil
}

// solve4 solves a 4×4 linear system by Gaussian elimination with partial
// pivoting.
func solve4(m [4][4]float64, b [4]float64) ([4]float64, error) {
	const n = 4
	for col := 0; col < n; col++ {
		// Pivot.
		piv, pivAbs := col, math.Abs(m[col][col])
		for r := col + 1; r < n; r++ {
			if a := math.Abs(m[r][col]); a > pivAbs {
				piv, pivAbs = r, a
			}
		}
		if pivAbs < 1e-9 {
			return [4]float64{}, fmt.Errorf("singular normal matrix")
		}
		m[col], m[piv] = m[piv], m[col]
		b[col], b[piv] = b[piv], b[col]
		// Eliminate.
		for r := col + 1; r < n; r++ {
			f := m[r][col] / m[col][col]
			for cc := col; cc < n; cc++ {
				m[r][cc] -= f * m[col][cc]
			}
			b[r] -= f * b[col]
		}
	}
	var x [4]float64
	for r := n - 1; r >= 0; r-- {
		sum := b[r]
		for cc := r + 1; cc < n; cc++ {
			sum -= m[r][cc] * x[cc]
		}
		x[r] = sum / m[r][r]
	}
	return x, nil
}

// Estimate evaluates the fitted model for one interval delta at a level
// (clamped into the fitted range).
func (cal *Calibrated) Estimate(d procfs.Delta, level int) units.Watts {
	if level < 0 {
		level = 0
	}
	if level >= len(cal.coef) {
		level = len(cal.coef) - 1
	}
	var memFrac, nicFrac float64
	if d.MemTotal > 0 {
		memFrac = float64(d.MemUsed) / float64(d.MemTotal)
	}
	if sec := d.Interval.Seconds(); sec > 0 {
		nicFrac = float64(d.NICBytes) / (sec * float64(cal.bw))
	}
	co := cal.coef[level]
	p := co[0] + co[1]*units.Clamp(d.CPUUtil, 0, 1) +
		co[2]*units.Clamp(memFrac, 0, 1) + co[3]*units.Clamp(nicFrac, 0, 1)
	if p < 0 {
		p = 0
	}
	return units.Watts(p)
}

// Coefficients returns level l's fitted (P_idle, ΣP_cpu, P_mem, P_NIC).
func (cal *Calibrated) Coefficients(l int) (idle, cpu, mem, nic units.Watts) {
	co := cal.coef[l]
	return units.Watts(co[0]), units.Watts(co[1]), units.Watts(co[2]), units.Watts(co[3])
}
