package power

import (
	"math/rand"

	"repro/internal/units"
)

// Source is anything whose instantaneous true power draw can be read.
// The cluster implements it by summing node draws.
type Source interface {
	TruePower() units.Watts
}

// Meter simulates the facility power meter of the Observability assumption
// (§II.D): "the system's total power consumption can be measured directly".
// A real meter sees PSU conversion loss and has bounded accuracy, so the
// meter applies a fixed overhead factor and zero-mean Gaussian sensor noise.
type Meter struct {
	src      Source
	overhead float64 // PSU/distribution loss factor, e.g. 0.05 = 5%
	noise    float64 // relative σ of sensor noise, e.g. 0.003
	rng      *rand.Rand
}

// NewMeter wraps src. overhead is the fractional distribution loss added on
// top of the IT load; noiseSigma is the relative standard deviation of the
// reading error. rng may be nil for a noiseless meter.
func NewMeter(src Source, overhead, noiseSigma float64, rng *rand.Rand) *Meter {
	if overhead < 0 {
		overhead = 0
	}
	if noiseSigma < 0 {
		noiseSigma = 0
	}
	return &Meter{src: src, overhead: overhead, noise: noiseSigma, rng: rng}
}

// Read returns one meter sample of the current system power.
func (m *Meter) Read() units.Watts {
	p := float64(m.src.TruePower()) * (1 + m.overhead)
	if m.rng != nil && m.noise > 0 {
		p *= 1 + m.rng.NormFloat64()*m.noise
	}
	if p < 0 {
		p = 0
	}
	return units.Watts(p)
}

// TrueLoad returns the undistorted IT load (without overhead or noise);
// metrics that integrate energy use this to avoid double-counting noise.
func (m *Meter) TrueLoad() units.Watts { return m.src.TruePower() }
