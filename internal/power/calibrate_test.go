package power

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/procfs"
	"repro/internal/units"
)

// synthDelta builds an interval delta with the given fractions against
// the Tianhe node's memory/NIC sizes.
func synthDelta(m Model, util, memFrac, nicFrac float64) procfs.Delta {
	return procfs.Delta{
		Interval: time.Second,
		CPUUtil:  util,
		MemUsed:  uint64(memFrac * float64(m.Mem.TotalBytes)),
		MemTotal: m.Mem.TotalBytes,
		NICBytes: uint64(nicFrac * float64(m.NIC.Bandwidth)),
	}
}

func TestCalibratorValidation(t *testing.T) {
	if _, err := NewCalibrator(0, 1); err == nil {
		t.Error("zero levels accepted")
	}
	if _, err := NewCalibrator(10, 0); err == nil {
		t.Error("zero bandwidth accepted")
	}
	c, _ := NewCalibrator(10, units.GB(8))
	if err := c.Add(10, procfs.Delta{}, 100); err == nil {
		t.Error("out-of-range level accepted")
	}
	if err := c.Add(-1, procfs.Delta{}, 100); err == nil {
		t.Error("negative level accepted")
	}
}

func TestFitNeedsSamples(t *testing.T) {
	c, _ := NewCalibrator(2, units.GB(8))
	if _, err := c.Fit(); err == nil {
		t.Error("fit with no samples accepted")
	}
}

func TestFitNeedsDiversity(t *testing.T) {
	// Many samples but all at the same load point: the normal matrix is
	// singular and the fit must say so, not return garbage.
	m := TianheNode()
	c, _ := NewCalibrator(1, m.NIC.Bandwidth)
	d := synthDelta(m, 0.5, 0.5, 0.5)
	for i := 0; i < 50; i++ {
		if err := c.Add(0, d, 300); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Fit(); err == nil {
		t.Error("degenerate design matrix accepted")
	}
}

// TestCalibrationRecoversModel meters a known node model across a load
// sweep with sensor noise and checks the fit reproduces the model's
// estimates to within a watt-scale tolerance — the end-to-end procedure
// that grounds the Observability assumption.
func TestCalibrationRecoversModel(t *testing.T) {
	m := TianheNode()
	rng := rand.New(rand.NewSource(7))
	cal, err := NewCalibrator(m.Levels(), m.NIC.Bandwidth)
	if err != nil {
		t.Fatal(err)
	}
	// Metering campaign: a grid of load points per level, 0.5% meter
	// noise.
	for l := 0; l < m.Levels(); l++ {
		for _, util := range []float64{0, 0.25, 0.5, 0.75, 1} {
			for _, mem := range []float64{0.1, 0.5, 0.9} {
				for _, nic := range []float64{0, 0.3, 0.6} {
					d := synthDelta(m, util, mem, nic)
					truth := float64(m.Estimate(d, l))
					measured := truth * (1 + rng.NormFloat64()*0.005)
					if err := cal.Add(l, d, units.Watts(measured)); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
	}
	fitted, err := cal.Fit()
	if err != nil {
		t.Fatal(err)
	}
	// Validate on unseen load points.
	maxRel := 0.0
	for l := 0; l < m.Levels(); l++ {
		for i := 0; i < 50; i++ {
			d := synthDelta(m, rng.Float64(), rng.Float64(), rng.Float64())
			want := float64(m.Estimate(d, l))
			got := float64(fitted.Estimate(d, l))
			if rel := math.Abs(got-want) / want; rel > maxRel {
				maxRel = rel
			}
		}
	}
	if maxRel > 0.01 {
		t.Errorf("calibrated model deviates up to %.2f%% from truth, want < 1%%", 100*maxRel)
	}
	// Recovered coefficients match the device models.
	idle, cpu, mem, nic := fitted.Coefficients(m.Levels() - 1)
	if !units.ApproxEqual(float64(idle), float64(m.Idle.Max), 0.01) {
		t.Errorf("fitted idle %v vs model %v", idle, m.Idle.Max)
	}
	if !units.ApproxEqual(float64(cpu), float64(m.CPU.DynMax(m.Levels()-1)), 0.02) {
		t.Errorf("fitted ΣP_cpu %v vs model %v", cpu, m.CPU.DynMax(m.Levels()-1))
	}
	if !units.ApproxEqual(float64(mem), float64(m.Mem.DynMax), 0.05) {
		t.Errorf("fitted P_mem %v vs model %v", mem, m.Mem.DynMax)
	}
	if !units.ApproxEqual(float64(nic), float64(m.NIC.DynMax), 0.1) {
		t.Errorf("fitted P_NIC %v vs model %v", nic, m.NIC.DynMax)
	}
	if cal.Samples(0) != 45 {
		t.Errorf("samples(0) = %d", cal.Samples(0))
	}
}

func TestCalibratedEstimateClamps(t *testing.T) {
	m := TianheNode()
	cal, _ := NewCalibrator(2, m.NIC.Bandwidth)
	rng := rand.New(rand.NewSource(3))
	for l := 0; l < 2; l++ {
		for i := 0; i < 30; i++ {
			d := synthDelta(m, rng.Float64(), rng.Float64(), rng.Float64())
			cal.Add(l, d, m.Estimate(d, l))
		}
	}
	fitted, err := cal.Fit()
	if err != nil {
		t.Fatal(err)
	}
	d := synthDelta(m, 0.5, 0.5, 0.5)
	if fitted.Estimate(d, -3) != fitted.Estimate(d, 0) {
		t.Error("negative level not clamped")
	}
	if fitted.Estimate(d, 99) != fitted.Estimate(d, 1) {
		t.Error("overlarge level not clamped")
	}
}

func TestSolve4KnownSystem(t *testing.T) {
	// Identity-ish system with pivoting required.
	m := [4][4]float64{
		{0, 1, 0, 0},
		{2, 0, 0, 0},
		{0, 0, 0, 3},
		{0, 0, 4, 0},
	}
	b := [4]float64{5, 6, 7, 8}
	x, err := solve4(m, b)
	if err != nil {
		t.Fatal(err)
	}
	want := [4]float64{3, 5, 2, 7.0 / 3}
	for i := range want {
		if math.Abs(x[i]-want[i]) > 1e-12 {
			t.Errorf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
	var singular [4][4]float64
	if _, err := solve4(singular, b); err == nil {
		t.Error("singular system solved")
	}
}
