package power

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/procfs"
	"repro/internal/units"
)

func TestModelValidate(t *testing.T) {
	if err := TianheNode().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := TianheNode()
	bad.CPU.Freqs = nil
	if err := bad.Validate(); err == nil {
		t.Error("invalid CPU accepted")
	}
}

func TestInstantIdleEqualsIdleCurve(t *testing.T) {
	m := TianheNode()
	for l := 0; l < m.Levels(); l++ {
		got := m.Instant(0, 0, 0, l)
		want := m.Idle.At(l, m.Levels())
		if got != want {
			t.Errorf("idle power at level %d = %v, want %v", l, got, want)
		}
	}
}

func TestInstantFullLoadTopLevel(t *testing.T) {
	m := TianheNode()
	top := m.Levels() - 1
	got := m.Instant(1, 1, 1, top)
	want := m.Idle.At(top, m.Levels()) + m.CPU.DynMax(top) + m.Mem.DynMax + m.NIC.DynMax
	if math.Abs(float64(got-want)) > 1e-9 {
		t.Errorf("full load = %v, want %v", got, want)
	}
	// Tianhe-class node should land in the 300-400 W band.
	if got < 300 || got > 400 {
		t.Errorf("full-load node power %v outside plausible 300-400 W band", got)
	}
}

func TestInstantClampsFractions(t *testing.T) {
	m := TianheNode()
	if m.Instant(2, 2, 2, 9) != m.Instant(1, 1, 1, 9) {
		t.Error("fractions above 1 not clamped")
	}
	if m.Instant(-1, -1, -1, 0) != m.Instant(0, 0, 0, 0) {
		t.Error("negative fractions not clamped")
	}
}

func TestInstantMonotoneInLevel(t *testing.T) {
	m := TianheNode()
	for l := 1; l < m.Levels(); l++ {
		if m.Instant(0.8, 0.5, 0.3, l) <= m.Instant(0.8, 0.5, 0.3, l-1) {
			t.Errorf("power not increasing with level at %d", l)
		}
	}
}

func TestEstimateMatchesInstant(t *testing.T) {
	// An agent sampling a node running at a steady operating point must
	// reconstruct the same power the Instant form gives.
	m := TianheNode()
	tau := time.Second
	d := procfs.Delta{
		Interval: tau,
		CPUUtil:  0.75,
		MemUsed:  uint64(0.5 * float64(m.Mem.TotalBytes)),
		MemTotal: m.Mem.TotalBytes,
		NICBytes: uint64(0.25 * float64(m.NIC.Bandwidth) * tau.Seconds()),
	}
	got := m.Estimate(d, 9)
	want := m.Instant(0.75, 0.5, 0.25, 9)
	if !units.ApproxEqual(float64(got), float64(want), 0.001) {
		t.Errorf("Estimate = %v, Instant = %v", got, want)
	}
}

func TestEstimateZeroIntervalNoNaN(t *testing.T) {
	m := TianheNode()
	got := m.Estimate(procfs.Delta{Interval: 0, NICBytes: 100}, 5)
	if math.IsNaN(float64(got)) || math.IsInf(float64(got), 0) {
		t.Errorf("zero-interval estimate = %v", got)
	}
}

func TestEstimateZeroMemTotal(t *testing.T) {
	m := TianheNode()
	got := m.Estimate(procfs.Delta{Interval: time.Second, MemUsed: 100}, 5)
	if math.IsNaN(float64(got)) {
		t.Error("zero MemTotal produced NaN")
	}
}

func TestEstimateAtLevelPrediction(t *testing.T) {
	// MPC-C's P'(x): prediction at a lower level must be strictly less
	// than the estimate at the current level for a loaded node.
	m := TianheNode()
	d := procfs.Delta{Interval: time.Second, CPUUtil: 0.9,
		MemUsed: m.Mem.TotalBytes / 2, MemTotal: m.Mem.TotalBytes}
	cur := m.Estimate(d, 7)
	pred := m.EstimateAtLevel(d, 6)
	if pred >= cur {
		t.Errorf("P'(x)=%v not below P(x)=%v", pred, cur)
	}
}

func TestMaxMinPower(t *testing.T) {
	m := TianheNode()
	if m.MaxPower() <= m.MinPower() {
		t.Error("MaxPower ≤ MinPower")
	}
	if m.MinPower() != m.Idle.At(0, m.Levels()) {
		t.Errorf("MinPower = %v", m.MinPower())
	}
}

func TestStateString(t *testing.T) {
	if Green.String() != "green" || Yellow.String() != "yellow" || Red.String() != "red" {
		t.Error("state names wrong")
	}
	if State(9).String() == "" {
		t.Error("unknown state renders empty")
	}
}

func TestClassify(t *testing.T) {
	thr := Thresholds{PL: 84, PH: 93}
	cases := []struct {
		p    units.Watts
		want State
	}{
		{0, Green}, {83.9, Green},
		{84, Yellow}, {90, Yellow}, {92.9, Yellow},
		{93, Red}, {200, Red},
	}
	for _, c := range cases {
		if got := thr.Classify(c.p); got != c.want {
			t.Errorf("Classify(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestThresholdsValidate(t *testing.T) {
	if err := (Thresholds{PL: 84, PH: 93}).Validate(); err != nil {
		t.Error(err)
	}
	if err := (Thresholds{PL: 93, PH: 84}).Validate(); err == nil {
		t.Error("PL > PH accepted")
	}
	if err := (Thresholds{PL: -1, PH: 5}).Validate(); err == nil {
		t.Error("negative PL accepted")
	}
}

func TestFromPeakPaperRule(t *testing.T) {
	thr := FromPeak(units.KW(44), DefaultMarginL, DefaultMarginH)
	if !units.ApproxEqual(float64(thr.PH), 0.93*44000, 1e-9) {
		t.Errorf("PH = %v, want 93%% of peak", thr.PH)
	}
	if !units.ApproxEqual(float64(thr.PL), 0.84*44000, 1e-9) {
		t.Errorf("PL = %v, want 84%% of peak", thr.PL)
	}
	if err := thr.Validate(); err != nil {
		t.Error(err)
	}
}

// Property: Classify is consistent with Thresholds ordering for any valid
// thresholds and reading.
func TestClassifyConsistencyProperty(t *testing.T) {
	f := func(plRaw, spanRaw, pRaw uint16) bool {
		thr := Thresholds{
			PL: units.Watts(plRaw),
			PH: units.Watts(plRaw) + units.Watts(spanRaw),
		}
		p := units.Watts(pRaw)
		switch thr.Classify(p) {
		case Green:
			return p < thr.PL
		case Yellow:
			return p >= thr.PL && p < thr.PH
		case Red:
			return p >= thr.PH
		}
		return false
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLearnerTrainingPhase(t *testing.T) {
	l, err := NewLearner(units.KW(40), time.Hour, 300)
	if err != nil {
		t.Fatal(err)
	}
	// Before training completes, thresholds are derived from P_Max.
	init := l.Thresholds()
	if !units.ApproxEqual(float64(init.PH), 0.93*40000, 1e-9) {
		t.Errorf("initial PH = %v", init.PH)
	}
	thr := l.Observe(30*time.Minute, units.KW(44))
	if thr != init {
		t.Error("thresholds changed mid-training")
	}
	if l.Trained() {
		t.Error("trained too early")
	}
	// Training ends: peak 44 kW adopted.
	thr = l.Observe(time.Hour, units.KW(30))
	if !l.Trained() {
		t.Error("not trained after deadline")
	}
	if !units.ApproxEqual(float64(thr.PH), 0.93*44000, 1e-9) {
		t.Errorf("post-training PH = %v, want 93%% of 44 kW", thr.PH)
	}
}

func TestLearnerPeriodicAdjustment(t *testing.T) {
	l, _ := NewLearner(units.KW(40), time.Nanosecond, 10)
	l.Observe(time.Nanosecond, units.KW(30)) // completes training, adopts 30
	base := l.Thresholds()
	if !units.ApproxEqual(float64(base.PH), 0.93*30000, 1e-9) {
		t.Fatalf("post-training PH = %v", base.PH)
	}
	// Nine cycles with a higher peak observed: no adjustment yet.
	for i := 1; i <= 9; i++ {
		l.Observe(time.Duration(i)*time.Second, units.KW(36))
	}
	if l.Thresholds() != base {
		t.Error("adjusted before t_p cycles elapsed")
	}
	// Tenth cycle triggers adoption of the 36 kW lifetime peak.
	thr := l.Observe(10*time.Second, units.KW(20))
	if !units.ApproxEqual(float64(thr.PH), 0.93*36000, 1e-9) {
		t.Errorf("PH after adjustment = %v", thr.PH)
	}
}

func TestLearnerLifetimePeakNoDownwardSpiral(t *testing.T) {
	// Once capping suppresses the observable peak, periodic adjustment
	// must not ratchet the thresholds downwards cycle after cycle.
	l, _ := NewLearner(units.KW(40), time.Nanosecond, 2)
	l.Observe(time.Nanosecond, units.KW(44))
	want := l.Thresholds()
	for i := 1; i <= 20; i++ {
		l.Observe(time.Duration(i)*time.Second, units.KW(37))
	}
	if l.Thresholds() != want {
		t.Errorf("thresholds drifted to %+v under capped observations", l.Thresholds())
	}
}

func TestLearnerManualMode(t *testing.T) {
	// Zero training = administrator-set thresholds: fixed forever.
	l, _ := NewLearner(units.KW(40), 0, 2)
	if !l.Trained() {
		t.Error("manual-mode learner should report trained")
	}
	before := l.Thresholds()
	for i := 0; i < 10; i++ {
		l.Observe(time.Duration(i)*time.Second, units.KW(60))
	}
	if l.Thresholds() != before {
		t.Error("manual-mode thresholds moved")
	}
	if l.LifetimePeak() != units.KW(60) {
		t.Error("manual mode should still record the lifetime peak")
	}
}

func TestLearnerLifetimePeak(t *testing.T) {
	l, _ := NewLearner(units.KW(40), 0, 1000)
	l.Observe(0, units.KW(41))
	l.Observe(time.Second, units.KW(46))
	l.Observe(2*time.Second, units.KW(20))
	if got := l.LifetimePeak(); got != units.KW(46) {
		t.Errorf("lifetime peak = %v", got)
	}
}

func TestLearnerErrors(t *testing.T) {
	if _, err := NewLearner(0, time.Hour, 10); err == nil {
		t.Error("zero P_Max accepted")
	}
	if _, err := NewLearner(units.KW(1), time.Hour, 0); err == nil {
		t.Error("zero adjust period accepted")
	}
}

func TestLearnerSetMargins(t *testing.T) {
	l, _ := NewLearner(units.KW(40), 0, 1)
	if err := l.SetMargins(0.20, 0.10); err != nil {
		t.Fatal(err)
	}
	l.Observe(0, units.KW(40))
	thr := l.Observe(time.Second, units.KW(40))
	if !units.ApproxEqual(float64(thr.PH), 0.90*40000, 1e-9) {
		t.Errorf("custom-margin PH = %v", thr.PH)
	}
	if err := l.SetMargins(0.05, 0.10); err == nil {
		t.Error("marginL < marginH accepted (would invert PL/PH)")
	}
	if err := l.SetMargins(1.5, 0.1); err == nil {
		t.Error("marginL ≥ 1 accepted")
	}
}

type constSource units.Watts

func (c constSource) TruePower() units.Watts { return units.Watts(c) }

func TestMeterNoiseless(t *testing.T) {
	m := NewMeter(constSource(1000), 0, 0, nil)
	if got := m.Read(); got != 1000 {
		t.Errorf("noiseless read = %v", got)
	}
	if m.TrueLoad() != 1000 {
		t.Error("TrueLoad mismatch")
	}
}

func TestMeterOverhead(t *testing.T) {
	m := NewMeter(constSource(1000), 0.05, 0, nil)
	if got := m.Read(); math.Abs(float64(got)-1050) > 1e-9 {
		t.Errorf("overhead read = %v, want 1050", got)
	}
	// TrueLoad excludes overhead.
	if m.TrueLoad() != 1000 {
		t.Error("TrueLoad should exclude overhead")
	}
}

func TestMeterNoiseStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := NewMeter(constSource(1000), 0, 0.01, rng)
	sum, sumsq := 0.0, 0.0
	const n = 20000
	for i := 0; i < n; i++ {
		v := float64(m.Read())
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	sd := math.Sqrt(sumsq/n - mean*mean)
	if math.Abs(mean-1000) > 1 {
		t.Errorf("noisy meter mean = %v, want ≈1000", mean)
	}
	if sd < 5 || sd > 15 {
		t.Errorf("noisy meter σ = %v, want ≈10", sd)
	}
}

func TestMeterNegativeConfigClamped(t *testing.T) {
	m := NewMeter(constSource(100), -1, -1, nil)
	if got := m.Read(); got != 100 {
		t.Errorf("negative config not clamped: %v", got)
	}
}

func TestEstimateBreakdown(t *testing.T) {
	m := TianheNode()
	d := procfs.Delta{
		Interval: time.Second, CPUUtil: 0.8,
		MemUsed: m.Mem.TotalBytes / 2, MemTotal: m.Mem.TotalBytes,
		NICBytes: uint64(0.25 * float64(m.NIC.Bandwidth)),
	}
	b := m.EstimateBreakdown(d, 9)
	// Components must sum to the scalar estimate exactly.
	if !units.ApproxEqual(float64(b.Total()), float64(m.Estimate(d, 9)), 1e-9) {
		t.Errorf("breakdown total %v != estimate %v", b.Total(), m.Estimate(d, 9))
	}
	if b.Idle != m.Idle.At(9, m.Levels()) {
		t.Errorf("idle term = %v", b.Idle)
	}
	if !units.ApproxEqual(float64(b.CPU), 0.8*float64(m.CPU.DynMax(9)), 1e-9) {
		t.Errorf("cpu term = %v", b.CPU)
	}
	if !units.ApproxEqual(float64(b.Mem), 0.5*float64(m.Mem.DynMax), 1e-9) {
		t.Errorf("mem term = %v", b.Mem)
	}
	if !units.ApproxEqual(float64(b.NIC), 0.25*float64(m.NIC.DynMax), 1e-9) {
		t.Errorf("nic term = %v", b.NIC)
	}
	if s := b.String(); !strings.Contains(s, "idle") || !strings.Contains(s, "=") {
		t.Errorf("breakdown string: %q", s)
	}
}

func TestEstimateBreakdownDegenerate(t *testing.T) {
	m := TianheNode()
	b := m.EstimateBreakdown(procfs.Delta{}, 0)
	if b.CPU != 0 || b.Mem != 0 || b.NIC != 0 {
		t.Errorf("zero delta breakdown = %+v", b)
	}
	if b.Idle != m.MinPower() {
		t.Errorf("idle at floor = %v", b.Idle)
	}
}
