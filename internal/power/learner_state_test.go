package power

import (
	"testing"
	"time"

	"repro/internal/units"
)

// TestLearnerStateRoundTrip drives a learner through training and part of
// an adjustment window, snapshots it, restores into a cold learner with
// the same configuration, and checks the restored learner behaves
// identically: trained immediately, same thresholds, same position inside
// the t_p cycle.
func TestLearnerStateRoundTrip(t *testing.T) {
	const adjust = 10
	l, err := NewLearner(units.KW(40), time.Minute, adjust)
	if err != nil {
		t.Fatal(err)
	}
	// Train: observe a 30 kW peak during the training window, complete it.
	l.Observe(30*time.Second, units.KW(30))
	l.Observe(time.Minute, units.KW(25))
	if !l.Trained() {
		t.Fatal("learner not trained after window")
	}
	// Advance 3 cycles into the adjustment window.
	for i := 0; i < 3; i++ {
		l.Observe(time.Minute+time.Duration(i)*time.Second, units.KW(20))
	}
	st := l.State()
	if !st.Trained || st.LifetimePeakW != 30000 || st.AdjustCycles != 3 {
		t.Fatalf("snapshot = %+v", st)
	}

	fresh, err := NewLearner(units.KW(40), time.Minute, adjust)
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.Restore(st); err != nil {
		t.Fatal(err)
	}
	// No new training window: trained right away even though the restored
	// learner never saw its training period elapse.
	if !fresh.Trained() {
		t.Error("restored learner not trained")
	}
	if fresh.Thresholds() != l.Thresholds() {
		t.Errorf("thresholds: restored %+v, original %+v", fresh.Thresholds(), l.Thresholds())
	}
	if fresh.LifetimePeak() != l.LifetimePeak() {
		t.Errorf("lifetime peak: restored %v, original %v", fresh.LifetimePeak(), l.LifetimePeak())
	}
	// The adjust-cycle position must carry over: the original adopts new
	// thresholds after adjust-3 = 7 more cycles; so must the restored one.
	var adoptedOrig, adoptedFresh int
	for i := 0; i < adjust; i++ {
		now := 2*time.Minute + time.Duration(i)*time.Second
		// A higher peak forces the next adoption to move the thresholds.
		before := l.Thresholds()
		if l.Observe(now, units.KW(35)) != before && adoptedOrig == 0 {
			adoptedOrig = i + 1
		}
		beforeF := fresh.Thresholds()
		if fresh.Observe(now, units.KW(35)) != beforeF && adoptedFresh == 0 {
			adoptedFresh = i + 1
		}
	}
	if adoptedOrig == 0 || adoptedOrig != adoptedFresh {
		t.Errorf("adjustment position drifted: original adopted at cycle %d, restored at %d", adoptedOrig, adoptedFresh)
	}
}

// TestLearnerRestoreRejectsGarbage checks that a snapshot decoded from a
// corrupted journal cannot poison the learner — every invalid shape is
// rejected and the learner keeps its cold-start state.
func TestLearnerRestoreRejectsGarbage(t *testing.T) {
	cases := []struct {
		name string
		st   LearnerState
	}{
		{"negative peak", LearnerState{LifetimePeakW: -1, PLW: 100, PHW: 200}},
		{"inverted thresholds", LearnerState{PLW: 200, PHW: 100}},
		{"zero PH", LearnerState{PLW: 0, PHW: 0}},
		{"negative adjust position", LearnerState{PLW: 100, PHW: 200, AdjustCycles: -1}},
		{"adjust position past window", LearnerState{PLW: 100, PHW: 200, AdjustCycles: 10}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			l, err := NewLearner(units.KW(40), time.Minute, 10)
			if err != nil {
				t.Fatal(err)
			}
			cold := l.Thresholds()
			if err := l.Restore(tc.st); err == nil {
				t.Fatal("garbage snapshot accepted")
			}
			if l.Trained() || l.Thresholds() != cold || l.LifetimePeak() != 0 {
				t.Errorf("failed restore mutated learner: trained=%v thr=%+v peak=%v",
					l.Trained(), l.Thresholds(), l.LifetimePeak())
			}
		})
	}
}

// TestLearnerRestoreManualMode: a manual-mode learner (zero training) is
// always trained; restoring an untrained snapshot must not disarm it.
func TestLearnerRestoreManualMode(t *testing.T) {
	l, err := NewLearner(units.KW(40), 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Restore(LearnerState{PLW: 100, PHW: 200, Trained: false}); err != nil {
		t.Fatal(err)
	}
	if !l.Trained() {
		t.Error("manual-mode learner disarmed by restore")
	}
}
