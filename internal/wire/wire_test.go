package wire

import (
	"bytes"
	"io"
	"net"
	"reflect"
	"testing"
	"time"

	"repro/internal/manager"
	"repro/internal/node"
	"repro/internal/procfs"
)

// pipeConn adapts an in-memory pipe to io.ReadWriteCloser.
type pipeConn struct {
	io.Reader
	io.Writer
}

func (pipeConn) Close() error { return nil }

func TestEnvelopeRoundTrip(t *testing.T) {
	r := manager.AgentReading{
		ID: 42, Level: 7, MaxLevel: 9,
		Delta: procfs.Delta{
			Interval: 1500 * time.Millisecond,
			CPUUtil:  0.625,
			MemUsed:  1 << 33,
			MemTotal: 48 << 30,
			NICBytes: 123456789,
		},
		Job: 11,
	}
	got := SampleEnvelope(r).Reading()
	if got != r {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, r)
	}
}

func TestConnSendRecv(t *testing.T) {
	var buf bytes.Buffer
	c := NewConn(pipeConn{&buf, &buf})
	msgs := []Envelope{
		{Type: KindHello, Node: 3, MaxLevel: 9},
		{Type: KindCommand, Node: 3, Level: 2},
		{Type: KindStatus, Stats: &StatusReply{Agents: 5, CPUUtilise: 0.25}},
	}
	for _, m := range msgs {
		if err := c.Send(m); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range msgs {
		got, err := c.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if got.Type != want.Type || got.Node != want.Node || got.Level != want.Level {
			t.Errorf("msg %d: got %+v, want %+v", i, got, want)
		}
		if want.Stats != nil && (got.Stats == nil || got.Stats.Agents != 5) {
			t.Errorf("stats lost: %+v", got.Stats)
		}
	}
}

// TestSeqAndPingRoundTrip covers the fail-safe additions: commands carry a
// sequence number the ack must echo, and pings survive the trip unchanged.
func TestSeqAndPingRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	c := NewConn(pipeConn{&buf, &buf})
	msgs := []Envelope{
		{Type: KindCommand, Node: 4, Level: 3, Seq: 17},
		{Type: KindAck, Node: 4, Level: 3, Seq: 17},
		{Type: KindPing},
		{Type: KindHello, Node: 4, MaxLevel: 9, Level: 2}, // reconnecting throttled agent
	}
	for _, m := range msgs {
		if err := c.Send(m); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range msgs {
		got, err := c.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if got.Type != want.Type || got.Seq != want.Seq || got.Level != want.Level || got.Node != want.Node {
			t.Errorf("msg %d: got %+v, want %+v", i, got, want)
		}
	}
}

// TestStatusReplyFailSafeFields checks the health/ack/journal counters
// survive encoding — a powctl from this version against a manager of the
// same version must see every fail-safe counter.
func TestStatusReplyFailSafeFields(t *testing.T) {
	var buf bytes.Buffer
	c := NewConn(pipeConn{&buf, &buf})
	st := StatusReply{
		Trained: true, LifetimePeakW: 12345.5,
		CommandAcks: 7, CommandRetries: 3, Reconciles: 2, Drifted: 1,
		HealthyNodes: 4, StaleNodes: 1, LostNodes: 2, QuarantinedNodes: 1,
		Quarantines: 5, JournalWrites: 9,
	}
	if err := c.Send(Envelope{Type: KindStatus, Stats: &st}); err != nil {
		t.Fatal(err)
	}
	got, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.Stats == nil || *got.Stats != st {
		t.Errorf("status reply mangled: got %+v, want %+v", got.Stats, st)
	}
}

// TestSendBatch covers the batched encode path: several messages in one
// frame, one flush; single-element batches unwrap to a plain envelope and
// empty batches write nothing.
func TestSendBatch(t *testing.T) {
	var buf bytes.Buffer
	c := NewConn(pipeConn{&buf, &buf})
	if err := c.SendBatch(nil); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("empty batch wrote %d bytes", buf.Len())
	}
	if err := c.SendBatch([]Envelope{{Type: KindPing}}); err != nil {
		t.Fatal(err)
	}
	env, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if env.Type != KindPing || len(env.Batch) != 0 {
		t.Errorf("single-element batch not unwrapped: %+v", env)
	}

	batch := []Envelope{
		{Type: KindCommand, Node: 7, Level: 2, Seq: 41},
		{Type: KindPing},
	}
	if err := c.SendBatch(batch); err != nil {
		t.Fatal(err)
	}
	env, err = c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if env.Type != KindBatch || len(env.Batch) != 2 {
		t.Fatalf("batch frame mangled: %+v", env)
	}
	if cmd := env.Batch[0]; cmd.Type != KindCommand || cmd.Node != 7 || cmd.Level != 2 || cmd.Seq != 41 {
		t.Errorf("batched command mangled: %+v", cmd)
	}
	if env.Batch[1].Type != KindPing {
		t.Errorf("batched ping mangled: %+v", env.Batch[1])
	}
}

// TestSendBatchOneWrite pins the whole point of batching: a multi-message
// batch reaches the underlying stream as exactly one Write (one faultnet
// fault roll), not one per message.
func TestSendBatchOneWrite(t *testing.T) {
	cw := &countingWriter{}
	c := NewConn(pipeConn{bytes.NewReader(nil), cw})
	if err := c.SendBatch([]Envelope{
		{Type: KindCommand, Node: 1, Level: 0, Seq: 1},
		{Type: KindCommand, Node: 1, Level: 3, Seq: 2},
		{Type: KindPing},
	}); err != nil {
		t.Fatal(err)
	}
	if cw.writes != 1 {
		t.Errorf("batch of 3 took %d writes, want 1", cw.writes)
	}
}

type countingWriter struct{ writes int }

func (w *countingWriter) Write(p []byte) (int, error) {
	w.writes++
	return len(p), nil
}

func TestRecvEOF(t *testing.T) {
	c := NewConn(pipeConn{bytes.NewReader(nil), io.Discard})
	if _, err := c.Recv(); err != io.EOF {
		t.Errorf("err = %v, want EOF", err)
	}
}

func TestRecvGarbage(t *testing.T) {
	c := NewConn(pipeConn{bytes.NewReader([]byte("{not json}\n")), io.Discard})
	if _, err := c.Recv(); err == nil {
		t.Error("garbage line accepted")
	}
}

func TestRecvFinalUnterminatedLine(t *testing.T) {
	c := NewConn(pipeConn{bytes.NewReader([]byte(`{"type":"ack","node":1}`)), io.Discard})
	env, err := c.Recv()
	if err != nil {
		t.Fatalf("unterminated final line: %v", err)
	}
	if env.Type != KindAck || env.Node != 1 {
		t.Errorf("env = %+v", env)
	}
}

func TestConnOverTCP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan Envelope, 1)
	go func() {
		raw, err := ln.Accept()
		if err != nil {
			return
		}
		c := NewConn(raw)
		env, _ := c.Recv()
		done <- env
		c.Close()
	}()
	raw, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c := NewConn(raw)
	if err := c.Send(Envelope{Type: KindHello, Node: 9}); err != nil {
		t.Fatal(err)
	}
	select {
	case env := <-done:
		if env.Node != 9 {
			t.Errorf("received %+v", env)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("timeout")
	}
	c.Close()
}

// TestEnvelopeKindsRoundTrip sends one representative envelope of every
// message kind through the line protocol and checks it decodes
// field-for-field. Any new Kind* constant must be added here.
func TestEnvelopeKindsRoundTrip(t *testing.T) {
	cases := []struct {
		name string
		env  Envelope
	}{
		{"hello", Envelope{Type: KindHello, Node: 12, MaxLevel: 9}},
		{"sample", Envelope{
			Type: KindSample, Node: 12, Level: 4, MaxLevel: 9,
			CPUUtil: 0.875, MemUsed: 3 << 30, MemTotal: 24 << 30,
			NICBytes: 987654, IntervalMS: 1000, Job: 5,
		}},
		{"command", Envelope{Type: KindCommand, Node: 12, Level: 2}},
		{"ack", Envelope{Type: KindAck, Node: 12, Level: 2}},
		{"status", Envelope{Type: KindStatus, Stats: &StatusReply{Agents: 3}}},
		{"ping", Envelope{Type: KindPing}},
	}
	kinds := map[string]bool{
		KindHello: false, KindSample: false, KindCommand: false,
		KindAck: false, KindStatus: false, KindPing: false,
		KindBatch: true, // covered by TestSendBatch (slice field breaks == comparison)
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			c := NewConn(pipeConn{&buf, &buf})
			if err := c.Send(tc.env); err != nil {
				t.Fatal(err)
			}
			got, err := c.Recv()
			if err != nil {
				t.Fatal(err)
			}
			if tc.env.Stats != nil {
				if got.Stats == nil || *got.Stats != *tc.env.Stats {
					t.Fatalf("stats round trip: got %+v, want %+v", got.Stats, tc.env.Stats)
				}
				got.Stats, tc.env.Stats = nil, nil
			}
			if !reflect.DeepEqual(got, tc.env) {
				t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, tc.env)
			}
		})
		kinds[tc.env.Type] = true
	}
	for k, covered := range kinds {
		if !covered {
			t.Errorf("message kind %q has no round-trip case", k)
		}
	}
}

// TestStatusReplyFieldForField round-trips a StatusReply with every field
// set to a distinct value, so a field added to the struct but dropped
// from its JSON tags (or shadowed by a duplicate tag) cannot slip by.
func TestStatusReplyFieldForField(t *testing.T) {
	want := StatusReply{
		Agents: 1, Cycles: 2, GreenCycles: 3, YellowCycles: 4,
		RedCycles: 5, RedEntries: 6, DegradeOps: 7, RestoreOps: 8,
		BusyMicros: 9, CPUUtilise: 0.625, LastPowerW: 11.5,
		ThresholdPLW: 12.5, ThresholdPHW: 13.5, DroppedStale: 14,
		CommandErrors: 15, SamplesReceived: 16,
	}
	var buf bytes.Buffer
	c := NewConn(pipeConn{&buf, &buf})
	if err := c.Send(Envelope{Type: KindStatus, Stats: &want}); err != nil {
		t.Fatal(err)
	}
	got, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.Stats == nil {
		t.Fatal("stats lost")
	}
	if *got.Stats != want {
		t.Errorf("field-for-field mismatch:\n got %+v\nwant %+v", *got.Stats, want)
	}
}

// TestRecvToleratesUnknownFields is the forward-compatibility contract:
// a newer peer adding envelope fields (even whole sub-objects) must not
// break an older decoder, which ignores what it does not know.
func TestRecvToleratesUnknownFields(t *testing.T) {
	lines := []string{
		`{"type":"sample","node":3,"level":9,"flux_capacitance":1.21,"vendor":{"model":"X5670"}}`,
		`{"type":"hello","node":1,"max_level":9,"protocol_rev":7,"features":["batching","zstd"]}`,
		`{"type":"command","node":1,"level":2,"deadline_ms":250}`,
	}
	for _, line := range lines {
		c := NewConn(pipeConn{bytes.NewReader([]byte(line + "\n")), io.Discard})
		env, err := c.Recv()
		if err != nil {
			t.Errorf("unknown fields rejected: %q: %v", line, err)
			continue
		}
		if env.Type == "" || env.Node == 0 {
			t.Errorf("known fields lost amid unknown ones: %+v from %q", env, line)
		}
	}
}

func TestReadingIdentity(t *testing.T) {
	// Envelope → Reading must preserve node.ID typing.
	e := Envelope{Type: KindSample, Node: 5, Level: 3, MaxLevel: 9, IntervalMS: 1000}
	r := e.Reading()
	if r.ID != node.ID(5) || r.Delta.Interval != time.Second {
		t.Errorf("reading = %+v", r)
	}
}
