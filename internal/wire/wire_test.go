package wire

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"

	"repro/internal/manager"
	"repro/internal/node"
	"repro/internal/procfs"
)

// pipeConn adapts an in-memory pipe to io.ReadWriteCloser.
type pipeConn struct {
	io.Reader
	io.Writer
}

func (pipeConn) Close() error { return nil }

func TestEnvelopeRoundTrip(t *testing.T) {
	r := manager.AgentReading{
		ID: 42, Level: 7, MaxLevel: 9,
		Delta: procfs.Delta{
			Interval: 1500 * time.Millisecond,
			CPUUtil:  0.625,
			MemUsed:  1 << 33,
			MemTotal: 48 << 30,
			NICBytes: 123456789,
		},
		Job: 11,
	}
	got := SampleEnvelope(r).Reading()
	if got != r {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, r)
	}
}

func TestConnSendRecv(t *testing.T) {
	var buf bytes.Buffer
	c := NewConn(pipeConn{&buf, &buf})
	msgs := []Envelope{
		{Type: KindHello, Node: 3, MaxLevel: 9},
		{Type: KindCommand, Node: 3, Level: 2},
		{Type: KindStatus, Stats: &StatusReply{Agents: 5, CPUUtilise: 0.25}},
	}
	for _, m := range msgs {
		if err := c.Send(m); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range msgs {
		got, err := c.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if got.Type != want.Type || got.Node != want.Node || got.Level != want.Level {
			t.Errorf("msg %d: got %+v, want %+v", i, got, want)
		}
		if want.Stats != nil && (got.Stats == nil || got.Stats.Agents != 5) {
			t.Errorf("stats lost: %+v", got.Stats)
		}
	}
}

func TestRecvEOF(t *testing.T) {
	c := NewConn(pipeConn{bytes.NewReader(nil), io.Discard})
	if _, err := c.Recv(); err != io.EOF {
		t.Errorf("err = %v, want EOF", err)
	}
}

func TestRecvGarbage(t *testing.T) {
	c := NewConn(pipeConn{bytes.NewReader([]byte("{not json}\n")), io.Discard})
	if _, err := c.Recv(); err == nil {
		t.Error("garbage line accepted")
	}
}

func TestRecvFinalUnterminatedLine(t *testing.T) {
	c := NewConn(pipeConn{bytes.NewReader([]byte(`{"type":"ack","node":1}`)), io.Discard})
	env, err := c.Recv()
	if err != nil {
		t.Fatalf("unterminated final line: %v", err)
	}
	if env.Type != KindAck || env.Node != 1 {
		t.Errorf("env = %+v", env)
	}
}

func TestConnOverTCP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	done := make(chan Envelope, 1)
	go func() {
		raw, err := ln.Accept()
		if err != nil {
			return
		}
		c := NewConn(raw)
		env, _ := c.Recv()
		done <- env
		c.Close()
	}()
	raw, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	c := NewConn(raw)
	if err := c.Send(Envelope{Type: KindHello, Node: 9}); err != nil {
		t.Fatal(err)
	}
	select {
	case env := <-done:
		if env.Node != 9 {
			t.Errorf("received %+v", env)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("timeout")
	}
	c.Close()
}

func TestReadingIdentity(t *testing.T) {
	// Envelope → Reading must preserve node.ID typing.
	e := Envelope{Type: KindSample, Node: 5, Level: 3, MaxLevel: 9, IntervalMS: 1000}
	r := e.Reading()
	if r.ID != node.ID(5) || r.Delta.Interval != time.Second {
		t.Errorf("reading = %+v", r)
	}
}
