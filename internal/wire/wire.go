// Package wire defines the protocol between per-node profiling agents
// and the global power manager daemon: newline-delimited JSON messages
// over TCP, with an optional length-prefixed binary codec (binary.go)
// negotiated at Hello for the hot paths. One connection per agent,
// established agent→manager:
//
//	agent → manager: hello   (node identity, level table size, current level)
//	agent → manager: sample  (interval counters + current level, every τ)
//	manager → agent: command (target power level, sequence number)
//	agent → manager: ack     (sequence number + level actually applied)
//	manager → agent: ping    (liveness heartbeat feeding the agent's
//	                          dead-man switch; carries no payload)
//
// The protocol carries raw interval counters rather than watt estimates:
// the power profile model runs centrally, so model updates never require
// touching the fleet of agents.
//
// Codec negotiation: an agent's hello advertises the codecs it can read
// and write (Codecs); the manager's hello reply names the one it chose
// (Codec), after which both writers may switch. The read side always
// auto-detects per frame — the first byte distinguishes a JSON line from
// a binary frame — so every old/new peer combination degrades safely to
// JSON, which remains the canonical fallback and the fuzz reference.
package wire

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"repro/internal/manager"
	"repro/internal/node"
	"repro/internal/procfs"
	"repro/internal/workload"
)

// Message kinds.
const (
	KindHello   = "hello"
	KindSample  = "sample"
	KindCommand = "command"
	KindAck     = "ack"
	KindPing    = "ping"   // manager → agent: liveness heartbeat
	KindStatus  = "status" // powctl → manager: report stats
	KindBatch   = "batch"  // several messages in one frame (one flush, one fault roll)

	// Journal replication (manager high availability). A standby's
	// follower opens a connection and sends KindJournalAck carrying the
	// sequence number its journal copy has reached; the leader replays
	// everything after it (or a full-snapshot reset entry if that history
	// is gone) and then streams each new journal entry as a
	// KindJournalAppend, acknowledged back entry by entry so the leader
	// can report replication lag. The stream is resumable: reconnecting
	// followers just resubscribe from their current sequence.
	KindJournalAppend = "journal_append" // leader → follower: one journal entry
	KindJournalAck    = "journal_ack"    // follower → leader: subscribe/ack at Seq

	// Capping federation (coordinator tier). A cabinet manager dials the
	// coordinator and subscribes with a KindCabReport (carrying its codec
	// advertisement, like a journal follower's subscribe), then streams
	// one report per control cycle: sensed aggregate power, uncapped
	// demand, the budget currently applied and its health tallies. The
	// coordinator replies with a hello naming the chosen codec and then
	// sends one KindCabBudget per coordinator cycle — the cabinet's new
	// power band. Budget grants double as coordinator heartbeats: a
	// cabinet that stops receiving them floors itself locally (the same
	// dead-man idea as agentd's failsafe), and a coordinator that stops
	// hearing reports re-divides the budget around the lost cabinet.
	KindCabReport = "cab_report" // cabinet → coordinator: aggregate sense + demand
	KindCabBudget = "cab_budget" // coordinator → cabinet: granted power band
)

// Envelope is the one-size wire message; Type selects which fields are
// meaningful. A single envelope type keeps decoding trivial and the
// protocol evolvable (unknown fields are ignored by encoding/json).
type Envelope struct {
	Type string `json:"type"`
	Node int    `json:"node,omitempty"`

	// hello
	MaxLevel int `json:"max_level,omitempty"`

	// command / ack: the command's sequence number, echoed back by the
	// ack so the manager can match acks to in-flight commands and retry
	// the unacknowledged ones.
	Seq uint64 `json:"seq,omitempty"`

	// sample
	Level      int     `json:"level"`
	CPUUtil    float64 `json:"cpu_util,omitempty"`
	MemUsed    uint64  `json:"mem_used,omitempty"`
	MemTotal   uint64  `json:"mem_total,omitempty"`
	NICBytes   uint64  `json:"nic_bytes,omitempty"`
	IntervalMS int64   `json:"interval_ms,omitempty"`
	Job        int     `json:"job,omitempty"`

	// status reply
	Stats *StatusReply `json:"stats,omitempty"`

	// Leadership epoch, for fencing across manager failovers. In a
	// manager→agent hello it announces the manager's epoch; in an
	// agent→manager hello it reports the highest epoch the agent has
	// seen, letting a deposed leader discover its own staleness. Zero
	// means "no HA configured" and disables fencing entirely.
	Epoch uint64 `json:"epoch,omitempty"`

	// journal_append: one replica journal entry, opaque to this layer
	// (internal/replica owns the schema).
	Entry json.RawMessage `json:"entry,omitempty"`

	// batch: the nested messages of a KindBatch frame. The manager's
	// per-node senders use it to coalesce a level command and a pending
	// heartbeat into one write — one bufio flush, and over faultnet one
	// fault roll instead of two. Receivers process the nested envelopes in
	// order; batches do not nest (a Batch inside a Batch is ignored).
	Batch []Envelope `json:"batch,omitempty"`

	// Codec negotiation, riding the hello exchange. An agent (or journal
	// follower) advertises every codec it supports in Codecs; the
	// manager's hello reply carries the chosen one in Codec. Absent
	// fields mean JSON, so peers predating the negotiation never see a
	// binary frame.
	Codecs []string `json:"codecs,omitempty"`
	Codec  string   `json:"codec,omitempty"`

	// Capping federation fields (cab_report / cab_budget). Node carries
	// the cabinet index on both kinds; Seq numbers budget grants (echoed
	// in the next report so the coordinator sees which grant a cabinet
	// runs under). In a report, PowerW/DemandW are the cabinet's sensed
	// aggregate power and uncapped full-level demand, BudgetW/PHW the
	// band it is currently enforcing, Agents/Healthy its fleet tallies.
	// In a grant, BudgetW/PHW are the new band (P_L and P_H).
	PowerW  float64 `json:"p_w,omitempty"`
	DemandW float64 `json:"demand_w,omitempty"`
	BudgetW float64 `json:"budget_w,omitempty"`
	PHW     float64 `json:"ph_w,omitempty"`
	Agents  int     `json:"agents,omitempty"`
	Healthy int     `json:"healthy,omitempty"`
}

// Advertises reports whether the envelope's codec advertisement (its
// Codecs list) includes name.
func (e *Envelope) Advertises(name string) bool {
	for _, c := range e.Codecs {
		if c == name {
			return true
		}
	}
	return false
}

// StatusReply is the manager's answer to a status request.
//
// Every field carries an `obs` tag naming the registry instrument it is
// populated from: managerd fills the reply by reflecting over these tags
// against its obs.Registry (see managerd's statusFromRegistry), so adding
// a field here without backing it by an instrument is caught by the
// registry-mapping test rather than silently reading zero forever.
type StatusReply struct {
	Agents        int     `json:"agents" obs:"agents"`
	Cycles        int     `json:"cycles" obs:"cycles"`
	GreenCycles   int     `json:"green_cycles" obs:"green_cycles"`
	YellowCycles  int     `json:"yellow_cycles" obs:"yellow_cycles"`
	RedCycles     int     `json:"red_cycles" obs:"red_cycles"`
	RedEntries    int     `json:"red_entries" obs:"red_entries"`
	DegradeOps    int     `json:"degrade_ops" obs:"degrade_ops"`
	RestoreOps    int     `json:"restore_ops" obs:"restore_ops"`
	BusyMicros    int64   `json:"busy_micros" obs:"busy_micros"`
	CPUUtilise    float64 `json:"cpu_utilisation" obs:"cpu_utilisation"`
	LastPowerW    float64 `json:"last_power_w" obs:"last_power_w"`
	ThresholdPLW  float64 `json:"pl_w" obs:"pl_w"`
	ThresholdPHW  float64 `json:"ph_w" obs:"ph_w"`
	DroppedStale  int     `json:"dropped_stale" obs:"dropped_stale"`
	CommandErrors int     `json:"command_errors" obs:"command_errors"`

	// Control-loop cost surfaced per Fig. 5: selection time accumulated
	// by the manager, and the sensing sweep (collection) time per cycle.
	SelectMicros      int64 `json:"select_micros" obs:"select_micros"`             // accumulated policy selection time
	LastCollectMicros int64 `json:"last_collect_micros" obs:"last_collect_micros"` // last cycle's reading-collection sweep
	CollectMicros     int64 `json:"collect_micros" obs:"collect_micros"`           // accumulated collection time

	// Fail-safe layer counters.
	Trained          bool    `json:"trained" obs:"trained"`                     // capping armed (learner trained, or fixed thresholds)
	LifetimePeakW    float64 `json:"lifetime_peak_w" obs:"lifetime_peak_w"`     // learner's lifetime observed peak
	CommandAcks      int     `json:"command_acks" obs:"command_acks"`           // commands acknowledged by agents
	CommandRetries   int     `json:"command_retries" obs:"command_retries"`     // unacked commands re-sent
	Reconciles       int     `json:"reconciles" obs:"reconciles"`               // drifted levels re-commanded
	Drifted          int     `json:"drifted" obs:"drifted"`                     // connected agents whose reported level ≠ last commanded
	HealthyNodes     int     `json:"healthy_nodes" obs:"healthy_nodes"`         // fresh sample within StaleAfter
	StaleNodes       int     `json:"stale_nodes" obs:"stale_nodes"`             // connected but sample older than StaleAfter
	LostNodes        int     `json:"lost_nodes" obs:"lost_nodes"`               // disconnected or silent beyond LostAfter
	QuarantinedNodes int     `json:"quarantined_nodes" obs:"quarantined_nodes"` // reconnect-flapping, excluded from A_candidate
	Quarantines      int     `json:"quarantines" obs:"quarantines"`             // quarantine entries over the run
	JournalWrites    int     `json:"journal_writes" obs:"journal_writes"`       // crash-recovery snapshots persisted

	// Fan-out layer counters (the concurrent actuation path).
	CoalescedCmds    int   `json:"coalesced_cmds" obs:"coalesced_cmds"`         // queued commands superseded before the write
	StaleConnErrors  int   `json:"stale_conn_errors" obs:"stale_conn_errors"`   // send failures on already-replaced connections
	DecodeErrors     int   `json:"decode_errors" obs:"decode_errors"`           // corrupt inbound frames tolerated and skipped
	Shards           int   `json:"shards" obs:"shards"`                         // node-state shards
	SamplesReceived  int64 `json:"samples_received" obs:"samples_received"`     // agent samples accepted over the wire
	LastCycleMicros  int64 `json:"last_cycle_micros" obs:"last_cycle_micros"`   // last control cycle's critical-path time
	MaxCycleMicros   int64 `json:"max_cycle_micros" obs:"max_cycle_micros"`     // worst control cycle so far
	LastFanoutMicros int64 `json:"last_fanout_micros" obs:"last_fanout_micros"` // last cycle's command fan-out completion time
	MaxFanoutMicros  int64 `json:"max_fanout_micros" obs:"max_fanout_micros"`   // worst fan-out so far

	// High-availability layer (replicated journal + leased leadership).
	Epoch              int   `json:"epoch" obs:"epoch"`                               // leadership epoch (0 = HA off)
	Leader             bool  `json:"leader" obs:"leader"`                             // still leading (false once deposed)
	ReplicaConns       int   `json:"replica_conns" obs:"replica_conns"`               // connected journal followers
	ReplicaLagEntries  int   `json:"replica_lag_entries" obs:"replica_lag_entries"`   // worst follower lag, in journal entries
	JournalAppends     int   `json:"journal_appends" obs:"journal_appends"`           // incremental journal entries committed
	FencedHellos       int   `json:"fenced_hellos" obs:"fenced_hellos"`               // hellos carrying a newer epoch than ours
	LastTakeoverMicros int64 `json:"last_takeover_micros" obs:"last_takeover_micros"` // leaderless time absorbed at our promotion

	// Capping federation (two-tier control plane, managerd's federate.go).
	Cabinet      int     `json:"cabinet" obs:"cabinet"`             // this manager's cabinet index under a coordinator
	Governed     bool    `json:"governed" obs:"governed"`           // running under a live coordinator grant
	BudgetGrants int     `json:"budget_grants" obs:"budget_grants"` // cab_budget grants applied
	BudgetFloors int     `json:"budget_floors" obs:"budget_floors"` // failsafe floors on coordinator silence
	DemandW      float64 `json:"demand_w" obs:"demand_w"`           // last cycle's uncapped full-level demand estimate

	// Wire codec tallies: connected agents by negotiated codec (the
	// powctl -codec probe reads these to audit a live fleet).
	BinaryConns int `json:"binary_conns" obs:"binary_conns"` // agent conns on the binary codec
	JSONConns   int `json:"json_conns" obs:"json_conns"`     // agent conns on the JSON codec
}

// SampleEnvelope builds a sample message from an agent reading.
func SampleEnvelope(r manager.AgentReading) Envelope {
	return Envelope{
		Type:       KindSample,
		Node:       int(r.ID),
		Level:      r.Level,
		MaxLevel:   r.MaxLevel,
		CPUUtil:    r.Delta.CPUUtil,
		MemUsed:    r.Delta.MemUsed,
		MemTotal:   r.Delta.MemTotal,
		NICBytes:   r.Delta.NICBytes,
		IntervalMS: r.Delta.Interval.Milliseconds(),
		Job:        int(r.Job),
	}
}

// Reading converts a sample envelope back into an agent reading.
func (e Envelope) Reading() manager.AgentReading {
	return manager.AgentReading{
		ID:       node.ID(e.Node),
		Level:    e.Level,
		MaxLevel: e.MaxLevel,
		Delta: procfs.Delta{
			Interval: time.Duration(e.IntervalMS) * time.Millisecond,
			CPUUtil:  e.CPUUtil,
			MemUsed:  e.MemUsed,
			MemTotal: e.MemTotal,
			NICBytes: e.NICBytes,
		},
		Job: workload.JobID(e.Job),
	}
}

// Conn wraps a byte stream with the wire protocol. Safe for one reader
// and one writer goroutine concurrently (the read and write paths own
// disjoint state); multiple concurrent writers must serialise externally.
type Conn struct {
	r   *bufio.Reader
	w   *bufio.Writer
	raw io.ReadWriteCloser

	// binWrite selects the writer's codec (the reader always
	// auto-detects). Atomic because negotiation may flip it from the
	// reader goroutine while the writer is mid-stream — which is safe,
	// since the switch happens on a frame boundary of the writer's next
	// Send.
	binWrite atomic.Bool

	// Reused scratch: encBuf backs binary encoding (writer-owned),
	// readBuf backs binary payloads and overlong JSON lines
	// (reader-owned). Steady-state traffic allocates nothing here.
	encBuf  []byte
	readBuf []byte

	// decodeFails counts consecutive recoverable decode errors, for the
	// fatal escalation described on maxDecodeFails.
	decodeFails int
}

// NewConn wraps rw.
func NewConn(rw io.ReadWriteCloser) *Conn {
	return &Conn{r: bufio.NewReader(rw), w: bufio.NewWriter(rw), raw: rw}
}

// EnableBinary switches the write side to the binary codec. The remote
// reader needs no warning: frames self-identify. Callers flip this only
// after the Hello negotiation confirms the peer advertised support.
func (c *Conn) EnableBinary() { c.binWrite.Store(true) }

// BinaryWrites reports whether the write side emits binary frames.
func (c *Conn) BinaryWrites() bool { return c.binWrite.Load() }

// Send encodes one message and flushes it: a binary frame once
// EnableBinary has been called (falling back to a JSON line per frame
// for the rare envelope the binary codec cannot carry), a JSON line
// otherwise. One message is one underlying write.
func (c *Conn) Send(e Envelope) error {
	if c.binWrite.Load() {
		if handled, err := c.sendBinary(&e); handled {
			return err
		}
	}
	b, err := json.Marshal(e)
	if err != nil {
		return fmt.Errorf("wire: marshal: %w", err)
	}
	if _, err := c.w.Write(append(b, '\n')); err != nil {
		return err
	}
	return c.w.Flush()
}

// SendBatch encodes several messages as one wire frame and flushes once.
// A single-element batch is sent as a plain envelope (no wrapping); an
// empty batch is a no-op. This is the manager's batched encode path: the
// per-node sender goroutines hand it whatever accumulated in the node's
// outbox (newest command, pending ping) so a slow cycle costs one write
// per node, never one write per queued message.
func (c *Conn) SendBatch(envs []Envelope) error {
	switch len(envs) {
	case 0:
		return nil
	case 1:
		return c.Send(envs[0])
	}
	return c.Send(Envelope{Type: KindBatch, Batch: envs})
}

// Recv reads one message. io.EOF signals a clean close.
func (c *Conn) Recv() (Envelope, error) {
	var e Envelope
	err := c.RecvInto(&e)
	return e, err
}

// RecvInto reads one message into e (reset first), auto-detecting the
// frame codec from its first byte. Readers on hot paths call this with a
// reused envelope so steady-state traffic decodes without allocating.
//
// A *DecodeError with Recoverable() true reports a frame that failed to
// decode — corrupt checksum, unparseable JSON line — while the stream
// stayed synchronised: the caller may count it and keep receiving. After
// maxDecodeFails consecutive failures the error turns fatal, bounding
// how long a desynchronised stream can masquerade as a noisy one. Any
// other error (including a fatal DecodeError) ends the connection.
func (c *Conn) RecvInto(e *Envelope) error {
	*e = Envelope{}
	b, err := c.r.ReadByte()
	if err != nil {
		return err
	}
	if b == frameMagic {
		err = c.recvBinary(e)
	} else {
		_ = c.r.UnreadByte()
		err = c.recvJSON(e)
	}
	var de *DecodeError
	if errors.As(err, &de) {
		c.decodeFails++
		if c.decodeFails >= maxDecodeFails {
			de.Fatal = true
		}
	} else if err == nil {
		c.decodeFails = 0
	}
	return err
}

// recvJSON reads one newline-delimited JSON envelope. Lines longer than
// the bufio buffer spill into the connection's reused read buffer.
func (c *Conn) recvJSON(e *Envelope) error {
	line, err := c.r.ReadSlice('\n')
	if err == bufio.ErrBufferFull {
		buf := append(c.readBuf[:0], line...)
		for err == bufio.ErrBufferFull {
			line, err = c.r.ReadSlice('\n')
			buf = append(buf, line...)
		}
		c.readBuf = buf
		line = buf
	}
	if err != nil {
		if len(line) == 0 {
			return err
		}
		// A final unterminated line still decodes.
	}
	if uerr := json.Unmarshal(line, e); uerr != nil {
		return &DecodeError{Codec: CodecJSON, Err: fmt.Errorf("%q: %w", truncate(line), uerr)}
	}
	return nil
}

// Close closes the underlying stream.
func (c *Conn) Close() error { return c.raw.Close() }

// SetWriteDeadline bounds subsequent Sends when the underlying stream
// supports write deadlines (net.Conn does); on plain byte streams it is a
// no-op. The manager daemon uses this to stop a stalled agent connection
// from blocking the control cycle. After a deadline error the stream's
// write state is undefined (a message may be half-flushed) — the caller
// must close the connection rather than keep sending on it.
func (c *Conn) SetWriteDeadline(t time.Time) error {
	if d, ok := c.raw.(interface{ SetWriteDeadline(time.Time) error }); ok {
		return d.SetWriteDeadline(t)
	}
	return nil
}

func truncate(b []byte) string {
	const max = 80
	if len(b) > max {
		return string(b[:max]) + "…"
	}
	return string(b)
}
