package wire

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// Binary codec: the negotiated fast path beside the JSON line protocol.
//
// A binary frame is
//
//	magic (0xBC) | version (0x01) | payload length (uint32 LE) | payload | CRC32-C of payload (uint32 LE)
//
// and the payload is one envelope: a kind byte followed by tagged fields
// in protobuf-style key/value encoding (key = tag<<3 | wiretype; wiretype
// 0 = varint, 1 = fixed64, 2 = length-delimited). Only non-zero fields
// are encoded, mirroring the JSON codec's omitempty semantics, and
// unknown tags are skipped by wiretype — both codecs tolerate fields
// they do not know, so the protocol stays evolvable on either path.
//
// The read side never needs to be told which codec a peer writes: the
// first byte of every frame disambiguates ('{' opens a JSON line, 0xBC a
// binary frame), so negotiation only ever governs what a writer emits.
// That is what makes the Hello handshake safe against every old/new peer
// combination — the worst case is staying on JSON.
//
// Corruption behaviour: the checksum covers the payload, so a flipped
// byte inside a frame whose header still parses is detected and reported
// as a recoverable DecodeError with the stream still synchronised — the
// caller counts it and keeps reading. A damaged header (bad version,
// absurd length) means framing itself is lost and the error is fatal.

// Codec names, advertised in an agent hello's Codecs list and confirmed
// in the manager's hello reply Codec field.
const (
	CodecJSON   = "json"
	CodecBinary = "binary"
)

const (
	frameMagic   = 0xBC
	frameVersion = 1
	// frameHeaderLen is magic + version + length.
	frameHeaderLen = 6
	// maxFramePayload bounds a frame's payload so a corrupted length
	// field cannot make the reader allocate or block unboundedly.
	maxFramePayload = 16 << 20
	// maxBatchDepth bounds nested-batch recursion in both directions.
	maxBatchDepth = 8
	// maxDecodeFails is how many consecutive recoverable decode errors a
	// connection absorbs before the next one is escalated to fatal: a
	// stream that lost framing (e.g. a truncated binary frame swallowing
	// the start of the next) can otherwise garble forever without ever
	// surfacing an I/O error.
	maxDecodeFails = 8
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Binary payload field tags. Wiretypes: varint fields use zigzag for the
// signed ints, plain varints for the unsigned ones; CPUUtil is fixed64;
// everything else is length-delimited.
const (
	tagNode       = 1  // zigzag varint
	tagMaxLevel   = 2  // zigzag varint
	tagSeq        = 3  // varint
	tagLevel      = 4  // zigzag varint
	tagCPUUtil    = 5  // fixed64 (IEEE 754 bits)
	tagMemUsed    = 6  // varint
	tagMemTotal   = 7  // varint
	tagNICBytes   = 8  // varint
	tagIntervalMS = 9  // zigzag varint
	tagJob        = 10 // zigzag varint
	tagEpoch      = 11 // varint
	tagEntry      = 12 // bytes (compact JSON, schema owned by internal/replica)
	tagStats      = 13 // bytes (JSON-encoded StatusReply; not a hot-path frame)
	tagBatch      = 14 // bytes, repeated (one nested payload per occurrence)
	tagCodec      = 15 // bytes (string)
	tagCodecs     = 16 // bytes, repeated (string)
	tagPowerW     = 17 // fixed64 (IEEE 754 bits)
	tagDemandW    = 18 // fixed64 (IEEE 754 bits)
	tagBudgetW    = 19 // fixed64 (IEEE 754 bits)
	tagPHW        = 20 // fixed64 (IEEE 754 bits)
	tagAgents     = 21 // zigzag varint
	tagHealthy    = 22 // zigzag varint
)

const (
	wireVarint  = 0
	wireFixed64 = 1
	wireBytes   = 2
)

// errNoBinary marks an envelope kind the binary codec cannot carry; Send
// falls back to the JSON line for that one frame.
var errNoBinary = errors.New("wire: kind has no binary encoding")

// DecodeError reports a frame that failed to decode. When Recoverable,
// the stream is still synchronised past the bad frame — the caller may
// count the error and keep reading (the managerd/agentd readers do,
// surfacing the count as the decode_errors instrument). A fatal decode
// error means framing itself is lost and the connection must be dropped.
type DecodeError struct {
	Codec string // "json" or "binary"
	Fatal bool
	Err   error
}

func (e *DecodeError) Error() string {
	return fmt.Sprintf("wire: %s decode: %v", e.Codec, e.Err)
}

func (e *DecodeError) Unwrap() error { return e.Err }

// Recoverable reports whether the caller may keep reading the stream.
func (e *DecodeError) Recoverable() bool { return !e.Fatal }

func kindByte(kind string) (byte, bool) {
	switch kind {
	case KindHello:
		return 1, true
	case KindSample:
		return 2, true
	case KindCommand:
		return 3, true
	case KindAck:
		return 4, true
	case KindPing:
		return 5, true
	case KindStatus:
		return 6, true
	case KindBatch:
		return 7, true
	case KindJournalAppend:
		return 8, true
	case KindJournalAck:
		return 9, true
	case KindCabReport:
		return 10, true
	case KindCabBudget:
		return 11, true
	}
	return 0, false
}

func kindName(b byte) (string, bool) {
	switch b {
	case 1:
		return KindHello, true
	case 2:
		return KindSample, true
	case 3:
		return KindCommand, true
	case 4:
		return KindAck, true
	case 5:
		return KindPing, true
	case 6:
		return KindStatus, true
	case 7:
		return KindBatch, true
	case 8:
		return KindJournalAppend, true
	case 9:
		return KindJournalAck, true
	case 10:
		return KindCabReport, true
	case 11:
		return KindCabBudget, true
	}
	return "", false
}

func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

func appendKey(buf []byte, tag, wt uint64) []byte {
	return binary.AppendUvarint(buf, tag<<3|wt)
}

func appendVarintField(buf []byte, tag, v uint64) []byte {
	buf = appendKey(buf, tag, wireVarint)
	return binary.AppendUvarint(buf, v)
}

func appendBytesField(buf []byte, tag uint64, b []byte) []byte {
	buf = appendKey(buf, tag, wireBytes)
	buf = binary.AppendUvarint(buf, uint64(len(b)))
	return append(buf, b...)
}

// appendPayload encodes e (kind byte + fields) onto buf. It returns
// errNoBinary for kinds outside the table — the caller falls back to
// JSON for the whole frame — and a real error for payloads the JSON
// codec would also refuse (an Entry that is not valid JSON).
func appendPayload(buf []byte, e *Envelope, depth int) ([]byte, error) {
	if depth > maxBatchDepth {
		return buf, errors.New("wire: batch nesting too deep to encode")
	}
	kb, ok := kindByte(e.Type)
	if !ok {
		return buf, errNoBinary
	}
	buf = append(buf, kb)
	if e.Node != 0 {
		buf = appendVarintField(buf, tagNode, zigzag(int64(e.Node)))
	}
	if e.MaxLevel != 0 {
		buf = appendVarintField(buf, tagMaxLevel, zigzag(int64(e.MaxLevel)))
	}
	if e.Seq != 0 {
		buf = appendVarintField(buf, tagSeq, e.Seq)
	}
	if e.Level != 0 {
		buf = appendVarintField(buf, tagLevel, zigzag(int64(e.Level)))
	}
	if e.CPUUtil != 0 {
		buf = appendKey(buf, tagCPUUtil, wireFixed64)
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(e.CPUUtil))
	}
	if e.MemUsed != 0 {
		buf = appendVarintField(buf, tagMemUsed, e.MemUsed)
	}
	if e.MemTotal != 0 {
		buf = appendVarintField(buf, tagMemTotal, e.MemTotal)
	}
	if e.NICBytes != 0 {
		buf = appendVarintField(buf, tagNICBytes, e.NICBytes)
	}
	if e.IntervalMS != 0 {
		buf = appendVarintField(buf, tagIntervalMS, zigzag(e.IntervalMS))
	}
	if e.Job != 0 {
		buf = appendVarintField(buf, tagJob, zigzag(int64(e.Job)))
	}
	if e.Epoch != 0 {
		buf = appendVarintField(buf, tagEpoch, e.Epoch)
	}
	if len(e.Entry) > 0 {
		// Compacted, because the JSON codec compacts RawMessage on
		// marshal — the two codecs must decode to identical envelopes.
		// Invalid JSON errors out here exactly as json.Marshal would.
		var cb bytes.Buffer
		if err := json.Compact(&cb, e.Entry); err != nil {
			return buf, fmt.Errorf("wire: marshal entry: %w", err)
		}
		buf = appendBytesField(buf, tagEntry, cb.Bytes())
	}
	if e.Stats != nil {
		sb, err := json.Marshal(e.Stats)
		if err != nil {
			return buf, fmt.Errorf("wire: marshal stats: %w", err)
		}
		buf = appendBytesField(buf, tagStats, sb)
	}
	for i := range e.Batch {
		// Nested envelopes need a length prefix whose width is unknown
		// until the child is encoded: encode the child in place, then
		// shift it right by the final varint's width (copy is memmove).
		buf = appendKey(buf, tagBatch, wireBytes)
		start := len(buf)
		var err error
		buf, err = appendPayload(buf, &e.Batch[i], depth+1)
		if err != nil {
			return buf, err
		}
		n := len(buf) - start
		var lb [binary.MaxVarintLen64]byte
		ln := binary.PutUvarint(lb[:], uint64(n))
		buf = append(buf, lb[:ln]...)
		copy(buf[start+ln:], buf[start:start+n])
		copy(buf[start:], lb[:ln])
	}
	if e.Codec != "" {
		buf = appendBytesField(buf, tagCodec, []byte(e.Codec))
	}
	for _, c := range e.Codecs {
		buf = appendBytesField(buf, tagCodecs, []byte(c))
	}
	if e.PowerW != 0 {
		buf = appendKey(buf, tagPowerW, wireFixed64)
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(e.PowerW))
	}
	if e.DemandW != 0 {
		buf = appendKey(buf, tagDemandW, wireFixed64)
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(e.DemandW))
	}
	if e.BudgetW != 0 {
		buf = appendKey(buf, tagBudgetW, wireFixed64)
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(e.BudgetW))
	}
	if e.PHW != 0 {
		buf = appendKey(buf, tagPHW, wireFixed64)
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(e.PHW))
	}
	if e.Agents != 0 {
		buf = appendVarintField(buf, tagAgents, zigzag(int64(e.Agents)))
	}
	if e.Healthy != 0 {
		buf = appendVarintField(buf, tagHealthy, zigzag(int64(e.Healthy)))
	}
	return buf, nil
}

// AppendFrame encodes e as one complete binary frame (header, payload,
// checksum) onto buf. The error is errNoBinary (possibly wrapped) when
// the kind has no binary form.
func AppendFrame(buf []byte, e *Envelope) ([]byte, error) {
	base := len(buf)
	buf = append(buf, frameMagic, frameVersion, 0, 0, 0, 0)
	payload, err := appendPayload(buf, e, 0)
	if err != nil {
		return buf[:base], err
	}
	buf = payload
	n := len(buf) - base - frameHeaderLen
	if n > maxFramePayload {
		return buf[:base], fmt.Errorf("wire: frame payload %d exceeds %d-byte cap", n, maxFramePayload)
	}
	binary.LittleEndian.PutUint32(buf[base+2:base+6], uint32(n))
	sum := crc32.Checksum(buf[base+frameHeaderLen:], castagnoli)
	return binary.LittleEndian.AppendUint32(buf, sum), nil
}

// DecodeFrame decodes one complete binary frame (as produced by
// AppendFrame) into e. It mirrors the Conn read path for callers holding
// a frame as a byte slice (fuzzers, tests).
func DecodeFrame(frame []byte, e *Envelope) error {
	if len(frame) < frameHeaderLen+1+4 {
		return &DecodeError{Codec: CodecBinary, Fatal: true, Err: errors.New("frame too short")}
	}
	if frame[0] != frameMagic || frame[1] != frameVersion {
		return &DecodeError{Codec: CodecBinary, Fatal: true, Err: errors.New("bad frame header")}
	}
	n := binary.LittleEndian.Uint32(frame[2:6])
	if n > maxFramePayload || int(n) != len(frame)-frameHeaderLen-4 {
		return &DecodeError{Codec: CodecBinary, Fatal: true, Err: errors.New("bad frame length")}
	}
	payload := frame[frameHeaderLen : frameHeaderLen+int(n)]
	sum := binary.LittleEndian.Uint32(frame[len(frame)-4:])
	if crc32.Checksum(payload, castagnoli) != sum {
		return &DecodeError{Codec: CodecBinary, Err: errors.New("frame checksum mismatch")}
	}
	*e = Envelope{}
	if err := decodePayload(payload, e, 0); err != nil {
		return &DecodeError{Codec: CodecBinary, Err: err}
	}
	return nil
}

// decodePayload decodes one payload (kind byte + fields) into e, which
// the caller has zeroed. Unknown tags are skipped by wiretype; unknown
// kind bytes and malformed field encodings are errors (the enclosing
// frame passed its checksum, so these mean a protocol bug or a version
// skew beyond field-level evolution, not line noise).
func decodePayload(p []byte, e *Envelope, depth int) error {
	if depth > maxBatchDepth {
		return errors.New("batch nesting too deep")
	}
	if len(p) == 0 {
		return errors.New("empty payload")
	}
	kind, ok := kindName(p[0])
	if !ok {
		return fmt.Errorf("unknown kind byte %d", p[0])
	}
	e.Type = kind
	p = p[1:]
	for len(p) > 0 {
		key, n := binary.Uvarint(p)
		if n <= 0 {
			return errors.New("bad field key")
		}
		p = p[n:]
		tag, wt := key>>3, key&7
		switch wt {
		case wireVarint:
			v, n := binary.Uvarint(p)
			if n <= 0 {
				return errors.New("bad varint")
			}
			p = p[n:]
			switch tag {
			case tagNode:
				e.Node = int(unzigzag(v))
			case tagMaxLevel:
				e.MaxLevel = int(unzigzag(v))
			case tagSeq:
				e.Seq = v
			case tagLevel:
				e.Level = int(unzigzag(v))
			case tagMemUsed:
				e.MemUsed = v
			case tagMemTotal:
				e.MemTotal = v
			case tagNICBytes:
				e.NICBytes = v
			case tagIntervalMS:
				e.IntervalMS = unzigzag(v)
			case tagJob:
				e.Job = int(unzigzag(v))
			case tagEpoch:
				e.Epoch = v
			case tagAgents:
				e.Agents = int(unzigzag(v))
			case tagHealthy:
				e.Healthy = int(unzigzag(v))
			}
		case wireFixed64:
			if len(p) < 8 {
				return errors.New("short fixed64")
			}
			v := binary.LittleEndian.Uint64(p)
			p = p[8:]
			switch tag {
			case tagCPUUtil:
				e.CPUUtil = math.Float64frombits(v)
			case tagPowerW:
				e.PowerW = math.Float64frombits(v)
			case tagDemandW:
				e.DemandW = math.Float64frombits(v)
			case tagBudgetW:
				e.BudgetW = math.Float64frombits(v)
			case tagPHW:
				e.PHW = math.Float64frombits(v)
			}
		case wireBytes:
			l, n := binary.Uvarint(p)
			if n <= 0 || l > uint64(len(p)-n) {
				return errors.New("bad length-delimited field")
			}
			b := p[n : n+int(l)]
			p = p[n+int(l):]
			switch tag {
			case tagEntry:
				e.Entry = append(json.RawMessage(nil), b...)
			case tagStats:
				st := new(StatusReply)
				if err := json.Unmarshal(b, st); err != nil {
					return fmt.Errorf("stats: %w", err)
				}
				e.Stats = st
			case tagBatch:
				e.Batch = append(e.Batch, Envelope{})
				if err := decodePayload(b, &e.Batch[len(e.Batch)-1], depth+1); err != nil {
					return err
				}
			case tagCodec:
				e.Codec = string(b)
			case tagCodecs:
				e.Codecs = append(e.Codecs, string(b))
			}
		default:
			return fmt.Errorf("bad wire type %d", wt)
		}
	}
	return nil
}

// sendBinary encodes and writes e as one binary frame, reusing the
// connection's encode buffer. handled=false (with a nil error) means the
// kind has no binary form and the caller should emit the JSON line.
func (c *Conn) sendBinary(e *Envelope) (handled bool, err error) {
	buf, err := AppendFrame(c.encBuf[:0], e)
	c.encBuf = buf[:0]
	if err != nil {
		if errors.Is(err, errNoBinary) {
			return false, nil
		}
		return true, err
	}
	if _, err := c.w.Write(buf); err != nil {
		return true, err
	}
	return true, c.w.Flush()
}

// recvBinary reads one binary frame body (the magic byte is already
// consumed) into e, reusing the connection's read buffer.
func (c *Conn) recvBinary(e *Envelope) error {
	var hdr [frameHeaderLen - 1]byte
	if _, err := io.ReadFull(c.r, hdr[:]); err != nil {
		return err
	}
	if hdr[0] != frameVersion {
		return &DecodeError{Codec: CodecBinary, Fatal: true, Err: fmt.Errorf("unsupported frame version %d", hdr[0])}
	}
	n := binary.LittleEndian.Uint32(hdr[1:5])
	if n > maxFramePayload {
		return &DecodeError{Codec: CodecBinary, Fatal: true, Err: fmt.Errorf("frame length %d exceeds %d-byte cap", n, maxFramePayload)}
	}
	need := int(n) + 4
	if cap(c.readBuf) < need {
		c.readBuf = make([]byte, need)
	}
	buf := c.readBuf[:need]
	if _, err := io.ReadFull(c.r, buf); err != nil {
		return err
	}
	payload := buf[:n]
	sum := binary.LittleEndian.Uint32(buf[n:])
	if crc32.Checksum(payload, castagnoli) != sum {
		return &DecodeError{Codec: CodecBinary, Err: errors.New("frame checksum mismatch")}
	}
	if err := decodePayload(payload, e, 0); err != nil {
		return &DecodeError{Codec: CodecBinary, Err: err}
	}
	return nil
}
