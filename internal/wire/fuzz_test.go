package wire

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

// FuzzRecv feeds arbitrary bytes into the protocol decoder: it must never
// panic, and every successfully decoded sample envelope must convert to a
// reading without panicking.
func FuzzRecv(f *testing.F) {
	f.Add([]byte(`{"type":"sample","node":3,"level":9,"cpu_util":0.5,"interval_ms":1000}` + "\n"))
	f.Add([]byte(`{"type":"hello","node":1,"max_level":9}` + "\n"))
	f.Add([]byte("{}\n{}\n"))
	f.Add([]byte(`{"type":"sample","interval_ms":-5}`))
	f.Add([]byte{0xff, 0xfe, '\n'})
	// Truncated JSON: a sample cut mid-field, as a mid-write connection
	// kill or segment truncation produces.
	f.Add([]byte(`{"type":"sample","node":3,"lev`))
	f.Add([]byte(`{"type":"sample","node":3,"level":9,"cpu_util":0.` + "\n"))
	// Oversized line: a single message far beyond any legitimate
	// envelope (the reader must grow its buffer, not panic or stall).
	f.Add([]byte(`{"type":"sample","node":1,"pad":"` + strings.Repeat("x", 64<<10) + `"}` + "\n"))
	// Interleaved garbage: valid frames with junk between them, the
	// steady state after a truncated write desynchronises the framing.
	f.Add([]byte(`{"type":"hello","node":1}` + "\n" +
		"\x00\x01binary-junk\x02\n" +
		`{"type":"sample","node":1,"level":3}` + "\n"))
	f.Add([]byte(`{"type":"command","node":2,"level":1}garbage-tail` + "\n" +
		`{"type":"ack","node":2}` + "\n"))
	// Status reply with every stats field present.
	f.Add([]byte(`{"type":"status","stats":{"agents":1,"cycles":2,"dropped_stale":3,"command_errors":4}}` + "\n"))
	// Batched-command frames: the manager's coalesced command+ping write.
	f.Add([]byte(`{"type":"batch","batch":[{"type":"command","node":3,"level":2,"seq":17},{"type":"ping"}]}` + "\n"))
	// Degenerate batches: empty, null, and one truncated mid-frame.
	f.Add([]byte(`{"type":"batch","batch":[]}` + "\n" + `{"type":"batch"}` + "\n"))
	f.Add([]byte(`{"type":"batch","batch":[{"type":"command","node":1,"lev`))
	// Nested batches (the protocol says they do not nest; the decoder must
	// still survive arbitrary nesting depth without panicking).
	f.Add([]byte(`{"type":"batch","batch":[{"type":"batch","batch":[{"type":"command","level":1}]}]}` + "\n"))
	// A batch carrying samples and junk kinds between two commands.
	f.Add([]byte(`{"type":"batch","batch":[{"type":"command","node":2,"level":0,"seq":9},` +
		`{"type":"sample","node":2,"level":4,"interval_ms":50},{"type":"???"},` +
		`{"type":"command","node":2,"level":1,"seq":10}]}` + "\n"))
	// Journal replication frames: a follower subscribe/ack, a live append
	// carrying an opaque entry, a full-snapshot reset entry, and an
	// epoch-stamped hello (manager→agent fencing announcement).
	f.Add([]byte(`{"type":"journal_ack","seq":41,"epoch":2}` + "\n"))
	f.Add([]byte(`{"type":"journal_append","seq":42,"epoch":2,` +
		`"entry":{"seq":42,"epoch":2,"cycle":17,"levels":[{"node":3,"level":1}],"pl_w":840,"ph_w":930}}` + "\n"))
	f.Add([]byte(`{"type":"journal_append","seq":7,"entry":{"seq":7,"reset":{"last_seq":7,"saved_at_cycle":9,` +
		`"levels":[{"node":0,"level":2},{"node":1,"level":0}]}}}` + "\n"))
	f.Add([]byte(`{"type":"hello","epoch":3}` + "\n" + `{"type":"journal_append","seq":1,"entry":{"seq":1,"lev`))
	// Batch-wrapped journal frames: replication frames coalesced into a
	// single write, as a catching-up leader emits under backlog.
	f.Add([]byte(`{"type":"batch","batch":[` +
		`{"type":"journal_append","seq":3,"epoch":1,"entry":{"seq":3,"levels":[{"node":0,"level":1}]}},` +
		`{"type":"journal_append","seq":4,"epoch":1,"entry":{"seq":4,"levels":[{"node":1,"level":2}]}},` +
		`{"type":"journal_ack","seq":4,"epoch":1}]}` + "\n"))
	// Binary-codec frames: well-formed, corrupted, truncated, and mixed
	// with JSON lines on the same stream (what the auto-detecting reader
	// faces after negotiation, and after faultnet damage).
	binFrames := func(envs ...Envelope) []byte {
		var buf []byte
		for i := range envs {
			var err error
			buf, err = AppendFrame(buf, &envs[i])
			if err != nil {
				f.Fatalf("seed frame: %v", err)
			}
		}
		return buf
	}
	f.Add(binFrames(
		Envelope{Type: KindHello, Node: 1, MaxLevel: 9, Codecs: []string{CodecBinary}},
		Envelope{Type: KindSample, Node: 1, Level: 3, CPUUtil: 0.5, IntervalMS: 1000},
	))
	f.Add(binFrames(Envelope{Type: KindBatch, Batch: []Envelope{
		{Type: KindCommand, Node: 3, Level: 2, Seq: 17},
		{Type: KindJournalAppend, Seq: 42, Epoch: 2, Entry: []byte(`{"seq":42}`)},
		{Type: KindPing},
	}}))
	corrupt := binFrames(Envelope{Type: KindCommand, Node: 7, Level: 1, Seq: 9})
	corrupt[len(corrupt)-5] ^= 0xA5 // damage the payload so the checksum fails
	f.Add(append(corrupt, binFrames(Envelope{Type: KindAck, Node: 7, Seq: 9})...))
	whole := binFrames(Envelope{Type: KindStatus, Stats: &StatusReply{Agents: 4, Cycles: 2}})
	f.Add(append(whole[:len(whole)-7:len(whole)-7], // truncated mid-frame
		[]byte(`{"type":"ack","node":1}`+"\n")...))
	f.Add(append(binFrames(Envelope{Type: KindJournalAck, Seq: 41, Epoch: 2}),
		[]byte(`{"type":"journal_ack","seq":42,"epoch":2}`+"\n")...))
	f.Fuzz(func(t *testing.T, data []byte) {
		c := NewConn(nopCloser{bytes.NewReader(data)})
		for i := 0; i < 16; i++ {
			env, err := c.Recv()
			if err != nil {
				var de *DecodeError
				if errors.As(err, &de) && de.Recoverable() {
					continue // resynchronise past the damaged frame
				}
				return
			}
			if env.Type == KindSample {
				_ = env.Reading()
			}
			for _, inner := range env.Batch {
				if inner.Type == KindSample {
					_ = inner.Reading()
				}
			}
		}
	})
}

type nopCloser struct{ io.Reader }

func (nopCloser) Write(p []byte) (int, error) { return len(p), nil }
func (nopCloser) Close() error                { return nil }
