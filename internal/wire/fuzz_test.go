package wire

import (
	"bytes"
	"io"
	"testing"
)

// FuzzRecv feeds arbitrary bytes into the protocol decoder: it must never
// panic, and every successfully decoded sample envelope must convert to a
// reading without panicking.
func FuzzRecv(f *testing.F) {
	f.Add([]byte(`{"type":"sample","node":3,"level":9,"cpu_util":0.5,"interval_ms":1000}` + "\n"))
	f.Add([]byte(`{"type":"hello","node":1,"max_level":9}` + "\n"))
	f.Add([]byte("{}\n{}\n"))
	f.Add([]byte(`{"type":"sample","interval_ms":-5}`))
	f.Add([]byte{0xff, 0xfe, '\n'})
	f.Fuzz(func(t *testing.T, data []byte) {
		c := NewConn(nopCloser{bytes.NewReader(data)})
		for i := 0; i < 16; i++ {
			env, err := c.Recv()
			if err != nil {
				return
			}
			if env.Type == KindSample {
				_ = env.Reading()
			}
		}
	})
}

type nopCloser struct{ io.Reader }

func (nopCloser) Write(p []byte) (int, error) { return len(p), nil }
func (nopCloser) Close() error                { return nil }
