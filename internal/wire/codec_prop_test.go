package wire

import (
	"encoding/json"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/proptest"
)

// randEnvelope draws an arbitrary Envelope from a proptest generator.
// It covers every kind and field class the codecs must agree on; floats
// stay finite (JSON cannot carry NaN/Inf, so neither codec accepts them).
func randEnvelope(g *proptest.Generator, depth int) Envelope {
	e := Envelope{Type: builderKinds[g.Intn(len(builderKinds))]}
	if g.Bool(0.7) {
		e.Node = g.Intn(1 << 20)
	}
	if g.Bool(0.5) {
		e.MaxLevel = g.Intn(64)
	}
	if g.Bool(0.7) {
		e.Seq = uint64(g.Rand().Int63())
	}
	if g.Bool(0.5) {
		e.Level = g.Intn(64)
	}
	if g.Bool(0.5) {
		e.CPUUtil = g.Range(0, 128)
	}
	if g.Bool(0.4) {
		e.MemUsed = uint64(g.Rand().Int63())
		e.MemTotal = uint64(g.Rand().Int63())
		e.NICBytes = uint64(g.Rand().Int63())
	}
	if g.Bool(0.4) {
		e.IntervalMS = int64(g.IntRange(1, 1_000_000))
		e.Job = g.Intn(1024)
	}
	if g.Bool(0.6) {
		e.Epoch = uint64(g.Intn(1 << 30))
	}
	if g.Bool(0.3) {
		e.Entry = json.RawMessage(builderEntries[g.Intn(len(builderEntries))])
	}
	if g.Bool(0.2) {
		e.Stats = &StatusReply{
			Agents:     g.Intn(100_000),
			Cycles:     g.Intn(1_000_000),
			CPUUtilise: g.Range(0, 100),
			LastPowerW: g.Range(0, 20_000),
			Trained:    g.Bool(0.5),
			Drifted:    g.Intn(4096),
			Epoch:      g.Intn(1000),
			Leader:     g.Bool(0.5),
		}
	}
	if g.Bool(0.3) {
		e.Codec = builderCodecs[g.Intn(len(builderCodecs))]
	}
	if g.Bool(0.3) {
		n := g.IntRange(1, 3)
		for i := 0; i < n; i++ {
			e.Codecs = append(e.Codecs, builderCodecs[g.Intn(len(builderCodecs))])
		}
	}
	if depth < 2 && g.Bool(0.25) {
		n := g.IntRange(1, 4)
		for i := 0; i < n; i++ {
			e.Batch = append(e.Batch, randEnvelope(g, depth+1))
		}
	}
	if g.Bool(0.3) {
		// Federation fields (cab_report/cab_budget).
		e.PowerW = g.Range(0, 100_000)
		e.DemandW = g.Range(0, 200_000)
		e.BudgetW = g.Range(0, 100_000)
		e.PHW = g.Range(0, 110_000)
		e.Agents = g.Intn(100_000)
		e.Healthy = g.Intn(100_000)
	}
	return e
}

// TestPropCodecRoundTripIdentity: encode→decode is identity for arbitrary
// Envelopes under both codecs, and the two decodes agree with each other.
// Replay a failure with PROPTEST_SEED=<seed> as reported by proptest.
func TestPropCodecRoundTripIdentity(t *testing.T) {
	proptest.MustCheck(t, "codec round-trip identity", proptest.Config{NumTrials: 400, Seed: 0x8C0DEC}, func(g *proptest.Generator) error {
		e := randEnvelope(g, 0)

		jb, err := json.Marshal(e)
		if err != nil {
			return fmt.Errorf("json encode: %w", err)
		}
		frame, err := AppendFrame(nil, &e)
		if err != nil {
			return fmt.Errorf("binary encode: %w", err)
		}

		var fromJSON, fromBinary Envelope
		if err := json.Unmarshal(jb, &fromJSON); err != nil {
			return fmt.Errorf("json decode: %w", err)
		}
		if err := DecodeFrame(frame, &fromBinary); err != nil {
			return fmt.Errorf("binary decode: %w", err)
		}
		if !reflect.DeepEqual(fromJSON, fromBinary) {
			return fmt.Errorf("codecs diverge:\n json   %+v\n binary %+v", fromJSON, fromBinary)
		}

		// Identity against the original modulo canonicalisation: marshal
		// both and compare the JSON reference forms.
		want, err := json.Marshal(e)
		if err != nil {
			return fmt.Errorf("re-marshal original: %w", err)
		}
		got, err := json.Marshal(fromBinary)
		if err != nil {
			return fmt.Errorf("re-marshal decoded: %w", err)
		}
		if string(want) != string(got) {
			return fmt.Errorf("round trip not identity:\n want %s\n got  %s", want, got)
		}
		return nil
	})
}

// TestPropJSONUnknownFieldTolerance: the JSON side must tolerate fields
// it does not know (a newer peer may add them), decoding the rest of the
// envelope exactly as if they were absent. This is the compatibility
// contract that lets JSON remain the canonical fallback codec.
func TestPropJSONUnknownFieldTolerance(t *testing.T) {
	proptest.MustCheck(t, "json unknown-field tolerance", proptest.Config{NumTrials: 400, Seed: 0x8C0DED}, func(g *proptest.Generator) error {
		e := randEnvelope(g, 0)
		jb, err := json.Marshal(e)
		if err != nil {
			return fmt.Errorf("json encode: %w", err)
		}

		var base Envelope
		if err := json.Unmarshal(jb, &base); err != nil {
			return fmt.Errorf("baseline decode: %w", err)
		}

		// Graft unknown fields onto the top-level object.
		var obj map[string]json.RawMessage
		if err := json.Unmarshal(jb, &obj); err != nil {
			return fmt.Errorf("reparse as object: %w", err)
		}
		extras := []struct {
			key, val string
		}{
			{"x_future_flag", "true"},
			{"x_vec", `[1,2,3]`},
			{"x_nested", `{"a":{"b":"c"}}`},
			{"x_num", fmt.Sprintf("%d", g.Intn(1<<30))},
		}
		n := g.IntRange(1, len(extras))
		for i := 0; i < n; i++ {
			obj[extras[i].key] = json.RawMessage(extras[i].val)
		}
		grafted, err := json.Marshal(obj)
		if err != nil {
			return fmt.Errorf("re-marshal grafted: %w", err)
		}

		var tolerant Envelope
		if err := json.Unmarshal(grafted, &tolerant); err != nil {
			return fmt.Errorf("decode with unknown fields: %w", err)
		}
		if !reflect.DeepEqual(base, tolerant) {
			return fmt.Errorf("unknown fields changed the decode:\n base     %+v\n tolerant %+v", base, tolerant)
		}
		return nil
	})
}

// TestPropBinaryUnknownTagTolerance mirrors the JSON tolerance property
// on the binary side: payloads carrying tags this decoder has never heard
// of must still yield the known fields intact (forward compatibility for
// mixed-version fleets).
func TestPropBinaryUnknownTagTolerance(t *testing.T) {
	proptest.MustCheck(t, "binary unknown-tag tolerance", proptest.Config{NumTrials: 200, Seed: 0x8C0DEE}, func(g *proptest.Generator) error {
		e := randEnvelope(g, 0)
		payload, err := appendPayload(nil, &e, 0)
		if err != nil {
			return fmt.Errorf("binary encode: %w", err)
		}
		var base Envelope
		if err := decodePayload(payload, &base, 0); err != nil {
			return fmt.Errorf("baseline decode: %w", err)
		}

		// Append unknown-tag fields (varint and length-delimited
		// wiretypes) that a future protocol revision might emit. Tags
		// below 23 are all assigned (tagHealthy is the highest).
		tag := uint64(23 + g.Intn(8))
		if g.Bool(0.5) {
			payload = appendVarintField(payload, tag, uint64(g.Intn(1<<30)))
		} else {
			payload = appendBytesField(payload, tag, []byte("from-the-future"))
		}

		var tolerant Envelope
		if err := decodePayload(payload, &tolerant, 0); err != nil {
			return fmt.Errorf("decode with unknown tags: %w", err)
		}
		if !reflect.DeepEqual(base, tolerant) {
			return fmt.Errorf("unknown tags changed the decode:\n base     %+v\n tolerant %+v", base, tolerant)
		}
		return nil
	})
}
