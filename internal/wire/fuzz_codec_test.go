package wire

import (
	"encoding/json"
	"reflect"
	"testing"
)

// envBuilder derives a structured Envelope from raw fuzz bytes: each
// draw consumes input deterministically, so the corpus explores the
// envelope space instead of drowning in unparseable frames. Exhausted
// input draws zeros, which keeps every prefix of a crashing input
// meaningful.
type envBuilder struct {
	data []byte
	pos  int
}

func (b *envBuilder) byte() byte {
	if b.pos >= len(b.data) {
		return 0
	}
	v := b.data[b.pos]
	b.pos++
	return v
}

func (b *envBuilder) u64() uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v = v<<8 | uint64(b.byte())
	}
	return v
}

func (b *envBuilder) i64() int64 { return int64(b.u64()) }

// f64 builds a finite float: NaN would break equality and ±Inf is
// unmarshalable JSON, so neither belongs in the parity corpus (the JSON
// codec rejects them at encode time on both paths alike).
func (b *envBuilder) f64() float64 {
	return float64(b.i64()%1_000_000_000) / 1024.0
}

var builderKinds = []string{
	KindHello, KindSample, KindCommand, KindAck, KindPing,
	KindStatus, KindBatch, KindJournalAppend, KindJournalAck,
	KindCabReport, KindCabBudget,
}

// Valid-JSON entry fragments, compact and not: the codecs must agree on
// both (the JSON reference compacts RawMessage on marshal).
var builderEntries = []string{
	`{"seq":42,"epoch":2,"cycle":17,"levels":[{"node":3,"level":1}]}`,
	`{ "seq": 7,` + "\n" + ` "reset": {"last_seq": 7} }`,
	`[1,2,3]`,
	`"opaque"`,
	`null`,
}

var builderCodecs = []string{CodecBinary, CodecJSON, "zstd", "future-codec"}

func (b *envBuilder) envelope(depth int) Envelope {
	e := Envelope{Type: builderKinds[int(b.byte())%len(builderKinds)]}
	mask := b.byte()
	if mask&1 != 0 {
		e.Node = int(b.i64() % 1_000_000)
	}
	if mask&2 != 0 {
		e.MaxLevel = int(b.i64() % 64)
	}
	if mask&4 != 0 {
		e.Seq = b.u64()
	}
	if mask&8 != 0 {
		e.Level = int(b.i64() % 64)
	}
	if mask&16 != 0 {
		e.CPUUtil = b.f64()
	}
	if mask&32 != 0 {
		e.MemUsed, e.MemTotal, e.NICBytes = b.u64(), b.u64(), b.u64()
	}
	if mask&64 != 0 {
		e.IntervalMS = b.i64() % 1_000_000
		e.Job = int(b.i64() % 1024)
	}
	if mask&128 != 0 {
		e.Epoch = b.u64() % (1 << 40)
	}
	ext := b.byte()
	if ext&1 != 0 {
		e.Entry = json.RawMessage(builderEntries[int(b.byte())%len(builderEntries)])
	}
	if ext&2 != 0 {
		e.Stats = &StatusReply{
			Agents: int(b.i64() % 100_000), Cycles: int(b.i64() % 1_000_000),
			CPUUtilise: b.f64(), LastPowerW: b.f64(), Trained: ext&4 != 0,
			Drifted: int(b.i64() % 4096), Epoch: int(b.u64() % 1000), Leader: ext&8 != 0,
		}
	}
	if ext&16 != 0 {
		e.Codec = builderCodecs[int(b.byte())%len(builderCodecs)]
	}
	if ext&32 != 0 {
		n := int(b.byte()) % 3
		for i := 0; i <= n; i++ {
			e.Codecs = append(e.Codecs, builderCodecs[int(b.byte())%len(builderCodecs)])
		}
	}
	if ext&64 != 0 && depth < 2 {
		n := int(b.byte()) % 3
		for i := 0; i <= n; i++ {
			e.Batch = append(e.Batch, b.envelope(depth+1))
		}
	}
	if ext&128 != 0 {
		// Federation fields (cab_report/cab_budget).
		e.PowerW, e.DemandW = b.f64(), b.f64()
		e.BudgetW, e.PHW = b.f64(), b.f64()
		e.Agents = int(b.i64() % 100_000)
		e.Healthy = int(b.i64() % 100_000)
	}
	return e
}

// FuzzCodecEquivalence is the codec parity proof: any envelope, encoded
// by either codec, decodes to the same value under both. The JSON line
// codec is the reference; divergence in either direction is a bug in the
// binary codec (or a field added to Envelope without a binary mapping —
// which this fuzzer exists to catch at the moment of the edit).
func FuzzCodecEquivalence(f *testing.F) {
	// One seed per kind, plus deeper shapes: batches (incl. nested),
	// journal frames with entries, stats, codec negotiation fields.
	for i := range builderKinds {
		f.Add([]byte{byte(i), 0xFF, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	}
	f.Add([]byte{6, 0, 0x02, 9, 8, 7, 6, 5, 4, 3, 2, 1})             // status + stats
	f.Add([]byte{7, 0, 0x40, 2, 1, 0xFF, 3, 0, 0x40, 1, 0, 0, 2, 0}) // nested batch
	f.Add([]byte{8, 0x84, 0x01, 1, 0xCC, 0xDD})                      // journal append + entry
	f.Add([]byte{0, 0x81, 0x30, 2, 1, 0, 3})                         // hello advertising codecs
	f.Add([]byte{1, 0, 0x10, 0})                                     // hello reply carrying codec
	f.Add([]byte{9, 0x05, 0xA0, 1, 2, 3, 4, 5, 6, 7, 8})             // cab_report with fed fields
	f.Add([]byte{10, 0x04, 0x80, 9, 9, 9, 9})                        // cab_budget grant
	f.Fuzz(func(t *testing.T, data []byte) {
		b := &envBuilder{data: data}
		e := b.envelope(0)

		jb, err := json.Marshal(e)
		if err != nil {
			t.Fatalf("json encode refused builder envelope: %v", err)
		}
		frame, err := AppendFrame(nil, &e)
		if err != nil {
			t.Fatalf("binary encode refused builder envelope: %v", err)
		}

		var fromJSON Envelope
		if err := json.Unmarshal(jb, &fromJSON); err != nil {
			t.Fatalf("json round trip: %v", err)
		}
		var fromBinary Envelope
		if err := DecodeFrame(frame, &fromBinary); err != nil {
			t.Fatalf("binary round trip: %v", err)
		}
		if !reflect.DeepEqual(fromJSON, fromBinary) {
			t.Fatalf("codec divergence for %+v:\n json   %+v\n binary %+v", e, fromJSON, fromBinary)
		}

		// Re-encoding the binary decode must be a fixed point: one more
		// trip through the codec changes nothing.
		frame2, err := AppendFrame(nil, &fromBinary)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		var again Envelope
		if err := DecodeFrame(frame2, &again); err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		if !reflect.DeepEqual(fromBinary, again) {
			t.Fatalf("binary codec not idempotent:\n first  %+v\n second %+v", fromBinary, again)
		}
	})
}
