package wire

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"reflect"
	"testing"
)

// jsonRoundTrip normalises an envelope through the JSON codec — the
// compatibility reference both codecs must agree with.
func jsonRoundTrip(t *testing.T, e Envelope) Envelope {
	t.Helper()
	b, err := json.Marshal(e)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var out Envelope
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	return out
}

// binaryRoundTrip normalises an envelope through the binary codec.
func binaryRoundTrip(t *testing.T, e Envelope) Envelope {
	t.Helper()
	frame, err := AppendFrame(nil, &e)
	if err != nil {
		t.Fatalf("AppendFrame: %v", err)
	}
	var out Envelope
	if err := DecodeFrame(frame, &out); err != nil {
		t.Fatalf("DecodeFrame: %v", err)
	}
	return out
}

// representative envelopes, one per kind, every field class exercised.
func kindExemplars() []Envelope {
	return []Envelope{
		{Type: KindHello, Node: 3, MaxLevel: 9, Level: 2, Epoch: 7,
			Codecs: []string{CodecBinary, CodecJSON}},
		{Type: KindHello, Epoch: 4, Codec: CodecBinary}, // manager reply
		{Type: KindSample, Node: -12, Level: 5, MaxLevel: 9, CPUUtil: 0.625,
			MemUsed: 1 << 33, MemTotal: 48 << 30, NICBytes: 123456789,
			IntervalMS: 1500, Job: 11},
		{Type: KindCommand, Node: 4, Level: 3, Seq: 17},
		{Type: KindAck, Node: 4, Level: 3, Seq: 17},
		{Type: KindPing},
		{Type: KindStatus, Stats: &StatusReply{Agents: 5, CPUUtilise: 0.25,
			LastPowerW: 8123.5, Trained: true, Epoch: 3, Leader: true}},
		{Type: KindBatch, Batch: []Envelope{
			{Type: KindCommand, Node: 2, Level: 1, Seq: 9},
			{Type: KindPing},
		}},
		{Type: KindJournalAppend, Seq: 42, Epoch: 2,
			Entry: json.RawMessage(`{"seq":42,"cycle":17,"levels":[{"node":3,"level":1}]}`)},
		{Type: KindJournalAck, Seq: 41, Epoch: 2},
		{Type: KindCabReport, Node: 2, Seq: 6, PowerW: 10240.5, DemandW: 15360.25,
			BudgetW: 9000, PHW: 9600, Agents: 128, Healthy: 126,
			Codecs: []string{CodecBinary}},
		{Type: KindCabBudget, Node: 2, Seq: 7, BudgetW: 8750.5, PHW: 9350.75, Epoch: 3},
	}
}

// TestBinaryRoundTripAllKinds: for every kind, both codecs decode to the
// same envelope.
func TestBinaryRoundTripAllKinds(t *testing.T) {
	for _, e := range kindExemplars() {
		jr := jsonRoundTrip(t, e)
		br := binaryRoundTrip(t, e)
		if !reflect.DeepEqual(jr, br) {
			t.Errorf("%s: codec divergence:\n json %+v\n bin  %+v", e.Type, jr, br)
		}
	}
}

// TestBinaryEntryCompaction: the binary codec compacts Entry exactly as
// json.Marshal compacts RawMessage, so non-compact entries stay
// byte-equivalent across codecs.
func TestBinaryEntryCompaction(t *testing.T) {
	e := Envelope{Type: KindJournalAppend, Seq: 1,
		Entry: json.RawMessage("{ \"seq\": 1,\n  \"cycle\": 2 }")}
	jr := jsonRoundTrip(t, e)
	br := binaryRoundTrip(t, e)
	if !bytes.Equal(jr.Entry, br.Entry) {
		t.Fatalf("entry divergence: json %q, binary %q", jr.Entry, br.Entry)
	}
	// And invalid entries fail to encode on both paths.
	bad := Envelope{Type: KindJournalAppend, Entry: json.RawMessage(`{"seq":`)}
	if _, err := json.Marshal(bad); err == nil {
		t.Fatal("json accepted invalid entry")
	}
	if _, err := AppendFrame(nil, &bad); err == nil {
		t.Fatal("binary accepted invalid entry")
	}
}

// TestBinaryNegotiatedOnWire: after EnableBinary the stream carries
// binary frames (magic first byte), and the peer's auto-detecting reader
// decodes them with no mode switch of its own.
func TestBinaryNegotiatedOnWire(t *testing.T) {
	var buf bytes.Buffer
	c := NewConn(pipeConn{&buf, &buf})
	if c.BinaryWrites() {
		t.Fatal("binary writes on before negotiation")
	}
	c.EnableBinary()
	want := Envelope{Type: KindSample, Node: 7, Level: 4, CPUUtil: 0.5, IntervalMS: 1000}
	if err := c.Send(want); err != nil {
		t.Fatal(err)
	}
	if buf.Bytes()[0] != frameMagic {
		t.Fatalf("first byte %#x, want frame magic %#x", buf.Bytes()[0], frameMagic)
	}
	got, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, jsonRoundTrip(t, want)) {
		t.Fatalf("got %+v, want %+v", got, want)
	}
}

// TestBinaryUnknownKindFallsBackToJSON: a kind outside the binary table
// goes out as a JSON line even on a binary-enabled connection, so future
// frame kinds need no codec coordination.
func TestBinaryUnknownKindFallsBackToJSON(t *testing.T) {
	var buf bytes.Buffer
	c := NewConn(pipeConn{&buf, &buf})
	c.EnableBinary()
	if err := c.Send(Envelope{Type: "future_kind", Node: 1}); err != nil {
		t.Fatal(err)
	}
	if buf.Bytes()[0] != '{' {
		t.Fatalf("first byte %#x, want '{' (JSON fallback)", buf.Bytes()[0])
	}
	got, err := c.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != "future_kind" || got.Node != 1 {
		t.Fatalf("got %+v", got)
	}
}

// TestMixedCodecInterleaved: one reader handles JSON and binary frames
// interleaved on the same stream.
func TestMixedCodecInterleaved(t *testing.T) {
	var buf bytes.Buffer
	js := NewConn(pipeConn{&buf, &buf})
	bin := NewConn(pipeConn{&buf, &buf})
	bin.EnableBinary()
	if err := js.Send(Envelope{Type: KindCommand, Node: 1, Level: 2, Seq: 1}); err != nil {
		t.Fatal(err)
	}
	if err := bin.Send(Envelope{Type: KindAck, Node: 1, Level: 2, Seq: 1}); err != nil {
		t.Fatal(err)
	}
	if err := js.Send(Envelope{Type: KindPing}); err != nil {
		t.Fatal(err)
	}
	r := NewConn(pipeConn{&buf, &buf})
	for _, want := range []string{KindCommand, KindAck, KindPing} {
		got, err := r.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if got.Type != want {
			t.Fatalf("got %q, want %q", got.Type, want)
		}
	}
}

// TestCorruptBinaryFrameIsRecoverable: a checksum-failing frame surfaces
// as a recoverable DecodeError and the next frame still decodes — the
// checksummed framing keeps the stream synchronised through payload
// corruption.
func TestCorruptBinaryFrameIsRecoverable(t *testing.T) {
	var buf bytes.Buffer
	w := NewConn(pipeConn{&buf, &buf})
	w.EnableBinary()
	if err := w.Send(Envelope{Type: KindSample, Node: 3, Level: 5}); err != nil {
		t.Fatal(err)
	}
	if err := w.Send(Envelope{Type: KindCommand, Node: 3, Level: 1, Seq: 7}); err != nil {
		t.Fatal(err)
	}
	stream := buf.Bytes()
	stream[frameHeaderLen+1] ^= 0xA5 // flip a payload byte of frame 1

	r := NewConn(pipeConn{bytes.NewReader(stream), &bytes.Buffer{}})
	_, err := r.Recv()
	var de *DecodeError
	if !errors.As(err, &de) || !de.Recoverable() || de.Codec != CodecBinary {
		t.Fatalf("want recoverable binary DecodeError, got %v", err)
	}
	got, err := r.Recv()
	if err != nil {
		t.Fatalf("stream desynchronised after corrupt frame: %v", err)
	}
	if got.Type != KindCommand || got.Seq != 7 {
		t.Fatalf("got %+v", got)
	}
}

// TestCorruptJSONLineIsRecoverable: same contract on the JSON path.
func TestCorruptJSONLineIsRecoverable(t *testing.T) {
	stream := []byte("{\"type\":\"sam&le\",\"node\":\n{\"type\":\"ping\"}\n")
	r := NewConn(pipeConn{bytes.NewReader(stream), &bytes.Buffer{}})
	_, err := r.Recv()
	var de *DecodeError
	if !errors.As(err, &de) || !de.Recoverable() || de.Codec != CodecJSON {
		t.Fatalf("want recoverable json DecodeError, got %v", err)
	}
	got, err := r.Recv()
	if err != nil || got.Type != KindPing {
		t.Fatalf("got %+v, %v", got, err)
	}
}

// TestBinaryHeaderDamageIsFatal: a bad version or an absurd length means
// framing is lost; the error must not be recoverable.
func TestBinaryHeaderDamageIsFatal(t *testing.T) {
	bad := []byte{frameMagic, 99, 1, 0, 0, 0, 0, 0, 0, 0, 0}
	r := NewConn(pipeConn{bytes.NewReader(bad), &bytes.Buffer{}})
	_, err := r.Recv()
	var de *DecodeError
	if !errors.As(err, &de) || de.Recoverable() {
		t.Fatalf("bad version: want fatal DecodeError, got %v", err)
	}

	huge := []byte{frameMagic, frameVersion, 0, 0, 0, 0}
	binary.LittleEndian.PutUint32(huge[2:6], maxFramePayload+1)
	r = NewConn(pipeConn{bytes.NewReader(huge), &bytes.Buffer{}})
	_, err = r.Recv()
	if !errors.As(err, &de) || de.Recoverable() {
		t.Fatalf("oversize length: want fatal DecodeError, got %v", err)
	}
}

// TestConsecutiveDecodeFailuresEscalate: a stream yielding nothing but
// decode errors turns fatal after maxDecodeFails, so a permanently
// garbled connection gets dropped and redialled instead of burning CPU
// as an error fountain forever.
func TestConsecutiveDecodeFailuresEscalate(t *testing.T) {
	var stream bytes.Buffer
	for i := 0; i < maxDecodeFails+2; i++ {
		stream.WriteString("not json at all\n")
	}
	r := NewConn(pipeConn{&stream, &bytes.Buffer{}})
	for i := 0; i < maxDecodeFails-1; i++ {
		_, err := r.Recv()
		var de *DecodeError
		if !errors.As(err, &de) || !de.Recoverable() {
			t.Fatalf("error %d: want recoverable, got %v", i, err)
		}
	}
	_, err := r.Recv()
	var de *DecodeError
	if !errors.As(err, &de) || de.Recoverable() {
		t.Fatalf("error %d: want fatal escalation, got %v", maxDecodeFails, err)
	}
}

// TestBinaryDecoderSkipsUnknownTags: a payload carrying tags this decoder
// has never heard of (field-level protocol evolution) still decodes the
// fields it knows.
func TestBinaryDecoderSkipsUnknownTags(t *testing.T) {
	e := Envelope{Type: KindCommand, Node: 5, Level: 2, Seq: 3}
	payload, err := appendPayload(nil, &e, 0)
	if err != nil {
		t.Fatal(err)
	}
	payload = appendVarintField(payload, 30, 12345)
	payload = appendBytesField(payload, 31, []byte("future bytes"))
	payload = appendKey(payload, 32, wireFixed64)
	payload = binary.LittleEndian.AppendUint64(payload, 42)
	var got Envelope
	if err := decodePayload(payload, &got, 0); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, e) {
		t.Fatalf("got %+v, want %+v", got, e)
	}
}

// TestRecvIntoReusesEnvelope: RecvInto resets state between frames, so a
// reused envelope never leaks fields across messages.
func TestRecvIntoReusesEnvelope(t *testing.T) {
	var buf bytes.Buffer
	w := NewConn(pipeConn{&buf, &buf})
	w.EnableBinary()
	if err := w.Send(Envelope{Type: KindSample, Node: 9, Level: 3, CPUUtil: 0.75}); err != nil {
		t.Fatal(err)
	}
	if err := w.Send(Envelope{Type: KindPing}); err != nil {
		t.Fatal(err)
	}
	r := NewConn(pipeConn{&buf, &buf})
	var env Envelope
	if err := r.RecvInto(&env); err != nil {
		t.Fatal(err)
	}
	if env.Node != 9 || env.CPUUtil != 0.75 {
		t.Fatalf("first frame: %+v", env)
	}
	if err := r.RecvInto(&env); err != nil {
		t.Fatal(err)
	}
	if env.Type != KindPing || env.Node != 0 || env.CPUUtil != 0 {
		t.Fatalf("stale fields leaked into reused envelope: %+v", env)
	}
}

// TestAdvertises covers the negotiation helper.
func TestAdvertises(t *testing.T) {
	e := Envelope{Codecs: []string{CodecBinary, CodecJSON}}
	if !e.Advertises(CodecBinary) || !e.Advertises(CodecJSON) || e.Advertises("zstd") {
		t.Fatalf("Advertises misreads %v", e.Codecs)
	}
	var none Envelope
	if none.Advertises(CodecBinary) {
		t.Fatal("empty advertisement matched")
	}
}
