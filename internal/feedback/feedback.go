// Package feedback implements the cluster-level feedback power controller
// of Wang & Chen (HPCA'08), cited in the paper's related work (§I.B), as a
// comparison baseline. Each control cycle the controller measures total
// power, computes the error against a setpoint, and adjusts the DVFS level
// of every candidate node in a coordinated fashion (a proportional–
// integral law over a continuous per-node level that is rounded for
// actuation).
//
// This is the architecture the paper argues against: every node is
// treated as equally important, so the controller shaves a little
// performance off every job instead of concentrating the cut where it
// costs least. The ControllerStudy experiment quantifies the difference.
package feedback

import (
	"fmt"
	"sort"

	"repro/internal/manager"
	"repro/internal/node"
	"repro/internal/policy"
	"repro/internal/units"
)

// Config parametrises the controller.
type Config struct {
	// Setpoint is the target total power. Runs comparing against
	// Algorithm 1 use the same P_L the capping algorithm would hold.
	Setpoint units.Watts
	// Kp and Ki are the proportional and integral gains, in aggregate
	// level-steps per (normalised) watt of error. The defaults in
	// Default() are tuned for the 128-node testbed.
	Kp, Ki float64
	// IntegralClamp bounds the integral term (anti-windup), in level
	// steps.
	IntegralClamp float64
}

// Default returns gains that settle the 128-node testbed in a few cycles
// without oscillation.
func Default(setpoint units.Watts) Config {
	return Config{Setpoint: setpoint, Kp: 0.8, Ki: 0.15, IntegralClamp: 3}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Setpoint <= 0 {
		return fmt.Errorf("feedback: setpoint must be positive")
	}
	if c.Kp < 0 || c.Ki < 0 {
		return fmt.Errorf("feedback: negative gains")
	}
	if c.IntegralClamp < 0 {
		return fmt.Errorf("feedback: negative integral clamp")
	}
	return nil
}

// Stats accumulates controller behaviour.
type Stats struct {
	Cycles int
	// Moves counts individual node level actuations.
	Moves int
	// SatLow/SatHigh count cycles where the whole fleet pinned at its
	// floor/ceiling (actuator saturation).
	SatLow, SatHigh int
}

// Controller is a running feedback controller.
type Controller struct {
	cfg   Config
	virt  map[node.ID]float64 // continuous level state
	integ float64
	stats Stats
}

// New creates a controller.
func New(cfg Config) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Controller{cfg: cfg, virt: make(map[node.ID]float64)}, nil
}

// Stats returns a copy of the accumulated statistics.
func (c *Controller) Stats() Stats { return c.stats }

// SetSetpoint retargets the controller; used when the setpoint tracks a
// learned threshold.
func (c *Controller) SetSetpoint(w units.Watts) {
	if w > 0 {
		c.cfg.Setpoint = w
	}
}

// Cycle runs one control period: compute the PI correction in level steps
// and move every candidate node's continuous level by it, actuating the
// rounded value. Idle nodes are left alone (degrading them saves nothing
// and the comparison should not charge the baseline for free moves).
func (c *Controller) Cycle(p units.Watts, snap *policy.Snapshot, act manager.Actuator) {
	c.stats.Cycles++
	if len(snap.Nodes) == 0 {
		return
	}
	// Normalise the watt error by the fleet's watts-per-level-step so the
	// gains are dimensionless: one unit of error ≈ one level step across
	// the fleet closes it.
	perStep := 0.0
	for _, n := range snap.Nodes {
		perStep += float64(n.Est - n.EstLower)
	}
	if perStep <= 0 {
		perStep = float64(len(snap.Nodes)) // degenerate: assume 1 W/step/node
	}
	err := float64(c.cfg.Setpoint-p) / perStep // >0: headroom, raise levels
	c.integ += c.cfg.Ki * err
	if c.integ > c.cfg.IntegralClamp {
		c.integ = c.cfg.IntegralClamp
	} else if c.integ < -c.cfg.IntegralClamp {
		c.integ = -c.cfg.IntegralClamp
	}
	delta := c.cfg.Kp*err + c.integ

	// Deterministic iteration order.
	nodes := append([]policy.NodeState(nil), snap.Nodes...)
	sort.Slice(nodes, func(a, b int) bool { return nodes[a].ID < nodes[b].ID })

	atLow, atHigh := 0, 0
	for _, n := range nodes {
		v, ok := c.virt[n.ID]
		if !ok {
			v = float64(n.Level)
		}
		if !n.Idle {
			v += delta
		}
		max := float64(n.MaxLevel)
		if v < 0 {
			v = 0
		}
		if v > max {
			v = max
		}
		c.virt[n.ID] = v
		target := int(v + 0.5)
		if target == 0 {
			atLow++
		}
		if target == n.MaxLevel {
			atHigh++
		}
		if target != n.Level {
			if err := act.SetNodeLevel(n.ID, target); err == nil {
				c.stats.Moves++
			}
		}
	}
	if atLow == len(nodes) {
		c.stats.SatLow++
	}
	if atHigh == len(nodes) {
		c.stats.SatHigh++
	}
}
