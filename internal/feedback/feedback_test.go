package feedback

import (
	"testing"

	"repro/internal/node"
	"repro/internal/policy"
	"repro/internal/units"
)

// fleetActuator applies commands to a slice of levels and models power as
// a linear function of the aggregate level.
type fleetActuator struct {
	levels []int
}

func (f *fleetActuator) SetNodeLevel(id node.ID, level int) error {
	f.levels[int(id)] = level
	return nil
}

func (f *fleetActuator) power() units.Watts {
	p := 0.0
	for _, l := range f.levels {
		p += 200 + 12*float64(l)
	}
	return units.Watts(p)
}

func (f *fleetActuator) snapshot() *policy.Snapshot {
	s := &policy.Snapshot{}
	for i, l := range f.levels {
		est := units.Watts(200 + 12*float64(l))
		lower := est - 12
		if l == 0 {
			lower = est
		}
		s.Nodes = append(s.Nodes, policy.NodeState{
			ID: node.ID(i), Level: l, MaxLevel: 9,
			AtLowest: l == 0,
			Est:      est, EstLower: lower,
		})
	}
	return s
}

func newFleet(n, level int) *fleetActuator {
	f := &fleetActuator{levels: make([]int, n)}
	for i := range f.levels {
		f.levels[i] = level
	}
	return f
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("zero setpoint accepted")
	}
	if _, err := New(Config{Setpoint: 1, Kp: -1}); err == nil {
		t.Error("negative gain accepted")
	}
	if _, err := New(Config{Setpoint: 1, IntegralClamp: -1}); err == nil {
		t.Error("negative clamp accepted")
	}
	if _, err := New(Default(units.KW(30))); err != nil {
		t.Error(err)
	}
}

func TestConvergesToSetpoint(t *testing.T) {
	// 16 nodes: power range [3200, 4928] W. Target 4000 W.
	fleet := newFleet(16, 9)
	c, err := New(Default(4000))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		c.Cycle(fleet.power(), fleet.snapshot(), fleet)
	}
	got := float64(fleet.power())
	if got < 3900 || got > 4100 {
		t.Errorf("settled at %.0f W, want ≈4000", got)
	}
	st := c.Stats()
	if st.Cycles != 100 || st.Moves == 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestTracksSetpointChange(t *testing.T) {
	fleet := newFleet(16, 9)
	c, _ := New(Default(4000))
	for i := 0; i < 60; i++ {
		c.Cycle(fleet.power(), fleet.snapshot(), fleet)
	}
	c.SetSetpoint(4500)
	for i := 0; i < 60; i++ {
		c.Cycle(fleet.power(), fleet.snapshot(), fleet)
	}
	got := float64(fleet.power())
	if got < 4380 || got > 4620 {
		t.Errorf("after retarget settled at %.0f W, want ≈4500", got)
	}
	// Zero setpoint is ignored.
	c.SetSetpoint(0)
	c.Cycle(fleet.power(), fleet.snapshot(), fleet)
	if float64(fleet.power()) < 4000 {
		t.Error("zero setpoint was adopted")
	}
}

func TestSaturationLow(t *testing.T) {
	// Unreachable setpoint below the fleet floor: everything pins at
	// level 0 and saturation is counted, without oscillation.
	fleet := newFleet(8, 9)
	c, _ := New(Default(1000)) // floor is 8×200 = 1600 W
	for i := 0; i < 50; i++ {
		c.Cycle(fleet.power(), fleet.snapshot(), fleet)
	}
	for i, l := range fleet.levels {
		if l != 0 {
			t.Errorf("node %d at level %d, want 0", i, l)
		}
	}
	if c.Stats().SatLow == 0 {
		t.Error("low saturation not counted")
	}
}

func TestSaturationHigh(t *testing.T) {
	fleet := newFleet(8, 0)
	c, _ := New(Default(units.KW(100)))
	for i := 0; i < 50; i++ {
		c.Cycle(fleet.power(), fleet.snapshot(), fleet)
	}
	for i, l := range fleet.levels {
		if l != 9 {
			t.Errorf("node %d at level %d, want 9", i, l)
		}
	}
	if c.Stats().SatHigh == 0 {
		t.Error("high saturation not counted")
	}
}

func TestIdleNodesUntouched(t *testing.T) {
	fleet := newFleet(4, 9)
	c, _ := New(Default(100)) // far below floor: maximal downward pressure
	snap := fleet.snapshot()
	snap.Nodes[2].Idle = true
	for i := 0; i < 20; i++ {
		c.Cycle(fleet.power(), snap, fleet)
		snap = fleet.snapshot()
		snap.Nodes[2].Idle = true
	}
	if fleet.levels[2] != 9 {
		t.Errorf("idle node moved to level %d", fleet.levels[2])
	}
	if fleet.levels[0] != 0 {
		t.Errorf("busy node not driven down: %d", fleet.levels[0])
	}
}

func TestEmptySnapshot(t *testing.T) {
	c, _ := New(Default(1000))
	c.Cycle(500, &policy.Snapshot{}, &fleetActuator{})
	if c.Stats().Cycles != 1 {
		t.Error("cycle not counted")
	}
}

func TestCoordinatedMoves(t *testing.T) {
	// All busy nodes move together — the defining property of the
	// related-work baseline.
	fleet := newFleet(8, 9)
	c, _ := New(Default(2000))
	c.Cycle(fleet.power(), fleet.snapshot(), fleet)
	first := fleet.levels[0]
	for i, l := range fleet.levels {
		if l != first {
			t.Errorf("node %d at %d, node 0 at %d: moves not coordinated", i, l, first)
		}
	}
}
