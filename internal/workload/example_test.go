package workload_test

import (
	"fmt"
	"time"

	"repro/internal/node"
	"repro/internal/workload"
)

func ExampleSpec_ReferenceDuration() {
	cg, _ := workload.SpecByName(workload.NPB(workload.ClassD), "CG")
	// T_j grows with NPROCS through the communication penalty.
	fmt.Println(cg.ReferenceDuration(64))
	fmt.Println(cg.ReferenceDuration(256))
	// Output:
	// 18m0s
	// 21m36s
}

func ExampleJob_Rate() {
	// Bottleneck coupling: a job's progress rate under throttling depends
	// on its slowest member node and its frequency sensitivity α.
	suite := workload.NPB(workload.ClassD)
	ep, _ := workload.SpecByName(suite, "EP")
	cg, _ := workload.SpecByName(suite, "CG")
	mk := func(s workload.Spec) *workload.Job {
		j, _ := workload.NewJob(1, workload.Request{Spec: s, NProcs: 8},
			[]node.ID{0}, 0, workload.JobConfig{})
		return j
	}
	slowdown := 1.60 / 2.93 // bottom DVFS level
	fmt.Printf("EP at bottom level: %.2f of full speed\n", mk(ep).Rate(slowdown))
	fmt.Printf("CG at bottom level: %.2f of full speed\n", mk(cg).Rate(slowdown))
	// Output:
	// EP at bottom level: 0.56 of full speed
	// CG at bottom level: 0.88 of full speed
}

func ExampleJob_Advance() {
	spec, _ := workload.SpecByName(workload.NPB(workload.ClassC), "EP")
	j, _ := workload.NewJob(1, workload.Request{Spec: spec, NProcs: 64},
		[]node.ID{0, 1, 2, 3}, 0, workload.JobConfig{})
	now := time.Duration(0)
	for !j.Done() {
		j.Advance(now, time.Second, 1.0) // unthrottled
		now += time.Second
	}
	fmt.Println(j.ActualDuration() == j.ReferenceDuration())
	// Output: true
}
