// Package workload models the evaluation workload of §V.B–C: the five NAS
// Parallel Benchmarks used in the paper (EP, CG, LU, BT, SP) at CLASS D,
// executed as jobs with NPROCS ∈ {8, 16, 32, 64, 128, 256}, generated at
// random and enqueued whenever the job queue is empty.
//
// Each benchmark is described by a resource signature — CPU utilisation,
// memory footprint, communication intensity — plus a phase structure that
// alternates compute and communication (giving the power time-series its
// spikes) and a frequency sensitivity exponent α that controls how much a
// DVFS degrade slows the job: progress rate ∝ (f/f_max)^α. EP is almost
// purely compute (α≈1); CG is memory/communication bound (small α), so
// throttling hurts it less — exactly the asymmetry that makes target
// selection policies interesting.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// Class is an NPB problem class.
type Class byte

// Supported classes. The paper runs CLASS D.
const (
	ClassC Class = 'C'
	ClassD Class = 'D'
)

// Spec is the resource signature of one benchmark.
type Spec struct {
	Name string
	// CPUUtil is the busy fraction of all cores during compute phases.
	CPUUtil float64
	// MemFrac is the fraction of node memory resident while the job runs.
	MemFrac float64
	// CommDuty is the fraction of time spent in communication phases.
	CommDuty float64
	// NICFrac is the fraction of NIC bandwidth used during comm phases.
	NICFrac float64
	// Alpha is the frequency sensitivity: progress ∝ (f/f_max)^Alpha.
	// 1 = perfectly CPU bound, 0 = insensitive to frequency.
	Alpha float64
	// PhasePeriod is the length of one compute+comm cycle.
	PhasePeriod time.Duration
	// BaseDuration is the class-D full-frequency runtime of the job at
	// its reference process count (RefProcs); weak-ish scaling keeps the
	// runtime in the same band across NPROCS, with a mild penalty for
	// larger process counts (more communication).
	BaseDuration time.Duration
	RefProcs     int
	// ScalePenalty is the extra runtime fraction per doubling of NPROCS
	// above RefProcs (communication overhead growth).
	ScalePenalty float64
}

// Validate checks the spec's ranges.
func (s Spec) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("workload: spec without name")
	}
	inUnit := func(v float64) bool { return v >= 0 && v <= 1 }
	if !inUnit(s.CPUUtil) || !inUnit(s.MemFrac) || !inUnit(s.CommDuty) || !inUnit(s.NICFrac) || !inUnit(s.Alpha) {
		return fmt.Errorf("workload: spec %s has fractions outside [0,1]", s.Name)
	}
	if s.PhasePeriod <= 0 || s.BaseDuration <= 0 {
		return fmt.Errorf("workload: spec %s needs positive durations", s.Name)
	}
	if s.RefProcs <= 0 {
		return fmt.Errorf("workload: spec %s needs positive RefProcs", s.Name)
	}
	if s.ScalePenalty < 0 {
		return fmt.Errorf("workload: spec %s has negative ScalePenalty", s.Name)
	}
	return nil
}

// ReferenceDuration returns the job's full-frequency runtime T_j for a
// given process count — the paper's "time to finish the job with highest
// node performance without any power capping".
func (s Spec) ReferenceDuration(nprocs int) time.Duration {
	if nprocs <= 0 {
		nprocs = s.RefProcs
	}
	doublings := math.Log2(float64(nprocs) / float64(s.RefProcs))
	factor := 1.0
	if doublings > 0 {
		factor += s.ScalePenalty * doublings
	} else if doublings < 0 {
		// Fewer processes than reference: slightly shorter jobs (less
		// communication), floored so tiny runs stay meaningful.
		factor = math.Max(0.6, 1+0.05*doublings)
	}
	return time.Duration(float64(s.BaseDuration) * factor)
}

// NPB returns the paper's five-benchmark suite at the given class. Class C
// scales runtimes down ~16× (one NPB class step is ~16× work), which keeps
// unit tests and short experiments fast while class D matches the paper.
func NPB(c Class) []Spec {
	scale := 1.0
	if c == ClassC {
		scale = 1.0 / 16
	}
	d := func(minutes float64) time.Duration {
		return time.Duration(minutes * scale * float64(time.Minute))
	}
	return []Spec{
		{
			// EP: embarrassingly parallel, pure compute, near-zero
			// communication, tiny memory. Fully frequency sensitive.
			Name: "EP", CPUUtil: 0.98, MemFrac: 0.08, CommDuty: 0.02,
			NICFrac: 0.10, Alpha: 1.00, PhasePeriod: 40 * time.Second,
			BaseDuration: d(22), RefProcs: 64, ScalePenalty: 0.02,
		},
		{
			// CG: irregular memory access and heavy communication;
			// weakly frequency sensitive.
			Name: "CG", CPUUtil: 0.60, MemFrac: 0.45, CommDuty: 0.42,
			NICFrac: 0.60, Alpha: 0.40, PhasePeriod: 12 * time.Second,
			BaseDuration: d(18), RefProcs: 64, ScalePenalty: 0.10,
		},
		{
			// LU: pipelined solver, moderate communication.
			Name: "LU", CPUUtil: 0.78, MemFrac: 0.35, CommDuty: 0.28,
			NICFrac: 0.45, Alpha: 0.65, PhasePeriod: 18 * time.Second,
			BaseDuration: d(26), RefProcs: 64, ScalePenalty: 0.06,
		},
		{
			// BT: block tridiagonal, large memory footprint.
			Name: "BT", CPUUtil: 0.88, MemFrac: 0.55, CommDuty: 0.18,
			NICFrac: 0.35, Alpha: 0.75, PhasePeriod: 25 * time.Second,
			BaseDuration: d(30), RefProcs: 64, ScalePenalty: 0.05,
		},
		{
			// SP: scalar pentadiagonal, similar to BT with more
			// communication.
			Name: "SP", CPUUtil: 0.72, MemFrac: 0.50, CommDuty: 0.36,
			NICFrac: 0.50, Alpha: 0.60, PhasePeriod: 20 * time.Second,
			BaseDuration: d(24), RefProcs: 64, ScalePenalty: 0.08,
		},
	}
}

// NPBExtended returns the paper's suite plus three further NAS kernels
// (FT, MG, IS) for studies beyond the paper's workload. Signatures follow
// the kernels' published character: FT is all-to-all communication heavy,
// MG strides memory with modest communication, IS is short and
// bandwidth-bound.
func NPBExtended(c Class) []Spec {
	scale := 1.0
	if c == ClassC {
		scale = 1.0 / 16
	}
	d := func(minutes float64) time.Duration {
		return time.Duration(minutes * scale * float64(time.Minute))
	}
	extra := []Spec{
		{
			Name: "FT", CPUUtil: 0.80, MemFrac: 0.65, CommDuty: 0.40,
			NICFrac: 0.70, Alpha: 0.55, PhasePeriod: 15 * time.Second,
			BaseDuration: d(20), RefProcs: 64, ScalePenalty: 0.12,
		},
		{
			Name: "MG", CPUUtil: 0.75, MemFrac: 0.60, CommDuty: 0.22,
			NICFrac: 0.35, Alpha: 0.55, PhasePeriod: 10 * time.Second,
			BaseDuration: d(14), RefProcs: 64, ScalePenalty: 0.08,
		},
		{
			Name: "IS", CPUUtil: 0.55, MemFrac: 0.40, CommDuty: 0.45,
			NICFrac: 0.65, Alpha: 0.35, PhasePeriod: 8 * time.Second,
			BaseDuration: d(8), RefProcs: 64, ScalePenalty: 0.15,
		},
	}
	return append(NPB(c), extra...)
}

// SpecByName returns the named spec from suite, or an error.
func SpecByName(suite []Spec, name string) (Spec, error) {
	for _, s := range suite {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("workload: unknown benchmark %q", name)
}

// NProcsChoices is the paper's NPROCS parameter domain.
var NProcsChoices = []int{8, 16, 32, 64, 128, 256}

// RandomRequest draws one evaluation job request per the paper's protocol:
// a benchmark chosen uniformly from the suite and NPROCS uniform over
// NProcsChoices.
func RandomRequest(rng *rand.Rand, suite []Spec) Request {
	return Request{
		Spec:   suite[rng.Intn(len(suite))],
		NProcs: NProcsChoices[rng.Intn(len(NProcsChoices))],
	}
}

// Request describes a job waiting to be scheduled.
type Request struct {
	Spec   Spec
	NProcs int
	// Priority marks the job's importance. Priority > 0 means the job is
	// urgent/high-priority in the §II.A sense: the nodes it occupies are
	// privileged for its lifetime and must not be degraded.
	Priority int
}

// Privileged reports whether the request's nodes must be pinned out of
// A_candidate while it runs.
func (r Request) Privileged() bool { return r.Priority > 0 }

// PriorityRequest draws one request per the paper's protocol and marks it
// high-priority with probability privFrac.
func PriorityRequest(rng *rand.Rand, suite []Spec, privFrac float64) Request {
	req := RandomRequest(rng, suite)
	if privFrac > 0 && rng.Float64() < privFrac {
		req.Priority = 1
	}
	return req
}
